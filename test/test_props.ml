(* Randomized end-to-end property: on random graphs and random analytical
   queries — overlapping and non-overlapping pattern pairs, multi-valued
   properties, optional secondary triples, grand totals — every engine
   returns exactly the reference evaluator's result. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Relops = Rapida_relational.Relops
module Graph = Rapida_rdf.Graph
module Triple = Rapida_rdf.Triple
module Term = Rapida_rdf.Term
module Namespace = Rapida_rdf.Namespace
module Gen = QCheck2.Gen

let ns = Namespace.bench
let iri n = Term.iri (ns ^ n)

(* --- random data --------------------------------------------------------- *)

type datum = {
  parents : (int * int * int * int list) list;
      (** id, type index, aa value, bb values *)
  children : (int * int * int * int list) list;
      (** id, parent id, x value, y values *)
}

let gen_datum =
  let open Gen in
  let* n_parents = 2 -- 8 in
  let* n_children = 2 -- 20 in
  let gen_parent i =
    let* ty = 0 -- 1 in
    let* aa = 0 -- 3 in
    let* bb = list_size (0 -- 2) (0 -- 5) in
    return (i, ty, aa, List.sort_uniq compare bb)
  in
  let gen_child i =
    let* parent = 1 -- n_parents in
    let* x = 0 -- 9 in
    let* y = list_size (0 -- 2) (0 -- 5) in
    return (i, parent, x, List.sort_uniq compare y)
  in
  let* parents = flatten_l (List.init n_parents (fun i -> gen_parent (i + 1))) in
  let* children = flatten_l (List.init n_children (fun i -> gen_child (i + 1))) in
  return { parents; children }

let graph_of_datum d =
  let triples = ref [] in
  let add s p o = triples := Triple.make s p o :: !triples in
  List.iter
    (fun (id, ty, aa, bbs) ->
      let s = iri (Printf.sprintf "P%d" id) in
      add s Namespace.rdf_type (iri (Printf.sprintf "T%d" ty));
      add s (iri "aa") (Term.int aa);
      List.iter (fun b -> add s (iri "bb") (Term.int b)) bbs)
    d.parents;
  List.iter
    (fun (id, parent, x, ys) ->
      let s = iri (Printf.sprintf "C%d" id) in
      add s (iri "link") (iri (Printf.sprintf "P%d" parent));
      add s (iri "x") (Term.int x);
      List.iter (fun y -> add s (iri "y") (Term.int y)) ys)
    d.children;
  Graph.of_list !triples

(* --- random queries ------------------------------------------------------ *)

type pattern_shape = {
  ty : int;  (** type constant index *)
  with_y : bool;  (** include the multi-valued child property *)
  with_bb : bool;  (** include the multi-valued parent property *)
  with_unbound : bool;  (** include an unbound-property triple pattern *)
  grouped : bool;  (** GROUP BY ?g vs grand total *)
  agg_on_y : bool;  (** aggregate the multi-valued variable *)
  agg_func : string;  (** second aggregate: SUM / AVG / MIN / MAX *)
  distinct : bool;  (** DISTINCT on the second aggregate *)
}

let gen_shape =
  let open Gen in
  let* ty = 0 -- 1 in
  let* with_y = bool in
  let* with_bb = bool in
  let* with_unbound = frequency [ (4, return false); (1, return true) ] in
  let* grouped = bool in
  let* agg_on_y = bool in
  let* agg_func = oneofl [ "SUM"; "AVG"; "MIN"; "MAX" ] in
  let* distinct = bool in
  return
    { ty; with_y; with_bb; with_unbound; grouped; agg_on_y; agg_func;
      distinct }

let subquery_src idx shape =
  let v name = Printf.sprintf "?%s%d" name idx in
  let agg_var = if shape.agg_on_y && shape.with_y then v "y" else v "x" in
  let lines =
    [ Printf.sprintf "%s link %s ." (v "c") (v "p");
      Printf.sprintf "%s x %s ." (v "c") (v "x") ]
    @ (if shape.with_y then [ Printf.sprintf "%s y %s ." (v "c") (v "y") ] else [])
    @ (if shape.with_unbound then
         [ Printf.sprintf "%s %s %s ." (v "c") (v "anyp") (v "anyo") ]
       else [])
    @ [ Printf.sprintf "%s a T%d ." (v "p") shape.ty;
        Printf.sprintf "%s aa ?g ." (v "p") ]
    @ (if shape.with_bb then [ Printf.sprintf "%s bb %s ." (v "p") (v "b") ] else [])
  in
  let projection, group_clause =
    if shape.grouped then ("?g ", "GROUP BY ?g") else ("", "")
  in
  Printf.sprintf
    "{ SELECT %s(COUNT(%s) AS ?cnt%d) (%s(%s%s) AS ?agg%d) { %s } %s }"
    projection agg_var idx shape.agg_func
    (if shape.distinct then "DISTINCT " else "")
    agg_var idx (String.concat " " lines) group_clause

let query_src (s1, s2) =
  Printf.sprintf "SELECT * {\n %s\n %s\n}" (subquery_src 1 s1) (subquery_src 2 s2)

let gen_case = Gen.(triple gen_datum gen_shape gen_shape)

let print_case (d, s1, s2) =
  Printf.sprintf "query:\n%s\nparents=%d children=%d"
    (query_src (s1, s2))
    (List.length d.parents) (List.length d.children)

(* Bridge to the session API, keeping the old string-error shape this
   property matches on. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let check_all_engines (d, s1, s2) =
  let graph = graph_of_datum d in
  let src = query_src (s1, s2) in
  match Rapida_sparql.Analytical.parse src with
  | Error e -> QCheck2.Test.fail_reportf "query does not parse: %s\n%s" e src
  | Ok q ->
    let expected = Rapida_ref.Ref_engine.run graph q in
    let input = Engine.input_of_graph graph in
    List.for_all
      (fun kind ->
        match run kind (Plan_util.context Plan_util.default_options) input q with
        | Error msg ->
          QCheck2.Test.fail_reportf "%s failed: %s" (Engine.kind_name kind) msg
        | Ok { table; _ } ->
          Relops.same_results expected table
          || QCheck2.Test.fail_reportf "%s differs from reference"
               (Engine.kind_name kind))
      Engine.all_kinds

let prop_random_queries =
  QCheck2.Test.make ~count:120 ~name:"random analytical queries agree"
    ~print:print_case gen_case check_all_engines

(* Same property restricted to guaranteed-overlapping pairs (same type
   constant), which always exercises the composite-rewriting path. *)
let prop_overlapping_queries =
  QCheck2.Test.make ~count:80
    ~name:"random overlapping queries agree (composite path)"
    ~print:print_case
    Gen.(
      map
        (fun (d, s1, s2) -> (d, s1, { s2 with ty = s1.ty }))
        gen_case)
    check_all_engines

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:false prop_random_queries;
    QCheck_alcotest.to_alcotest ~long:false prop_overlapping_queries;
  ]
