(* Cross-engine agreement: every engine must produce exactly the reference
   evaluator's result on every catalog query, over every dataset. This is
   the central correctness oracle of the reproduction. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Relops = Rapida_relational.Relops
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats

let bsbm_graph = lazy (Rapida_datagen.Bsbm.(generate (config ~products:120 ())))

let chem_graph =
  lazy (Rapida_datagen.Chem2bio.(generate (config ~compounds:60 ())))

let pubmed_graph =
  lazy (Rapida_datagen.Pubmed.(generate (config ~publications:150 ())))

let graph_for = function
  | Catalog.Bsbm -> Lazy.force bsbm_graph
  | Catalog.Chem2bio -> Lazy.force chem_graph
  | Catalog.Pubmed -> Lazy.force pubmed_graph

let inputs = Hashtbl.create 4

let input_for dataset =
  match Hashtbl.find_opt inputs dataset with
  | Some i -> i
  | None ->
    let i = Engine.input_of_graph (graph_for dataset) in
    Hashtbl.add inputs dataset i;
    i

let show_table t =
  Fmt.str "%a" Table.pp (Relops.canonicalize t)

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let check_query_all_engines entry () =
  let q = Catalog.parse entry in
  let graph = graph_for entry.Catalog.dataset in
  let expected = Rapida_ref.Ref_engine.run graph q in
  List.iter
    (fun kind ->
      match
        run kind (Plan_util.context Plan_util.default_options)
          (input_for entry.Catalog.dataset) q
      with
      | Error msg ->
        Alcotest.failf "%s on %s: engine error: %s" (Engine.kind_name kind)
          entry.Catalog.id msg
      | Ok { table; _ } ->
        if not (Relops.same_results expected table) then
          Alcotest.failf
            "%s on %s: results differ.@.--- expected (reference):@.%s@.--- \
             got:@.%s"
            (Engine.kind_name kind) entry.Catalog.id (show_table expected)
            (show_table table))
    Engine.all_kinds

let non_empty_results entry () =
  (* Guards against vacuous agreement: catalog queries must return rows on
     the generated datasets. *)
  let q = Catalog.parse entry in
  let graph = graph_for entry.Catalog.dataset in
  let result = Rapida_ref.Ref_engine.run graph q in
  Alcotest.(check bool)
    (entry.Catalog.id ^ " returns rows")
    true
    (Table.cardinality result > 0)

(* MR-cycle contracts from the paper (§5.2) for the 2-star and 3-star
   multi-grouping queries. *)
let cycle_contract id kind expected () =
  let entry = Catalog.find_exn id in
  let q = Catalog.parse entry in
  match
    run kind (Plan_util.context Plan_util.default_options) (input_for entry.Catalog.dataset) q
  with
  | Error msg -> Alcotest.failf "engine error: %s" msg
  | Ok { stats; _ } ->
    Alcotest.(check int)
      (Printf.sprintf "%s cycles on %s" (Engine.kind_name kind) id)
      expected (Stats.cycles stats)

(* The static cycle predictor must match the executed workflow length for
   every catalog query and engine. *)
let prediction_matches_execution entry () =
  let q = Catalog.parse entry in
  List.iter
    (fun kind ->
      match
        run kind (Plan_util.context Plan_util.default_options)
          (input_for entry.Catalog.dataset) q
      with
      | Error msg ->
        Alcotest.failf "%s on %s: %s" (Engine.kind_name kind) entry.Catalog.id
          msg
      | Ok { stats; _ } ->
        Alcotest.(check int)
          (Printf.sprintf "%s cycles on %s" (Engine.kind_name kind)
             entry.Catalog.id)
          (Rapida_core.Plan_summary.predict kind q)
          (Stats.cycles stats))
    Engine.all_kinds

let suite =
  let agreement =
    List.map
      (fun entry ->
        Alcotest.test_case
          (Printf.sprintf "%s agrees across engines" entry.Catalog.id)
          `Slow
          (check_query_all_engines entry))
      Catalog.all
  in
  let coverage =
    List.map
      (fun entry ->
        Alcotest.test_case
          (Printf.sprintf "%s non-empty" entry.Catalog.id)
          `Quick (non_empty_results entry))
      Catalog.all
  in
  let contracts =
    [
      Alcotest.test_case "MG1 cycles: rapid-analytics = 3" `Quick
        (cycle_contract "MG1" Engine.Rapid_analytics 3);
      Alcotest.test_case "MG1 cycles: rapid-plus = 5" `Quick
        (cycle_contract "MG1" Engine.Rapid_plus 5);
      Alcotest.test_case "MG1 cycles: hive-naive = 9" `Quick
        (cycle_contract "MG1" Engine.Hive_naive 9);
      Alcotest.test_case "MG3 cycles: rapid-analytics = 4" `Quick
        (cycle_contract "MG3" Engine.Rapid_analytics 4);
      Alcotest.test_case "MG3 cycles: rapid-plus = 7" `Quick
        (cycle_contract "MG3" Engine.Rapid_plus 7);
      Alcotest.test_case "G1 cycles: rapid-analytics = 2" `Quick
        (cycle_contract "G1" Engine.Rapid_analytics 2);
    ]
  in
  let predictions =
    List.map
      (fun entry ->
        Alcotest.test_case
          (Printf.sprintf "%s cycle prediction" entry.Catalog.id)
          `Quick
          (prediction_matches_execution entry))
      Catalog.all
  in
  agreement @ coverage @ contracts @ predictions
