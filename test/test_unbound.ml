(* Unbound-property triple patterns — the extension of [Ravindra &
   Anyanwu, EDBT 2015] the paper's discussion points to. The composite
   rewriting stays out of scope (overlap detection rejects unbound
   properties, per the paper), but every engine must still answer such
   queries correctly: the NTGA engines via unprojected triplegroups and
   any-object join keys, the Hive engines via a three-column union scan
   of the vertical partitions. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Relops = Rapida_relational.Relops
module Table = Rapida_relational.Table
module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Namespace = Rapida_rdf.Namespace

let check_bool = Alcotest.(check bool)

let ns = Namespace.bench
let iri n = Term.iri (ns ^ n)

let graph =
  let t s p o = Triple.make (iri s) (iri p) o in
  Graph.of_list
    [
      t "d1" "name" (Term.str "aspirin");
      t "d1" "treats" (iri "c1");
      t "d1" "interactsWith" (iri "c2");
      t "d2" "name" (Term.str "ibuprofen");
      t "d2" "treats" (iri "c2");
      t "c1" "label" (Term.str "headache");
      t "c1" "severity" (Term.int 2);
      t "c2" "label" (Term.str "fever");
      t "c2" "severity" (Term.int 3);
    ]

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let engines_agree src =
  let q = Rapida_sparql.Analytical.parse_exn src in
  let expected = Rapida_ref.Ref_engine.run graph q in
  let input = Engine.input_of_graph graph in
  List.iter
    (fun kind ->
      match run kind (Plan_util.context Plan_util.default_options) input q with
      | Error msg -> Alcotest.failf "%s: %s" (Engine.kind_name kind) msg
      | Ok { table; _ } ->
        if not (Relops.same_results expected table) then
          Alcotest.failf "%s differs:\nexpected %a\ngot %a"
            (Engine.kind_name kind) Table.pp (Relops.canonicalize expected)
            Table.pp (Relops.canonicalize table))
    Engine.all_kinds;
  expected

let test_dont_care_relationship () =
  (* "Count the relationships of each drug, whatever they are." *)
  let t =
    engines_agree
      "SELECT ?d (COUNT(?o) AS ?n) { ?d name ?nm . ?d ?rel ?o . } GROUP BY ?d"
  in
  (* aspirin: name, treats, interactsWith = 3; ibuprofen: 2. *)
  Alcotest.(check int) "two drugs" 2 (Table.cardinality t)

let test_property_as_group_key () =
  (* Group by the property itself: relationship-type histogram. *)
  let t =
    engines_agree
      "SELECT ?rel (COUNT(?o) AS ?n) { ?d name ?nm . ?d ?rel ?o . } GROUP \
       BY ?rel"
  in
  (* name, treats, interactsWith. *)
  Alcotest.(check int) "three relationship types" 3 (Table.cardinality t)

let test_join_through_unbound_property () =
  (* Join a star to another through a don't-care relationship: condition
     severities reachable from each drug by any link. *)
  let t =
    engines_agree
      "SELECT ?d (SUM(?sev) AS ?s) { ?d name ?nm . ?d ?rel ?c . ?c severity \
       ?sev . } GROUP BY ?d"
  in
  Alcotest.(check int) "two drugs" 2 (Table.cardinality t)

let test_multi_pattern_falls_back () =
  (* Two groupings over a pattern with an unbound property: the composite
     rewriting does not apply (Def. 3.1 scope), so the optimizer must
     fall back and still agree with the reference. *)
  let q =
    Rapida_sparql.Analytical.parse_exn
      {|SELECT ?d ?n ?t {
  { SELECT ?d (COUNT(?o) AS ?n) { ?d name ?nm . ?d ?rel ?o . } GROUP BY ?d }
  { SELECT (COUNT(?o1) AS ?t) { ?d1 name ?nm1 . ?d1 ?rel1 ?o1 . } }
}|}
  in
  check_bool "rewriting does not apply" true
    (match Rapida_core.Composite.build q.Rapida_sparql.Analytical.subqueries with
    | Error _ -> true
    | Ok _ -> false);
  ignore
    (engines_agree
       {|SELECT ?d ?n ?t {
  { SELECT ?d (COUNT(?o) AS ?n) { ?d name ?nm . ?d ?rel ?o . } GROUP BY ?d }
  { SELECT (COUNT(?o1) AS ?t) { ?d1 name ?nm1 . ?d1 ?rel1 ?o1 . } }
}|})

let test_fully_unbound_star () =
  ignore
    (engines_agree "SELECT ?s (COUNT(?o) AS ?n) { ?s ?p ?o . } GROUP BY ?s")

let suite =
  [
    Alcotest.test_case "don't-care relationship" `Quick test_dont_care_relationship;
    Alcotest.test_case "property as group key" `Quick test_property_as_group_key;
    Alcotest.test_case "join through unbound property" `Quick
      test_join_through_unbound_property;
    Alcotest.test_case "multi-pattern falls back" `Quick
      test_multi_pattern_falls_back;
    Alcotest.test_case "fully unbound star" `Quick test_fully_unbound_star;
  ]

(* Repeated-property patterns: two triple patterns on the same property in
   one star enumerate the full cross product of matching triples
   (including the diagonal), a classic multiset-semantics corner. *)
let test_repeated_property () =
  let t s p o = Triple.make (iri s) (iri p) o in
  let g =
    Graph.of_list
      [
        t "s1" "tag" (Term.str "a");
        t "s1" "tag" (Term.str "b");
        t "s1" "kind" (Term.str "k");
        t "s2" "tag" (Term.str "c");
        t "s2" "kind" (Term.str "k");
      ]
  in
  let q =
    Rapida_sparql.Analytical.parse_exn
      "SELECT ?s (COUNT(?x) AS ?n) { ?s kind ?k . ?s tag ?x . ?s tag ?y . } \
       GROUP BY ?s"
  in
  let expected = Rapida_ref.Ref_engine.run g q in
  (* s1: 2 tags -> 2x2 = 4 bindings; s2: 1. *)
  let canon = Relops.canonicalize expected in
  Alcotest.(check int) "two rows" 2 (Table.cardinality canon);
  let input = Engine.input_of_graph g in
  List.iter
    (fun kind ->
      match run kind (Plan_util.context Plan_util.default_options) input q with
      | Error msg -> Alcotest.failf "%s: %s" (Engine.kind_name kind) msg
      | Ok { table; _ } ->
        check_bool (Engine.kind_name kind ^ " agrees") true
          (Relops.same_results expected table))
    Engine.all_kinds

(* Self-join shape: the same variable as subject of one star and object
   of another, with a shared constant-object triple. *)
let test_entity_chain () =
  let t s p o = Triple.make (iri s) (iri p) o in
  let g =
    Graph.of_list
      [
        t "a" "knows" (iri "b");
        t "a" "city" (Term.str "X");
        t "b" "city" (Term.str "X");
        t "b" "knows" (iri "c");
        t "c" "city" (Term.str "Y");
      ]
  in
  let q =
    Rapida_sparql.Analytical.parse_exn
      "SELECT ?city (COUNT(?p2) AS ?n) { ?p1 knows ?p2 . ?p1 city ?city . \
       ?p2 city ?c2 . } GROUP BY ?city"
  in
  let expected = Rapida_ref.Ref_engine.run g q in
  let input = Engine.input_of_graph g in
  List.iter
    (fun kind ->
      match run kind (Plan_util.context Plan_util.default_options) input q with
      | Error msg -> Alcotest.failf "%s: %s" (Engine.kind_name kind) msg
      | Ok { table; _ } ->
        check_bool (Engine.kind_name kind ^ " agrees") true
          (Relops.same_results expected table))
    Engine.all_kinds

let suite =
  suite
  @ [
      Alcotest.test_case "repeated property in a star" `Quick
        test_repeated_property;
      Alcotest.test_case "entity chain self-join shape" `Quick
        test_entity_chain;
    ]
