(* Memory-bounded execution: spec parsing, external-sort pass math, the
   OOM escalation ladder, spill pricing, and the end-to-end invariant
   that memory budgets shape simulated time but never results. *)

module Cluster = Rapida_mapred.Cluster
module Exec_ctx = Rapida_mapred.Exec_ctx
module Job = Rapida_mapred.Job
module Memory = Rapida_mapred.Memory
module Metrics = Rapida_mapred.Metrics
module Stats = Rapida_mapred.Stats
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Relops = Rapida_relational.Relops

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run_engine kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

(* --- spec parsing ------------------------------------------------------- *)

let test_parse_spec () =
  match Memory.parse_spec "heap=64m,sort-buffer=512k,spill-threshold=0.5" with
  | Error msg -> Alcotest.fail msg
  | Ok cfg ->
    check_int "heap" (64 * 1024 * 1024) cfg.Memory.task_heap_bytes;
    check_int "sort-buffer" (512 * 1024) cfg.Memory.sort_buffer_bytes;
    Alcotest.(check (float 0.0)) "spill-threshold" 0.5 cfg.Memory.spill_threshold

let test_parse_spec_defaults () =
  (* Unspecified keys keep their defaults; suffixes are optional. *)
  match Memory.parse_spec "heap=4096" with
  | Error msg -> Alcotest.fail msg
  | Ok cfg ->
    check_int "heap in plain bytes" 4096 cfg.Memory.task_heap_bytes;
    check_int "sort-buffer untouched" Memory.default.Memory.sort_buffer_bytes
      cfg.Memory.sort_buffer_bytes;
    Alcotest.(check (float 0.0)) "threshold untouched"
      Memory.default.Memory.spill_threshold cfg.Memory.spill_threshold

let test_parse_spec_errors () =
  let expect_error spec =
    match Memory.parse_spec spec with
    | Ok _ -> Alcotest.failf "%S should not parse" spec
    | Error msg -> check_bool "non-empty diagnostic" true (msg <> "")
  in
  List.iter expect_error
    [
      "heap=banana";
      "heap";
      "bogus=1";
      "heap=-4k";
      "heap=0";
      "sort-buffer=1t";
      "spill-threshold=0";
      "spill-threshold=1.5";
      "spill-threshold=lots";
    ]

(* --- external-sort pass math -------------------------------------------- *)

let test_spill_passes_edges () =
  (* Buffer larger than the input: everything sorts in memory. *)
  check_int "fits with room" 0
    (Memory.spill_passes ~budget_bytes:1024 ~data_bytes:100);
  (* Input exactly at the threshold still fits — the boundary is
     inclusive, matching [spill_budget]'s "usable bytes" reading. *)
  check_int "exactly at budget" 0
    (Memory.spill_passes ~budget_bytes:1024 ~data_bytes:1024);
  check_int "one byte over spills" 1
    (Memory.spill_passes ~budget_bytes:1024 ~data_bytes:1025);
  (* A buffer of one record degenerates to one run per byte: 1000 runs
     need two 10-way merge passes (1000 -> 100 -> 10 merged runs would be
     three full reductions to one, but the final merge feeds the consumer
     directly, so ceil(log10 1000) = 3 priced passes). *)
  check_int "one-record buffer" 3
    (Memory.spill_passes ~budget_bytes:1 ~data_bytes:1000);
  (* Empty data never spills, whatever the budget. *)
  check_int "empty data" 0 (Memory.spill_passes ~budget_bytes:1 ~data_bytes:0)

let test_spill_passes_monotone () =
  let data = 100_000 in
  let budgets = [ 1; 7; 64; 1000; 9_999; 50_000; 100_000; 200_000 ] in
  let passes = List.map (fun b -> Memory.spill_passes ~budget_bytes:b ~data_bytes:data) budgets in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  check_bool "more budget, never more passes" true (non_increasing passes);
  check_int "unbounded end of the sweep" 0 (List.nth passes 7)

let test_oom_attempts () =
  (* The ladder burns OOM attempts but always leaves the last attempt for
     the degraded (combiner-off) rerun, and never more than two. *)
  check_int "single attempt goes straight to degraded" 0
    (Memory.oom_attempts ~max_attempts:1);
  check_int "two attempts: one OOM" 1 (Memory.oom_attempts ~max_attempts:2);
  check_int "three attempts: two OOMs" 2 (Memory.oom_attempts ~max_attempts:3);
  check_int "capped at two" 2 (Memory.oom_attempts ~max_attempts:100)

(* --- job-level pricing --------------------------------------------------- *)

let wordcount ~with_combiner : (string, string, int, string * int) Job.spec =
  {
    name = "wordcount";
    map = (fun line -> List.map (fun w -> (w, 1)) (String.split_on_char ' ' line));
    combine =
      (if with_combiner then
         Some (fun _k counts -> [ List.fold_left ( + ) 0 counts ])
       else None);
    reduce = (fun k counts -> [ (k, List.fold_left ( + ) 0 counts) ]);
    input_size = String.length;
    key_size = String.length;
    value_size = (fun _ -> 4);
    output_size = (fun (k, _) -> String.length k + 4);
  }

let lines = List.init 80 (fun i -> Printf.sprintf "alpha beta gamma %d" i)

let ctx ?(cluster = Cluster.default) () = Exec_ctx.create ~cluster ()

let bounded heap =
  Cluster.with_memory Cluster.default
    {
      Memory.task_heap_bytes = heap;
      sort_buffer_bytes = max 1 (heap / 4);
      spill_threshold = 0.8;
    }

let test_default_budget_exact () =
  (* The default cluster's generous budget prices nothing: stats carry
     zero spill work and the explicit default config is bit-identical. *)
  let _, s = Job.run (ctx ()) (wordcount ~with_combiner:true) lines in
  check_int "no spilled bytes" 0 s.Stats.spilled_bytes;
  check_int "no spill passes" 0 s.Stats.spill_passes;
  check_int "no OOM kills" 0 s.Stats.oom_kills;
  Alcotest.(check (float 0.0)) "no spill time" 0.0 s.Stats.breakdown.Stats.spill_s;
  let explicit = Cluster.with_memory Cluster.default Memory.default in
  let _, s' = Job.run (ctx ~cluster:explicit ()) (wordcount ~with_combiner:true) lines in
  check_bool "est_time_s bit-identical" true
    (s.Stats.est_time_s = s'.Stats.est_time_s);
  check_bool "breakdown bit-identical" true (s.Stats.breakdown = s'.Stats.breakdown)

let test_spill_pricing () =
  (* A sort buffer much smaller than the shuffle forces external-sort
     passes on both sides; results are untouched, time grows. *)
  let spec = wordcount ~with_combiner:false in
  let out_u, s_u = Job.run (ctx ()) spec lines in
  let out_b, s_b = Job.run (ctx ~cluster:(bounded 4096) ()) spec lines in
  Alcotest.(check (list (pair string int)))
    "spilling never changes results"
    (List.sort compare out_u) (List.sort compare out_b);
  check_bool "bytes spilled" true (s_b.Stats.spilled_bytes > 0);
  check_bool "passes counted" true (s_b.Stats.spill_passes > 0);
  check_bool "spill time in the breakdown" true
    (s_b.Stats.breakdown.Stats.spill_s > 0.0);
  check_bool "spilling costs time" true
    (s_b.Stats.est_time_s > s_u.Stats.est_time_s)

let test_oom_degraded_rerun () =
  (* A combiner whose pre-combine working set exceeds a tiny heap is
     OOM-killed, retried, and completes degraded — combiner off, bigger
     shuffle — with byte-identical results. *)
  let spec = wordcount ~with_combiner:true in
  let out_u, s_u = Job.run (ctx ()) spec lines in
  let out_b, s_b = Job.run (ctx ~cluster:(bounded 64) ()) spec lines in
  Alcotest.(check (list (pair string int)))
    "degraded rerun still answers correctly"
    (List.sort compare out_u) (List.sort compare out_b);
  check_bool "OOM kills recorded" true (s_b.Stats.oom_kills > 0);
  check_bool "combiner disabled: shuffle grows" true
    (s_b.Stats.shuffle_records > s_u.Stats.shuffle_records);
  check_bool "wasted attempts cost time" true
    (s_b.Stats.est_time_s > s_u.Stats.est_time_s)

let test_oom_respects_attempt_budget () =
  (* With max_attempts = 1 the ladder skips straight to the degraded
     rerun: no kills are priced, but the combiner still comes off. *)
  let module Fi = Rapida_mapred.Fault_injector in
  let faults = Fi.create { Fi.default with Fi.max_attempts = 1 } in
  let c = Exec_ctx.create ~cluster:(bounded 64) ~faults () in
  let out, s = Job.run c (wordcount ~with_combiner:true) lines in
  let out_u, s_u = Job.run (ctx ()) (wordcount ~with_combiner:true) lines in
  Alcotest.(check (list (pair string int)))
    "still completes" (List.sort compare out_u) (List.sort compare out);
  check_int "no attempts to burn" 0 s.Stats.oom_kills;
  check_bool "combiner still disabled" true
    (s.Stats.shuffle_records > s_u.Stats.shuffle_records)

(* --- planner degradation ------------------------------------------------- *)

let bsbm_input =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~seed:11 ~products:30 ())))

let test_mapjoin_fallback () =
  (* The relational planner broadcasts small build sides by default; a
     heap smaller than any build side forces every one back to a
     repartition join. Results survive the downgrade. *)
  let input = Lazy.force bsbm_input in
  let entry = Catalog.find_exn "MG1" in
  let q = Catalog.parse entry in
  let run heap =
    let options =
      Plan_util.make ~cluster:(bounded heap) ~map_join_threshold:(1024 * 1024) ()
    in
    let ctx = Plan_util.context options in
    match run_engine Engine.Hive_naive ctx input q with
    | Error msg -> Alcotest.fail msg
    | Ok out ->
      (out.Engine.table, Metrics.get (Exec_ctx.metrics ctx) "mem.mapjoin_fallbacks")
  in
  let table_u, fb_u = run Memory.default.Memory.task_heap_bytes in
  let table_b, fb_b = run 512 in
  check_int "generous heap: no fallbacks" 0 fb_u;
  check_bool "tiny heap: map-joins degrade" true (fb_b > 0);
  check_bool "fallback preserves results" true
    (Relops.same_results table_u table_b)

(* --- end-to-end property ------------------------------------------------- *)

(* 20 seeds x 4 engines x randomized descending heap budgets: every run
   returns byte-identical results to its unbounded baseline, and
   simulated time never decreases as the budget shrinks. *)
let test_engines_transparent_and_monotone () =
  let input = Lazy.force bsbm_input in
  let entries = [ Catalog.find_exn "G1"; Catalog.find_exn "MG1" ] in
  List.iter
    (fun entry ->
      let q = Catalog.parse entry in
      let baselines =
        List.map
          (fun kind ->
            let ctx = Plan_util.context (Plan_util.make ()) in
            match run_engine kind ctx input q with
            | Ok out -> (kind, out.Engine.table, Stats.est_time_s out.Engine.stats)
            | Error msg -> Alcotest.failf "unbounded %s: %s" entry.Catalog.id msg)
          Engine.all_kinds
      in
      for seed = 1 to 20 do
        let rng = Random.State.make [| seed; 0xbeef |] in
        (* Three random heaps spanning plenty-to-starved, descending. *)
        let heaps =
          List.sort (fun a b -> compare b a)
            [
              1 lsl (10 + Random.State.int rng 10);
              1 lsl (6 + Random.State.int rng 8);
              64 + Random.State.int rng 1024;
            ]
        in
        List.iter
          (fun (kind, base_table, base_s) ->
            let prev = ref base_s in
            List.iter
              (fun heap ->
                let ctx =
                  Plan_util.context (Plan_util.make ~cluster:(bounded heap) ())
                in
                match run_engine kind ctx input q with
                | Error msg ->
                  Alcotest.failf "%s seed %d heap %d %s: %s" entry.Catalog.id
                    seed heap (Engine.kind_name kind) msg
                | Ok out ->
                  if not (Relops.same_results base_table out.Engine.table) then
                    Alcotest.failf
                      "%s seed %d heap %d %s: result diverged under memory bound"
                      entry.Catalog.id seed heap (Engine.kind_name kind);
                  let t = Stats.est_time_s out.Engine.stats in
                  if t +. 1e-9 < !prev then
                    Alcotest.failf
                      "%s seed %d heap %d %s: shrinking the heap sped things \
                       up (%.6f < %.6f)"
                      entry.Catalog.id seed heap (Engine.kind_name kind) t !prev;
                  prev := t)
              heaps)
          baselines
      done)
    entries

let suite =
  [
    Alcotest.test_case "parse spec" `Quick test_parse_spec;
    Alcotest.test_case "parse spec defaults" `Quick test_parse_spec_defaults;
    Alcotest.test_case "parse spec errors" `Quick test_parse_spec_errors;
    Alcotest.test_case "spill pass edges" `Quick test_spill_passes_edges;
    Alcotest.test_case "spill passes monotone in budget" `Quick
      test_spill_passes_monotone;
    Alcotest.test_case "OOM attempt ladder" `Quick test_oom_attempts;
    Alcotest.test_case "default budget is exact" `Quick test_default_budget_exact;
    Alcotest.test_case "spill pricing" `Quick test_spill_pricing;
    Alcotest.test_case "OOM degraded rerun" `Quick test_oom_degraded_rerun;
    Alcotest.test_case "OOM respects attempt budget" `Quick
      test_oom_respects_attempt_budget;
    Alcotest.test_case "map-join falls back under pressure" `Quick
      test_mapjoin_fallback;
    Alcotest.test_case "engines transparent and monotone" `Slow
      test_engines_transparent_and_monotone;
  ]
