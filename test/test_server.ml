(* Query server and its supporting layers: the slot scheduler, workload
   specs, cross-query grouping, the prepared-session engine API with
   typed errors, and the server's sharing-transparency invariant —
   every server-path result byte-identical to its solo run, across
   seeds, engines, admission windows, and scheduler policies. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Batch_exec = Rapida_core.Batch_exec
module Catalog = Rapida_queries.Catalog
module Server = Rapida_server.Server
module Workload = Rapida_server.Workload
module Scheduler = Rapida_mapred.Scheduler
module Stats = Rapida_mapred.Stats
module Cluster = Rapida_mapred.Cluster
module Fi = Rapida_mapred.Fault_injector
module Experiment = Rapida_harness.Experiment

let feq = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- scheduler ----------------------------------------------------------- *)

let job ?(maps = 4) ?(reds = 2) ~t name =
  {
    Stats.name;
    kind = Stats.Map_reduce;
    input_records = 0;
    input_bytes = 0;
    shuffle_records = 0;
    shuffle_bytes = 0;
    output_records = 0;
    output_bytes = 0;
    map_tasks = maps;
    reduce_tasks = reds;
    est_time_s = t;
    breakdown = Stats.breakdown_zero;
    combine_input_records = 0;
    combine_output_records = 0;
    reduce_groups = 0;
    attempts_failed = 0;
    speculative_launched = 0;
    attempts_killed = 0;
    spilled_bytes = 0;
    spill_passes = 0;
    oom_kills = 0;
    skipped_records = 0;
  }

let cluster = Cluster.default (* 20 map slots *)

let placement_exn t id =
  match Scheduler.placement t id with
  | Some p -> p
  | None -> Alcotest.failf "no placement for item %d" id

let test_job_slots () =
  check_int "phases are sequential: peak side wins" 7
    (Stats.job_slots (job ~maps:3 ~reds:7 ~t:1.0 "j"));
  check_int "startup-only jobs still hold a slot" 1
    (Stats.job_slots (job ~maps:0 ~reds:0 ~t:1.0 "j"));
  feq "slot-seconds sum demand x time" 23.0
    (Stats.slot_seconds
       {
         Stats.empty with
         Stats.jobs =
           [ job ~maps:2 ~reds:1 ~t:4.0 "a"; job ~maps:5 ~reds:3 ~t:3.0 "b" ];
       })

let test_sched_uncontended () =
  List.iter
    (fun policy ->
      let t =
        Scheduler.simulate cluster policy
          [
            {
              Scheduler.it_id = 0;
              it_submit_s = 1.0;
              it_jobs = [ job ~maps:20 ~t:10.0 "a"; job ~maps:20 ~t:5.0 "b" ];
            };
          ]
      in
      let p = placement_exn t 0 in
      feq "alone on the cluster: no queueing" 0.0 p.Scheduler.p_queue_s;
      feq "finish = submit + dedicated time" 16.0 p.Scheduler.p_finish_s;
      feq "full-width jobs saturate the pool" 1.0 t.Scheduler.utilization)
    [ Scheduler.Fifo; Scheduler.Fair ]

let test_sched_fifo_head_of_line () =
  let item id = {
    Scheduler.it_id = id;
    it_submit_s = 0.0;
    it_jobs = [ job ~maps:20 ~t:10.0 "j" ];
  }
  in
  let t = Scheduler.simulate cluster Scheduler.Fifo [ item 0; item 1 ] in
  feq "head of line runs alone" 10.0 (placement_exn t 0).Scheduler.p_finish_s;
  feq "second waits for the first" 20.0
    (placement_exn t 1).Scheduler.p_finish_s;
  feq "second's wait is all queueing" 10.0
    (placement_exn t 1).Scheduler.p_queue_s;
  feq "makespan covers both" 20.0 t.Scheduler.makespan_s

let test_sched_fair_split () =
  let item id = {
    Scheduler.it_id = id;
    it_submit_s = 0.0;
    it_jobs = [ job ~maps:20 ~t:10.0 "j" ];
  }
  in
  let t = Scheduler.simulate cluster Scheduler.Fair [ item 0; item 1 ] in
  (* Each holds half the pool, so both progress at half rate and finish
     together — twice the dedicated time, same total work. *)
  feq "fair: both finish together" 20.0
    (placement_exn t 0).Scheduler.p_finish_s;
  feq "fair: both finish together (2)" 20.0
    (placement_exn t 1).Scheduler.p_finish_s;
  feq "contention stretches time, not work" 1.0 t.Scheduler.utilization

let test_sched_no_contention_small_demand () =
  List.iter
    (fun policy ->
      let item id = {
        Scheduler.it_id = id;
        it_submit_s = 0.0;
        it_jobs = [ job ~maps:10 ~reds:1 ~t:10.0 "j" ];
      }
      in
      let t = Scheduler.simulate cluster policy [ item 0; item 1 ] in
      feq "both fit the pool: no queueing" 0.0
        (placement_exn t 1).Scheduler.p_queue_s;
      feq "both finish at dedicated time" 10.0
        (placement_exn t 1).Scheduler.p_finish_s)
    [ Scheduler.Fifo; Scheduler.Fair ]

let test_sched_idle_gap () =
  let t =
    Scheduler.simulate cluster Scheduler.Fifo
      [
        {
          Scheduler.it_id = 0;
          it_submit_s = 0.0;
          it_jobs = [ job ~maps:20 ~t:5.0 "a" ];
        };
        {
          Scheduler.it_id = 1;
          it_submit_s = 100.0;
          it_jobs = [ job ~maps:20 ~t:5.0 "b" ];
        };
      ]
  in
  feq "late arrival starts on arrival" 105.0
    (placement_exn t 1).Scheduler.p_finish_s;
  feq "makespan spans the idle gap" 105.0 t.Scheduler.makespan_s;
  check_bool "idle gap lowers utilization" true
    (t.Scheduler.utilization < 0.2)

(* --- workload ------------------------------------------------------------ *)

let test_workload_parse () =
  match
    Workload.of_string "0.0 MG1\n# comment\n\n2.0 MG2 second\n1.0 G1\n"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok wl ->
    check_int "three arrivals" 3 (Workload.size wl);
    Alcotest.(check (list string))
      "sorted by time, labels kept"
      [ "MG1"; "G1"; "second" ]
      (List.map (fun a -> a.Workload.a_label) wl.Workload.arrivals);
    Alcotest.(check (list int))
      "ids are dense in time order" [ 0; 1; 2 ]
      (List.map (fun a -> a.Workload.a_id) wl.Workload.arrivals);
    feq "span is the last arrival" 2.0 (Workload.span_s wl)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_workload_parse_errors () =
  let fails ~containing src =
    match Workload.of_string src with
    | Ok _ -> Alcotest.failf "expected failure on %S" src
    | Error msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg containing)
        true
        (contains ~sub:containing msg)
  in
  fails ~containing:"line 1" "0.0 NOPE99";
  fails ~containing:"bad arrival time" "soon MG1";
  fails ~containing:"bad arrival time" "-1.0 MG1";
  fails ~containing:"empty workload" "# nothing here\n"

let test_workload_query_file () =
  let path = Filename.temp_file "rapida_wl" ".rq" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Catalog.find_exn "MG1").Catalog.sparql;
      close_out oc;
      match Workload.of_string (Printf.sprintf "1.5 @%s\n" path) with
      | Error e -> Alcotest.failf "parse failed: %s" e
      | Ok wl ->
        let a = List.hd wl.Workload.arrivals in
        Alcotest.(check string)
          "label is the file name" (Filename.basename path)
          a.Workload.a_label;
        feq "time kept" 1.5 a.Workload.a_time_s)

let test_workload_generate () =
  let wl1 = Workload.generate_exn ~seed:9 ~n:12 ~mean_gap_s:2.0 () in
  let wl2 = Workload.generate_exn ~seed:9 ~n:12 ~mean_gap_s:2.0 () in
  check_int "n arrivals" 12 (Workload.size wl1);
  Alcotest.(check (list (pair string (float 0.0))))
    "deterministic in the seed"
    (List.map
       (fun a -> (a.Workload.a_label, a.Workload.a_time_s))
       wl1.Workload.arrivals)
    (List.map
       (fun a -> (a.Workload.a_label, a.Workload.a_time_s))
       wl2.Workload.arrivals);
  let times = List.map (fun a -> a.Workload.a_time_s) wl1.Workload.arrivals in
  check_bool "times non-decreasing" true
    (List.sort compare times = times);
  feq "stream starts at zero" 0.0 (List.hd times)

let test_workload_generate_errors () =
  let expect name err r =
    match r with
    | Ok _ -> Alcotest.failf "%s: expected a generator error" name
    | Error e ->
      check_bool name true (e = err);
      check_bool (name ^ ": message is not empty") true
        (String.length (Workload.gen_error_message e) > 0)
  in
  expect "empty pool" Workload.Empty_pool
    (Workload.generate ~seed:1 ~n:3 ~mean_gap_s:1.0 ~pool:[] ());
  expect "zero count" (Workload.Bad_count 0)
    (Workload.generate ~seed:1 ~n:0 ~mean_gap_s:1.0 ());
  expect "negative count" (Workload.Bad_count (-4))
    (Workload.generate ~seed:1 ~n:(-4) ~mean_gap_s:1.0 ());
  expect "zero gap" (Workload.Bad_mean_gap 0.0)
    (Workload.generate ~seed:1 ~n:3 ~mean_gap_s:0.0 ());
  (* NaN payloads don't compare equal, so match on the constructor. *)
  (match Workload.generate ~seed:1 ~n:3 ~mean_gap_s:Float.nan () with
  | Error (Workload.Bad_mean_gap _) -> ()
  | Ok _ | Error _ ->
    Alcotest.fail "NaN gap must be rejected, not crash or loop");
  expect "bad deadline" (Workload.Bad_deadline (-2.0))
    (Workload.generate ~seed:1 ~n:3 ~mean_gap_s:1.0 ~deadline_s:(-2.0) ());
  (match Workload.generate_exn ~seed:1 ~n:0 ~mean_gap_s:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "generate_exn must raise on degenerate parameters")

let test_workload_deadlines () =
  (match
     Workload.of_string
       "0.0 MG1 deadline=120\n1.0 MG2 hot deadline=60.5\n2.0 MG3\n"
   with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok wl ->
    check_bool "has_deadlines" true (Workload.has_deadlines wl);
    Alcotest.(check (list (option (float 1e-9))))
      "deadlines parsed, label and deadline compose"
      [ Some 120.0; Some 60.5; None ]
      (List.map (fun a -> a.Workload.a_deadline_s) wl.Workload.arrivals);
    Alcotest.(check (list string))
      "labels survive the deadline token" [ "MG1"; "hot"; "MG3" ]
      (List.map (fun a -> a.Workload.a_label) wl.Workload.arrivals));
  let fails ~containing src =
    match Workload.of_string src with
    | Ok _ -> Alcotest.failf "expected failure on %S" src
    | Error msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg containing)
        true
        (contains ~sub:containing msg)
  in
  fails ~containing:"bad deadline" "0.0 MG1 deadline=0";
  fails ~containing:"bad deadline" "0.0 MG1 deadline=nope";
  fails ~containing:"line 2" "0.0 MG1\n1.0 MG2 deadline=-5";
  fails ~containing:"duplicate deadline" "0.0 MG1 deadline=5 deadline=6";
  fails ~containing:"unknown option" "0.0 MG1 priority=9";
  let wl =
    Workload.generate_exn ~seed:2 ~n:4 ~mean_gap_s:1.0 ~deadline_s:30.0 ()
  in
  check_bool "generated deadlines on every arrival" true
    (List.for_all
       (fun a -> a.Workload.a_deadline_s = Some 30.0)
       wl.Workload.arrivals)

let test_workload_duplicate_file_refs () =
  (* One broken @FILE referenced from two lines: both failures are
     line-numbered, and the second line's error surfaces without
     re-reading the file (the parse stops at the first). *)
  let missing = Filename.concat (Filename.get_temp_dir_name ()) "rapida_nope.rq" in
  (match
     Workload.of_string
       (Printf.sprintf "0.0 @%s\n1.0 @%s\n" missing missing)
   with
  | Ok _ -> Alcotest.fail "expected a read failure"
  | Error msg ->
    check_bool "read failure is line-numbered" true
      (contains ~sub:"line 1" msg);
    check_bool "read failure names the file" true
      (contains ~sub:"cannot read" msg));
  (* A valid file referenced twice parses once and works on both lines. *)
  let path = Filename.temp_file "rapida_wl" ".rq" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Catalog.find_exn "MG1").Catalog.sparql;
      close_out oc;
      match
        Workload.of_string (Printf.sprintf "0.0 @%s\n1.0 @%s\n" path path)
      with
      | Error e -> Alcotest.failf "parse failed: %s" e
      | Ok wl -> check_int "both lines kept" 2 (Workload.size wl))

(* --- cross-query grouping ------------------------------------------------ *)

let parse id = Catalog.parse (Catalog.find_exn id)

let test_shares () =
  check_bool "hive-mqo shares" true (Batch_exec.shares Engine.Hive_mqo);
  check_bool "rapid-analytics shares" true
    (Batch_exec.shares Engine.Rapid_analytics);
  check_bool "hive-naive solo" false (Batch_exec.shares Engine.Hive_naive);
  check_bool "rapid-plus solo" false (Batch_exec.shares Engine.Rapid_plus)

let member_indexes groups =
  List.concat_map
    (fun g ->
      List.map
        (fun (m : Batch_exec.member) -> m.Batch_exec.m_index)
        g.Batch_exec.g_members)
    groups
  |> List.sort compare

let test_grouping_overlap () =
  let queries = List.map parse [ "MG1"; "MG2"; "MG1" ] in
  let groups = Batch_exec.group_queries Engine.Rapid_analytics queries in
  check_int "every query lands in exactly one group" 3
    (List.length (member_indexes groups));
  Alcotest.(check (list int))
    "indexes cover the batch" [ 0; 1; 2 ] (member_indexes groups);
  let sizes =
    List.map (fun g -> List.length g.Batch_exec.g_members) groups
  in
  check_bool "overlapping BSBM queries shared a composite" true
    (List.exists (fun n -> n >= 2) sizes);
  List.iter
    (fun g ->
      if List.length g.Batch_exec.g_members >= 2 then
        check_bool "multi-member groups carry a composite" true
          (g.Batch_exec.g_composite <> None))
    groups;
  (* Pooled subquery ids must be contiguous per group — they become the
     composite's pattern ids. *)
  List.iter
    (fun g ->
      let ids =
        List.concat_map
          (fun (m : Batch_exec.member) ->
            List.map
              (fun (sq : Rapida_sparql.Analytical.subquery) ->
                sq.Rapida_sparql.Analytical.sq_id)
              m.Batch_exec.m_subqueries)
          g.Batch_exec.g_members
      in
      Alcotest.(check (list int))
        "pooled sq_ids are 0..n-1"
        (List.init (List.length ids) Fun.id)
        ids)
    groups

let test_grouping_non_sharing_kind () =
  let queries = List.map parse [ "MG1"; "MG2"; "MG1" ] in
  let groups = Batch_exec.group_queries Engine.Rapid_plus queries in
  check_int "non-sharing kinds: all singletons" 3 (List.length groups);
  Alcotest.(check (list int))
    "batch order preserved" [ 0; 1; 2 ] (member_indexes groups)

(* --- typed errors and sessions ------------------------------------------- *)

let small_input =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~seed:3 ~products:60 ())))

let fresh_ctx ?(base = Plan_util.default_options) () = Plan_util.context base

let test_error_parse () =
  let session =
    Engine.prepare Engine.Rapid_analytics (Lazy.force small_input)
  in
  match Engine.execute_sparql session (fresh_ctx ()) "SELECT nonsense {" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error (Engine.Parse_error _ as e) ->
    check_int "parse errors are usage errors" 2 (Engine.error_exit_code e);
    check_bool "message is not empty" true
      (String.length (Engine.error_message e) > 0)
  | Error e ->
    Alcotest.failf "expected Parse_error, got %s" (Engine.error_message e)

let test_error_job_failed () =
  (* Every attempt crashes and there are no retries left: the workflow
     aborts and surfaces as a structured Job_failed, not an exception. *)
  let faults = { Fi.default with Fi.seed = 1; task_fail_p = 0.9;
                 max_attempts = 1 }
  in
  let session =
    Engine.prepare Engine.Rapid_analytics (Lazy.force small_input)
  in
  let ctx = fresh_ctx ~base:(Plan_util.make ~faults ()) () in
  match Engine.execute session ctx (parse "MG1") with
  | Ok _ -> Alcotest.fail "expected an aborted workflow"
  | Error (Engine.Job_failed _ as e) ->
    check_int "job failures are runtime errors" 1 (Engine.error_exit_code e)
  | Error e ->
    Alcotest.failf "expected Job_failed, got %s" (Engine.error_message e)

let test_session_verifier () =
  let input = Lazy.force small_input in
  let verify_ctx () =
    fresh_ctx ~base:(Plan_util.make ~verify_plans:true ()) ()
  in
  let q = parse "MG1" in
  (* A per-session verifier overrides the registered default... *)
  let rejecting =
    Engine.prepare ~verifier:(fun _ _ _ -> [ "synthetic problem" ])
      Engine.Rapid_analytics input
  in
  (match Engine.execute rejecting (verify_ctx ()) q with
  | Error (Engine.Verify_failed { problems; _ } as e) ->
    Alcotest.(check (list string))
      "verifier problems carried in the payload" [ "synthetic problem" ]
      problems;
    check_int "verification failures are runtime errors" 1
      (Engine.error_exit_code e)
  | Ok _ -> Alcotest.fail "expected Verify_failed"
  | Error e ->
    Alcotest.failf "expected Verify_failed, got %s" (Engine.error_message e));
  (* ...but only when the context asks for verification... *)
  (match Engine.execute rejecting (fresh_ctx ()) q with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "verifier must be off without verify_plans: %s"
      (Engine.error_message e));
  (* ...and sessions capture the default at prepare time: re-registering
     cannot reach an existing session. *)
  Engine.set_default_verifier (fun _ _ _ -> [ "registered later" ]);
  let prepared_after = Engine.prepare Engine.Rapid_analytics input in
  Engine.set_default_verifier (fun _ _ _ -> []);
  let prepared_clean = Engine.prepare Engine.Rapid_analytics input in
  (match Engine.execute prepared_after (verify_ctx ()) q with
  | Error (Engine.Verify_failed _) -> ()
  | Ok _ -> Alcotest.fail "session must keep the verifier it captured"
  | Error e -> Alcotest.failf "unexpected error: %s" (Engine.error_message e));
  (match Engine.execute prepared_clean (verify_ctx ()) q with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "later sessions see the new default: %s"
      (Engine.error_message e));
  (* Leave the canonical static verifier installed for any suite that
     runs after this one. *)
  Rapida_analysis.Plan_verify.install_engine_hook ()

let test_percentile () =
  feq "p50 nearest-rank" 2.0 (Server.percentile 50.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "p100 is the max" 4.0 (Server.percentile 100.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "p99 of a small set is the max" 4.0
    (Server.percentile 99.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "empty input" 0.0 (Server.percentile 50.0 [])

let test_percentile_edges () =
  (* Empty and singleton inputs. *)
  feq "empty: p0" 0.0 (Server.percentile 0.0 []);
  feq "empty: p100" 0.0 (Server.percentile 100.0 []);
  List.iter
    (fun p ->
      feq
        (Printf.sprintf "singleton: p%.0f is the element" p)
        7.0
        (Server.percentile p [ 7.0 ]))
    [ 0.0; 50.0; 99.0; 100.0 ];
  (* p=0 clamps the nearest rank up to the first element (the min). *)
  feq "p0 is the min" 1.0 (Server.percentile 0.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "p100 never reads past the end" 4.0
    (Server.percentile 100.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  (* Nearest-rank on ties: duplicated values occupy distinct ranks, so
     the p50 of [1;1;2;2] is the second 1, not an interpolation. *)
  feq "ties: p50" 1.0 (Server.percentile 50.0 [ 2.0; 1.0; 2.0; 1.0 ]);
  feq "ties: p75" 2.0 (Server.percentile 75.0 [ 2.0; 1.0; 2.0; 1.0 ]);
  feq "ties: all equal" 5.0 (Server.percentile 99.0 [ 5.0; 5.0; 5.0 ])

let test_sched_one_slot_fairness () =
  (* A 1-slot cluster is the sharpest fairness probe: FIFO serializes
     (t, then 2t), Fair interleaves (both finish together at 2t) —
     same total work either way. *)
  let one_slot =
    { Cluster.default with Cluster.nodes = 1; map_slots_per_node = 1 }
  in
  let item id = {
    Scheduler.it_id = id;
    it_submit_s = 0.0;
    it_jobs = [ job ~maps:1 ~reds:1 ~t:10.0 "j" ];
  }
  in
  let fifo = Scheduler.simulate one_slot Scheduler.Fifo [ item 0; item 1 ] in
  feq "fifo: head runs alone" 10.0 (placement_exn fifo 0).Scheduler.p_finish_s;
  feq "fifo: second serialized" 20.0
    (placement_exn fifo 1).Scheduler.p_finish_s;
  let fair = Scheduler.simulate one_slot Scheduler.Fair [ item 0; item 1 ] in
  feq "fair: both finish together" 20.0
    (placement_exn fair 0).Scheduler.p_finish_s;
  feq "fair: both finish together (2)" 20.0
    (placement_exn fair 1).Scheduler.p_finish_s;
  feq "one slot is saturated either way" 1.0 fair.Scheduler.utilization;
  (* The admission-control oracle reads the same simulation. *)
  (match
     Scheduler.estimated_finish one_slot Scheduler.Fifo [ item 0; item 1 ]
       ~id:1
   with
  | Some f -> feq "estimated_finish matches the placement" 20.0 f
  | None -> Alcotest.fail "estimated_finish lost item 1");
  check_bool "estimated_finish of an unknown id" true
    (Scheduler.estimated_finish one_slot Scheduler.Fifo [ item 0 ] ~id:9
     = None)

(* --- the server ---------------------------------------------------------- *)

let overlapping_ids =
  [ "MG1"; "MG2"; "MG1"; "MG3"; "MG4"; "G1"; "MG2"; "MG1" ]

let overlapping_workload =
  lazy
    (Workload.of_entries
       (List.mapi
          (fun i id -> (0.5 *. float_of_int i, Catalog.find_exn id))
          overlapping_ids))

(* The PR's acceptance experiment: >= 8 overlapping catalog queries in
   one window run strictly fewer simulated jobs and scan strictly fewer
   bytes than back-to-back execution, with every per-query result
   identical to its solo run. *)
let test_server_savings () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  List.iter
    (fun kind ->
      let cfg = Server.config ~window_s:10.0 kind in
      let r = Server.run cfg input wl in
      let name fmt = Printf.sprintf fmt (Engine.kind_name kind) in
      check_int (name "%s: no failed queries") 0 r.Server.r_errors;
      check_bool (name "%s: every result matches its solo run") true
        r.Server.r_all_matched;
      check_bool (name "%s: strictly fewer jobs than back-to-back") true
        (r.Server.r_jobs < r.Server.r_solo_jobs);
      check_bool (name "%s: strictly fewer scan bytes than back-to-back")
        true
        (r.Server.r_input_bytes < r.Server.r_solo_input_bytes);
      check_int (name "%s: savings are the difference")
        (r.Server.r_solo_jobs - r.Server.r_jobs)
        r.Server.r_jobs_saved)
    Engine.[ Hive_mqo; Rapid_analytics ]

let test_server_no_share_baseline () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  let cfg = Server.config ~window_s:10.0 ~share:false Engine.Rapid_analytics in
  let r = Server.run cfg input wl in
  check_bool "sharing off: still correct" true r.Server.r_all_matched;
  check_int "sharing off: no jobs saved" 0 r.Server.r_jobs_saved;
  check_int "sharing off: no bytes saved" 0 r.Server.r_bytes_saved;
  List.iter
    (fun q -> check_int "sharing off: all groups singleton" 1
        q.Server.q_group_size)
    r.Server.r_queries

let test_server_report_shape () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  let cfg = Server.config ~window_s:1.2 ~policy:Scheduler.Fifo
      Engine.Rapid_analytics
  in
  let r = Server.run cfg input wl in
  check_int "every query reported" (Workload.size wl)
    (List.length r.Server.r_queries);
  check_int "batch sizes partition the workload" (Workload.size wl)
    (List.fold_left (fun acc b -> acc + b.Server.b_size) 0 r.Server.r_batches);
  check_bool "percentiles are ordered" true
    (r.Server.r_latency_p50_s <= r.Server.r_latency_p95_s
     && r.Server.r_latency_p95_s <= r.Server.r_latency_p99_s
     && r.Server.r_latency_p99_s <= r.Server.r_latency_max_s);
  check_bool "utilization is a fraction" true
    (r.Server.r_utilization >= 0.0 && r.Server.r_utilization <= 1.0 +. 1e-9);
  List.iter
    (fun q ->
      check_bool "latency covers the admission wait" true
        (q.Server.q_latency_s >= 0.0 && q.Server.q_queue_s >= 0.0))
    r.Server.r_queries

(* The server-path identity property, the PR's core invariant: across
   seeds, engines, windows, and scheduler policies, every query's
   server-path table equals its solo [Engine.execute] table (the server
   checks with Relops.same_results and reports per query). *)
let test_server_identity_across_seeds () =
  let input =
    Engine.input_of_graph
      Rapida_datagen.Bsbm.(generate (config ~seed:5 ~products:40 ()))
  in
  List.iter
    (fun seed ->
      let wl = Workload.generate_exn ~seed ~n:5 ~mean_gap_s:2.0 () in
      List.iter
        (fun kind ->
          let cfg = Server.config ~window_s:3.0 kind in
          let r = Server.run cfg input wl in
          check_bool
            (Printf.sprintf "seed %d, %s: identical to solo" seed
               (Engine.kind_name kind))
            true
            (r.Server.r_all_matched && r.Server.r_errors = 0))
        Engine.all_kinds)
    (List.init 20 Fun.id)

let test_server_identity_across_settings () =
  let input = Lazy.force small_input in
  let wl = Workload.generate_exn ~seed:4 ~n:6 ~mean_gap_s:1.5 () in
  List.iter
    (fun kind ->
      List.iter
        (fun window_s ->
          List.iter
            (fun policy ->
              List.iter
                (fun share ->
                  let cfg = Server.config ~window_s ~policy ~share kind in
                  let r = Server.run cfg input wl in
                  check_bool
                    (Printf.sprintf "%s w=%.1f %s share=%b"
                       (Engine.kind_name kind) window_s
                       (Scheduler.policy_name policy) share)
                    true
                    (r.Server.r_all_matched && r.Server.r_errors = 0))
                [ true; false ])
            [ Scheduler.Fifo; Scheduler.Fair ])
        [ 0.0; 1.0; 50.0 ])
    Engine.[ Hive_mqo; Rapid_analytics ]

(* --- overload resilience ------------------------------------------------- *)

let ov_report r =
  match r.Server.r_overload with
  | Some o -> o
  | None -> Alcotest.fail "overload layer was active but unreported"

let fate_partition r =
  let o = ov_report r in
  o.Server.o_completed + o.Server.o_shed_queue + o.Server.o_shed_infeasible
  + o.Server.o_shed_breaker + o.Server.o_missed + o.Server.o_failed

let test_server_deadline_fates () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  let n = Workload.size wl in
  let kind = Engine.Rapid_analytics in
  (* Off: no overload report, every fate trivially Completed. *)
  let off = Server.run (Server.config ~window_s:2.0 kind) input wl in
  check_bool "disabled: no overload report" true
    (off.Server.r_overload = None);
  List.iter
    (fun q ->
      check_bool "disabled: fate is Completed" true
        (q.Server.q_fate = Server.Completed);
      check_bool "disabled: always checked" true q.Server.q_checked)
    off.Server.r_queries;
  (* An impossible deadline: every query completes late. *)
  let tight =
    Server.run
      (Server.config ~window_s:2.0
         ~overload:(Server.overload ~deadline_s:0.001 ())
         kind)
      input wl
  in
  let o = ov_report tight in
  check_int "tight: all miss" n o.Server.o_missed;
  check_int "tight: none complete" 0 o.Server.o_completed;
  feq "tight: zero goodput" 0.0 o.Server.o_goodput;
  check_bool "tight: missed results still verified" true
    (tight.Server.r_all_matched && tight.Server.r_errors = 0);
  check_bool "tight: missed percentiles populated" true
    (o.Server.o_missed_p50_s > 0.0
     && o.Server.o_missed_p50_s <= o.Server.o_missed_p99_s);
  (* A generous deadline: everything completes, goodput is 1. *)
  let loose =
    Server.run
      (Server.config ~window_s:2.0
         ~overload:(Server.overload ~deadline_s:1e9 ())
         kind)
      input wl
  in
  let o = ov_report loose in
  check_int "loose: all complete" n o.Server.o_completed;
  feq "loose: full goodput" 1.0 o.Server.o_goodput;
  check_int "loose: fates partition the arrivals" n (fate_partition loose);
  (* Workload-carried deadlines activate the layer on their own. *)
  (match Workload.of_string "0.0 MG1 deadline=1e9\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok wl ->
    let r = Server.run (Server.config ~window_s:2.0 kind) input wl in
    let o = ov_report r in
    check_int "workload deadline: completed" 1 o.Server.o_completed;
    List.iter
      (fun q ->
        check_bool "workload deadline carried per query" true
          (q.Server.q_deadline_s = Some 1e9))
      r.Server.r_queries)

let shed_labels r =
  List.filter_map
    (fun q ->
      match q.Server.q_fate with
      | Server.Shed _ -> Some q.Server.q_label
      | Server.Completed | Server.Deadline_missed | Server.Failed -> None)
    r.Server.r_queries

let test_server_queue_cap_shedding () =
  let input = Lazy.force small_input in
  let kind = Engine.Rapid_analytics in
  (* All four arrive inside one admission window; room for two. *)
  let wl =
    match
      Workload.of_string
        "0.0 MG1 deadline=500000\n0.1 MG2 deadline=200000\n\
         0.2 MG3 deadline=600000\n0.3 MG4 deadline=250000\n"
    with
    | Ok wl -> wl
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let run policy =
    Server.run
      (Server.config ~window_s:10.0
         ~overload:(Server.overload ~queue_cap:2 ~shed_policy:policy ())
         kind)
      input wl
  in
  List.iter
    (fun policy ->
      let r = run policy in
      let o = ov_report r in
      let name fmt = Printf.sprintf fmt (Server.shed_policy_name policy) in
      check_int (name "%s: two shed on queue capacity") 2
        o.Server.o_shed_queue;
      check_int (name "%s: fates partition the arrivals") 4
        (fate_partition r);
      check_bool (name "%s: admitted queries stay correct") true
        (r.Server.r_all_matched && r.Server.r_errors = 0);
      List.iter
        (fun q ->
          match q.Server.q_fate with
          | Server.Shed reason ->
            check_bool (name "%s: shed reason is queue-full") true
              (reason = Server.Queue_full);
            check_int (name "%s: shed queries have no group") (-1)
              q.Server.q_group;
            check_bool (name "%s: shed queries are unchecked") true
              (not q.Server.q_checked)
          | Server.Completed | Server.Deadline_missed | Server.Failed -> ())
        r.Server.r_queries)
    Server.[ Drop_tail; Cost_aware; Deadline_aware ];
  (* Drop-tail keeps the earliest arrivals, deadline-aware the most
     urgent absolute deadlines. *)
  Alcotest.(check (list string))
    "drop-tail sheds the tail" [ "MG3"; "MG4" ]
    (shed_labels (run Server.Drop_tail));
  Alcotest.(check (list string))
    "deadline-aware sheds the laxest deadlines" [ "MG1"; "MG3" ]
    (shed_labels (run Server.Deadline_aware))

let test_server_breaker () =
  (* Every attempt fails with no retries: the first queries fail, the
     breaker opens after two consecutive failures, and later arrivals
     are shed instead of burning slots. *)
  let input = Lazy.force small_input in
  let faults = { Fi.default with Fi.seed = 1; task_fail_p = 0.9;
                 max_attempts = 1 }
  in
  let wl = Workload.generate_exn ~seed:3 ~n:8 ~mean_gap_s:0.5 () in
  let r =
    Server.run
      (Server.config ~window_s:0.0
         ~overload:(Server.overload ~breaker_k:2 ~breaker_cooldown_s:1e6 ())
         ~options:(Plan_util.make ~faults ())
         Engine.Rapid_analytics)
      input wl
  in
  let o = ov_report r in
  check_bool "breaker tripped" true (o.Server.o_breaker_trips >= 1);
  check_bool "later arrivals shed while open" true
    (o.Server.o_shed_breaker > 0);
  check_int "trip threshold consumed two failures" 2 o.Server.o_failed;
  check_int "fates partition the arrivals" 8 (fate_partition r);
  check_bool "shed-on-breaker is a typed fate" true
    (List.exists
       (fun q -> q.Server.q_fate = Server.Shed Server.Breaker_open)
       r.Server.r_queries)

let degrade_overload =
  Server.overload ~degrade:true ~degrade_depth:1 ~degrade_drain_s:0.5
    ~verify_sample:1 ()

(* The ladder's transparency contract: at every degradation level each
   completed query is byte-identical to its solo run (the heuristic
   plans change cost, never answers), here with sampling off so every
   result is actually compared. *)
let test_server_degrade_identity () =
  let input = Lazy.force small_input in
  List.iter
    (fun seed ->
      let wl = Workload.generate_exn ~seed ~n:8 ~mean_gap_s:0.2 () in
      List.iter
        (fun kind ->
          let cfg =
            Server.config ~window_s:0.0 ~overload:degrade_overload kind
          in
          let r = Server.run cfg input wl in
          let o = ov_report r in
          let name fmt =
            Printf.sprintf fmt seed (Engine.kind_name kind)
          in
          check_bool (name "seed %d, %s: ladder engaged") true
            (o.Server.o_level_steps > 0);
          check_bool (name "seed %d, %s: time accounted above level 0") true
            (List.exists
               (fun (lvl, s) -> lvl > 0 && s > 0.0)
               o.Server.o_time_in_level);
          check_int (name "seed %d, %s: every result checked") 8
            o.Server.o_checked;
          check_bool (name "seed %d, %s: degraded identical to solo") true
            (r.Server.r_all_matched && r.Server.r_errors = 0))
        Engine.[ Hive_mqo; Rapid_analytics ])
    [ 0; 1; 2; 3; 4 ]

let test_server_verify_sampling () =
  (* Same pressure, but a sparse verification sample: at ladder level 2
     only every k-th query is compared against its solo run; the rest
     are reported unchecked, never silently trusted as checked. *)
  let input = Lazy.force small_input in
  let wl = Workload.generate_exn ~seed:1 ~n:8 ~mean_gap_s:0.2 () in
  let sparse =
    Server.overload ~degrade:true ~degrade_depth:1 ~degrade_drain_s:0.5
      ~verify_sample:1000 ()
  in
  let r =
    Server.run
      (Server.config ~window_s:0.0 ~overload:sparse Engine.Rapid_analytics)
      input wl
  in
  let o = ov_report r in
  check_bool "ladder engaged" true (o.Server.o_level_steps > 0);
  check_bool "sampling skipped some checks" true (o.Server.o_checked < 8);
  check_bool "at least one query still checked" true
    (o.Server.o_checked > 0);
  check_bool "unchecked queries exist and are flagged" true
    (List.exists (fun q -> not q.Server.q_checked) r.Server.r_queries);
  check_bool "checked subset all matched" true r.Server.r_all_matched

let test_server_overload_idle_equivalence () =
  (* Knobs set but never binding: same queries, groups, rows, timings,
     and totals as the disabled run — the layer only observes. *)
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  let kind = Engine.Hive_mqo in
  let off = Server.run (Server.config ~window_s:2.0 kind) input wl in
  let idle =
    Server.run
      (Server.config ~window_s:2.0
         ~overload:(Server.overload ~queue_cap:1000 ~breaker_k:1000 ())
         kind)
      input wl
  in
  check_bool "idle layer reports" true (idle.Server.r_overload <> None);
  check_int "same jobs" off.Server.r_jobs idle.Server.r_jobs;
  check_int "same scan bytes" off.Server.r_input_bytes
    idle.Server.r_input_bytes;
  feq "same makespan" off.Server.r_makespan_s idle.Server.r_makespan_s;
  List.iter2
    (fun a b ->
      check_int "same group" a.Server.q_group b.Server.q_group;
      check_int "same rows" a.Server.q_rows b.Server.q_rows;
      feq "same latency" a.Server.q_latency_s b.Server.q_latency_s;
      check_bool "still completed" true
        (b.Server.q_fate = Server.Completed && b.Server.q_checked))
    off.Server.r_queries idle.Server.r_queries;
  let o = ov_report idle in
  check_int "nothing shed" 0
    (o.Server.o_shed_queue + o.Server.o_shed_infeasible
     + o.Server.o_shed_breaker);
  feq "full goodput" 1.0 o.Server.o_goodput

(* The acceptance sweep at unit scale: under the heaviest arrival x
   fault grid point, the protected server's goodput strictly dominates
   the unprotected one's. *)
let test_server_goodput_dominance () =
  let input = Lazy.force small_input in
  let sweep =
    Experiment.overload_sweep ~gaps:[ 0.5 ] ~fault_rates:[ 0.08 ] ~n:12
      ~deadline_s:100.0 (Plan_util.make ()) Engine.Rapid_analytics input
  in
  match sweep.Experiment.o_points with
  | [ p ] ->
    let goodput r = (ov_report r).Server.o_goodput in
    let gp = goodput p.Experiment.o_protected in
    let gu = goodput p.Experiment.o_unprotected in
    check_bool
      (Printf.sprintf "protected %.3f > unprotected %.3f" gp gu)
      true (gp > gu);
    (* Shed queries carry typed fates, never silent drops. *)
    List.iter
      (fun q ->
        match q.Server.q_fate with
        | Server.Shed _ -> check_int "shed: no group" (-1) q.Server.q_group
        | Server.Completed | Server.Deadline_missed | Server.Failed -> ())
      p.Experiment.o_protected.Server.r_queries
  | pts -> Alcotest.failf "expected one grid point, got %d" (List.length pts)

let suite =
  [
    Alcotest.test_case "slot demand and slot-seconds" `Quick test_job_slots;
    Alcotest.test_case "scheduler: uncontended run" `Quick
      test_sched_uncontended;
    Alcotest.test_case "scheduler: FIFO head-of-line" `Quick
      test_sched_fifo_head_of_line;
    Alcotest.test_case "scheduler: fair split" `Quick test_sched_fair_split;
    Alcotest.test_case "scheduler: small demands coexist" `Quick
      test_sched_no_contention_small_demand;
    Alcotest.test_case "scheduler: idle gap" `Quick test_sched_idle_gap;
    Alcotest.test_case "workload: parse" `Quick test_workload_parse;
    Alcotest.test_case "workload: parse errors" `Quick
      test_workload_parse_errors;
    Alcotest.test_case "workload: @file queries" `Quick
      test_workload_query_file;
    Alcotest.test_case "workload: deterministic generator" `Quick
      test_workload_generate;
    Alcotest.test_case "workload: generator typed errors" `Quick
      test_workload_generate_errors;
    Alcotest.test_case "workload: deadlines" `Quick test_workload_deadlines;
    Alcotest.test_case "workload: duplicate @file refs" `Quick
      test_workload_duplicate_file_refs;
    Alcotest.test_case "grouping: sharing kinds" `Quick test_shares;
    Alcotest.test_case "grouping: overlapping queries pool" `Quick
      test_grouping_overlap;
    Alcotest.test_case "grouping: non-sharing kinds stay solo" `Quick
      test_grouping_non_sharing_kind;
    Alcotest.test_case "errors: parse maps to exit 2" `Quick test_error_parse;
    Alcotest.test_case "errors: aborted workflow is Job_failed" `Quick
      test_error_job_failed;
    Alcotest.test_case "sessions: per-session verifier" `Quick
      test_session_verifier;
    Alcotest.test_case "percentile: nearest rank" `Quick test_percentile;
    Alcotest.test_case "percentile: edge cases" `Quick test_percentile_edges;
    Alcotest.test_case "scheduler: one-slot fairness and estimated finish"
      `Quick test_sched_one_slot_fairness;
    Alcotest.test_case "server: shared plans save jobs and bytes" `Slow
      test_server_savings;
    Alcotest.test_case "server: sharing off is the solo baseline" `Slow
      test_server_no_share_baseline;
    Alcotest.test_case "server: report shape" `Slow test_server_report_shape;
    Alcotest.test_case "server: identity across 20 seeds x 4 engines" `Slow
      test_server_identity_across_seeds;
    Alcotest.test_case "server: identity across windows and policies" `Slow
      test_server_identity_across_settings;
    Alcotest.test_case "overload: deadline fates" `Slow
      test_server_deadline_fates;
    Alcotest.test_case "overload: queue-cap shedding policies" `Slow
      test_server_queue_cap_shedding;
    Alcotest.test_case "overload: circuit breaker" `Slow test_server_breaker;
    Alcotest.test_case "overload: degraded plans identical to solo" `Slow
      test_server_degrade_identity;
    Alcotest.test_case "overload: verification sampling" `Slow
      test_server_verify_sampling;
    Alcotest.test_case "overload: idle layer is a no-op" `Slow
      test_server_overload_idle_equivalence;
    Alcotest.test_case "overload: protected goodput dominates" `Slow
      test_server_goodput_dominance;
  ]
