(* Query server and its supporting layers: the slot scheduler, workload
   specs, cross-query grouping, the prepared-session engine API with
   typed errors, and the server's sharing-transparency invariant —
   every server-path result byte-identical to its solo run, across
   seeds, engines, admission windows, and scheduler policies. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Batch_exec = Rapida_core.Batch_exec
module Catalog = Rapida_queries.Catalog
module Server = Rapida_server.Server
module Workload = Rapida_server.Workload
module Scheduler = Rapida_mapred.Scheduler
module Stats = Rapida_mapred.Stats
module Cluster = Rapida_mapred.Cluster
module Fi = Rapida_mapred.Fault_injector

let feq = Alcotest.(check (float 1e-6))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- scheduler ----------------------------------------------------------- *)

let job ?(maps = 4) ?(reds = 2) ~t name =
  {
    Stats.name;
    kind = Stats.Map_reduce;
    input_records = 0;
    input_bytes = 0;
    shuffle_records = 0;
    shuffle_bytes = 0;
    output_records = 0;
    output_bytes = 0;
    map_tasks = maps;
    reduce_tasks = reds;
    est_time_s = t;
    breakdown = Stats.breakdown_zero;
    combine_input_records = 0;
    combine_output_records = 0;
    reduce_groups = 0;
    attempts_failed = 0;
    speculative_launched = 0;
    attempts_killed = 0;
    spilled_bytes = 0;
    spill_passes = 0;
    oom_kills = 0;
    skipped_records = 0;
  }

let cluster = Cluster.default (* 20 map slots *)

let placement_exn t id =
  match Scheduler.placement t id with
  | Some p -> p
  | None -> Alcotest.failf "no placement for item %d" id

let test_job_slots () =
  check_int "phases are sequential: peak side wins" 7
    (Stats.job_slots (job ~maps:3 ~reds:7 ~t:1.0 "j"));
  check_int "startup-only jobs still hold a slot" 1
    (Stats.job_slots (job ~maps:0 ~reds:0 ~t:1.0 "j"));
  feq "slot-seconds sum demand x time" 23.0
    (Stats.slot_seconds
       {
         Stats.empty with
         Stats.jobs =
           [ job ~maps:2 ~reds:1 ~t:4.0 "a"; job ~maps:5 ~reds:3 ~t:3.0 "b" ];
       })

let test_sched_uncontended () =
  List.iter
    (fun policy ->
      let t =
        Scheduler.simulate cluster policy
          [
            {
              Scheduler.it_id = 0;
              it_submit_s = 1.0;
              it_jobs = [ job ~maps:20 ~t:10.0 "a"; job ~maps:20 ~t:5.0 "b" ];
            };
          ]
      in
      let p = placement_exn t 0 in
      feq "alone on the cluster: no queueing" 0.0 p.Scheduler.p_queue_s;
      feq "finish = submit + dedicated time" 16.0 p.Scheduler.p_finish_s;
      feq "full-width jobs saturate the pool" 1.0 t.Scheduler.utilization)
    [ Scheduler.Fifo; Scheduler.Fair ]

let test_sched_fifo_head_of_line () =
  let item id = {
    Scheduler.it_id = id;
    it_submit_s = 0.0;
    it_jobs = [ job ~maps:20 ~t:10.0 "j" ];
  }
  in
  let t = Scheduler.simulate cluster Scheduler.Fifo [ item 0; item 1 ] in
  feq "head of line runs alone" 10.0 (placement_exn t 0).Scheduler.p_finish_s;
  feq "second waits for the first" 20.0
    (placement_exn t 1).Scheduler.p_finish_s;
  feq "second's wait is all queueing" 10.0
    (placement_exn t 1).Scheduler.p_queue_s;
  feq "makespan covers both" 20.0 t.Scheduler.makespan_s

let test_sched_fair_split () =
  let item id = {
    Scheduler.it_id = id;
    it_submit_s = 0.0;
    it_jobs = [ job ~maps:20 ~t:10.0 "j" ];
  }
  in
  let t = Scheduler.simulate cluster Scheduler.Fair [ item 0; item 1 ] in
  (* Each holds half the pool, so both progress at half rate and finish
     together — twice the dedicated time, same total work. *)
  feq "fair: both finish together" 20.0
    (placement_exn t 0).Scheduler.p_finish_s;
  feq "fair: both finish together (2)" 20.0
    (placement_exn t 1).Scheduler.p_finish_s;
  feq "contention stretches time, not work" 1.0 t.Scheduler.utilization

let test_sched_no_contention_small_demand () =
  List.iter
    (fun policy ->
      let item id = {
        Scheduler.it_id = id;
        it_submit_s = 0.0;
        it_jobs = [ job ~maps:10 ~reds:1 ~t:10.0 "j" ];
      }
      in
      let t = Scheduler.simulate cluster policy [ item 0; item 1 ] in
      feq "both fit the pool: no queueing" 0.0
        (placement_exn t 1).Scheduler.p_queue_s;
      feq "both finish at dedicated time" 10.0
        (placement_exn t 1).Scheduler.p_finish_s)
    [ Scheduler.Fifo; Scheduler.Fair ]

let test_sched_idle_gap () =
  let t =
    Scheduler.simulate cluster Scheduler.Fifo
      [
        {
          Scheduler.it_id = 0;
          it_submit_s = 0.0;
          it_jobs = [ job ~maps:20 ~t:5.0 "a" ];
        };
        {
          Scheduler.it_id = 1;
          it_submit_s = 100.0;
          it_jobs = [ job ~maps:20 ~t:5.0 "b" ];
        };
      ]
  in
  feq "late arrival starts on arrival" 105.0
    (placement_exn t 1).Scheduler.p_finish_s;
  feq "makespan spans the idle gap" 105.0 t.Scheduler.makespan_s;
  check_bool "idle gap lowers utilization" true
    (t.Scheduler.utilization < 0.2)

(* --- workload ------------------------------------------------------------ *)

let test_workload_parse () =
  match
    Workload.of_string "0.0 MG1\n# comment\n\n2.0 MG2 second\n1.0 G1\n"
  with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok wl ->
    check_int "three arrivals" 3 (Workload.size wl);
    Alcotest.(check (list string))
      "sorted by time, labels kept"
      [ "MG1"; "G1"; "second" ]
      (List.map (fun a -> a.Workload.a_label) wl.Workload.arrivals);
    Alcotest.(check (list int))
      "ids are dense in time order" [ 0; 1; 2 ]
      (List.map (fun a -> a.Workload.a_id) wl.Workload.arrivals);
    feq "span is the last arrival" 2.0 (Workload.span_s wl)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_workload_parse_errors () =
  let fails ~containing src =
    match Workload.of_string src with
    | Ok _ -> Alcotest.failf "expected failure on %S" src
    | Error msg ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg containing)
        true
        (contains ~sub:containing msg)
  in
  fails ~containing:"line 1" "0.0 NOPE99";
  fails ~containing:"bad arrival time" "soon MG1";
  fails ~containing:"bad arrival time" "-1.0 MG1";
  fails ~containing:"empty workload" "# nothing here\n"

let test_workload_query_file () =
  let path = Filename.temp_file "rapida_wl" ".rq" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Catalog.find_exn "MG1").Catalog.sparql;
      close_out oc;
      match Workload.of_string (Printf.sprintf "1.5 @%s\n" path) with
      | Error e -> Alcotest.failf "parse failed: %s" e
      | Ok wl ->
        let a = List.hd wl.Workload.arrivals in
        Alcotest.(check string)
          "label is the file name" (Filename.basename path)
          a.Workload.a_label;
        feq "time kept" 1.5 a.Workload.a_time_s)

let test_workload_generate () =
  let wl1 = Workload.generate ~seed:9 ~n:12 ~mean_gap_s:2.0 () in
  let wl2 = Workload.generate ~seed:9 ~n:12 ~mean_gap_s:2.0 () in
  check_int "n arrivals" 12 (Workload.size wl1);
  Alcotest.(check (list (pair string (float 0.0))))
    "deterministic in the seed"
    (List.map
       (fun a -> (a.Workload.a_label, a.Workload.a_time_s))
       wl1.Workload.arrivals)
    (List.map
       (fun a -> (a.Workload.a_label, a.Workload.a_time_s))
       wl2.Workload.arrivals);
  let times = List.map (fun a -> a.Workload.a_time_s) wl1.Workload.arrivals in
  check_bool "times non-decreasing" true
    (List.sort compare times = times);
  feq "stream starts at zero" 0.0 (List.hd times)

(* --- cross-query grouping ------------------------------------------------ *)

let parse id = Catalog.parse (Catalog.find_exn id)

let test_shares () =
  check_bool "hive-mqo shares" true (Batch_exec.shares Engine.Hive_mqo);
  check_bool "rapid-analytics shares" true
    (Batch_exec.shares Engine.Rapid_analytics);
  check_bool "hive-naive solo" false (Batch_exec.shares Engine.Hive_naive);
  check_bool "rapid-plus solo" false (Batch_exec.shares Engine.Rapid_plus)

let member_indexes groups =
  List.concat_map
    (fun g ->
      List.map
        (fun (m : Batch_exec.member) -> m.Batch_exec.m_index)
        g.Batch_exec.g_members)
    groups
  |> List.sort compare

let test_grouping_overlap () =
  let queries = List.map parse [ "MG1"; "MG2"; "MG1" ] in
  let groups = Batch_exec.group_queries Engine.Rapid_analytics queries in
  check_int "every query lands in exactly one group" 3
    (List.length (member_indexes groups));
  Alcotest.(check (list int))
    "indexes cover the batch" [ 0; 1; 2 ] (member_indexes groups);
  let sizes =
    List.map (fun g -> List.length g.Batch_exec.g_members) groups
  in
  check_bool "overlapping BSBM queries shared a composite" true
    (List.exists (fun n -> n >= 2) sizes);
  List.iter
    (fun g ->
      if List.length g.Batch_exec.g_members >= 2 then
        check_bool "multi-member groups carry a composite" true
          (g.Batch_exec.g_composite <> None))
    groups;
  (* Pooled subquery ids must be contiguous per group — they become the
     composite's pattern ids. *)
  List.iter
    (fun g ->
      let ids =
        List.concat_map
          (fun (m : Batch_exec.member) ->
            List.map
              (fun (sq : Rapida_sparql.Analytical.subquery) ->
                sq.Rapida_sparql.Analytical.sq_id)
              m.Batch_exec.m_subqueries)
          g.Batch_exec.g_members
      in
      Alcotest.(check (list int))
        "pooled sq_ids are 0..n-1"
        (List.init (List.length ids) Fun.id)
        ids)
    groups

let test_grouping_non_sharing_kind () =
  let queries = List.map parse [ "MG1"; "MG2"; "MG1" ] in
  let groups = Batch_exec.group_queries Engine.Rapid_plus queries in
  check_int "non-sharing kinds: all singletons" 3 (List.length groups);
  Alcotest.(check (list int))
    "batch order preserved" [ 0; 1; 2 ] (member_indexes groups)

(* --- typed errors and sessions ------------------------------------------- *)

let small_input =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~seed:3 ~products:60 ())))

let fresh_ctx ?(base = Plan_util.default_options) () = Plan_util.context base

let test_error_parse () =
  let session =
    Engine.prepare Engine.Rapid_analytics (Lazy.force small_input)
  in
  match Engine.execute_sparql session (fresh_ctx ()) "SELECT nonsense {" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error (Engine.Parse_error _ as e) ->
    check_int "parse errors are usage errors" 2 (Engine.error_exit_code e);
    check_bool "message is not empty" true
      (String.length (Engine.error_message e) > 0)
  | Error e ->
    Alcotest.failf "expected Parse_error, got %s" (Engine.error_message e)

let test_error_job_failed () =
  (* Every attempt crashes and there are no retries left: the workflow
     aborts and surfaces as a structured Job_failed, not an exception. *)
  let faults = { Fi.default with Fi.seed = 1; task_fail_p = 0.9;
                 max_attempts = 1 }
  in
  let session =
    Engine.prepare Engine.Rapid_analytics (Lazy.force small_input)
  in
  let ctx = fresh_ctx ~base:(Plan_util.make ~faults ()) () in
  match Engine.execute session ctx (parse "MG1") with
  | Ok _ -> Alcotest.fail "expected an aborted workflow"
  | Error (Engine.Job_failed _ as e) ->
    check_int "job failures are runtime errors" 1 (Engine.error_exit_code e)
  | Error e ->
    Alcotest.failf "expected Job_failed, got %s" (Engine.error_message e)

let test_session_verifier () =
  let input = Lazy.force small_input in
  let verify_ctx () =
    fresh_ctx ~base:(Plan_util.make ~verify_plans:true ()) ()
  in
  let q = parse "MG1" in
  (* A per-session verifier overrides the registered default... *)
  let rejecting =
    Engine.prepare ~verifier:(fun _ _ _ -> [ "synthetic problem" ])
      Engine.Rapid_analytics input
  in
  (match Engine.execute rejecting (verify_ctx ()) q with
  | Error (Engine.Verify_failed { problems; _ } as e) ->
    Alcotest.(check (list string))
      "verifier problems carried in the payload" [ "synthetic problem" ]
      problems;
    check_int "verification failures are runtime errors" 1
      (Engine.error_exit_code e)
  | Ok _ -> Alcotest.fail "expected Verify_failed"
  | Error e ->
    Alcotest.failf "expected Verify_failed, got %s" (Engine.error_message e));
  (* ...but only when the context asks for verification... *)
  (match Engine.execute rejecting (fresh_ctx ()) q with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "verifier must be off without verify_plans: %s"
      (Engine.error_message e));
  (* ...and sessions capture the default at prepare time: re-registering
     cannot reach an existing session. *)
  Engine.set_default_verifier (fun _ _ _ -> [ "registered later" ]);
  let prepared_after = Engine.prepare Engine.Rapid_analytics input in
  Engine.set_default_verifier (fun _ _ _ -> []);
  let prepared_clean = Engine.prepare Engine.Rapid_analytics input in
  (match Engine.execute prepared_after (verify_ctx ()) q with
  | Error (Engine.Verify_failed _) -> ()
  | Ok _ -> Alcotest.fail "session must keep the verifier it captured"
  | Error e -> Alcotest.failf "unexpected error: %s" (Engine.error_message e));
  (match Engine.execute prepared_clean (verify_ctx ()) q with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "later sessions see the new default: %s"
      (Engine.error_message e));
  (* Leave the canonical static verifier installed for any suite that
     runs after this one. *)
  Rapida_analysis.Plan_verify.install_engine_hook ()

let test_percentile () =
  feq "p50 nearest-rank" 2.0 (Server.percentile 50.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "p100 is the max" 4.0 (Server.percentile 100.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "p99 of a small set is the max" 4.0
    (Server.percentile 99.0 [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "empty input" 0.0 (Server.percentile 50.0 [])

(* --- the server ---------------------------------------------------------- *)

let overlapping_ids =
  [ "MG1"; "MG2"; "MG1"; "MG3"; "MG4"; "G1"; "MG2"; "MG1" ]

let overlapping_workload =
  lazy
    (Workload.of_entries
       (List.mapi
          (fun i id -> (0.5 *. float_of_int i, Catalog.find_exn id))
          overlapping_ids))

(* The PR's acceptance experiment: >= 8 overlapping catalog queries in
   one window run strictly fewer simulated jobs and scan strictly fewer
   bytes than back-to-back execution, with every per-query result
   identical to its solo run. *)
let test_server_savings () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  List.iter
    (fun kind ->
      let cfg = Server.config ~window_s:10.0 kind in
      let r = Server.run cfg input wl in
      let name fmt = Printf.sprintf fmt (Engine.kind_name kind) in
      check_int (name "%s: no failed queries") 0 r.Server.r_errors;
      check_bool (name "%s: every result matches its solo run") true
        r.Server.r_all_matched;
      check_bool (name "%s: strictly fewer jobs than back-to-back") true
        (r.Server.r_jobs < r.Server.r_solo_jobs);
      check_bool (name "%s: strictly fewer scan bytes than back-to-back")
        true
        (r.Server.r_input_bytes < r.Server.r_solo_input_bytes);
      check_int (name "%s: savings are the difference")
        (r.Server.r_solo_jobs - r.Server.r_jobs)
        r.Server.r_jobs_saved)
    Engine.[ Hive_mqo; Rapid_analytics ]

let test_server_no_share_baseline () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  let cfg = Server.config ~window_s:10.0 ~share:false Engine.Rapid_analytics in
  let r = Server.run cfg input wl in
  check_bool "sharing off: still correct" true r.Server.r_all_matched;
  check_int "sharing off: no jobs saved" 0 r.Server.r_jobs_saved;
  check_int "sharing off: no bytes saved" 0 r.Server.r_bytes_saved;
  List.iter
    (fun q -> check_int "sharing off: all groups singleton" 1
        q.Server.q_group_size)
    r.Server.r_queries

let test_server_report_shape () =
  let input = Lazy.force small_input in
  let wl = Lazy.force overlapping_workload in
  let cfg = Server.config ~window_s:1.2 ~policy:Scheduler.Fifo
      Engine.Rapid_analytics
  in
  let r = Server.run cfg input wl in
  check_int "every query reported" (Workload.size wl)
    (List.length r.Server.r_queries);
  check_int "batch sizes partition the workload" (Workload.size wl)
    (List.fold_left (fun acc b -> acc + b.Server.b_size) 0 r.Server.r_batches);
  check_bool "percentiles are ordered" true
    (r.Server.r_latency_p50_s <= r.Server.r_latency_p95_s
     && r.Server.r_latency_p95_s <= r.Server.r_latency_p99_s
     && r.Server.r_latency_p99_s <= r.Server.r_latency_max_s);
  check_bool "utilization is a fraction" true
    (r.Server.r_utilization >= 0.0 && r.Server.r_utilization <= 1.0 +. 1e-9);
  List.iter
    (fun q ->
      check_bool "latency covers the admission wait" true
        (q.Server.q_latency_s >= 0.0 && q.Server.q_queue_s >= 0.0))
    r.Server.r_queries

(* The server-path identity property, the PR's core invariant: across
   seeds, engines, windows, and scheduler policies, every query's
   server-path table equals its solo [Engine.execute] table (the server
   checks with Relops.same_results and reports per query). *)
let test_server_identity_across_seeds () =
  let input =
    Engine.input_of_graph
      Rapida_datagen.Bsbm.(generate (config ~seed:5 ~products:40 ()))
  in
  List.iter
    (fun seed ->
      let wl = Workload.generate ~seed ~n:5 ~mean_gap_s:2.0 () in
      List.iter
        (fun kind ->
          let cfg = Server.config ~window_s:3.0 kind in
          let r = Server.run cfg input wl in
          check_bool
            (Printf.sprintf "seed %d, %s: identical to solo" seed
               (Engine.kind_name kind))
            true
            (r.Server.r_all_matched && r.Server.r_errors = 0))
        Engine.all_kinds)
    (List.init 20 Fun.id)

let test_server_identity_across_settings () =
  let input = Lazy.force small_input in
  let wl = Workload.generate ~seed:4 ~n:6 ~mean_gap_s:1.5 () in
  List.iter
    (fun kind ->
      List.iter
        (fun window_s ->
          List.iter
            (fun policy ->
              List.iter
                (fun share ->
                  let cfg = Server.config ~window_s ~policy ~share kind in
                  let r = Server.run cfg input wl in
                  check_bool
                    (Printf.sprintf "%s w=%.1f %s share=%b"
                       (Engine.kind_name kind) window_s
                       (Scheduler.policy_name policy) share)
                    true
                    (r.Server.r_all_matched && r.Server.r_errors = 0))
                [ true; false ])
            [ Scheduler.Fifo; Scheduler.Fair ])
        [ 0.0; 1.0; 50.0 ])
    Engine.[ Hive_mqo; Rapid_analytics ]

let suite =
  [
    Alcotest.test_case "slot demand and slot-seconds" `Quick test_job_slots;
    Alcotest.test_case "scheduler: uncontended run" `Quick
      test_sched_uncontended;
    Alcotest.test_case "scheduler: FIFO head-of-line" `Quick
      test_sched_fifo_head_of_line;
    Alcotest.test_case "scheduler: fair split" `Quick test_sched_fair_split;
    Alcotest.test_case "scheduler: small demands coexist" `Quick
      test_sched_no_contention_small_demand;
    Alcotest.test_case "scheduler: idle gap" `Quick test_sched_idle_gap;
    Alcotest.test_case "workload: parse" `Quick test_workload_parse;
    Alcotest.test_case "workload: parse errors" `Quick
      test_workload_parse_errors;
    Alcotest.test_case "workload: @file queries" `Quick
      test_workload_query_file;
    Alcotest.test_case "workload: deterministic generator" `Quick
      test_workload_generate;
    Alcotest.test_case "grouping: sharing kinds" `Quick test_shares;
    Alcotest.test_case "grouping: overlapping queries pool" `Quick
      test_grouping_overlap;
    Alcotest.test_case "grouping: non-sharing kinds stay solo" `Quick
      test_grouping_non_sharing_kind;
    Alcotest.test_case "errors: parse maps to exit 2" `Quick test_error_parse;
    Alcotest.test_case "errors: aborted workflow is Job_failed" `Quick
      test_error_job_failed;
    Alcotest.test_case "sessions: per-session verifier" `Quick
      test_session_verifier;
    Alcotest.test_case "percentile: nearest rank" `Quick test_percentile;
    Alcotest.test_case "server: shared plans save jobs and bytes" `Slow
      test_server_savings;
    Alcotest.test_case "server: sharing off is the solo baseline" `Slow
      test_server_no_share_baseline;
    Alcotest.test_case "server: report shape" `Slow test_server_report_shape;
    Alcotest.test_case "server: identity across 20 seeds x 4 engines" `Slow
      test_server_identity_across_seeds;
    Alcotest.test_case "server: identity across windows and policies" `Slow
      test_server_identity_across_settings;
  ]
