(* RDF substrate: terms, triples, graph indexes, dictionary encoding, and
   the N-Triples round trip. *)

open Rapida_rdf

let term = Alcotest.testable Term.pp Term.equal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- generators for property tests -------------------------------------- *)

let gen_simple_string =
  QCheck2.Gen.(
    string_size ~gen:(oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9' ]) (1 -- 12))

let gen_escapable_string =
  QCheck2.Gen.(
    string_size
      ~gen:
        (oneof
           [ char_range 'a' 'z'; return '"'; return '\\'; return '\n';
             return '\t'; return ' ' ])
      (0 -- 12))

let gen_term =
  QCheck2.Gen.(
    oneof
      [
        map (fun s -> Term.iri ("http://x.test/" ^ s)) gen_simple_string;
        map Term.str gen_escapable_string;
        map Term.int (int_range (-1000000) 1000000);
        map Term.decimal (float_bound_inclusive 100000.0);
        map Term.boolean bool;
        map (fun s -> Term.date ("2015-01-" ^ Printf.sprintf "%02d" (1 + (abs s mod 28)))) int;
        map Term.bnode gen_simple_string;
      ])

let gen_triple =
  QCheck2.Gen.(
    map3 Triple.make
      (map (fun s -> Term.iri ("http://x.test/s" ^ s)) gen_simple_string)
      (map (fun s -> Term.iri ("http://x.test/p" ^ s)) gen_simple_string)
      gen_term)

(* --- unit tests ---------------------------------------------------------- *)

let test_term_compare () =
  check_bool "iri < literal" true (Term.compare (Term.iri "z") (Term.str "a") < 0);
  check_bool "literal < bnode" true (Term.compare (Term.str "z") (Term.bnode "a") < 0);
  check_bool "equal terms" true (Term.equal (Term.int 3) (Term.int 3));
  check_bool "int lex differs from string" false
    (Term.equal (Term.int 3) (Term.str "3"))

let test_term_numbers () =
  Alcotest.(check (option (float 1e-9))) "int" (Some 42.0) (Term.as_number (Term.int 42));
  Alcotest.(check (option (float 1e-9))) "decimal" (Some 1.5) (Term.as_number (Term.decimal 1.5));
  Alcotest.(check (option (float 1e-9))) "numeric string" (Some 7.0) (Term.as_number (Term.str "7"));
  Alcotest.(check (option (float 1e-9))) "iri none" None (Term.as_number (Term.iri "x"));
  Alcotest.(check (option int)) "as_int" (Some (-3)) (Term.as_int (Term.int (-3)))

let test_decimal_canonical () =
  Alcotest.(check string) "integral decimal" "3.0"
    (Term.lexical (Term.decimal 3.0));
  check_bool "12 significant digits survive" true
    (String.length (Term.lexical (Term.decimal 12345.678901234)) >= 12)

let test_graph_indexes () =
  let p1 = Term.iri "http://x.test/p1" and p2 = Term.iri "http://x.test/p2" in
  let s1 = Term.iri "http://x.test/s1" and s2 = Term.iri "http://x.test/s2" in
  let g =
    Graph.of_list
      [
        Triple.make s1 p1 (Term.int 1);
        Triple.make s1 p2 (Term.int 2);
        Triple.make s2 p1 (Term.int 3);
      ]
  in
  check_int "size" 3 (Graph.size g);
  check_int "by_subject s1" 2 (List.length (Graph.by_subject g s1));
  check_int "by_property p1" 2 (List.length (Graph.by_property g p1));
  check_int "subjects" 2 (List.length (Graph.subjects g));
  check_int "properties" 2 (List.length (Graph.properties g));
  check_int "missing subject" 0
    (List.length (Graph.by_subject g (Term.iri "http://x.test/nope")));
  let groups = Graph.fold_subject_groups g (fun _ _ acc -> acc + 1) 0 in
  check_int "subject groups" 2 groups

let test_dictionary () =
  let d = Dictionary.create () in
  let a = Dictionary.encode d (Term.iri "a") in
  let b = Dictionary.encode d (Term.str "b") in
  let a' = Dictionary.encode d (Term.iri "a") in
  check_int "idempotent" a a';
  check_bool "distinct ids" true (a <> b);
  Alcotest.check term "decode a" (Term.iri "a") (Dictionary.decode d a);
  Alcotest.check term "decode b" (Term.str "b") (Dictionary.decode d b);
  check_int "cardinal" 2 (Dictionary.cardinal d);
  Alcotest.(check (option int)) "find" (Some a) (Dictionary.find d (Term.iri "a"));
  Alcotest.check_raises "decode out of range" Not_found (fun () ->
      ignore (Dictionary.decode d 99))

let test_dictionary_growth () =
  let d = Dictionary.create () in
  for i = 0 to 4999 do
    ignore (Dictionary.encode d (Term.int i))
  done;
  check_int "cardinal after growth" 5000 (Dictionary.cardinal d);
  Alcotest.check term "decode after growth" (Term.int 4321)
    (Dictionary.decode d 4321)

let test_ntriples_examples () =
  let line = {|<http://x/s> <http://x/p> "hi \"there\""^^<http://www.w3.org/2001/XMLSchema#integer> .|} in
  (match Ntriples.parse_line line with
  | Ok (Some t) ->
    Alcotest.check term "subject" (Term.iri "http://x/s") t.Triple.s
  | Ok None -> Alcotest.fail "expected a triple"
  | Error e -> Alcotest.fail e);
  (match Ntriples.parse_line "# comment" with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should be skipped");
  (match Ntriples.parse_line "   " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank should be skipped");
  (match Ntriples.parse_line "<a> <b> ." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated triple should fail")

let test_ntriples_file () =
  let triples =
    [
      Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.str "v");
      Triple.make (Term.bnode "b1") (Term.iri "http://x/p") (Term.int 5);
    ]
  in
  let path = Filename.temp_file "rapida" ".nt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ntriples.write_file path triples;
      match Ntriples.read_file path with
      | Ok read ->
        check_int "round trip count" 2 (List.length read);
        List.iter2
          (fun a b -> check_bool "triple equal" true (Triple.equal a b))
          triples read
      | Error e -> Alcotest.fail e)

(* Three good lines with malformed lines interleaved; line numbers are
   1-based over the whole document, comments and blanks included. *)
let dirty_doc =
  String.concat "\n"
    [
      "<http://x/s1> <http://x/p> \"a\" .";
      "# comment";
      "xyz";
      "<http://x/s2> <http://x/p> \"b\" .";
      "<a> <b> .";
      "";
      "<http://x/s3> <http://x/p> \"c\" .";
    ]

let test_ntriples_located_errors () =
  (match Ntriples.parse_line_located ~line:7 "xyz <b> <c> ." with
  | Error e ->
    check_int "line" 7 e.Ntriples.l_line;
    check_int "col" 1 e.Ntriples.l_col;
    Alcotest.(check string)
      "rendered" "line 7: col 1: unexpected character 'x'"
      (Ntriples.string_of_error e)
  | Ok _ -> Alcotest.fail "expected an error");
  (match Ntriples.parse_line_located ~line:2 "<a> <b> \"unterminated" with
  | Error e ->
    check_int "line" 2 e.Ntriples.l_line;
    check_int "col past the opening quote" 10 e.Ntriples.l_col
  | Ok _ -> Alcotest.fail "expected an error");
  (* The string shims render the located error exactly as before. *)
  match Ntriples.parse_line "xyz" with
  | Error msg ->
    Alcotest.(check string) "shim format" "col 1: unexpected character 'x'" msg
  | Ok _ -> Alcotest.fail "expected an error"

let test_ntriples_modes () =
  (match Ntriples.parse_string_mode Ntriples.Strict dirty_doc with
  | Error e -> check_int "strict fails on the first bad line" 3 e.Ntriples.l_line
  | Ok _ -> Alcotest.fail "strict should fail");
  (match Ntriples.parse_string_mode (Ntriples.Skip 1) dirty_doc with
  | Error e -> check_int "skip=1 fails on the second bad line" 5 e.Ntriples.l_line
  | Ok _ -> Alcotest.fail "skip=1 should fail");
  (match Ntriples.parse_string_mode (Ntriples.Skip 2) dirty_doc with
  | Ok { Ntriples.triples; quarantined } ->
    check_int "skip=2 loads all good lines" 3 (List.length triples);
    check_int "skip=2 quarantines both" 2 (List.length quarantined)
  | Error e -> Alcotest.fail (Ntriples.string_of_error e));
  match Ntriples.parse_string_mode Ntriples.Quarantine dirty_doc with
  | Ok { Ntriples.triples; quarantined } ->
    check_int "quarantine loads all good lines" 3 (List.length triples);
    (match quarantined with
    | [ q1; q2 ] ->
      Alcotest.(check string)
        "report entry" "line 3, col 1: unexpected character 'x': \"xyz\""
        (Fmt.str "%a" Ntriples.pp_quarantined q1);
      check_int "second quarantined line" 5 q2.Ntriples.q_error.Ntriples.l_line
    | _ -> Alcotest.fail "expected two quarantined lines")
  | Error e -> Alcotest.fail (Ntriples.string_of_error e)

let test_ntriples_parse_mode () =
  check_bool "strict" true (Ntriples.parse_mode "strict" = Ok Ntriples.Strict);
  check_bool "skip default budget" true
    (Ntriples.parse_mode "skip" = Ok (Ntriples.Skip 100));
  check_bool "skip=7" true (Ntriples.parse_mode "skip=7" = Ok (Ntriples.Skip 7));
  check_bool "quarantine" true
    (Ntriples.parse_mode "quarantine" = Ok Ntriples.Quarantine);
  List.iter
    (fun s ->
      match Ntriples.parse_mode s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error msg -> check_bool "diagnostic" true (msg <> ""))
    [ "lenient"; "skip=-1"; "skip=x"; "" ]

(* --- property tests ------------------------------------------------------ *)

let prop_ntriples_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"ntriples line round-trips"
    gen_triple (fun t ->
      match Ntriples.parse_line (Ntriples.triple_to_line t) with
      | Ok (Some t') -> Triple.equal t t'
      | Ok None | Error _ -> false)

let prop_term_compare_total =
  QCheck2.Test.make ~count:500 ~name:"term compare is antisymmetric"
    QCheck2.Gen.(pair gen_term gen_term)
    (fun (a, b) ->
      let c1 = Term.compare a b and c2 = Term.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let prop_hash_consistent =
  QCheck2.Test.make ~count:500 ~name:"equal terms hash equally"
    gen_term (fun t -> Term.hash t = Term.hash t)

let suite =
  [
    Alcotest.test_case "term compare" `Quick test_term_compare;
    Alcotest.test_case "term numbers" `Quick test_term_numbers;
    Alcotest.test_case "decimal canonical form" `Quick test_decimal_canonical;
    Alcotest.test_case "graph indexes" `Quick test_graph_indexes;
    Alcotest.test_case "dictionary" `Quick test_dictionary;
    Alcotest.test_case "dictionary growth" `Quick test_dictionary_growth;
    Alcotest.test_case "ntriples examples" `Quick test_ntriples_examples;
    Alcotest.test_case "ntriples file round trip" `Quick test_ntriples_file;
    Alcotest.test_case "ntriples located errors" `Quick
      test_ntriples_located_errors;
    Alcotest.test_case "ntriples read modes" `Quick test_ntriples_modes;
    Alcotest.test_case "ntriples parse mode" `Quick test_ntriples_parse_mode;
    QCheck_alcotest.to_alcotest prop_ntriples_roundtrip;
    QCheck_alcotest.to_alcotest prop_term_compare_total;
    QCheck_alcotest.to_alcotest prop_hash_consistent;
  ]
