(* Overlap detection and composite pattern construction, tested against
   the paper's Figure 3 examples (AQ2 overlaps, AQ3 does not because the
   join roles differ) and the composite GP' of the running example. *)

module Overlap = Rapida_core.Overlap
module Composite = Rapida_core.Composite
module Analytical = Rapida_sparql.Analytical
module Star = Rapida_sparql.Star
module Ops = Rapida_ntga.Ops
module Term = Rapida_rdf.Term
module Namespace = Rapida_rdf.Namespace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let subqueries_of src =
  (Analytical.parse_exn src).Analytical.subqueries

let two src =
  match subqueries_of src with
  | [ a; b ] -> (a, b)
  | _ -> Alcotest.fail "expected two subqueries"

(* AQ2 from Figure 3: subject-object joins on both sides with matching
   roles -> the patterns overlap. *)
let aq2 =
  {|SELECT ?n1 ?n2 {
  { SELECT (COUNT(?s1) AS ?n1)
    { ?s1 a PT18 . ?s2 pr ?s1 . ?s2 pc ?o1 . ?s2 ve ?o2 . } }
  { SELECT (COUNT(?s1) AS ?n2)
    { ?s1 a PT18 . ?s1 pf ?o3 . ?s2 pr ?s1 . ?s2 pc ?o4 . } }
}|}

(* AQ3 from Figure 3: GP1 joins its stars object-subject, GP2 joins them
   object-object -> role-equivalence fails. *)
let aq3 =
  {|SELECT ?n1 ?n2 {
  { SELECT (COUNT(?s3) AS ?n1)
    { ?s3 pr ?s1 . ?s3 pc ?o5 . ?s3 ve ?s4 . ?s4 cn ?o6 . } }
  { SELECT (COUNT(?s3) AS ?n2)
    { ?s3 pr ?s1 . ?s3 pc ?o5 . ?s3 ve ?o6 . ?s4 cn ?o6 . } }
}|}

let test_aq2_overlaps () =
  let a, b = two aq2 in
  let report = Overlap.check a b in
  check_bool "AQ2 overlaps" true (Overlap.overlaps report);
  check_int "two star pairs" 2 (List.length report.Overlap.pairs)

let test_aq3_no_overlap () =
  let a, b = two aq3 in
  let report = Overlap.check a b in
  check_bool "AQ3 does not overlap" false (Overlap.overlaps report);
  check_bool "role-equivalence failure reported" true
    (List.exists
       (function Overlap.Edge_not_role_equivalent _ -> true | _ -> false)
       report.Overlap.failures)

let test_type_object_mismatch () =
  let a, b =
    two
      {|SELECT ?n1 ?n2 {
  { SELECT (COUNT(?x) AS ?n1) { ?s1 a PT18 . ?s1 pc ?x . } }
  { SELECT (COUNT(?x) AS ?n2) { ?s1 a PT9 . ?s1 pc ?x . } }
}|}
  in
  let report = Overlap.check a b in
  check_bool "different rdf:type objects do not overlap" false
    (Overlap.overlaps report)

let test_constant_conflict () =
  let a, b =
    two
      {|SELECT ?n1 ?n2 {
  { SELECT (COUNT(?x) AS ?n1) { ?s pub_type "News" . ?s chem ?x . } }
  { SELECT (COUNT(?x) AS ?n2) { ?s pub_type "Review" . ?s chem ?x . } }
}|}
  in
  check_bool "conflicting constants rejected" false
    (Overlap.overlaps (Overlap.check a b))

let test_star_count_mismatch () =
  let a, b =
    two
      {|SELECT ?n1 ?n2 {
  { SELECT (COUNT(?x) AS ?n1) { ?s p ?x . ?x q ?y . } }
  { SELECT (COUNT(?x) AS ?n2) { ?s p ?x . } }
}|}
  in
  let report = Overlap.check a b in
  check_bool "star count mismatch" true
    (List.exists
       (function Overlap.Star_count_mismatch _ -> true | _ -> false)
       report.Overlap.failures)

(* The running example AQ1 / MG3 shape: composite star properties are
   {ty18, pf} / {pr, pc, ve} / {cn} with pf secondary (paper §3). *)
let test_composite_running_example () =
  let sqs =
    subqueries_of
      {|SELECT ?f ?c ?sumF ?sumT {
  { SELECT ?f ?c (SUM(?pr2) AS ?sumF)
    { ?p2 a PT18 . ?p2 pf ?f .
      ?off2 product ?p2 . ?off2 price ?pr2 . ?off2 vendor ?v2 .
      ?v2 country ?c . }
    GROUP BY ?f ?c }
  { SELECT ?c (SUM(?pr) AS ?sumT)
    { ?p1 a PT18 .
      ?off1 product ?p1 . ?off1 price ?pr . ?off1 vendor ?v1 .
      ?v1 country ?c . }
    GROUP BY ?c }
}|}
  in
  match Composite.build sqs with
  | Error e -> Alcotest.fail e
  | Ok composite ->
    check_int "three composite stars" 3 (List.length composite.Composite.stars);
    let star0 = List.nth composite.Composite.stars 0 in
    let prim0 = Composite.prim_reqs composite star0 in
    let sec0 = Composite.sec_reqs composite star0 in
    check_int "star0 primary = {ty18}" 1 (List.length prim0);
    check_int "star0 secondary = {pf}" 1 (List.length sec0);
    check_bool "pf is the secondary" true
      (List.exists
         (fun (r : Ops.prop_req) ->
           Term.equal r.Ops.prop (Term.iri (Namespace.bench ^ "pf")))
         sec0);
    let star1 = List.nth composite.Composite.stars 1 in
    check_int "star1 primary = {product, price, vendor}" 3
      (List.length (Composite.prim_reqs composite star1));
    check_int "star1 no secondary" 0
      (List.length (Composite.sec_reqs composite star1));
    (* α conditions: pattern 0 requires pf; pattern 1 requires nothing. *)
    let alpha_of id =
      (List.find
         (fun (p : Composite.pattern_info) -> p.pat_id = id)
         composite.Composite.patterns)
        .Composite.alpha
    in
    check_int "alpha_0 = pf present" 1 (List.length (alpha_of 0));
    check_int "alpha_1 = true" 0 (List.length (alpha_of 1))

let test_composite_var_map () =
  let sqs =
    subqueries_of
      {|SELECT ?c1 ?c2 {
  { SELECT (COUNT(?o1) AS ?c1) { ?s1 p ?o1 . ?s1 q ?x1 . } }
  { SELECT (COUNT(?o2) AS ?c2) { ?s2 p ?o2 . ?s2 r ?y2 . } }
}|}
  in
  match Composite.build sqs with
  | Error e -> Alcotest.fail e
  | Ok composite ->
    let info =
      List.find
        (fun (p : Composite.pattern_info) -> p.pat_id = 1)
        composite.Composite.patterns
    in
    (* Pattern 1's subject and shared object map onto pattern 0's names;
       its own secondary object keeps a fresh name. *)
    Alcotest.(check string) "subject mapped" "s1" (Composite.map_var info "s2");
    Alcotest.(check string) "shared object mapped" "o1"
      (Composite.map_var info "o2");
    check_bool "own secondary keeps identity-ish name" true
      (Composite.map_var info "y2" <> "o1");
    (* Pattern columns include the mapped subject. *)
    let cols = Composite.pattern_columns composite info in
    check_bool "columns include subject" true (List.mem "s1" cols)

let test_composite_identical_patterns () =
  (* Table 2 row 1: identical patterns — no secondary, both alphas true. *)
  let sqs =
    subqueries_of
      {|SELECT ?g ?c1 ?c2 {
  { SELECT ?g (COUNT(?x) AS ?c1) { ?s k ?g . ?s v ?x . } GROUP BY ?g }
  { SELECT (COUNT(?x1) AS ?c2) { ?s1 k ?g1 . ?s1 v ?x1 . } }
}|}
  in
  match Composite.build sqs with
  | Error e -> Alcotest.fail e
  | Ok composite ->
    List.iter
      (fun star ->
        check_int "no secondary requirements" 0
          (List.length (Composite.sec_reqs composite star)))
      composite.Composite.stars;
    List.iter
      (fun (p : Composite.pattern_info) ->
        check_int "alpha true" 0 (List.length p.Composite.alpha))
      composite.Composite.patterns

let test_order_edges () =
  let sq =
    List.hd
      (subqueries_of
         "SELECT (COUNT(?a) AS ?n) { ?a p ?b . ?b q ?c . ?c r ?d . }")
  in
  match
    Composite.order_edges ~star_order:None
      ~star_ids:(List.map (fun (s : Star.t) -> s.Star.id) sq.Analytical.stars)
      ~edges:sq.Analytical.edges
  with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    check_int "chain of three stars has two edges" 2 (List.length plan)

let test_order_edges_disconnected () =
  let sq =
    List.hd
      (subqueries_of "SELECT (COUNT(?a) AS ?n) { ?a p ?b . ?c q ?d . }")
  in
  match
    Composite.order_edges ~star_order:None
      ~star_ids:(List.map (fun (s : Star.t) -> s.Star.id) sq.Analytical.stars)
      ~edges:sq.Analytical.edges
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "disconnected pattern must be rejected"

let test_join_plan_of_catalog () =
  (* Every overlapping catalog query yields a valid join plan covering all
     composite stars. *)
  List.iter
    (fun entry ->
      let q = Rapida_queries.Catalog.parse entry in
      match Composite.build q.Analytical.subqueries with
      | Error _ -> ()
      | Ok composite -> (
        match Composite.join_plan composite with
        | Ok plan ->
          check_int
            (entry.Rapida_queries.Catalog.id ^ " plan edges")
            (List.length composite.Composite.stars - 1)
            (List.length plan)
        | Error e -> Alcotest.failf "%s: %s" entry.Rapida_queries.Catalog.id e))
    Rapida_queries.Catalog.all

let test_all_catalog_multi_overlap () =
  (* Every multi-grouping catalog query is an overlapping pair — the
     workload is designed that way (Figure 7). *)
  List.iter
    (fun entry ->
      let q = Rapida_queries.Catalog.parse entry in
      match q.Analytical.subqueries with
      | [ a; b ] ->
        check_bool
          (entry.Rapida_queries.Catalog.id ^ " overlaps")
          true
          (Overlap.overlaps (Overlap.check a b))
      | _ -> ())
    Rapida_queries.Catalog.multi_grouping

let suite =
  [
    Alcotest.test_case "AQ2 overlaps (Fig 3)" `Quick test_aq2_overlaps;
    Alcotest.test_case "AQ3 does not overlap (Fig 3)" `Quick test_aq3_no_overlap;
    Alcotest.test_case "type object mismatch" `Quick test_type_object_mismatch;
    Alcotest.test_case "constant conflict" `Quick test_constant_conflict;
    Alcotest.test_case "star count mismatch" `Quick test_star_count_mismatch;
    Alcotest.test_case "composite running example" `Quick test_composite_running_example;
    Alcotest.test_case "composite var map" `Quick test_composite_var_map;
    Alcotest.test_case "composite identical patterns" `Quick test_composite_identical_patterns;
    Alcotest.test_case "order edges" `Quick test_order_edges;
    Alcotest.test_case "order edges disconnected" `Quick test_order_edges_disconnected;
    Alcotest.test_case "catalog join plans" `Quick test_join_plan_of_catalog;
    Alcotest.test_case "catalog MG queries overlap" `Quick test_all_catalog_multi_overlap;
  ]
