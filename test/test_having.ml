(* HAVING: group filters evaluated after aggregation, applied identically
   by the reference evaluator and all four engines. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Relops = Rapida_relational.Relops
module Table = Rapida_relational.Table
module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Namespace = Rapida_rdf.Namespace
module Analytical = Rapida_sparql.Analytical

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ns = Namespace.bench
let iri n = Term.iri (ns ^ n)

let graph =
  let t s p o = Triple.make (iri s) (iri p) o in
  Graph.of_list
    [
      t "o1" "product" (iri "p1"); t "o1" "price" (Term.int 10);
      t "o2" "product" (iri "p1"); t "o2" "price" (Term.int 20);
      t "o3" "product" (iri "p1"); t "o3" "price" (Term.int 30);
      t "o4" "product" (iri "p2"); t "o4" "price" (Term.int 5);
      t "p1" "label" (Term.str "one");
      t "p2" "label" (Term.str "two");
    ]

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let engines_agree src =
  let q = Analytical.parse_exn src in
  let expected = Rapida_ref.Ref_engine.run graph q in
  let input = Engine.input_of_graph graph in
  List.iter
    (fun kind ->
      match run kind (Plan_util.context Plan_util.default_options) input q with
      | Error msg -> Alcotest.failf "%s: %s" (Engine.kind_name kind) msg
      | Ok { table; _ } ->
        check_bool (Engine.kind_name kind ^ " agrees") true
          (Relops.same_results expected table))
    Engine.all_kinds;
  expected

let test_parse () =
  let q =
    Analytical.parse_exn
      "SELECT ?p (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . } \
       GROUP BY ?p HAVING(?n > 1)"
  in
  let sq = List.hd q.Analytical.subqueries in
  check_int "one having clause" 1 (List.length sq.Analytical.having)

let test_having_filters_groups () =
  let t =
    engines_agree
      "SELECT ?p (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . } \
       GROUP BY ?p HAVING(?n > 1)"
  in
  (* p1 has 3 offers, p2 only 1. *)
  check_int "only p1 survives" 1 (Table.cardinality t)

let test_having_on_sum () =
  let t =
    engines_agree
      "SELECT ?p (SUM(?pr) AS ?s) (COUNT(?pr) AS ?n) { ?o product ?p . ?o \
       price ?pr . } GROUP BY ?p HAVING(?s >= 5 && ?s < 50)"
  in
  (* p1 sums to 60 (excluded), p2 to 5 (kept). *)
  check_int "only p2 survives" 1 (Table.cardinality t)

let test_having_on_group_key () =
  let t =
    engines_agree
      {|SELECT ?p (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . }
GROUP BY ?p HAVING(?p = <http://rapida.bench/vocab/p2>)|}
  in
  check_int "key filter" 1 (Table.cardinality t)

let test_having_empties_grand_total () =
  (* A grand total whose HAVING fails produces no rows at all. *)
  let t =
    engines_agree
      "SELECT (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . } \
       HAVING(?n > 100)"
  in
  check_int "no rows" 0 (Table.cardinality t)

let test_having_in_multi_grouping () =
  let t =
    engines_agree
      {|SELECT ?p ?n ?total {
  { SELECT ?p (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . }
    GROUP BY ?p HAVING(?n > 1) }
  { SELECT (COUNT(?pr1) AS ?total) { ?o1 product ?p1 . ?o1 price ?pr1 . } }
}|}
  in
  check_int "joined with total" 1 (Table.cardinality t)

let test_unknown_having_var_rejected () =
  match
    Analytical.parse
      "SELECT ?p (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . } \
       GROUP BY ?p HAVING(?bogus > 1)"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "HAVING over an unknown variable must be rejected"

let test_having_roundtrips () =
  let src =
    "SELECT ?p (COUNT(?pr) AS ?n) { ?o product ?p . ?o price ?pr . } GROUP \
     BY ?p HAVING(?n > 1)"
  in
  match Rapida_sparql.Parser.parse src with
  | Error e -> Alcotest.fail e
  | Ok q -> (
    let printed = Rapida_sparql.To_sparql.query q in
    match Rapida_sparql.Parser.parse printed with
    | Error e -> Alcotest.failf "printed does not parse: %s\n%s" e printed
    | Ok q' -> check_bool "round trip" true (q = q'))

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "filters groups" `Quick test_having_filters_groups;
    Alcotest.test_case "on SUM with conjunction" `Quick test_having_on_sum;
    Alcotest.test_case "on group key" `Quick test_having_on_group_key;
    Alcotest.test_case "empties grand total" `Quick
      test_having_empties_grand_total;
    Alcotest.test_case "in multi-grouping query" `Quick
      test_having_in_multi_grouping;
    Alcotest.test_case "unknown variable rejected" `Quick
      test_unknown_having_var_rejected;
    Alcotest.test_case "round trips" `Quick test_having_roundtrips;
  ]
