(* Cost-based planner: the DP enumerator checked against exhaustive
   search on every <=4-star catalog unit, plan-cache LRU and
   catalog-fingerprint invalidation, the misestimate-defense circuit
   breaker, Plan_verify gating of enumerated orders, a stale-catalog
   escape, and the armed-optimizer byte-identity property across 20
   seeds and all four engines. *)

module Planner = Rapida_planner.Planner
module Join_enum = Rapida_planner.Join_enum
module Cost_model = Rapida_planner.Cost_model
module Plan_cache = Rapida_planner.Plan_cache
module Defense = Rapida_planner.Defense
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Analytical = Rapida_sparql.Analytical
module Star = Rapida_sparql.Star
module Stats_catalog = Rapida_analysis.Stats_catalog
module Card = Rapida_analysis.Interval.Card
module Plan_verify = Rapida_analysis.Plan_verify
module Relops = Rapida_relational.Relops
module Table = Rapida_relational.Table
module Cluster = Rapida_mapred.Cluster
module Prng = Rapida_datagen.Prng
module Qgen = Rapida_fuzz.Qgen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bsbm = lazy Rapida_datagen.Bsbm.(generate (config ~products:120 ()))
let bsbm_input = lazy (Engine.input_of_graph (Lazy.force bsbm))
let bsbm_catalog = lazy (Stats_catalog.build (Lazy.force bsbm))

let chem = lazy Rapida_datagen.Chem2bio.(generate (config ~compounds:60 ()))
let pubmed =
  lazy Rapida_datagen.Pubmed.(generate (config ~publications:150 ()))

(* The DP is exact: for every multi-star (<=4) unit of every catalog
   query, under every policy objective, the subset DP picks the same
   order at the same cost as scoring every connected order. *)
let test_dp_matches_exhaustive () =
  let datasets =
    [
      (Lazy.force bsbm_catalog, Catalog.by_dataset Catalog.Bsbm);
      (Stats_catalog.build (Lazy.force chem), Catalog.by_dataset Catalog.Chem2bio);
      (Stats_catalog.build (Lazy.force pubmed), Catalog.by_dataset Catalog.Pubmed);
    ]
  in
  let cluster = Cluster.default in
  let checked = ref 0 in
  List.iter
    (fun (catalog, entries) ->
      List.iter
        (fun entry ->
          let q = Catalog.parse entry in
          List.iter
            (fun (sq : Analytical.subquery) ->
              let stars = sq.Analytical.stars in
              let n = List.length stars in
              if n >= 2 && n <= 4 then
                let input =
                  Join_enum.make ~catalog ~cluster ~stars
                    ~edges:sq.Analytical.edges
                in
                List.iter
                  (fun policy ->
                    let objective = Cost_model.objective policy in
                    match
                      ( Join_enum.dp_order ~objective input,
                        Join_enum.exhaustive_order ~objective input )
                    with
                    | None, None -> ()
                    | Some d, Some e ->
                      incr checked;
                      Alcotest.(check (list int))
                        (Printf.sprintf "%s/%d %s order" entry.Catalog.id
                           sq.Analytical.sq_id
                           (Cost_model.policy_name policy))
                        e.Join_enum.c_order d.Join_enum.c_order;
                      Alcotest.(check (float 1e-9))
                        (Printf.sprintf "%s/%d %s objective" entry.Catalog.id
                           sq.Analytical.sq_id
                           (Cost_model.policy_name policy))
                        (objective e.Join_enum.c_cost)
                        (objective d.Join_enum.c_cost)
                    | _ ->
                      Alcotest.fail
                        (entry.Catalog.id
                        ^ ": DP and exhaustive disagree on feasibility"))
                  Cost_model.all_policies)
            q.Analytical.subqueries)
        entries)
    datasets;
  check_bool "checked a healthy number of units" true (!checked >= 20)

let test_cache_lru () =
  let c = Plan_cache.create ~capacity:2 in
  Plan_cache.add c ~shape:10L ~catalog:1L "p10";
  Plan_cache.add c ~shape:20L ~catalog:1L "p20";
  check_bool "hit 10" true
    (Plan_cache.find c ~shape:10L ~catalog:1L = Some "p10");
  (* 10 was just refreshed, so inserting 30 must evict 20. *)
  Plan_cache.add c ~shape:30L ~catalog:1L "p30";
  check_bool "20 evicted (LRU)" true
    (Plan_cache.find c ~shape:20L ~catalog:1L = None);
  check_bool "10 survives (recency refreshed)" true
    (Plan_cache.find c ~shape:10L ~catalog:1L = Some "p10");
  check_bool "30 present" true
    (Plan_cache.find c ~shape:30L ~catalog:1L = Some "p30");
  let s = Plan_cache.stats c in
  check_int "one eviction" 1 s.Plan_cache.evictions;
  check_int "at capacity" 2 s.Plan_cache.size;
  (try
     ignore (Plan_cache.create ~capacity:0);
     Alcotest.fail "capacity 0 accepted"
   with Invalid_argument _ -> ())

let test_cache_invalidation () =
  let c = Plan_cache.create ~capacity:4 in
  Plan_cache.add c ~shape:1L ~catalog:100L "old";
  check_bool "stale catalog misses" true
    (Plan_cache.find c ~shape:1L ~catalog:200L = None);
  let s = Plan_cache.stats c in
  check_int "invalidation counted" 1 s.Plan_cache.invalidations;
  check_int "stale entry dropped" 0 s.Plan_cache.size;
  Plan_cache.add c ~shape:1L ~catalog:200L "new";
  check_bool "replan under the new catalog hits" true
    (Plan_cache.find c ~shape:1L ~catalog:200L = Some "new")

let test_plan_cached () =
  let catalog = Lazy.force bsbm_catalog in
  let fp = Planner.catalog_fingerprint catalog in
  let q = Catalog.parse (Catalog.find_exn "MG1") in
  let cache = Planner.create_cache ~capacity:4 in
  let d1, m1 = Planner.plan_cached ~cache ~catalog ~catalog_fp:fp q in
  let d2, m2 = Planner.plan_cached ~cache ~catalog ~catalog_fp:fp q in
  check_bool "first plan is a miss" true (m1 = `Miss);
  check_bool "same shape is a hit" true (m2 = `Hit);
  check_bool "hit returns the cached decision" true (d1 == d2);
  (* A different catalog fingerprint must invalidate and replan. *)
  let _, m3 =
    Planner.plan_cached ~cache ~catalog ~catalog_fp:(Int64.add fp 1L) q
  in
  check_bool "changed catalog replans" true (m3 = `Miss);
  (* A different policy is a different shape fingerprint. *)
  check_bool "policy is part of the shape" true
    (Planner.shape_fingerprint Cost_model.Mid q
    <> Planner.shape_fingerprint Cost_model.Worst_case q)

let test_defense_breaker () =
  let d = Defense.create ~k:2 in
  check_bool "starts armed" true (Defense.arm_for_next d);
  Defense.observe d ~escaped:true;
  check_bool "cooling after an escape" true (Defense.state d = Defense.Cooling);
  check_bool "next query falls back" false (Defense.arm_for_next d);
  check_int "fallback counted" 1 (Defense.fallbacks d);
  check_bool "then re-arms" true (Defense.arm_for_next d);
  (* A clean optimized run resets the consecutive streak. *)
  Defense.observe d ~escaped:false;
  Defense.observe d ~escaped:true;
  check_bool "second fallback" false (Defense.arm_for_next d);
  Defense.observe d ~escaped:true;
  check_bool "k consecutive escapes trip the breaker" true (Defense.tripped d);
  check_bool "off stays off" false (Defense.arm_for_next d);
  check_int "escapes counted" 3 (Defense.escapes d);
  (try
     ignore (Defense.create ~k:0);
     Alcotest.fail "k 0 accepted"
   with Invalid_argument _ -> ())

(* Every order the planner emits passed Plan_verify; a corrupt order
   (star missing from the visit sequence) is rejected by the same
   check. *)
let test_verify_gate () =
  let catalog = Lazy.force bsbm_catalog in
  let q = Catalog.parse (Catalog.find_exn "MG1") in
  let d = Planner.plan catalog q in
  check_bool "has enumerated units" true (d.Planner.d_units <> []);
  List.iter
    (fun (u : Planner.unit_decision) ->
      check_bool (u.Planner.u_label ^ " verified") true u.Planner.u_verified)
    d.Planner.d_units;
  check_int "every verified unit emits a hint"
    (List.length d.Planner.d_units)
    (List.length d.Planner.d_join_orders);
  let sq = List.hd q.Analytical.subqueries in
  let star_ids =
    List.map (fun (s : Star.t) -> s.Star.id) sq.Analytical.stars
  in
  match star_ids with
  | first :: _ :: _ ->
    check_bool "truncated order rejected" true
      (Plan_verify.verify_join_order ~star_ids ~edges:sq.Analytical.edges
         ~order:[ first ]
      <> [])
  | _ -> Alcotest.fail "expected a multi-star subquery"

(* A catalog built from the wrong graph prices the plan on intervals
   the real data escapes: the measured cardinality falls outside the
   predicted root interval, which is exactly what cools the breaker. *)
let test_stale_catalog_escape () =
  let stale = Stats_catalog.build (Lazy.force chem) in
  let q = Catalog.parse (Catalog.find_exn "MG1") in
  let d = Planner.plan stale q in
  let input = Lazy.force bsbm_input in
  let options = Plan_util.default_options in
  match
    Engine.execute
      (Engine.prepare Engine.Rapid_analytics input)
      (Plan_util.context (Planner.apply d options))
      q
  with
  | Error e -> Alcotest.fail (Engine.error_message e)
  | Ok { table; _ } ->
    let actual = Table.cardinality table in
    check_bool "query returns rows" true (actual > 0);
    let escaped = not (Card.contains d.Planner.d_root actual) in
    check_bool "measured cardinality escapes the stale interval" true escaped;
    let def = Defense.create ~k:3 in
    Defense.observe def ~escaped;
    check_bool "escape cools the breaker" true
      (Defense.state def = Defense.Cooling)

(* With the optimizer armed, every engine's answer is byte-identical to
   its heuristic run — 20 seeds of generated analytical queries, policy
   rotating per seed, all four engines. *)
let test_identity_armed () =
  let graph = Lazy.force bsbm in
  let catalog = Lazy.force bsbm_catalog in
  let input = Lazy.force bsbm_input in
  let env = Qgen.env_of_graph graph catalog in
  let options = Plan_util.default_options in
  let policies = Cost_model.all_policies in
  let checked = ref 0 in
  for seed = 1 to 20 do
    let rng = Prng.create ~seed in
    let rec draw tries =
      if tries = 0 then None
      else
        match Analytical.of_query (Qgen.generate rng env ~mode:Qgen.Hitting) with
        | Ok aq -> Some aq
        | Error _ -> draw (tries - 1)
    in
    match draw 10 with
    | None -> ()
    | Some aq ->
      let policy = List.nth policies (seed mod List.length policies) in
      let d = Planner.plan ~policy catalog aq in
      let optimized = Planner.apply d options in
      List.iter
        (fun kind ->
          let run opts =
            Engine.execute (Engine.prepare kind input)
              (Plan_util.context opts) aq
          in
          match (run options, run optimized) with
          | Ok a, Ok b ->
            incr checked;
            check_bool
              (Printf.sprintf "seed %d %s identical" seed
                 (Engine.kind_name kind))
              true
              (Relops.same_results a.Engine.table b.Engine.table)
          | Error _, Error _ -> ()
          | _ ->
            Alcotest.fail
              (Printf.sprintf "seed %d %s: optimizer changed the outcome"
                 seed (Engine.kind_name kind)))
        Engine.all_kinds
  done;
  check_bool "checked a healthy share of runs" true (!checked >= 60)

let suite =
  [
    Alcotest.test_case "DP equals exhaustive enumeration" `Quick
      test_dp_matches_exhaustive;
    Alcotest.test_case "plan cache LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "plan cache catalog invalidation" `Quick
      test_cache_invalidation;
    Alcotest.test_case "cached planning hit/miss/replan" `Quick
      test_plan_cached;
    Alcotest.test_case "misestimate defense breaker" `Quick
      test_defense_breaker;
    Alcotest.test_case "Plan_verify gates enumerated orders" `Quick
      test_verify_gate;
    Alcotest.test_case "stale catalog escapes and cools" `Quick
      test_stale_catalog_escape;
    Alcotest.test_case "20-seed armed byte-identity" `Slow
      test_identity_armed;
  ]
