(* MapReduce simulator: execution semantics (determinism, combiner
   soundness), task estimation, and the cost model's monotonicity. *)

module Cluster = Rapida_mapred.Cluster
module Exec_ctx = Rapida_mapred.Exec_ctx
module Job = Rapida_mapred.Job
module Stats = Rapida_mapred.Stats
module Workflow = Rapida_mapred.Workflow

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every job runs inside an execution context; build one per cluster. *)
let ctx cluster = Exec_ctx.create ~cluster ()

(* A classic word-count job over strings. *)
let wordcount ~with_combiner : (string, string, int, string * int) Job.spec =
  {
    name = "wordcount";
    map = (fun line -> List.map (fun w -> (w, 1)) (String.split_on_char ' ' line));
    combine =
      (if with_combiner then
         Some (fun _k counts -> [ List.fold_left ( + ) 0 counts ])
       else None);
    reduce = (fun k counts -> [ (k, List.fold_left ( + ) 0 counts) ]);
    input_size = String.length;
    key_size = String.length;
    value_size = (fun _ -> 4);
    output_size = (fun (k, _) -> String.length k + 4);
  }

let lines = [ "a b a"; "b c"; "a"; "c c c b" ]

let test_wordcount () =
  let out, stats = Job.run (ctx Cluster.default) (wordcount ~with_combiner:false) lines in
  Alcotest.(check (list (pair string int)))
    "counts" [ ("a", 3); ("b", 3); ("c", 4) ]
    (List.sort compare out);
  check_int "input records" 4 stats.Stats.input_records;
  check_bool "shuffle bytes accounted" true (stats.Stats.shuffle_bytes > 0)

let test_combiner_equivalence () =
  let out1, s1 = Job.run (ctx Cluster.default) (wordcount ~with_combiner:false) lines in
  let out2, s2 = Job.run (ctx Cluster.default) (wordcount ~with_combiner:true) lines in
  Alcotest.(check (list (pair string int)))
    "same result" (List.sort compare out1) (List.sort compare out2);
  check_bool "combiner does not increase shuffle" true
    (s2.Stats.shuffle_records <= s1.Stats.shuffle_records)

let test_combiner_reduces_shuffle () =
  (* Force multiple map tasks so per-task combining has something to do:
     tiny blocks, repetitive input. *)
  let cluster = { Cluster.default with block_size_bytes = 8 } in
  let input = List.init 40 (fun _ -> "x x x") in
  let _, s_plain = Job.run (ctx cluster) (wordcount ~with_combiner:false) input in
  let _, s_comb = Job.run (ctx cluster) (wordcount ~with_combiner:true) input in
  check_bool "combiner shrinks shuffle" true
    (s_comb.Stats.shuffle_records < s_plain.Stats.shuffle_records)

let test_determinism () =
  let run () = fst (Job.run (ctx Cluster.default) (wordcount ~with_combiner:true) lines) in
  Alcotest.(check (list (pair string int))) "deterministic" (run ()) (run ())

let test_empty_input () =
  let out, stats = Job.run (ctx Cluster.default) (wordcount ~with_combiner:true) [] in
  check_int "no output" 0 (List.length out);
  check_int "no shuffle" 0 stats.Stats.shuffle_records;
  check_bool "still pays startup" true
    (stats.Stats.est_time_s >= Cluster.default.Cluster.job_startup_s)

let test_map_only () =
  let spec : (int, int) Job.map_only_spec =
    {
      mo_name = "double";
      mo_map = (fun x -> [ x * 2 ]);
      mo_input_size = (fun _ -> 8);
      mo_output_size = (fun _ -> 8);
    }
  in
  let out, stats = Job.run_map_only (ctx Cluster.default) spec [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "doubled" [ 2; 4; 6 ] out;
  check_bool "map-only kind" true (stats.Stats.kind = Stats.Map_only);
  check_int "no reducers" 0 stats.Stats.reduce_tasks

let test_map_task_estimation () =
  let c = { Cluster.default with block_size_bytes = 1024 } in
  check_int "one block" 1 (Job.estimate_map_tasks c ~input_bytes:100);
  check_int "exact" 2 (Job.estimate_map_tasks c ~input_bytes:2048);
  check_int "round up" 3 (Job.estimate_map_tasks c ~input_bytes:2049);
  check_int "empty input still one task" 1 (Job.estimate_map_tasks c ~input_bytes:0);
  (* One byte past a boundary opens a new split; one byte under does not. *)
  check_int "one under boundary" 1 (Job.estimate_map_tasks c ~input_bytes:1023);
  check_int "one block exactly" 1 (Job.estimate_map_tasks c ~input_bytes:1024);
  check_int "one over boundary" 2 (Job.estimate_map_tasks c ~input_bytes:1025);
  (* Splitting goes by stored (compressed) bytes: a 0.25 ratio turns
     8 raw blocks into 2 splits, and a compressed sub-block input (or a
     zero-byte one) still launches a single task. *)
  let stored bytes ratio = int_of_float (float_of_int bytes *. ratio) in
  check_int "compression shrinks splits" 2
    (Job.estimate_map_tasks c ~input_bytes:(stored (8 * 1024) 0.25));
  check_int "compressed below one block" 1
    (Job.estimate_map_tasks c ~input_bytes:(stored 2048 0.25));
  check_int "compressed to nothing" 1
    (Job.estimate_map_tasks c ~input_bytes:(stored 3 0.25))

let test_cost_monotone_in_data () =
  let spec = wordcount ~with_combiner:false in
  let small = [ "a b" ] in
  let big = List.init 200 (fun i -> Printf.sprintf "w%d x%d y%d" i i i) in
  let _, s1 = Job.run (ctx Cluster.default) spec small in
  let _, s2 = Job.run (ctx Cluster.default) spec big in
  check_bool "more data costs more" true (s2.Stats.est_time_s > s1.Stats.est_time_s)

let test_compression_reduces_map_tasks () =
  let c = { Cluster.default with block_size_bytes = 64; compression_ratio = 0.1 } in
  let input = List.init 100 (fun i -> Printf.sprintf "longish input line %d" i) in
  let _, s_comp = Job.run (ctx c) (wordcount ~with_combiner:false) input in
  let _, s_plain =
    Job.run (ctx { c with compression_ratio = 1.0 }) (wordcount ~with_combiner:false) input
  in
  check_bool "compressed input launches fewer mappers" true
    (s_comp.Stats.map_tasks < s_plain.Stats.map_tasks);
  (* ... and with map slots to spare, fewer mappers means more time. *)
  check_bool "fewer mappers cost time" true
    (s_comp.Stats.est_time_s >= s_plain.Stats.est_time_s)

let test_workflow_accumulates () =
  let wf = Workflow.create (ctx Cluster.default) in
  let _ = Workflow.run_job wf (wordcount ~with_combiner:false) lines in
  let spec : (string * int, string) Job.map_only_spec =
    {
      mo_name = "format";
      mo_map = (fun (k, v) -> [ Printf.sprintf "%s=%d" k v ]);
      mo_input_size = (fun _ -> 8);
      mo_output_size = String.length;
    }
  in
  let _ =
    Workflow.run_map_only wf spec [ ("a", 1) ]
  in
  let stats = Workflow.stats wf in
  check_int "two cycles" 2 (Stats.cycles stats);
  check_int "one full" 1 (Stats.full_cycles stats);
  check_int "one map-only" 1 (Stats.map_only_cycles stats);
  check_bool "est time positive" true (Stats.est_time_s stats > 0.0)

let test_failure_injection () =
  let module Fi = Rapida_mapred.Fault_injector in
  let spec = wordcount ~with_combiner:false in
  let input = List.init 100 (fun i -> Printf.sprintf "alpha beta %d" i) in
  let healthy = { Cluster.default with disk_mb_per_s = 0.001 } in
  let flaky =
    Fi.create
      { Fi.default with Fi.seed = 7; task_fail_p = 0.3; max_attempts = 100 }
  in
  let out_h, s_h = Job.run (ctx healthy) spec input in
  let out_f, s_f =
    Job.run (Exec_ctx.create ~cluster:healthy ~faults:flaky ()) spec input
  in
  Alcotest.(check (list (pair string int)))
    "failures never change results"
    (List.sort compare out_h) (List.sort compare out_f);
  check_bool "failures cost time" true
    (s_f.Stats.est_time_s > s_h.Stats.est_time_s)

let test_scaled_down_profile () =
  let c = Cluster.scaled_down ~factor:1000.0 in
  check_bool "bandwidth divided" true
    (c.Cluster.disk_mb_per_s < Cluster.default.Cluster.disk_mb_per_s /. 999.0);
  check_bool "startup preserved" true
    (c.Cluster.job_startup_s = Cluster.default.Cluster.job_startup_s)

(* Property: for random inputs, running with a combiner never changes the
   reduce-side result (merge-based partial aggregation soundness at the
   job level). *)
let prop_combiner_sound =
  QCheck2.Test.make ~count:200 ~name:"combiner never changes results"
    QCheck2.Gen.(
      list_size (0 -- 30)
        (string_size ~gen:(char_range 'a' 'd') (1 -- 5)))
    (fun words ->
      let lines = List.map (fun w -> w ^ " " ^ w) words in
      let cluster = { Cluster.default with block_size_bytes = 4 } in
      let a = fst (Job.run (ctx cluster) (wordcount ~with_combiner:false) lines) in
      let b = fst (Job.run (ctx cluster) (wordcount ~with_combiner:true) lines) in
      List.sort compare a = List.sort compare b)

(* --- JSON unicode escapes ------------------------------------------------ *)

module Json = Rapida_mapred.Json

let decode s =
  match Json.of_string s with
  | Ok (Json.String v) -> v
  | Ok _ -> Alcotest.fail "expected a JSON string"
  | Error e -> Alcotest.fail ("parse error: " ^ e)

let test_json_unicode_escapes () =
  (* BMP escapes decode to their UTF-8 bytes. *)
  Alcotest.(check string) "2-byte char" "\xc3\xa9" (decode {|"\u00e9"|});
  Alcotest.(check string) "3-byte char" "\xe2\x82\xac" (decode {|"\u20ac"|});
  (* A surrogate pair combines into one astral code point: U+1F389. *)
  Alcotest.(check string) "surrogate pair" "\xf0\x9f\x8e\x89"
    (decode {|"\ud83c\udf89"|});
  (* Lone surrogates (high without low, low alone) become U+FFFD, and a
     high surrogate followed by a non-surrogate keeps the follower. *)
  Alcotest.(check string) "lone high surrogate" "\xef\xbf\xbdx"
    (decode {|"\ud83cx"|});
  Alcotest.(check string) "lone low surrogate" "\xef\xbf\xbd"
    (decode {|"\udf89"|});
  Alcotest.(check string) "high then bmp escape" "\xef\xbf\xbd\xc3\xa9"
    (decode {|"\ud83c\u00e9"|});
  (* Malformed escapes are parse errors, not crashes. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed escape %s" s
      | Error _ -> ())
    [ {|"\u12"|}; {|"\uzzzz"|}; {|"\u"|} ]

let test_json_unicode_roundtrip () =
  (* to_string passes raw UTF-8 through, so decode-then-encode-then-decode
     is stable for escaped input. *)
  let v = decode {|"caf\u00e9 \ud83c\udf89"|} in
  Alcotest.(check string) "utf-8 value" "caf\xc3\xa9 \xf0\x9f\x8e\x89" v;
  match Json.of_string (Json.to_string (Json.String v)) with
  | Ok (Json.String v') -> Alcotest.(check string) "round-trip" v v'
  | _ -> Alcotest.fail "round-trip failed"

let suite =
  [
    Alcotest.test_case "wordcount" `Quick test_wordcount;
    Alcotest.test_case "combiner equivalence" `Quick test_combiner_equivalence;
    Alcotest.test_case "combiner reduces shuffle" `Quick test_combiner_reduces_shuffle;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "map-only job" `Quick test_map_only;
    Alcotest.test_case "map task estimation" `Quick test_map_task_estimation;
    Alcotest.test_case "cost monotone in data" `Quick test_cost_monotone_in_data;
    Alcotest.test_case "compression reduces mappers" `Quick test_compression_reduces_map_tasks;
    Alcotest.test_case "workflow accumulates" `Quick test_workflow_accumulates;
    Alcotest.test_case "failure injection" `Quick test_failure_injection;
    Alcotest.test_case "scaled-down profile" `Quick test_scaled_down_profile;
    QCheck_alcotest.to_alcotest prop_combiner_sound;
  ]
