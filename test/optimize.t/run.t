The cost-based planner from the command line: `--optimize` arms
interval-aware join enumeration seeded by the statistics catalog
(robustness policy `--opt-policy mid|worst-case|minimax-regret`,
default worst-case: minimize the upper-bound cost). Every chosen order
passes Plan_verify before it may execute, plans are cached by (query
shape, catalog) fingerprint, and a runtime misestimate check compares
the measured cardinality against the predicted root interval. The
layer is off by default — without `--optimize` nothing here changes
any output.

  $ alias rapida='../../bin/rapida_cli.exe'

  $ rapida gen -d bsbm -n 30 --seed 7 -o data.nt
  wrote 550 triples to data.nt

explain --optimize appends the cost-based plan: per unit (each
multi-star subquery plus the composite MQO pattern) the chosen join
order, the costed heuristic baseline, every candidate's
[lo, mid, hi] interval cost, and the plan-cache demonstration — the
same shape planned twice through a fresh cache is a miss, then a hit
that skips enumeration:

  $ rapida explain --optimize -d data.nt -c MG1 | sed -n '/cost-based plan:/,$p'
  cost-based plan:
  policy: worst-case
  root interval: [0, 5]
  subquery 0: order 0 -> 1 (cost [18.000, 18.000, 18.002]s), exhaustive, verified
    heuristic: order 0 -> 1 (cost [18.000, 18.000, 18.002]s)
    candidates:
      0 -> 1 (cost [18.000, 18.000, 18.002]s)
  subquery 1: order 0 -> 1 (cost [18.000, 18.000, 18.001]s), exhaustive, verified
    heuristic: order 0 -> 1 (cost [18.000, 18.000, 18.001]s)
    candidates:
      0 -> 1 (cost [18.000, 18.000, 18.001]s)
  composite: order 0 -> 1 (cost [18.000, 18.000, 18.002]s), exhaustive, verified
    heuristic: order 0 -> 1 (cost [18.000, 18.000, 18.002]s)
    candidates:
      0 -> 1 (cost [18.000, 18.000, 18.002]s)
  plan cache: first plan miss, replan hit (shape 389dcae1ab863149, catalog 5a5c965a94d90c44)

The policy is part of the cache key; a different policy replans:

  $ rapida explain --optimize --opt-policy mid -d data.nt -c MG1 \
  >   | sed -n '/^policy:/p;/^plan cache:/s/(shape.*)$/(fingerprints elided)/p'
  policy: mid
  plan cache: first plan miss, replan hit (fingerprints elided)

The same detail in JSON:

  $ rapida explain --optimize -d data.nt -c MG1 --json \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin)["optimize"]; \
  > print(d["policy"], [u["order"] for u in d["units"]], \
  > d["cache"]["first"], d["cache"]["replan"])'
  worst-case [[0, 1], [0, 1], [0, 1]] miss hit

query --optimize executes with the planner armed, prints the decision,
and runs the misestimate check (a sound catalog contains the measured
cardinality, so no warning). The answer itself is byte-identical to
the unoptimized run:

  $ rapida query -d data.nt -c MG1 > plain.out
  $ rapida query --optimize -d data.nt -c MG1 > opt.out
  $ sed -n '/cost-based plan:/,$p' opt.out | head -3
  cost-based plan:
  policy: worst-case
  root interval: [0, 5]
  $ sed '/cost-based plan:/,$d' opt.out | grep -v '^$' > opt-answer.out
  $ grep -v '^$' plain.out | diff - opt-answer.out && echo identical
  identical

  $ rapida query --optimize -d data.nt -c MG1 --json \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin)["optimize"]; \
  > print(d["policy"], d["misestimate"])'
  worst-case False

Each robustness policy is answer-preserving. On MG3 the enumerator
actually picks a different join order than the heuristic (its
upper-bound cost is ~37% lower), so the physical run shuffles
different volumes and — MG3 has no ORDER BY — emits its rows in a
different order; the answers are compared as sorted row sets:

  $ for p in mid worst-case minimax-regret; do
  >   rapida query --optimize --opt-policy $p -d data.nt -c MG3 \
  >     | sed '/cost-based plan:/,$d' | grep -v '^--' | grep -v '^$' \
  >     | sort > by-$p.out
  > done
  $ rapida query -d data.nt -c MG3 | grep -v '^--' | sort > mg3-plain.out
  $ diff mg3-plain.out by-mid.out && diff mg3-plain.out by-worst-case.out \
  >   && diff mg3-plain.out by-minimax-regret.out && echo identical
  identical

serve --optimize plans each executed group through the session plan
cache (repeated shapes hit; hits run no enumeration) and reports the
cache counters and the misestimate-defense state:

  $ cat > wl.txt <<EOF
  > 0.0 MG1
  > 0.5 MG2
  > 1.0 MG1
  > 1.5 MG3
  > 2.0 MG1
  > 2.5 MG2
  > EOF
  $ rapida serve --optimize -d data.nt -w wl.txt --window 2
  query server: engine=rapid-analytics window=2.0s policy=fair sharing=on
  queries: 6 in 2 batches; group sizes: 3+1+1 | 1
  latency: mean 119.55s  p50 112.84s  p95 138.25s  p99 138.25s  max 138.25s
  cluster: makespan 136.25s  slot utilization 78.0%
  server path: 16 jobs, 297368 scan bytes
  back-to-back: 19 jobs, 433621 scan bytes, makespan 282.01s, p50 131.00s
  saved: 3 jobs, 136253 scan bytes
  optimizer: policy worst-case, 4 group(s) planned; cache: 1 hit(s), 3 miss(es), 0 invalidation(s), 0 eviction(s), 3/64 entries
  optimizer defense: 0 misestimate(s), 0 fallback(s), breaker armed
  results: all 6 match solo runs

Without --optimize the very same run carries no optimizer section —
the layer is off by default:

  $ rapida serve -d data.nt -w wl.txt --window 2 | grep -c optimizer
  0
  [1]
