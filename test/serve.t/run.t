The query server admits a stream of analytical queries in windows,
merges overlapping queries into shared composite plans, and schedules
the shared workflows on the simulated cluster. Everything below is
deterministic: same dataset, same workload, same report.

  $ alias rapida='../../bin/rapida_cli.exe'

  $ rapida gen -d bsbm -n 60 --seed 3 -o data.nt
  wrote 992 triples to data.nt

A workload file lists arrival time, a catalog query id (or @FILE), and
an optional label:

  $ cat > wl.txt <<EOF
  > 0.0 MG1
  > 0.5 MG2
  > 1.0 MG1
  > 1.5 MG3
  > 2.0 MG4
  > 2.5 G1
  > 3.0 MG2
  > 3.5 MG1
  > EOF

Eight overlapping queries in 2-second admission windows: the server
path runs strictly fewer jobs and scans strictly fewer bytes than
back-to-back execution, and every result matches its solo run:

  $ rapida serve -d data.nt -w wl.txt --window 2
  query server: engine=rapid-analytics window=2.0s policy=fair sharing=on
  queries: 8 in 2 batches; group sizes: 2+1+1+1 | 2+1
  latency: mean 166.27s  p50 163.09s  p95 187.40s  p99 187.40s  max 187.40s
  cluster: makespan 185.40s  slot utilization 92.7%
  server path: 23 jobs, 789225 scan bytes
  back-to-back: 25 jobs, 1050698 scan bytes, makespan 380.02s, p50 192.51s
  saved: 2 jobs, 261473 scan bytes
  results: all 8 match solo runs

--detail prepends one line per query with its batch, overlap group,
queueing delay, and end-to-end latency:

  $ rapida serve -d data.nt -w wl.txt --window 2 --detail | head -4
  q0   MG1            arr    0.00s  batch 0  group 0(x2)  queue 127.40s  latency  187.40s  rows    6  ok
  q1   MG2            arr    0.50s  batch 0  group 1(x1)  queue  98.36s  latency  142.36s  rows    4  ok
  q2   MG1            arr    1.00s  batch 0  group 0(x2)  queue 126.40s  latency  186.40s  rows    6  ok
  q3   MG3            arr    1.50s  batch 0  group 2(x1)  queue 117.28s  latency  179.28s  rows   18  ok

Sharing can be disabled; the server then runs every query solo and the
savings vanish (a controlled baseline for the same schedule):

  $ rapida serve -d data.nt -w wl.txt --window 2 --no-share | tail -2
  saved: 0 jobs, 0 scan bytes
  results: all 8 match solo runs

FIFO scheduling and a generated Poisson workload (deterministic in the
seed):

  $ rapida serve -d data.nt --generate 6 --seed 4 --mean-gap 1.0 --policy fifo | head -2
  query server: engine=rapid-analytics window=5.0s policy=fifo sharing=on
  queries: 6 in 2 batches; group sizes: 3+1 | 1+1

--json emits the whole report as one machine-readable object:

  $ rapida serve -d data.nt -w wl.txt --window 2 --json | tr ',' '\n' | grep -E '"(jobs|jobs_saved|bytes_saved|all_matched|errors)":'
  "jobs":23
  "back_to_back":{"jobs":25
  "jobs_saved":2
  "bytes_saved":261473
  "all_matched":true
  "errors":0}

Usage errors exit with code 2 and a one-line diagnostic:

  $ rapida serve -d data.nt
  error: provide exactly one of --workload or --generate
  [2]
  $ rapida serve -d data.nt -w wl.txt --window=-1
  error: window must be a non-negative number of seconds
  [2]
  $ printf '0.0 NOPE\n' > bad.txt
  $ rapida serve -d data.nt -w bad.txt
  error: workload line 1: unknown catalog query NOPE
  [2]
