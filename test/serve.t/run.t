The query server admits a stream of analytical queries in windows,
merges overlapping queries into shared composite plans, and schedules
the shared workflows on the simulated cluster. Everything below is
deterministic: same dataset, same workload, same report.

  $ alias rapida='../../bin/rapida_cli.exe'

  $ rapida gen -d bsbm -n 60 --seed 3 -o data.nt
  wrote 992 triples to data.nt

A workload file lists arrival time, a catalog query id (or @FILE), and
an optional label:

  $ cat > wl.txt <<EOF
  > 0.0 MG1
  > 0.5 MG2
  > 1.0 MG1
  > 1.5 MG3
  > 2.0 MG4
  > 2.5 G1
  > 3.0 MG2
  > 3.5 MG1
  > EOF

Eight overlapping queries in 2-second admission windows: the server
path runs strictly fewer jobs and scans strictly fewer bytes than
back-to-back execution, and every result matches its solo run:

  $ rapida serve -d data.nt -w wl.txt --window 2
  query server: engine=rapid-analytics window=2.0s policy=fair sharing=on
  queries: 8 in 2 batches; group sizes: 2+1+1+1 | 2+1
  latency: mean 166.27s  p50 163.09s  p95 187.40s  p99 187.40s  max 187.40s
  cluster: makespan 185.40s  slot utilization 92.7%
  server path: 23 jobs, 789225 scan bytes
  back-to-back: 25 jobs, 1050698 scan bytes, makespan 380.02s, p50 192.51s
  saved: 2 jobs, 261473 scan bytes
  results: all 8 match solo runs

--detail prepends one line per query with its batch, overlap group,
queueing delay, and end-to-end latency:

  $ rapida serve -d data.nt -w wl.txt --window 2 --detail | head -4
  q0   MG1            arr    0.00s  batch 0  group 0(x2)  queue 127.40s  latency  187.40s  rows    6  ok
  q1   MG2            arr    0.50s  batch 0  group 1(x1)  queue  98.36s  latency  142.36s  rows    4  ok
  q2   MG1            arr    1.00s  batch 0  group 0(x2)  queue 126.40s  latency  186.40s  rows    6  ok
  q3   MG3            arr    1.50s  batch 0  group 2(x1)  queue 117.28s  latency  179.28s  rows   18  ok

Sharing can be disabled; the server then runs every query solo and the
savings vanish (a controlled baseline for the same schedule):

  $ rapida serve -d data.nt -w wl.txt --window 2 --no-share | tail -2
  saved: 0 jobs, 0 scan bytes
  results: all 8 match solo runs

FIFO scheduling and a generated Poisson workload (deterministic in the
seed):

  $ rapida serve -d data.nt --generate 6 --seed 4 --mean-gap 1.0 --policy fifo | head -2
  query server: engine=rapid-analytics window=5.0s policy=fifo sharing=on
  queries: 6 in 2 batches; group sizes: 3+1 | 1+1

--json emits the whole report as one machine-readable object:

  $ rapida serve -d data.nt -w wl.txt --window 2 --json | tr ',' '\n' | grep -E '"(jobs|jobs_saved|bytes_saved|all_matched|errors)":'
  "jobs":23
  "back_to_back":{"jobs":25
  "jobs_saved":2
  "bytes_saved":261473
  "all_matched":true
  "errors":0}

Usage errors exit with code 2 and a one-line diagnostic:

  $ rapida serve -d data.nt
  error: provide exactly one of --workload or --generate
  [2]
  $ rapida serve -d data.nt -w wl.txt --window=-1
  error: window must be a non-negative number of seconds
  [2]
  $ printf '0.0 NOPE\n' > bad.txt
  $ rapida serve -d data.nt -w bad.txt
  error: workload line 1: unknown catalog query NOPE
  [2]

Deadlines activate the overload layer: each query gets a relative SLO
(from the workload line or --deadline), fates are typed, and the
summary reports goodput — the deadline-met fraction of all arrivals:

  $ rapida serve -d data.nt -w wl.txt --window 2 --deadline 150
  query server: engine=rapid-analytics window=2.0s policy=fair sharing=on
  queries: 8 in 2 batches; group sizes: 2+1+1+1 | 2+1
  latency: mean 166.27s  p50 163.09s  p95 187.40s  p99 187.40s  max 187.40s
  cluster: makespan 185.40s  slot utilization 92.7%
  server path: 23 jobs, 789225 scan bytes
  back-to-back: 25 jobs, 1050698 scan bytes, makespan 380.02s, p50 192.51s
  saved: 2 jobs, 261473 scan bytes
  fates: 2 completed, 6 missed, 0 shed (0 queue-full, 0 infeasible, 0 breaker), 0 failed
  goodput: 25.0% of 8 arrivals
  completed latency: p50 142.36s  p95 143.15s  p99 143.15s
  missed latency: p50 166.40s  p95 187.40s  p99 187.40s
  verified: 8 of 8 results checked against solo
  results: all 8 match solo runs

Workload lines carry per-query deadlines with deadline=SECONDS, before
or after the label:

  $ cat > slo.txt <<EOF2
  > 0.0 MG1 deadline=500000
  > 0.1 MG2 deadline=200000
  > 0.2 MG3 deadline=600000
  > 0.3 MG4 gold deadline=250000
  > EOF2

A bounded queue sheds the overflow with a typed reason; deadline-aware
shedding keeps the most urgent absolute deadlines instead of the
earliest arrivals:

  $ rapida serve -d data.nt -w slo.txt --queue-cap 2 --shed-policy deadline-aware --detail
  q0   MG1            arr    0.00s  batch 0  group -1(x0)  queue   0.00s  latency    0.00s  rows    0  SHED (queue-full)
  q1   MG2            arr    0.10s  batch 0  group 0(x1)  queue  22.90s  latency   66.90s  rows    4  ok
  q2   MG3            arr    0.20s  batch 0  group -1(x0)  queue   0.00s  latency    0.00s  rows    0  SHED (queue-full)
  q3   gold           arr    0.30s  batch 0  group 1(x1)  queue  22.70s  latency   84.70s  rows    6  ok
  query server: engine=rapid-analytics window=5.0s policy=fair sharing=on
  queries: 4 in 1 batches; group sizes: 1+1
  latency: mean 75.80s  p50 66.90s  p95 84.70s  p99 84.70s  max 84.70s
  cluster: makespan 80.00s  slot utilization 65.1%
  server path: 7 jobs, 209328 scan bytes
  back-to-back: 14 jobs, 545938 scan bytes, makespan 212.01s, p50 87.90s
  saved: 7 jobs, 336610 scan bytes
  fates: 2 completed, 0 missed, 2 shed (2 queue-full, 0 infeasible, 0 breaker), 0 failed
  goodput: 50.0% of 4 arrivals
  completed latency: p50 66.90s  p95 84.70s  p99 84.70s
  verified: 2 of 4 results checked against solo
  results: all 4 match solo runs

Shedding and missing deadlines are not errors — the exit code stays 0
unless a query fails or diverges:

  $ rapida serve -d data.nt -w slo.txt --queue-cap 2 --shed-policy drop-tail >/dev/null && echo "exit $?"
  exit 0

The degradation ladder and the overload block in --json: under
pressure the server steps down to cheaper plans (answers verified by
sampling against solo runs) and accounts time per level:

  $ rapida serve -d data.nt --generate 8 --seed 4 --mean-gap 0.2 --window 0 --deadline 100000 --degrade --json | tr ',' '\n' | grep -E '"(goodput|shed|missed|level_steps|checked|all_matched)":'
  "checked":true}
  "checked":true}
  "checked":true}
  "checked":true}
  "checked":true}
  "checked":false}
  "checked":false}
  "checked":false}]
  "all_matched":true
  "shed":0
  "missed":0
  "goodput":1
  "level_steps":2
  "checked":5}}

Overload knobs are validated up front:

  $ rapida serve -d data.nt -w wl.txt --deadline=-5
  error: --deadline must be a positive number of seconds
  [2]
  $ rapida serve -d data.nt -w wl.txt --queue-cap 0
  error: --queue-cap must be positive
  [2]
  $ rapida serve -d data.nt -w wl.txt --shed-policy sometimes
  rapida: option '--shed-policy': expected drop-tail, cost-aware, or
          deadline-aware
  Usage: rapida serve [OPTION]…
  Try 'rapida serve --help' or 'rapida --help' for more information.
  [124]
  $ rapida serve -d data.nt -w wl.txt --breaker 0
  error: --breaker must be positive
  [2]
  $ rapida serve -d data.nt -w wl.txt --breaker-cooldown=-1
  error: --breaker-cooldown must be a positive number of seconds
  [2]

So are workload deadlines and generator parameters:

  $ printf '0.0 MG1 deadline=-5\n' > badslo.txt
  $ rapida serve -d data.nt -w badslo.txt
  error: workload line 1: bad deadline "-5" (expected a positive number of seconds)
  [2]
  $ printf 'nan MG1\n' > badtime.txt
  $ rapida serve -d data.nt -w badtime.txt
  error: workload line 1: bad arrival time "nan"
  [2]
  $ printf '0.0 @/does/not/exist.rq\n' > badref.txt
  $ rapida serve -d data.nt -w badref.txt
  error: workload line 1: cannot read /does/not/exist.rq: No such file or directory
  [2]
  $ rapida serve -d data.nt --generate 0
  error: workload generator: arrival count must be positive (got 0)
  [2]
