(* Statistics catalog + static cardinality analysis: interval algebra,
   catalog exactness and JSON round-trip, stats-aware diagnostics, the
   rule registry, and the soundness property — every plan node's
   [lo, hi] interval brackets the measured cardinality, and every
   engine's result cardinality lands inside the root interval, across
   the whole catalog, 20 seeds, and all four engines. *)

module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Analytical = Rapida_sparql.Analytical
module Diagnostic = Rapida_analysis.Diagnostic
module Interval = Rapida_analysis.Interval
module Card = Rapida_analysis.Interval.Card
module Stats_catalog = Rapida_analysis.Stats_catalog
module Card_analysis = Rapida_analysis.Card_analysis
module Rules = Rapida_analysis.Rules
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Table = Rapida_relational.Table
module Json = Rapida_mapred.Json
module Memory = Rapida_mapred.Memory

let vocab n = Term.iri ("http://rapida.bench/vocab/" ^ n)
let ex n = Term.iri ("http://example.org/" ^ n)
let rdf_type = Rapida_rdf.Namespace.rdf_type

let parse_exn src =
  match Analytical.parse src with
  | Ok q -> q
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let has_rule ~severity rule ds =
  List.exists
    (fun d -> d.Diagnostic.rule = rule && d.Diagnostic.severity = severity)
    ds

let rule_names ds =
  String.concat ", " (List.map (fun d -> d.Diagnostic.rule) ds)

(* --- interval algebra -------------------------------------------------- *)

let card_algebra () =
  let i = Card.make 3 7 in
  Alcotest.(check bool) "contains lo" true (Card.contains i 3);
  Alcotest.(check bool) "contains hi" true (Card.contains i 7);
  Alcotest.(check bool) "excludes below" false (Card.contains i 2);
  Alcotest.(check int) "crossed bounds swap" 3 (Card.make 7 3).Card.lo;
  Alcotest.(check int) "negative clamps" 0 (Card.make (-4) 2).Card.lo;
  let s = Card.add (Card.make 1 2) (Card.make 10 20) in
  Alcotest.(check int) "add lo" 11 s.Card.lo;
  Alcotest.(check int) "add hi" 22 s.Card.hi;
  let p = Card.mul (Card.make 2 3) (Card.make 5 7) in
  Alcotest.(check int) "mul lo" 10 p.Card.lo;
  Alcotest.(check int) "mul hi" 21 p.Card.hi;
  let sat = Card.mul (Card.make 2 max_int) (Card.make 2 2) in
  Alcotest.(check int) "mul saturates" max_int sat.Card.hi;
  Alcotest.(check int) "add saturates" max_int
    (Card.add (Card.exact max_int) (Card.exact 1)).Card.hi;
  let c = Card.cap (Card.make 3 9) 5 in
  Alcotest.(check int) "cap lo" 3 c.Card.lo;
  Alcotest.(check int) "cap hi" 5 c.Card.hi;
  Alcotest.(check int) "drop_lo" 0 (Card.drop_lo (Card.make 3 9)).Card.lo;
  let u = Card.union (Card.make 2 3) (Card.make 8 9) in
  Alcotest.(check int) "union lo" 2 u.Card.lo;
  Alcotest.(check int) "union hi" 9 u.Card.hi

let card_estimates () =
  Alcotest.(check (float 1e-9)) "geometric mean" 8.0
    (Card.point_estimate (Card.make 4 16));
  Alcotest.(check (float 1e-9)) "zero interval" 0.0
    (Card.point_estimate Card.zero);
  Alcotest.(check (float 1e-9)) "unbounded falls back to lo" 5.0
    (Card.point_estimate (Card.make 5 max_int));
  Alcotest.(check (float 1e-9)) "q-error exact" 1.0
    (Card.q_error (Card.exact 42) ~actual:42);
  Alcotest.(check (float 1e-9)) "q-error underestimate" 2.0
    (Card.q_error (Card.exact 5) ~actual:10);
  Alcotest.(check (float 1e-9)) "q-error empty vs empty" 1.0
    (Card.q_error Card.zero ~actual:0)

let card_json_roundtrip () =
  List.iter
    (fun i ->
      match Card.of_json (Card.to_json i) with
      | Ok i' ->
        Alcotest.(check int) "lo" i.Card.lo i'.Card.lo;
        Alcotest.(check int) "hi" i.Card.hi i'.Card.hi
      | Error msg -> Alcotest.failf "round trip failed: %s" msg)
    [ Card.zero; Card.exact 7; Card.make 3 9; Card.unknown;
      Card.make 5 max_int ]

let num_intervals () =
  let module Num = Interval.Num in
  let a = Num.closed 0.0 10.0 and b = Num.closed 20.0 30.0 in
  Alcotest.(check bool) "disjoint" true (Num.disjoint a b);
  Alcotest.(check bool) "overlap not disjoint" false
    (Num.disjoint a (Num.closed 5.0 25.0));
  Alcotest.(check bool) "inter empty" true (Num.is_empty (Num.inter a b));
  Alcotest.(check bool) "mem" true (Num.mem 10.0 a);
  let strict = Num.tighten_hi Num.full 10.0 true in
  Alcotest.(check bool) "strict bound excludes endpoint" false
    (Num.mem 10.0 strict)

(* --- statistics catalog ------------------------------------------------ *)

(* A hand-built graph with known statistics: predicate [p] has 4 triples
   over 2 subjects (fanouts 3 and 1), 3 distinct objects (one shared),
   and a duplicate-free numeric predicate [price] spanning [5, 40]. *)
let tiny_graph () =
  Graph.of_list
    [
      Triple.make (ex "s1") (vocab "p") (ex "o1");
      Triple.make (ex "s1") (vocab "p") (ex "o2");
      Triple.make (ex "s1") (vocab "p") (ex "o3");
      Triple.make (ex "s2") (vocab "p") (ex "o1");
      Triple.make (ex "s1") (vocab "price") (Term.decimal 5.0);
      Triple.make (ex "s2") (vocab "price") (Term.decimal 40.0);
      Triple.make (ex "s1") rdf_type (ex "T");
      Triple.make (ex "s2") rdf_type (ex "T");
    ]

let catalog_exact_counts () =
  let cat = Stats_catalog.build (tiny_graph ()) in
  Alcotest.(check int) "total triples" 8 cat.Stats_catalog.total_triples;
  Alcotest.(check int) "total subjects" 2 cat.Stats_catalog.total_subjects;
  (match Stats_catalog.pred cat (vocab "p") with
  | None -> Alcotest.fail "predicate p missing"
  | Some ps ->
    Alcotest.(check int) "p count" 4 ps.Stats_catalog.count;
    Alcotest.(check int) "p subjects" 2 ps.Stats_catalog.subjects;
    Alcotest.(check int) "p objects" 3 ps.Stats_catalog.objects;
    Alcotest.(check int) "p max subject fanout" 3
      ps.Stats_catalog.max_subj_fanout;
    Alcotest.(check int) "p max object fanout" 2
      ps.Stats_catalog.max_obj_fanout;
    Alcotest.(check int) "p max pair fanout" 1
      ps.Stats_catalog.max_pair_fanout;
    Alcotest.(check int) "p avg fanout rounds up" 2
      (Stats_catalog.avg_subj_fanout ps);
    Alcotest.(check bool) "p has no numeric range" true
      (ps.Stats_catalog.num_range = None));
  (match Stats_catalog.pred cat (vocab "price") with
  | None -> Alcotest.fail "predicate price missing"
  | Some ps -> (
    match ps.Stats_catalog.num_range with
    | None -> Alcotest.fail "price range missing"
    | Some r ->
      Alcotest.(check (float 1e-9)) "price min" 5.0 r.Stats_catalog.nmin;
      Alcotest.(check (float 1e-9)) "price max" 40.0 r.Stats_catalog.nmax;
      Alcotest.(check int) "all price objects numeric" ps.Stats_catalog.count
        r.Stats_catalog.ncount));
  Alcotest.(check int) "class count" 2 (Stats_catalog.class_count cat (ex "T"));
  Alcotest.(check int) "absent class" 0 (Stats_catalog.class_count cat (ex "U"));
  Alcotest.(check bool) "absent predicate" true
    (Stats_catalog.pred cat (vocab "nope") = None)

let catalog_json_roundtrip () =
  let graph = Rapida_datagen.Bsbm.(generate (config ~products:30 ())) in
  let cat = Stats_catalog.build graph in
  let json = Stats_catalog.to_json cat in
  match Stats_catalog.of_json json with
  | Error msg -> Alcotest.failf "of_json failed: %s" msg
  | Ok cat' ->
    Alcotest.(check string) "byte-identical re-serialization"
      (Json.to_string json)
      (Json.to_string (Stats_catalog.to_json cat'))

let catalog_json_rejects_garbage () =
  List.iter
    (fun json ->
      match Stats_catalog.of_json json with
      | Ok _ -> Alcotest.fail "accepted malformed catalog"
      | Error _ -> ())
    [
      Json.Null;
      Json.Obj [ ("version", Json.Int 999) ];
      Json.Obj [ ("preds", Json.List []) ];
    ]

(* --- stats-aware diagnostics ------------------------------------------- *)

let bsbm_graph = lazy (Rapida_datagen.Bsbm.(generate (config ~products:40 ())))

let analyze_src ?map_join_threshold ?memory src =
  let graph = Lazy.force bsbm_graph in
  let cat = Stats_catalog.build graph in
  Card_analysis.analyze ?map_join_threshold ?memory cat (parse_exn src)

let diag_statically_empty () =
  let a =
    analyze_src
      "SELECT (COUNT(?o) AS ?cnt) { ?s noSuchPredicate ?o . ?s label ?l . }"
  in
  if
    not
      (has_rule ~severity:Diagnostic.Warning "statically-empty-join"
         a.Card_analysis.diagnostics)
  then
    Alcotest.failf "expected statically-empty-join, got: %s"
      (rule_names a.Card_analysis.diagnostics);
  Alcotest.(check int) "root upper bound is 0... capped by ALL row" 1
    a.Card_analysis.root.Card_analysis.card.Card.hi

let diag_filter_zero () =
  let a =
    analyze_src
      "SELECT (COUNT(?pr) AS ?cnt) { ?off price ?pr . FILTER(?pr < 0) }"
  in
  if
    not
      (has_rule ~severity:Diagnostic.Warning "filter-selectivity-zero"
         a.Card_analysis.diagnostics)
  then
    Alcotest.failf "expected filter-selectivity-zero, got: %s"
      (rule_names a.Card_analysis.diagnostics)

let diag_broadcast_feasible () =
  let a =
    analyze_src
      "SELECT (COUNT(?pr) AS ?cnt) { ?p a ProductType1 . ?p label ?l . ?off \
       product ?p . ?off price ?pr . }"
  in
  if
    not
      (has_rule ~severity:Diagnostic.Info "broadcast-feasible"
         a.Card_analysis.diagnostics)
  then
    Alcotest.failf "expected broadcast-feasible, got: %s"
      (rule_names a.Card_analysis.diagnostics)

let diag_overcommit_predicted () =
  (* A heap of 64 bytes is below any build side's lower bound while a
     huge threshold keeps the planner on the map-join path. *)
  let a =
    analyze_src ~map_join_threshold:max_int
      ~memory:{ Memory.default with Memory.task_heap_bytes = 64 }
      "SELECT (COUNT(?pr) AS ?cnt) { ?p a ProductType1 . ?p label ?l . ?off \
       product ?p . ?off price ?pr . }"
  in
  if
    not
      (has_rule ~severity:Diagnostic.Warning "mapjoin-overcommit-predicted"
         a.Card_analysis.diagnostics)
  then
    Alcotest.failf "expected mapjoin-overcommit-predicted, got: %s"
      (rule_names a.Card_analysis.diagnostics)

let diag_skewed_star () =
  (* One hub subject carries [fanout] values of [p]; 63 other subjects
     carry one each: max fanout 64 vs average ceil(127/64) = 2. *)
  let fanout = 64 in
  let triples =
    List.concat_map
      (fun i ->
        [
          Triple.make (ex (Printf.sprintf "s%d" i)) (vocab "p")
            (ex (Printf.sprintf "o%d" i));
          Triple.make
            (ex (Printf.sprintf "s%d" i))
            (vocab "q")
            (Term.int i);
        ])
      (List.init (fanout - 1) (fun i -> i + 1))
    @ List.init fanout (fun i ->
          Triple.make (ex "hub") (vocab "p") (ex (Printf.sprintf "ho%d" i)))
    @ [ Triple.make (ex "hub") (vocab "q") (Term.int 0) ]
  in
  let cat = Stats_catalog.build (Graph.of_list triples) in
  let a =
    Card_analysis.analyze cat
      (parse_exn "SELECT (COUNT(?o) AS ?cnt) { ?s p ?o . ?s q ?v . }")
  in
  if
    not
      (has_rule ~severity:Diagnostic.Info "skewed-star"
         a.Card_analysis.diagnostics)
  then
    Alcotest.failf "expected skewed-star, got: %s"
      (rule_names a.Card_analysis.diagnostics)

let clean_catalog_has_no_warnings () =
  (* Catalog queries against their own dataset: the analyzer must not
     cry wolf — no warning-severity findings, only infos. *)
  List.iter
    (fun (gen, dataset) ->
      let graph = gen () in
      let cat = Stats_catalog.build graph in
      List.iter
        (fun e ->
          let a = Card_analysis.analyze cat (Catalog.parse e) in
          List.iter
            (fun d ->
              if Diagnostic.compare_severity d.Diagnostic.severity
                   Diagnostic.Warning
                 <= 0
              then
                Alcotest.failf "%s: unexpected %s[%s] %s" e.Catalog.id
                  (Diagnostic.severity_name d.Diagnostic.severity)
                  d.Diagnostic.rule d.Diagnostic.message)
            a.Card_analysis.diagnostics)
        (Catalog.by_dataset dataset))
    [
      ( (fun () -> Rapida_datagen.Bsbm.(generate (config ~products:40 ()))),
        Catalog.Bsbm );
      ( (fun () -> Rapida_datagen.Chem2bio.(generate (config ~compounds:30 ()))),
        Catalog.Chem2bio );
      ( (fun () ->
          Rapida_datagen.Pubmed.(generate (config ~publications:50 ()))),
        Catalog.Pubmed );
    ]

(* --- rule registry ----------------------------------------------------- *)

let registry_covers_emitted_rules () =
  (* Every diagnostic the analyzers emit must use a registered id at the
     registered severity. Collect diagnostics from the lint fixtures
     above plus a full catalog analysis. *)
  let graph = Lazy.force bsbm_graph in
  let cat = Stats_catalog.build graph in
  let card_ds =
    List.concat_map
      (fun e ->
        (Card_analysis.analyze cat (Catalog.parse e)).Card_analysis.diagnostics)
      (Catalog.by_dataset Catalog.Bsbm)
  in
  let lint_ds =
    List.concat_map Rapida_analysis.Ast_lint.lint_source
      [
        "SELECT ?x WHERE { ?s p ?o . }";
        "SELECT ?o WHERE { ?s p ?o . FILTER(?o > 5 && ?o < 1) }";
        "this is not sparql";
      ]
  in
  List.iter
    (fun d ->
      match Rules.find d.Diagnostic.rule with
      | None -> Alcotest.failf "unregistered rule %s" d.Diagnostic.rule
      | Some r ->
        if r.Rules.severity <> d.Diagnostic.severity then
          Alcotest.failf "rule %s emitted at %s, registered as %s"
            d.Diagnostic.rule
            (Diagnostic.severity_name d.Diagnostic.severity)
            (Diagnostic.severity_name r.Rules.severity))
    (card_ds @ lint_ds)

let registry_is_well_formed () =
  let ids = List.map (fun r -> r.Rules.id) Rules.all in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun rule ->
      match Rules.find rule with
      | Some r ->
        Alcotest.(check string) "layer" "card-analysis"
          (Rules.layer_name r.Rules.layer)
      | None -> Alcotest.failf "missing card rule %s" rule)
    [
      "statically-empty-join"; "filter-selectivity-zero"; "skewed-star";
      "broadcast-feasible"; "mapjoin-overcommit-predicted";
    ]

(* --- the soundness property ------------------------------------------- *)

let input_cache : (string, Engine.input) Hashtbl.t = Hashtbl.create 64

let input_for ~seed dataset =
  let key = Printf.sprintf "%s-%d" (Catalog.dataset_name dataset) seed in
  match Hashtbl.find_opt input_cache key with
  | Some input -> input
  | None ->
    let graph =
      match dataset with
      | Catalog.Bsbm ->
        Rapida_datagen.Bsbm.(generate (config ~seed ~products:30 ()))
      | Catalog.Chem2bio ->
        Rapida_datagen.Chem2bio.(generate (config ~seed ~compounds:25 ()))
      | Catalog.Pubmed ->
        Rapida_datagen.Pubmed.(generate (config ~seed ~publications:40 ()))
    in
    let input = Engine.input_of_graph graph in
    Hashtbl.add input_cache key input;
    input

(* Intervals bracket reality on every plan node, for every catalog
   query, across seeds. *)
let soundness_across_seeds () =
  let violations = ref [] in
  for seed = 1 to 20 do
    List.iter
      (fun (e : Catalog.entry) ->
        let input = input_for ~seed e.Catalog.dataset in
        let graph = Engine.graph_of_input input in
        let cat = Stats_catalog.build graph in
        let a = Card_analysis.analyze cat (Catalog.parse e) in
        let m = Card_analysis.measure graph a in
        List.iter
          (fun ((n : Card_analysis.node), actual) ->
            if not (Card.contains n.Card_analysis.card actual) then
              violations :=
                Printf.sprintf "seed %d %s node %d (%s): %s misses %d" seed
                  e.Catalog.id n.Card_analysis.id n.Card_analysis.label
                  (Fmt.str "%a" Card.pp n.Card_analysis.card)
                  actual
                :: !violations)
          (Card_analysis.measured_list m))
      Catalog.all
  done;
  match !violations with
  | [] -> ()
  | vs ->
    Alcotest.failf "%d interval violations:\n%s" (List.length vs)
      (String.concat "\n" vs)

(* Every engine's result cardinality lands inside the root interval —
   the soundness the estimates inherit from reference semantics. *)
let engines_inside_root_interval () =
  let ctx () = Plan_util.context Plan_util.default_options in
  List.iter
    (fun seed ->
      List.iter
        (fun (e : Catalog.entry) ->
          let input = input_for ~seed e.Catalog.dataset in
          let graph = Engine.graph_of_input input in
          let cat = Stats_catalog.build graph in
          let q = Catalog.parse e in
          let a = Card_analysis.analyze cat q in
          let root = a.Card_analysis.root.Card_analysis.card in
          List.iter
            (fun kind ->
              match Engine.execute (Engine.prepare kind input) (ctx ()) q with
              | Error err ->
                Alcotest.failf "seed %d %s %s: %s" seed e.Catalog.id
                  (Engine.kind_name kind) (Engine.error_message err)
              | Ok out ->
                let rows = Table.cardinality out.Engine.table in
                if not (Card.contains root rows) then
                  Alcotest.failf "seed %d %s %s: %d rows outside %s" seed
                    e.Catalog.id (Engine.kind_name kind) rows
                    (Fmt.str "%a" Card.pp root))
            Engine.all_kinds)
        Catalog.all)
    [ 1; 7; 20 ]

(* The estimation sweep end to end, on one small dataset. *)
let estimation_sweep_smoke () =
  let sweep =
    Rapida_harness.Experiment.estimation_sweep Plan_util.default_options
      ~label:"BSBM-test"
      (input_for ~seed:3 Catalog.Bsbm)
      (Catalog.by_dataset Catalog.Bsbm)
  in
  let module E = Rapida_harness.Experiment in
  Alcotest.(check bool) "has estimations" true (sweep.E.e_estimations <> []);
  List.iter
    (fun (est : E.estimation) ->
      Alcotest.(check int)
        (est.E.e_query.Catalog.id ^ " violations")
        0 est.E.e_violations;
      Alcotest.(check bool)
        (est.E.e_query.Catalog.id ^ " q-error >= 1")
        true
        (est.E.e_q_error >= 1.0);
      List.iter
        (fun (r : E.estimation_result) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s in bounds" est.E.e_query.Catalog.id
               (Engine.kind_name r.E.e_engine))
            true r.E.e_in_bounds)
        est.E.e_results)
    sweep.E.e_estimations;
  Alcotest.(check bool) "median q-error >= 1" true
    (E.median_q_error sweep.E.e_estimations >= 1.0)

let suite =
  [
    Alcotest.test_case "card interval algebra" `Quick card_algebra;
    Alcotest.test_case "card point estimate and q-error" `Quick
      card_estimates;
    Alcotest.test_case "card JSON round trip" `Quick card_json_roundtrip;
    Alcotest.test_case "num interval meet" `Quick num_intervals;
    Alcotest.test_case "catalog: exact counts" `Quick catalog_exact_counts;
    Alcotest.test_case "catalog: JSON round trip" `Quick
      catalog_json_roundtrip;
    Alcotest.test_case "catalog: rejects malformed JSON" `Quick
      catalog_json_rejects_garbage;
    Alcotest.test_case "diagnostic: statically-empty-join" `Quick
      diag_statically_empty;
    Alcotest.test_case "diagnostic: filter-selectivity-zero" `Quick
      diag_filter_zero;
    Alcotest.test_case "diagnostic: broadcast-feasible" `Quick
      diag_broadcast_feasible;
    Alcotest.test_case "diagnostic: mapjoin-overcommit-predicted" `Quick
      diag_overcommit_predicted;
    Alcotest.test_case "diagnostic: skewed-star" `Quick diag_skewed_star;
    Alcotest.test_case "catalog queries analyze without warnings" `Quick
      clean_catalog_has_no_warnings;
    Alcotest.test_case "rule registry covers emitted rules" `Quick
      registry_covers_emitted_rules;
    Alcotest.test_case "rule registry is well-formed" `Quick
      registry_is_well_formed;
    Alcotest.test_case "soundness: 20 seeds x catalog, all nodes" `Slow
      soundness_across_seeds;
    Alcotest.test_case "soundness: engines inside root interval" `Slow
      engines_inside_root_interval;
    Alcotest.test_case "estimation sweep is sound and sane" `Quick
      estimation_sweep_smoke;
  ]
