(* Execution-context telemetry: span ordering on the simulated clock,
   the per-phase time breakdown invariant, counter registry contents,
   and the validity of the exported Chrome trace-event JSON. *)

module Cluster = Rapida_mapred.Cluster
module Exec_ctx = Rapida_mapred.Exec_ctx
module Job = Rapida_mapred.Job
module Json = Rapida_mapred.Json
module Metrics = Rapida_mapred.Metrics
module Stats = Rapida_mapred.Stats
module Trace = Rapida_mapred.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str_list = Alcotest.(check (list string))

let wordcount ~with_combiner : (string, string, int, string * int) Job.spec =
  {
    name = "wc";
    map = (fun line -> List.map (fun w -> (w, 1)) (String.split_on_char ' ' line));
    combine =
      (if with_combiner then
         Some (fun _k counts -> [ List.fold_left ( + ) 0 counts ])
       else None);
    reduce = (fun k counts -> [ (k, List.fold_left ( + ) 0 counts) ]);
    input_size = String.length;
    key_size = String.length;
    value_size = (fun _ -> 4);
    output_size = (fun (k, _) -> String.length k + 4);
  }

let format_spec : (string * int, string) Job.map_only_spec =
  {
    mo_name = "fmt";
    mo_map = (fun (k, v) -> [ Printf.sprintf "%s=%d" k v ]);
    mo_input_size = (fun _ -> 8);
    mo_output_size = String.length;
  }

let lines = [ "a b a"; "b c"; "a"; "c c c b" ]

(* The phase name each span carries in its args. *)
let phase_of (e : Trace.event) =
  match List.assoc_opt "phase" e.Trace.args with
  | Some (Json.String p) -> p
  | _ -> Alcotest.failf "phase span %s lacks a phase arg" e.Trace.name

let test_phase_names () =
  let ctx = Exec_ctx.create () in
  let _, _ = Job.run ctx (wordcount ~with_combiner:true) lines in
  check_str_list "one span per phase, in phase order"
    [ "startup"; "map-read"; "combine"; "shuffle"; "sort"; "reduce-write" ]
    (List.map phase_of (Trace.spans_with_cat (Exec_ctx.trace ctx) "phase"));
  (* Without a combiner there is no combine span. *)
  let ctx = Exec_ctx.create () in
  let _, _ = Job.run ctx (wordcount ~with_combiner:false) lines in
  check_str_list "no combine span without a combiner"
    [ "startup"; "map-read"; "shuffle"; "sort"; "reduce-write" ]
    (List.map phase_of (Trace.spans_with_cat (Exec_ctx.trace ctx) "phase"))

let test_map_only_phase_names () =
  let ctx = Exec_ctx.create () in
  let _, _ = Job.run_map_only ctx format_spec [ ("a", 1); ("b", 2) ] in
  check_str_list "map-only phases"
    [ "startup"; "map-read"; "map-write" ]
    (List.map phase_of (Trace.spans_with_cat (Exec_ctx.trace ctx) "phase"))

let test_span_ordering () =
  (* Two jobs on one context: the second job's spans start exactly where
     the first job ended — the sequential Hadoop DAG timeline. *)
  let ctx = Exec_ctx.create () in
  let _, s1 = Job.run ctx (wordcount ~with_combiner:true) lines in
  let _, s2 = Job.run_map_only ctx format_spec [ ("a", 1) ] in
  let trace = Exec_ctx.trace ctx in
  let jobs = Trace.spans_with_cat trace "job" in
  check_int "two job spans" 2 (List.length jobs);
  let j1 = List.nth jobs 0 and j2 = List.nth jobs 1 in
  check_bool "first job starts at 0" true (j1.Trace.ts_us = 0.0);
  check_bool "second job starts where the first ended" true
    (Float.abs (j2.Trace.ts_us -. (s1.Stats.est_time_s *. 1e6)) < 1e-3);
  check_bool "clock advanced by both jobs" true
    (Float.abs
       (Trace.now_s trace -. (s1.Stats.est_time_s +. s2.Stats.est_time_s))
    < 1e-9);
  (* Phase spans tile their job span: each starts where the previous
     ended, and they never overrun the job. *)
  let phases = Trace.spans_with_cat trace "phase" in
  let _ =
    List.fold_left
      (fun at (e : Trace.event) ->
        let at = if e.Trace.ts_us +. 1e-3 < at then at else e.Trace.ts_us in
        check_bool (e.Trace.name ^ " starts after its predecessor") true
          (e.Trace.ts_us +. 1e-3 >= at);
        e.Trace.ts_us +. e.Trace.dur_us)
      0.0 phases
  in
  ()

let test_determinism () =
  let run () =
    let ctx = Exec_ctx.create () in
    let _ = Job.run ctx (wordcount ~with_combiner:true) lines in
    let _ = Job.run_map_only ctx format_spec [ ("a", 1) ] in
    Trace.to_string (Exec_ctx.trace ctx)
  in
  Alcotest.(check string) "identical exports across runs" (run ()) (run ())

let breakdown_matches (s : Stats.job) =
  Float.abs (Stats.breakdown_total_s s.Stats.breakdown -. s.Stats.est_time_s)
  < 1e-9 *. Float.max 1.0 s.Stats.est_time_s

let test_phase_sum_invariant () =
  let ctx = Exec_ctx.create () in
  let _, mr = Job.run ctx (wordcount ~with_combiner:true) lines in
  check_bool "MR phases sum to the estimate" true (breakdown_matches mr);
  let _, mo = Job.run_map_only ctx format_spec [ ("a", 1); ("b", 2) ] in
  check_bool "map-only phases sum to the estimate" true (breakdown_matches mo);
  (* And with failure retries in play. *)
  let module Fi = Rapida_mapred.Fault_injector in
  let flaky = Fi.create { Fi.default with Fi.seed = 5; task_fail_p = 0.25 } in
  let slow = { Cluster.default with disk_mb_per_s = 0.001 } in
  let ctx = Exec_ctx.create ~cluster:slow ~faults:flaky () in
  let _, mrf = Job.run ctx (wordcount ~with_combiner:false) lines in
  check_bool "invariant survives retry re-work" true (breakdown_matches mrf)

let test_counters () =
  let cluster = { Cluster.default with block_size_bytes = 8 } in
  let ctx = Exec_ctx.create ~cluster () in
  let input = List.init 40 (fun _ -> "x x x") in
  let _, stats = Job.run ctx (wordcount ~with_combiner:true) input in
  let m = Exec_ctx.metrics ctx in
  check_int "job counted" 1 (Metrics.get m "mr.jobs");
  check_int "no map-only jobs" 0 (Metrics.get m "mr.map_only_jobs");
  check_int "input records" 40 (Metrics.get m "mr.input_records");
  check_int "combiner input is the map-emitted count" 120
    (Metrics.get m "mr.combine.input_records");
  check_bool "combiner shrank the shuffle" true
    (Metrics.get m "mr.combine.output_records"
    < Metrics.get m "mr.combine.input_records");
  check_int "combiner output feeds the shuffle"
    (Metrics.get m "mr.shuffle_records")
    (Metrics.get m "mr.combine.output_records");
  check_int "one group per distinct word" 1 (Metrics.get m "mr.reduce.groups");
  check_int "stats agree with the registry" stats.Stats.combine_input_records
    (Metrics.get m "mr.combine.input_records")

(* An independent JSON reader (full RFC 8259 syntax): the exporter goes
   through Json.to_string, so validity here catches escaping and float
   formatting regressions with a second implementation. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
      incr pos;
      c
    | None -> fail ()
  in
  let rec ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then fail () in
  let literal lit = String.iter expect lit in
  let digits () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
        incr pos;
        go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail ()
  in
  let number () =
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with
      | Some ('+' | '-') -> incr pos
      | _ -> ());
      digits ()
    | _ -> ())
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' ->
        (match next () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
        | 'u' ->
          for _ = 1 to 4 do
            match next () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
            | _ -> fail ()
          done
        | _ -> fail ());
        go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ -> go ()
    in
    go ()
  in
  let rec value () =
    ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        ws ();
        string_lit ();
        ws ();
        expect ':';
        value ();
        ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        value ();
        ws ();
        match next () with
        | ',' -> elements ()
        | ']' -> ()
        | _ -> fail ()
      in
      elements ()
  in
  match value () with
  | () ->
    ws ();
    !pos = n
  | exception Exit -> false

let test_export_is_valid_json () =
  let ctx = Exec_ctx.create () in
  let _ = Job.run ctx (wordcount ~with_combiner:true) lines in
  let _ = Job.run_map_only ctx format_spec [ ("a", 1) ] in
  let doc = Trace.to_string (Exec_ctx.trace ctx) in
  check_bool "checker accepts valid documents" true
    (json_valid {|{"a": [1, -2.5e3, "x\n\"yé", true, null], "b": {}}|});
  check_bool "checker rejects bad documents" false (json_valid {|{"a": }|});
  check_bool "exported trace parses" true (json_valid doc);
  (* The Chrome trace-event envelope. *)
  match Trace.to_json (Exec_ctx.trace ctx) with
  | Json.Obj fields ->
    check_bool "has traceEvents" true (List.mem_assoc "traceEvents" fields);
    check_bool "has displayTimeUnit" true
      (List.mem_assoc "displayTimeUnit" fields);
    (match List.assoc "traceEvents" fields with
    | Json.List events ->
      check_bool "metadata + spans present" true (List.length events > 2)
    | _ -> Alcotest.fail "traceEvents must be a list")
  | _ -> Alcotest.fail "trace document must be an object"

let test_json_escaping () =
  check_bool "escapes quotes and control chars" true
    (json_valid (Json.to_string (Json.String "a\"b\\c\nd\te\x01f")));
  check_bool "non-finite floats are rejected by construction" true
    (match Json.to_string (Json.Float Float.nan) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Property: the phase breakdown sums to the job estimate for arbitrary
   inputs, cluster block sizes, and failure rates, on both job shapes. *)
let prop_breakdown_sums =
  QCheck2.Test.make ~count:200 ~name:"phase breakdown sums to est_time_s"
    QCheck2.Gen.(
      triple
        (list_size (0 -- 30)
           (string_size ~gen:(char_range 'a' 'd') (1 -- 5)))
        (8 -- 4096) (0 -- 3))
    (fun (words, block, fail_tenths) ->
      let module Fi = Rapida_mapred.Fault_injector in
      let cluster = { Cluster.default with block_size_bytes = block } in
      let faults =
        Fi.create
          {
            Fi.default with
            Fi.seed = block;
            task_fail_p = float_of_int fail_tenths /. 10.0;
            max_attempts = 1000;
          }
      in
      let lines = List.map (fun w -> w ^ " " ^ w) words in
      let ctx = Exec_ctx.create ~cluster ~faults () in
      let _, mr = Job.run ctx (wordcount ~with_combiner:true) lines in
      let _, mo =
        Job.run_map_only ctx format_spec
          (List.mapi (fun i w -> (w, i)) words)
      in
      breakdown_matches mr && breakdown_matches mo)

let suite =
  [
    Alcotest.test_case "MR phase spans" `Quick test_phase_names;
    Alcotest.test_case "map-only phase spans" `Quick test_map_only_phase_names;
    Alcotest.test_case "span ordering on the clock" `Quick test_span_ordering;
    Alcotest.test_case "deterministic export" `Quick test_determinism;
    Alcotest.test_case "phase-sum invariant" `Quick test_phase_sum_invariant;
    Alcotest.test_case "counter registry" `Quick test_counters;
    Alcotest.test_case "export is valid JSON" `Quick test_export_is_valid_json;
    Alcotest.test_case "JSON escaping" `Quick test_json_escaping;
    QCheck_alcotest.to_alcotest prop_breakdown_sums;
  ]
