let () =
  Alcotest.run "rapida"
    [
      ("rdf", Test_rdf.suite);
      ("sparql", Test_sparql.suite);
      ("ntga", Test_ntga.suite);
      ("mapred", Test_mapred.suite);
      ("trace", Test_trace.suite);
      ("relational", Test_relational.suite);
      ("to-sparql", Test_to_sparql.suite);
      ("refengine", Test_refengine.suite);
      ("overlap", Test_overlap.suite);
      ("datagen", Test_datagen.suite);
      ("queries", Test_queries.suite);
      ("engines", Test_engines.suite);
      ("grouping-sets", Test_grouping_sets.suite);
      ("ablations", Test_ablations.suite);
      ("unbound", Test_unbound.suite);
      ("having", Test_having.suite);
      ("harness", Test_harness.suite);
      ("properties", Test_props.suite);
      ("faults", Test_faults.suite);
      ("recovery", Test_recovery.suite);
      ("memory", Test_memory.suite);
      ("analysis", Test_analysis.suite);
      ("card", Test_card.suite);
      ("server", Test_server.suite);
      ("planner", Test_planner.suite);
      ("fuzz", Test_fuzz.suite);
    ]
