(* SPARQL front end: lexer, parser, star decomposition, analytical normal
   form, filter evaluation, and aggregate accumulators. *)

open Rapida_sparql
module Term = Rapida_rdf.Term
module Namespace = Rapida_rdf.Namespace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- lexer --------------------------------------------------------------- *)

let test_lexer_basics () =
  match Lexer.tokenize {|SELECT ?x { ?x a Thing . FILTER(?y >= 5.5) } # end|} with
  | Error e -> Alcotest.failf "%a" Lexer.pp_error e
  | Ok toks ->
    let kinds = List.map (fun t -> t.Lexer.tok) toks in
    check_bool "has SELECT" true (List.mem (Lexer.KEYWORD "SELECT") kinds);
    check_bool "has var x" true (List.mem (Lexer.VAR "x") kinds);
    check_bool "has a" true (List.mem Lexer.A kinds);
    check_bool "has GE" true (List.mem Lexer.GE kinds);
    check_bool "has float" true (List.mem (Lexer.FLOAT 5.5) kinds);
    check_bool "comment dropped" true
      (not (List.exists (function Lexer.QNAME "end" -> true | _ -> false) kinds))

let test_lexer_number_dot () =
  (* "?o 5 ." must lex the 5 and the terminating dot separately. *)
  match Lexer.tokenize "?s p 5 . ?s q 7." with
  | Error e -> Alcotest.failf "%a" Lexer.pp_error e
  | Ok toks ->
    let dots =
      List.length (List.filter (fun t -> t.Lexer.tok = Lexer.DOT) toks)
    in
    check_int "two dots" 2 dots

let test_lexer_iri_vs_lt () =
  match Lexer.tokenize "FILTER(?x < 5) ?s <http://a/b> ?o" with
  | Error e -> Alcotest.failf "%a" Lexer.pp_error e
  | Ok toks ->
    let kinds = List.map (fun t -> t.Lexer.tok) toks in
    check_bool "LT" true (List.mem Lexer.LT kinds);
    check_bool "IRI" true (List.mem (Lexer.IRIREF "http://a/b") kinds)

let test_lexer_errors () =
  (match Lexer.tokenize "\"unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string should fail");
  match Lexer.tokenize "?" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty variable should fail"

(* --- parser -------------------------------------------------------------- *)

let parse_ok src =
  match Parser.parse src with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_simple () =
  let q = parse_ok "SELECT ?s { ?s a Widget . ?s price ?p . }" in
  let s = q.Ast.base_select in
  check_int "projection" 1 (List.length s.Ast.projection);
  check_int "triples" 2 (List.length s.Ast.where)

let test_parse_semicolon_shorthand () =
  let q = parse_ok "SELECT ?s { ?s a Widget ; price ?p ; label ?l . }" in
  check_int "three triples" 3 (List.length q.Ast.base_select.Ast.where)

let test_parse_comma_shorthand () =
  let q = parse_ok "SELECT ?s { ?s tag ?a, ?b, ?c . }" in
  check_int "three triples" 3 (List.length q.Ast.base_select.Ast.where)

let test_parse_prefix () =
  let q =
    parse_ok
      "PREFIX ex: <http://e.x/> SELECT ?s { ?s ex:knows ?o . }"
  in
  match q.Ast.base_select.Ast.where with
  | [ Ast.Ptriple { tp_p = Ast.Nterm (Term.Iri iri); _ } ] ->
    check_string "expanded" "http://e.x/knows" iri
  | _ -> Alcotest.fail "expected one triple with expanded property"

let test_parse_bare_name_expansion () =
  let q = parse_ok "SELECT ?s { ?s price ?p . }" in
  match q.Ast.base_select.Ast.where with
  | [ Ast.Ptriple { tp_p = Ast.Nterm (Term.Iri iri); _ } ] ->
    check_string "bench namespace" (Namespace.bench ^ "price") iri
  | _ -> Alcotest.fail "expected one triple"

let test_parse_aggregates () =
  let q =
    parse_ok
      "SELECT ?g (COUNT(?x) AS ?c) (SUM(?x) ?s) (AVG(DISTINCT ?x) AS ?a) \
       { ?g v ?x . } GROUP BY ?g"
  in
  let s = q.Ast.base_select in
  check_int "group by" 1 (List.length s.Ast.group_by);
  match s.Ast.projection with
  | [ Ast.Svar "g"; Ast.Sexpr (Ast.Eagg (Ast.Count, _, false), "c");
      Ast.Sexpr (Ast.Eagg (Ast.Sum, _, false), "s");
      Ast.Sexpr (Ast.Eagg (Ast.Avg, _, true), "a") ] -> ()
  | _ -> Alcotest.fail "unexpected projection shape"

let test_parse_count_star () =
  let q = parse_ok "SELECT (COUNT(*) AS ?n) { ?s p ?o . }" in
  match q.Ast.base_select.Ast.projection with
  | [ Ast.Sexpr (Ast.Eagg (Ast.Count, None, false), "n") ] -> ()
  | _ -> Alcotest.fail "expected count-star"

let test_parse_filter_forms () =
  let q =
    parse_ok
      {|SELECT ?s { ?s price ?p . FILTER(?p > 100) FILTER regex(?s, "abc", "i") }|}
  in
  let filters =
    List.filter (function Ast.Pfilter _ -> true | _ -> false)
      q.Ast.base_select.Ast.where
  in
  check_int "two filters" 2 (List.length filters)

let test_parse_subselect () =
  let q =
    parse_ok
      {|SELECT ?g ?c { { SELECT ?g (COUNT(?x) AS ?c) { ?g v ?x . } GROUP BY ?g } }|}
  in
  match q.Ast.base_select.Ast.where with
  | [ Ast.Psub sub ] -> check_int "inner group" 1 (List.length sub.Ast.group_by)
  | _ -> Alcotest.fail "expected one subselect"

let test_parse_optional () =
  let q = parse_ok "SELECT ?s { ?s a T . OPTIONAL { ?s opt ?o . } }" in
  let opts =
    List.filter (function Ast.Poptional _ -> true | _ -> false)
      q.Ast.base_select.Ast.where
  in
  check_int "one optional" 1 (List.length opts)

let test_parse_errors () =
  List.iter
    (fun src ->
      match Parser.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" src)
    [
      "SELECT ?s { ?s p ?o . } trailing";
      "SELECT ?s { ?s p }";
      "SELECT (COUNT(?x) AS ) { ?s p ?x . }";
      "SELECT ?s WHERE ?s p ?o";
      "SELECT ?s { ?s p ?o . } GROUP BY";
    ]

let test_parse_error_positions () =
  (* Structured parse errors locate the offending token. *)
  let expect src line col =
    match Parser.parse_located src with
    | Ok _ -> Alcotest.failf "should not parse: %s" src
    | Error { Parser.pos = None; reason } ->
      Alcotest.failf "no position for %S: %s" src reason
    | Error { Parser.pos = Some p; _ } ->
      check_int (Printf.sprintf "%S line" src) line p.Srcloc.line;
      check_int (Printf.sprintf "%S col" src) col p.Srcloc.col
  in
  (* The trailing garbage starts at column 25 of line 1. *)
  expect "SELECT ?s { ?s p ?o . } trailing" 1 25;
  (* The closing brace where an object was expected, line 2 col 12. *)
  expect "SELECT ?s {\n  ?s price }" 2 12;
  (* EOF after GROUP BY on line 3. *)
  expect "SELECT ?s {\n  ?s price ?p . }\nGROUP BY" 3 9

let test_lexer_error_positions () =
  match Lexer.tokenize "?s price \"unterminated" with
  | Ok _ -> Alcotest.fail "should not lex"
  | Error e ->
    check_int "line" 1 e.Lexer.pos.Srcloc.line;
    check_string "reason" "unterminated string" e.Lexer.reason

let test_parse_located_string_agreement () =
  (* [parse] renders exactly what [parse_located] reports. *)
  let src = "SELECT ?s { ?s price }" in
  match (Parser.parse src, Parser.parse_located src) with
  | Error rendered, Error e ->
    check_string "rendering" rendered (Fmt.str "%a" Parser.pp_error e)
  | _ -> Alcotest.fail "both should fail"

(* --- star decomposition --------------------------------------------------- *)

let bgp_of src =
  let q = parse_ok src in
  List.filter_map
    (function Ast.Ptriple tp -> Some tp | _ -> None)
    q.Ast.base_select.Ast.where

let test_star_decompose () =
  let bgp = bgp_of "SELECT * { ?a p ?x . ?b q ?a . ?a r ?y . ?b s ?z . }" in
  let stars = Star.decompose bgp in
  check_int "two stars" 2 (List.length stars);
  let star_a = List.nth stars 0 in
  check_int "star a patterns" 2 (List.length star_a.Star.patterns);
  check_int "star a props" 2 (List.length (Star.props star_a))

let test_star_edges_subject_object () =
  (* AQ2-style: ?s1 rooted star joined from ?s2's object. *)
  let bgp = bgp_of "SELECT * { ?s1 a PT18 . ?s2 pr ?s1 . ?s2 pc ?o1 . }" in
  let stars = Star.decompose bgp in
  let edges = Star.edges stars in
  check_int "one edge" 1 (List.length edges);
  let e = List.hd edges in
  check_string "edge var" "s1" e.Star.var;
  check_bool "left subject role" true (e.Star.left.role = Star.Subject);
  check_bool "right object role" true (e.Star.right.role = Star.Object);
  (match e.Star.right.prop with
  | Some p -> check_string "joining property" (Namespace.bench ^ "pr") (Term.lexical p)
  | None -> Alcotest.fail "expected a joining property")

let test_star_edges_object_object () =
  let bgp = bgp_of "SELECT * { ?s3 ve ?o6 . ?s4 cn ?o6 . }" in
  let edges = Star.edges (Star.decompose bgp) in
  check_int "one edge" 1 (List.length edges);
  let e = List.hd edges in
  check_bool "both object roles" true
    (e.Star.left.role = Star.Object && e.Star.right.role = Star.Object)

let test_star_type_objects () =
  let bgp = bgp_of "SELECT * { ?s a PT18 . ?s pf ?f . }" in
  let star = List.hd (Star.decompose bgp) in
  check_int "one type object" 1 (List.length (Star.type_objects star))

let test_star_connected () =
  let bgp = bgp_of "SELECT * { ?a p ?x . ?b q ?y . }" in
  let stars = Star.decompose bgp in
  check_bool "disconnected" false (Star.connected stars (Star.edges stars))

(* --- analytical normal form ----------------------------------------------- *)

let test_analytical_single () =
  let t =
    Analytical.parse_exn
      "SELECT ?g (COUNT(?x) AS ?c) { ?g v ?x . } GROUP BY ?g"
  in
  check_int "one subquery" 1 (List.length t.Analytical.subqueries);
  check_int "identity outer projection" 0 (List.length t.Analytical.outer_projection);
  let sq = List.hd t.Analytical.subqueries in
  Alcotest.(check (list string)) "columns" [ "g"; "c" ]
    (Analytical.output_columns sq)

let test_analytical_multi () =
  let t =
    Analytical.parse_exn
      {|SELECT ?g ?c ?t {
        { SELECT ?g (COUNT(?x) AS ?c) { ?s k ?g . ?s v ?x . } GROUP BY ?g }
        { SELECT (COUNT(?x1) AS ?t) { ?s1 k ?g1 . ?s1 v ?x1 . } }
      }|}
  in
  check_int "two subqueries" 2 (List.length t.Analytical.subqueries);
  let a = List.nth t.Analytical.subqueries 0 in
  let b = List.nth t.Analytical.subqueries 1 in
  Alcotest.(check (list string)) "join vars" [] (Analytical.join_vars a b)

let test_analytical_errors () =
  List.iter
    (fun src ->
      match Analytical.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should be rejected: %s" src)
    [
      (* projected var not grouped *)
      "SELECT ?g (COUNT(?x) AS ?c) { ?g v ?x . }";
      (* no aggregates *)
      "SELECT ?g { ?g v ?x . } GROUP BY ?g";
      (* group var unbound *)
      "SELECT ?z (COUNT(?x) AS ?c) { ?g v ?x . } GROUP BY ?z";
      (* OPTIONAL unsupported *)
      "SELECT (COUNT(?x) AS ?c) { ?g v ?x . OPTIONAL { ?g w ?y . } }";
      (* triples next to subqueries *)
      {|SELECT ?c { ?a b ?c . { SELECT (COUNT(?x) AS ?n) { ?g v ?x . } } }|};
    ]

(* --- bindings and filter evaluation ---------------------------------------- *)

let test_binding_merge () =
  let b1 = Binding.bind Binding.empty "x" (Term.int 1) in
  let b2 = Binding.bind Binding.empty "y" (Term.int 2) in
  let b3 = Binding.bind Binding.empty "x" (Term.int 9) in
  check_bool "compatible" true (Binding.compatible b1 b2);
  check_bool "incompatible" false (Binding.compatible b1 b3);
  let m = Binding.merge b1 b2 in
  Alcotest.(check (option bool)) "merged x" (Some true)
    (Option.map (Term.equal (Term.int 1)) (Binding.lookup m "x"))

let eval_filter_src binding expr_src =
  (* Parse "FILTER(expr)" through a dummy query to reuse the parser. *)
  let q = parse_ok (Printf.sprintf "SELECT ?x { ?x p ?y . FILTER(%s) }" expr_src) in
  match
    List.find_map
      (function Ast.Pfilter e -> Some e | _ -> None)
      q.Ast.base_select.Ast.where
  with
  | Some e -> Binding.eval_filter binding e
  | None -> Alcotest.fail "no filter parsed"

let test_filter_eval () =
  let b =
    Binding.bind
      (Binding.bind Binding.empty "x" (Term.int 10))
      "name" (Term.str "Hepatomegaly risk")
  in
  check_bool "gt" true (eval_filter_src b "?x > 5");
  check_bool "le" false (eval_filter_src b "?x <= 5");
  check_bool "arith" true (eval_filter_src b "?x * 2 = 20");
  check_bool "and or" true (eval_filter_src b "?x > 100 || ?x = 10 && ?x < 11");
  check_bool "regex ci" true (eval_filter_src b {|regex(?name, "hepatomegaly", "i")|});
  check_bool "regex cs" false (eval_filter_src b {|regex(?name, "hepatomegaly")|});
  check_bool "unbound is error -> false" false (eval_filter_src b "?missing > 1");
  check_bool "not" true (eval_filter_src b "!(?x > 100)");
  check_bool "division" true (eval_filter_src b "?x / 4 = 2.5")

(* --- aggregate accumulators ------------------------------------------------ *)

let finish_exn state =
  match Aggregate.finish state with
  | Some t -> t
  | None -> Alcotest.fail "expected a value"

let test_aggregate_basics () =
  let add_all f distinct values =
    List.fold_left
      (fun s v -> Aggregate.add s (Some v))
      (Aggregate.init f ~distinct) values
  in
  let vals = [ Term.int 5; Term.int 3; Term.int 5 ] in
  Alcotest.(check string) "count" "3"
    (Term.lexical (finish_exn (add_all Ast.Count false vals)));
  Alcotest.(check string) "sum" "13"
    (Term.lexical (finish_exn (add_all Ast.Sum false vals)));
  Alcotest.(check string) "min" "3"
    (Term.lexical (finish_exn (add_all Ast.Min false vals)));
  Alcotest.(check string) "max" "5"
    (Term.lexical (finish_exn (add_all Ast.Max false vals)));
  Alcotest.(check string) "distinct count" "2"
    (Term.lexical (finish_exn (add_all Ast.Count true vals)));
  Alcotest.(check string) "distinct sum" "8"
    (Term.lexical (finish_exn (add_all Ast.Sum true vals)));
  check_bool "empty avg" true
    (Aggregate.finish (Aggregate.init Ast.Avg ~distinct:false) = None);
  Alcotest.(check string) "empty count" "0"
    (Term.lexical (finish_exn (Aggregate.init Ast.Count ~distinct:false)))

let test_aggregate_unbound_skipped () =
  let s = Aggregate.init Ast.Count ~distinct:false in
  let s = Aggregate.add s None in
  let s = Aggregate.add s (Some (Term.int 1)) in
  Alcotest.(check string) "count skips unbound" "1"
    (Term.lexical (finish_exn s))

let gen_func = QCheck2.Gen.oneofl Ast.[ Count; Sum; Avg; Min; Max ]

let gen_values =
  QCheck2.Gen.(list_size (0 -- 20) (map Term.int (int_range (-100) 100)))

let states_equal a b =
  match Aggregate.finish a, Aggregate.finish b with
  | None, None -> true
  | Some x, Some y -> (
    match Term.as_number x, Term.as_number y with
    | Some fx, Some fy -> Float.abs (fx -. fy) < 1e-6
    | _ -> Term.equal x y)
  | _ -> false

let prop_merge_is_split_fold =
  QCheck2.Test.make ~count:300
    ~name:"aggregate merge equals unsplit fold (combiner soundness)"
    QCheck2.Gen.(triple gen_func bool (pair gen_values gen_values))
    (fun (f, distinct, (xs, ys)) ->
      let fold vs =
        List.fold_left
          (fun s v -> Aggregate.add s (Some v))
          (Aggregate.init f ~distinct) vs
      in
      states_equal
        (Aggregate.merge (fold xs) (fold ys))
        (fold (xs @ ys)))

let prop_merge_commutative =
  QCheck2.Test.make ~count:300 ~name:"aggregate merge commutes"
    QCheck2.Gen.(triple gen_func bool (pair gen_values gen_values))
    (fun (f, distinct, (xs, ys)) ->
      let fold vs =
        List.fold_left
          (fun s v -> Aggregate.add s (Some v))
          (Aggregate.init f ~distinct) vs
      in
      states_equal
        (Aggregate.merge (fold xs) (fold ys))
        (Aggregate.merge (fold ys) (fold xs)))

(* --- total robustness ---------------------------------------------------- *)

(* Crashers found by byte-fuzzing before the front end was hardened:
   each input used to raise (Failure from int_of_string / float_of_string,
   or stack growth on deep nesting) instead of returning a located
   error. They must stay mere [Error]s forever. *)
let test_parse_crashers () =
  let crashers =
    [
      "1..2";
      "1.2.3";
      "SELECT ?x { ?x ?p 1.2.3 }";
      String.make 25 '9';
      "-" ^ String.make 25 '9';
      "SELECT ?x { ?x ?p " ^ String.make 30 '9' ^ " }";
      "SELECT ?x { FILTER(" ^ String.make 5000 '(' ^ "1";
      "SELECT ?x { FILTER(" ^ String.make 5000 '!' ^ "?x) }";
      String.concat "" (List.init 5000 (fun _ -> "SELECT ?x {"));
    ]
  in
  List.iter
    (fun input ->
      match Parser.parse input with
      | Ok _ | Error _ -> ()
      | exception e ->
        Alcotest.failf "parser raised %s on %S" (Printexc.to_string e)
          (if String.length input > 40 then String.sub input 0 40 ^ "..."
           else input))
    crashers

(* 10k random byte strings through the whole front end: tokenize, parse,
   and normalize must always return, never raise. The seeded stream makes
   a failure reproducible from the index alone. *)
let test_parse_random_bytes () =
  let rng = Rapida_datagen.Prng.create ~seed:2024 in
  for i = 0 to 9_999 do
    let len = Rapida_datagen.Prng.int rng 60 in
    let input =
      String.init len (fun _ -> Char.chr (Rapida_datagen.Prng.int rng 256))
    in
    match Parser.parse input with
    | Ok q -> ignore (Analytical.of_query q)
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "input %d raised %s: %S" i (Printexc.to_string e) input
  done

(* Deep nesting is refused with a located parse error, not a crash. *)
let test_parse_nesting_limit () =
  let probe input =
    match Parser.parse_located input with
    | Ok _ -> Alcotest.failf "accepted unbounded nesting"
    | Error { Parser.reason; pos = _ } ->
      check_bool "mentions nesting" true
        (String.length reason > 0)
  in
  probe ("SELECT ?x { FILTER(" ^ String.make 400 '(' ^ "?x" ^ String.make 400 ')' ^ ") }");
  probe (String.concat "" (List.init 400 (fun _ -> "SELECT ?x {")))

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer number-dot" `Quick test_lexer_number_dot;
    Alcotest.test_case "lexer iri vs lt" `Quick test_lexer_iri_vs_lt;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse simple" `Quick test_parse_simple;
    Alcotest.test_case "parse ; shorthand" `Quick test_parse_semicolon_shorthand;
    Alcotest.test_case "parse , shorthand" `Quick test_parse_comma_shorthand;
    Alcotest.test_case "parse prefix" `Quick test_parse_prefix;
    Alcotest.test_case "parse bare names" `Quick test_parse_bare_name_expansion;
    Alcotest.test_case "parse aggregates" `Quick test_parse_aggregates;
    Alcotest.test_case "parse count-star" `Quick test_parse_count_star;
    Alcotest.test_case "parse filters" `Quick test_parse_filter_forms;
    Alcotest.test_case "parse subselect" `Quick test_parse_subselect;
    Alcotest.test_case "parse optional" `Quick test_parse_optional;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse error positions" `Quick
      test_parse_error_positions;
    Alcotest.test_case "lexer error positions" `Quick
      test_lexer_error_positions;
    Alcotest.test_case "parse/parse_located agreement" `Quick
      test_parse_located_string_agreement;
    Alcotest.test_case "star decompose" `Quick test_star_decompose;
    Alcotest.test_case "star edges subject-object" `Quick test_star_edges_subject_object;
    Alcotest.test_case "star edges object-object" `Quick test_star_edges_object_object;
    Alcotest.test_case "star type objects" `Quick test_star_type_objects;
    Alcotest.test_case "star connectivity" `Quick test_star_connected;
    Alcotest.test_case "analytical single" `Quick test_analytical_single;
    Alcotest.test_case "analytical multi" `Quick test_analytical_multi;
    Alcotest.test_case "analytical errors" `Quick test_analytical_errors;
    Alcotest.test_case "binding merge" `Quick test_binding_merge;
    Alcotest.test_case "filter evaluation" `Quick test_filter_eval;
    Alcotest.test_case "aggregate basics" `Quick test_aggregate_basics;
    Alcotest.test_case "aggregate unbound" `Quick test_aggregate_unbound_skipped;
    Alcotest.test_case "parse crashers" `Quick test_parse_crashers;
    Alcotest.test_case "parse random bytes" `Quick test_parse_random_bytes;
    Alcotest.test_case "parse nesting limit" `Quick test_parse_nesting_limit;
    QCheck_alcotest.to_alcotest prop_merge_is_split_fold;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
  ]
