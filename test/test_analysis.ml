(* Static analysis: AST lint rules, plan-verifier invariants, and the
   catalog x engines x planner-knobs property that the optimizer's
   derivations verify cleanly however the planner is configured. *)

module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Diagnostic = Rapida_analysis.Diagnostic
module Ast_lint = Rapida_analysis.Ast_lint
module Plan_verify = Rapida_analysis.Plan_verify
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Table = Rapida_relational.Table

let rules ds = List.map (fun d -> d.Diagnostic.rule) ds

let has_rule ~severity rule ds =
  List.exists
    (fun d -> d.Diagnostic.rule = rule && d.Diagnostic.severity = severity)
    ds

let check_rule ?(severity = Diagnostic.Error) src rule () =
  let ds = Ast_lint.lint_source src in
  if not (has_rule ~severity rule ds) then
    Alcotest.failf "expected %s[%s], got: %s"
      (Diagnostic.severity_name severity)
      rule
      (String.concat ", " (rules ds))

(* --- layer 1: lint rules fire with their exact ids -------------------- *)

let lint_cases =
  [
    ( "unbound-var in projection",
      check_rule "SELECT ?x WHERE { ?s bench:p ?o . }" "unbound-var" );
    ( "unbound-var in FILTER",
      check_rule "SELECT ?o WHERE { ?s bench:p ?o . FILTER(?z > 5) }"
        "unbound-var" );
    ( "unbound-var in GROUP BY",
      check_rule
        "SELECT ?g (COUNT(?o) AS ?c) WHERE { ?s bench:p ?o . } GROUP BY ?g"
        "unbound-var" );
    ( "unbound-var in aggregate argument",
      check_rule
        "SELECT ?o (SUM(?nope) AS ?c) WHERE { ?s bench:p ?o . } GROUP BY ?o"
        "unbound-var" );
    ( "ungrouped-projection",
      check_rule
        "SELECT ?o (COUNT(?s) AS ?c) WHERE { ?s bench:p ?o ; bench:q ?r . } \
         GROUP BY ?r"
        "ungrouped-projection" );
    ( "filter-unsatisfiable by folding",
      check_rule ~severity:Diagnostic.Warning
        "SELECT ?o WHERE { ?s bench:p ?o . FILTER(1 > 2) }"
        "filter-unsatisfiable" );
    ( "filter-unsatisfiable by interval",
      check_rule ~severity:Diagnostic.Warning
        "SELECT ?o WHERE { ?s bench:p ?o . FILTER(?o > 10 && ?o < 5) }"
        "filter-unsatisfiable" );
    ( "filter-unsatisfiable by contradictory equalities",
      check_rule ~severity:Diagnostic.Warning
        "SELECT ?o WHERE { ?s bench:p ?o . FILTER(?o = 3 && ?o = 4) }"
        "filter-unsatisfiable" );
    ( "filter-constant",
      check_rule ~severity:Diagnostic.Warning
        "SELECT ?o WHERE { ?s bench:p ?o . FILTER(2 > 1) }" "filter-constant"
    );
    ( "cartesian-product",
      check_rule ~severity:Diagnostic.Warning
        "SELECT ?a ?b WHERE { ?x bench:p ?a . ?y bench:q ?b . }"
        "cartesian-product" );
    ( "duplicate-pattern",
      check_rule ~severity:Diagnostic.Warning
        "SELECT ?a WHERE { ?x bench:p ?a . ?x bench:p ?a . }"
        "duplicate-pattern" );
    ( "duplicate-prefix",
      check_rule ~severity:Diagnostic.Warning
        "PREFIX foo: <http://a/> PREFIX foo: <http://b/>\n\
         SELECT ?a WHERE { ?x foo:p ?a . }"
        "duplicate-prefix" );
    ( "unused-prefix",
      check_rule ~severity:Diagnostic.Warning
        "PREFIX foo: <http://a/>\nSELECT ?a WHERE { ?x bench:p ?a . }"
        "unused-prefix" );
    ( "unused-var",
      check_rule ~severity:Diagnostic.Info
        "SELECT ?a WHERE { ?x bench:p ?a ; bench:q ?ghost . }" "unused-var" );
    ( "parse-error",
      check_rule "SELECT ?x WHERE {" "parse-error" );
    ( "analytical-form",
      check_rule
        "SELECT ?x ?z WHERE { ?x bench:p ?y . OPTIONAL { ?x bench:q ?z } }"
        "analytical-form" );
  ]

let parse_error_location () =
  (* The parse-error diagnostic must carry the offending position. *)
  let ds = Ast_lint.lint_source "SELECT ?x WHERE {\n  ?s bench:p }" in
  match List.find_opt (fun d -> d.Diagnostic.rule = "parse-error") ds with
  | None -> Alcotest.fail "no parse-error diagnostic"
  | Some d -> (
    match d.Diagnostic.span with
    | None -> Alcotest.fail "parse-error without a span"
    | Some span ->
      Alcotest.(check int) "line" 2 span.Rapida_sparql.Srcloc.first.line;
      Alcotest.(check bool)
        "column past the subject" true
        (span.Rapida_sparql.Srcloc.first.col > 1))

let clean_query_is_clean () =
  let ds =
    Ast_lint.lint_source
      "SELECT ?o (COUNT(?s) AS ?c) WHERE { ?s bench:p ?o . FILTER(?o > 3) } \
       GROUP BY ?o"
  in
  Alcotest.(check (list string)) "no diagnostics" [] (rules ds)

let catalog_lints_clean () =
  (* The full workload must lint with no errors or warnings; existence-only
     variables are Info by design (see DESIGN.md). *)
  List.iter
    (fun (e : Catalog.entry) ->
      let ds = Ast_lint.lint_source e.Catalog.sparql in
      List.iter
        (fun d ->
          match d.Diagnostic.severity with
          | Diagnostic.Error | Diagnostic.Warning ->
            Alcotest.failf "%s: %a" e.Catalog.id Diagnostic.pp d
          | Diagnostic.Info ->
            Alcotest.(check string)
              (e.Catalog.id ^ " info rule")
              "unused-var" d.Diagnostic.rule)
        ds)
    Catalog.all

(* --- layer 2: verifier rules on broken plans -------------------------- *)

let subquery_of src =
  match Analytical.parse src with
  | Ok q -> List.hd q.Analytical.subqueries
  | Error msg -> Alcotest.failf "setup: %s" msg

let query_of src =
  match Analytical.parse src with
  | Ok q -> q
  | Error msg -> Alcotest.failf "setup: %s" msg

let base_query =
  "SELECT ?o (COUNT(?s) AS ?c) WHERE { ?s bench:p ?o ; bench:q ?r . } GROUP \
   BY ?o"

let expect_plan_rule ~rule q () =
  let ds = Plan_verify.verify_query q in
  if not (has_rule ~severity:Diagnostic.Error rule ds) then
    Alcotest.failf "expected error[%s], got: %s" rule
      (String.concat ", " (rules ds))

let broken_group_key () =
  let sq = subquery_of base_query in
  let q =
    {
      Analytical.subqueries = [ { sq with Analytical.group_by = [ "ghost" ] } ];
      outer_projection = [];
      order_by = [];
      limit = None;
    }
  in
  expect_plan_rule ~rule:"aggjoin-keys" q ()

let broken_agg_arg () =
  let sq = subquery_of base_query in
  let agg =
    {
      Analytical.func = Ast.Sum;
      arg = Some "ghost";
      distinct = false;
      out = "c";
    }
  in
  let q =
    {
      Analytical.subqueries = [ { sq with Analytical.aggregates = [ agg ] } ];
      outer_projection = [];
      order_by = [];
      limit = None;
    }
  in
  expect_plan_rule ~rule:"aggjoin-keys" q ()

let colliding_agg_out () =
  let sq = subquery_of base_query in
  let agg =
    { Analytical.func = Ast.Count; arg = Some "s"; distinct = false; out = "o" }
  in
  let q =
    {
      Analytical.subqueries = [ { sq with Analytical.aggregates = [ agg ] } ];
      outer_projection = [];
      order_by = [];
      limit = None;
    }
  in
  expect_plan_rule ~rule:"aggjoin-keys" q ()

let disconnected_workflow () =
  (* Two stars with no shared variable: no valid left-deep join order. *)
  let bgp =
    [
      {
        Ast.tp_s = Ast.Nvar "x";
        tp_p = Ast.Nterm (Rapida_rdf.Term.iri "urn:p");
        tp_o = Ast.Nvar "a";
      };
      {
        Ast.tp_s = Ast.Nvar "y";
        tp_p = Ast.Nterm (Rapida_rdf.Term.iri "urn:q");
        tp_o = Ast.Nvar "b";
      };
    ]
  in
  let stars = Star.decompose bgp in
  let sq = subquery_of base_query in
  let broken =
    { sq with Analytical.bgp; stars; edges = Star.edges stars; filters = [] }
  in
  let q =
    {
      Analytical.subqueries = [ { broken with Analytical.group_by = [ "a" ] } ];
      outer_projection = [];
      order_by = [];
      limit = None;
    }
  in
  expect_plan_rule ~rule:"workflow-dag" q ()

let non_overlapping_composite () =
  (* Two subqueries over disjoint properties cannot be merged: the
     role-equivalence / cover checks must object. *)
  let sq1 = subquery_of base_query in
  let sq2 =
    subquery_of
      "SELECT ?z (COUNT(?v) AS ?c2) WHERE { ?v bench:other ?z ; bench:more \
       ?w . } GROUP BY ?z"
  in
  let q =
    {
      Analytical.subqueries = [ sq1; { sq2 with Analytical.sq_id = 1 } ];
      outer_projection = [];
      order_by = [];
      limit = None;
    }
  in
  let ds = Plan_verify.verify_query q in
  Alcotest.(check bool)
    "composite-role fires" true
    (has_rule ~severity:Diagnostic.Error "composite-role" ds);
  Alcotest.(check bool)
    "composite-cover fires" true
    (has_rule ~severity:Diagnostic.Error "composite-cover" ds)

let schema_mismatch () =
  let q = query_of base_query in
  let table = Table.make ~name:"r" ~schema:[ "wrong"; "cols" ] [] in
  let ds = Plan_verify.verify_result ~engine:"test" q table in
  Alcotest.(check (list string)) "rule" [ "schema-mismatch" ] (rules ds)

let cross_engine_disagreement () =
  let q = query_of base_query in
  let good = Table.make ~name:"r" ~schema:(Plan_verify.expected_schema q) [] in
  let bad = Table.make ~name:"r" ~schema:[ "o" ] [] in
  let ds = Plan_verify.verify_cross_engine q [ ("a", good); ("b", bad) ] in
  Alcotest.(check bool)
    "schema-mismatch fires" true
    (has_rule ~severity:Diagnostic.Error "schema-mismatch" ds)

let expected_schema_of_mqo () =
  let q = Catalog.parse (Catalog.find_exn "MG1") in
  let schema = Plan_verify.expected_schema q in
  Alcotest.(check bool) "non-empty" true (schema <> []);
  (* Natural-join fold keeps each shared grouping key once. *)
  let uniq = List.sort_uniq String.compare schema in
  Alcotest.(check int) "no duplicate columns" (List.length uniq)
    (List.length schema)

let catalog_verifies_clean () =
  List.iter
    (fun (e : Catalog.entry) ->
      let q = Catalog.parse e in
      match Plan_verify.verify_query q with
      | [] -> ()
      | ds ->
        Alcotest.failf "%s: %s" e.Catalog.id
          (String.concat "; "
             (List.map (fun d -> Fmt.str "%a" Diagnostic.pp d) ds)))
    Catalog.all

(* --- property: catalog x engines x randomized planner knobs ----------- *)

let bsbm_graph = lazy (Rapida_datagen.Bsbm.(generate (config ~products:60 ())))

let chem_graph =
  lazy (Rapida_datagen.Chem2bio.(generate (config ~compounds:40 ())))

let pubmed_graph =
  lazy (Rapida_datagen.Pubmed.(generate (config ~publications:80 ())))

let graph_for = function
  | Catalog.Bsbm -> Lazy.force bsbm_graph
  | Catalog.Chem2bio -> Lazy.force chem_graph
  | Catalog.Pubmed -> Lazy.force pubmed_graph

let inputs = Hashtbl.create 4

let input_for dataset =
  match Hashtbl.find_opt inputs dataset with
  | Some i -> i
  | None ->
    let i = Engine.input_of_graph (graph_for dataset) in
    Hashtbl.add inputs dataset i;
    i

(* Deterministic per-entry knob choices: a tiny splitmix over the entry
   index, so the sweep is reproducible without seeding a global PRNG. *)
let knob_options ~salt i =
  let h = ref (i * 0x9e3779b9 + salt) in
  let next bound =
    h := Hashtbl.hash (!h, bound, salt);
    !h mod bound
  in
  let thresholds = [| 0; 1024; 64 * 1024; 16 * 1024 * 1024 |] in
  Plan_util.make
    ~map_join_threshold:thresholds.(next 4)
    ~hive_compression:[| 0.06; 0.5; 1.0 |].(next 3)
    ~ntga_combiner:(next 2 = 0)
    ~ntga_filter_pushdown:(next 2 = 0)
    ~verify_plans:true ()

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. A session is prepared per call so each run observes
   the default verifier registered at that moment. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let catalog_times_engines_times_knobs () =
  Plan_verify.install_engine_hook ();
  List.iteri
    (fun i (e : Catalog.entry) ->
      let q = Catalog.parse e in
      List.iteri
        (fun salt options ->
          let results =
            List.map
              (fun kind ->
                let ctx = Plan_util.context options in
                match run kind ctx (input_for e.Catalog.dataset) q with
                | Error msg ->
                  Alcotest.failf "%s on %s (knob set %d): %s"
                    (Engine.kind_name kind) e.Catalog.id salt msg
                | Ok { Engine.table; _ } -> (Engine.kind_name kind, table))
              Engine.all_kinds
          in
          match Plan_verify.verify_cross_engine q results with
          | [] -> ()
          | ds ->
            Alcotest.failf "%s (knob set %d): %s" e.Catalog.id salt
              (String.concat "; "
                 (List.map (fun d -> Fmt.str "%a" Diagnostic.pp d) ds)))
        [ Plan_util.make ~verify_plans:true (); knob_options ~salt:1 i;
          knob_options ~salt:2 i ])
    Catalog.all

let verifier_hook_rejects_bad_schema () =
  (* With the hook installed and verify_plans set, a verifier that sees a
     wrong schema must fail the run; exercised via a doctored verifier. *)
  Engine.set_default_verifier (fun _ _ _ -> [ "doctored failure" ]);
  let e = Catalog.find_exn "G1" in
  let q = Catalog.parse e in
  let ctx = Plan_util.context (Plan_util.make ~verify_plans:true ()) in
  (match run Engine.Rapid_analytics ctx (input_for e.Catalog.dataset) q with
  | Error msg ->
    Alcotest.(check bool)
      "mentions verification" true
      (String.length msg > 0
      && String.length msg >= String.length "plan verification failed"
      && String.sub msg 0 (String.length "plan verification failed")
         = "plan verification failed")
  | Ok _ -> Alcotest.fail "doctored verifier did not fail the run");
  (* Restore the real hook for any later test. *)
  Plan_verify.install_engine_hook ()

let suite =
  List.map
    (fun (name, f) -> Alcotest.test_case name `Quick f)
    lint_cases
  @ [
      Alcotest.test_case "parse-error carries location" `Quick
        parse_error_location;
      Alcotest.test_case "clean query has no diagnostics" `Quick
        clean_query_is_clean;
      Alcotest.test_case "catalog lints clean" `Quick catalog_lints_clean;
      Alcotest.test_case "verifier: broken grouping key" `Quick
        broken_group_key;
      Alcotest.test_case "verifier: broken aggregate argument" `Quick
        broken_agg_arg;
      Alcotest.test_case "verifier: aggregate output collides" `Quick
        colliding_agg_out;
      Alcotest.test_case "verifier: disconnected workflow" `Quick
        disconnected_workflow;
      Alcotest.test_case "verifier: non-overlapping composite" `Quick
        non_overlapping_composite;
      Alcotest.test_case "verifier: schema mismatch" `Quick schema_mismatch;
      Alcotest.test_case "verifier: cross-engine disagreement" `Quick
        cross_engine_disagreement;
      Alcotest.test_case "expected schema of MG1" `Quick
        expected_schema_of_mqo;
      Alcotest.test_case "catalog verifies clean" `Quick
        catalog_verifies_clean;
      Alcotest.test_case "catalog x engines x knobs verify clean" `Slow
        catalog_times_engines_times_knobs;
      Alcotest.test_case "verify hook can fail a run" `Quick
        verifier_hook_rejects_bad_schema;
    ]
