(* Relational substrate: vertical partitioning, in-memory operators, and
   the equivalence of the MapReduce physical operators with their
   in-memory counterparts (the core simulator-correctness property). *)

module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Namespace = Rapida_rdf.Namespace
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Mr_relops = Rapida_relational.Mr_relops
module Vp_store = Rapida_relational.Vp_store
module Workflow = Rapida_mapred.Workflow
module Cluster = Rapida_mapred.Cluster
module Ast = Rapida_sparql.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let iri n = Term.iri ("http://x.test/" ^ n)

let test_table_basics () =
  let t =
    Table.make ~name:"t" ~schema:[ "a"; "b" ]
      [ [| Some (Term.int 1); None |]; [| Some (Term.int 2); Some (Term.str "x") |] ]
  in
  check_int "arity" 2 (Table.arity t);
  check_int "cardinality" 2 (Table.cardinality t);
  check_int "col index" 1 (Table.col_index t "b");
  check_bool "mem_col" true (Table.mem_col t "a");
  check_bool "size positive" true (Table.size_bytes t > 0);
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Table.make t: row arity 1, schema arity 2") (fun () ->
      ignore (Table.make ~name:"t" ~schema:[ "a"; "b" ] [ [| None |] ]))

let test_vp_store () =
  let p = iri "p" and q = iri "q" in
  let g =
    Graph.of_list
      [
        Triple.make (iri "s1") p (Term.int 1);
        Triple.make (iri "s2") p (Term.int 2);
        Triple.make (iri "s1") q (Term.int 3);
        Triple.make (iri "s1") Namespace.rdf_type (iri "T1");
        Triple.make (iri "s2") Namespace.rdf_type (iri "T2");
      ]
  in
  let vp = Vp_store.of_graph g in
  check_int "p partition" 2 (Table.cardinality (Vp_store.property_table vp p));
  check_int "q partition" 1 (Table.cardinality (Vp_store.property_table vp q));
  check_int "type T1" 1 (Table.cardinality (Vp_store.type_table vp (iri "T1")));
  check_int "missing property empty" 0
    (Table.cardinality (Vp_store.property_table vp (iri "nope")));
  let n, _ = Vp_store.stats vp in
  check_int "four partitions" 4 n

let row_list = Alcotest.(list (list (option string)))

let rows_of t =
  List.map
    (fun row ->
      Array.to_list (Array.map (Option.map Term.lexical) row))
    (Relops.canonicalize t).Table.rows

let test_hash_join_inner () =
  let a =
    Table.make ~name:"a" ~schema:[ "k"; "x" ]
      [ [| Some (Term.int 1); Some (Term.str "a1") |];
        [| Some (Term.int 2); Some (Term.str "a2") |];
        [| None; Some (Term.str "anull") |] ]
  in
  let b =
    Table.make ~name:"b" ~schema:[ "k"; "y" ]
      [ [| Some (Term.int 1); Some (Term.str "b1") |];
        [| Some (Term.int 1); Some (Term.str "b1bis") |];
        [| Some (Term.int 3); Some (Term.str "b3") |] ]
  in
  let j = Relops.hash_join ~name:"j" a b in
  check_int "two matches" 2 (Table.cardinality j);
  Alcotest.(check (list string)) "schema" [ "k"; "x"; "y" ] j.Table.schema;
  (* NULL keys never join. *)
  check_bool "no null join" true
    (List.for_all (fun r -> List.hd r <> None) (rows_of j))

let test_hash_join_left_outer () =
  let a =
    Table.make ~name:"a" ~schema:[ "k" ]
      [ [| Some (Term.int 1) |]; [| Some (Term.int 9) |]; [| None |] ]
  in
  let b =
    Table.make ~name:"b" ~schema:[ "k"; "y" ]
      [ [| Some (Term.int 1); Some (Term.str "hit") |] ]
  in
  let j = Relops.hash_join ~kind:`Left_outer ~name:"j" a b in
  check_int "all left rows survive" 3 (Table.cardinality j);
  let nulls =
    List.length (List.filter (fun r -> List.nth r 1 = None) (rows_of j))
  in
  check_int "two padded" 2 nulls

let test_cross_product () =
  let a = Table.make ~name:"a" ~schema:[ "x" ] [ [| Some (Term.int 1) |]; [| Some (Term.int 2) |] ] in
  let b = Table.make ~name:"b" ~schema:[ "y" ] [ [| Some (Term.int 3) |] ] in
  let j = Relops.hash_join ~name:"j" a b in
  check_int "cross product" 2 (Table.cardinality j)

let test_group_by () =
  let t =
    Table.make ~name:"t" ~schema:[ "g"; "v" ]
      [ [| Some (Term.str "a"); Some (Term.int 1) |];
        [| Some (Term.str "a"); Some (Term.int 2) |];
        [| Some (Term.str "b"); Some (Term.int 5) |];
        [| Some (Term.str "a"); None |] ]
  in
  let aggs =
    [ { Relops.func = Ast.Count; distinct = false; col = Some "v"; out = "c" };
      { Relops.func = Ast.Sum; distinct = false; col = Some "v"; out = "s" };
      { Relops.func = Ast.Count; distinct = false; col = None; out = "star" } ]
  in
  let r = Relops.group_by ~name:"r" ~keys:[ "g" ] ~aggs t in
  check_int "two groups" 2 (Table.cardinality r);
  (* rows_of canonicalizes: columns sort to [c; g; s; star]. *)
  Alcotest.check row_list "values"
    [ [ Some "1"; Some "b"; Some "5"; Some "1" ];
      [ Some "2"; Some "a"; Some "3"; Some "3" ] ]
    (rows_of r)

let test_group_by_grand_total_empty () =
  let t = Table.make ~name:"t" ~schema:[ "v" ] [] in
  let aggs = [ { Relops.func = Ast.Count; distinct = false; col = Some "v"; out = "c" } ] in
  let r = Relops.group_by ~name:"r" ~keys:[] ~aggs t in
  Alcotest.check row_list "zero row" [ [ Some "0" ] ] (rows_of r)

let test_distinct_and_project () =
  let t =
    Table.make ~name:"t" ~schema:[ "a"; "b" ]
      [ [| Some (Term.int 1); Some (Term.int 2) |];
        [| Some (Term.int 1); Some (Term.int 2) |];
        [| Some (Term.int 1); Some (Term.int 3) |] ]
  in
  check_int "distinct" 2 (Table.cardinality (Relops.distinct t));
  let p = Relops.project t [ "b" ] in
  Alcotest.(check (list string)) "projected schema" [ "b" ] p.Table.schema;
  check_int "projection keeps rows" 3 (Table.cardinality p)

let test_project_exprs () =
  let t =
    Table.make ~name:"t" ~schema:[ "sumF"; "cntF" ]
      [ [| Some (Term.int 10); Some (Term.int 4) |] ]
  in
  let items =
    [ Ast.Svar "cntF";
      Ast.Sexpr (Ast.Ebin (Ast.Div, Ast.Evar "sumF", Ast.Evar "cntF"), "avg") ]
  in
  let r = Relops.project_exprs ~name:"r" items t in
  (* canonical column order: [avg; cntF] *)
  Alcotest.check row_list "ratio" [ [ Some "2.5"; Some "4" ] ] (rows_of r)

let test_same_results_modulo_order () =
  let a =
    Table.make ~name:"a" ~schema:[ "x"; "y" ]
      [ [| Some (Term.int 1); Some (Term.int 2) |];
        [| Some (Term.int 3); Some (Term.int 4) |] ]
  in
  let b =
    Table.make ~name:"b" ~schema:[ "y"; "x" ]
      [ [| Some (Term.int 4); Some (Term.int 3) |];
        [| Some (Term.int 2); Some (Term.int 1) |] ]
  in
  check_bool "same modulo order" true (Relops.same_results a b);
  let c = { b with Table.rows = List.tl b.Table.rows } in
  check_bool "different cardinality" false (Relops.same_results a c)

(* --- MR physical operators match the in-memory semantics ----------------- *)

let gen_key = QCheck2.Gen.(map Term.int (0 -- 6))
let gen_val = QCheck2.Gen.(map Term.int (0 -- 50))

let gen_table ~schema =
  QCheck2.Gen.(
    map
      (fun rows ->
        Table.make ~name:"g" ~schema
          (List.map
             (fun (k, v) ->
               [| (if Term.equal k (Term.int 6) then None else Some k); Some v |])
             rows))
      (list_size (0 -- 25) (pair gen_key gen_val)))

let wf () =
  Workflow.create
    (Rapida_mapred.Exec_ctx.create ~cluster:Cluster.default ())

let prop_repartition_join_matches =
  QCheck2.Test.make ~count:200 ~name:"repartition join = hash join"
    QCheck2.Gen.(pair (gen_table ~schema:["k";"x"]) (gen_table ~schema:["k";"y"]))
    (fun (a, b) ->
      let expected = Relops.hash_join ~name:"e" a b in
      let got = Mr_relops.repartition_join (wf ()) ~name:"g" a b in
      Relops.same_results expected got)

let prop_left_outer_matches =
  QCheck2.Test.make ~count:200 ~name:"repartition left outer = hash left outer"
    QCheck2.Gen.(pair (gen_table ~schema:["k";"x"]) (gen_table ~schema:["k";"y"]))
    (fun (a, b) ->
      let expected = Relops.hash_join ~kind:`Left_outer ~name:"e" a b in
      let got = Mr_relops.repartition_join (wf ()) ~kind:`Left_outer ~name:"g" a b in
      Relops.same_results expected got)

let prop_map_join_matches =
  QCheck2.Test.make ~count:200 ~name:"map join = hash join"
    QCheck2.Gen.(pair (gen_table ~schema:["k";"x"]) (gen_table ~schema:["k";"y"]))
    (fun (a, b) ->
      let expected = Relops.hash_join ~name:"e" a b in
      let got = Mr_relops.map_join (wf ()) ~name:"g" ~big:a ~small:b () in
      Relops.same_results expected got)

let prop_group_aggregate_matches =
  QCheck2.Test.make ~count:200 ~name:"MR group-by = in-memory group-by"
    (gen_table ~schema:["k";"v"])
    (fun t ->
      let aggs =
        [ { Relops.func = Ast.Count; distinct = false; col = Some "v"; out = "c" };
          { Relops.func = Ast.Sum; distinct = false; col = Some "v"; out = "s" };
          { Relops.func = Ast.Min; distinct = false; col = Some "v"; out = "lo" };
          { Relops.func = Ast.Max; distinct = true; col = Some "v"; out = "hi" } ]
      in
      let expected = Relops.group_by ~name:"e" ~keys:[ "k" ] ~aggs t in
      let got = Mr_relops.group_aggregate (wf ()) ~name:"g" ~keys:[ "k" ] ~aggs t in
      Relops.same_results expected got)

let prop_distinct_project_matches =
  QCheck2.Test.make ~count:200 ~name:"MR distinct = in-memory distinct"
    (gen_table ~schema:["k";"v"])
    (fun t ->
      let expected = Relops.distinct (Relops.project t [ "k" ]) in
      let got = Mr_relops.distinct_project (wf ()) ~name:"g" ~cols:[ "k" ] t in
      Relops.same_results expected got)

let suite =
  [
    Alcotest.test_case "table basics" `Quick test_table_basics;
    Alcotest.test_case "vp store" `Quick test_vp_store;
    Alcotest.test_case "hash join inner" `Quick test_hash_join_inner;
    Alcotest.test_case "hash join left outer" `Quick test_hash_join_left_outer;
    Alcotest.test_case "cross product" `Quick test_cross_product;
    Alcotest.test_case "group by" `Quick test_group_by;
    Alcotest.test_case "group by grand total on empty" `Quick test_group_by_grand_total_empty;
    Alcotest.test_case "distinct and project" `Quick test_distinct_and_project;
    Alcotest.test_case "project exprs" `Quick test_project_exprs;
    Alcotest.test_case "same_results modulo order" `Quick test_same_results_modulo_order;
    QCheck_alcotest.to_alcotest prop_repartition_join_matches;
    QCheck_alcotest.to_alcotest prop_left_outer_matches;
    QCheck_alcotest.to_alcotest prop_map_join_matches;
    QCheck_alcotest.to_alcotest prop_group_aggregate_matches;
    QCheck_alcotest.to_alcotest prop_distinct_project_matches;
  ]

let prop_canonicalize_idempotent =
  QCheck2.Test.make ~count:200 ~name:"canonicalize is idempotent"
    (gen_table ~schema:["k";"v"])
    (fun t ->
      let once = Relops.canonicalize t in
      let twice = Relops.canonicalize once in
      once.Table.schema = twice.Table.schema
      && List.for_all2
           (fun a b -> Relops.row_compare a b = 0)
           once.Table.rows twice.Table.rows)

let prop_same_results_reflexive =
  QCheck2.Test.make ~count:200 ~name:"same_results is reflexive"
    (gen_table ~schema:["k";"v"])
    (fun t -> Relops.same_results t t)

let prop_order_limit_deterministic =
  QCheck2.Test.make ~count:200
    ~name:"order_limit picks a deterministic prefix"
    QCheck2.Gen.(pair (gen_table ~schema:["k";"v"]) (0 -- 5))
    (fun (t, n) ->
      let order_by = [ Ast.Desc "v"; Ast.Asc "k" ] in
      let a = Relops.order_limit ~order_by ~limit:(Some n) t in
      let b = Relops.order_limit ~order_by ~limit:(Some n) t in
      Table.cardinality a = min n (Table.cardinality t)
      && List.for_all2 (fun x y -> Relops.row_compare x y = 0) a.Table.rows
           b.Table.rows
      &&
      (* the limited rows are a prefix of the full ordering *)
      let full = Relops.order_limit ~order_by ~limit:None t in
      List.for_all2
        (fun x y -> Relops.row_compare x y = 0)
        a.Table.rows
        (List.filteri (fun i _ -> i < n) full.Table.rows))

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_canonicalize_idempotent;
      QCheck_alcotest.to_alcotest prop_same_results_reflexive;
      QCheck_alcotest.to_alcotest prop_order_limit_deterministic;
    ]
