The CLI drives the whole system end to end: generate a dataset, inspect
it, run catalog queries on each engine with verification, and explain
the composite rewriting.

  $ alias rapida='../../bin/rapida_cli.exe'

Generate a small BSBM-like dataset:

  $ rapida gen -d bsbm -n 30 --seed 7 -o data.nt
  wrote 550 triples to data.nt

Dataset statistics:

  $ rapida stats data.nt | head -2
  triples: 550 (54291 bytes)
  subjects: 117, properties: 10

Run a catalog query with the optimizer, verified against the reference
evaluator:

  $ rapida query -d data.nt -c G1 --verify
  verification: result matches the reference evaluator
  cnt  sum          
  30   133983.589195
  -- 1 rows; 2 cycles (2 full MR, 0 map-only), 24079 B shuffled, 36.0 s

The same query on the naive Hive baseline gives the same answer in more
cycles:

  $ rapida query -d data.nt -c G1 -e hive-naive --verify | tail -1
  -- 1 rows; 4 cycles (1 full MR, 3 map-only), 48 B shuffled, 42.0 s

Explain shows the overlap analysis, the composite pattern with its
secondary (optional) properties, and the predicted workflow lengths:

  $ rapida explain -c MG1 | grep -c "OVERLAP"
  1
  $ rapida explain -c MG1 | tail -5
  predicted MapReduce workflow lengths:
  hive-naive       9 MR cycles
  hive-mqo         8 MR cycles
  rapid-plus       5 MR cycles
  rapid-analytics  3 MR cycles

The catalog lists the paper's workload:

  $ rapida catalog | head -3
  Id    Dataset       Description
  G1    BSBM          Total offer count and price sum for ProductType1 (low selectivity), GROUP BY ALL
  G2    BSBM          Total offer count and price sum for ProductType9 (high selectivity), GROUP BY ALL

Usage and input errors exit with code 2 and a one-line diagnostic —
never a backtrace. Unknown catalog queries:

  $ rapida query -d data.nt -c NOPE
  error: unknown catalog query NOPE
  [2]

An unreadable query file:

  $ rapida query -d data.nt -q no-such-file.rq
  error: cannot read no-such-file.rq: No such file or directory
  [2]

A query that does not parse:

  $ printf 'SELECT ?x WHERE {' > broken.rq
  $ rapida query -d data.nt -q broken.rq
  error: line 1, col 18: unexpected end of input in group pattern (at <eof>)
  [2]

A malformed --faults spec:

  $ rapida query -d data.nt -c G1 --faults task-fail=lots
  error: --faults: task-fail expects a number, got "lots"
  [2]
  $ rapida query -d data.nt -c G1 --faults seed
  error: --faults: expected key=value, got "seed"
  [2]
  $ rapida query -d data.nt -c G1 --faults task-fail=1.5
  error: Fault_injector.create: task_fail_p must be in [0, 1)
  [2]

Fault injection is transparent: the answer (and its verification) is
identical to the fault-free run; only the simulated time and the fault
counters change (on this tiny dataset the re-work is milliseconds, so
the rounded summary still reads 36.0 s):

  $ rapida query -d data.nt -c G1 --verify --faults seed=7,task-fail=0.2,straggler=0.2
  verification: result matches the reference evaluator
  cnt  sum          
  30   133983.589195
  -- 1 rows; 2 cycles (2 full MR, 0 map-only), 24079 B shuffled, 36.0 s
  $ rapida query -d data.nt -c G1 --json --faults seed=7,task-fail=0.2,straggler=0.2 \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin); \
  > print(d["rows"], d["stats"]["attempts_failed"] > 0)'
  1 True

A workflow that burns through every task attempt and job retry aborts
with a structured diagnostic and exit code 1:

  $ rapida query -d data.nt -c G1 --faults seed=1,task-fail=0.9,max-attempts=1
  rapida_cli.exe: [WARNING] submission 0 of "composite_join0" lost: job "composite_join0": map task 0 failed 1 attempt: injected task-attempt crashes exhausted retries
  error: workflow aborted: job "composite_join0": map task 0 failed 1 attempt: injected task-attempt crashes exhausted retries (0 whole-job resubmissions, 0 jobs completed before the abort)
  [1]

A malformed --mem spec follows the same conventions:

  $ rapida query -d data.nt -c G1 --mem heap=banana
  error: --mem: heap expects a size (bytes, or with a k/m/g suffix), got "banana"
  [2]
  $ rapida query -d data.nt -c G1 --mem nonsense
  error: --mem: expected key=value, got "nonsense"
  [2]
  $ rapida query -d data.nt -c G1 --mem spill-threshold=1.5
  error: Memory.create: spill_threshold must be in (0, 1]
  [2]

Memory bounds are transparent too: a starved sort buffer spills (priced
in milliseconds here, so the rounded summary is unchanged), but the
answer and its verification are identical to the unbounded run:

  $ rapida query -d data.nt -c G1 --verify --mem heap=4k,sort-buffer=1k
  verification: result matches the reference evaluator
  cnt  sum          
  30   133983.589195
  -- 1 rows; 2 cycles (2 full MR, 0 map-only), 24079 B shuffled, 36.0 s

The spill work lands in the --json stats: counters for spilled bytes,
external-sort passes and OOM-killed attempts, and a spill phase in the
breakdown — all zero at the default (generous) budget:

  $ rapida query -d data.nt -c G1 --json --mem heap=256,sort-buffer=64 \
  >   | python3 -c 'import json,sys; s=json.load(sys.stdin)["stats"]; \
  > print(s["spilled_bytes"] > 0, s["spill_passes"] > 0, \
  >       s["oom_kills"] > 0, s["phases"]["spill_s"] > 0)'
  True True True True
  $ rapida query -d data.nt -c G1 --json \
  >   | python3 -c 'import json,sys; s=json.load(sys.stdin)["stats"]; \
  > print(s["spilled_bytes"], s["spill_passes"], s["oom_kills"], \
  >       s["phases"]["spill_s"])'
  0 0 0 0

Fault and memory pressure compose: one run can crash task attempts and
starve the sort buffer at the same time, and both layers stay
transparent — the verified answer is unchanged while each layer's
counters record its own re-work:

  $ rapida query -d data.nt -c G1 --verify --faults seed=7,task-fail=0.2 --mem heap=4k,sort-buffer=1k | head -1
  verification: result matches the reference evaluator
  $ rapida query -d data.nt -c G1 --json --faults seed=7,task-fail=0.2 --mem heap=4k,sort-buffer=1k \
  >   | python3 -c 'import json,sys; s=json.load(sys.stdin)["stats"]; \
  > print(s["attempts_failed"] > 0, s["spilled_bytes"] > 0)'
  True True

A malformed --checkpoint spec follows the same conventions:

  $ rapida query -d data.nt -c G1 --checkpoint every=0
  error: Checkpoint.create: every-k interval must be >= 1
  [2]
  $ rapida query -d data.nt -c G1 --checkpoint pause=1
  error: --checkpoint: unknown key "pause"
  [2]
  $ rapida query -d data.nt -c G1 --checkpoint adaptive=oops
  error: --checkpoint: adaptive expects a size (bytes, or with a k/m/g suffix), got "oops"
  [2]

Checkpoint writes are priced into the simulated time and surfaced in
the --json stats; with checkpointing off every recovery counter is
exactly zero:

  $ rapida query -d data.nt -c G1 --json --checkpoint every=1 \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin); s=d["stats"]; \
  > print(s["checkpoints_written"], s["checkpoint_bytes"] > 0, \
  >       s["checkpoint_s"] > 0, d["counters"]["mr.checkpoints"])'
  2 True True 2
  $ rapida query -d data.nt -c G1 --json \
  >   | python3 -c 'import json,sys; s=json.load(sys.stdin)["stats"]; \
  > print(s["checkpoints_written"], s["checkpoint_bytes"], s["checkpoint_s"], \
  >       s["replayed_s"], s["recovered_jobs"], s["skipped_records"])'
  0 0 0 0 0 0

A fault configuration that aborts without checkpointing (exhausted
retries, exit 1) instead degrades and completes under any active
policy: the workflow replays from the last checkpoint, the answer is
unchanged, and only the simulated time grows:

  $ rapida query -d data.nt -c G1 --faults seed=1,task-fail=0.3,max-attempts=2 2>/dev/null
  [1]
  $ rapida query -d data.nt -c G1 --faults seed=1,task-fail=0.3,max-attempts=2 --checkpoint every=1 2>/dev/null
  cnt  sum          
  30   133983.589195
  -- 1 rows; 2 cycles (2 full MR, 0 map-only), 24079 B shuffled, 276.0 s

Dirty datasets: by default a malformed N-Triples line fails the load
with its line and column (exit 2):

  $ cp data.nt dirty.nt
  $ printf 'xyz\n<a> <b> .\n' >> dirty.nt
  $ rapida query -d dirty.nt -c G1
  error: dirty.nt: line 551: col 1: unexpected character 'x'
  [2]

--dirty-input skip (or quarantine) loads the well-formed lines and
reports each quarantined line on stderr, with the answer computed over
the clean data:

  $ rapida query -d dirty.nt -c G1 --dirty-input skip
  dirty input: quarantined 2 malformed line(s) in dirty.nt
    line 551, col 1: unexpected character 'x': "xyz"
    line 552, col 9: unexpected character '.': "<a> <b> ."
  cnt  sum          
  30   133983.589195
  -- 1 rows; 2 cycles (2 full MR, 0 map-only), 24079 B shuffled, 36.0 s

The skip budget is a tolerance, not a license — one bad line too many
still fails the load:

  $ rapida query -d dirty.nt -c G1 --dirty-input skip=1 2>&1 | tail -1
  error: dirty.nt: line 552: col 9: unexpected character '.'

An unknown mode exits with the usual usage diagnostic:

  $ rapida query -d data.nt -c G1 --dirty-input lenient
  error: --dirty-input: expected strict, skip[=N], or quarantine, got "lenient"
  [2]

Queries can also come from a file, with ORDER BY and LIMIT:

  $ cat > top.rq <<'RQ'
  > SELECT ?f (SUM(?pr) AS ?rev) {
  >   ?p a ProductType1 . ?p productFeature ?f .
  >   ?off product ?p . ?off price ?pr .
  > } GROUP BY ?f ORDER BY DESC(?rev) LIMIT 2
  > RQ
  $ rapida query -d data.nt -q top.rq --verify | head -2
  verification: result matches the reference evaluator
  f                                   rev          

Verbose mode logs each simulated MapReduce job:

  $ rapida query -d data.nt -c G1 -v 2>&1 | grep -c "DEBUG"
  2

--trace exports the execution as a Chrome trace-event file, with one
span per simulated job and per phase:

  $ rapida query -d data.nt -c G1 --trace g1.json | head -1
  wrote trace (15 events) to g1.json
  $ grep -o '"ph":"X"' g1.json | wc -l
  13
  $ grep -o '"phase":"[a-z-]*"' g1.json | sort | uniq -c | sort -k2
        1 "phase":"combine"
        2 "phase":"map-read"
        2 "phase":"reduce-write"
        2 "phase":"shuffle"
        2 "phase":"sort"
        2 "phase":"startup"

--json bundles the result table, per-phase statistics, and the
execution counters into one machine-readable document:

  $ rapida query -d data.nt -c G1 --json | python3 -m json.tool | head -8
  {
      "engine": "rapid-analytics",
      "rows": 1,
      "table": {
          "schema": [
              "cnt",
              "sum"
          ],
  $ rapida query -d data.nt -c G1 --json \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin); \
  > print(d["stats"]["cycles"], d["counters"]["mr.jobs"])'
  2 2

explain --json reports the predicted workflow lengths per engine:

  $ rapida explain -c MG1 --json \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin); \
  > print(d["predicted_cycles"]["rapid-analytics"], d["subqueries"])'
  3 2
