(* Ablations: each optimization knob must preserve results exactly and
   must actually deliver its claimed saving on a workload where it
   applies. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Relops = Rapida_relational.Relops
module Stats = Rapida_mapred.Stats

let check_bool = Alcotest.(check bool)

let bsbm =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~products:150 ())))

let chem =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Chem2bio.(generate (config ~compounds:100 ())))

let base = Plan_util.default_options

let run_with options kind input id =
  match
    Engine.execute (Engine.prepare kind input) (Plan_util.context options)
      (Catalog.parse (Catalog.find_exn id))
  with
  | Ok out -> out
  | Error e ->
    Alcotest.failf "%s on %s: %s" (Engine.kind_name kind) id
      (Engine.error_message e)

let test_combiner_ablation () =
  let input = Lazy.force bsbm in
  let on = run_with base Engine.Rapid_analytics input "MG1" in
  let off =
    run_with (Plan_util.make ~base ~ntga_combiner:false ()) Engine.Rapid_analytics input
      "MG1"
  in
  check_bool "same result" true
    (Relops.same_results on.Engine.table off.Engine.table);
  check_bool "partial aggregation reduces shuffle" true
    (Stats.total_shuffle_bytes on.Engine.stats
    < Stats.total_shuffle_bytes off.Engine.stats)

let test_filter_pushdown_ablation () =
  (* G6's MAPK filter keeps one pathway out of fifteen; pushing it into
     the scan must shrink the join input and shuffle. *)
  let input = Lazy.force chem in
  let on = run_with base Engine.Rapid_analytics input "G6" in
  let off =
    run_with
      (Plan_util.make ~base ~ntga_filter_pushdown:false ())
      Engine.Rapid_analytics input "G6"
  in
  check_bool "same result" true
    (Relops.same_results on.Engine.table off.Engine.table);
  check_bool "pushdown reduces shuffle" true
    (Stats.total_shuffle_bytes on.Engine.stats
    < Stats.total_shuffle_bytes off.Engine.stats)

let test_map_join_ablation () =
  (* Disabling map-joins turns Hive's map-only cycles into full MR
     cycles, with identical results. *)
  let input = Lazy.force chem in
  let on = run_with base Engine.Hive_naive input "G5" in
  let off =
    run_with (Plan_util.make ~base ~map_join_threshold:0 ()) Engine.Hive_naive input "G5"
  in
  check_bool "same result" true
    (Relops.same_results on.Engine.table off.Engine.table);
  check_bool "map-joins produce map-only cycles" true
    (Stats.map_only_cycles on.Engine.stats
    > Stats.map_only_cycles off.Engine.stats);
  check_bool "same total cycles" true
    (Stats.cycles on.Engine.stats = Stats.cycles off.Engine.stats)

let test_orc_ablation () =
  (* ORC compression reduces Hive's stored input, hence map tasks. *)
  let input = Lazy.force bsbm in
  let compressed = run_with base Engine.Hive_naive input "MG3" in
  let plain =
    run_with (Plan_util.make ~base ~hive_compression:1.0 ()) Engine.Hive_naive input "MG3"
  in
  check_bool "same result" true
    (Relops.same_results compressed.Engine.table plain.Engine.table);
  let max_tasks stats =
    List.fold_left
      (fun acc (j : Stats.job) -> max acc j.Stats.map_tasks)
      0 stats.Stats.jobs
  in
  check_bool "compression reduces mappers" true
    (max_tasks compressed.Engine.stats <= max_tasks plain.Engine.stats)

let suite =
  [
    Alcotest.test_case "partial aggregation (combiner)" `Quick test_combiner_ablation;
    Alcotest.test_case "filter pushdown" `Quick test_filter_pushdown_ablation;
    Alcotest.test_case "map joins" `Quick test_map_join_ablation;
    Alcotest.test_case "ORC compression" `Quick test_orc_ablation;
  ]
