(* Experiment harness: runs collect verified per-engine statistics and the
   reports render the paper-style tables. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Experiment = Rapida_harness.Experiment
module Report = Rapida_harness.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let input =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~products:80 ())))

let options = Plan_util.default_options

let run_mg1 =
  lazy
    (Experiment.run_query options ~label:"test" (Lazy.force input)
       (Catalog.find_exn "MG1"))

let test_run_collects_all_engines () =
  let run = Lazy.force run_mg1 in
  check_int "four engine results" 4 (List.length run.Experiment.results);
  check_bool "all agreed" true (Experiment.all_agreed run);
  List.iter
    (fun (r : Experiment.engine_result) ->
      check_bool "cycles positive" true (r.cycles > 0);
      check_bool "est time positive" true (r.est_time_s > 0.0);
      check_bool "no error" true (r.error = None);
      check_bool "rows" true (r.result_rows > 0);
      let module Trace = Rapida_mapred.Trace in
      let module Stats = Rapida_mapred.Stats in
      check_bool "one job span per cycle" true
        (List.length (Trace.spans_with_cat r.trace "job") = r.cycles);
      check_bool "phase breakdown covers the estimate" true
        (Float.abs (Stats.breakdown_total_s r.phases -. r.est_time_s)
        < 1e-6 *. Float.max 1.0 r.est_time_s))
    run.Experiment.results

let test_result_for () =
  let run = Lazy.force run_mg1 in
  check_bool "find rapid-analytics" true
    (Experiment.result_for run Engine.Rapid_analytics <> None);
  let ra = Option.get (Experiment.result_for run Engine.Rapid_analytics) in
  let naive = Option.get (Experiment.result_for run Engine.Hive_naive) in
  check_bool "RA uses fewer cycles than naive Hive" true
    (ra.Experiment.cycles < naive.Experiment.cycles)

let test_speedup () =
  let run = Lazy.force run_mg1 in
  match
    Report.speedup run ~baseline:Engine.Hive_naive
      ~target:Engine.Rapid_analytics
  with
  | Some s -> check_bool "speedup > 1" true (s > 1.0)
  | None -> Alcotest.fail "expected a speedup"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_reports_render () =
  let runs = [ Lazy.force run_mg1 ] in
  let comparison =
    Fmt.str "%a" (Report.pp_comparison ~title:"T" ~engines:Engine.all_kinds) runs
  in
  check_bool "mentions query" true (contains ~needle:"MG1" comparison);
  check_bool "mentions engine" true (contains ~needle:"RAPIDAnalytics" comparison);
  let cycles =
    Fmt.str "%a" (Report.pp_cycles ~title:"T" ~engines:Engine.all_kinds) runs
  in
  check_bool "cycles table renders" true (contains ~needle:"map-only" cycles);
  let bytes =
    Fmt.str "%a" (Report.pp_bytes ~title:"T" ~engines:Engine.all_kinds) runs
  in
  check_bool "bytes table renders" true (contains ~needle:"KB" bytes);
  let phases =
    Fmt.str "%a" (Report.pp_phases ~title:"T" ~engines:Engine.all_kinds) runs
  in
  check_bool "phase table renders" true
    (contains ~needle:"startup/map/shuffle+sort/reduce" phases);
  let verification = Fmt.str "%a" Report.pp_verification runs in
  check_bool "verification summary" true (contains ~needle:"1/1" verification)

let test_engine_subset () =
  let run =
    Experiment.run_query ~engines:[ Engine.Rapid_analytics ] options
      ~label:"test" (Lazy.force input) (Catalog.find_exn "G1")
  in
  check_int "one engine" 1 (List.length run.Experiment.results)

let suite =
  [
    Alcotest.test_case "run collects all engines" `Quick test_run_collects_all_engines;
    Alcotest.test_case "result_for and cycle ordering" `Quick test_result_for;
    Alcotest.test_case "speedup" `Quick test_speedup;
    Alcotest.test_case "reports render" `Quick test_reports_render;
    Alcotest.test_case "engine subset" `Quick test_engine_subset;
  ]
