Static cost analysis from the command line: `rapida analyze` builds a
statistics catalog from a dataset (or loads a saved one), propagates
cardinality intervals through each query's logical plan, and reports
stats-aware diagnostics. Exit codes follow `lint`: 0 clean, 1 findings,
2 usage.

  $ alias rapida='../../bin/rapida_cli.exe'

  $ rapida gen -d bsbm -n 30 --seed 7 -o data.nt
  wrote 550 triples to data.nt

A catalog query gets its annotated plan — every node carries a sound
[lo, hi] cardinality interval and a byte interval:

  $ rapida analyze -d data.nt -c G1
  -- catalog:G1
  result                                               card [1, 1]  ~1 rows
    agg sq0 (group by ALL)                             card [1, 1]  ~1 rows
      join on ?p                                       card [0, 55]  ~7 rows
        star-join ?p (2 patterns)                      card [0, 11]  ~3 rows
          scan ?p <http://www.w3.org/1999/02/22-rdf-s… card [11, 11]  ~11 rows
          scan ?p <http://rapida.bench/vocab/label> ?… card [33, 33]  ~33 rows
        star-join ?off (2 patterns)                    card [51, 84]  ~65 rows
          scan ?off <http://rapida.bench/vocab/produc… card [84, 84]  ~84 rows
          scan ?off <http://rapida.bench/vocab/price>… card [84, 84]  ~84 rows
  catalog:G1:info[broadcast-feasible] subquery 0, star ?off: build side is at most 8568 bytes (< 65536-byte map-join threshold, < 1073741824-byte task heap) — the star join is guaranteed map-only
  catalog:G1:info[broadcast-feasible] subquery 0, star ?p: build side is at most 583 bytes (< 65536-byte map-join threshold, < 1073741824-byte task heap) — the star join is guaranteed map-only

A join on a predicate the dataset never mentions is statically empty.
Like `lint`, warnings alone leave the exit code 0; `--min-severity
warning` turns them into a gate:

  $ cat > empty.rq <<'RQ'
  > SELECT (COUNT(?o) AS ?cnt) {
  >   ?s noSuchPredicate ?o . ?s label ?l .
  > }
  > RQ
  $ rapida analyze -d data.nt empty.rq
  -- empty.rq
  result                                               card [1, 1]  ~1 rows
    agg sq0 (group by ALL)                             card [1, 1]  ~1 rows
      star-join ?s (2 patterns)                        card [0, 0]  ~0 rows
        scan ?s <http://rapida.bench/vocab/noSuchPred… card [0, 0]  ~0 rows
        scan ?s <http://rapida.bench/vocab/label> ?l . card [33, 33]  ~33 rows
  empty.rq:warning[statically-empty-join] subquery 0, star ?s is statically empty (no triples for http://rapida.bench/vocab/noSuchPredicate): the catalog bounds it to 0 rows
  $ rapida analyze -d data.nt --min-severity warning empty.rq > /dev/null; echo "exit=$?"
  exit=1

A numeric filter disjoint from the predicate's literal range can never
hold:

  $ cat > neg.rq <<'RQ'
  > SELECT (COUNT(?pr) AS ?cnt) {
  >   ?off price ?pr . FILTER(?pr < 0)
  > }
  > RQ
  $ rapida analyze -d data.nt neg.rq
  -- neg.rq
  result                                               card [1, 1]  ~1 rows
    agg sq0 (group by ALL)                             card [1, 1]  ~1 rows
      filter (1 predicate)                             card [0, 0]  ~0 rows
        scan ?off <http://rapida.bench/vocab/price> ?… card [84, 84]  ~84 rows
  neg.rq:warning[filter-selectivity-zero] subquery 0: FILTER (?pr < 0) can never hold — ?pr only takes http://rapida.bench/vocab/price values in [199.213, 9950.49]

--min-severity filters the report and the gate together: at `error`
level the same query passes:

  $ rapida analyze -d data.nt --min-severity error neg.rq; echo "exit=$?"
  -- neg.rq
  result                                               card [1, 1]  ~1 rows
    agg sq0 (group by ALL)                             card [1, 1]  ~1 rows
      filter (1 predicate)                             card [0, 0]  ~0 rows
        scan ?off <http://rapida.bench/vocab/price> ?… card [84, 84]  ~84 rows
  exit=0

--dump-stats saves the catalog; analyzing from the saved catalog is
identical to analyzing from the data:

  $ rapida analyze -d data.nt --dump-stats stats.json -c G1 > from-data.txt
  $ rapida analyze --stats stats.json -c G1 > from-stats.txt
  $ cmp from-data.txt from-stats.txt && echo identical
  identical

A catalog source is required, but exactly one:

  $ rapida analyze -c G1
  error: provide exactly one of --data or --stats
  [2]
  $ rapida analyze -d data.nt --stats stats.json -c G1
  error: provide exactly one of --data or --stats
  [2]

--json emits the annotated plan tree and diagnostics per report:

  $ rapida analyze -d data.nt --json -c G1 | python3 -c '
  > import json, sys
  > doc = json.load(sys.stdin)
  > r = doc["reports"][0]
  > plan = r["plan"]
  > def walk(n):
  >     assert n["card"]["lo"] <= n["card"]["hi"], n
  >     for c in n["children"]: walk(c)
  > walk(plan)
  > print("file:", r["file"])
  > print("root card:", plan["card"])
  > print("totals:", doc["errors"], doc["warnings"], doc["infos"])'
  file: catalog:G1
  root card: {'lo': 1, 'hi': 1}
  totals: 0 0 2

--rules dumps the full registry, one line per rule, machine-readable
with --json:

  $ rapida analyze --rules | head -6
  parse-error                   error    ast-lint       the source failed to lex or parse
  unbound-var                   error    ast-lint       a projected, filtered, grouped, or ordered variable is never bound
  ungrouped-projection          error    ast-lint       an aggregated SELECT projects a variable that is not a grouping key
  analytical-form               error    ast-lint       the query falls outside the analytical normal form the engines run
  filter-unsatisfiable          warning  ast-lint       a FILTER can never hold (folds to false or implies an empty interval)
  filter-constant               warning  ast-lint       a FILTER folds to a constant and can be removed
  $ rapida analyze --rules --json | python3 -c '
  > import json, sys
  > rules = json.load(sys.stdin)
  > by_layer = {}
  > for r in rules: by_layer.setdefault(r["layer"], []).append(r["id"])
  > for layer in sorted(by_layer): print(layer, len(by_layer[layer]))'
  ast-lint 11
  card-analysis 5
  plan-verify 8

The example queries analyze warning-clean against their own datasets —
the CI gate:

  $ rapida gen -d pubmed -n 40 --seed 7 -o pubmed.nt
  wrote 387 triples to pubmed.nt
  $ rapida analyze -d data.nt --min-severity warning \
  >   ../../examples/queries/bsbm_revenue_by_feature.rq \
  >   ../../examples/queries/bsbm_feature_vs_total.rq; echo "exit=$?"
  -- ../../examples/queries/bsbm_revenue_by_feature.rq
  result (ordered) (limit 10)                          card [0, 5]  ~2 rows
    agg sq0 (group by ?f)                              card [0, 5]  ~2 rows
      join on ?p                                       card [0, 165]  ~13 rows
        star-join ?p (2 patterns)                      card [0, 33]  ~6 rows
          scan ?p <http://www.w3.org/1999/02/22-rdf-s… card [11, 11]  ~11 rows
          scan ?p <http://rapida.bench/vocab/productF… card [59, 59]  ~59 rows
        filter (1 predicate)                           card [0, 84]  ~9 rows
          star-join ?off (2 patterns)                  card [51, 84]  ~65 rows
            scan ?off <http://rapida.bench/vocab/prod… card [84, 84]  ~84 rows
            scan ?off <http://rapida.bench/vocab/pric… card [84, 84]  ~84 rows
  -- ../../examples/queries/bsbm_feature_vs_total.rq
  result                                               card [0, 5]  ~2 rows
    final-join (2 subqueries)                          card [0, 5]  ~2 rows
      agg sq0 (group by ?f)                            card [0, 5]  ~2 rows
        join on ?p2                                    card [0, 165]  ~13 rows
          star-join ?p2 (2 patterns)                   card [0, 33]  ~6 rows
            scan ?p2 <http://www.w3.org/1999/02/22-rd… card [11, 11]  ~11 rows
            scan ?p2 <http://rapida.bench/vocab/produ… card [59, 59]  ~59 rows
          star-join ?off2 (2 patterns)                 card [51, 84]  ~65 rows
            scan ?off2 <http://rapida.bench/vocab/pro… card [84, 84]  ~84 rows
            scan ?off2 <http://rapida.bench/vocab/pri… card [84, 84]  ~84 rows
      agg sq1 (group by ALL)                           card [1, 1]  ~1 rows
        join on ?p1                                    card [0, 55]  ~7 rows
          scan ?p1 <http://www.w3.org/1999/02/22-rdf-… card [11, 11]  ~11 rows
          star-join ?off1 (2 patterns)                 card [51, 84]  ~65 rows
            scan ?off1 <http://rapida.bench/vocab/pro… card [84, 84]  ~84 rows
            scan ?off1 <http://rapida.bench/vocab/pri… card [84, 84]  ~84 rows
  exit=0
  $ rapida analyze -d pubmed.nt --min-severity warning \
  >   ../../examples/queries/pubmed_pairs_per_journal.rq; echo "exit=$?"
  -- ../../examples/queries/pubmed_pairs_per_journal.rq
  result                                               card [0, 102]  ~10 rows
    agg sq0 (group by ?j, ?a)                          card [0, 102]  ~10 rows
      star-join ?pub (3 patterns)                      card [0, 102]  ~10 rows
        scan ?pub <http://rapida.bench/vocab/journal>… card [40, 40]  ~40 rows
        scan ?pub <http://rapida.bench/vocab/author> … card [76, 76]  ~76 rows
        scan ?pub <http://rapida.bench/vocab/pub_type… card [0, 34]  ~6 rows
  exit=0
