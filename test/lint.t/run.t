Static analysis from the command line: `rapida lint` runs the AST lint
and the plan verifier over files and catalog queries, exits 0 when no
error-severity diagnostics fire, 1 when any do, and 2 on usage errors.

  $ alias rapida='../../bin/rapida_cli.exe'

A clean query produces no output:

  $ cat > clean.rq <<'RQ'
  > SELECT ?f (SUM(?pr) AS ?rev) {
  >   ?p a ProductType1 . ?p productFeature ?f .
  >   ?off product ?p . ?off price ?pr .
  > } GROUP BY ?f
  > RQ
  $ rapida lint clean.rq

A broken query gets one located diagnostic per finding, rule ids in
brackets, and exit code 1:

  $ cat > broken.rq <<'RQ'
  > SELECT ?x (COUNT(?off) AS ?cnt) {
  >   ?off product ?p . ?off price ?pr .
  >   FILTER(?pr > 10 && ?pr < 5)
  > } GROUP BY ?f
  > RQ
  $ rapida lint broken.rq
  broken.rq:1:8-9: error[unbound-var] variable ?x is used in the projection but never bound by the pattern
  broken.rq:1:8-9: error[ungrouped-projection] ?x is projected from an aggregated SELECT but is not a GROUP BY key
  broken.rq:2:16-17: info[unused-var] ?p is bound but never used: the triple only asserts the property's existence
  broken.rq:2:32-34: warning[filter-unsatisfiable] FILTER ((?pr > 10) && (?pr < 5)) is unsatisfiable: the bounds on ?pr describe an empty interval
  broken.rq:4:12-13: error[unbound-var] variable ?f is used in GROUP BY but never bound by the pattern
  broken.rq:error[analytical-form] query is outside the analytical fragment: projected variable ?x is not in GROUP BY
  [1]

A parse failure is itself a diagnostic, with the offending position:

  $ printf 'SELECT ?x WHERE {\n  ?s price }' > unparsable.rq
  $ rapida lint unparsable.rq
  unparsable.rq:2:12: error[parse-error] expected RDF term or variable (at })
  [1]

--json emits one report per input with counts and structured spans:

  $ rapida lint --json broken.rq | python3 -m json.tool | head -14
  {
      "reports": [
          {
              "file": "broken.rq",
              "errors": 4,
              "warnings": 1,
              "infos": 1,
              "diagnostics": [
                  {
                      "severity": "error",
                      "rule": "unbound-var",
                      "message": "variable ?x is used in the projection but never bound by the pattern",
                      "line": 1,
                      "col": 8,
  $ rapida lint --json clean.rq \
  >   | python3 -c 'import json,sys; d=json.load(sys.stdin); \
  > print(d["errors"], d["warnings"], d["infos"])'
  0 0 0

Catalog queries lint clean of errors and warnings; the existence-only
variables of the workload surface as info-severity findings:

  $ rapida lint --catalog-all > catalog.out; echo "exit=$?"
  exit=0
  $ grep -c "error\[" catalog.out
  0
  [1]
  $ grep -c "warning\[" catalog.out
  0
  [1]
  $ grep -c "info\[unused-var\]" catalog.out
  56

The examples directory is part of the lint gate and is fully clean:

  $ rapida lint ../../examples/queries/*.rq; echo "exit=$?"
  exit=0

Usage errors exit 2:

  $ rapida lint
  error: nothing to lint: pass FILEs, --catalog ID, or --catalog-all
  [2]
  $ rapida lint -c NOPE
  error: unknown catalog query NOPE
  [2]
  $ rapida lint no-such-file.rq
  error: cannot read no-such-file.rq: No such file or directory
  [2]

explain --lint appends the analyzer's findings to the plan explanation:

  $ rapida explain -c G1 --lint | tail -3
  
  static analysis:
    2:32-33: info[unused-var] ?l is bound but never used: the triple only asserts the property's existence
