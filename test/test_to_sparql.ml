(* SPARQL re-printer: printed text re-parses to the same AST (round trip)
   — on every catalog query, on grouping-set expansions, and on random
   queries from the property-test generator. Also covers the ORDER BY /
   LIMIT modifiers end to end across the engines. *)

module To_sparql = Rapida_sparql.To_sparql
module Parser = Rapida_sparql.Parser
module Ast = Rapida_sparql.Ast
module Analytical = Rapida_sparql.Analytical
module Catalog = Rapida_queries.Catalog
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Relops = Rapida_relational.Relops
module Table = Rapida_relational.Table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let roundtrip src =
  match Parser.parse src with
  | Error e -> Alcotest.failf "original does not parse: %s\n%s" e src
  | Ok q -> (
    let printed = To_sparql.query q in
    match Parser.parse printed with
    | Error e -> Alcotest.failf "printed does not parse: %s\n%s" e printed
    | Ok q' ->
      if q <> q' then
        Alcotest.failf "round trip changed the AST:\n%s\n--- printed:\n%s" src
          printed)

let test_catalog_roundtrip () =
  List.iter (fun entry -> roundtrip entry.Catalog.sparql) Catalog.all

let test_modifier_roundtrip () =
  List.iter roundtrip
    [
      "SELECT ?g (COUNT(?x) AS ?n) { ?g v ?x . } GROUP BY ?g ORDER BY \
       DESC(?n) LIMIT 10";
      "SELECT DISTINCT ?g { ?g v ?x . FILTER(?x > 3 && ?x < 10) }";
      {|SELECT ?s { ?s p "hello \"world\"" . }|};
      {|SELECT ?s { ?s p "5"^^<http://www.w3.org/2001/XMLSchema#integer> . }|};
      "SELECT (MIN(?x) AS ?lo) { ?s p ?x . FILTER regex(?s, \"abc\", \"i\") }";
    ]

let test_typed_literal_parses () =
  match
    Parser.parse
      {|SELECT ?s { ?s p "7"^^<http://www.w3.org/2001/XMLSchema#integer> . }|}
  with
  | Error e -> Alcotest.fail e
  | Ok q -> (
    match q.Ast.base_select.Ast.where with
    | [ Ast.Ptriple { tp_o = Ast.Nterm o; _ } ] ->
      check_bool "typed as int" true
        (Rapida_rdf.Term.equal o (Rapida_rdf.Term.int 7))
    | _ -> Alcotest.fail "expected one triple")

let test_analytical_reassembly () =
  (* Reassembling the normal form and re-normalizing is stable. *)
  List.iter
    (fun entry ->
      let q = Catalog.parse entry in
      let printed = To_sparql.analytical q in
      match Analytical.parse printed with
      | Error e ->
        Alcotest.failf "%s reassembly does not parse: %s\n%s" entry.Catalog.id
          e printed
      | Ok q' ->
        check_int
          (entry.Catalog.id ^ " same subquery count")
          (List.length q.Analytical.subqueries)
          (List.length q'.Analytical.subqueries))
    Catalog.all

let test_grouping_sets_printable () =
  let sq =
    List.hd
      (Analytical.parse_exn
         {|SELECT ?f (COUNT(?pr) AS ?cnt)
  { ?p a ProductType1 . ?p productFeature ?f .
    ?off product ?p . ?off price ?pr . }
  GROUP BY ?f|})
        .Analytical.subqueries
  in
  match Rapida_core.Grouping_sets.rollup sq ~dims:[ "f" ] with
  | Error e -> Alcotest.fail e
  | Ok q -> (
    let printed = To_sparql.analytical q in
    match Analytical.parse printed with
    | Error e -> Alcotest.failf "rollup not printable: %s\n%s" e printed
    | Ok _ -> ())

(* ORDER BY / LIMIT applied identically by every engine. *)
let test_order_limit_across_engines () =
  let graph = Rapida_datagen.Bsbm.(generate (config ~products:100 ())) in
  let input = Engine.input_of_graph graph in
  let src =
    "SELECT ?f (SUM(?pr) AS ?s) { ?p a ProductType1 . ?p productFeature ?f \
     . ?off product ?p . ?off price ?pr . } GROUP BY ?f ORDER BY DESC(?s) \
     LIMIT 3"
  in
  let expected =
    match Rapida_ref.Ref_engine.run_sparql graph src with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  check_int "limited" 3 (Table.cardinality expected);
  List.iter
    (fun kind ->
      match
        Engine.execute_sparql (Engine.prepare kind input)
          (Plan_util.context Plan_util.default_options) src
      with
      | Error e ->
        Alcotest.failf "%s: %s" (Engine.kind_name kind)
          (Engine.error_message e)
      | Ok { table; _ } ->
        check_bool
          (Engine.kind_name kind ^ " agrees under LIMIT")
          true
          (Relops.same_results expected table))
    Engine.all_kinds

let test_order_rejected_in_subquery () =
  match
    Analytical.parse
      {|SELECT ?g ?n { { SELECT ?g (COUNT(?x) AS ?n) { ?g v ?x . } GROUP BY ?g ORDER BY ?g } }|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "subquery ORDER BY must be rejected"

let suite =
  [
    Alcotest.test_case "catalog round trips" `Quick test_catalog_roundtrip;
    Alcotest.test_case "modifier round trips" `Quick test_modifier_roundtrip;
    Alcotest.test_case "typed literals" `Quick test_typed_literal_parses;
    Alcotest.test_case "analytical reassembly" `Quick test_analytical_reassembly;
    Alcotest.test_case "grouping sets printable" `Quick test_grouping_sets_printable;
    Alcotest.test_case "ORDER/LIMIT across engines" `Quick
      test_order_limit_across_engines;
    Alcotest.test_case "subquery ORDER rejected" `Quick
      test_order_rejected_in_subquery;
  ]
