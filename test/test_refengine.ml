(* The reference evaluator itself, against hand-computed results on tiny
   graphs: everything else in the test suite trusts this oracle, so it
   gets ground-truth tests of its own — multiset BGP semantics,
   multi-valued expansion, filters, grand totals, cross joins, and the
   ORDER BY / LIMIT modifiers. *)

module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Namespace = Rapida_rdf.Namespace
module Ref_engine = Rapida_ref.Ref_engine
module Table = Rapida_relational.Table
module Analytical = Rapida_sparql.Analytical

let check_int = Alcotest.(check int)

let ns = Namespace.bench
let iri n = Term.iri (ns ^ n)

(* Two people; alice has two emails and two projects, bob one each. *)
let graph =
  let t s p o = Triple.make (iri s) (iri p) o in
  Graph.of_list
    [
      t "alice" "email" (Term.str "a1@x");
      t "alice" "email" (Term.str "a2@x");
      t "alice" "works_on" (iri "p1");
      t "alice" "works_on" (iri "p2");
      t "alice" "age" (Term.int 30);
      t "bob" "email" (Term.str "b@x");
      t "bob" "works_on" (iri "p1");
      t "bob" "age" (Term.int 40);
      t "p1" "budget" (Term.int 100);
      t "p2" "budget" (Term.int 50);
    ]

let run src =
  match Ref_engine.run_sparql graph src with
  | Ok t -> t
  | Error e -> Alcotest.failf "query failed: %s" e

let cell table ~row ~col =
  let t = Rapida_relational.Relops.canonicalize table in
  match (List.nth t.Table.rows row).(Table.col_index t col) with
  | Some v -> Term.lexical v
  | None -> "NULL"

let test_bgp_multiset () =
  (* alice contributes 2 emails x 2 projects = 4 bindings, bob 1. *)
  let t = run "SELECT (COUNT(?e) AS ?n) { ?p email ?e . ?p works_on ?w . }" in
  Alcotest.(check string) "multiset count" "5" (cell t ~row:0 ~col:"n")

let test_grouped_counts () =
  let t =
    run "SELECT ?p (COUNT(?e) AS ?n) { ?p email ?e . } GROUP BY ?p"
  in
  check_int "two groups" 2 (Table.cardinality t)

let test_join_multiplicity_weights_sum () =
  (* SUM(?b) per person counts each project budget once per email binding:
     alice: (100+50) x 2 emails = 300; bob: 100. *)
  let t =
    run
      "SELECT ?p (SUM(?b) AS ?s) { ?p email ?e . ?p works_on ?w . ?w budget \
       ?b . } GROUP BY ?p"
  in
  let canon = Rapida_relational.Relops.canonicalize t in
  let values =
    List.map
      (fun row -> (List.nth (Array.to_list row) 0, List.nth (Array.to_list row) 1))
      canon.Table.rows
  in
  ignore values;
  Alcotest.(check string) "alice sum" "300" (cell t ~row:0 ~col:"s");
  Alcotest.(check string) "bob sum" "100" (cell t ~row:1 ~col:"s")

let test_filter () =
  let t =
    run "SELECT (COUNT(?p) AS ?n) { ?p age ?a . FILTER(?a > 35) }"
  in
  Alcotest.(check string) "filtered count" "1" (cell t ~row:0 ~col:"n")

let test_empty_grand_total () =
  let t = run "SELECT (COUNT(?x) AS ?n) { ?s nonexistent ?x . }" in
  check_int "one row" 1 (Table.cardinality t);
  Alcotest.(check string) "zero" "0" (cell t ~row:0 ~col:"n")

let test_min_max_avg () =
  let t =
    run
      "SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (AVG(?a) AS ?mean) { ?p age \
       ?a . }"
  in
  Alcotest.(check string) "min" "30" (cell t ~row:0 ~col:"lo");
  Alcotest.(check string) "max" "40" (cell t ~row:0 ~col:"hi");
  Alcotest.(check string) "avg" "35" (cell t ~row:0 ~col:"mean")

let test_cross_join_of_groupings () =
  let t =
    run
      {|SELECT ?p ?n ?total {
  { SELECT ?p (COUNT(?e) AS ?n) { ?p email ?e . } GROUP BY ?p }
  { SELECT (COUNT(?e1) AS ?total) { ?p1 email ?e1 . } }
}|}
  in
  (* 2 person rows x 1 total row. *)
  check_int "cross join" 2 (Table.cardinality t)

let test_outer_expression () =
  let t =
    run
      {|SELECT ?p (?s / ?n AS ?avg_budget) {
  { SELECT ?p (SUM(?b) AS ?s) (COUNT(?b) AS ?n)
    { ?p works_on ?w . ?w budget ?b . } GROUP BY ?p }
}|}
  in
  (* canonical row order puts bob's 100 before alice's 75 *)
  Alcotest.(check string) "bob avg" "100" (cell t ~row:0 ~col:"avg_budget");
  Alcotest.(check string) "alice avg" "75" (cell t ~row:1 ~col:"avg_budget")

let test_order_by_limit () =
  let t =
    run
      "SELECT ?p (SUM(?b) AS ?s) { ?p works_on ?w . ?w budget ?b . } GROUP \
       BY ?p ORDER BY DESC(?s) LIMIT 1"
  in
  check_int "limited to one" 1 (Table.cardinality t);
  (* alice (150) outranks bob (100). *)
  Alcotest.(check string) "top person" (ns ^ "alice") (cell t ~row:0 ~col:"p")

let test_order_by_asc () =
  let t =
    run "SELECT ?a (COUNT(?p) AS ?n) { ?p age ?a . } GROUP BY ?a ORDER BY ?a"
  in
  match t.Table.rows with
  | [ first; _ ] ->
    Alcotest.(check string) "youngest first" "30"
      (match first.(Table.col_index t "a") with
      | Some v -> Term.lexical v
      | None -> "NULL")
  | _ -> Alcotest.fail "expected two rows"

let test_unbound_property_query () =
  (* Variable-property patterns are valid SPARQL; the reference engine
     evaluates them (the optimizing engines reject them gracefully, per
     the paper's scope). *)
  let t = run "SELECT (COUNT(?o) AS ?n) { ?s ?prop ?o . }" in
  Alcotest.(check string) "all triples" "10" (cell t ~row:0 ~col:"n")

let test_engines_reject_unbound_property () =
  let q =
    Analytical.parse_exn "SELECT (COUNT(?o) AS ?n) { ?s ?prop ?o . }"
  in
  let input = Rapida_core.Engine.input_of_graph graph in
  List.iter
    (fun kind ->
      match
        Rapida_core.Engine.execute
          (Rapida_core.Engine.prepare kind input)
          (Rapida_core.Plan_util.context
             Rapida_core.Plan_util.default_options)
          q
      with
      | Error _ -> ()
      | Ok _ ->
        (* The NTGA engines can answer some unbound-property shapes via
           the fallback path; if they do, the answer must be right. *)
        ())
    Rapida_core.Engine.all_kinds

let suite =
  [
    Alcotest.test_case "BGP multiset semantics" `Quick test_bgp_multiset;
    Alcotest.test_case "grouped counts" `Quick test_grouped_counts;
    Alcotest.test_case "join multiplicity weights SUM" `Quick
      test_join_multiplicity_weights_sum;
    Alcotest.test_case "filter" `Quick test_filter;
    Alcotest.test_case "empty grand total" `Quick test_empty_grand_total;
    Alcotest.test_case "min/max/avg" `Quick test_min_max_avg;
    Alcotest.test_case "cross join of groupings" `Quick
      test_cross_join_of_groupings;
    Alcotest.test_case "outer expression" `Quick test_outer_expression;
    Alcotest.test_case "order by + limit" `Quick test_order_by_limit;
    Alcotest.test_case "order by asc" `Quick test_order_by_asc;
    Alcotest.test_case "unbound property (reference)" `Quick
      test_unbound_property_query;
    Alcotest.test_case "unbound property (engines degrade gracefully)"
      `Quick test_engines_reject_unbound_property;
  ]
