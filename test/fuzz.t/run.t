Randomized testing from the command line: `rapida fuzz` generates
seeded analytical queries over the built-in BSBM dataset and checks
every case against four oracle families — differential (all engines
byte-agree with the reference evaluator), metamorphic (answers are
invariant under knob configurations and semantics-preserving
rewrites), analyzer soundness (static cardinality intervals bracket
the measured cardinality), and total robustness (the front end never
raises on arbitrary bytes). Exit codes: 0 clean, 1 violation, 2 usage.

  $ alias rapida='../../bin/rapida_cli.exe'

The committed corpus replays first — yesterday's reproducers are
today's regression suite — then the budgeted generation runs. The
report is deterministic for a fixed seed:

  $ rapida fuzz --seed 7 --budget 40 --corpus ../fuzz_corpus
  fuzz: seed 7, 40 cases (6 replayed), 40 accepted, 0 rejected
  shapes: gsets=9 having=8 join=2 order=7 star=14
  oracle differential checked    46  skipped    0  violations 0
  oracle metamorphic  checked    46  skipped    0  violations 0
  oracle analyzer     checked    46  skipped    0  violations 0
  oracle robustness   checked    46  skipped    0  violations 0
  
  all oracles clean

A subset of oracles can be selected, and the JSON report carries the
shape coverage for the benchmark artifact:

  $ rapida fuzz --seed 7 --budget 10 --oracles differential,robustness
  fuzz: seed 7, 10 cases (0 replayed), 10 accepted, 0 rejected
  shapes: gsets=3 having=2 order=1 star=4
  oracle differential checked    10  skipped    0  violations 0
  oracle robustness   checked    10  skipped    0  violations 0
  
  all oracles clean

Unknown oracle names are a usage error:

  $ rapida fuzz --oracles nonesuch
  error: unknown oracle nonesuch
  [2]
