(* The fuzzing harness: determinism of runs, a clean soak across all
   four oracle families, the broken-engine self-test (an engine that
   drops a row must be caught and shrunk to a minimal reproducer), the
   shrinker itself, and corpus persistence. *)

module Fuzz = Rapida_fuzz.Fuzz
module Oracle = Rapida_fuzz.Oracle
module Qgen = Rapida_fuzz.Qgen
module Shrink = Rapida_fuzz.Shrink
module Corpus = Rapida_fuzz.Corpus
module Engine = Rapida_core.Engine
module Analytical = Rapida_sparql.Analytical
module To_sparql = Rapida_sparql.To_sparql
module Parser = Rapida_sparql.Parser

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The deterministic face of a report: everything except wall-clock
   timings must be identical across same-seed runs. *)
let fingerprint (r : Fuzz.report) =
  Fmt.str "%a" Fuzz.pp r

let small_cfg = { Fuzz.default_config with budget = 60; products = 20 }

let test_determinism () =
  let a = Fuzz.run small_cfg in
  let b = Fuzz.run small_cfg in
  Alcotest.(check string) "same seed, same report" (fingerprint a) (fingerprint b);
  let c = Fuzz.run { small_cfg with seed = small_cfg.seed + 1 } in
  check_bool "different seed, different cases" true
    (fingerprint a <> fingerprint c)

let test_soak () =
  let r = Fuzz.run { Fuzz.default_config with budget = 400 } in
  check_int "no violations" 0 (Fuzz.violations r);
  check_int "all cases generated" 400 r.Fuzz.r_cases;
  (* Every oracle family judged a healthy share of the cases. *)
  List.iter
    (fun (o : Fuzz.oracle_stats) ->
      check_bool
        (Oracle.name_to_string o.Fuzz.o_name ^ " exercised")
        true
        (o.Fuzz.o_checked > 300))
    r.Fuzz.r_oracles;
  (* Shape coverage: the generator reaches every major query shape. *)
  let shapes = List.map fst r.Fuzz.r_shapes in
  List.iter
    (fun sh -> check_bool ("shape " ^ sh) true (List.mem sh shapes))
    [ "star"; "join"; "having"; "gsets"; "order" ]

let test_broken_engine_caught () =
  let r =
    Fuzz.run
      {
        small_cfg with
        break_table = Some (Fuzz.break_drop_row Engine.Rapid_plus);
      }
  in
  check_bool "violations found" true (Fuzz.violations r > 0);
  match r.Fuzz.r_failures with
  | [] -> Alcotest.fail "no failure recorded"
  | f :: _ ->
    check_bool "differential oracle caught it" true
      (f.Fuzz.f_oracle = Oracle.Differential
      || f.Fuzz.f_oracle = Oracle.Metamorphic);
    (* The reproducer is a genuine query: it re-parses and stays inside
       the analytical fragment. *)
    (match Parser.parse f.Fuzz.f_shrunk with
    | Error msg -> Alcotest.fail ("shrunk reproducer does not parse: " ^ msg)
    | Ok q ->
      check_bool "shrunk reproducer is analytical" true
        (Result.is_ok (Analytical.of_query q)))

let test_shrinker_minimises () =
  (* Generate a deliberately fat query, then shrink it under a predicate
     that only needs one of its subqueries: the shrinker must strictly
     reduce its rendered size and keep the predicate true. *)
  let r =
    Fuzz.run
      {
        small_cfg with
        budget = 120;
        break_table = Some (Fuzz.break_drop_row Engine.Hive_naive);
      }
  in
  match r.Fuzz.r_failures with
  | [] -> Alcotest.fail "expected failures to shrink"
  | fs ->
    List.iter
      (fun (f : Fuzz.failure) ->
        check_bool "shrunk no larger than original" true
          (String.length f.Fuzz.f_shrunk <= String.length f.Fuzz.f_query);
        if f.Fuzz.f_shrink_steps > 0 then
          check_bool "steps imply strictly smaller" true
            (String.length f.Fuzz.f_shrunk < String.length f.Fuzz.f_query))
      fs

let test_shrink_direct () =
  (* A direct unit test of the shrinking loop: the predicate "mentions
     ?price" keeps only the parts of the query that bind ?price. *)
  let text =
    "SELECT ?s (SUM(?price) AS ?total) (COUNT(*) AS ?n) WHERE { ?s \
     <http://rapida.dev/bench/price> ?price . ?s \
     <http://rapida.dev/bench/label> ?l . FILTER(?price > 10) . \
     FILTER(?l != \"x\") } GROUP BY ?s HAVING(?total > 0) ORDER BY ?s \
     LIMIT 5"
  in
  let q =
    match Parser.parse text with
    | Ok q -> q
    | Error msg -> Alcotest.fail ("fixture does not parse: " ^ msg)
  in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (* The property being preserved: the query still parses as a valid
     analytical query and still mentions ?price. *)
  let still_fails q' =
    let s = To_sparql.query q' in
    let analytical =
      match Parser.parse s with
      | Ok q'' -> Result.is_ok (Analytical.of_query q'')
      | Error _ -> false
    in
    analytical && contains "price" s
  in
  let q', steps = Shrink.shrink ~still_fails ~max_steps:50 q in
  let s' = To_sparql.query q' in
  check_bool "made progress" true (steps > 0);
  check_bool "smaller" true (String.length s' < String.length text);
  check_bool "still satisfies predicate" true (still_fails q')

let test_corpus_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rapida-fuzz-corpus-%d" (Unix.getpid ()))
  in
  let text = "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s" in
  let path = Corpus.save ~dir ~shape:"star" ~repro:"rapida fuzz --seed 1" text in
  check_bool "saved under dir" true (Filename.dirname path = dir);
  let entries = Corpus.load ~dir in
  check_int "one entry" 1 (List.length entries);
  let _, contents = List.hd entries in
  (* The stored file parses as-is: the header rides in # comments. *)
  (match Parser.parse contents with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("corpus entry does not parse: " ^ msg));
  (* Saving the same text twice is idempotent (same content hash). *)
  let path2 = Corpus.save ~dir ~shape:"star" ~repro:"rapida fuzz --seed 1" text in
  Alcotest.(check string) "stable file name" path path2;
  check_int "still one entry" 1 (List.length (Corpus.load ~dir));
  List.iter (fun (f, _) -> Sys.remove (Filename.concat dir f)) entries;
  Unix.rmdir dir

let test_knob_labels_distinct () =
  (* Knob configurations drawn for a run are labelled distinctly enough
     to read a metamorphic violation report. *)
  let rng = Rapida_datagen.Prng.create ~seed:7 in
  let knobs = Rapida_fuzz.Knobs.generate rng ~n:6 in
  check_int "requested count" 6 (List.length knobs);
  List.iter
    (fun (k : Rapida_fuzz.Knobs.t) ->
      check_bool "label non-empty" true (String.length k.Rapida_fuzz.Knobs.k_label > 0))
    knobs

let test_time_budget () =
  (* A zero time budget stops generation immediately but still replays
     nothing and reports cleanly. *)
  let r = Fuzz.run { small_cfg with time_budget_s = Some 0.0 } in
  check_int "no cases under exhausted budget" 0 r.Fuzz.r_cases;
  check_int "no violations" 0 (Fuzz.violations r)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "soak: all oracles clean" `Slow test_soak;
    Alcotest.test_case "broken engine caught" `Quick test_broken_engine_caught;
    Alcotest.test_case "shrinker minimises failures" `Quick test_shrinker_minimises;
    Alcotest.test_case "shrinker unit" `Quick test_shrink_direct;
    Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "knob labels" `Quick test_knob_labels_distinct;
    Alcotest.test_case "time budget" `Quick test_time_budget;
  ]
