(* Checkpointed workflow recovery and bad-record skip mode: spec
   parsing, checkpoint pricing, degrade-but-complete recovery, the
   engine-level invariant that results are byte-identical under every
   policy/fault configuration, and Hadoop-style poison-record skipping.

   The robustness layers shape simulated time and counters only — the
   real in-memory computation runs once and every test here pins that
   down. *)

module Cluster = Rapida_mapred.Cluster
module Exec_ctx = Rapida_mapred.Exec_ctx
module Fi = Rapida_mapred.Fault_injector
module Ck = Rapida_mapred.Checkpoint
module Job = Rapida_mapred.Job
module Stats = Rapida_mapred.Stats
module Workflow = Rapida_mapred.Workflow
module Metrics = Rapida_mapred.Metrics
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Relops = Rapida_relational.Relops

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run_engine kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ctx ?cluster ?faults ?checkpoint () =
  let cluster = Option.value ~default:Cluster.default cluster in
  let faults = Option.map Fi.create faults in
  Exec_ctx.create ~cluster ?faults ?checkpoint ()

let wordcount : (string, string, int, string * int) Job.spec =
  {
    name = "wordcount";
    map = (fun line -> List.map (fun w -> (w, 1)) (String.split_on_char ' ' line));
    combine = None;
    reduce = (fun k counts -> [ (k, List.fold_left ( + ) 0 counts) ]);
    input_size = String.length;
    key_size = String.length;
    value_size = (fun _ -> 4);
    output_size = (fun (k, _) -> String.length k + 4);
  }

let lines = List.init 60 (fun i -> Printf.sprintf "alpha beta gamma %d" i)

(* --- spec parsing ------------------------------------------------------- *)

let test_parse_spec () =
  (match Ck.parse_spec "every=2" with
  | Ok cfg ->
    check_bool "every=2" true (cfg.Ck.policy = Ck.Every_k 2);
    check_int "default replication" 3 cfg.Ck.replication
  | Error msg -> Alcotest.fail msg);
  (match Ck.parse_spec "adaptive=64m,replication=2" with
  | Ok cfg ->
    check_bool "adaptive bytes" true
      (cfg.Ck.policy = Ck.Adaptive (64 * 1024 * 1024));
    check_int "replication" 2 cfg.Ck.replication
  | Error msg -> Alcotest.fail msg);
  (match Ck.parse_spec "never" with
  | Ok cfg -> check_bool "never" false (Ck.active cfg)
  | Error msg -> Alcotest.fail msg);
  match Ck.parse_spec "every=3,adaptive=1k" with
  | Ok cfg ->
    (* later policy keys override earlier ones *)
    check_bool "last policy wins" true (cfg.Ck.policy = Ck.Adaptive 1024)
  | Error msg -> Alcotest.fail msg

let test_parse_spec_errors () =
  let expect_error spec =
    match Ck.parse_spec spec with
    | Ok _ -> Alcotest.failf "%S should not parse" spec
    | Error msg ->
      check_bool "one-line diagnostic" true
        (msg <> "" && not (String.contains msg '\n'))
  in
  List.iter expect_error
    [
      "every=0";
      "every=x";
      "adaptive=0";
      "adaptive=-4k";
      "replication=0";
      "bogus=1";
      "every";
      "always";
    ]

(* --- manager pricing ---------------------------------------------------- *)

let synthetic_job ?(output_bytes = 2 * 1024 * 1024) ?(est_time_s = 10.0) name =
  {
    Stats.name;
    kind = Stats.Map_reduce;
    input_records = 0;
    input_bytes = 0;
    shuffle_records = 0;
    shuffle_bytes = 0;
    output_records = 0;
    output_bytes;
    map_tasks = 8;
    reduce_tasks = 4;
    est_time_s;
    breakdown = Stats.breakdown_zero;
    combine_input_records = 0;
    combine_output_records = 0;
    reduce_groups = 0;
    attempts_failed = 0;
    speculative_launched = 0;
    attempts_killed = 0;
    spilled_bytes = 0;
    spill_passes = 0;
    oom_kills = 0;
    skipped_records = 0;
  }

let test_manager_never () =
  let m = Ck.manager Ck.default in
  for i = 1 to 5 do
    check_bool "never checkpoints" true
      (Ck.note_success m ~cluster:Cluster.default
         (synthetic_job (Printf.sprintf "j%d" i))
      = None)
  done;
  check_bool "nothing pending under Never" true (Ck.replay m = (0, 0.0))

let test_manager_every_k () =
  let m = Ck.manager { Ck.policy = Ck.Every_k 2; replication = 3 } in
  let j1 = synthetic_job ~est_time_s:10.0 "j1" in
  let j2 = synthetic_job ~est_time_s:20.0 "j2" in
  check_bool "first job rides" true
    (Ck.note_success m ~cluster:Cluster.default j1 = None);
  check_bool "uncheckpointed suffix accumulates" true
    (Ck.replay m = (1, 10.0));
  (match Ck.note_success m ~cluster:Cluster.default j2 with
  | None -> Alcotest.fail "second job should checkpoint"
  | Some d ->
    check_int "payload is the checkpointed job's output" j2.Stats.output_bytes
      d.Ck.ck_bytes;
    (* replication copies at disk bandwidth, spread over the job's
       reduce tasks (the writers) *)
    let expected =
      3.0
      *. (float_of_int j2.Stats.output_bytes /. (1024.0 *. 1024.0))
      /. (Cluster.default.Cluster.disk_mb_per_s *. 4.0)
    in
    check_bool "cost formula exact" true (d.Ck.ck_cost_s = expected));
  check_bool "checkpoint clears the pending suffix" true
    (Ck.replay m = (0, 0.0));
  check_bool "next job pends again" true
    (Ck.note_success m ~cluster:Cluster.default j1 = None);
  check_bool "replay does not reset" true
    (Ck.replay m = (1, 10.0) && Ck.replay m = (1, 10.0))

let test_manager_adaptive () =
  let budget = 3 * 1024 * 1024 in
  let m = Ck.manager { Ck.policy = Ck.Adaptive budget; replication = 1 } in
  let j = synthetic_job ~output_bytes:(2 * 1024 * 1024) "j" in
  check_bool "2MB under a 3MB budget rides" true
    (Ck.note_success m ~cluster:Cluster.default j = None);
  check_bool "4MB accumulated crosses the budget" true
    (Ck.note_success m ~cluster:Cluster.default j <> None);
  check_bool "reset after checkpoint" true (Ck.replay m = (0, 0.0))

(* --- workflow pricing and recovery -------------------------------------- *)

(* Checkpointing a fault-free workflow adds exactly the checkpoint cost
   and nothing else: est = never_est +. checkpoint_s, bitwise. *)
let test_checkpoint_pricing_end_to_end () =
  let run checkpoint =
    let wf = Workflow.create (ctx ?checkpoint ()) in
    let out = Workflow.run_job wf wordcount lines in
    (out, Workflow.stats wf)
  in
  let out_n, s_n = run None in
  let out_c, s_c =
    run (Some { Ck.policy = Ck.Every_k 1; replication = 3 })
  in
  Alcotest.(check (list (pair string int)))
    "checkpointing never changes results"
    (List.sort compare out_n) (List.sort compare out_c);
  check_int "one checkpoint written" 1 (Stats.checkpoints_written s_c);
  check_bool "payload recorded" true (Stats.checkpoint_bytes s_c > 0);
  check_bool "checkpoint costs time" true (Stats.checkpoint_s s_c > 0.0);
  check_bool "est = never est + checkpoint_s, bitwise" true
    (Stats.est_time_s s_c = Stats.est_time_s s_n +. Stats.checkpoint_s s_c);
  check_bool "disabled checkpointing is bit-identical" true
    (Stats.est_time_s (snd (run (Some Ck.default))) = Stats.est_time_s s_n)

(* Retries exhausted under an active policy: the workflow recovers and
   completes instead of aborting, replaying the uncheckpointed suffix. *)
let test_workflow_recovers_and_completes () =
  let cfg =
    { Fi.default with Fi.seed = 1; task_fail_p = 0.5; max_attempts = 2 }
  in
  let c =
    ctx ~faults:cfg
      ~checkpoint:{ Ck.policy = Ck.Adaptive max_int; replication = 3 }
      ()
  in
  let wf = Workflow.create c in
  let wc_a = { wordcount with Job.name = "first" } in
  let wc_b = { wordcount with Job.name = "second" } in
  let out_a = Workflow.run_job wf wc_a lines in
  let out_b = Workflow.run_job wf wc_b lines in
  let healthy = fst (Job.run (ctx ()) wordcount lines) in
  Alcotest.(check (list (pair string int)))
    "recovered workflow returns the right first answer"
    (List.sort compare healthy) (List.sort compare out_a);
  Alcotest.(check (list (pair string int)))
    "recovered workflow returns the right second answer"
    (List.sort compare healthy) (List.sort compare out_b);
  let stats = Workflow.stats wf in
  let recoveries = Metrics.get (Exec_ctx.metrics c) "mr.recoveries" in
  check_bool "at these rates the workflow must have recovered" true
    (recoveries > 0);
  check_bool "second job's recoveries replay the first job" true
    (Stats.replayed_s stats > 0.0 && Stats.recovered_jobs stats > 0);
  check_bool "replay is charged into the total" true
    (Stats.est_time_s stats
    >= Stats.replayed_s stats +. Stats.lost_s stats)

(* The same configuration without a policy aborts — recovery is what
   turned the abort into completion. *)
let test_never_policy_still_aborts () =
  let cfg =
    { Fi.default with Fi.seed = 1; task_fail_p = 0.9; max_attempts = 1 }
  in
  let wf = Workflow.create (ctx ~faults:cfg ()) in
  match Workflow.run_job wf wordcount lines with
  | _ -> Alcotest.fail "expected Aborted"
  | exception Workflow.Aborted a ->
    check_bool "abort carries the failure" true
      (a.Workflow.a_failure.Job.f_job = "wordcount")

(* 20 fault seeds x 4 engines x active policies on a seeded BSBM
   workload: every run completes (no aborts with recovery on), results
   are byte-identical to the fault-free run, and a checkpoint-rich
   policy never replays more than the whole-plan-resubmission reference
   (strictly less whenever the reference replays anything). *)
let test_engines_identical_under_recovery () =
  let input =
    Engine.input_of_graph
      Rapida_datagen.Bsbm.(generate (config ~seed:11 ~products:30 ()))
  in
  let entry = Catalog.find_exn "MG1" in
  let q = Catalog.parse entry in
  let run kind seed policy =
    let cfg =
      { Fi.default with Fi.seed; task_fail_p = 0.3; max_attempts = 2 }
    in
    let ctx =
      Plan_util.context
        (Plan_util.make ~faults:cfg
           ~checkpoint:{ Ck.default with Ck.policy } ())
    in
    run_engine kind ctx input q
  in
  let baselines =
    List.map
      (fun kind ->
        match
          run_engine kind (Plan_util.context (Plan_util.make ())) input q
        with
        | Ok out -> (kind, out.Engine.table)
        | Error msg -> Alcotest.failf "fault-free %s failed: %s"
                         (Engine.kind_name kind) msg)
      Engine.all_kinds
  in
  let nonvacuous = ref 0 in
  for seed = 1 to 20 do
    List.iter
      (fun (kind, base_table) ->
        let whole =
          match run kind seed (Ck.Adaptive max_int) with
          | Error msg ->
            Alcotest.failf "seed %d %s whole-plan: aborted despite recovery: %s"
              seed (Engine.kind_name kind) msg
          | Ok out ->
            if not (Relops.same_results base_table out.Engine.table) then
              Alcotest.failf "seed %d %s whole-plan: result diverged" seed
                (Engine.kind_name kind);
            Stats.replayed_s out.Engine.stats
        in
        match run kind seed (Ck.Every_k 1) with
        | Error msg ->
          Alcotest.failf "seed %d %s every-1: aborted despite recovery: %s"
            seed (Engine.kind_name kind) msg
        | Ok out ->
          if not (Relops.same_results base_table out.Engine.table) then
            Alcotest.failf "seed %d %s every-1: result diverged" seed
              (Engine.kind_name kind);
          let replayed = Stats.replayed_s out.Engine.stats in
          if whole > 0.0 then begin
            incr nonvacuous;
            if not (replayed < whole) then
              Alcotest.failf
                "seed %d %s: every-1 replayed %.3fs, whole-plan %.3fs" seed
                (Engine.kind_name kind) replayed whole
          end
          else if not (replayed <= whole) then
            Alcotest.failf "seed %d %s: replay without recoveries" seed
              (Engine.kind_name kind))
      baselines
  done;
  check_bool "property exercised actual whole-plan replays" true
    (!nonvacuous > 0)

(* --- bad-record skip mode ----------------------------------------------- *)

let test_poison_deterministic () =
  let t = Fi.create { Fi.default with Fi.seed = 5; poison_p = 0.05 } in
  check_bool "poison decisions are stable" true
    (List.init 200 (fun r -> Fi.poisoned t ~job:"j" ~record:r)
    = List.init 200 (fun r -> Fi.poisoned t ~job:"j" ~record:r));
  check_bool "some record is poisoned at p=0.05 over 200" true
    (List.exists
       (fun r -> Fi.poisoned t ~job:"j" ~record:r)
       (List.init 200 Fun.id));
  check_bool "different jobs poison different records" true
    (List.init 200 (fun r -> Fi.poisoned t ~job:"j" ~record:r)
    <> List.init 200 (fun r -> Fi.poisoned t ~job:"k" ~record:r))

(* Find a seed that poisons at least one of our 60 input records, so the
   skip-mode tests below are never vacuous. *)
let poison_seed =
  lazy
    (let poisons seed =
       let t = Fi.create { Fi.default with Fi.seed; poison_p = 0.05 } in
       List.exists
         (fun r -> Fi.poisoned t ~job:"wordcount" ~record:r)
         (List.init (List.length lines) Fun.id)
     in
     let rec find seed =
       if seed > 100 then Alcotest.fail "no poisoning seed in 1..100"
       else if poisons seed then seed
       else find (seed + 1)
     in
     find 1)

let test_skip_within_tolerance () =
  let seed = Lazy.force poison_seed in
  let cfg =
    { Fi.default with Fi.seed = seed; poison_p = 0.05; skip_max_records = 10 }
  in
  let out_h, s_h = Job.run (ctx ()) wordcount lines in
  let c = ctx ~faults:cfg () in
  let out_p, s_p = Job.run c wordcount lines in
  Alcotest.(check (list (pair string int)))
    "skip mode never changes results"
    (List.sort compare out_h) (List.sort compare out_p);
  check_bool "poison records were skipped" true (s_p.Stats.skipped_records > 0);
  check_bool "skipping costs simulated time" true
    (s_p.Stats.est_time_s > s_h.Stats.est_time_s);
  check_int "counter surfaced" s_p.Stats.skipped_records
    (Metrics.get (Exec_ctx.metrics c) "mr.skipped_records")

let test_poison_beyond_tolerance_fails () =
  let seed = Lazy.force poison_seed in
  let cfg = { Fi.default with Fi.seed = seed; poison_p = 0.05 } in
  (* skip_max_records = 0 (the default): skip mode off, any poison is
     fatal, and the failure is deterministic — retries never help. *)
  match Job.run (ctx ~faults:cfg ()) wordcount lines with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job.Job_failed f ->
    check_bool "typed reason" true (contains_sub f.Job.f_reason "skip");
    check_bool "deterministic failure" true f.Job.f_deterministic

let test_poison_aborts_despite_checkpointing () =
  let seed = Lazy.force poison_seed in
  let cfg = { Fi.default with Fi.seed = seed; poison_p = 0.05 } in
  let wf =
    Workflow.create
      (ctx ~faults:cfg
         ~checkpoint:{ Ck.policy = Ck.Every_k 1; replication = 3 }
         ())
  in
  match Workflow.run_job wf wordcount lines with
  | _ -> Alcotest.fail "expected Aborted"
  | exception Workflow.Aborted a ->
    check_bool "deterministic failures abort even with recovery on" true
      a.Workflow.a_failure.Job.f_deterministic

let suite =
  [
    Alcotest.test_case "parse spec" `Quick test_parse_spec;
    Alcotest.test_case "parse spec errors" `Quick test_parse_spec_errors;
    Alcotest.test_case "manager: never" `Quick test_manager_never;
    Alcotest.test_case "manager: every-k" `Quick test_manager_every_k;
    Alcotest.test_case "manager: adaptive" `Quick test_manager_adaptive;
    Alcotest.test_case "checkpoint pricing end to end" `Quick
      test_checkpoint_pricing_end_to_end;
    Alcotest.test_case "workflow recovers and completes" `Quick
      test_workflow_recovers_and_completes;
    Alcotest.test_case "never policy still aborts" `Quick
      test_never_policy_still_aborts;
    Alcotest.test_case "engines identical under recovery" `Slow
      test_engines_identical_under_recovery;
    Alcotest.test_case "poison decisions deterministic" `Quick
      test_poison_deterministic;
    Alcotest.test_case "skip within tolerance" `Quick
      test_skip_within_tolerance;
    Alcotest.test_case "poison beyond tolerance fails" `Quick
      test_poison_beyond_tolerance_fails;
    Alcotest.test_case "poison aborts despite checkpointing" `Quick
      test_poison_aborts_despite_checkpointing;
  ]
