(* GROUPING SETS / ROLLUP / CUBE expansion: structural properties and
   end-to-end agreement of all engines with the reference on the expanded
   queries — including the key payoff that RAPIDAnalytics computes any
   number of grouping sets over one pattern in a constant number of MR
   cycles. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Grouping_sets = Rapida_core.Grouping_sets
module Analytical = Rapida_sparql.Analytical
module Relops = Rapida_relational.Relops
module Stats = Rapida_mapred.Stats
module Graph = Rapida_rdf.Graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base_subquery =
  List.hd
    (Analytical.parse_exn
       {|SELECT ?f ?c (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum)
  { ?p a ProductType1 . ?p productFeature ?f .
    ?off product ?p . ?off price ?pr . ?off vendor ?v .
    ?v country ?c . }
  GROUP BY ?f ?c|})
      .Analytical.subqueries

let graph = lazy Rapida_datagen.Bsbm.(generate (config ~products:120 ()))

let test_expand_structure () =
  match Grouping_sets.expand base_subquery ~sets:[ [ "f"; "c" ]; [ "c" ]; [] ] with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_int "three subqueries" 3 (List.length q.Analytical.subqueries);
    let sq1 = List.nth q.Analytical.subqueries 1 in
    Alcotest.(check (list string)) "second set groups on c" [ "c" ]
      sq1.Analytical.group_by;
    (* Aggregate outputs are disambiguated per set. *)
    Alcotest.(check (list string)) "renamed outputs" [ "cnt_1"; "sum_1" ]
      (List.map
         (fun (a : Analytical.aggregate) -> a.Analytical.out)
         sq1.Analytical.aggregates);
    (* Non-grouping variables are renamed apart; grouping variables are
       shared for the outer join. *)
    let sq0 = List.nth q.Analytical.subqueries 0 in
    let vars sq =
      List.concat_map Rapida_sparql.Ast.pattern_vars sq.Analytical.bgp
      |> List.sort_uniq String.compare
    in
    check_bool "f shared" true (List.mem "f" (vars sq0) && List.mem "f" (vars sq1));
    check_bool "pr renamed apart" true
      (not (List.exists (fun v -> List.mem v (vars sq1)) [ "pr" ] && List.mem "pr" (vars sq0))
       || not (List.mem "pr" (vars sq1)))

let test_expand_errors () =
  (match Grouping_sets.expand base_subquery ~sets:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty sets must fail");
  match Grouping_sets.expand base_subquery ~sets:[ [ "nope" ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound grouping variable must fail"

let test_rollup_sets () =
  match Grouping_sets.rollup base_subquery ~dims:[ "f"; "c" ] with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_int "three levels" 3 (List.length q.Analytical.subqueries);
    Alcotest.(check (list (list string)))
      "prefix sets"
      [ [ "f"; "c" ]; [ "f" ]; [] ]
      (List.map (fun sq -> sq.Analytical.group_by) q.Analytical.subqueries)

let test_cube_sets () =
  match Grouping_sets.cube base_subquery ~dims:[ "f"; "c" ] with
  | Error e -> Alcotest.fail e
  | Ok q ->
    check_int "four subsets" 4 (List.length q.Analytical.subqueries)

(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let engines_agree q =
  let g = Lazy.force graph in
  let expected = Rapida_ref.Ref_engine.run g q in
  let input = Engine.input_of_graph g in
  List.iter
    (fun kind ->
      match run kind (Plan_util.context Plan_util.default_options) input q with
      | Error msg -> Alcotest.failf "%s: %s" (Engine.kind_name kind) msg
      | Ok { table; _ } ->
        check_bool (Engine.kind_name kind ^ " agrees") true
          (Relops.same_results expected table))
    Engine.all_kinds

let test_rollup_agreement () =
  match Grouping_sets.rollup base_subquery ~dims:[ "f"; "c" ] with
  | Error e -> Alcotest.fail e
  | Ok q -> engines_agree q

let test_cube_agreement () =
  match Grouping_sets.cube base_subquery ~dims:[ "f"; "c" ] with
  | Error e -> Alcotest.fail e
  | Ok q -> engines_agree q

(* The payoff: RAPIDAnalytics computes a whole rollup in the same number
   of cycles as a single grouping — composite join cycles + one parallel
   Agg-Join + the final join — while RAPID+ pays per grouping set. *)
let test_constant_cycles () =
  match Grouping_sets.rollup base_subquery ~dims:[ "f"; "c" ] with
  | Error e -> Alcotest.fail e
  | Ok q ->
    let input = Engine.input_of_graph (Lazy.force graph) in
    let cycles kind =
      match run kind (Plan_util.context Plan_util.default_options) input q with
      | Ok { stats; _ } -> Stats.cycles stats
      | Error msg -> Alcotest.failf "%s: %s" (Engine.kind_name kind) msg
    in
    check_int "RA: 2 joins + 1 agg + 2 final joins" 5
      (cycles Engine.Rapid_analytics);
    check_int "RAPID+: 3 per set + 2 final joins" 11 (cycles Engine.Rapid_plus);
    check_bool "prediction holds" true
      (Rapida_core.Plan_summary.predict Engine.Rapid_analytics q = 5)

let suite =
  [
    Alcotest.test_case "expand structure" `Quick test_expand_structure;
    Alcotest.test_case "expand errors" `Quick test_expand_errors;
    Alcotest.test_case "rollup sets" `Quick test_rollup_sets;
    Alcotest.test_case "cube sets" `Quick test_cube_sets;
    Alcotest.test_case "rollup agreement" `Quick test_rollup_agreement;
    Alcotest.test_case "cube agreement" `Quick test_cube_agreement;
    Alcotest.test_case "rollup in constant cycles" `Quick test_constant_cycles;
  ]

(* Randomized: any set list over the bound dimensions agrees with the
   reference across all engines. *)
let prop_random_sets =
  let gen_sets =
    QCheck2.Gen.(
      list_size (1 -- 4)
        (oneofl [ [ "f" ]; [ "c" ]; [ "f"; "c" ]; [] ]))
  in
  QCheck2.Test.make ~count:25 ~name:"random grouping sets agree"
    ~print:(fun sets ->
      String.concat "; "
        (List.map (fun s -> "{" ^ String.concat "," s ^ "}") sets))
    gen_sets
    (fun sets ->
      match Grouping_sets.expand base_subquery ~sets with
      | Error _ -> false
      | Ok q ->
        let g = Lazy.force graph in
        let expected = Rapida_ref.Ref_engine.run g q in
        let input = Engine.input_of_graph g in
        List.for_all
          (fun kind ->
            match run kind (Plan_util.context Plan_util.default_options) input q with
            | Error msg ->
              QCheck2.Test.fail_reportf "%s: %s" (Engine.kind_name kind) msg
            | Ok { table; _ } -> Relops.same_results expected table)
          Engine.all_kinds)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_random_sets ]
