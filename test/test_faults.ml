(* Fault injection and fault tolerance: deterministic injector decisions,
   transparency of retries/speculation, structured job failure and
   workflow abort, and the engine-level invariant that faulted runs
   return byte-identical results. *)

module Cluster = Rapida_mapred.Cluster
module Exec_ctx = Rapida_mapred.Exec_ctx
module Fi = Rapida_mapred.Fault_injector
module Job = Rapida_mapred.Job
module Stats = Rapida_mapred.Stats
module Workflow = Rapida_mapred.Workflow
module Metrics = Rapida_mapred.Metrics
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Relops = Rapida_relational.Relops

let check_bool = Alcotest.(check bool)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* A cluster slow enough that injected re-work dominates rounding. *)
let slow = { Cluster.default with disk_mb_per_s = 0.001 }

let ctx ?cluster ?faults () =
  let cluster = Option.value ~default:Cluster.default cluster in
  match faults with
  | None -> Exec_ctx.create ~cluster ()
  | Some cfg -> Exec_ctx.create ~cluster ~faults:(Fi.create cfg) ()

let wordcount : (string, string, int, string * int) Job.spec =
  {
    name = "wordcount";
    map = (fun line -> List.map (fun w -> (w, 1)) (String.split_on_char ' ' line));
    combine = None;
    reduce = (fun k counts -> [ (k, List.fold_left ( + ) 0 counts) ]);
    input_size = String.length;
    key_size = String.length;
    value_size = (fun _ -> 4);
    output_size = (fun (k, _) -> String.length k + 4);
  }

let lines = List.init 60 (fun i -> Printf.sprintf "alpha beta gamma %d" i)

(* --- injector ----------------------------------------------------------- *)

let test_parse_spec () =
  match
    Fi.parse_spec
      "seed=9,task-fail=0.1,straggler=0.25,slowdown=2.5,max-attempts=3,\
       speculation=off,job-retries=1,backoff=5,phase=map"
  with
  | Error msg -> Alcotest.fail msg
  | Ok cfg ->
    check_int "seed" 9 cfg.Fi.seed;
    Alcotest.(check (float 0.0)) "task-fail" 0.1 cfg.Fi.task_fail_p;
    Alcotest.(check (float 0.0)) "straggler" 0.25 cfg.Fi.straggler_p;
    Alcotest.(check (float 0.0)) "slowdown" 2.5 cfg.Fi.straggler_slowdown;
    check_int "max-attempts" 3 cfg.Fi.max_attempts;
    check_bool "speculation" false cfg.Fi.speculation;
    check_int "job-retries" 1 cfg.Fi.job_retries;
    Alcotest.(check (float 0.0)) "backoff" 5.0 cfg.Fi.retry_backoff_s;
    check_bool "phase" true (cfg.Fi.target = Some Fi.Map)

let test_parse_spec_errors () =
  let expect_error spec =
    match Fi.parse_spec spec with
    | Ok _ -> Alcotest.failf "%S should not parse" spec
    | Error msg -> check_bool "non-empty diagnostic" true (msg <> "")
  in
  List.iter expect_error
    [
      "task-fail=lots";
      "seed";
      "bogus=1";
      "speculation=maybe";
      "phase=both";
      "task-fail=1.5";
      "straggler=-0.1";
      "max-attempts=0";
      "slowdown=0.5";
    ]

let test_outcome_deterministic () =
  let t =
    Fi.create { Fi.default with Fi.seed = 3; task_fail_p = 0.3; straggler_p = 0.3 }
  in
  let outcome task attempt =
    Fi.attempt_outcome t ~job:"j" ~job_attempt:0 ~phase:Fi.Map ~task ~attempt
  in
  for task = 0 to 20 do
    for attempt = 1 to 4 do
      check_bool "same coordinates, same fate" true
        (outcome task attempt = outcome task attempt)
    done
  done;
  (* Bumping the whole-job attempt re-rolls the dice: over enough tasks,
     at least one fate must change. *)
  let differs =
    List.exists
      (fun task ->
        Fi.attempt_outcome t ~job:"j" ~job_attempt:1 ~phase:Fi.Map ~task
          ~attempt:1
        <> outcome task 1)
      (List.init 50 Fun.id)
  in
  check_bool "job_attempt re-rolls" true differs

let test_simulate_phase_inactive_exact () =
  let t = Fi.create Fi.default in
  let base_s = 123.456789 in
  let sim =
    Fi.simulate_phase t ~job:"j" ~job_attempt:0 ~phase:Fi.Map ~tasks:7
      ~slots:4 ~base_s
  in
  check_bool "elapsed is exactly base" true (sim.Fi.elapsed_s = base_s);
  check_int "no events" 0 (List.length sim.Fi.events)

let test_simulate_phase_seeds_differ () =
  let sim seed =
    Fi.simulate_phase
      (Fi.create { Fi.default with Fi.seed; task_fail_p = 0.5 })
      ~job:"j" ~job_attempt:0 ~phase:Fi.Map ~tasks:50 ~slots:10 ~base_s:100.0
  in
  check_bool "same seed reproduces" true
    ((sim 1).Fi.elapsed_s = (sim 1).Fi.elapsed_s);
  check_bool "different seeds diverge" true
    ((sim 1).Fi.elapsed_s <> (sim 2).Fi.elapsed_s)

let test_straggler_cost () =
  (* Every attempt straggles. With speculation the duplicate finishes in
     normal time and the original is killed after occupying its slot that
     long (2x work); without it the phase runs at the slowdown factor. *)
  let sim ~speculation =
    Fi.simulate_phase
      (Fi.create
         {
           Fi.default with
           Fi.seed = 1;
           straggler_p = 1.0;
           straggler_slowdown = 3.0;
           speculation;
         })
      ~job:"j" ~job_attempt:0 ~phase:Fi.Reduce ~tasks:10 ~slots:5 ~base_s:50.0
  in
  let spec = sim ~speculation:true in
  check_int "one speculative copy per task" 10 spec.Fi.speculative_launched;
  check_int "losers killed" 10 spec.Fi.attempts_killed;
  Alcotest.(check (float 1e-9)) "speculation doubles the work" 100.0
    spec.Fi.elapsed_s;
  let slow = sim ~speculation:false in
  check_int "no speculative copies" 0 slow.Fi.speculative_launched;
  Alcotest.(check (float 1e-9)) "slowdown factor" 150.0 slow.Fi.elapsed_s

(* --- job-level fault tolerance ------------------------------------------ *)

let faulty_cfg seed =
  { Fi.default with Fi.seed; task_fail_p = 0.2; straggler_p = 0.2 }

let test_transparency_and_cost () =
  let out_h, s_h = Job.run (ctx ~cluster:slow ()) wordcount lines in
  let c = ctx ~cluster:slow ~faults:(faulty_cfg 3) () in
  let out_f, s_f = Job.run c wordcount lines in
  Alcotest.(check (list (pair string int)))
    "faults never change results"
    (List.sort compare out_h) (List.sort compare out_f);
  check_int "same shuffle bytes" s_h.Stats.shuffle_bytes s_f.Stats.shuffle_bytes;
  check_bool "some attempts were injected upon" true
    (s_f.Stats.attempts_failed + s_f.Stats.speculative_launched > 0);
  check_bool "re-work costs simulated time" true
    (s_f.Stats.est_time_s > s_h.Stats.est_time_s);
  check_bool "counters surfaced" true
    (Metrics.get (Exec_ctx.metrics c) "mr.attempts_failed"
     + Metrics.get (Exec_ctx.metrics c) "mr.speculative_launched"
     > 0)

let test_disabled_faults_identical_times () =
  (* An execution context built with an explicit all-zero fault config
     prices jobs bit-identically to one built with no fault config. *)
  let _, s_plain = Job.run (ctx ~cluster:slow ()) wordcount lines in
  let _, s_cfg =
    Job.run (ctx ~cluster:slow ~faults:Fi.default ()) wordcount lines
  in
  check_bool "est_time_s bit-identical" true
    (s_plain.Stats.est_time_s = s_cfg.Stats.est_time_s);
  check_bool "breakdown bit-identical" true
    (s_plain.Stats.breakdown = s_cfg.Stats.breakdown)

let test_failure_rate_migration () =
  (* The deprecated Cluster.task_failure_rate flat multiplier is gone;
     its replacement — an injector with task_fail_p — prices re-work the
     way the shim used to, on top of the same healthy baseline. *)
  let flaky_cfg =
    { Fi.default with Fi.seed = 3; task_fail_p = 0.3; max_attempts = 100 }
  in
  let _, s_flaky = Job.run (ctx ~cluster:slow ~faults:flaky_cfg ()) wordcount lines in
  let _, s_clean = Job.run (ctx ~cluster:slow ()) wordcount lines in
  check_bool "task-fail prices re-work" true
    (s_flaky.Stats.est_time_s > s_clean.Stats.est_time_s);
  check_bool "attempts_failed counted" true
    (s_flaky.Stats.attempts_failed > 0)

let exhausting_cfg = { Fi.default with Fi.seed = 1; task_fail_p = 0.9; max_attempts = 1 }

let test_exhaustion_raises_job_failed () =
  match Job.run (ctx ~cluster:slow ~faults:exhausting_cfg ()) wordcount lines with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job.Job_failed f ->
    check_string "job name" "wordcount" f.Job.f_job;
    check_bool "attempt count" true (f.Job.f_attempts = 1);
    check_bool "charges partial time" true (f.Job.f_elapsed_s > 0.0)

let test_workflow_abort () =
  let wf = Workflow.create (ctx ~cluster:slow ~faults:exhausting_cfg ()) in
  match Workflow.run_job wf wordcount lines with
  | _ -> Alcotest.fail "expected Aborted"
  | exception Workflow.Aborted a ->
    check_int "no retries configured" 0 a.Workflow.a_resubmissions;
    check_int "nothing completed" 0 a.Workflow.a_completed;
    check_bool "lost time charged" true
      (Stats.lost_s (Workflow.stats wf) > 0.0)

let test_workflow_retry_succeeds () =
  (* With task-fail high enough to kill some submission but retries
     re-rolling the dice, the workflow eventually completes; every lost
     submission's time plus backoff lands in lost_s. *)
  let cfg =
    { Fi.default with Fi.seed = 8; task_fail_p = 0.55; max_attempts = 1;
      job_retries = 10; retry_backoff_s = 2.0; target = Some Fi.Map }
  in
  let c = ctx ~cluster:slow ~faults:cfg () in
  let wf = Workflow.create c in
  let out = Workflow.run_job wf wordcount lines in
  let out_h = fst (Job.run (ctx ~cluster:slow ()) wordcount lines) in
  Alcotest.(check (list (pair string int)))
    "retried job still returns the right answer"
    (List.sort compare out_h) (List.sort compare out);
  let resubmissions =
    Metrics.get (Exec_ctx.metrics c) "mr.job_resubmissions"
  in
  check_bool "at least one submission was lost" true (resubmissions > 0);
  let stats = Workflow.stats wf in
  check_bool "lost time includes backoff" true
    (Stats.lost_s stats >= 2.0 *. float_of_int resubmissions);
  check_bool "est includes lost time" true
    (Stats.est_time_s stats > Stats.lost_s stats)

let test_user_exception_captured () =
  let bomb = { wordcount with
               Job.name = "bomb";
               reduce = (fun k counts ->
                 if k = "beta" then failwith "user bug";
                 [ (k, List.fold_left ( + ) 0 counts) ]) }
  in
  (match Job.run (ctx ()) bomb lines with
  | _ -> Alcotest.fail "expected Job_failed"
  | exception Job.Job_failed f ->
    check_string "job" "bomb" f.Job.f_job;
    check_bool "reduce phase" true (f.Job.f_phase = Fi.Reduce);
    check_bool "carries the exception text" true
      (contains_sub f.Job.f_reason "user bug"));
  (* Through a workflow it becomes a structured abort, not an escaping
     exception — and retrying a deterministic bug never helps. *)
  let wf =
    Workflow.create
      (ctx ~faults:{ Fi.default with Fi.job_retries = 2 } ())
  in
  match Workflow.run_job wf bomb lines with
  | _ -> Alcotest.fail "expected Aborted"
  | exception Workflow.Aborted a ->
    check_int "burned every retry" 2 a.Workflow.a_resubmissions

let test_lost_s_exact () =
  (* lost_s charges each failed submission's partial runtime plus exactly
     one backoff per resubmission, in submission order. A deterministic
     bomb fails identically every time, so a 2-retry workflow loses
     e + B + e + B + e — computed here by the same left fold the
     workflow's sequential charging performs, and compared bitwise. *)
  let bomb = { wordcount with
               Job.name = "bomb";
               reduce = (fun k counts ->
                 if k = "beta" then failwith "boom";
                 [ (k, List.fold_left ( + ) 0 counts) ]) }
  in
  let e =
    match Job.run (ctx ~cluster:slow ()) bomb lines with
    | _ -> Alcotest.fail "expected Job_failed"
    | exception Job.Job_failed f -> f.Job.f_elapsed_s
  in
  let backoff = 2.5 in
  let cfg =
    { Fi.default with Fi.job_retries = 2; retry_backoff_s = backoff }
  in
  let wf = Workflow.create (ctx ~cluster:slow ~faults:cfg ()) in
  match Workflow.run_job wf bomb lines with
  | _ -> Alcotest.fail "expected Aborted"
  | exception Workflow.Aborted a ->
    check_int "burned both retries" 2 a.Workflow.a_resubmissions;
    let expected =
      List.fold_left ( +. ) 0.0 [ e; backoff; e; backoff; e ]
    in
    let stats = Workflow.stats wf in
    check_bool "lost_s is exactly the submissions plus backoffs" true
      (Stats.lost_s stats = expected);
    check_bool "nothing completed, so est_time_s is all lost time" true
      (Stats.est_time_s stats = expected)

let test_pp_abort_golden () =
  let a =
    {
      Workflow.a_failure =
        {
          Job.f_job = "composite_join0";
          f_phase = Fi.Map;
          f_task = 3;
          f_attempts = 4;
          f_reason = "injected task-attempt crashes exhausted retries";
          f_elapsed_s = 12.5;
          f_deterministic = false;
        };
      a_resubmissions = 1;
      a_completed = 2;
    }
  in
  check_string "pp_abort golden"
    "workflow aborted: job \"composite_join0\": map task 3 failed 4 \
     attempts: injected task-attempt crashes exhausted retries (1 \
     whole-job resubmission, 2 jobs completed before the abort)"
    (Fmt.str "%a" Workflow.pp_abort a)

(* --- engine-level property ---------------------------------------------- *)

(* 20 fault seeds on a seeded BSBM workload: every engine's result is
   byte-identical to its fault-free run (the transparency invariant end
   to end), and no workflow aborts at these rates. *)
(* Bridge to the session API, keeping the old string-error shape these
   tests match on. *)
let run kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let test_engines_transparent_under_faults () =
  let input =
    Engine.input_of_graph
      Rapida_datagen.Bsbm.(generate (config ~seed:11 ~products:30 ()))
  in
  let entries = [ Catalog.find_exn "G1"; Catalog.find_exn "MG1" ] in
  List.iter
    (fun entry ->
      let q = Catalog.parse entry in
      let baselines =
        List.map
          (fun kind ->
            let ctx = Plan_util.context (Plan_util.make ()) in
            match run kind ctx input q with
            | Ok out -> (kind, out.Engine.table)
            | Error msg -> Alcotest.failf "fault-free %s: %s" entry.Catalog.id msg)
          Engine.all_kinds
      in
      for seed = 1 to 20 do
        List.iter
          (fun (kind, base_table) ->
            let cfg =
              { Fi.default with Fi.seed; task_fail_p = 0.15;
                straggler_p = 0.15; job_retries = 3 }
            in
            let ctx = Plan_util.context (Plan_util.make ~faults:cfg ()) in
            match run kind ctx input q with
            | Error msg ->
              Alcotest.failf "%s seed %d %s: %s" entry.Catalog.id seed
                (Engine.kind_name kind) msg
            | Ok out ->
              if not (Relops.same_results base_table out.Engine.table) then
                Alcotest.failf "%s seed %d %s: result diverged under faults"
                  entry.Catalog.id seed (Engine.kind_name kind))
          baselines
      done)
    entries

let suite =
  [
    Alcotest.test_case "parse spec" `Quick test_parse_spec;
    Alcotest.test_case "parse spec errors" `Quick test_parse_spec_errors;
    Alcotest.test_case "deterministic outcomes" `Quick test_outcome_deterministic;
    Alcotest.test_case "inactive injector is exact" `Quick
      test_simulate_phase_inactive_exact;
    Alcotest.test_case "seeds diverge" `Quick test_simulate_phase_seeds_differ;
    Alcotest.test_case "straggler cost model" `Quick test_straggler_cost;
    Alcotest.test_case "transparency and cost" `Quick test_transparency_and_cost;
    Alcotest.test_case "disabled faults identical times" `Quick
      test_disabled_faults_identical_times;
    Alcotest.test_case "failure-rate migration" `Quick
      test_failure_rate_migration;
    Alcotest.test_case "exhaustion raises Job_failed" `Quick
      test_exhaustion_raises_job_failed;
    Alcotest.test_case "workflow abort" `Quick test_workflow_abort;
    Alcotest.test_case "workflow retry succeeds" `Quick
      test_workflow_retry_succeeds;
    Alcotest.test_case "user exception captured" `Quick
      test_user_exception_captured;
    Alcotest.test_case "lost_s charges backoff exactly once per retry" `Quick
      test_lost_s_exact;
    Alcotest.test_case "pp_abort golden" `Quick test_pp_abort_golden;
    Alcotest.test_case "engines transparent under faults" `Slow
      test_engines_transparent_under_faults;
  ]
