(* Benchmark harness regenerating every table and figure of the paper's
   evaluation section (§5):

     fig7    - Figure 7: the multi-grouping query workload summary
     table3  - Table 3: single-grouping queries, Hive vs RAPIDAnalytics
               (BSBM at two scales, Chem2Bio2RDF)
     fig8a   - Figure 8(a): MG1-MG4 on the small BSBM dataset, 4 engines
     fig8b   - Figure 8(b): MG1-MG4 on the larger BSBM dataset, 4 engines
     fig8c   - Figure 8(c): MG6-MG10 on Chem2Bio2RDF, 4 engines
     table4  - Table 4: MG11-MG18 on PubMed, 4 engines
     ablation- toggle each optimization knob in isolation
     faults  - fault-injection degradation: simulated time vs fault
               rate for all four engines
     memory  - memory-budget degradation: simulated time, spills, OOM
               retries, and map-join fallbacks as the per-task heap
               shrinks, for all four engines
     recovery- checkpoint-recovery sweep: fault rate crossed with
               checkpoint policy, showing completion, replay cost, and
               checkpoint overhead for all four engines
     server  - query-server throughput sweep: a timed arrival stream
               through windowed admission and cross-query MQO, per-query
               latency percentiles and savings vs back-to-back runs
     overload- overload sweep: arrival rate crossed with fault rate,
               protected (deadline-aware shedding + circuit breaker +
               degradation ladder) vs unprotected goodput
     analyze - static cardinality estimation: catalog-build time,
               per-query analysis overhead, and estimation quality
               (q-error, interval soundness) across the catalog on all
               four engines; --bench-json FILE writes the artifact
     optimize- cost-based planner sweep: per-query planning time and a
               timed plan-cache hit, costed-vs-heuristic upper-bound
               cost deltas, per-engine byte-identity of optimized runs,
               and the plan-cache hit rate under the server's repeated
               workload; --bench-json FILE writes the artifact
     fuzz    - fuzzing harness: random analytical queries through the
               differential / metamorphic / analyzer / robustness
               oracles (cases/sec, per-oracle timings), plus a
               broken-engine self-test; --bench-json FILE writes the
               artifact
     wall    - Bechamel wall-clock microbenchmarks of the in-memory
               engines on representative queries

   Absolute numbers come from the MapReduce simulator's cost model
   (documented in DESIGN.md); the paper-facing claims are the shapes:
   who wins, by what factor, and where the crossovers are. Usage:

     dune exec bench/main.exe [--scale N] [--trace DIR] [--faults SPEC]
                              [--mem SPEC] [--checkpoint SPEC]
                              [section ...]  (default: all)

   With --trace DIR, each engine run writes its Chrome trace-event file
   to DIR/<section>-<query>-<engine>.json. With --faults SPEC (same
   key=value spec as `rapida query --faults`), every section's engine
   runs execute under that fault configuration; --mem SPEC (same spec as
   `rapida query --mem`) likewise bounds the per-task memory of every
   section's simulated cluster, and --checkpoint SPEC (same spec as
   `rapida query --checkpoint`) checkpoints every section's workflows. *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Experiment = Rapida_harness.Experiment
module Report = Rapida_harness.Report

module Fault_injector = Rapida_mapred.Fault_injector
module Memory = Rapida_mapred.Memory
module Checkpoint = Rapida_mapred.Checkpoint

let scale = ref 1
let sections = ref []
let trace_dir = ref None
let bench_json = ref None
let fault_cfg = ref Fault_injector.default
let mem_cfg = ref Memory.default
let checkpoint_cfg = ref Checkpoint.default

let () =
  let rec parse = function
    | [] -> ()
    | "--scale" :: n :: rest ->
      scale := int_of_string n;
      parse rest
    | "--trace" :: dir :: rest ->
      trace_dir := Some dir;
      parse rest
    | "--bench-json" :: path :: rest ->
      bench_json := Some path;
      parse rest
    | "--faults" :: spec :: rest ->
      (match Fault_injector.parse_spec spec with
      | Ok cfg -> fault_cfg := cfg
      | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit 2);
      parse rest
    | "--mem" :: spec :: rest ->
      (match Memory.parse_spec spec with
      | Ok cfg -> mem_cfg := cfg
      | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit 2);
      parse rest
    | "--checkpoint" :: spec :: rest ->
      (match Checkpoint.parse_spec spec with
      | Ok cfg -> checkpoint_cfg := cfg
      | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit 2);
      parse rest
    | s :: rest ->
      sections := s :: !sections;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv))

let want section =
  !sections = [] || List.mem "all" !sections || List.mem section !sections

(* The simulated cluster: paper-default startup costs with bandwidths
   scaled down by the ratio between the paper's dataset sizes (tens of
   GB) and this harness's (hundreds of KB), so that the startup-vs-data
   balance of each MR cycle matches the paper's regime. *)
let options =
  Plan_util.make
    ~cluster:
      (Rapida_mapred.Cluster.with_memory
         (Rapida_mapred.Cluster.scaled_down ~factor:1.0e5)
         !mem_cfg)
    ~map_join_threshold:(24 * 1024) ~faults:!fault_cfg
    ~checkpoint:!checkpoint_cfg ()

let all_engines = Engine.all_kinds
let table3_engines = Engine.[ Hive_naive; Rapid_analytics ]

(* Dataset scales: "small" BSBM stands in for BSBM-500K, "large" (4x) for
   BSBM-2M; the 4x ratio matches the paper's 500K -> 2M products. *)
let bsbm_small =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~products:(400 * !scale) ())))

let bsbm_large =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Bsbm.(generate (config ~products:(1600 * !scale) ())))

let chem =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Chem2bio.(generate (config ~compounds:(200 * !scale) ())))

let pubmed =
  lazy
    (Engine.input_of_graph
       Rapida_datagen.Pubmed.(
         generate (config ~publications:(600 * !scale) ())))

let queries ids = List.map Catalog.find_exn ids

let section_fig7 () =
  Fmt.pr "@.== Figure 7: evaluated RDF analytical queries ==@.";
  Fmt.pr "%a" Catalog.pp_figure7 ()

(* With --trace DIR, persist every engine run's span trace for offline
   inspection (chrome://tracing / Perfetto). *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let dump_traces ~section runs =
  match !trace_dir with
  | None -> ()
  | Some dir ->
    mkdir_p dir;
    List.iter
      (fun run ->
        List.iter
          (fun (r : Experiment.engine_result) ->
            let path =
              Filename.concat dir
                (Printf.sprintf "%s-%s-%s.json" section
                   run.Experiment.query.Catalog.id
                   (Engine.kind_name r.engine))
            in
            Rapida_mapred.Trace.write_file r.Experiment.trace path)
          run.Experiment.results)
      runs

let report ?section ~title ~engines runs =
  Fmt.pr "%a" (Report.pp_comparison ~title ~engines) runs;
  Fmt.pr "%a" (Report.pp_cycles ~title:(title ^ " - MR cycles") ~engines) runs;
  Fmt.pr "%a"
    (Report.pp_bytes ~title:(title ^ " - shuffle volume") ~engines)
    runs;
  Fmt.pr "%a"
    (Report.pp_phases ~title:(title ^ " - phase breakdown") ~engines)
    runs;
  Fmt.pr "%a" Report.pp_verification runs;
  match section with
  | Some section -> dump_traces ~section runs
  | None -> ()

let section_table3 () =
  let g_bsbm = queries [ "G1"; "G2"; "G3"; "G4" ] in
  let runs_small =
    Experiment.run_queries ~engines:table3_engines options
      ~label:"BSBM-small" (Lazy.force bsbm_small) g_bsbm
  in
  report ~section:"table3" ~title:"Table 3 (BSBM, small)" ~engines:table3_engines runs_small;
  let runs_large =
    Experiment.run_queries ~engines:table3_engines options
      ~label:"BSBM-large" (Lazy.force bsbm_large) g_bsbm
  in
  report ~section:"table3" ~title:"Table 3 (BSBM, large)" ~engines:table3_engines runs_large;
  let g_chem = queries [ "G5"; "G6"; "G7"; "G8"; "G9" ] in
  let runs_chem =
    Experiment.run_queries ~engines:table3_engines options
      ~label:"Chem2Bio2RDF" (Lazy.force chem) g_chem
  in
  report ~section:"table3" ~title:"Table 3 (Chem2Bio2RDF)" ~engines:table3_engines runs_chem

let section_fig8a () =
  let runs =
    Experiment.run_queries options ~label:"BSBM-small"
      (Lazy.force bsbm_small)
      (queries [ "MG1"; "MG2"; "MG3"; "MG4" ])
  in
  report ~section:"fig8a" ~title:"Figure 8(a): MG1-MG4" ~engines:all_engines runs

let section_fig8b () =
  let runs =
    Experiment.run_queries options ~label:"BSBM-large"
      (Lazy.force bsbm_large)
      (queries [ "MG1"; "MG2"; "MG3"; "MG4" ])
  in
  report ~section:"fig8b" ~title:"Figure 8(b): MG1-MG4 (4x scale)" ~engines:all_engines runs

let section_fig8c () =
  let runs =
    Experiment.run_queries options ~label:"Chem2Bio2RDF" (Lazy.force chem)
      (queries [ "MG6"; "MG7"; "MG8"; "MG9"; "MG10" ])
  in
  report ~section:"fig8c" ~title:"Figure 8(c): MG6-MG10" ~engines:all_engines runs

let section_table4 () =
  let runs =
    Experiment.run_queries options ~label:"PubMed" (Lazy.force pubmed)
      (queries
         [ "MG11"; "MG12"; "MG13"; "MG14"; "MG15"; "MG16"; "MG17"; "MG18" ])
  in
  report ~section:"table4" ~title:"Table 4: MG11-MG18" ~engines:all_engines runs

(* Ablations over the design choices DESIGN.md calls out: each knob is
   toggled in isolation on a workload where it matters, reporting the
   simulated-time and shuffle deltas. Results are always identical (the
   test suite enforces it); only costs move. *)
let section_ablation () =
  Fmt.pr "@.== Ablations ==@.";
  let run opts kind input id =
    let session = Engine.prepare kind (Lazy.force input) in
    match
      Engine.execute session (Plan_util.context opts)
        (Catalog.parse (Catalog.find_exn id))
    with
    | Ok out -> out
    | Error e -> failwith (Engine.error_message e)
  in
  let show label (on : Engine.output) (off : Engine.output) =
    let module Stats = Rapida_mapred.Stats in
    Fmt.pr
      "%-42s on: %7.1fs %8.1fKB shuffled   off: %7.1fs %8.1fKB shuffled@."
      label
      (Stats.est_time_s on.Engine.stats)
      (float_of_int (Stats.total_shuffle_bytes on.Engine.stats) /. 1024.)
      (Stats.est_time_s off.Engine.stats)
      (float_of_int (Stats.total_shuffle_bytes off.Engine.stats) /. 1024.)
  in
  show "RA partial aggregation (MG1)"
    (run options Engine.Rapid_analytics bsbm_small "MG1")
    (run
       (Plan_util.make ~base:options ~ntga_combiner:false ())
       Engine.Rapid_analytics bsbm_small "MG1");
  show "RA filter pushdown (G6)"
    (run options Engine.Rapid_analytics chem "G6")
    (run
       (Plan_util.make ~base:options ~ntga_filter_pushdown:false ())
       Engine.Rapid_analytics chem "G6");
  show "Hive map-joins (G5)"
    (run options Engine.Hive_naive chem "G5")
    (run
       (Plan_util.make ~base:options ~map_join_threshold:0 ())
       Engine.Hive_naive chem "G5");
  show "Hive ORC storage (MG3)"
    (run options Engine.Hive_naive bsbm_small "MG3")
    (run
       (Plan_util.make ~base:options ~hive_compression:1.0 ())
       Engine.Hive_naive bsbm_small "MG3")

(* Fault-injection degradation: each engine's simulated time as the
   per-attempt crash/straggler rate rises, relative to its own
   fault-free run. RAPIDAnalytics' shorter workflows re-roll fewer
   attempts, so it degrades the least in absolute seconds. *)
let section_faults () =
  List.iter
    (fun (input, id) ->
      let deg =
        Experiment.degradation options (Lazy.force input)
          (Catalog.find_exn id)
      in
      Fmt.pr "%a" (Report.pp_degradation ~engines:all_engines) deg)
    [ (bsbm_small, "MG1"); (chem, "MG6") ]

(* Memory-budget degradation: each engine's simulated time as the
   per-task heap (and with it the sort buffer) shrinks, relative to its
   own unbounded run. Results stay byte-identical at every budget; the
   sweep shows where each engine starts spilling, OOM-retrying, and
   falling back from broadcast map-joins to repartition joins. *)
let section_memory () =
  List.iter
    (fun (input, id) ->
      let sweep =
        Experiment.memory_sweep options (Lazy.force input)
          (Catalog.find_exn id)
      in
      Fmt.pr "%a" (Report.pp_memory ~engines:all_engines) sweep)
    [ (bsbm_small, "MG1"); (chem, "G5") ]

(* Checkpoint-recovery sweep: fault rate crossed with checkpoint policy
   under deliberately harsh retry settings (two task attempts, no
   whole-job resubmissions), so the Never policy can abort while any
   active policy recovers by replaying only the jobs since the last
   checkpoint. Shows the checkpoint-write overhead at rate 0 and the
   replay savings versus whole-plan resubmission as the rate rises. *)
let section_recovery () =
  List.iter
    (fun (input, id) ->
      let sweep =
        Experiment.recovery_sweep options (Lazy.force input)
          (Catalog.find_exn id)
      in
      Fmt.pr "%a" (Report.pp_recovery ~engines:all_engines) sweep)
    [ (bsbm_small, "MG1") ]

(* Query-server throughput: a generated BSBM arrival stream through the
   windowed-admission MQO server, sweeping admission window, scheduler
   policy, and sharing. The headline contrast: with sharing on, the
   MQO-capable engines run strictly fewer jobs and scan strictly fewer
   bytes than back-to-back execution, with every per-query answer
   identical to its solo run. *)
let section_server () =
  let workload =
    Rapida_server.Workload.generate_exn ~seed:11 ~n:(10 * !scale)
      ~mean_gap_s:3.0 ()
  in
  List.iter
    (fun kind ->
      let sweep =
        Experiment.throughput options kind (Lazy.force bsbm_small) workload
      in
      Fmt.pr "%a" Report.pp_throughput sweep)
    Engine.[ Hive_mqo; Rapid_analytics ]

(* Overload sweep: arrival rate crossed with per-attempt fault rate, the
   same deadline-carrying workload through a protected server (bounded
   queue, deadline-aware shedding, circuit breaker, degradation ladder)
   and an unprotected one. The headline: at the heaviest arrival x fault
   point, protection strictly wins on goodput — shedding a few queries
   (each with a typed fate) keeps the rest inside their deadlines. *)
let section_overload () =
  let sweep =
    Experiment.overload_sweep ~n:(12 * !scale) options Engine.Rapid_analytics
      (Lazy.force bsbm_small)
  in
  Fmt.pr "%a" Report.pp_overload sweep

(* Static cardinality estimation: for each dataset, a one-pass catalog
   build (timed), then every catalog query on that dataset analyzed
   (timed), its plan nodes checked for interval soundness against the
   measured cardinalities, and all four engines' result cardinalities
   checked against the root interval. With --bench-json FILE the
   catalog-build and per-query analysis timings are written as the
   committed BENCH artifact — the on-disk perf trajectory. *)
let section_analyze () =
  let module Json = Rapida_mapred.Json in
  let sweeps =
    List.map
      (fun (label, input, dataset) ->
        Experiment.estimation_sweep options ~label (Lazy.force input)
          (Catalog.by_dataset dataset))
      [
        ("BSBM-small", bsbm_small, Catalog.Bsbm);
        ("Chem2Bio2RDF", chem, Catalog.Chem2bio);
        ("PubMed", pubmed, Catalog.Pubmed);
      ]
  in
  List.iter
    (fun sweep ->
      Fmt.pr "%a" (Report.pp_estimation ~engines:all_engines) sweep)
    sweeps;
  match !bench_json with
  | None -> ()
  | Some path ->
    let sweep_json (s : Experiment.estimation_sweep) =
      Json.Obj
        [
          ("label", Json.String s.Experiment.e_label);
          ("triples", Json.Int s.Experiment.e_triples);
          ( "catalog_build_ms",
            Json.Float (1000.0 *. s.Experiment.e_catalog_build_s) );
          ( "median_q_error",
            Json.Float (Experiment.median_q_error s.Experiment.e_estimations)
          );
          ( "queries",
            Json.List
              (List.map
                 (fun (e : Experiment.estimation) ->
                   Json.Obj
                     [
                       ("id", Json.String e.Experiment.e_query.Catalog.id);
                       ( "analysis_ms",
                         Json.Float (1000.0 *. e.Experiment.e_analysis_s) );
                       ("nodes", Json.Int e.Experiment.e_nodes);
                       ("actual", Json.Int e.Experiment.e_actual);
                       ("q_error", Json.Float e.Experiment.e_q_error);
                       ( "max_node_q_error",
                         Json.Float e.Experiment.e_max_node_q_error );
                       ("violations", Json.Int e.Experiment.e_violations);
                     ])
                 s.Experiment.e_estimations) );
        ]
    in
    let doc =
      Json.Obj
        [
          ("bench", Json.String "analyze");
          ("scale", Json.Int !scale);
          ("datasets", Json.List (List.map sweep_json sweeps));
        ]
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Fmt.pr "wrote %s@." path

(* Cost-based planner sweep: every multi-grouping BSBM query (plus a
   single-grouping control) planned cold and through the cache, the
   chosen orders priced against the heuristic orders at their upper
   bounds, per-engine byte-identity of optimized execution checked, and
   a repeated arrival stream driven through a planner-armed server so
   the plan cache shows its hit rate. With --bench-json FILE the
   planning/caching timings, cost deltas, and server cache counters are
   written as the committed BENCH artifact. *)
let section_optimize () =
  let module Json = Rapida_mapred.Json in
  let module Server = Rapida_server.Server in
  let module Plan_cache = Rapida_planner.Plan_cache in
  let module Cost_model = Rapida_planner.Cost_model in
  let sweep =
    Experiment.optimize_sweep ~arrivals:(20 * !scale) options
      ~label:"BSBM-small" (Lazy.force bsbm_small)
      (queries [ "MG1"; "MG2"; "MG3"; "MG4"; "G1" ])
  in
  Fmt.pr "%a" (Report.pp_optimize ~engines:all_engines) sweep;
  match !bench_json with
  | None -> ()
  | Some path ->
    let entry_json (e : Experiment.optimize_entry) =
      let delta_pct =
        if e.Experiment.p_heuristic_hi > 0.0 then
          100.0
          *. (e.Experiment.p_heuristic_hi -. e.Experiment.p_chosen_hi)
          /. e.Experiment.p_heuristic_hi
        else 0.0
      in
      Json.Obj
        [
          ("id", Json.String e.Experiment.p_query.Catalog.id);
          ("planning_ms", Json.Float e.Experiment.p_planning_ms);
          ("cache_hit_ms", Json.Float e.Experiment.p_replan_ms);
          ("units", Json.Int e.Experiment.p_units);
          ("hints", Json.Int e.Experiment.p_hints);
          ("heuristic_hi_cost_s", Json.Float e.Experiment.p_heuristic_hi);
          ("chosen_hi_cost_s", Json.Float e.Experiment.p_chosen_hi);
          ("cost_delta_pct", Json.Float delta_pct);
          ("all_verified", Json.Bool e.Experiment.p_all_verified);
          ("identical", Json.Bool e.Experiment.p_identical);
        ]
    in
    let server_json =
      match sweep.Experiment.p_server.Server.r_optimize with
      | None -> Json.Null
      | Some o ->
        let hits = o.Server.p_cache.Plan_cache.hits in
        let misses = o.Server.p_cache.Plan_cache.misses in
        Json.Obj
          [
            ("planned", Json.Int o.Server.p_planned);
            ("cache_hits", Json.Int hits);
            ("cache_misses", Json.Int misses);
            ( "hit_rate",
              Json.Float
                (if hits + misses > 0 then
                   float_of_int hits /. float_of_int (hits + misses)
                 else 0.0) );
            ("invalidations", Json.Int o.Server.p_cache.Plan_cache.invalidations);
            ("evictions", Json.Int o.Server.p_cache.Plan_cache.evictions);
            ("misestimates", Json.Int o.Server.p_misestimates);
            ("fallbacks", Json.Int o.Server.p_fallbacks);
            ("breaker", Json.String o.Server.p_breaker);
          ]
    in
    let doc =
      Json.Obj
        [
          ("bench", Json.String "optimize");
          ("scale", Json.Int !scale);
          ( "policy",
            Json.String (Cost_model.policy_name sweep.Experiment.p_policy) );
          ("label", Json.String sweep.Experiment.p_label);
          ( "catalog_build_ms",
            Json.Float (1000.0 *. sweep.Experiment.p_catalog_build_s) );
          ( "queries",
            Json.List (List.map entry_json sweep.Experiment.p_entries) );
          ("server", server_json);
        ]
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Fmt.pr "wrote %s@." path

(* The fuzzing harness as a benchmark: a full-budget run of all four
   oracles over the built-in dataset (expected clean), plus a short run
   against an intentionally row-dropping engine that the differential
   oracle must catch — the self-test that the clean run's silence is
   meaningful. With --bench-json FILE the throughput (cases/sec),
   per-oracle timings, and shrink-step counts are written as the
   committed BENCH artifact. *)
let section_fuzz () =
  let module Json = Rapida_mapred.Json in
  let module Fuzz = Rapida_fuzz.Fuzz in
  let sweep = Experiment.fuzz_sweep ~budget:(200 * !scale) () in
  Fmt.pr "@.== Fuzzing & differential oracles ==@.";
  Fmt.pr "%a" Fuzz.pp sweep.Experiment.f_clean;
  let broken = sweep.Experiment.f_broken in
  Fmt.pr "broken-engine run: %d cases, %d violation(s), caught=%b@."
    broken.Fuzz.r_cases (Fuzz.violations broken) sweep.Experiment.f_caught;
  (match broken.Fuzz.r_failures with
  | f :: _ ->
    Fmt.pr "first reproducer shrunk in %d step(s)@." f.Fuzz.f_shrink_steps
  | [] -> ());
  match !bench_json with
  | None -> ()
  | Some path ->
    let clean = sweep.Experiment.f_clean in
    let doc =
      Json.Obj
        [
          ("bench", Json.String "fuzz");
          ("scale", Json.Int !scale);
          ("clean", Fuzz.to_json clean);
          ("broken", Fuzz.to_json broken);
          ("caught", Json.Bool sweep.Experiment.f_caught);
          ("elapsed_s", Json.Float sweep.Experiment.f_elapsed_s);
        ]
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Fmt.pr "wrote %s@." path

(* Wall-clock microbenchmarks of the real in-memory executions, per
   engine, on representative queries from each workload. *)
let section_wall () =
  let open Bechamel in
  let bench_query label input_lazy id =
    let input = Lazy.force input_lazy in
    let q = Catalog.parse (Catalog.find_exn id) in
    List.map
      (fun kind ->
        (* Prepared outside the staged closure: the benchmark measures
           execution, not storage preparation. *)
        let session = Engine.prepare kind input in
        Test.make
          ~name:(Printf.sprintf "%s/%s/%s" label id (Engine.kind_name kind))
          (Staged.stage (fun () ->
               match Engine.execute session (Plan_util.context options) q with
               | Ok _ -> ()
               | Error e -> failwith (Engine.error_message e))))
      all_engines
  in
  let tests =
    Test.make_grouped ~name:"rapida"
      (bench_query "bsbm" bsbm_small "MG1"
      @ bench_query "chem" chem "MG6"
      @ bench_query "pubmed" pubmed "MG13")
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Fmt.pr "@.== Wall-clock (Bechamel, in-memory execution) ==@.";
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | _ -> (name, Float.nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) -> Fmt.pr "%-48s %12.2f ms/run@." name (est /. 1e6))
    rows

let () =
  Fmt.pr "RAPIDAnalytics benchmark harness (scale=%d)@." !scale;
  Fmt.pr "cluster model: %a@." Rapida_mapred.Cluster.pp options.cluster;
  if want "fig7" then section_fig7 ();
  if want "table3" then section_table3 ();
  if want "fig8a" then section_fig8a ();
  if want "fig8b" then section_fig8b ();
  if want "fig8c" then section_fig8c ();
  if want "table4" then section_table4 ();
  if want "ablation" then section_ablation ();
  if want "faults" then section_faults ();
  if want "memory" then section_memory ();
  if want "recovery" then section_recovery ();
  if want "server" then section_server ();
  if want "overload" then section_overload ();
  if want "analyze" then section_analyze ();
  if want "optimize" then section_optimize ();
  if want "fuzz" then section_fuzz ();
  if want "wall" then section_wall ()
