(* NTGA operators, tested against the paper's own worked examples:
   Figure 4 (optional group filter and n-split), Table 2 (α conditions),
   and Figure 5 (the triplegroup Agg-Join). *)

open Rapida_ntga
module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ns = "http://rapida.bench/vocab/"
let iri n = Term.iri (ns ^ n)
let p name = iri name

(* Properties of the Figure 4 example. *)
let product = p "product"
let price = p "price"
let valid_from = p "validFrom"
let valid_to = p "validTo"

let tg subject triples = Triplegroup.make (iri subject) triples
let t s pr o = Triple.make (iri s) pr o

(* Figure 4's input triplegroups (shapes, not exact values):
   tg1: product, price, validTo
   tg2: product, price, validFrom, validTo
   tg3: product, validFrom            (no price -> filtered out)
   tg4: product, price, validFrom, validTo *)
let tg1 =
  tg "o1" [ t "o1" product (iri "p1"); t "o1" price (Term.int 100);
            t "o1" valid_to (Term.date "2009-01-01") ]

let tg2 =
  tg "o2" [ t "o2" product (iri "p2"); t "o2" price (Term.int 200);
            t "o2" valid_from (Term.date "2008-01-01");
            t "o2" valid_to (Term.date "2009-06-01") ]

let tg3 = tg "o3" [ t "o3" product (iri "p3"); t "o3" valid_from (Term.date "2008-02-01") ]

let tg4 =
  tg "o4" [ t "o4" product (iri "p4"); t "o4" price (Term.int 400);
            t "o4" valid_from (Term.date "2008-03-01");
            t "o4" valid_to (Term.date "2009-09-01") ]

let inputs = [ tg1; tg2; tg3; tg4 ]

let prim = [ Ops.req product; Ops.req price ]
let opt = [ Ops.req valid_from; Ops.req valid_to ]

let test_triplegroup_basics () =
  check_int "props" 4 (List.length (Triplegroup.props tg2));
  check_bool "has price" true (Triplegroup.has_prop tg2 price);
  check_int "objects_of" 1 (List.length (Triplegroup.objects_of tg2 price));
  let projected = Triplegroup.project tg2 [ product; price ] in
  check_int "projection" 2 (List.length projected.Triplegroup.triples);
  let u = Triplegroup.union tg1 tg1 in
  check_int "union dedups" 3 (List.length u.Triplegroup.triples);
  Alcotest.check_raises "union different subjects"
    (Invalid_argument "Triplegroup.union: different subjects") (fun () ->
      ignore (Triplegroup.union tg1 tg2))

let test_of_graph () =
  let g = Graph.of_list (tg1.Triplegroup.triples @ tg2.Triplegroup.triples) in
  check_int "two groups" 2 (List.length (Triplegroup.of_graph g))

(* Figure 4(a): sigma-gamma-opt keeps tg1, tg2, tg4 and drops tg3. *)
let test_opt_group_filter_figure4a () =
  let result = Ops.opt_group_filter ~prim ~opt inputs in
  check_int "three survive" 3 (List.length result);
  check_bool "tg3 filtered out" true
    (not
       (List.exists
          (fun g -> Term.equal g.Triplegroup.subject (iri "o3"))
          result))

let test_opt_group_filter_projects () =
  let extra = tg "o9" [ t "o9" product (iri "p9"); t "o9" price (Term.int 1);
                        t "o9" (p "unrelated") (Term.int 7) ] in
  match Ops.opt_group_filter ~prim ~opt [ extra ] with
  | [ g ] ->
    check_bool "unrelated property projected away" false
      (Triplegroup.has_prop g (p "unrelated"))
  | _ -> Alcotest.fail "expected one triplegroup"

let test_group_filter_object_constraint () =
  let ty = Rapida_rdf.Namespace.rdf_type in
  let a = tg "x1" [ Triple.make (iri "x1") ty (iri "PT18"); t "x1" price (Term.int 5) ] in
  let b = tg "x2" [ Triple.make (iri "x2") ty (iri "PT9"); t "x2" price (Term.int 6) ] in
  let required = [ Ops.req ~obj:(iri "PT18") ty; Ops.req price ] in
  match Ops.group_filter ~required [ a; b ] with
  | [ g ] -> check_bool "kept PT18" true (Term.equal g.Triplegroup.subject (iri "x1"))
  | other -> Alcotest.failf "expected exactly one, got %d" (List.length other)

(* Figure 4(b): n-split with P_sec1={validFrom}, P_sec2={validTo}. *)
let test_n_split_figure4b () =
  let filtered = Ops.opt_group_filter ~prim ~opt inputs in
  let split =
    Ops.n_split
      ~prim:[ product; price ]
      ~secs:[ [ valid_from ]; [ valid_to ] ]
      filtered
  in
  (* tg1 -> only combination 2; tg2 and tg4 -> both. *)
  let count i =
    List.length (List.filter (fun (j, _) -> j = i) split)
  in
  check_int "combination 1 (validFrom)" 2 (count 0);
  check_int "combination 2 (validTo)" 3 (count 1);
  (* Extracted triplegroups carry only prim + their sec properties. *)
  List.iter
    (fun (i, g) ->
      let sec = if i = 0 then valid_from else valid_to in
      let other = if i = 0 then valid_to else valid_from in
      check_bool "has own secondary" true (Triplegroup.has_prop g sec);
      check_bool "other's secondary projected" false (Triplegroup.has_prop g other))
    split

(* Figure 4(c): first combination has no secondary properties. *)
let test_n_split_empty_sec () =
  let filtered = Ops.opt_group_filter ~prim ~opt inputs in
  let split =
    Ops.n_split ~prim:[ product; price ] ~secs:[ []; [ valid_to ] ] filtered
  in
  let comb1 = List.filter (fun (i, _) -> i = 0) split in
  (* Every surviving triplegroup matches the all-primary combination. *)
  check_int "combination 1 matches all" 3 (List.length comb1)

(* Table 2 α-condition semantics over single triplegroups. *)
let test_alpha_table2 () =
  let a = p "a" and b = p "b" and c = p "c" in
  let tg_ab = tg "s1" [ t "s1" a (Term.int 1); t "s1" b (Term.int 2) ] in
  let tg_abc =
    tg "s2" [ t "s2" a (Term.int 1); t "s2" b (Term.int 2); t "s2" c (Term.int 3) ]
  in
  (* Row 4 of Table 2, left star: alpha1 = c present, alpha2 = c absent. *)
  let alpha1 = { Ops.required = [ c ]; forbidden = [] } in
  let alpha2 = { Ops.required = []; forbidden = [ c ] } in
  check_bool "abc satisfies alpha1" true (Ops.alpha_holds_tg alpha1 tg_abc);
  check_bool "ab fails alpha1" false (Ops.alpha_holds_tg alpha1 tg_ab);
  check_bool "ab satisfies alpha2" true (Ops.alpha_holds_tg alpha2 tg_ab);
  check_bool "abc fails alpha2" false (Ops.alpha_holds_tg alpha2 tg_abc)

(* α-join: offers join products on the product property; combinations
   matching no α condition are dropped during the join. *)
let test_alpha_join () =
  let label = p "label" in
  let prod1 = tg "p1" [ t "p1" label (Term.str "one") ] in
  let prod2 = tg "p2" [ t "p2" label (Term.str "two") ] in
  let offers =
    List.map (Joined.of_tg 1) [ tg1; tg2 ] (* products p1, p2 *)
  in
  let prods = List.map (Joined.of_tg 0) [ prod1; prod2 ] in
  let joined =
    Ops.alpha_join ~left:offers ~right:prods
      ~left_key:{ Ops.star = 1; access = `ObjectOf product }
      ~right_key:{ Ops.star = 0; access = `Subject }
      ~alphas:[]
  in
  check_int "two joins" 2 (List.length joined);
  (* Restrict with an α requiring validFrom: only tg2's pair survives. *)
  let restricted =
    Ops.alpha_join ~left:offers ~right:prods
      ~left_key:{ Ops.star = 1; access = `ObjectOf product }
      ~right_key:{ Ops.star = 0; access = `Subject }
      ~alphas:[ { Ops.required = [ valid_from ]; forbidden = [] } ]
  in
  check_int "alpha restricts" 1 (List.length restricted)

let test_alpha_join_multivalued_key () =
  (* A triplegroup with two object values joins with both right sides. *)
  let member = p "member" in
  let group_tg =
    tg "g" [ t "g" member (iri "m1"); t "g" member (iri "m2") ]
  in
  let m1 = tg "m1" [ t "m1" (p "name") (Term.str "a") ] in
  let m2 = tg "m2" [ t "m2" (p "name") (Term.str "b") ] in
  let joined =
    Ops.alpha_join
      ~left:[ Joined.of_tg 0 group_tg ]
      ~right:[ Joined.of_tg 1 m1; Joined.of_tg 1 m2 ]
      ~left_key:{ Ops.star = 0; access = `ObjectOf member }
      ~right_key:{ Ops.star = 1; access = `Subject }
      ~alphas:[]
  in
  check_int "joins both members" 2 (List.length joined)

(* Figure 5: Agg-Join with base triplegroups (grouping keys), a theta
   condition on (feature, country) values, and an alpha requiring pf. *)
let test_agg_join_figure5 () =
  let pf = p "pf" and cn = p "cn" and pc = p "pc" in
  (* Detail triplegroups: (feature, country, price); dtg2 lacks pf. *)
  let dtg1 = tg "d1" [ t "d1" pf (iri "Feat1"); t "d1" cn (Term.str "UK"); t "d1" pc (Term.int 100) ] in
  let dtg2 = tg "d2" [ t "d2" cn (Term.str "UK"); t "d2" pc (Term.int 200) ] in
  let dtg3 = tg "d3" [ t "d3" pf (iri "Feat2"); t "d3" cn (Term.str "DE"); t "d3" pc (Term.int 300) ] in
  let dtg4 = tg "d4" [ t "d4" pf (iri "Feat1"); t "d4" cn (Term.str "UK"); t "d4" pc (Term.int 50) ] in
  (* Base: distinct (feature, country) keys, one with an empty range. *)
  let base = [ (iri "Feat1", "UK"); (iri "Feat2", "DE"); (iri "Feat9", "FR") ] in
  let theta (f, c) (d : Triplegroup.t) =
    List.exists (Term.equal f) (Triplegroup.objects_of d pf)
    && List.exists (Term.equal (Term.str c)) (Triplegroup.objects_of d cn)
  in
  let alpha d = Triplegroup.has_prop d pf in
  let inputs _ d =
    (* one row per price value; each aggregation takes the price *)
    List.map (fun v -> [ Some v; Some v ]) (Triplegroup.objects_of d pc)
  in
  let results =
    Ops.agg_join ~base ~detail:[ dtg1; dtg2; dtg3; dtg4 ] ~theta ~alpha
      ~inputs ~aggs:[ (Ast.Sum, false); (Ast.Count, false) ]
  in
  check_int "one result per base" 3 (List.length results);
  let find key =
    List.assoc key results
  in
  (match find (iri "Feat1", "UK") with
  | [ Some sum; Some count ] ->
    Alcotest.(check string) "sumF Feat1-UK" "150" (Term.lexical sum);
    Alcotest.(check string) "countF Feat1-UK" "2" (Term.lexical count)
  | _ -> Alcotest.fail "expected sum and count");
  (match find (iri "Feat2", "DE") with
  | [ Some sum; _ ] -> Alcotest.(check string) "sumF Feat2-DE" "300" (Term.lexical sum)
  | _ -> Alcotest.fail "expected sum");
  (* Empty range keeps default values (MD-join semantics). *)
  match find (iri "Feat9", "FR") with
  | [ sum; Some count ] ->
    check_bool "empty sum default" true (sum = Some (Term.int 0));
    Alcotest.(check string) "empty count" "0" (Term.lexical count)
  | _ -> Alcotest.fail "expected defaults"

(* tg_match: multi-valued properties unfold into several bindings. *)
let test_tg_match_multivalued () =
  let pf = p "pf" in
  let g = tg "s" [ t "s" pf (iri "f1"); t "s" pf (iri "f2"); t "s" price (Term.int 9) ] in
  let star =
    List.hd
      (Star.decompose
         [ { Ast.tp_s = Ast.Nvar "s"; tp_p = Ast.Nterm pf; tp_o = Ast.Nvar "f" };
           { Ast.tp_s = Ast.Nvar "s"; tp_p = Ast.Nterm price; tp_o = Ast.Nvar "pr" } ])
  in
  let bindings = Tg_match.star_bindings star g in
  check_int "two bindings" 2 (List.length bindings);
  check_bool "matches" true (Tg_match.matches_star star g)

let test_tg_match_constant_object () =
  let star =
    List.hd
      (Star.decompose
         [ { Ast.tp_s = Ast.Nvar "s"; tp_p = Ast.Nterm product; tp_o = Ast.Nterm (iri "p1") } ])
  in
  check_bool "tg1 matches product=p1" true (Tg_match.matches_star star tg1);
  check_bool "tg2 does not" false (Tg_match.matches_star star tg2)

(* Tg_store: equivalence-class partitioning and scan pruning. *)
let test_tg_store () =
  let g = Graph.of_list (List.concat_map (fun x -> x.Triplegroup.triples) inputs) in
  let store = Tg_store.of_graph g in
  let n, bytes = Tg_store.stats store in
  check_bool "several partitions" true (n >= 3);
  check_bool "bytes positive" true (bytes > 0);
  let with_price = Tg_store.scan store ~required:[ product; price ] in
  check_int "price scan skips tg3" 3 (List.length with_price);
  let pruned = Tg_store.scan_bytes store ~required:[ product; price ] in
  let all = Tg_store.scan_bytes store ~required:[] in
  check_bool "scan pruning reads less" true (pruned < all);
  check_int "scan all" 4 (List.length (Tg_store.all store))

let test_joined () =
  let j = Joined.join (Joined.of_tg 0 tg1) (Joined.of_tg 1 tg2) in
  check_int "two parts" 2 (List.length j.Joined.parts);
  check_bool "part lookup" true (Joined.part j 1 <> None);
  check_bool "has_prop across parts" true (Joined.has_prop j valid_from);
  Alcotest.check_raises "duplicate star index"
    (Invalid_argument "Joined.join: duplicate star index") (fun () ->
      ignore (Joined.join (Joined.of_tg 0 tg1) (Joined.of_tg 0 tg2)))

let suite =
  [
    Alcotest.test_case "triplegroup basics" `Quick test_triplegroup_basics;
    Alcotest.test_case "of_graph" `Quick test_of_graph;
    Alcotest.test_case "optional group filter (Fig 4a)" `Quick test_opt_group_filter_figure4a;
    Alcotest.test_case "optional group filter projects" `Quick test_opt_group_filter_projects;
    Alcotest.test_case "group filter object constraint" `Quick test_group_filter_object_constraint;
    Alcotest.test_case "n-split (Fig 4b)" `Quick test_n_split_figure4b;
    Alcotest.test_case "n-split empty secondary (Fig 4c)" `Quick test_n_split_empty_sec;
    Alcotest.test_case "alpha conditions (Table 2)" `Quick test_alpha_table2;
    Alcotest.test_case "alpha-join" `Quick test_alpha_join;
    Alcotest.test_case "alpha-join multi-valued key" `Quick test_alpha_join_multivalued_key;
    Alcotest.test_case "Agg-Join (Fig 5)" `Quick test_agg_join_figure5;
    Alcotest.test_case "tg match multi-valued" `Quick test_tg_match_multivalued;
    Alcotest.test_case "tg match constant object" `Quick test_tg_match_constant_object;
    Alcotest.test_case "tg store" `Quick test_tg_store;
    Alcotest.test_case "joined triplegroups" `Quick test_joined;
  ]
