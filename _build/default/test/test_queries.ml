(* Query catalog: every entry parses to the analytical normal form, and
   the Figure 7 structure metadata (triple patterns per star) matches the
   actual decomposition of the SPARQL text — the catalog is
   self-describing and self-checked. *)

module Catalog = Rapida_queries.Catalog
module Analytical = Rapida_sparql.Analytical
module Star = Rapida_sparql.Star

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_all_parse () =
  List.iter
    (fun entry ->
      match Analytical.parse entry.Catalog.sparql with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s does not parse: %s" entry.Catalog.id e)
    Catalog.all

let test_counts () =
  check_int "9 single-grouping queries" 9 (List.length Catalog.single_grouping);
  check_int "17 multi-grouping queries" 17 (List.length Catalog.multi_grouping);
  check_bool "MG5 skipped as in the paper" true (Catalog.find "MG5" = None)

let test_find () =
  check_bool "find known" true (Catalog.find "MG1" <> None);
  check_bool "find unknown" true (Catalog.find "MG99" = None);
  Alcotest.check_raises "find_exn unknown" (Failure "unknown catalog query MG99")
    (fun () -> ignore (Catalog.find_exn "MG99"))

let test_datasets () =
  check_int "bsbm queries" 8 (List.length (Catalog.by_dataset Catalog.Bsbm));
  check_int "chem queries" 10 (List.length (Catalog.by_dataset Catalog.Chem2bio));
  check_int "pubmed queries" 8 (List.length (Catalog.by_dataset Catalog.Pubmed))

(* "3:2 vs 2:2" -> [[3;2];[2;2]]: triple patterns per star, per pattern. *)
let parse_structure s =
  String.split_on_char 'v' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         let part =
           if String.length part > 0 && part.[0] = 's' then
             String.trim (String.sub part 1 (String.length part - 1))
           else part
         in
         if part = "" then None
         else
           Some
             (String.split_on_char ':' part
             |> List.map (fun n -> int_of_string (String.trim n))))

let test_structure_metadata_matches () =
  List.iter
    (fun entry ->
      let q = Catalog.parse entry in
      let actual =
        List.map
          (fun (sq : Analytical.subquery) ->
            List.map
              (fun (s : Star.t) -> List.length s.Star.patterns)
              sq.Analytical.stars)
          q.Analytical.subqueries
      in
      let declared = parse_structure entry.Catalog.structure in
      Alcotest.(check (list (list int)))
        (entry.Catalog.id ^ " structure")
        declared actual)
    Catalog.all

let test_grouping_metadata_consistent () =
  (* "ALL" in the grouping summary means an empty GROUP BY somewhere. *)
  List.iter
    (fun entry ->
      let q = Catalog.parse entry in
      let has_all =
        List.exists
          (fun (sq : Analytical.subquery) -> sq.Analytical.group_by = [])
          q.Analytical.subqueries
      in
      let declares_all =
        let g = entry.Catalog.grouping in
        let rec contains i =
          i + 3 <= String.length g && (String.sub g i 3 = "ALL" || contains (i + 1))
        in
        contains 0
      in
      check_bool (entry.Catalog.id ^ " ALL consistency") declares_all has_all)
    Catalog.all

let test_figure7_renders () =
  let s = Fmt.str "%a" Catalog.pp_figure7 () in
  check_bool "mentions MG1" true
    (let rec contains i =
       i + 3 <= String.length s && (String.sub s i 3 = "MG1" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "all queries parse" `Quick test_all_parse;
    Alcotest.test_case "catalog counts" `Quick test_counts;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "datasets" `Quick test_datasets;
    Alcotest.test_case "Figure 7 structure matches SPARQL" `Quick
      test_structure_metadata_matches;
    Alcotest.test_case "grouping metadata consistent" `Quick
      test_grouping_metadata_consistent;
    Alcotest.test_case "Figure 7 renders" `Quick test_figure7_renders;
  ]
