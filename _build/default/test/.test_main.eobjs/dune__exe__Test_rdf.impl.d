test/test_rdf.ml: Alcotest Dictionary Filename Fun Graph List Ntriples Printf QCheck2 QCheck_alcotest Rapida_rdf String Sys Term Triple
