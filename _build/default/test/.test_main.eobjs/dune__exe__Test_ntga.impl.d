test/test_ntga.ml: Alcotest Joined List Ops Rapida_ntga Rapida_rdf Rapida_sparql Tg_match Tg_store Triplegroup
