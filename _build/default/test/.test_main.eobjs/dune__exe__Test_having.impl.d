test/test_having.ml: Alcotest List Rapida_core Rapida_rdf Rapida_ref Rapida_relational Rapida_sparql
