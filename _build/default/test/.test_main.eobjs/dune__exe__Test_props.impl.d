test/test_props.ml: List Printf QCheck2 QCheck_alcotest Rapida_core Rapida_rdf Rapida_ref Rapida_relational Rapida_sparql String
