test/test_refengine.ml: Alcotest Array List Rapida_core Rapida_rdf Rapida_ref Rapida_relational Rapida_sparql
