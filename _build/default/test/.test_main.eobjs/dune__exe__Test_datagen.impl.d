test/test_datagen.ml: Alcotest Array List Rapida_datagen Rapida_rdf
