test/test_mapred.ml: Alcotest List Printf QCheck2 QCheck_alcotest Rapida_mapred String
