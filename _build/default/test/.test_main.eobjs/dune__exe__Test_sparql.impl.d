test/test_sparql.ml: Aggregate Alcotest Analytical Ast Binding Float Lexer List Option Parser Printf QCheck2 QCheck_alcotest Rapida_rdf Rapida_sparql Star
