test/test_ablations.ml: Alcotest Lazy List Rapida_core Rapida_datagen Rapida_mapred Rapida_queries Rapida_relational
