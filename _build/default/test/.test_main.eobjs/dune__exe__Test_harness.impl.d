test/test_harness.ml: Alcotest Fmt Lazy List Option Rapida_core Rapida_datagen Rapida_harness Rapida_queries String
