test/test_relational.ml: Alcotest Array List Option QCheck2 QCheck_alcotest Rapida_mapred Rapida_rdf Rapida_relational Rapida_sparql
