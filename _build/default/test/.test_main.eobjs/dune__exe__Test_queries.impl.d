test/test_queries.ml: Alcotest Fmt List Rapida_queries Rapida_sparql String
