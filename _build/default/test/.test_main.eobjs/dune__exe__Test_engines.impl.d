test/test_engines.ml: Alcotest Fmt Hashtbl Lazy List Printf Rapida_core Rapida_datagen Rapida_mapred Rapida_queries Rapida_ref Rapida_relational
