test/test_overlap.ml: Alcotest List Rapida_core Rapida_ntga Rapida_queries Rapida_rdf Rapida_sparql
