(* Data generators: determinism, schema coverage, uniqueness (the MQO
   extraction's DISTINCT relies on set-semantics graphs), and the anchors
   the catalog queries depend on. *)

module Graph = Rapida_rdf.Graph
module Triple = Rapida_rdf.Triple
module Term = Rapida_rdf.Term
module Namespace = Rapida_rdf.Namespace
module Bsbm = Rapida_datagen.Bsbm
module Chem2bio = Rapida_datagen.Chem2bio
module Pubmed = Rapida_datagen.Pubmed
module Prng = Rapida_datagen.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let triples_sorted g = List.sort Triple.compare (Graph.triples g)

let no_duplicates g =
  let sorted = triples_sorted g in
  let rec go = function
    | a :: (b :: _ as rest) -> if Triple.equal a b then false else go rest
    | [ _ ] | [] -> true
  in
  go sorted

let has_property g name =
  List.exists
    (fun p -> Term.equal p (Term.iri (Namespace.bench ^ name)))
    (Graph.properties g)

let test_prng_deterministic () =
  let seq seed = List.init 20 (fun _ -> Prng.int (Prng.create ~seed) 100) in
  Alcotest.(check (list int)) "same seed same stream" (seq 5) (seq 5);
  check_bool "different seeds differ" true
    (List.init 50 (fun i -> Prng.int (Prng.create ~seed:1) (i + 2))
    <> List.init 50 (fun i -> Prng.int (Prng.create ~seed:2) (i + 2)))

let test_prng_ranges () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check_bool "int in range" true (v >= 0 && v < 7);
    let f = Prng.float rng 2.0 in
    check_bool "float in range" true (f >= 0.0 && f < 2.0);
    let z = Prng.zipf rng 5 ~skew:1.0 in
    check_bool "zipf in range" true (z >= 0 && z < 5)
  done

let test_prng_zipf_skew () =
  let rng = Prng.create ~seed:12 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let i = Prng.zipf rng 10 ~skew:1.2 in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "head heavier than tail" true (counts.(0) > 3 * counts.(9))

let test_bsbm () =
  let g1 = Bsbm.(generate (config ~products:100 ())) in
  let g2 = Bsbm.(generate (config ~products:100 ())) in
  check_int "deterministic" 0
    (List.compare Triple.compare (triples_sorted g1) (triples_sorted g2));
  check_bool "no duplicate triples" true (no_duplicates g1);
  List.iter
    (fun p -> check_bool (p ^ " present") true (has_property g1 p))
    [ "label"; "productFeature"; "product"; "price"; "vendor"; "country" ];
  (* Skew: ProductType1 common, ProductType9 rare. *)
  let count_type i =
    List.length
      (List.filter
         (fun (t : Triple.t) ->
           Term.equal t.p Namespace.rdf_type
           && Term.equal t.o (Bsbm.product_type i))
         (Graph.triples g1))
  in
  check_bool "type1 low selectivity" true (count_type 1 > count_type 9);
  check_bool "type9 exists" true (count_type 9 > 0)

let test_bsbm_scales () =
  let small = Bsbm.(generate (config ~products:50 ())) in
  let large = Bsbm.(generate (config ~products:200 ())) in
  check_bool "scale grows" true (Graph.size large > 2 * Graph.size small)

let test_chem2bio () =
  let g = Chem2bio.(generate (config ~compounds:80 ())) in
  check_bool "no duplicate triples" true (no_duplicates g);
  List.iter
    (fun p -> check_bool (p ^ " present") true (has_property g p))
    [ "CID"; "outcome"; "Score"; "gi"; "geneSymbol"; "gene"; "DBID";
      "Generic_Name"; "protein"; "Pathway_name"; "pathwayid"; "side_effect";
      "cid"; "disease" ];
  (* Anchors the catalog queries rely on. *)
  let has_literal name =
    List.exists
      (fun (t : Triple.t) -> Term.lexical t.o = name)
      (Graph.triples g)
  in
  check_bool "known drug" true (has_literal Chem2bio.known_drug_name);
  check_bool "MAPK pathway" true (has_literal Chem2bio.known_pathway_fragment);
  check_bool "hepatomegaly" true (has_literal Chem2bio.known_side_effect)

let test_pubmed () =
  let g = Pubmed.(generate (config ~publications:200 ())) in
  check_bool "no duplicate triples" true (no_duplicates g);
  List.iter
    (fun p -> check_bool (p ^ " present") true (has_property g p))
    [ "journal"; "pub_type"; "author"; "grant"; "mesh_heading"; "chemical";
      "grant_agency"; "grant_country"; "last_name" ];
  let count_pub_type name =
    List.length
      (List.filter
         (fun (t : Triple.t) -> Term.lexical t.o = name)
         (Graph.by_property g (Term.iri (Namespace.bench ^ "pub_type"))))
  in
  check_bool "journal articles common" true
    (count_pub_type Pubmed.common_pub_type > 3 * count_pub_type Pubmed.rare_pub_type);
  check_bool "news present" true (count_pub_type Pubmed.rare_pub_type > 0)

let test_seed_changes_data () =
  let a = Bsbm.(generate (config ~seed:1 ~products:50 ())) in
  let b = Bsbm.(generate (config ~seed:2 ~products:50 ())) in
  check_bool "different seeds differ" true
    (List.compare Triple.compare (triples_sorted a) (triples_sorted b) <> 0)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "prng zipf skew" `Quick test_prng_zipf_skew;
    Alcotest.test_case "bsbm generator" `Quick test_bsbm;
    Alcotest.test_case "bsbm scales" `Quick test_bsbm_scales;
    Alcotest.test_case "chem2bio generator" `Quick test_chem2bio;
    Alcotest.test_case "pubmed generator" `Quick test_pubmed;
    Alcotest.test_case "seed changes data" `Quick test_seed_changes_data;
  ]
