  $ alias rapida='../../bin/rapida_cli.exe'
  $ rapida gen -d bsbm -n 30 --seed 7 -o data.nt
  $ rapida stats data.nt | head -2
  $ rapida query -d data.nt -c G1 --verify
  $ rapida query -d data.nt -c G1 -e hive-naive --verify | tail -1
  $ rapida explain -c MG1 | grep -c "OVERLAP"
  $ rapida explain -c MG1 | tail -5
  $ rapida catalog | head -3
  $ rapida query -d data.nt -c NOPE
  $ cat > top.rq <<'RQ'
  > SELECT ?f (SUM(?pr) AS ?rev) {
  >   ?p a ProductType1 . ?p productFeature ?f .
  >   ?off product ?p . ?off price ?pr .
  > } GROUP BY ?f ORDER BY DESC(?rev) LIMIT 2
  > RQ
  $ rapida query -d data.nt -q top.rq --verify | head -2
  $ rapida query -d data.nt -c G1 -v 2>&1 | grep -c "DEBUG"
