(** NTGA physical operators over the MapReduce simulator (paper §4,
    Algorithms 1–3).

    [join_cycle] is one MR cycle combining map-side triplegroup filtering
    (TG_OptGrpFilter pipelined into the map phase, Algorithm 1) with the
    reduce-side TG_AlphaJoin (Algorithm 2). [agg_cycle] is the TG_AgJ
    operator (Algorithm 3): several independent Agg-Joins evaluated in the
    same cycle, with hash-based partial aggregation standing in for the
    per-mapper combiner. *)

module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Triplegroup = Rapida_ntga.Triplegroup
module Joined = Rapida_ntga.Joined
module Ops = Rapida_ntga.Ops
module Workflow = Rapida_mapred.Workflow
module Table = Rapida_relational.Table

(** One side of a triplegroup join: either raw triplegroups refined
    map-side (group filter + projection; [None] = filtered out) and tagged
    with the star index they match, or the joined output of a previous
    cycle. *)
type source =
  | Tgs of {
      tgs : Triplegroup.t list;
      refine : Triplegroup.t -> Triplegroup.t option;
      star : int;
    }
  | Pre of Joined.t list

(** [join_cycle wf ~name ~left ~right ~left_key ~right_key ~keep] runs one
    MR cycle joining the two sources on their key values, keeping only
    combined triplegroups for which [keep] holds (the α-condition test). *)
val join_cycle :
  Workflow.t -> name:string -> left:source -> right:source ->
  left_key:Ops.join_key -> right_key:Ops.join_key ->
  keep:(Joined.t -> bool) -> Joined.t list

(** One Agg-Join of a multi-aggregation cycle. [stars] maps joined-part
    indexes to the original star patterns whose bindings drive the
    grouping (the n-split, performed implicitly per Algorithm 3). *)
type agj = {
  agj_id : int;
  stars : (int * Star.t) list;
  filters : Ast.expr list;
  group_by : Ast.var list;
  aggregates : Analytical.aggregate list;
  alpha : Joined.t -> bool;
}

(** [agg_cycle wf ~name ~combiner ~input agjs] evaluates all Agg-Joins
    over the same detail input in a single MR cycle and returns one
    result table per Agg-Join (schema: group variables then aggregate
    outputs), in [agjs] order. [combiner] enables the per-mapper
    hash-based partial aggregation of Algorithm 3. *)
val agg_cycle :
  Workflow.t -> name:string -> combiner:bool -> input:Joined.t list ->
  agj list -> Table.t list
