open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical

type star_check = {
  left_star : int;
  right_star : int;
  shared_props : Term.t list;
  type_objects_ok : bool;
  constants_ok : bool;
  ok : bool;
}

type failure =
  | Unbound_property of int * int
  | Star_count_mismatch of int * int
  | No_matching_star of int
  | Edge_count_mismatch of int * int
  | Edge_not_role_equivalent of string

type report = {
  pairs : (int * int) list;
  star_checks : star_check list;
  failures : failure list;
}

let has_unbound_property (star : Star.t) =
  List.exists
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p with Ast.Nvar _ -> true | Ast.Nterm _ -> false)
    star.patterns

(* Constant objects per property of a star, e.g. (rdf:type, PT18) or
   (pub_type, "News"). *)
let constants (star : Star.t) =
  List.filter_map
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p, tp.tp_o with
      | Ast.Nterm p, Ast.Nterm o -> Some (p, o)
      | _ -> None)
    star.patterns

let shared_props a b =
  List.filter (fun p -> List.exists (Term.equal p) (Star.props b)) (Star.props a)

(* Def. 3.1's rdf:type condition: every type object of [a] occurs among
   the type objects of [b]. *)
let type_objects_subset a b =
  let tb = Star.type_objects b in
  List.for_all (fun o -> List.exists (Term.equal o) tb) (Star.type_objects a)

(* Generalization for constant objects on shared properties: the two stars
   must impose identical constraints, else the property-set abstraction of
   the composite pattern would conflate different selections. *)
let constants_agree a b =
  let shared = shared_props a b in
  let on_shared star =
    List.filter (fun (p, _) -> List.exists (Term.equal p) shared)
      (constants star)
    |> List.sort compare
  in
  on_shared a = on_shared b

let check_star_pair (a : Star.t) (b : Star.t) =
  let shared = shared_props a b in
  let type_ok = type_objects_subset a b && type_objects_subset b a in
  let const_ok = constants_agree a b in
  {
    left_star = a.id;
    right_star = b.id;
    shared_props = shared;
    type_objects_ok = type_ok;
    constants_ok = const_ok;
    ok = shared <> [] && type_ok && const_ok;
  }

(* Greedy one-to-one matching: each left star takes the unmatched right
   star with the largest shared-property set among valid pairs. *)
let match_stars lefts rights =
  let checks = ref [] in
  let taken = Hashtbl.create 8 in
  let pairs =
    List.filter_map
      (fun (a : Star.t) ->
        let candidates =
          List.filter_map
            (fun (b : Star.t) ->
              if Hashtbl.mem taken b.id then None
              else
                let c = check_star_pair a b in
                checks := c :: !checks;
                if c.ok then Some (b, List.length c.shared_props) else None)
            rights
        in
        match
          List.sort (fun (_, s1) (_, s2) -> Int.compare s2 s1) candidates
        with
        | (best, _) :: _ ->
          Hashtbl.add taken best.id ();
          Some (a.id, best.id)
        | [] -> None)
      lefts
  in
  (pairs, List.rev !checks)

let role_to_string = function
  | Star.Subject -> "subject"
  | Star.Property -> "property"
  | Star.Object -> "object"

let endpoint_equiv (l : Star.endpoint) (r : Star.endpoint) =
  l.role = r.role
  &&
  match l.role with
  | Star.Subject -> true
  | Star.Object | Star.Property -> (
    match l.prop, r.prop with
    | Some p, Some q -> Term.equal p q
    | _ -> false)

(* Find the right-pattern edge between the images of the left edge's
   endpoints and test role-equivalence (Def. 3.2). *)
let edge_match pairs (le : Star.edge) right_edges =
  let image star = List.assoc_opt star pairs in
  match image le.left.star, image le.right.star with
  | Some li, Some ri ->
    let candidates =
      List.filter
        (fun (re : Star.edge) ->
          (re.left.star = li && re.right.star = ri)
          || (re.left.star = ri && re.right.star = li))
        right_edges
    in
    let equiv (re : Star.edge) =
      if re.left.star = li then
        endpoint_equiv le.left re.left && endpoint_equiv le.right re.right
      else endpoint_equiv le.left re.right && endpoint_equiv le.right re.left
    in
    if List.exists equiv candidates then Ok ()
    else
      Error
        (Fmt.str
           "join on ?%s between stars %d-%d has no role-equivalent \
            counterpart (%s/%s side roles must match and joining triple \
            patterns must agree on the property)"
           le.var le.left.star le.right.star
           (role_to_string le.left.role)
           (role_to_string le.right.role))
  | _ -> Error "edge endpoints were not matched to composite stars"

let check (left : Analytical.subquery) (right : Analytical.subquery) =
  let failures = ref [] in
  let fail f = failures := f :: !failures in
  List.iter
    (fun (s : Star.t) ->
      if has_unbound_property s then fail (Unbound_property (left.sq_id, s.id)))
    left.stars;
  List.iter
    (fun (s : Star.t) ->
      if has_unbound_property s then fail (Unbound_property (right.sq_id, s.id)))
    right.stars;
  let nl = List.length left.stars and nr = List.length right.stars in
  if nl <> nr then fail (Star_count_mismatch (nl, nr));
  let pairs, star_checks = match_stars left.stars right.stars in
  List.iter
    (fun (s : Star.t) ->
      if not (List.mem_assoc s.id pairs) then fail (No_matching_star s.id))
    left.stars;
  let el = List.length left.edges and er = List.length right.edges in
  if el <> er then fail (Edge_count_mismatch (el, er));
  if !failures = [] then
    List.iter
      (fun e ->
        match edge_match pairs e right.edges with
        | Ok () -> ()
        | Error msg -> fail (Edge_not_role_equivalent msg))
      left.edges;
  { pairs; star_checks; failures = List.rev !failures }

let overlaps report = report.failures = []

let pp_failure ppf = function
  | Unbound_property (p, s) ->
    Fmt.pf ppf "pattern %d star %d has an unbound property (out of scope)" p s
  | Star_count_mismatch (l, r) ->
    Fmt.pf ppf "star count mismatch: %d vs %d" l r
  | No_matching_star s ->
    Fmt.pf ppf "star %d overlaps no star of the other pattern" s
  | Edge_count_mismatch (l, r) ->
    Fmt.pf ppf "join-edge count mismatch: %d vs %d" l r
  | Edge_not_role_equivalent msg -> Fmt.string ppf msg

let pp_check ppf c =
  Fmt.pf ppf "Stp%d vs Stp%d: shared={%a} type-objects:%s constants:%s => %s"
    c.left_star c.right_star
    (Fmt.list ~sep:Fmt.comma Term.pp)
    c.shared_props
    (if c.type_objects_ok then "ok" else "MISMATCH")
    (if c.constants_ok then "ok" else "MISMATCH")
    (if c.ok then "overlap" else "no overlap")

let pp_report ppf r =
  if r.failures = [] then
    Fmt.pf ppf "@[<v>patterns OVERLAP@ %a@]"
      (Fmt.list ~sep:Fmt.cut pp_check)
      r.star_checks
  else
    Fmt.pf ppf "@[<v>patterns DO NOT overlap:@ %a@]"
      (Fmt.list ~sep:Fmt.cut pp_failure)
      r.failures
