module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical

(* Joining n aggregated subquery results takes n-1 (map-only) cycles. *)
let final_join_cycles q = max 0 (List.length q.Analytical.subqueries - 1)

(* Hive merges all same-key joins of one star into a single MR cycle, so a
   star costs a cycle only when it has at least two triple patterns; each
   inter-star join edge is one more cycle; grouping is one cycle per
   subquery; the aggregated results are joined in one final (map-only)
   cycle when there are several subqueries. *)
let hive_naive_cycles q =
  let per_subquery (sq : Analytical.subquery) =
    let star_cycles =
      List.length
        (List.filter
           (fun (s : Star.t) -> List.length s.Star.patterns >= 2)
           sq.Analytical.stars)
    in
    let join_cycles = max 0 (List.length sq.Analytical.stars - 1) in
    star_cycles + join_cycles + 1
  in
  List.fold_left (fun acc sq -> acc + per_subquery sq) 0 q.Analytical.subqueries
  + final_join_cycles q

(* MQO evaluates the composite pattern once (same star/join structure as
   one pattern, counting composite triples), then per original pattern one
   distinct-extraction cycle and one aggregation cycle, then the final
   join. Falls back to the naive plan when the rewriting does not apply. *)
let hive_mqo_cycles q =
  match Composite.build q.Analytical.subqueries with
  | Error _ -> hive_naive_cycles q
  | Ok composite ->
    let star_cycles =
      List.length
        (List.filter
           (fun (s : Composite.star) -> List.length s.Composite.ctps >= 2)
           composite.Composite.stars)
    in
    let join_cycles = max 0 (List.length composite.Composite.stars - 1) in
    let per_pattern = 2 * List.length q.Analytical.subqueries in
    star_cycles + join_cycles + per_pattern + final_join_cycles q

(* NTGA star formation happens map-side over the pre-grouped triplegroup
   store, so a k-star pattern needs k-1 join cycles and one
   grouping-aggregation cycle. *)
let rapid_plus_cycles q =
  let per_subquery (sq : Analytical.subquery) =
    max 0 (List.length sq.Analytical.stars - 1) + 1
  in
  List.fold_left (fun acc sq -> acc + per_subquery sq) 0 q.Analytical.subqueries
  + final_join_cycles q

(* RAPIDAnalytics evaluates the composite pattern once (k-1 join cycles)
   and all aggregations in one parallel Agg-Join cycle. *)
let rapid_analytics_cycles q =
  match Composite.build q.Analytical.subqueries with
  | Error _ -> rapid_plus_cycles q
  | Ok composite ->
    max 0 (List.length composite.Composite.stars - 1)
    + 1
    + final_join_cycles q

let predict kind q =
  match kind with
  | Engine.Hive_naive -> hive_naive_cycles q
  | Engine.Hive_mqo -> hive_mqo_cycles q
  | Engine.Rapid_plus -> rapid_plus_cycles q
  | Engine.Rapid_analytics -> rapid_analytics_cycles q

let describe q =
  String.concat "\n"
    (List.map
       (fun kind ->
         Printf.sprintf "%-16s %d MR cycles" (Engine.kind_name kind)
           (predict kind q))
       Engine.all_kinds)
