(** GROUPING SETS / ROLLUP / CUBE over RDF graph patterns — the "more
    complex OLAP queries" extension the paper's conclusion points to.

    A grouping-sets query is one graph pattern aggregated under several
    groupings. Expansion produces one subquery per grouping set, with
    non-grouping variables renamed apart so the subqueries stay
    independent; since every subquery shares the full pattern, they
    trivially overlap (Def. 3.2) and RAPIDAnalytics evaluates all the
    groupings with one composite pattern and a single parallel Agg-Join
    cycle — the NTGA counterpart of MR-Cube-style shared cube
    computation. *)

module Ast = Rapida_sparql.Ast
module Analytical = Rapida_sparql.Analytical

(** [expand sq ~sets] builds the analytical query computing [sq]'s
    aggregations once per grouping set. Aggregate output names are
    suffixed with the set index ([out_0], [out_1], …); grouping variables
    keep their names across subqueries (they are the outer join keys).
    Errors when a set contains a variable the pattern does not bind, or
    [sets] is empty. *)
val expand :
  Analytical.subquery -> sets:Ast.var list list -> (Analytical.t, string) result

(** [rollup sq ~dims] is [expand] with the prefix sets of [dims]:
    [[d1; …; dn]; [d1; …; d(n-1)]; …; []] — drill-up totals. *)
val rollup :
  Analytical.subquery -> dims:Ast.var list -> (Analytical.t, string) result

(** [cube sq ~dims] is [expand] over every subset of [dims] (2^n sets,
    largest first). *)
val cube :
  Analytical.subquery -> dims:Ast.var list -> (Analytical.t, string) result
