(** Engine dispatch: the four evaluation strategies the paper compares,
    behind one interface. *)

open Rapida_rdf
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats

type kind = Hive_naive | Hive_mqo | Rapid_plus | Rapid_analytics

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_string : string -> kind option

(** Prepared inputs: both storage layouts are built lazily from the graph
    so a benchmark can prepare once and run many queries. *)
type input

val input_of_graph : Graph.t -> input
val graph_of_input : input -> Graph.t

type output = { table : Table.t; stats : Stats.t }

(** [run kind options input query] evaluates an analytical query with the
    chosen engine. *)
val run :
  kind -> Plan_util.options -> input -> Analytical.t ->
  (output, string) result

(** [run_sparql kind options input src] parses and runs. *)
val run_sparql :
  kind -> Plan_util.options -> input -> string -> (output, string) result
