(** Overlap detection between graph patterns (paper Defs. 3.1 and 3.2).

    Two star patterns overlap when they share properties and agree on
    their rdf:type objects (Def. 3.1) — generalized here to agreement on
    every constant-object constraint over shared properties. Two graph
    patterns overlap when their stars pair up one-to-one by star overlap
    and the join variables of corresponding star pairs are role-equivalent
    (Def. 3.2). The report records the same evidence the paper tabulates
    in Figure 3, so `explain` output can show the user why a rewriting did
    or did not apply. *)

open Rapida_rdf
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical

type star_check = {
  left_star : int;
  right_star : int;
  shared_props : Term.t list;  (** L = props(Stp_a) ∩ props(Stp_α) *)
  type_objects_ok : bool;  (** rdf:type objects agree (Def. 3.1) *)
  constants_ok : bool;  (** constant objects on shared properties agree *)
  ok : bool;
}

type failure =
  | Unbound_property of int * int  (** (pattern id, star id) *)
  | Star_count_mismatch of int * int
  | No_matching_star of int  (** left star with no overlapping partner *)
  | Edge_count_mismatch of int * int
  | Edge_not_role_equivalent of string  (** human-readable evidence *)

type report = {
  pairs : (int * int) list;  (** left star id -> matched right star id *)
  star_checks : star_check list;
  failures : failure list;
}

(** [check left right] analyzes whether graph pattern [left] overlaps
    [right]. *)
val check : Analytical.subquery -> Analytical.subquery -> report

(** [overlaps report] holds when no failure was recorded. *)
val overlaps : report -> bool

val pp_failure : failure Fmt.t
val pp_report : report Fmt.t
