(** Static MR-cycle prediction per engine, from query structure alone.

    The paper reasons about its evaluation in terms of workflow lengths
    ("Hive requires 4 MR cycles…, RAPIDAnalytics executes all four
    queries in 2 cycles"); this module encodes those formulas so that the
    CLI can explain a plan without data, and so the test suite can assert
    that every engine's executed workflow has exactly the predicted
    length on every catalog query. *)

module Analytical = Rapida_sparql.Analytical

(** [predict kind q] is the number of MR cycles (full + map-only) engine
    [kind] uses for [q]. Matches {!Rapida_mapred.Stats.cycles} of the
    executed workflow. *)
val predict : Engine.kind -> Analytical.t -> int

(** [describe q] renders the per-engine predictions. *)
val describe : Analytical.t -> string
