module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical

let pattern_vars (sq : Analytical.subquery) =
  List.concat_map Ast.pattern_vars sq.Analytical.bgp
  |> List.sort_uniq String.compare

(* Rename the variables of one expansion apart, except the variables every
   set may group on (kept stable so the outer natural join lines up). *)
let rename_subquery keep idx (sq : Analytical.subquery) =
  let rename v = if List.mem v keep then v else Printf.sprintf "%s_gs%d" v idx in
  let rename_node = function
    | Ast.Nvar v -> Ast.Nvar (rename v)
    | Ast.Nterm _ as n -> n
  in
  let rename_tp (tp : Ast.triple_pattern) =
    {
      Ast.tp_s = rename_node tp.tp_s;
      tp_p = rename_node tp.tp_p;
      tp_o = rename_node tp.tp_o;
    }
  in
  let rec rename_expr = function
    | Ast.Evar v -> Ast.Evar (rename v)
    | Ast.Eterm _ as e -> e
    | Ast.Ebin (op, a, b) -> Ast.Ebin (op, rename_expr a, rename_expr b)
    | Ast.Enot e -> Ast.Enot (rename_expr e)
    | Ast.Eagg (f, arg, d) -> Ast.Eagg (f, Option.map rename_expr arg, d)
    | Ast.Eregex (e, p, fl) -> Ast.Eregex (rename_expr e, p, fl)
  in
  let bgp = List.map rename_tp sq.Analytical.bgp in
  let stars = Star.decompose bgp in
  {
    sq with
    Analytical.sq_id = idx;
    bgp;
    stars;
    edges = Star.edges stars;
    filters = List.map rename_expr sq.Analytical.filters;
    having =
      (let rename_out v =
         if
           List.exists
             (fun (a : Analytical.aggregate) -> a.Analytical.out = v)
             sq.Analytical.aggregates
         then Printf.sprintf "%s_%d" v idx
         else rename v
       in
       let rec go = function
         | Ast.Evar v -> Ast.Evar (rename_out v)
         | Ast.Eterm _ as e -> e
         | Ast.Ebin (op, a, b) -> Ast.Ebin (op, go a, go b)
         | Ast.Enot e -> Ast.Enot (go e)
         | Ast.Eagg (f, arg, d) -> Ast.Eagg (f, Option.map go arg, d)
         | Ast.Eregex (e, p, fl) -> Ast.Eregex (go e, p, fl)
       in
       List.map go sq.Analytical.having);
    aggregates =
      List.map
        (fun (a : Analytical.aggregate) ->
          { a with
            Analytical.arg = Option.map rename a.Analytical.arg;
            out = Printf.sprintf "%s_%d" a.Analytical.out idx })
        sq.Analytical.aggregates;
  }

let expand (sq : Analytical.subquery) ~sets =
  if sets = [] then Error "grouping sets: empty set list"
  else
    let bound = pattern_vars sq in
    let bad =
      List.concat_map
        (fun set -> List.filter (fun v -> not (List.mem v bound)) set)
        sets
    in
    match bad with
    | v :: _ ->
      Error (Printf.sprintf "grouping sets: ?%s is not bound by the pattern" v)
    | [] ->
      let keep =
        List.concat sets |> List.sort_uniq String.compare
      in
      let subqueries =
        List.mapi
          (fun idx set ->
            let renamed = rename_subquery keep idx sq in
            { renamed with Analytical.group_by = set })
          sets
      in
      Ok
        { Analytical.subqueries; outer_projection = []; order_by = [];
          limit = None }

(* [d1..dn], [d1..d(n-1)], ..., []. *)
let prefixes dims =
  let n = List.length dims in
  List.init (n + 1) (fun i -> List.filteri (fun j _ -> j < n - i) dims)

let rollup sq ~dims = expand sq ~sets:(prefixes dims)

let subsets dims =
  let rec go = function
    | [] -> [ [] ]
    | d :: rest ->
      let tail = go rest in
      List.map (fun s -> d :: s) tail @ tail
  in
  go dims

let cube sq ~dims =
  expand sq ~sets:(List.sort (fun a b -> compare (List.length b) (List.length a)) (subsets dims))
