lib/core/composite.mli: Fmt Rapida_ntga Rapida_rdf Rapida_sparql Term
