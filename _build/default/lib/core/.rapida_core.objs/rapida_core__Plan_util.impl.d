lib/core/plan_util.ml: Array Composite Fmt Hashtbl List Namespace Option Rapida_mapred Rapida_ntga Rapida_rdf Rapida_relational Rapida_sparql String Term
