lib/core/phys_ntga.mli: Rapida_mapred Rapida_ntga Rapida_relational Rapida_sparql
