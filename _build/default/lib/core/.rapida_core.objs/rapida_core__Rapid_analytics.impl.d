lib/core/rapid_analytics.ml: Composite Fmt Hashtbl List Option Phys_ntga Plan_util Printf Rapid_plus Rapida_mapred Rapida_ntga Rapida_relational Rapida_sparql
