lib/core/plan_summary.mli: Engine Rapida_sparql
