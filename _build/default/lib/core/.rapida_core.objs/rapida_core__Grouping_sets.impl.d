lib/core/grouping_sets.ml: List Option Printf Rapida_sparql String
