lib/core/phys_ntga.ml: Array List Printf Rapida_mapred Rapida_ntga Rapida_rdf Rapida_relational Rapida_sparql String Term
