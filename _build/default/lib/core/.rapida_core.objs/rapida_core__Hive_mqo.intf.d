lib/core/hive_mqo.mli: Plan_util Rapida_mapred Rapida_relational Rapida_sparql
