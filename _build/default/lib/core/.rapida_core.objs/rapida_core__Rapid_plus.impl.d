lib/core/rapid_plus.ml: Composite Hashtbl List Option Phys_ntga Plan_util Printf Rapida_mapred Rapida_ntga Rapida_relational Rapida_sparql
