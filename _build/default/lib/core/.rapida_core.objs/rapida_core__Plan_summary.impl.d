lib/core/plan_summary.ml: Composite Engine List Printf Rapida_sparql String
