lib/core/hive_naive.ml: Composite Hashtbl List Plan_util Printf Rapida_mapred Rapida_relational Rapida_sparql String
