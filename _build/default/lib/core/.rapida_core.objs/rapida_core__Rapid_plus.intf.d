lib/core/rapid_plus.mli: Plan_util Rapida_mapred Rapida_ntga Rapida_relational Rapida_sparql
