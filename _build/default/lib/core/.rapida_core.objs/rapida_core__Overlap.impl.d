lib/core/overlap.ml: Fmt Hashtbl Int List Rapida_rdf Rapida_sparql Term
