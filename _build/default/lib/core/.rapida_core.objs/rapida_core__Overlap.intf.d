lib/core/overlap.mli: Fmt Rapida_rdf Rapida_sparql Term
