lib/core/hive_naive.mli: Plan_util Rapida_mapred Rapida_relational Rapida_sparql
