lib/core/engine.ml: Graph Hive_mqo Hive_naive Lazy Rapid_analytics Rapid_plus Rapida_mapred Rapida_ntga Rapida_rdf Rapida_relational Rapida_sparql Result
