lib/core/hive_mqo.ml: Array Composite Hashtbl Hive_naive List Plan_util Printf Rapida_mapred Rapida_relational Rapida_sparql
