lib/core/plan_util.mli: Composite Rapida_mapred Rapida_ntga Rapida_relational Rapida_sparql
