lib/core/composite.ml: Fmt Hashtbl Int List Option Overlap Printf Rapida_ntga Rapida_rdf Rapida_sparql String Term Triple
