lib/core/grouping_sets.mli: Rapida_sparql
