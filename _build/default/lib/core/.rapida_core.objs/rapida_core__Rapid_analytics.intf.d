lib/core/rapid_analytics.mli: Plan_util Rapida_mapred Rapida_ntga Rapida_relational Rapida_sparql
