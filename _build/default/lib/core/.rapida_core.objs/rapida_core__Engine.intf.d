lib/core/engine.mli: Graph Plan_util Rapida_mapred Rapida_rdf Rapida_relational Rapida_sparql
