(** Chem2Bio2RDF-like chemogenomics dataset generator.

    Mirrors the schema shapes of the Chem2Bio2RDF warehouse that queries
    G5–G9 / MG6–MG10 exercise: PubChem bioassays linking compounds (CID)
    to gene identifiers, gene/protein nodes with symbols and SwissProt
    ids, DrugBank drug–gene interactions, KEGG pathways over proteins,
    SIDER side effects, and Medline publications linking genes, side
    effects and diseases.

    Vocabulary ([bench:] namespace): assays [CID], [outcome], [Score],
    [gi]; genes [gi], [geneSymbol], [SwissProt_ID]; interactions [gene],
    [DBID]; drugs [CID], [Generic_Name]; pathways [protein],
    [Pathway_name], [pathwayid]; side-effect records [side_effect],
    [cid]; publications [gene], [side_effect], [disease]. *)

open Rapida_rdf

type config = {
  compounds : int;
  genes : int;
  drugs : int;
  pathways : int;
  side_effects : int;
  assays : int;
  publications : int;
  seed : int;
}

val config : ?seed:int -> compounds:int -> unit -> config

val generate : config -> Graph.t

(** The drug name every generated dataset contains, used by query G5
    ("Dexamethasone" in the paper). *)
val known_drug_name : string

(** A pathway-name fragment guaranteed to occur ("MAPK signaling
    pathway"). *)
val known_pathway_fragment : string

(** A side-effect name guaranteed to occur ("hepatomegaly"). *)
val known_side_effect : string
