open Rapida_rdf

type config = {
  products : int;
  product_types : int;
  features : int;
  vendors : int;
  countries : int;
  offers_per_product : int;
  max_features_per_product : int;
  seed : int;
}

let config ?(seed = 42) ~products () =
  {
    products;
    product_types = 20;
    features = max 5 (products / 10);
    vendors = max 3 (products / 25);
    countries = 10;
    offers_per_product = 3;
    max_features_per_product = 4;
    seed;
  }

let ns = Namespace.bench

let entity kind i = Term.iri (Printf.sprintf "%s%s%d" ns kind i)
let prop name = Term.iri (ns ^ name)

let product_type i = entity "ProductType" i

let p_label = prop "label"
let p_feature = prop "productFeature"
let p_producer = prop "producer"
let p_product = prop "product"
let p_price = prop "price"
let p_vendor = prop "vendor"
let p_valid_from = prop "validFrom"
let p_valid_to = prop "validTo"
let p_country = prop "country"

let country_names =
  [| "US"; "UK"; "DE"; "FR"; "JP"; "CN"; "IN"; "BR"; "RU"; "ES"; "IT"; "KR" |]

let generate cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let triples = ref [] in
  let add s p o = triples := Triple.make s p o :: !triples in
  (* Vendors, each located in a country. *)
  for v = 1 to cfg.vendors do
    let vendor = entity "Vendor" v in
    let c = Prng.int rng (min cfg.countries (Array.length country_names)) in
    add vendor p_country (Term.str country_names.(c));
    add vendor p_label (Term.str (Printf.sprintf "vendor%d" v))
  done;
  (* Products: skewed type distribution (type 1 common, tail rare). *)
  for p = 1 to cfg.products do
    let product = entity "Product" p in
    let ty = 1 + Prng.zipf rng cfg.product_types ~skew:1.2 in
    add product Namespace.rdf_type (product_type ty);
    add product p_label (Term.str (Printf.sprintf "product%d" p));
    add product p_producer (entity "Producer" (1 + Prng.int rng (max 1 (cfg.products / 40))));
    let n_features = 1 + Prng.int rng cfg.max_features_per_product in
    let seen = Hashtbl.create 4 in
    for _ = 1 to n_features do
      let f = 1 + Prng.int rng cfg.features in
      if not (Hashtbl.mem seen f) then begin
        Hashtbl.add seen f ();
        add product p_feature (entity "Feature" f)
      end
    done
  done;
  (* Offers: product, price, vendor, validity interval. *)
  let offer_count = ref 0 in
  for p = 1 to cfg.products do
    let n_offers = max 1 (Prng.int rng (2 * cfg.offers_per_product)) in
    for _ = 1 to n_offers do
      incr offer_count;
      let offer = entity "Offer" !offer_count in
      add offer p_product (entity "Product" p);
      add offer p_price (Term.decimal (10.0 +. Prng.float rng 9990.0));
      add offer p_vendor (entity "Vendor" (1 + Prng.int rng cfg.vendors));
      if Prng.bool rng 0.8 then
        add offer p_valid_from
          (Term.date (Printf.sprintf "2008-%02d-01" (1 + Prng.int rng 12)));
      if Prng.bool rng 0.8 then
        add offer p_valid_to
          (Term.date (Printf.sprintf "2009-%02d-28" (1 + Prng.int rng 12)))
    done
  done;
  Graph.of_list (List.rev !triples)
