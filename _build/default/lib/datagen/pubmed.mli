(** PubMed-like bibliographic dataset generator.

    Mirrors the Bio2RDF PubMed shapes queries MG11–MG18 exercise:
    publications with journal, publication type, authors, grants,
    multi-valued MeSH headings and chemicals; grants with agency and
    country; authors with last names.

    Vocabulary ([bench:] namespace): publications [journal], [pub_type],
    [author], [grant], [mesh_heading], [chemical]; grants
    [grant_agency], [grant_country]; authors [last_name]. *)

open Rapida_rdf

type config = {
  publications : int;
  journals : int;
  authors : int;
  grants : int;
  countries : int;
  mesh_pool : int;
  chemical_pool : int;
  seed : int;
}

val config : ?seed:int -> publications:int -> unit -> config

val generate : config -> Graph.t

(** The two publication types the selectivity-varying queries use:
    "Journal Article" is common (low selectivity), "News" rare (high
    selectivity). *)
val common_pub_type : string

val rare_pub_type : string
