type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* splitmix64 step. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive"
  else
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Prng.weighted: non-positive total";
  let target = float t total in
  let rec go i acc =
    if i >= Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
  in
  go 0 0.0

let zipf t n ~skew =
  if n <= 0 then invalid_arg "Prng.zipf: bound must be positive"
  else begin
    let weights = Array.init n (fun i -> 1.0 /. ((float_of_int i +. 1.0) ** skew)) in
    weighted t weights
  end
