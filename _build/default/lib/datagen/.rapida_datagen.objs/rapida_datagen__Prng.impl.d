lib/datagen/prng.ml: Array Int64 List
