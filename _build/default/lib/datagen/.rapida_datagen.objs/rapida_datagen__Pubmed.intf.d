lib/datagen/pubmed.mli: Graph Rapida_rdf
