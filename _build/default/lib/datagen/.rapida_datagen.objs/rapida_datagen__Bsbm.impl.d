lib/datagen/bsbm.ml: Array Graph Hashtbl List Namespace Printf Prng Rapida_rdf Term Triple
