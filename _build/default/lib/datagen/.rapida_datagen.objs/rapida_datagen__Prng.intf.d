lib/datagen/prng.mli:
