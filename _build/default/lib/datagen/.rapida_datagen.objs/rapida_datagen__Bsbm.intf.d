lib/datagen/bsbm.mli: Graph Rapida_rdf Term
