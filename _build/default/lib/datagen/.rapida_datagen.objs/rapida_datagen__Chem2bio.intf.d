lib/datagen/chem2bio.mli: Graph Rapida_rdf
