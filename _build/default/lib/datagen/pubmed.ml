open Rapida_rdf

type config = {
  publications : int;
  journals : int;
  authors : int;
  grants : int;
  countries : int;
  mesh_pool : int;
  chemical_pool : int;
  seed : int;
}

let config ?(seed = 44) ~publications () =
  {
    publications;
    journals = 15;
    authors = max 5 (publications / 2);
    grants = max 3 (publications / 3);
    countries = 12;
    mesh_pool = 80;
    chemical_pool = 120;
    seed;
  }

let ns = Namespace.bench
let entity kind i = Term.iri (Printf.sprintf "%s%s%d" ns kind i)
let prop name = Term.iri (ns ^ name)

let p_journal = prop "journal"
let p_pub_type = prop "pub_type"
let p_author = prop "author"
let p_grant = prop "grant"
let p_mesh = prop "mesh_heading"
let p_chemical = prop "chemical"
let p_agency = prop "grant_agency"
let p_grant_country = prop "grant_country"
let p_last_name = prop "last_name"

let common_pub_type = "Journal Article"
let rare_pub_type = "News"

let country_names =
  [| "US"; "UK"; "DE"; "FR"; "JP"; "CN"; "IN"; "BR"; "CA"; "AU"; "NL"; "SE" |]

let last_names =
  [| "Smith"; "Kim"; "Garcia"; "Chen"; "Mueller"; "Tanaka"; "Singh"; "Silva";
     "Ivanov"; "Dubois"; "Rossi"; "Johnson" |]

let pub_types =
  (* Journal articles dominate; News is rare (higher selectivity). *)
  [| ("Journal Article", 0.70); ("Review", 0.15); ("Letter", 0.08);
     ("Editorial", 0.04); ("News", 0.03) |]

let generate cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let triples = ref [] in
  let add s p o = triples := Triple.make s p o :: !triples in
  (* Authors. *)
  for a = 1 to cfg.authors do
    add (entity "Author" a) p_last_name
      (Term.str last_names.(Prng.int rng (Array.length last_names)))
  done;
  (* Grants: agency + issuing country. *)
  for g = 1 to cfg.grants do
    let grant = entity "Grant" g in
    add grant p_agency (Term.str (Printf.sprintf "Agency%d" (1 + Prng.int rng 8)));
    add grant p_grant_country
      (Term.str
         country_names.(Prng.int rng (min cfg.countries (Array.length country_names))))
  done;
  (* Publications. *)
  let type_weights = Array.map snd pub_types in
  for p = 1 to cfg.publications do
    let pub = entity "Pub" p in
    add pub p_journal (entity "Journal" (1 + Prng.zipf rng cfg.journals ~skew:1.1));
    let ty, _ = pub_types.(Prng.weighted rng type_weights) in
    add pub p_pub_type (Term.str ty);
    let n_authors = 1 + Prng.int rng 3 in
    let seen_a = Hashtbl.create 4 in
    for _ = 1 to n_authors do
      let a = 1 + Prng.int rng cfg.authors in
      if not (Hashtbl.mem seen_a a) then begin
        Hashtbl.add seen_a a ();
        add pub p_author (entity "Author" a)
      end
    done;
    if Prng.bool rng 0.6 then
      add pub p_grant (entity "Grant" (1 + Prng.int rng cfg.grants));
    let n_mesh = 1 + Prng.int rng 4 in
    let seen_m = Hashtbl.create 4 in
    for _ = 1 to n_mesh do
      let m = 1 + Prng.int rng cfg.mesh_pool in
      if not (Hashtbl.mem seen_m m) then begin
        Hashtbl.add seen_m m ();
        add pub p_mesh (Term.str (Printf.sprintf "Mesh%d" m))
      end
    done;
    if Prng.bool rng 0.7 then begin
      let n_chem = 1 + Prng.int rng 3 in
      let seen_c = Hashtbl.create 4 in
      for _ = 1 to n_chem do
        let c = 1 + Prng.int rng cfg.chemical_pool in
        if not (Hashtbl.mem seen_c c) then begin
          Hashtbl.add seen_c c ();
          add pub p_chemical (Term.str (Printf.sprintf "Chem%d" c))
        end
      done
    end
  done;
  Graph.of_list (List.rev !triples)
