(** Deterministic splitmix64 PRNG: identical seeds produce identical
    datasets on every platform, which keeps benchmark runs and
    cross-engine comparisons reproducible. *)

type t

val create : seed:int -> t

(** [int rng n] is uniform in [0, n). @raise Invalid_argument if n <= 0. *)
val int : t -> int -> int

(** [float rng x] is uniform in [0, x). *)
val float : t -> float -> float

(** [bool rng p] is true with probability [p]. *)
val bool : t -> float -> bool

(** [pick rng xs] is a uniform element. @raise Invalid_argument on []. *)
val pick : t -> 'a list -> 'a

(** [weighted rng weights] samples an index with the given (positive)
    weights. *)
val weighted : t -> float array -> int

(** [zipf rng n ~skew] samples in [0, n) with a Zipf-like bias toward
    small indexes — used for skewed selectivity (popular product types,
    common journals). *)
val zipf : t -> int -> skew:float -> int
