(** BSBM-like e-commerce dataset generator.

    Mirrors the schema shapes the Berlin SPARQL Benchmark Business
    Intelligence use case exercises: products with a type drawn from a
    skewed distribution (ProductType1 is common — "low selectivity" in
    the paper's sense — ProductType9 rare), multi-valued product
    features, labels, and offers carrying price / vendor / validity
    dates, with vendors located in countries.

    Vocabulary (all in the [bench:] namespace unless noted):
    [rdf:type] with objects [ProductType1..ProductTypeN], [label],
    [productFeature], [producer]; offers: [product], [price], [vendor],
    [validFrom], [validTo]; vendors: [country], [label]. *)

open Rapida_rdf

type config = {
  products : int;
  product_types : int;
  features : int;
  vendors : int;
  countries : int;
  offers_per_product : int;  (** average *)
  max_features_per_product : int;
  seed : int;
}

(** [config ~products ()] scales the other entity counts off the product
    count with BSBM-like ratios. *)
val config : ?seed:int -> products:int -> unit -> config

val generate : config -> Graph.t

(** Class IRI of product type [i] (1-based): [bench:ProductType<i>]. *)
val product_type : int -> Term.t
