open Rapida_rdf

type config = {
  compounds : int;
  genes : int;
  drugs : int;
  pathways : int;
  side_effects : int;
  assays : int;
  publications : int;
  seed : int;
}

let config ?(seed = 43) ~compounds () =
  {
    compounds;
    genes = max 4 (compounds / 4);
    drugs = max 3 (compounds / 8);
    pathways = 15;
    side_effects = max 25 compounds;
    assays = compounds * 3;
    publications = compounds * 2;
    seed;
  }

let ns = Namespace.bench
let entity kind i = Term.iri (Printf.sprintf "%s%s%d" ns kind i)
let prop name = Term.iri (ns ^ name)

let p_cid = prop "CID"
let p_outcome = prop "outcome"
let p_score = prop "Score"
let p_gi = prop "gi"
let p_gene_symbol = prop "geneSymbol"
let p_swissprot = prop "SwissProt_ID"
let p_gene = prop "gene"
let p_dbid = prop "DBID"
let p_generic_name = prop "Generic_Name"
let p_protein = prop "protein"
let p_pathway_name = prop "Pathway_name"
let p_pathwayid = prop "pathwayid"
let p_side_effect = prop "side_effect"
let p_cid_lower = prop "cid"
let p_disease = prop "disease"

let known_drug_name = "Dexamethasone"
let known_pathway_fragment = "MAPK signaling pathway"
let known_side_effect = "hepatomegaly"

let side_effect_names =
  [| "hepatomegaly"; "nausea"; "headache"; "dizziness"; "fatigue"; "rash";
     "insomnia"; "anemia"; "fever"; "cough" |]

let disease_names =
  [| "Tuberculosis"; "HIV"; "Alzheimer"; "Diabetes"; "Asthma"; "Malaria" |]

let generate cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let triples = ref [] in
  let add s p o = triples := Triple.make s p o :: !triples in
  let gi_of g = Term.int (100000 + g) in
  let cid_of c = Term.int (5000 + c) in
  (* Gene/protein nodes: gi, symbol, SwissProt id. *)
  for g = 1 to cfg.genes do
    let gene = entity "Gene" g in
    add gene p_gi (gi_of g);
    add gene p_gene_symbol (Term.str (Printf.sprintf "GENE%d" g));
    add gene p_swissprot (Term.str (Printf.sprintf "P%05d" g))
  done;
  (* Drugs: CID + generic name; drug d maps to compound d so that drug
     compounds form a dense prefix the side-effect records can hit. *)
  for d = 1 to cfg.drugs do
    let drug = entity "Drug" d in
    add drug p_cid (cid_of d);
    let name =
      if d = 1 then known_drug_name else Printf.sprintf "Drug%d" d
    in
    add drug p_generic_name (Term.str name)
  done;
  (* Drug-gene interactions: gene symbol (literal join) -> drug. *)
  for i = 1 to cfg.drugs * 3 do
    let di = entity "Interaction" i in
    add di p_gene (Term.str (Printf.sprintf "GENE%d" (1 + Prng.int rng cfg.genes)));
    add di p_dbid (entity "Drug" (1 + Prng.int rng cfg.drugs))
  done;
  (* Bioassays: compound activity against gene identifiers. *)
  for a = 1 to cfg.assays do
    let assay = entity "Assay" a in
    add assay p_cid (cid_of (1 + Prng.int rng cfg.compounds));
    add assay p_outcome (Term.str (if Prng.bool rng 0.6 then "active" else "inactive"));
    add assay p_score (Term.int (Prng.int rng 100));
    add assay p_gi (gi_of (1 + Prng.int rng cfg.genes))
  done;
  (* KEGG-like pathways over gene/protein nodes; pathway 1 is MAPK. *)
  for p = 1 to cfg.pathways do
    let pathway = entity "Pathway" p in
    let name =
      if p = 1 then known_pathway_fragment
      else Printf.sprintf "pathway %d signaling" p
    in
    add pathway p_pathway_name (Term.str name);
    add pathway p_pathwayid (Term.int (900 + p));
    let members = 1 + Prng.int rng (max 1 (cfg.genes / 2)) in
    let seen = Hashtbl.create 8 in
    for _ = 1 to members do
      let g = 1 + Prng.int rng cfg.genes in
      if not (Hashtbl.mem seen g) then begin
        Hashtbl.add seen g ();
        add pathway p_protein (entity "Gene" g)
      end
    done
  done;
  (* SIDER-like side-effect records, biased toward low compound ids
     (where the drugs live) and toward the first side-effect name so the
     hepatomegaly chain of G7 stays populated. *)
  for s = 1 to cfg.side_effects do
    let sider = entity "Sider" s in
    let name =
      side_effect_names.(Prng.zipf rng (Array.length side_effect_names) ~skew:1.0)
    in
    add sider p_side_effect (Term.str name);
    add sider p_cid_lower (cid_of (1 + Prng.zipf rng cfg.compounds ~skew:0.7))
  done;
  (* Medline-like publications: gene node links + side effects/diseases. *)
  for m = 1 to cfg.publications do
    let pub = entity "Pmid" m in
    add pub p_gene (entity "Gene" (1 + Prng.int rng cfg.genes));
    add pub p_side_effect
      (Term.str side_effect_names.(Prng.int rng (Array.length side_effect_names)));
    if Prng.bool rng 0.7 then
      add pub p_disease
        (Term.str disease_names.(Prng.int rng (Array.length disease_names)))
  done;
  Graph.of_list (List.rev !triples)
