(** Reference evaluator for analytical queries: direct, obviously-correct
    in-memory evaluation used as the oracle in tests and verification
    runs. No MapReduce, no rewriting — just backtracking BGP matching,
    grouping, and a final natural join. *)

open Rapida_rdf
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table

(** [eval_bgp g bgp] enumerates all solution bindings of a basic graph
    pattern (a multiset: duplicates preserved). *)
val eval_bgp : Graph.t -> Rapida_sparql.Ast.triple_pattern list ->
  Rapida_sparql.Binding.t list

(** [eval_subquery g sq] evaluates one grouped subquery to a table with
    schema [group_by @ aggregate outputs]. *)
val eval_subquery : Graph.t -> Analytical.subquery -> Table.t

(** [run g q] evaluates a whole analytical query: subqueries, natural join
    of their results on shared grouping variables, outer projection. *)
val run : Graph.t -> Analytical.t -> Table.t

(** [run_sparql g src] parses and runs a query in one step. *)
val run_sparql : Graph.t -> string -> (Table.t, string) result
