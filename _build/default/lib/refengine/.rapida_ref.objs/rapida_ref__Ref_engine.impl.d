lib/refengine/ref_engine.ml: Array Graph Hashtbl List Printf Rapida_rdf Rapida_relational Rapida_sparql Result Term
