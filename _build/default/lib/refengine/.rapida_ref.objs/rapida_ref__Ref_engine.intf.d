lib/refengine/ref_engine.mli: Graph Rapida_rdf Rapida_relational Rapida_sparql
