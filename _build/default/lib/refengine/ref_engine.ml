open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Binding = Rapida_sparql.Binding
module Aggregate = Rapida_sparql.Aggregate
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops

(* Candidate triples for a pattern under a binding: prefer the subject
   index, then the property index, else scan. *)
let candidates g (tp : Ast.triple_pattern) binding =
  let subject =
    match tp.tp_s with
    | Ast.Nterm t -> Some t
    | Ast.Nvar v -> Binding.lookup binding v
  in
  match subject with
  | Some s -> Graph.by_subject g s
  | None -> (
    match tp.tp_p with
    | Ast.Nterm p -> Graph.by_property g p
    | Ast.Nvar v -> (
      match Binding.lookup binding v with
      | Some p -> Graph.by_property g p
      | None -> Graph.triples g))

let eval_bgp g bgp =
  let rec go bindings = function
    | [] -> bindings
    | tp :: rest ->
      let extended =
        List.concat_map
          (fun b ->
            List.filter_map
              (fun triple -> Binding.match_triple tp triple b)
              (candidates g tp b))
          bindings
      in
      if extended = [] then [] else go extended rest
  in
  go [ Binding.empty ] bgp

let eval_subquery g (sq : Analytical.subquery) =
  let bindings = eval_bgp g sq.bgp in
  let bindings =
    List.filter
      (fun b -> List.for_all (Binding.eval_filter b) sq.filters)
      bindings
  in
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun b ->
      let key = List.map (fun v -> Binding.lookup b v) sq.group_by in
      let states =
        match Hashtbl.find_opt groups key with
        | Some states -> states
        | None ->
          let states =
            List.map
              (fun (a : Analytical.aggregate) ->
                ref (Aggregate.init a.func ~distinct:a.distinct))
              sq.aggregates
          in
          Hashtbl.add groups key states;
          order := key :: !order;
          states
      in
      List.iter2
        (fun state (a : Analytical.aggregate) ->
          let v =
            match a.arg with
            | None -> Some (Term.int 1) (* count-star *)
            | Some var -> Binding.lookup b var
          in
          state := Aggregate.add !state v)
        states sq.aggregates)
    bindings;
  let schema = Analytical.output_columns sq in
  let rows =
    if sq.group_by = [] && Hashtbl.length groups = 0 then
      [ Array.of_list
          (List.map
             (fun (a : Analytical.aggregate) ->
               Aggregate.finish (Aggregate.init a.func ~distinct:a.distinct))
             sq.aggregates) ]
    else
      List.rev_map
        (fun key ->
          let states = Hashtbl.find groups key in
          Array.of_list (key @ List.map (fun s -> Aggregate.finish !s) states))
        !order
  in
  let table = Table.make ~name:(Printf.sprintf "sq%d" sq.sq_id) ~schema rows in
  (* HAVING filters the computed groups. *)
  match sq.having with
  | [] -> table
  | having ->
    Relops.filter
      (fun t row ->
        let b =
          List.fold_left
            (fun (b, i) col ->
              let b =
                match row.(i) with
                | Some v -> Binding.bind b col v
                | None -> b
              in
              (b, i + 1))
            (Binding.empty, 0) t.Table.schema
          |> fst
        in
        List.for_all (Binding.eval_filter b) having)
      table

let run g (q : Analytical.t) =
  let tables = List.map (eval_subquery g) q.subqueries in
  match tables with
  | [] -> invalid_arg "Ref_engine.run: no subqueries"
  | first :: rest ->
    let joined =
      List.fold_left
        (fun acc t -> Relops.hash_join ~name:"joined" acc t)
        first rest
    in
    Relops.project_exprs ~name:"result" q.outer_projection joined
    |> Relops.order_limit ~order_by:q.Analytical.order_by
         ~limit:q.Analytical.limit

let run_sparql g src =
  Result.map (run g) (Rapida_sparql.Analytical.parse src)
