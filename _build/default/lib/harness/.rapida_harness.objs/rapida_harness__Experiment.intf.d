lib/harness/experiment.mli: Rapida_core Rapida_queries
