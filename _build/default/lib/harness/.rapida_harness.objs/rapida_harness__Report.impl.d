lib/harness/report.ml: Experiment Fmt List Printf Rapida_core Rapida_queries
