lib/harness/report.mli: Experiment Fmt Rapida_core
