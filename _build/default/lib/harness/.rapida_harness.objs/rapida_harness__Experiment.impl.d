lib/harness/experiment.ml: List Rapida_core Rapida_mapred Rapida_queries Rapida_rdf Rapida_ref Rapida_relational Unix
