(** Experiment runner: evaluate catalog queries on all engines over a
    prepared dataset, verify every engine against the reference
    evaluator, and collect simulator statistics plus measured wall-clock
    time. *)

module Engine = Rapida_core.Engine
module Catalog = Rapida_queries.Catalog

type engine_result = {
  engine : Engine.kind;
  cycles : int;
  map_only_cycles : int;
  input_bytes : int;
  shuffle_bytes : int;
  output_bytes : int;
  est_time_s : float;  (** simulated cluster seconds from the cost model *)
  wall_s : float;  (** measured wall-clock of the in-memory execution *)
  result_rows : int;
  agreed : bool;  (** result identical to the reference evaluator *)
  error : string option;
}

type run = {
  query : Catalog.entry;
  dataset_label : string;
  triples : int;
  results : engine_result list;
}

(** [run_query ?engines options ~label input entry] evaluates one catalog
    query. Defaults to all four engines. *)
val run_query :
  ?engines:Engine.kind list ->
  Rapida_core.Plan_util.options ->
  label:string -> Engine.input -> Catalog.entry -> run

(** [run_queries] maps {!run_query} over entries, reusing the input. *)
val run_queries :
  ?engines:Engine.kind list ->
  Rapida_core.Plan_util.options ->
  label:string -> Engine.input -> Catalog.entry list -> run list

(** [result_for run kind] finds an engine's result in a run. *)
val result_for : run -> Engine.kind -> engine_result option

(** [all_agreed run] holds when every engine matched the reference. *)
val all_agreed : run -> bool
