(** MapReduce job execution.

    A job spec bundles the map / combine / reduce functions together with
    size estimators used by the cost model. Keys must be hashable and
    comparable with the polymorphic primitives (use plain data: strings,
    ints, tuples, RDF terms — no closures).

    Execution is real: map functions run over the actual input records,
    combiners run per map task, reducers run per key group. Only the time
    is simulated. Key groups are processed in first-seen order so the whole
    pipeline is deterministic. *)

type ('a, 'k, 'v, 'b) spec = {
  name : string;
  map : 'a -> ('k * 'v) list;
  combine : ('k -> 'v list -> 'v list) option;
      (** optional per-map-task partial aggregation ("local combiner") *)
  reduce : 'k -> 'v list -> 'b list;
  input_size : 'a -> int;
  key_size : 'k -> int;
  value_size : 'v -> int;
  output_size : 'b -> int;
}

type ('a, 'b) map_only_spec = {
  mo_name : string;
  mo_map : 'a -> 'b list;
  mo_input_size : 'a -> int;
  mo_output_size : 'b -> int;
}

(** [run cluster spec input] executes a full map-reduce cycle and returns
    the reducer outputs (in key-first-seen order) plus the job stats. *)
val run : Cluster.t -> ('a, 'k, 'v, 'b) spec -> 'a list -> 'b list * Stats.job

(** [run_map_only cluster spec input] executes a map-only cycle. *)
val run_map_only :
  Cluster.t -> ('a, 'b) map_only_spec -> 'a list -> 'b list * Stats.job

(** [estimate_map_tasks cluster ~input_bytes] is the number of map tasks a
    job with that much (compressed) input would launch: one per input
    split, at least 1. Exposed for tests and for engines that reason about
    mapper parallelism (the ORC effect in §5.2). *)
val estimate_map_tasks : Cluster.t -> input_bytes:int -> int
