let log_src = Logs.Src.create "rapida.mapred" ~doc:"MapReduce simulator jobs"

module Log = (val Logs.src_log log_src)

type t = { cluster : Cluster.t; mutable stats : Stats.t }

let create cluster = { cluster; stats = Stats.empty }
let cluster t = t.cluster

let run_job t spec input =
  let output, job_stats = Job.run t.cluster spec input in
  Log.debug (fun m -> m "%a" Stats.pp_job job_stats);
  t.stats <- Stats.append t.stats job_stats;
  output

let run_map_only t spec input =
  let output, job_stats = Job.run_map_only t.cluster spec input in
  Log.debug (fun m -> m "%a" Stats.pp_job job_stats);
  t.stats <- Stats.append t.stats job_stats;
  output

let stats t = t.stats
