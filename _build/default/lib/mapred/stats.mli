(** Per-job and per-workflow statistics collected by the simulator. *)

type job_kind = Map_reduce | Map_only

type job = {
  name : string;
  kind : job_kind;
  input_records : int;
  input_bytes : int;
  shuffle_records : int;  (** records emitted to the shuffle, post-combine *)
  shuffle_bytes : int;
  output_records : int;
  output_bytes : int;
  map_tasks : int;
  reduce_tasks : int;
  est_time_s : float;  (** simulated wall-clock from the cost model *)
}

type t = { jobs : job list }  (** in execution order *)

val empty : t
val append : t -> job -> t

(** Total number of MR cycles (map-reduce + map-only jobs). *)
val cycles : t -> int

val map_only_cycles : t -> int
val full_cycles : t -> int
val total_input_bytes : t -> int
val total_shuffle_bytes : t -> int
val total_output_bytes : t -> int

(** Sum of per-job simulated times: jobs in a workflow run sequentially,
    as in a Hadoop DAG of dependent stages. *)
val est_time_s : t -> float

val pp_job : job Fmt.t
val pp : t Fmt.t

(** One-line summary: cycles, bytes, simulated seconds. *)
val pp_summary : t Fmt.t
