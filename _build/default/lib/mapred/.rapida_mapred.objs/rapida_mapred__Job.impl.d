lib/mapred/job.ml: Array Cluster Hashtbl List Stats
