lib/mapred/stats.mli: Fmt
