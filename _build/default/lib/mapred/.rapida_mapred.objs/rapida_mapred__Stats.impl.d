lib/mapred/stats.ml: Fmt List
