lib/mapred/workflow.ml: Cluster Job Logs Stats
