lib/mapred/cluster.ml: Fmt
