lib/mapred/cluster.mli: Fmt
