lib/mapred/job.mli: Cluster Stats
