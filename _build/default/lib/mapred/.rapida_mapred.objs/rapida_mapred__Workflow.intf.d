lib/mapred/workflow.mli: Cluster Job Logs Stats
