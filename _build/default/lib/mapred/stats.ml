type job_kind = Map_reduce | Map_only

type job = {
  name : string;
  kind : job_kind;
  input_records : int;
  input_bytes : int;
  shuffle_records : int;
  shuffle_bytes : int;
  output_records : int;
  output_bytes : int;
  map_tasks : int;
  reduce_tasks : int;
  est_time_s : float;
}

type t = { jobs : job list }

let empty = { jobs = [] }
let append t job = { jobs = t.jobs @ [ job ] }

let cycles t = List.length t.jobs

let map_only_cycles t =
  List.length (List.filter (fun j -> j.kind = Map_only) t.jobs)

let full_cycles t =
  List.length (List.filter (fun j -> j.kind = Map_reduce) t.jobs)

let sum f t = List.fold_left (fun acc j -> acc + f j) 0 t.jobs
let total_input_bytes = sum (fun j -> j.input_bytes)
let total_shuffle_bytes = sum (fun j -> j.shuffle_bytes)
let total_output_bytes = sum (fun j -> j.output_bytes)

let est_time_s t = List.fold_left (fun acc j -> acc +. j.est_time_s) 0.0 t.jobs

let pp_kind ppf = function
  | Map_reduce -> Fmt.string ppf "MR"
  | Map_only -> Fmt.string ppf "M "

let pp_job ppf j =
  Fmt.pf ppf "%a %-28s in=%8dB shuf=%8dB out=%8dB maps=%2d reds=%2d t=%6.1fs"
    pp_kind j.kind j.name j.input_bytes j.shuffle_bytes j.output_bytes
    j.map_tasks j.reduce_tasks j.est_time_s

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_job) t.jobs

let pp_summary ppf t =
  Fmt.pf ppf "%d cycles (%d full MR, %d map-only), %d B shuffled, %.1f s"
    (cycles t) (full_cycles t) (map_only_cycles t) (total_shuffle_bytes t)
    (est_time_s t)
