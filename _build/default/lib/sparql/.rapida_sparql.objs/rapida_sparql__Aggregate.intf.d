lib/sparql/aggregate.mli: Ast Fmt Rapida_rdf Term
