lib/sparql/analytical.ml: Ast Fmt List Option Parser Printf Result Star
