lib/sparql/parser.ml: Array Ast Fmt Lexer List Namespace Option Printf Rapida_rdf String Term
