lib/sparql/to_sparql.mli: Analytical Ast Rapida_rdf
