lib/sparql/ast.mli: Fmt Rapida_rdf Term
