lib/sparql/to_sparql.ml: Analytical Ast List Option Printf Rapida_rdf String
