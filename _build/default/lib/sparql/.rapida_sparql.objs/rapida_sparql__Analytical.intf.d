lib/sparql/analytical.mli: Ast Fmt Star
