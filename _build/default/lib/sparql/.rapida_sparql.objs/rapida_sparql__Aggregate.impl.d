lib/sparql/aggregate.ml: Ast Float Fmt List Rapida_rdf Set String Term
