lib/sparql/parser.mli: Ast
