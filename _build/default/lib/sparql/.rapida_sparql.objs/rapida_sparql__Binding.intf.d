lib/sparql/binding.mli: Ast Fmt Rapida_rdf Term Triple
