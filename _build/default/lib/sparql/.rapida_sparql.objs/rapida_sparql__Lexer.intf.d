lib/sparql/lexer.mli: Fmt
