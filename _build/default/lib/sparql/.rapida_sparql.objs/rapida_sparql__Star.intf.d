lib/sparql/star.mli: Ast Fmt Rapida_rdf Term
