lib/sparql/binding.ml: Ast Float Fmt List Rapida_rdf String Term Triple
