lib/sparql/ast.ml: Fmt List Rapida_rdf Term
