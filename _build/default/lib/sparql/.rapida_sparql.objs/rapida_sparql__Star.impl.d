lib/sparql/star.ml: Array Ast Fmt Hashtbl List Namespace Rapida_rdf String Term
