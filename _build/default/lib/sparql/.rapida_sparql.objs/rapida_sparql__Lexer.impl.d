lib/sparql/lexer.ml: Buffer Fmt List Printf String
