open Rapida_rdf

module Term_set = Set.Make (struct
  type t = Term.t

  let compare = Term.compare
end)

(* Numeric-aware ordering used by MIN / MAX. *)
let value_compare a b =
  match Term.as_number a, Term.as_number b with
  | Some x, Some y -> Float.compare x y
  | _ -> Term.compare a b

type simple =
  | Scount of int
  | Ssum of float * bool * int  (** running sum, all-integral flag, count *)
  | Savg of float * int
  | Smin of Term.t option
  | Smax of Term.t option

type state =
  | Simple of simple
  | Distinct of Ast.agg_func * Term_set.t

let init func ~distinct =
  if distinct then Distinct (func, Term_set.empty)
  else
    Simple
      (match func with
      | Ast.Count -> Scount 0
      | Ast.Sum -> Ssum (0.0, true, 0)
      | Ast.Avg -> Savg (0.0, 0)
      | Ast.Min -> Smin None
      | Ast.Max -> Smax None)

let is_integral t =
  match t with Term.Literal { datatype = Term.Dint; _ } -> true | _ -> false

let add_simple s v =
  match s, v with
  | _, None -> s
  | Scount n, Some _ -> Scount (n + 1)
  | Ssum (acc, ints, n), Some t -> (
    match Term.as_number t with
    | Some f -> Ssum (acc +. f, ints && is_integral t, n + 1)
    | None -> s)
  | Savg (acc, n), Some t -> (
    match Term.as_number t with
    | Some f -> Savg (acc +. f, n + 1)
    | None -> s)
  | Smin cur, Some t ->
    Smin
      (match cur with
      | None -> Some t
      | Some c -> if value_compare t c < 0 then Some t else Some c)
  | Smax cur, Some t ->
    Smax
      (match cur with
      | None -> Some t
      | Some c -> if value_compare t c > 0 then Some t else Some c)

let add state v =
  match state with
  | Simple s -> Simple (add_simple s v)
  | Distinct (f, set) -> (
    match v with
    | None -> state
    | Some t -> Distinct (f, Term_set.add t set))

let merge a b =
  match a, b with
  | Simple (Scount x), Simple (Scount y) -> Simple (Scount (x + y))
  | Simple (Ssum (x, xi, nx)), Simple (Ssum (y, yi, ny)) ->
    Simple (Ssum (x +. y, xi && yi, nx + ny))
  | Simple (Savg (x, nx)), Simple (Savg (y, ny)) ->
    Simple (Savg (x +. y, nx + ny))
  | Simple (Smin x), Simple (Smin y) ->
    Simple
      (Smin
         (match x, y with
         | None, v | v, None -> v
         | Some a, Some b -> if value_compare a b <= 0 then Some a else Some b))
  | Simple (Smax x), Simple (Smax y) ->
    Simple
      (Smax
         (match x, y with
         | None, v | v, None -> v
         | Some a, Some b -> if value_compare a b >= 0 then Some a else Some b))
  | Distinct (f, x), Distinct (g, y) when f = g ->
    Distinct (f, Term_set.union x y)
  | _ -> invalid_arg "Aggregate.merge: shape mismatch"

let numeric_term f =
  if Float.is_integer f && Float.abs f < 1e15 then Term.int (int_of_float f)
  else Term.decimal f

let finish_simple = function
  | Scount n -> Some (Term.int n)
  | Ssum (acc, ints, _) ->
    Some (if ints then numeric_term acc else Term.decimal acc)
  | Savg (_, 0) -> None
  | Savg (acc, n) -> Some (Term.decimal (acc /. float_of_int n))
  | Smin v -> v
  | Smax v -> v

let finish = function
  | Simple s -> finish_simple s
  | Distinct (f, set) ->
    let values = Term_set.elements set in
    let state =
      List.fold_left
        (fun acc v -> add_simple acc (Some v))
        (match init f ~distinct:false with
        | Simple s -> s
        | Distinct _ -> assert false)
        values
    in
    finish_simple state

let is_empty = function
  | Simple (Scount 0) -> true
  | Simple (Ssum (_, _, 0)) -> true
  | Simple (Savg (_, 0)) -> true
  | Simple (Smin None) | Simple (Smax None) -> true
  | Simple _ -> false
  | Distinct (_, set) -> Term_set.is_empty set

let size_bytes = function
  | Simple _ -> 16
  | Distinct (_, set) ->
    Term_set.fold
      (fun t acc -> acc + String.length (Term.lexical t) + 4)
      set 8

let pp ppf state =
  match finish state with
  | Some t -> Term.pp ppf t
  | None -> Fmt.string ppf "<empty>"
