open Rapida_rdf

type t = {
  id : int;
  subject : Ast.node;
  patterns : Ast.triple_pattern list;
}

let sort_terms = List.sort_uniq Term.compare

let props star =
  List.filter_map
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p with Ast.Nterm t -> Some t | Ast.Nvar _ -> None)
    star.patterns
  |> sort_terms

let type_objects star =
  List.filter_map
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p, tp.tp_o with
      | Ast.Nterm p, Ast.Nterm o when Term.equal p Namespace.rdf_type -> Some o
      | _ -> None)
    star.patterns
  |> sort_terms

let pattern_with_prop star p =
  List.find_opt
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p with Ast.Nterm t -> Term.equal t p | Ast.Nvar _ -> false)
    star.patterns

let node_equal a b =
  match a, b with
  | Ast.Nvar x, Ast.Nvar y -> String.equal x y
  | Ast.Nterm x, Ast.Nterm y -> Term.equal x y
  | Ast.Nvar _, Ast.Nterm _ | Ast.Nterm _, Ast.Nvar _ -> false

let decompose bgp =
  let rec go acc = function
    | [] -> acc
    | (tp : Ast.triple_pattern) :: rest -> (
      match List.find_opt (fun s -> node_equal s.subject tp.tp_s) acc with
      | Some star ->
        let updated = { star with patterns = star.patterns @ [ tp ] } in
        let acc =
          List.map (fun s -> if s.id = star.id then updated else s) acc
        in
        go acc rest
      | None ->
        let star =
          { id = List.length acc; subject = tp.tp_s; patterns = [ tp ] }
        in
        go (acc @ [ star ]) rest)
  in
  go [] bgp

type role = Subject | Property | Object

type endpoint = { star : int; role : role; prop : Term.t option }

type edge = { var : Ast.var; left : endpoint; right : endpoint }

(* The occurrence of variable [v] in [star], if any. The subject role wins
   over object/property occurrences: a star is identified by its root. *)
let occurrence star v : endpoint option =
  let is_v = function Ast.Nvar x -> String.equal x v | Ast.Nterm _ -> false in
  if is_v star.subject then Some { star = star.id; role = Subject; prop = None }
  else
    let rec find = function
      | [] -> None
      | (tp : Ast.triple_pattern) :: rest ->
        if is_v tp.tp_o then
          let prop =
            match tp.tp_p with Ast.Nterm t -> Some t | Ast.Nvar _ -> None
          in
          Some { star = star.id; role = Object; prop }
        else if is_v tp.tp_p then Some { star = star.id; role = Property; prop = None }
        else find rest
    in
    find star.patterns

let star_vars star =
  let node_var = function Ast.Nvar v -> [ v ] | Ast.Nterm _ -> [] in
  List.concat_map
    (fun (tp : Ast.triple_pattern) ->
      node_var tp.tp_s @ node_var tp.tp_p @ node_var tp.tp_o)
    star.patterns
  |> List.sort_uniq String.compare

let edges stars =
  let pairs = ref [] in
  let n = List.length stars in
  let arr = Array.of_list stars in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let shared =
        List.filter
          (fun v -> List.mem v (star_vars arr.(j)))
          (star_vars arr.(i))
      in
      List.iter
        (fun v ->
          match occurrence arr.(i) v, occurrence arr.(j) v with
          | Some left, Some right -> pairs := { var = v; left; right } :: !pairs
          | _ -> ())
        shared
    done
  done;
  List.rev !pairs

let connected stars edges =
  match stars with
  | [] -> true
  | first :: _ ->
    let reached = Hashtbl.create 8 in
    Hashtbl.add reached first.id ();
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun e ->
          let l = Hashtbl.mem reached e.left.star in
          let r = Hashtbl.mem reached e.right.star in
          if l && not r then begin
            Hashtbl.add reached e.right.star ();
            changed := true
          end
          else if r && not l then begin
            Hashtbl.add reached e.left.star ();
            changed := true
          end)
        edges
    done;
    Hashtbl.length reached = List.length stars

let pp_role ppf = function
  | Subject -> Fmt.string ppf "subject"
  | Property -> Fmt.string ppf "property"
  | Object -> Fmt.string ppf "object"

let pp_endpoint ppf e =
  Fmt.pf ppf "star%d:%a%a" e.star pp_role e.role
    (Fmt.option (fun ppf p -> Fmt.pf ppf "(%a)" Term.pp p))
    e.prop

let pp_edge ppf e =
  Fmt.pf ppf "?%s: %a -- %a" e.var pp_endpoint e.left pp_endpoint e.right

let pp ppf star =
  Fmt.pf ppf "@[<v 2>Stp%d root=%a@ %a@]" star.id
    (fun ppf -> function
      | Ast.Nvar v -> Fmt.pf ppf "?%s" v
      | Ast.Nterm t -> Term.pp ppf t)
    star.subject
    (Fmt.list ~sep:Fmt.cut Ast.pp_triple_pattern)
    star.patterns
