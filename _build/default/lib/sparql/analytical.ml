type aggregate = {
  func : Ast.agg_func;
  arg : Ast.var option;
  distinct : bool;
  out : Ast.var;
}

type subquery = {
  sq_id : int;
  bgp : Ast.triple_pattern list;
  stars : Star.t list;
  edges : Star.edge list;
  filters : Ast.expr list;
  group_by : Ast.var list;
  aggregates : aggregate list;
  having : Ast.expr list;
}

type t = {
  subqueries : subquery list;
  outer_projection : Ast.sel_item list;
  order_by : Ast.order list;
  limit : int option;
}

let ( let* ) = Result.bind

let classify_where where =
  let rec go triples filters subs = function
    | [] -> Ok (List.rev triples, List.rev filters, List.rev subs)
    | Ast.Ptriple tp :: rest -> go (tp :: triples) filters subs rest
    | Ast.Pfilter e :: rest -> go triples (e :: filters) subs rest
    | Ast.Psub s :: rest -> go triples filters (s :: subs) rest
    | Ast.Poptional _ :: _ ->
      Error "OPTIONAL is not supported in analytical queries"
  in
  go [] [] [] where

let aggregate_of_expr out = function
  | Ast.Eagg (func, None, distinct) -> Ok { func; arg = None; distinct; out }
  | Ast.Eagg (func, Some (Ast.Evar v), distinct) ->
    Ok { func; arg = Some v; distinct; out }
  | Ast.Eagg (_, Some _, _) ->
    Error "aggregate arguments must be plain variables"
  | _ -> Error "subquery projections must be variables or aggregates"

let subquery_of_select sq_id (s : Ast.select) =
  let* () =
    if s.order_by <> [] || s.limit <> None then
      Error "ORDER BY / LIMIT are only supported on the outer SELECT"
    else Ok ()
  in
  let* triples, filters, subs = classify_where s.where in
  if subs <> [] then Error "nested subqueries deeper than one level"
  else if triples = [] then Error "subquery has no triple patterns"
  else
    let rec collect aggs = function
      | [] -> Ok (List.rev aggs)
      | Ast.Svar v :: rest ->
        if List.mem v s.group_by then collect aggs rest
        else
          Error
            (Printf.sprintf "projected variable ?%s is not in GROUP BY" v)
      | Ast.Sexpr (e, out) :: rest ->
        let* agg = aggregate_of_expr out e in
        collect (agg :: aggs) rest
    in
    let* aggregates = collect [] s.projection in
    if aggregates = [] then Error "subquery has no aggregates"
    else
      let stars = Star.decompose triples in
      let edges = Star.edges stars in
      let bgp_vars =
        List.concat_map Ast.pattern_vars triples |> List.sort_uniq compare
      in
      let missing =
        List.filter (fun v -> not (List.mem v bgp_vars)) s.group_by
      in
      if missing <> [] then
        Error
          (Printf.sprintf "GROUP BY variable ?%s not bound by the pattern"
             (List.hd missing))
      else
        let outputs =
          s.group_by @ List.map (fun (a : aggregate) -> a.out) aggregates
        in
        let bad_having =
          List.concat_map Ast.expr_vars s.having
          |> List.filter (fun v -> not (List.mem v outputs))
        in
        if bad_having <> [] then
          Error
            (Printf.sprintf
               "HAVING variable ?%s is neither grouped nor an aggregate                 output"
               (List.hd bad_having))
        else
          Ok { sq_id; bgp = triples; stars; edges; filters;
               group_by = s.group_by; aggregates; having = s.having }

let of_query (q : Ast.query) =
  let s = q.base_select in
  let* triples, filters, subs = classify_where s.where in
  match subs with
  | [] ->
    (* Simple grouping query: the select is itself the only subquery;
       its ordering applies to the final result. *)
    let* sq = subquery_of_select 0 { s with Ast.order_by = []; limit = None } in
    Ok { subqueries = [ sq ]; outer_projection = [];
         order_by = s.order_by; limit = s.limit }
  | _ :: _ ->
    if triples <> [] then
      Error "triple patterns alongside subqueries in the outer SELECT"
    else if filters <> [] then
      Error "outer FILTERs over subquery results are not supported"
    else
      let rec build i acc = function
        | [] -> Ok (List.rev acc)
        | sub :: rest ->
          let* sq = subquery_of_select i sub in
          build (i + 1) (sq :: acc) rest
      in
      let* subqueries = build 0 [] subs in
      Ok { subqueries; outer_projection = s.projection;
           order_by = s.order_by; limit = s.limit }

let of_query_exn q =
  match of_query q with
  | Ok t -> t
  | Error e -> failwith ("analytical normal form: " ^ e)

let parse src =
  let* q = Parser.parse src in
  of_query q

let parse_exn src =
  match parse src with
  | Ok t -> t
  | Error e -> failwith ("analytical parse: " ^ e)

let output_columns sq = sq.group_by @ List.map (fun a -> a.out) sq.aggregates

let join_vars a b = List.filter (fun v -> List.mem v b.group_by) a.group_by

let pp_aggregate ppf a =
  Fmt.pf ppf "%a(%s%s) AS ?%s" Ast.pp_expr
    (Ast.Eagg (a.func, Option.map (fun v -> Ast.Evar v) a.arg, a.distinct))
    "" "" a.out

let pp_subquery ppf sq =
  Fmt.pf ppf "@[<v 2>subquery %d:@ stars=%d@ group_by=[%a]@ aggs=[%a]@]"
    sq.sq_id (List.length sq.stars)
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    sq.group_by
    (Fmt.list ~sep:Fmt.comma pp_aggregate)
    sq.aggregates

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_subquery) t.subqueries
