(** Abstract syntax for the SPARQL 1.1 subset used by analytical queries.

    The subset covers everything the paper's workloads need: basic graph
    patterns with [;] / [,] shorthand, FILTER with comparisons and
    [regex], OPTIONAL blocks, nested sub-SELECTs, GROUP BY, and the
    aggregate functions COUNT / SUM / AVG / MIN / MAX. *)

open Rapida_rdf

(** Variable name, without the leading ['?']. *)
type var = string

type agg_func = Count | Sum | Avg | Min | Max

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div

type expr =
  | Evar of var
  | Eterm of Term.t
  | Ebin of binop * expr * expr
  | Enot of expr
  | Eagg of agg_func * expr option * bool
      (** function, argument ([None] = count-star), DISTINCT flag *)
  | Eregex of expr * string * string option
      (** [regex(?x, "pattern", "flags"?)] *)

(** One item of a SELECT projection. *)
type sel_item =
  | Svar of var
  | Sexpr of expr * var  (** [(expr AS ?v)] *)

type node = Nterm of Term.t | Nvar of var

type triple_pattern = { tp_s : node; tp_p : node; tp_o : node }

type pattern_elt =
  | Ptriple of triple_pattern
  | Pfilter of expr
  | Psub of select
  | Poptional of pattern_elt list

and order = Asc of var | Desc of var

and select = {
  distinct : bool;
  projection : sel_item list;  (** empty means [SELECT *] *)
  where : pattern_elt list;
  group_by : var list;
  having : expr list;  (** group filters evaluated after aggregation *)
  order_by : order list;  (** solution ordering of the outermost SELECT *)
  limit : int option;
}

type query = { base_select : select }

(** {1 Utilities} *)

val expr_vars : expr -> var list

(** [pattern_vars tp] is the variables of a triple pattern, in s, p, o
    order. *)
val pattern_vars : triple_pattern -> var list

val pp_expr : expr Fmt.t
val pp_triple_pattern : triple_pattern Fmt.t
val pp_select : select Fmt.t
val pp_query : query Fmt.t
