(** Variable bindings (solution mappings) and FILTER expression
    evaluation.

    A binding maps variables to RDF terms. Expression evaluation follows
    SPARQL semantics closely enough for the analytical fragment: numeric
    comparison when both operands are numeric, term equality otherwise,
    and three-valued logic collapsed to [false] on type error (a FILTER
    over an error is not satisfied). [regex] is implemented as substring
    containment with optional ["i"] case-insensitivity — all the catalog
    workloads need. *)

open Rapida_rdf

type t = (Ast.var * Term.t) list

val empty : t
val lookup : t -> Ast.var -> Term.t option
val bind : t -> Ast.var -> Term.t -> t

(** [compatible a b] holds when no variable is bound to different terms. *)
val compatible : t -> t -> bool

(** [merge a b] is the union of two compatible bindings. *)
val merge : t -> t -> t

(** [match_triple tp triple binding] extends [binding] by matching the
    triple pattern against a concrete triple, or [None] on mismatch. *)
val match_triple : Ast.triple_pattern -> Triple.t -> t -> t option

(** [eval_expr binding e] evaluates a non-aggregate expression to a term.
    [None] signals an evaluation error (unbound variable, bad types). *)
val eval_expr : t -> Ast.expr -> Term.t option

(** [eval_filter binding e] is the effective boolean value of [e], with
    errors collapsed to [false]. *)
val eval_filter : t -> Ast.expr -> bool

(** [term_truth t] is the SPARQL effective boolean value of a term. *)
val term_truth : Term.t -> bool

val pp : t Fmt.t
