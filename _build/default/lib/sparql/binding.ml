open Rapida_rdf

type t = (Ast.var * Term.t) list

let empty = []

let lookup b v = List.assoc_opt v b

let bind b v t = (v, t) :: b

let compatible a b =
  List.for_all
    (fun (v, t) ->
      match lookup b v with None -> true | Some t' -> Term.equal t t')
    a

let merge a b =
  List.fold_left (fun acc (v, t) -> if List.mem_assoc v acc then acc else (v, t) :: acc) b a

let match_node node term binding =
  match node with
  | Ast.Nterm t -> if Term.equal t term then Some binding else None
  | Ast.Nvar v -> (
    match lookup binding v with
    | None -> Some (bind binding v term)
    | Some t' -> if Term.equal t' term then Some binding else None)

let match_triple (tp : Ast.triple_pattern) (triple : Triple.t) binding =
  match match_node tp.tp_s triple.s binding with
  | None -> None
  | Some b -> (
    match match_node tp.tp_p triple.p b with
    | None -> None
    | Some b -> match_node tp.tp_o triple.o b)

let term_truth = function
  | Term.Literal { lex; datatype = Term.Dboolean } -> lex = "true"
  | Term.Literal { lex; datatype = Term.Dint | Term.Ddecimal } -> (
    match float_of_string_opt lex with Some f -> f <> 0.0 | None -> false)
  | Term.Literal { lex; _ } -> lex <> ""
  | Term.Iri _ | Term.Bnode _ -> true

let bool_term b = Term.boolean b

(* Numeric comparison when both sides are numeric; otherwise compare by
   term ordering within the same kind. *)
let compare_terms a b : int option =
  match Term.as_number a, Term.as_number b with
  | Some x, Some y -> Some (Float.compare x y)
  | _ -> (
    match a, b with
    | Term.Literal la, Term.Literal lb when la.datatype = lb.datatype ->
      Some (String.compare la.lex lb.lex)
    | Term.Iri x, Term.Iri y -> Some (String.compare x y)
    | _ -> None)

let contains_ci ~needle hay =
  let lower = String.lowercase_ascii in
  let n = lower needle and h = lower hay in
  let nl = String.length n and hl = String.length h in
  if nl = 0 then true
  else
    let rec go i = i + nl <= hl && (String.sub h i nl = n || go (i + 1)) in
    go 0

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0

let rec eval_expr binding (e : Ast.expr) : Term.t option =
  match e with
  | Ast.Evar v -> lookup binding v
  | Ast.Eterm t -> Some t
  | Ast.Enot e -> (
    match eval_expr binding e with
    | Some t -> Some (bool_term (not (term_truth t)))
    | None -> None)
  | Ast.Eagg _ -> None (* aggregates are evaluated by the engines *)
  | Ast.Eregex (e, pattern, flags) -> (
    match eval_expr binding e with
    | Some t ->
      let hay = Term.lexical t in
      let matched =
        match flags with
        | Some f when String.contains f 'i' -> contains_ci ~needle:pattern hay
        | _ -> contains ~needle:pattern hay
      in
      Some (bool_term matched)
    | None -> None)
  | Ast.Ebin (op, a, b) -> (
    match op with
    | Ast.And -> (
      match eval_expr binding a, eval_expr binding b with
      | Some x, Some y -> Some (bool_term (term_truth x && term_truth y))
      | _ -> None)
    | Ast.Or -> (
      match eval_expr binding a, eval_expr binding b with
      | Some x, Some y -> Some (bool_term (term_truth x || term_truth y))
      | _ -> None)
    | Ast.Eq | Ast.Ne -> (
      match eval_expr binding a, eval_expr binding b with
      | Some x, Some y ->
        let eq =
          match compare_terms x y with
          | Some c -> c = 0
          | None -> Term.equal x y
        in
        Some (bool_term (if op = Ast.Eq then eq else not eq))
      | _ -> None)
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      match eval_expr binding a, eval_expr binding b with
      | Some x, Some y -> (
        match compare_terms x y with
        | None -> None
        | Some c ->
          let r =
            match op with
            | Ast.Lt -> c < 0
            | Ast.Le -> c <= 0
            | Ast.Gt -> c > 0
            | Ast.Ge -> c >= 0
            | _ -> assert false
          in
          Some (bool_term r))
      | _ -> None)
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
      match eval_expr binding a, eval_expr binding b with
      | Some x, Some y -> (
        match Term.as_number x, Term.as_number y with
        | Some fx, Some fy ->
          let r =
            match op with
            | Ast.Add -> fx +. fy
            | Ast.Sub -> fx -. fy
            | Ast.Mul -> fx *. fy
            | Ast.Div -> if fy = 0.0 then Float.nan else fx /. fy
            | _ -> assert false
          in
          if Float.is_nan r then None else Some (Term.decimal r)
        | _ -> None)
      | _ -> None))

let eval_filter binding e =
  match eval_expr binding e with Some t -> term_truth t | None -> false

let pp ppf b =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (v, t) ->
         Fmt.pf ppf "?%s=%a" v Term.pp t))
    b
