(** Aggregate accumulators with mergeable partial states.

    Partial states are what the paper's hash-based per-mapper aggregation
    (Algorithm 3) shuffles instead of raw triplegroups: COUNT / SUM / AVG
    are algebraic, so partial states merge associatively; DISTINCT
    aggregates carry the set of seen values. *)

open Rapida_rdf

type state

(** [init func ~distinct] is the empty accumulator. *)
val init : Ast.agg_func -> distinct:bool -> state

(** [add state v] folds one value in. [None] (unbound argument) is ignored
    except that count-star callers pass [Some] of any term. Non-numeric
    values are ignored by SUM / AVG. *)
val add : state -> Term.t option -> state

(** [merge a b] combines two partial states of the same shape.
    @raise Invalid_argument on shape mismatch. *)
val merge : state -> state -> state

(** [finish state] is the final aggregate value. Empty COUNT is 0; empty
    SUM is 0; empty AVG / MIN / MAX is [None]. Integral results
    canonicalize to integer literals. *)
val finish : state -> Term.t option

(** [is_empty state] holds when nothing has been folded in. *)
val is_empty : state -> bool

(** Serialized size estimate of a partial state, for shuffle accounting. *)
val size_bytes : state -> int

val pp : state Fmt.t
