(** Decomposition of a basic graph pattern into subject-rooted star
    subpatterns and the join edges connecting them.

    A star pattern groups all triple patterns sharing a subject node; join
    edges record which variable connects two stars and in what {e role}
    (subject / property / object) it occurs on each side — the ingredients
    of the paper's role-equivalence test (Def. 3.2). *)

open Rapida_rdf

type t = {
  id : int;  (** position in the decomposition, 0-based *)
  subject : Ast.node;
  patterns : Ast.triple_pattern list;  (** in query order *)
}

(** [props star] is the set of bound property terms of the star, sorted.
    Unbound (variable) properties are omitted. *)
val props : t -> Term.t list

(** [type_objects star] is the set of bound objects of [rdf:type] triple
    patterns in the star, sorted. *)
val type_objects : t -> Term.t list

(** [pattern_with_prop star p] is the first triple pattern of [star] whose
    property is the bound term [p]. *)
val pattern_with_prop : t -> Term.t -> Ast.triple_pattern option

(** [decompose bgp] groups triple patterns by subject node, in order of
    first appearance. *)
val decompose : Ast.triple_pattern list -> t list

type role = Subject | Property | Object

(** One side of a join edge: which star, the variable's role there, and —
    when the role is [Property] or [Object] — the bound property of the
    triple pattern containing the variable ([None] for unbound-property
    patterns, which are out of scope for the optimizations). *)
type endpoint = { star : int; role : role; prop : Term.t option }

type edge = { var : Ast.var; left : endpoint; right : endpoint }

(** [edges stars] is every (star, star, shared-variable) join edge, with
    [left.star < right.star]. A variable occurring twice within one star
    does not produce an edge. *)
val edges : t list -> edge list

(** [connected stars edges] tests whether the star-join graph is
    connected (single component). *)
val connected : t list -> edge list -> bool

val pp_role : role Fmt.t
val pp_edge : edge Fmt.t
val pp : t Fmt.t
