(** Normal form for SPARQL analytical queries.

    An analytical query, in the paper's sense, is an outer SELECT joining
    the results of one or more grouped sub-SELECTs, each of which is a
    basic graph pattern with filters, a grouping (possibly the empty
    grouping "ALL"), and a list of aggregations. Simple grouping queries
    (a single grouped SELECT with no subqueries) normalize to a single
    subquery with an identity outer projection. *)

type aggregate = {
  func : Ast.agg_func;
  arg : Ast.var option;  (** [None] for count-star *)
  distinct : bool;
  out : Ast.var;  (** output column name *)
}

type subquery = {
  sq_id : int;
  bgp : Ast.triple_pattern list;
  stars : Star.t list;
  edges : Star.edge list;
  filters : Ast.expr list;
  group_by : Ast.var list;  (** empty = GROUP BY ALL (grand total) *)
  aggregates : aggregate list;
  having : Ast.expr list;
      (** group filters over the subquery's output columns, evaluated
          after aggregation *)
}

type t = {
  subqueries : subquery list;
  outer_projection : Ast.sel_item list;
      (** projection of the outer SELECT; empty = all columns *)
  order_by : Ast.order list;  (** solution ordering of the final result *)
  limit : int option;
}

(** [of_query q] recognizes the analytical normal form. Errors on
    constructs outside the supported fragment (OPTIONAL in user queries,
    non-variable aggregate arguments, ungrouped projected variables,
    triple patterns at the outer level mixed with subqueries). *)
val of_query : Ast.query -> (t, string) result

val of_query_exn : Ast.query -> t

(** [parse src] composes {!Parser.parse} and {!of_query}. *)
val parse : string -> (t, string) result

val parse_exn : string -> t

(** [output_columns sq] is the column names a subquery produces: its
    group-by variables followed by its aggregate output names. *)
val output_columns : subquery -> Ast.var list

(** [join_vars a b] is the shared group-by variables of two subqueries —
    the natural-join keys of the outer query. *)
val join_vars : subquery -> subquery -> Ast.var list

val pp_subquery : subquery Fmt.t
val pp : t Fmt.t
