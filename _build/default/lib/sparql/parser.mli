(** Recursive-descent parser for the SPARQL subset.

    Prefixed names are expanded with the query's PREFIX declarations on top
    of {!Rapida_rdf.Namespace.default_env}; bare (unprefixed) names expand
    into the [bench:] namespace, matching the abbreviated property names
    used throughout the paper and this repo's synthetic datasets. *)

(** [parse src] parses a complete SELECT query. *)
val parse : string -> (Ast.query, string) result

(** [parse_exn src] is [parse], raising [Failure] on error. *)
val parse_exn : string -> Ast.query
