module Term = Rapida_rdf.Term

let term t =
  match t with
  | Term.Bnode _ ->
    invalid_arg "To_sparql.term: blank nodes cannot appear in queries"
  | Term.Iri _ | Term.Literal _ -> Term.to_ntriples t

let node = function
  | Ast.Nvar v -> "?" ^ v
  | Ast.Nterm t -> term t

let binop = function
  | Ast.Eq -> "=" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<="
  | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.And -> "&&" | Ast.Or -> "||"
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"

let agg_name = function
  | Ast.Count -> "COUNT"
  | Ast.Sum -> "SUM"
  | Ast.Avg -> "AVG"
  | Ast.Min -> "MIN"
  | Ast.Max -> "MAX"

let rec expr = function
  | Ast.Evar v -> "?" ^ v
  | Ast.Eterm t -> term t
  | Ast.Ebin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop op) (expr b)
  | Ast.Enot e -> Printf.sprintf "(!%s)" (expr e)
  | Ast.Eagg (f, arg, distinct) ->
    Printf.sprintf "%s(%s%s)" (agg_name f)
      (if distinct then "DISTINCT " else "")
      (match arg with None -> "*" | Some e -> expr e)
  | Ast.Eregex (e, pattern, flags) ->
    Printf.sprintf "regex(%s, %s%s)" (expr e)
      (term (Term.str pattern))
      (match flags with
      | None -> ""
      | Some f -> ", " ^ term (Term.str f))

let triple_pattern (tp : Ast.triple_pattern) =
  Printf.sprintf "%s %s %s ." (node tp.tp_s) (node tp.tp_p) (node tp.tp_o)

let sel_item = function
  | Ast.Svar v -> "?" ^ v
  | Ast.Sexpr (e, out) -> Printf.sprintf "(%s AS ?%s)" (expr e) out

let rec pattern_elt = function
  | Ast.Ptriple tp -> triple_pattern tp
  | Ast.Pfilter e -> "FILTER " ^ expr e
  | Ast.Psub s -> Printf.sprintf "{ %s }" (select s)
  | Ast.Poptional elts ->
    Printf.sprintf "OPTIONAL { %s }"
      (String.concat " " (List.map pattern_elt elts))

and select (s : Ast.select) =
  let projection =
    match s.projection with
    | [] -> "*"
    | items -> String.concat " " (List.map sel_item items)
  in
  let body = String.concat "\n  " (List.map pattern_elt s.where) in
  let group =
    match s.group_by with
    | [] -> ""
    | vars ->
      "\nGROUP BY " ^ String.concat " " (List.map (fun v -> "?" ^ v) vars)
  in
  let having =
    match s.having with
    | [] -> ""
    | hs ->
      String.concat ""
        (List.map (fun e -> "\nHAVING " ^ expr e) hs)
  in
  let order =
    match s.order_by with
    | [] -> ""
    | keys ->
      "\nORDER BY "
      ^ String.concat " "
          (List.map
             (function
               | Ast.Asc v -> Printf.sprintf "ASC(?%s)" v
               | Ast.Desc v -> Printf.sprintf "DESC(?%s)" v)
             keys)
  in
  let limit =
    match s.limit with None -> "" | Some n -> Printf.sprintf "\nLIMIT %d" n
  in
  Printf.sprintf "SELECT %s%s {\n  %s\n}%s%s%s%s"
    (if s.distinct then "DISTINCT " else "")
    projection body group having order limit

let query (q : Ast.query) = select q.base_select

let subquery_select (sq : Analytical.subquery) : Ast.select =
  {
    Ast.distinct = false;
    projection =
      List.map (fun v -> Ast.Svar v) sq.Analytical.group_by
      @ List.map
          (fun (a : Analytical.aggregate) ->
            Ast.Sexpr
              ( Ast.Eagg
                  (a.func, Option.map (fun v -> Ast.Evar v) a.arg, a.distinct),
                a.out ))
          sq.Analytical.aggregates;
    where =
      List.map (fun tp -> Ast.Ptriple tp) sq.Analytical.bgp
      @ List.map (fun e -> Ast.Pfilter e) sq.Analytical.filters;
    group_by = sq.Analytical.group_by;
    having = sq.Analytical.having;
    order_by = [];
    limit = None;
  }

let analytical (t : Analytical.t) =
  match t.Analytical.subqueries with
  | [ sq ] when t.Analytical.outer_projection = [] ->
    select
      { (subquery_select sq) with
        Ast.order_by = t.Analytical.order_by;
        limit = t.Analytical.limit }
  | sqs ->
    let outer : Ast.select =
      {
        Ast.distinct = false;
        projection = t.Analytical.outer_projection;
        where = List.map (fun sq -> Ast.Psub (subquery_select sq)) sqs;
        group_by = [];
        having = [];
        order_by = t.Analytical.order_by;
        limit = t.Analytical.limit;
      }
    in
    select outer
