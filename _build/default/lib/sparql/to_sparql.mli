(** Render the AST back to parseable SPARQL text.

    [Parser.parse] of the output yields the same AST (round-trip property
    in the test suite). Terms serialize in N-Triples form (full IRIs in
    angle brackets, typed literals with [^^]), so no prefix context is
    needed. Blank nodes cannot appear in the supported query fragment.

    Useful for displaying rewritten queries (e.g. grouping-sets
    expansions) and for exporting catalog entries. *)

val term : Rapida_rdf.Term.t -> string
val expr : Ast.expr -> string
val triple_pattern : Ast.triple_pattern -> string
val select : Ast.select -> string
val query : Ast.query -> string

(** [analytical t] reassembles an analytical normal form back into a
    SPARQL query (nested subselects under an outer SELECT). *)
val analytical : Analytical.t -> string
