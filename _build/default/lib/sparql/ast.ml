open Rapida_rdf

type var = string

type agg_func = Count | Sum | Avg | Min | Max

type binop =
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Add | Sub | Mul | Div

type expr =
  | Evar of var
  | Eterm of Term.t
  | Ebin of binop * expr * expr
  | Enot of expr
  | Eagg of agg_func * expr option * bool
  | Eregex of expr * string * string option

type sel_item =
  | Svar of var
  | Sexpr of expr * var

type node = Nterm of Term.t | Nvar of var

type triple_pattern = { tp_s : node; tp_p : node; tp_o : node }

type pattern_elt =
  | Ptriple of triple_pattern
  | Pfilter of expr
  | Psub of select
  | Poptional of pattern_elt list

and order = Asc of var | Desc of var

and select = {
  distinct : bool;
  projection : sel_item list;
  where : pattern_elt list;
  group_by : var list;
  having : expr list;
  order_by : order list;
  limit : int option;
}

type query = { base_select : select }

let rec expr_vars = function
  | Evar v -> [ v ]
  | Eterm _ -> []
  | Ebin (_, a, b) -> expr_vars a @ expr_vars b
  | Enot e -> expr_vars e
  | Eagg (_, None, _) -> []
  | Eagg (_, Some e, _) -> expr_vars e
  | Eregex (e, _, _) -> expr_vars e

let node_vars = function Nvar v -> [ v ] | Nterm _ -> []

let pattern_vars tp =
  node_vars tp.tp_s @ node_vars tp.tp_p @ node_vars tp.tp_o

let string_of_agg = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let string_of_binop = function
  | Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp_expr ppf = function
  | Evar v -> Fmt.pf ppf "?%s" v
  | Eterm t -> Term.pp ppf t
  | Ebin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (string_of_binop op) pp_expr b
  | Enot e -> Fmt.pf ppf "(!%a)" pp_expr e
  | Eagg (f, None, distinct) ->
    Fmt.pf ppf "%s(%s*)" (string_of_agg f) (if distinct then "DISTINCT " else "")
  | Eagg (f, Some e, distinct) ->
    Fmt.pf ppf "%s(%s%a)" (string_of_agg f)
      (if distinct then "DISTINCT " else "")
      pp_expr e
  | Eregex (e, pat, None) -> Fmt.pf ppf "regex(%a, %S)" pp_expr e pat
  | Eregex (e, pat, Some flags) ->
    Fmt.pf ppf "regex(%a, %S, %S)" pp_expr e pat flags

let pp_node ppf = function
  | Nterm t -> Term.pp ppf t
  | Nvar v -> Fmt.pf ppf "?%s" v

let pp_triple_pattern ppf tp =
  Fmt.pf ppf "%a %a %a ." pp_node tp.tp_s pp_node tp.tp_p pp_node tp.tp_o

let pp_sel_item ppf = function
  | Svar v -> Fmt.pf ppf "?%s" v
  | Sexpr (e, v) -> Fmt.pf ppf "(%a AS ?%s)" pp_expr e v

let rec pp_pattern_elt ppf = function
  | Ptriple tp -> pp_triple_pattern ppf tp
  | Pfilter e -> Fmt.pf ppf "FILTER %a" pp_expr e
  | Psub s -> Fmt.pf ppf "{ %a }" pp_select s
  | Poptional elts ->
    Fmt.pf ppf "OPTIONAL { %a }"
      (Fmt.list ~sep:Fmt.sp pp_pattern_elt)
      elts

and pp_select ppf s =
  let pp_proj ppf = function
    | [] -> Fmt.string ppf "*"
    | items -> Fmt.list ~sep:Fmt.sp pp_sel_item ppf items
  in
  Fmt.pf ppf "@[<v 2>SELECT %s%a WHERE {@ %a@]@ }%a"
    (if s.distinct then "DISTINCT " else "")
    pp_proj s.projection
    (Fmt.list ~sep:Fmt.cut pp_pattern_elt)
    s.where
    (fun ppf -> function
      | [] -> ()
      | vars ->
        Fmt.pf ppf " GROUP BY %a"
          (Fmt.list ~sep:Fmt.sp (fun ppf v -> Fmt.pf ppf "?%s" v))
          vars)
    s.group_by;
  List.iter (fun e -> Fmt.pf ppf " HAVING %a" pp_expr e) s.having;
  (match s.order_by with
  | [] -> ()
  | orders ->
    Fmt.pf ppf " ORDER BY %a"
      (Fmt.list ~sep:Fmt.sp (fun ppf -> function
         | Asc v -> Fmt.pf ppf "ASC(?%s)" v
         | Desc v -> Fmt.pf ppf "DESC(?%s)" v))
      orders);
  match s.limit with
  | None -> ()
  | Some n -> Fmt.pf ppf " LIMIT %d" n

let pp_query ppf q = pp_select ppf q.base_select
