lib/rdf/graph.ml: Fmt Hashtbl List Term Triple
