lib/rdf/triple.mli: Fmt Term
