lib/rdf/term.ml: Buffer Float Fmt Hashtbl Int Option Printf String
