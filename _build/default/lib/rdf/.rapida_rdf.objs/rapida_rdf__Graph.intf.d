lib/rdf/graph.mli: Fmt Term Triple
