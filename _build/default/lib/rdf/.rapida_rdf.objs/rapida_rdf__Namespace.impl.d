lib/rdf/namespace.ml: List Option String Term
