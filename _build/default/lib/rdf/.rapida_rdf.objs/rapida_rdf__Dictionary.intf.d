lib/rdf/dictionary.mli: Term
