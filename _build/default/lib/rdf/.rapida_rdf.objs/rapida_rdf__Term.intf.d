lib/rdf/term.mli: Fmt
