lib/rdf/ntriples.ml: Buffer Fun List Printf String Term Triple
