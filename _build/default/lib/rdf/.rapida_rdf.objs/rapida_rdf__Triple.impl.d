lib/rdf/triple.ml: Fmt String Term
