(** RDF triples: (subject, property, object). *)

type t = { s : Term.t; p : Term.t; o : Term.t }

val make : Term.t -> Term.t -> Term.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

(** [to_ntriples t] is the N-Triples line for [t], without the newline. *)
val to_ntriples : t -> string

(** [size_bytes t] estimates the serialized size of [t]; used by the
    MapReduce cost model for I/O accounting. *)
val size_bytes : t -> int
