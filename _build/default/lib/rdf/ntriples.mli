(** N-Triples serialization and parsing.

    Covers the subset emitted by {!Term.to_ntriples}: IRIs, blank nodes,
    plain strings, and typed literals with the XSD datatypes this library
    produces. *)

val triple_to_line : Triple.t -> string

(** [parse_line s] parses one N-Triples line. Blank lines and [#] comments
    yield [Ok None]. *)
val parse_line : string -> (Triple.t option, string) result

(** [parse_string s] parses an entire N-Triples document. Stops at the
    first malformed line, reporting its 1-based number. *)
val parse_string : string -> (Triple.t list, string) result

val write_file : string -> Triple.t list -> unit

val read_file : string -> (Triple.t list, string) result
