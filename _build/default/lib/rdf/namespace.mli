(** Common namespaces and prefixed-name expansion. *)

val rdf : string
val rdfs : string
val xsd : string

(** Namespace used by the synthetic benchmark vocabularies in this repo. *)
val bench : string

(** [rdf_type] is the [rdf:type] property IRI as a term. *)
val rdf_type : Term.t

(** A prefix environment maps prefix labels (without the colon) to
    namespace IRIs. *)
type env

val default_env : env

(** [add env prefix iri] extends [env]. Later bindings shadow earlier. *)
val add : env -> string -> string -> env

(** [expand env qname] expands ["pre:local"] using [env]. Returns [None]
    when the prefix is unbound or the string has no colon. *)
val expand : env -> string -> string option
