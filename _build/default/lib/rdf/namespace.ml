let rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
let rdfs = "http://www.w3.org/2000/01/rdf-schema#"
let xsd = "http://www.w3.org/2001/XMLSchema#"
let bench = "http://rapida.bench/vocab/"

let rdf_type = Term.iri (rdf ^ "type")

type env = (string * string) list

let default_env =
  [ ("rdf", rdf); ("rdfs", rdfs); ("xsd", xsd); ("bench", bench); ("", bench) ]

let add env prefix iri = (prefix, iri) :: env

let expand env qname =
  match String.index_opt qname ':' with
  | None -> None
  | Some i ->
    let prefix = String.sub qname 0 i in
    let local = String.sub qname (i + 1) (String.length qname - i - 1) in
    Option.map (fun ns -> ns ^ local) (List.assoc_opt prefix env)
