type t = { s : Term.t; p : Term.t; o : Term.t }

let make s p o = { s; p; o }

let compare a b =
  let c = Term.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Term.compare a.p b.p in
    if c <> 0 then c else Term.compare a.o b.o

let equal a b = compare a b = 0

let pp ppf t = Fmt.pf ppf "@[%a %a %a .@]" Term.pp t.s Term.pp t.p Term.pp t.o

let to_ntriples t =
  String.concat " "
    [ Term.to_ntriples t.s; Term.to_ntriples t.p; Term.to_ntriples t.o; "." ]

let size_bytes t =
  String.length (Term.lexical t.s)
  + String.length (Term.lexical t.p)
  + String.length (Term.lexical t.o)
  + 8
