(** RDF terms: IRIs, literals, and blank nodes.

    Terms are the atomic values of the RDF data model. Literals carry a
    lexical form plus a coarse datatype tag that is sufficient for the
    aggregation functions of SPARQL analytical queries (numeric SUM / AVG /
    MIN / MAX over integers and decimals, COUNT over anything). *)

(** Coarse literal datatypes. [Dstring] covers plain and language-tagged
    strings; [Dint] and [Ddecimal] cover the XSD numeric types used by the
    benchmark workloads; [Ddate] keeps dates ordered lexicographically. *)
type datatype = Dstring | Dint | Ddecimal | Dboolean | Ddate

type literal = { lex : string; datatype : datatype }

type t =
  | Iri of string
  | Literal of literal
  | Bnode of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** {1 Constructors} *)

val iri : string -> t
val str : string -> t
val int : int -> t
val decimal : float -> t
val boolean : bool -> t
val date : string -> t
val bnode : string -> t

(** [typed lex datatype_iri] builds a literal from a lexical form and an
    XSD datatype IRI; unknown datatypes default to plain strings. *)
val typed : string -> string -> t

(** [datatype_of_iri iri] maps an XSD datatype IRI to the coarse tag. *)
val datatype_of_iri : string -> datatype option

(** {1 Accessors} *)

(** [as_number t] is the numeric value of a literal term, if any. Integer
    and decimal literals (and numeric-looking strings) convert; everything
    else is [None]. *)
val as_number : t -> float option

(** [as_int t] is [as_number t] truncated to an integer. *)
val as_int : t -> int option

(** [lexical t] is the lexical form: the IRI text, the literal's lexical
    form, or the blank-node label. *)
val lexical : t -> string

val is_iri : t -> bool
val is_literal : t -> bool

(** {1 Printing} *)

(** [pp] prints a compact human-readable form ([<iri>], ["lit"], [_:b]). *)
val pp : t Fmt.t

val to_string : t -> string

(** [to_ntriples t] is the canonical N-Triples serialization of [t]. *)
val to_ntriples : t -> string
