type datatype = Dstring | Dint | Ddecimal | Dboolean | Ddate

type literal = { lex : string; datatype : datatype }

type t =
  | Iri of string
  | Literal of literal
  | Bnode of string

let rank = function Iri _ -> 0 | Literal _ -> 1 | Bnode _ -> 2

let compare a b =
  match a, b with
  | Iri x, Iri y -> String.compare x y
  | Bnode x, Bnode y -> String.compare x y
  | Literal x, Literal y ->
    let c = compare x.datatype y.datatype in
    if c <> 0 then c else String.compare x.lex y.lex
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Iri s -> Hashtbl.hash (0, s)
  | Literal { lex; datatype } -> Hashtbl.hash (1, lex, datatype)
  | Bnode s -> Hashtbl.hash (2, s)

let iri s = Iri s
let str s = Literal { lex = s; datatype = Dstring }
let int n = Literal { lex = string_of_int n; datatype = Dint }

let decimal f =
  (* Canonical form avoids "3." vs "3.0" mismatches between generators;
     12 significant digits keep aggregation round-off (different engines
     fold sums in different orders) below the 9-digit rounding used for
     cross-engine result comparison. *)
  let lex =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  in
  Literal { lex; datatype = Ddecimal }

let boolean b = Literal { lex = string_of_bool b; datatype = Dboolean }
let date s = Literal { lex = s; datatype = Ddate }
let bnode s = Bnode s

let as_number = function
  | Literal { lex; datatype = Dint | Ddecimal } -> float_of_string_opt lex
  | Literal { lex; datatype = Dstring } -> float_of_string_opt lex
  | Literal { datatype = Dboolean | Ddate; _ } | Iri _ | Bnode _ -> None

let as_int t = Option.map int_of_float (as_number t)

let lexical = function
  | Iri s -> s
  | Literal { lex; _ } -> lex
  | Bnode s -> s

let is_iri = function Iri _ -> true | Literal _ | Bnode _ -> false
let is_literal = function Literal _ -> true | Iri _ | Bnode _ -> false

let pp ppf = function
  | Iri s -> Fmt.pf ppf "<%s>" s
  | Literal { lex; datatype = Dstring } -> Fmt.pf ppf "%S" lex
  | Literal { lex; _ } -> Fmt.string ppf lex
  | Bnode s -> Fmt.pf ppf "_:%s" s

let to_string t = Fmt.str "%a" pp t

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let xsd = "http://www.w3.org/2001/XMLSchema#"

let datatype_of_iri iri =
  if iri = xsd ^ "integer" || iri = xsd ^ "int" || iri = xsd ^ "long" then
    Some Dint
  else if iri = xsd ^ "decimal" || iri = xsd ^ "double" || iri = xsd ^ "float"
  then Some Ddecimal
  else if iri = xsd ^ "boolean" then Some Dboolean
  else if iri = xsd ^ "date" || iri = xsd ^ "dateTime" then Some Ddate
  else if iri = xsd ^ "string" then Some Dstring
  else None

let typed lex datatype_iri =
  Literal
    { lex;
      datatype = Option.value ~default:Dstring (datatype_of_iri datatype_iri) }

let to_ntriples = function
  | Iri s -> "<" ^ s ^ ">"
  | Bnode s -> "_:" ^ s
  | Literal { lex; datatype } -> (
    let quoted = "\"" ^ escape_string lex ^ "\"" in
    match datatype with
    | Dstring -> quoted
    | Dint -> quoted ^ "^^<" ^ xsd ^ "integer>"
    | Ddecimal -> quoted ^ "^^<" ^ xsd ^ "decimal>"
    | Dboolean -> quoted ^ "^^<" ^ xsd ^ "boolean>"
    | Ddate -> quoted ^ "^^<" ^ xsd ^ "date>")
