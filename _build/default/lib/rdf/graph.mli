(** In-memory indexed RDF graph.

    The graph keeps subject and property indexes, which are what the
    engines need: the NTGA engines scan subject groups (triplegroups) and
    the relational engines scan property partitions (vertical
    partitioning). *)

type t

val create : unit -> t

val add : t -> Triple.t -> unit
val add_list : t -> Triple.t list -> unit
val of_list : Triple.t list -> t

(** Total number of triples. *)
val size : t -> int

(** Estimated serialized size of the whole graph in bytes. *)
val size_bytes : t -> int

val triples : t -> Triple.t list

(** [subjects g] is the list of distinct subjects, unordered. *)
val subjects : t -> Term.t list

(** [by_subject g s] is all triples with subject [s] (possibly empty). *)
val by_subject : t -> Term.t -> Triple.t list

(** [by_property g p] is all triples with property [p]. *)
val by_property : t -> Term.t -> Triple.t list

(** [properties g] is the list of distinct properties. *)
val properties : t -> Term.t list

(** [fold_subject_groups g f acc] folds over (subject, triples-of-subject)
    groups — the raw material of subject triplegroups. *)
val fold_subject_groups : t -> (Term.t -> Triple.t list -> 'a -> 'a) -> 'a -> 'a

val pp : t Fmt.t
