module H = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  mutable size : int;
  mutable bytes : int;
  by_subject : Triple.t list ref H.t;
  by_property : Triple.t list ref H.t;
}

let create () =
  { size = 0; bytes = 0; by_subject = H.create 256; by_property = H.create 64 }

let push tbl key triple =
  match H.find_opt tbl key with
  | Some cell -> cell := triple :: !cell
  | None -> H.add tbl key (ref [ triple ])

let add g (t : Triple.t) =
  g.size <- g.size + 1;
  g.bytes <- g.bytes + Triple.size_bytes t;
  push g.by_subject t.s t;
  push g.by_property t.p t

let add_list g ts = List.iter (add g) ts

let of_list ts =
  let g = create () in
  add_list g ts;
  g

let size g = g.size
let size_bytes g = g.bytes

let triples g = H.fold (fun _ cell acc -> List.rev_append !cell acc) g.by_subject []

let subjects g = H.fold (fun s _ acc -> s :: acc) g.by_subject []

let by_subject g s =
  match H.find_opt g.by_subject s with Some cell -> !cell | None -> []

let by_property g p =
  match H.find_opt g.by_property p with Some cell -> !cell | None -> []

let properties g = H.fold (fun p _ acc -> p :: acc) g.by_property []

let fold_subject_groups g f acc =
  H.fold (fun s cell acc -> f s !cell acc) g.by_subject acc

let pp ppf g =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Triple.pp) (triples g)
