(** Dictionary encoding of terms to dense integer identifiers.

    Large RDF stores encode terms once and manipulate integers; the encoded
    ids double as compact join keys in the MapReduce simulator. *)

type t

val create : unit -> t

(** [encode d term] interns [term], returning its id. Idempotent. *)
val encode : t -> Term.t -> int

(** [decode d id] is the term interned with [id].
    @raise Not_found if [id] was never produced by [encode]. *)
val decode : t -> int -> Term.t

(** [find d term] is the id of [term] if already interned. *)
val find : t -> Term.t -> int option

(** Number of distinct terms interned. *)
val cardinal : t -> int
