module H = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = { by_term : int H.t; mutable by_id : Term.t array; mutable next : int }

let create () = { by_term = H.create 1024; by_id = Array.make 1024 (Term.iri ""); next = 0 }

let grow d =
  if d.next >= Array.length d.by_id then begin
    let bigger = Array.make (2 * Array.length d.by_id) (Term.iri "") in
    Array.blit d.by_id 0 bigger 0 d.next;
    d.by_id <- bigger
  end

let encode d term =
  match H.find_opt d.by_term term with
  | Some id -> id
  | None ->
    let id = d.next in
    grow d;
    d.by_id.(id) <- term;
    H.add d.by_term term id;
    d.next <- id + 1;
    id

let decode d id =
  if id < 0 || id >= d.next then raise Not_found else d.by_id.(id)

let find d term = H.find_opt d.by_term term
let cardinal d = d.next
