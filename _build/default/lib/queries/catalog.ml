type dataset = Bsbm | Chem2bio | Pubmed

let dataset_name = function
  | Bsbm -> "BSBM"
  | Chem2bio -> "Chem2Bio2RDF"
  | Pubmed -> "PubMed"

type entry = {
  id : string;
  dataset : dataset;
  description : string;
  selectivity : [ `Low | `High | `Na ];
  structure : string;
  grouping : string;
  sparql : string;
}

(* --- BSBM single-grouping queries (Table 3 left) ----------------------- *)

let g_query ~ptype ~feature =
  if feature then
    Printf.sprintf
      {|SELECT ?f (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
  ?p a ProductType%d . ?p label ?l . ?p productFeature ?f .
  ?off product ?p . ?off price ?pr .
} GROUP BY ?f|}
      ptype
  else
    Printf.sprintf
      {|SELECT (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?sum) {
  ?p a ProductType%d . ?p label ?l .
  ?off product ?p . ?off price ?pr .
}|}
      ptype

let g1 =
  { id = "G1"; dataset = Bsbm;
    description = "Total offer count and price sum for ProductType1 (low selectivity), GROUP BY ALL";
    selectivity = `Low; structure = "2:2"; grouping = "ALL";
    sparql = g_query ~ptype:1 ~feature:false }

let g2 =
  { g1 with id = "G2"; selectivity = `High;
    description = "Total offer count and price sum for ProductType9 (high selectivity), GROUP BY ALL";
    sparql = g_query ~ptype:9 ~feature:false }

let g3 =
  { id = "G3"; dataset = Bsbm;
    description = "Offer count and price sum per product feature for ProductType1";
    selectivity = `Low; structure = "3:2"; grouping = "{feature}";
    sparql = g_query ~ptype:1 ~feature:true }

let g4 =
  { g3 with id = "G4"; selectivity = `High;
    description = "Offer count and price sum per product feature for ProductType9";
    sparql = g_query ~ptype:9 ~feature:true }

(* --- BSBM multi-grouping queries (Figure 8 a-b) ------------------------ *)

let mg12_query ~ptype =
  Printf.sprintf
    {|SELECT ?f ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a ProductType%d . ?p2 label ?l2 . ?p2 productFeature ?f .
      ?off2 product ?p2 . ?off2 price ?pr2 . }
    GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a ProductType%d . ?p1 label ?l1 .
      ?off1 product ?p1 . ?off1 price ?pr . } }
}|}
    ptype ptype

let mg34_query ~ptype =
  Printf.sprintf
    {|SELECT ?f ?c ?sumF ?cntF ?sumT ?cntT {
  { SELECT ?f ?c (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a ProductType%d . ?p2 label ?l2 . ?p2 productFeature ?f .
      ?off2 product ?p2 . ?off2 price ?pr2 . ?off2 vendor ?v2 .
      ?v2 country ?c . }
    GROUP BY ?f ?c }
  { SELECT ?c (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a ProductType%d . ?p1 label ?l1 .
      ?off1 product ?p1 . ?off1 price ?pr . ?off1 vendor ?v1 .
      ?v1 country ?c . }
    GROUP BY ?c }
}|}
    ptype ptype

let mg1 =
  { id = "MG1"; dataset = Bsbm;
    description = "Average price per feature vs across all features (ProductType1)";
    selectivity = `Low; structure = "3:2 vs 2:2"; grouping = "{feature} vs ALL";
    sparql = mg12_query ~ptype:1 }

let mg2 =
  { mg1 with id = "MG2"; selectivity = `High;
    description = "Average price per feature vs across all features (ProductType9)";
    sparql = mg12_query ~ptype:9 }

let mg3 =
  { id = "MG3"; dataset = Bsbm;
    description = "Average price per country-feature vs per country (ProductType1)";
    selectivity = `Low; structure = "3:3:1 vs 2:3:1";
    grouping = "{feature, country} vs {country}";
    sparql = mg34_query ~ptype:1 }

let mg4 =
  { mg3 with id = "MG4"; selectivity = `High;
    description = "Average price per country-feature vs per country (ProductType9)";
    sparql = mg34_query ~ptype:9 }

(* --- Chem2Bio2RDF single-grouping queries (Table 3 right) -------------- *)

let g5 =
  { id = "G5"; dataset = Chem2bio;
    description = "Compounds sharing targets with Dexamethasone: assay count per compound";
    selectivity = `Na; structure = "4:2:2:1"; grouping = "{cid}";
    sparql =
      {|SELECT ?cid (COUNT(?cid) AS ?active_assays) {
  ?b CID ?cid . ?b outcome ?a . ?b Score ?s1 . ?b gi ?gi .
  ?u gi ?gi . ?u geneSymbol ?g .
  ?di gene ?g . ?di DBID ?dr .
  ?dr Generic_Name "Dexamethasone" .
} GROUP BY ?cid|} }

let g6 =
  { id = "G6"; dataset = Chem2bio;
    description = "Compounds active toward targets in the MAPK signaling pathway";
    selectivity = `Na; structure = "4:1:2"; grouping = "{cid}";
    sparql =
      {|SELECT ?cid (COUNT(?cid) AS ?active_assays) {
  ?b CID ?cid . ?b outcome ?a . ?b Score ?s1 . ?b gi ?gi .
  ?u gi ?gi .
  ?pathway protein ?u . ?pathway Pathway_name ?pname .
  FILTER regex(?pname, "MAPK signaling pathway", "i")
} GROUP BY ?cid|} }

let g7 =
  { id = "G7"; dataset = Chem2bio;
    description =
      "Pathways containing targets of drugs associated with hepatomegaly \
       (membership via gene nodes; same star count and join roles as the \
       paper's SwissProt chain)";
    selectivity = `Na; structure = "2:1:2:1:2"; grouping = "{pid}";
    sparql =
      {|SELECT ?pid (COUNT(?pid) AS ?cnt) {
  ?sider side_effect ?se . ?sider cid ?cid .
  FILTER regex(?se, "hepatomegaly", "i")
  ?dr CID ?cid .
  ?di DBID ?dr . ?di gene ?g .
  ?u geneSymbol ?g .
  ?pathway protein ?u . ?pathway pathwayid ?pid .
} GROUP BY ?pid|} }

let g8 =
  { id = "G8"; dataset = Chem2bio;
    description = "Side-effect record count per compound with assay evidence";
    selectivity = `Na; structure = "2:2"; grouping = "{cid}";
    sparql =
      {|SELECT ?cid (COUNT(?se) AS ?cnt) {
  ?sider side_effect ?se . ?sider cid ?cid .
  ?b CID ?cid . ?b outcome ?a .
} GROUP BY ?cid|} }

let g9 =
  { id = "G9"; dataset = Chem2bio;
    description = "Medline publication count per gene symbol (large partitions)";
    selectivity = `Na; structure = "1:2"; grouping = "{gs}";
    sparql =
      {|SELECT ?gs (COUNT(?se) AS ?cnt) {
  ?g geneSymbol ?gs .
  ?pmid gene ?g . ?pmid side_effect ?se .
} GROUP BY ?gs|} }

(* --- Chem2Bio2RDF multi-grouping queries (Figure 8 c) ------------------ *)

let chem_shape ~extra_group ~suffix ~group_clause ~projection =
  Printf.sprintf
    {|{ SELECT %s (COUNT(?cid) AS %s)
    { ?b%s CID ?cid . ?b%s outcome ?a%s . ?b%s Score ?sc%s . ?b%s gi ?gi%s .
      ?u%s gi ?gi%s . ?u%s geneSymbol ?g%s .
      ?di%s gene ?g%s . ?di%s DBID ?dr%s . }
    %s }|}
    projection extra_group suffix suffix suffix suffix suffix suffix suffix
    suffix suffix suffix suffix suffix suffix suffix suffix group_clause

let mg6 =
  { id = "MG6"; dataset = Chem2bio;
    description = "Assay count per compound-gene vs per compound";
    selectivity = `Na; structure = "4:2:2 vs 4:2:2";
    grouping = "{cid, gene} vs {cid}";
    sparql =
      Printf.sprintf "SELECT ?cid ?g1 ?aPerCG ?aPerC {\n  %s\n  %s\n}"
        (chem_shape ~extra_group:"?aPerCG" ~suffix:"1"
           ~group_clause:"GROUP BY ?cid ?g1" ~projection:"?cid ?g1")
        (chem_shape ~extra_group:"?aPerC" ~suffix:""
           ~group_clause:"GROUP BY ?cid" ~projection:"?cid") }

let mg7 =
  { id = "MG7"; dataset = Chem2bio;
    description = "Assay count per compound-drug vs per compound";
    selectivity = `Na; structure = "4:2:2 vs 4:2:2";
    grouping = "{cid, drug} vs {cid}";
    sparql =
      Printf.sprintf "SELECT ?cid ?dr1 ?aPerCD ?aPerC {\n  %s\n  %s\n}"
        (chem_shape ~extra_group:"?aPerCD" ~suffix:"1"
           ~group_clause:"GROUP BY ?cid ?dr1" ~projection:"?cid ?dr1")
        (chem_shape ~extra_group:"?aPerC" ~suffix:""
           ~group_clause:"GROUP BY ?cid" ~projection:"?cid") }

let mg8 =
  { id = "MG8"; dataset = Chem2bio;
    description = "Assay count per compound-gene vs grand total";
    selectivity = `Na; structure = "4:2:2 vs 4:2:2";
    grouping = "{cid, gene} vs ALL";
    sparql =
      Printf.sprintf "SELECT ?cid ?g1 ?aPerCG ?aT {\n  %s\n  %s\n}"
        (chem_shape ~extra_group:"?aPerCG" ~suffix:"1"
           ~group_clause:"GROUP BY ?cid ?g1" ~projection:"?cid ?g1")
        (chem_shape ~extra_group:"?aT" ~suffix:"" ~group_clause:""
           ~projection:"") }

let mg9 =
  { id = "MG9"; dataset = Chem2bio;
    description = "Medline publications per gene vs total";
    selectivity = `Na; structure = "1:2 vs 1:2"; grouping = "{gene} vs ALL";
    sparql =
      {|SELECT ?gs ?pPerGene ?pT {
  { SELECT ?gs (COUNT(?gs) AS ?pPerGene)
    { ?g geneSymbol ?gs .
      ?pmid gene ?g . ?pmid side_effect ?se . }
    GROUP BY ?gs }
  { SELECT (COUNT(?gs1) AS ?pT)
    { ?g1 geneSymbol ?gs1 .
      ?pmid1 gene ?g1 . ?pmid1 side_effect ?se1 . } }
}|} }

let mg10 =
  { id = "MG10"; dataset = Chem2bio;
    description = "Medline publications per disease-gene vs per gene";
    selectivity = `Na; structure = "3:1 vs 2:1";
    grouping = "{disease, gene} vs {gene}";
    sparql =
      {|SELECT ?d ?gs ?perDG ?perG {
  { SELECT ?d ?gs (COUNT(?gs) AS ?perDG)
    { ?pmid gene ?g . ?pmid side_effect ?se . ?pmid disease ?d .
      ?g geneSymbol ?gs . }
    GROUP BY ?d ?gs }
  { SELECT ?gs (COUNT(?gs) AS ?perG)
    { ?pmid1 gene ?g1 . ?pmid1 side_effect ?se1 .
      ?g1 geneSymbol ?gs . }
    GROUP BY ?gs }
}|} }

(* --- PubMed multi-grouping queries (Table 4) ---------------------------- *)

let mg11 =
  { id = "MG11"; dataset = Pubmed;
    description = "Grant-funded journal publications per grant country vs total";
    selectivity = `Na; structure = "2:2 vs 2:1"; grouping = "{country} vs ALL";
    sparql =
      {|SELECT ?c ?cntC ?cntT {
  { SELECT ?c (COUNT(?g) AS ?cntC)
    { ?pub journal ?j . ?pub grant ?g .
      ?g grant_agency ?ga . ?g grant_country ?c . }
    GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?cntT)
    { ?pub1 journal ?j1 . ?pub1 grant ?g1 .
      ?g1 grant_agency ?ga1 . } }
}|} }

let mg12' =
  { id = "MG12"; dataset = Pubmed;
    description = "Grants per country and publication type vs per country";
    selectivity = `Na; structure = "2:2 vs 2:1";
    grouping = "{country, pubType} vs {country}";
    sparql =
      {|SELECT ?c ?pt ?cntCP ?cntC {
  { SELECT ?c ?pt (COUNT(?g) AS ?cntCP)
    { ?pub pub_type ?pt . ?pub grant ?g .
      ?g grant_agency ?ga . ?g grant_country ?c . }
    GROUP BY ?c ?pt }
  { SELECT ?c (COUNT(?g1) AS ?cntC)
    { ?pub1 journal ?j1 . ?pub1 grant ?g1 .
      ?g1 grant_country ?c . }
    GROUP BY ?c }
}|} }

let mg13 =
  { id = "MG13"; dataset = Pubmed;
    description = "MeSH headings per author and publication type vs per type";
    selectivity = `Na; structure = "3:1 vs 3:1";
    grouping = "{author, pubType} vs {pubType}";
    sparql =
      {|SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?m) AS ?perAPT)
    { ?p pub_type ?pty . ?p mesh_heading ?m . ?p author ?a .
      ?a last_name ?ln . }
    GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?m1) AS ?perPT)
    { ?p1 pub_type ?pty . ?p1 mesh_heading ?m1 . ?p1 author ?a1 .
      ?a1 last_name ?ln1 . }
    GROUP BY ?pty }
}|} }

let mg14 =
  { id = "MG14"; dataset = Pubmed;
    description = "Chemicals per author and publication type vs per type";
    selectivity = `Na; structure = "3:1 vs 3:1";
    grouping = "{author, pubType} vs {pubType}";
    sparql =
      {|SELECT ?a ?pty ?perAPT ?perPT {
  { SELECT ?a ?pty (COUNT(?ch) AS ?perAPT)
    { ?p pub_type ?pty . ?p chemical ?ch . ?p author ?a .
      ?a last_name ?ln . }
    GROUP BY ?a ?pty }
  { SELECT ?pty (COUNT(?ch1) AS ?perPT)
    { ?p1 pub_type ?pty . ?p1 chemical ?ch1 . ?p1 author ?a1 .
      ?a1 last_name ?ln1 . }
    GROUP BY ?pty }
}|} }

let mg1516_query ~pub_type =
  Printf.sprintf
    {|SELECT ?ln ?perA ?allA {
  { SELECT ?ln (COUNT(?ch) AS ?perA)
    { ?pub pub_type "%s" . ?pub chemical ?ch . ?pub author ?a .
      ?a last_name ?ln . }
    GROUP BY ?ln }
  { SELECT (COUNT(?ch1) AS ?allA)
    { ?pub1 pub_type "%s" . ?pub1 chemical ?ch1 . ?pub1 author ?a1 .
      ?a1 last_name ?ln1 . } }
}|}
    pub_type pub_type

let mg15 =
  { id = "MG15"; dataset = Pubmed;
    description = "Chemicals per author last name vs total (Journal Article, low selectivity)";
    selectivity = `Low; structure = "3:1 vs 3:1";
    grouping = "{authorlastname} vs ALL";
    sparql = mg1516_query ~pub_type:"Journal Article" }

let mg16 =
  { mg15 with id = "MG16"; selectivity = `High;
    description = "Chemicals per author last name vs total (News, high selectivity)";
    sparql = mg1516_query ~pub_type:"News" }

let mg17 =
  { id = "MG17"; dataset = Pubmed;
    description = "Journal-article grants per country vs total";
    selectivity = `Na; structure = "3:2 vs 3:1"; grouping = "{country} vs ALL";
    sparql =
      {|SELECT ?c ?perC ?total {
  { SELECT ?c (COUNT(?g) AS ?perC)
    { ?pub pub_type "Journal Article" . ?pub journal ?j . ?pub grant ?g .
      ?g grant_agency ?ga . ?g grant_country ?c . }
    GROUP BY ?c }
  { SELECT (COUNT(?g1) AS ?total)
    { ?pub1 pub_type "Journal Article" . ?pub1 journal ?j1 . ?pub1 grant ?g1 .
      ?g1 grant_agency ?ga1 . } }
}|} }

let mg18 =
  { id = "MG18"; dataset = Pubmed;
    description = "Journal articles per author and grant country vs per country";
    selectivity = `Na; structure = "3:2 vs 2:2";
    grouping = "{author, country} vs {country}";
    sparql =
      {|SELECT ?c ?a ?perAC ?perC {
  { SELECT ?c ?a (COUNT(?g) AS ?perAC)
    { ?p pub_type "Journal Article" . ?p author ?a . ?p grant ?g .
      ?g grant_agency ?ga . ?g grant_country ?c . }
    GROUP BY ?c ?a }
  { SELECT ?c (COUNT(?g1) AS ?perC)
    { ?pub1 pub_type "Journal Article" . ?pub1 grant ?g1 .
      ?g1 grant_agency ?ga1 . ?g1 grant_country ?c . }
    GROUP BY ?c }
}|} }

let all =
  [ g1; g2; g3; g4; g5; g6; g7; g8; g9;
    mg1; mg2; mg3; mg4; mg6; mg7; mg8; mg9; mg10;
    mg11; mg12'; mg13; mg14; mg15; mg16; mg17; mg18 ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let find_exn id =
  match find id with
  | Some e -> e
  | None -> failwith (Printf.sprintf "unknown catalog query %s" id)

let by_dataset d = List.filter (fun e -> e.dataset = d) all

let single_grouping =
  List.filter (fun e -> String.length e.id >= 1 && e.id.[0] = 'G') all

let multi_grouping =
  List.filter (fun e -> String.length e.id >= 2 && String.sub e.id 0 2 = "MG") all

let parse entry = Rapida_sparql.Analytical.parse_exn entry.sparql

let pp_figure7 ppf () =
  Fmt.pf ppf "%-5s %-13s %-14s %-30s %s@."
    "Query" "Dataset" "Structure" "Grouping" "Selectivity";
  List.iter
    (fun e ->
      Fmt.pf ppf "%-5s %-13s %-14s %-30s %s@." e.id (dataset_name e.dataset)
        e.structure e.grouping
        (match e.selectivity with
        | `Low -> "lo"
        | `High -> "hi"
        | `Na -> "-"))
    multi_grouping
