lib/queries/catalog.ml: Fmt List Printf Rapida_sparql String
