lib/queries/catalog.mli: Fmt Rapida_sparql
