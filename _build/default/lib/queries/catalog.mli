(** The paper's query workload (Figure 7 and §5), adapted to this repo's
    synthetic vocabularies.

    Adaptations from the paper's appendix, documented per query in the
    entry descriptions where they matter: properties live in the [bench:]
    namespace; G7's pathway membership points at gene nodes (keeping the
    same star count and join roles) so the chain is self-consistent with
    one generator schema. Queries marked [`Low] selectivity touch the
    common product type / publication type, [`High] the rare one. *)

type dataset = Bsbm | Chem2bio | Pubmed

val dataset_name : dataset -> string

type entry = {
  id : string;  (** "G1" … "G9", "MG1" … "MG18" (MG5 unused, as in paper) *)
  dataset : dataset;
  description : string;
  selectivity : [ `Low | `High | `Na ];
  structure : string;  (** triple patterns per star, per pattern (Fig. 7) *)
  grouping : string;  (** grouping summary (Fig. 7) *)
  sparql : string;
}

val all : entry list
val find : string -> entry option
val find_exn : string -> entry
val by_dataset : dataset -> entry list

(** Single-grouping queries G1–G9 (Table 3 workload). *)
val single_grouping : entry list

(** Multi-grouping queries MG1–MG18 (Figure 8 / Table 4 workload). *)
val multi_grouping : entry list

(** [parse entry] parses the entry's SPARQL to the analytical normal
    form. @raise Failure on parse errors (catalog entries must parse; the
    test suite enforces it). *)
val parse : entry -> Rapida_sparql.Analytical.t

(** Render the Figure 7-style workload summary table. *)
val pp_figure7 : unit Fmt.t
