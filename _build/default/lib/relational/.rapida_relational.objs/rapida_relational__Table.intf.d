lib/relational/table.mli: Fmt Rapida_rdf Term
