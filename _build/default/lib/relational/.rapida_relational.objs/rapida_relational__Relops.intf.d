lib/relational/relops.mli: Rapida_rdf Rapida_sparql Table Term
