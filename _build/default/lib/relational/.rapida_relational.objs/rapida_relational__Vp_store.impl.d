lib/relational/vp_store.ml: Fmt Graph Hashtbl List Namespace Rapida_rdf String Table Term Triple
