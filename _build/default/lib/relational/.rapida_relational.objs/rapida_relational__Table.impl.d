lib/relational/table.ml: Array Fmt List Printf Rapida_rdf String Term
