lib/relational/mr_relops.mli: Rapida_mapred Relops Table
