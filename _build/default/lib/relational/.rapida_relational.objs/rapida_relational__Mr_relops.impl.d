lib/relational/mr_relops.ml: Array List Option Rapida_mapred Rapida_rdf Rapida_sparql Relops String Table Term
