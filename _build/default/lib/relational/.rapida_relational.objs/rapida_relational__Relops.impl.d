lib/relational/relops.ml: Array Float Hashtbl List Option Printf Rapida_rdf Rapida_sparql String Table Term
