lib/relational/vp_store.mli: Fmt Graph Rapida_rdf Table Term
