open Rapida_rdf
module Workflow = Rapida_mapred.Workflow
module Job = Rapida_mapred.Job
module Aggregate = Rapida_sparql.Aggregate

let key_size key =
  List.fold_left (fun acc t -> acc + String.length (Term.lexical t) + 2) 4 key

let opt_key_size key =
  List.fold_left
    (fun acc c ->
      acc + match c with Some t -> String.length (Term.lexical t) + 2 | None -> 1)
    4 key

(* Tagged rows: which side of the join a shuffled row came from. *)
type side = L | R

let repartition_join wf ?(kind = `Inner) ~name a b =
  let shared = Relops.shared_cols a b in
  let schema = Relops.join_schema a b in
  let tag side t row = (side, t, row) in
  let input = List.map (tag L a) a.Table.rows @ List.map (tag R b) b.Table.rows in
  let spec : ((side * Table.t * Table.row),
              Term.t list option,
              (side * Table.row),
              Table.row) Job.spec =
    {
      name;
      map =
        (fun (side, t, row) ->
          match Relops.key_of_row t shared row with
          | Some key -> [ (Some key, (side, row)) ]
          | None -> (
            (* NULL join keys never match; in a left-outer join the left
               row must still survive, so route it to a private key. *)
            match side, kind with
            | L, `Left_outer -> [ (None, (L, row)) ]
            | (L | R), (`Inner | `Left_outer) -> []));
      combine = None;
      reduce =
        (fun key tagged ->
          match key with
          | None ->
            List.map
              (fun (_, row) -> Relops.null_extend a b ~left_row:row)
              tagged
          | Some _ ->
            let lefts =
              List.filter_map (function L, r -> Some r | R, _ -> None) tagged
            in
            let rights =
              List.filter_map (function R, r -> Some r | L, _ -> None) tagged
            in
            List.concat_map
              (fun left_row ->
                match rights, kind with
                | [], `Left_outer -> [ Relops.null_extend a b ~left_row ]
                | [], `Inner -> []
                | rights, (`Inner | `Left_outer) ->
                  List.map
                    (fun right_row ->
                      Relops.merge_rows a b ~left_row ~right_row)
                    rights)
              lefts);
      input_size = (fun (_, _, row) -> Table.row_size_bytes row);
      key_size =
        (fun key -> match key with Some k -> key_size k | None -> 4);
      value_size = (fun (_, row) -> Table.row_size_bytes row + 1);
      output_size = Table.row_size_bytes;
    }
  in
  let rows = Workflow.run_job wf spec input in
  Table.make ~name ~schema rows

let map_join wf ?(kind = `Inner) ~name ~big ~small () =
  let spec : (Table.row, Table.row) Job.map_only_spec =
    {
      mo_name = name;
      mo_map =
        (fun row ->
          let single = { big with Table.rows = [ row ] } in
          (Relops.hash_join ~kind ~name single small).Table.rows);
      mo_input_size = Table.row_size_bytes;
      mo_output_size = Table.row_size_bytes;
    }
  in
  let rows = Workflow.run_map_only wf spec big.Table.rows in
  Table.make ~name ~schema:(Relops.join_schema big small) rows

let group_aggregate wf ~name ~keys ~aggs t =
  let key_idx = List.map (Table.col_index t) keys in
  let agg_idx =
    List.map
      (fun (a : Relops.agg_spec) -> Option.map (Table.col_index t) a.col)
      aggs
  in
  let init_states () =
    List.map
      (fun (a : Relops.agg_spec) -> Aggregate.init a.func ~distinct:a.distinct)
      aggs
  in
  let merge_states xs ys = List.map2 Aggregate.merge xs ys in
  let spec : (Table.row,
              Term.t option list,
              Aggregate.state list,
              Table.row) Job.spec =
    {
      name;
      map =
        (fun row ->
          let key = List.map (fun i -> row.(i)) key_idx in
          let states =
            List.map2
              (fun state idx ->
                let v =
                  match idx with
                  | None -> Some (Term.int 1)
                  | Some i -> row.(i)
                in
                Aggregate.add state v)
              (init_states ()) agg_idx
          in
          [ (key, states) ]);
      combine =
        Some
          (fun _key states ->
            match states with
            | [] -> []
            | first :: rest -> [ List.fold_left merge_states first rest ]);
      reduce =
        (fun key states ->
          match states with
          | [] -> []
          | first :: rest ->
            let merged = List.fold_left merge_states first rest in
            [ Array.of_list (key @ List.map Aggregate.finish merged) ]);
      input_size = Table.row_size_bytes;
      key_size = opt_key_size;
      value_size =
        (fun states ->
          List.fold_left (fun acc s -> acc + Aggregate.size_bytes s) 0 states);
      output_size = Table.row_size_bytes;
    }
  in
  let rows = Workflow.run_job wf spec t.Table.rows in
  let rows =
    if keys = [] && rows = [] then
      [ Array.of_list (List.map Aggregate.finish (init_states ())) ]
    else rows
  in
  let schema = keys @ List.map (fun (a : Relops.agg_spec) -> a.out) aggs in
  Table.make ~name ~schema rows

let distinct_project wf ~name ~cols t =
  let idx = List.map (Table.col_index t) cols in
  let spec : (Table.row, Term.t option list, unit, Table.row) Job.spec =
    {
      name;
      map = (fun row -> [ (List.map (fun i -> row.(i)) idx, ()) ]);
      combine = Some (fun _key _units -> [ () ]);
      reduce = (fun key _units -> [ Array.of_list key ]);
      input_size = Table.row_size_bytes;
      key_size = opt_key_size;
      value_size = (fun () -> 0);
      output_size = Table.row_size_bytes;
    }
  in
  let rows = Workflow.run_job wf spec t.Table.rows in
  Table.make ~name ~schema:cols rows
