(** Hive-style relational physical operators over the MapReduce
    simulator. Each call runs one MR cycle on the given workflow (map-only
    for map-side joins) and returns the result table.

    These mirror how Hive compiles a star-join + aggregation query:
    repartition joins shuffle both inputs on the join key; map-joins
    broadcast a small table and stream the big one in a map-only cycle;
    GROUP BY shuffles partial aggregation states computed map-side (the
    combiner / hash-aggregation optimization). *)

val repartition_join :
  Rapida_mapred.Workflow.t ->
  ?kind:[ `Inner | `Left_outer ] ->
  name:string -> Table.t -> Table.t -> Table.t

(** [map_join wf ~name ~big ~small] broadcasts [small] to all mappers.
    [small] must be the right side of the natural join. *)
val map_join :
  Rapida_mapred.Workflow.t ->
  ?kind:[ `Inner | `Left_outer ] ->
  name:string -> big:Table.t -> small:Table.t -> unit -> Table.t

val group_aggregate :
  Rapida_mapred.Workflow.t ->
  name:string -> keys:string list -> aggs:Relops.agg_spec list ->
  Table.t -> Table.t

(** [distinct_project wf ~name ~cols t] is SELECT DISTINCT cols — one MR
    cycle. *)
val distinct_project :
  Rapida_mapred.Workflow.t -> name:string -> cols:string list -> Table.t ->
  Table.t
