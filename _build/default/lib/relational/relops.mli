(** In-memory relational operators over {!Table}.

    Joins are natural joins: columns are named after query variables, so
    the shared column names are exactly the join variables. These are the
    building blocks that the MapReduce physical operators
    ({!Mr_relops}) apply inside map / reduce functions. *)

open Rapida_rdf
module Ast = Rapida_sparql.Ast

(** Aggregate specification: function, DISTINCT flag, input column
    ([None] = count-star), output column name. *)
type agg_spec = {
  func : Ast.agg_func;
  distinct : bool;
  col : string option;
  out : string;
}

val filter : (Table.t -> Table.row -> bool) -> Table.t -> Table.t

(** [project t cols] keeps [cols] in order.
    @raise Not_found on a missing column. *)
val project : Table.t -> string list -> Table.t

(** [rename_cols t renames] renames columns per the assoc list. *)
val rename_cols : Table.t -> (string * string) list -> Table.t

(** [shared_cols a b] is the natural-join columns, in [a]'s order. *)
val shared_cols : Table.t -> Table.t -> string list

(** [join_schema a b] is [a]'s schema followed by [b]'s non-shared
    columns — the schema a natural join produces. *)
val join_schema : Table.t -> Table.t -> string list

(** [merge_rows a b ~left_row ~right_row] builds an output row of
    [join_schema a b] from matched rows. *)
val merge_rows :
  Table.t -> Table.t -> left_row:Table.row -> right_row:Table.row -> Table.row

(** [null_extend a b ~left_row] pads a left row with NULLs for [b]'s
    non-shared columns (left-outer non-match). *)
val null_extend : Table.t -> Table.t -> left_row:Table.row -> Table.row

(** [key_of_row t cols row] is the values of [cols]; [None] when any is
    NULL (NULL never equi-joins). *)
val key_of_row : Table.t -> string list -> Table.row -> Term.t list option

(** [hash_join ?kind ~name a b] is the natural join. NULL keys do not
    match; with [`Left_outer], unmatched left rows survive NULL-padded. *)
val hash_join :
  ?kind:[ `Inner | `Left_outer ] -> name:string -> Table.t -> Table.t ->
  Table.t

(** [group_by ~name ~keys ~aggs t] groups by the key columns (NULLs group
    together) and computes the aggregates. [keys = []] is the grand total:
    exactly one output row. Output schema is [keys @ outs]. *)
val group_by :
  name:string -> keys:string list -> aggs:agg_spec list -> Table.t -> Table.t

(** [distinct t] removes duplicate rows. *)
val distinct : Table.t -> Table.t

(** [project_exprs ~name items t] evaluates an outer SELECT projection:
    [Svar] items copy columns, [Sexpr] items evaluate expressions over the
    row (columns become bindings; NULLs are unbound). [items = []] is the
    identity projection. *)
val project_exprs : name:string -> Ast.sel_item list -> Table.t -> Table.t

(** Total order on rows (NULLs first), used for canonical comparison. *)
val row_compare : Table.row -> Table.row -> int

(** [canonicalize t] sorts columns by name and rows by value — the
    canonical form for comparing results across engines. *)
val canonicalize : Table.t -> Table.t

(** [same_results a b] compares two result tables up to column and row
    order. *)
val same_results : Table.t -> Table.t -> bool

(** [order_limit ~order_by ~limit t] applies the outer SELECT's solution
    ordering (numeric-aware, NULLs first, full row as deterministic
    tiebreaker) and row limit. *)
val order_limit :
  order_by:Ast.order list -> limit:int option -> Table.t -> Table.t
