open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Aggregate = Rapida_sparql.Aggregate

type agg_spec = {
  func : Ast.agg_func;
  distinct : bool;
  col : string option;
  out : string;
}

let filter pred t =
  { t with Table.rows = List.filter (pred t) t.Table.rows }

let project t cols =
  let idx = List.map (Table.col_index t) cols in
  let rows =
    List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idx)) t.Table.rows
  in
  Table.make ~name:t.Table.name ~schema:cols rows

let rename_cols t renames =
  let schema =
    List.map
      (fun c -> match List.assoc_opt c renames with Some c' -> c' | None -> c)
      t.Table.schema
  in
  { t with Table.schema = schema }

let shared_cols a b =
  List.filter (fun c -> Table.mem_col b c) a.Table.schema

let right_only_cols a b =
  List.filter (fun c -> not (Table.mem_col a c)) b.Table.schema

let join_schema a b = a.Table.schema @ right_only_cols a b

let merge_rows a b ~left_row ~right_row =
  let extra = right_only_cols a b in
  let extras =
    List.map (fun c -> right_row.(Table.col_index b c)) extra
  in
  Array.append left_row (Array.of_list extras)

let null_extend a b ~left_row =
  let extra = right_only_cols a b in
  Array.append left_row (Array.make (List.length extra) None)

let key_of_row t cols row =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest -> (
      match row.(Table.col_index t c) with
      | Some v -> go (v :: acc) rest
      | None -> None)
  in
  go [] cols

let hash_join ?(kind = `Inner) ~name a b =
  let shared = shared_cols a b in
  let index = Hashtbl.create (max 16 (Table.cardinality b)) in
  List.iter
    (fun row ->
      match key_of_row b shared row with
      | Some key ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt index key) in
        Hashtbl.replace index key (row :: existing)
      | None -> ())
    b.Table.rows;
  let rows =
    List.concat_map
      (fun left_row ->
        let matches =
          match key_of_row a shared left_row with
          | Some key ->
            Option.value ~default:[] (Hashtbl.find_opt index key) |> List.rev
          | None -> []
        in
        match matches, kind with
        | [], `Inner -> []
        | [], `Left_outer -> [ null_extend a b ~left_row ]
        | rows, (`Inner | `Left_outer) ->
          List.map (fun right_row -> merge_rows a b ~left_row ~right_row) rows)
      a.Table.rows
  in
  Table.make ~name ~schema:(join_schema a b) rows

(* Group keys are option lists so NULLs group together (SQL semantics). *)
let group_by ~name ~keys ~aggs t =
  let key_idx = List.map (Table.col_index t) keys in
  let agg_idx =
    List.map (fun a -> Option.map (Table.col_index t) a.col) aggs
  in
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
      let key = List.map (fun i -> row.(i)) key_idx in
      let states =
        match Hashtbl.find_opt groups key with
        | Some states -> states
        | None ->
          let states =
            List.map (fun a -> ref (Aggregate.init a.func ~distinct:a.distinct)) aggs
          in
          Hashtbl.add groups key states;
          order := key :: !order;
          states
      in
      List.iter2
        (fun state idx ->
          let v =
            match idx with
            | None -> Some (Term.int 1) (* count-star: every row counts *)
            | Some i -> row.(i)
          in
          state := Aggregate.add !state v)
        states agg_idx)
    t.Table.rows;
  let out_schema = keys @ List.map (fun a -> a.out) aggs in
  let rows =
    if keys = [] && Hashtbl.length groups = 0 then
      (* Grand total over an empty input still yields one row of empty
         aggregates (COUNT = 0), as in SQL. *)
      [ Array.of_list
          (List.map
             (fun a -> Aggregate.finish (Aggregate.init a.func ~distinct:a.distinct))
             aggs) ]
    else
      List.rev_map
        (fun key ->
          let states = Hashtbl.find groups key in
          Array.of_list
            (key @ List.map (fun s -> Aggregate.finish !s) states))
        !order
  in
  Table.make ~name ~schema:out_schema rows

let distinct t =
  let seen = Hashtbl.create 64 in
  let rows =
    List.filter
      (fun row ->
        let key = Array.to_list row in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      t.Table.rows
  in
  { t with Table.rows = rows }

(* Evaluate the outer SELECT's projection expressions over each row. A row
   becomes a binding (NULL cells unbound); Svar items copy columns, Sexpr
   items evaluate arithmetic over them. *)
let project_exprs ~name items t =
  match items with
  | [] -> Table.rename t name
  | items ->
    let binding_of_row row =
      List.fold_left
        (fun (b, i) col ->
          let b =
            match row.(i) with
            | Some v -> Rapida_sparql.Binding.bind b col v
            | None -> b
          in
          (b, i + 1))
        (Rapida_sparql.Binding.empty, 0)
        t.Table.schema
      |> fst
    in
    let schema =
      List.map (function Ast.Svar v -> v | Ast.Sexpr (_, out) -> out) items
    in
    let rows =
      List.map
        (fun row ->
          let b = binding_of_row row in
          Array.of_list
            (List.map
               (function
                 | Ast.Svar v -> Rapida_sparql.Binding.lookup b v
                 | Ast.Sexpr (e, _) -> Rapida_sparql.Binding.eval_expr b e)
               items))
        t.Table.rows
    in
    Table.make ~name ~schema rows

let row_compare (a : Table.row) (b : Table.row) =
  let cell_compare x y =
    match x, y with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some s, Some t -> Term.compare s t
  in
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = cell_compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* Canonical form for cross-engine result comparison: columns sorted by
   name, rows sorted, and decimal literals rounded to 9 significant
   digits — engines fold floating-point sums in different orders (partial
   aggregation trees vs sequential folds), so the last bits of a SUM / AVG
   legitimately differ across plans. *)
let round_cell = function
  | Some (Term.Literal { lex; datatype = Term.Ddecimal }) as cell -> (
    match float_of_string_opt lex with
    | Some f ->
      Some (Term.Literal { lex = Printf.sprintf "%.9g" f; datatype = Term.Ddecimal })
    | None -> cell)
  | cell -> cell

let canonicalize t =
  let cols = List.sort String.compare t.Table.schema in
  let t' = project t cols in
  let rows = List.map (Array.map round_cell) t'.Table.rows in
  { t' with Table.rows = List.sort row_compare rows }

let same_results a b =
  let ca = canonicalize a and cb = canonicalize b in
  ca.Table.schema = cb.Table.schema
  && List.length ca.Table.rows = List.length cb.Table.rows
  && List.for_all2 (fun x y -> row_compare x y = 0) ca.Table.rows cb.Table.rows

(* ORDER BY + LIMIT over a result table. Numeric-aware per-key comparison
   (NULLs first), with the full row as a deterministic tiebreaker so that
   LIMIT selects the same rows in every engine. *)
let order_limit ~order_by ~limit t =
  let rows =
    match order_by with
    | [] -> t.Table.rows
    | keys ->
      let key_compare a b =
        let cell_value row col = row.(Table.col_index t col) in
        let value_compare x y =
          match x, y with
          | None, None -> 0
          | None, Some _ -> -1
          | Some _, None -> 1
          | Some s, Some u -> (
            match Term.as_number s, Term.as_number u with
            | Some fs, Some fu -> Float.compare fs fu
            | _ -> Term.compare s u)
        in
        let rec go = function
          | [] -> row_compare a b
          | key :: rest ->
            let col, flip =
              match key with
              | Rapida_sparql.Ast.Asc c -> (c, 1)
              | Rapida_sparql.Ast.Desc c -> (c, -1)
            in
            let c = flip * value_compare (cell_value a col) (cell_value b col) in
            if c <> 0 then c else go rest
        in
        go keys
      in
      List.stable_sort key_compare t.Table.rows
  in
  let rows =
    match limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { t with Table.rows = rows }
