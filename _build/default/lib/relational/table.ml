open Rapida_rdf

type row = Term.t option array

type t = { name : string; schema : string list; rows : row list }

let make ~name ~schema rows =
  List.iter
    (fun row ->
      if Array.length row <> List.length schema then
        invalid_arg
          (Printf.sprintf "Table.make %s: row arity %d, schema arity %d" name
             (Array.length row) (List.length schema)))
    rows;
  { name; schema; rows }

let col_index t name =
  let rec go i = function
    | [] -> raise Not_found
    | c :: _ when String.equal c name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.schema

let mem_col t name = List.exists (String.equal name) t.schema
let arity t = List.length t.schema
let cardinality t = List.length t.rows

let cell (row : row) i = row.(i)

let row_size_bytes row =
  Array.fold_left
    (fun acc cell ->
      acc
      + match cell with Some t -> String.length (Term.lexical t) + 2 | None -> 1)
    4 row

let size_bytes t = List.fold_left (fun acc r -> acc + row_size_bytes r) 0 t.rows

let rename t name = { t with name }

let pp_cell ppf = function
  | Some t -> Term.pp ppf t
  | None -> Fmt.string ppf "NULL"

let pp ppf t =
  Fmt.pf ppf "@[<v 2>%s(%a): %d rows@ %a@]" t.name
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    t.schema (cardinality t)
    (Fmt.list ~sep:Fmt.cut (fun ppf row ->
         Fmt.pf ppf "(%a)" (Fmt.array ~sep:Fmt.comma pp_cell) row))
    t.rows
