(** Vertical partitioning (Abadi et al.) of an RDF graph into relational
    tables: one two-column (s, o) table per property, with [rdf:type]
    triples further partitioned by object into one-column subject tables —
    the pre-processing the paper applies for its Hive baselines. *)

open Rapida_rdf

type t

(** [of_graph g] partitions the graph. *)
val of_graph : Graph.t -> t

(** [property_table store p] is the (s, o) table for property [p]; empty
    when the property is absent. For [rdf:type] use {!type_table}. *)
val property_table : t -> Term.t -> Table.t

(** [type_table store class_] is the one-column table of subjects of type
    [class_]. *)
val type_table : t -> Term.t -> Table.t

(** All (property, table) partitions, type partitions keyed by class
    term. *)
val partitions : t -> (Term.t * Table.t) list

(** [stats store] is (number of partitions, total bytes). *)
val stats : t -> int * int

val pp : t Fmt.t
