open Rapida_rdf

module Term_tbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  props : Table.t Term_tbl.t;  (** property term -> (s, o) table *)
  types : Table.t Term_tbl.t;  (** class term -> (s) table *)
}

let local_name term =
  let s = Term.lexical term in
  match String.rindex_opt s '/' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> (
    match String.rindex_opt s '#' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s)

let of_graph g =
  let props = Term_tbl.create 32 in
  let types = Term_tbl.create 8 in
  let prop_rows : Triple.t list ref Term_tbl.t = Term_tbl.create 32 in
  let type_rows : Triple.t list ref Term_tbl.t = Term_tbl.create 8 in
  List.iter
    (fun (t : Triple.t) ->
      if Term.equal t.p Namespace.rdf_type then
        match Term_tbl.find_opt type_rows t.o with
        | Some cell -> cell := t :: !cell
        | None -> Term_tbl.add type_rows t.o (ref [ t ])
      else
        match Term_tbl.find_opt prop_rows t.p with
        | Some cell -> cell := t :: !cell
        | None -> Term_tbl.add prop_rows t.p (ref [ t ]))
    (Graph.triples g);
  Term_tbl.iter
    (fun p cell ->
      let rows =
        List.rev_map (fun (t : Triple.t) -> [| Some t.s; Some t.o |]) !cell
      in
      Term_tbl.add props p
        (Table.make ~name:("vp_" ^ local_name p) ~schema:[ "s"; "o" ] rows))
    prop_rows;
  Term_tbl.iter
    (fun cls cell ->
      let rows = List.rev_map (fun (t : Triple.t) -> [| Some t.s |]) !cell in
      Term_tbl.add types cls
        (Table.make ~name:("type_" ^ local_name cls) ~schema:[ "s" ] rows))
    type_rows;
  { props; types }

let property_table store p =
  match Term_tbl.find_opt store.props p with
  | Some t -> t
  | None -> Table.make ~name:("vp_" ^ local_name p) ~schema:[ "s"; "o" ] []

let type_table store cls =
  match Term_tbl.find_opt store.types cls with
  | Some t -> t
  | None -> Table.make ~name:("type_" ^ local_name cls) ~schema:[ "s" ] []

let partitions store =
  Term_tbl.fold (fun p t acc -> (p, t) :: acc) store.props []
  @ Term_tbl.fold (fun c t acc -> (c, t) :: acc) store.types []

let stats store =
  List.fold_left
    (fun (n, bytes) (_, t) -> (n + 1, bytes + Table.size_bytes t))
    (0, 0) (partitions store)

let pp ppf store =
  let n, bytes = stats store in
  Fmt.pf ppf "vp-store: %d partitions, %d bytes" n bytes
