(** Relations: named tables of term-valued rows with nullable columns.

    This is the substrate for the Hive-style baselines: vertical-partition
    tables, join intermediates, and aggregate results all use this shape.
    [None] cells represent SQL NULL (produced by outer joins). *)

open Rapida_rdf

type row = Term.t option array

type t = { name : string; schema : string list; rows : row list }

val make : name:string -> schema:string list -> row list -> t

(** [col_index t name] is the position of column [name].
    @raise Not_found when absent. *)
val col_index : t -> string -> int

val mem_col : t -> string -> bool
val arity : t -> int
val cardinality : t -> int

(** [cell row i] is the value at column [i] (None = NULL). *)
val cell : row -> int -> Term.t option

(** [row_size_bytes row] estimates serialized row size. *)
val row_size_bytes : row -> int

(** [size_bytes t] estimates the serialized size of the whole relation. *)
val size_bytes : t -> int

(** [rename t name] relabels the table. *)
val rename : t -> string -> t

val pp : t Fmt.t
