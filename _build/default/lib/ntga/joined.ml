open Rapida_rdf

type t = { parts : (int * Triplegroup.t) list }

let of_tg i tg = { parts = [ (i, tg) ] }

let join a b =
  List.iter
    (fun (i, _) ->
      if List.mem_assoc i b.parts then
        invalid_arg "Joined.join: duplicate star index")
    a.parts;
  { parts = List.sort (fun (i, _) (j, _) -> Int.compare i j) (a.parts @ b.parts) }

let part t i = List.assoc_opt i t.parts

let all_props t =
  List.concat_map (fun (_, tg) -> Triplegroup.props tg) t.parts
  |> List.sort_uniq Term.compare

let has_prop t p = List.exists (fun (_, tg) -> Triplegroup.has_prop tg p) t.parts

let size_bytes t =
  List.fold_left (fun acc (_, tg) -> acc + Triplegroup.size_bytes tg) 4 t.parts

let pp ppf t =
  Fmt.pf ppf "@[<v 2>joined:@ %a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (i, tg) ->
         Fmt.pf ppf "[star %d] %a" i Triplegroup.pp tg))
    t.parts
