(** Equivalence-class-partitioned triplegroup storage.

    The paper's pre-processing groups triples by subject and stores the
    resulting triplegroups in files keyed by equivalence class (the set of
    properties a triplegroup carries). A star-pattern scan then reads only
    the partitions whose property set covers the pattern's required
    properties — the NTGA analogue of vertical partitioning. *)

open Rapida_rdf

type t

val of_graph : Graph.t -> t

(** All triplegroups, across partitions. *)
val all : t -> Triplegroup.t list

(** [scan store ~required] is the triplegroups of every partition whose
    property set includes all [required] properties (unprojected). *)
val scan : t -> required:Term.t list -> Triplegroup.t list

(** [scan_bytes store ~required] is the serialized size of the partitions
    a [scan] would read — the map-phase input size. *)
val scan_bytes : t -> required:Term.t list -> int

(** Number of partitions and total bytes. *)
val stats : t -> int * int

val pp : t Fmt.t
