open Rapida_sparql

let star_bindings (star : Star.t) (tg : Triplegroup.t) =
  let rec go bindings = function
    | [] -> bindings
    | tp :: rest ->
      let extended =
        List.concat_map
          (fun b ->
            List.filter_map
              (fun triple -> Binding.match_triple tp triple b)
              tg.Triplegroup.triples)
          bindings
      in
      if extended = [] then [] else go extended rest
  in
  go [ Binding.empty ] star.Star.patterns

let matches_star (star : Star.t) (tg : Triplegroup.t) =
  (* Existence check: one match per triple pattern suffices only when the
     patterns share no variables beyond the subject; with shared variables
     the full search is needed, so fall back to enumeration but stop at
     the first solution. *)
  star_bindings star tg <> []

let joined_bindings stars (joined : Joined.t) =
  let per_part =
    List.filter_map
      (fun (i, star) ->
        Option.map (fun tg -> star_bindings star tg) (Joined.part joined i))
      stars
  in
  List.fold_left
    (fun acc bindings ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if Binding.compatible a b then Some (Binding.merge a b) else None)
            bindings)
        acc)
    [ Binding.empty ] per_part
