(** NTGA logical operators (paper §3.1).

    These are the in-memory (logical) versions used to define semantics
    and for testing; the engines in [rapida_core] implement the same
    operators as MapReduce physical operators over the simulator. *)

open Rapida_rdf
module Ast = Rapida_sparql.Ast

(** A property requirement of a star pattern: the property must be
    present; when [obj] is set the triple's object must equal it (the
    rdf:type case of Def. 3.1). *)
type prop_req = { prop : Term.t; obj : Term.t option }

val req : ?obj:Term.t -> Term.t -> prop_req

(** [group_filter ~required tgs] keeps triplegroups containing a match for
    every requirement, projected to the required properties — the classic
    NTGA TG_GroupFilter. *)
val group_filter :
  required:prop_req list -> Triplegroup.t list -> Triplegroup.t list

(** [opt_group_filter ~prim ~opt tgs] is the Optional Group Filter
    (Def. 3.3): keeps triplegroups with matches for all primary
    requirements, projected to primary + optional properties. *)
val opt_group_filter :
  prim:prop_req list -> opt:prop_req list -> Triplegroup.t list ->
  Triplegroup.t list

(** [n_split ~prim ~secs tgs] (Def. 3.4) extracts, for each triplegroup
    and each secondary property set [secs.(i)], the sub-triplegroup with
    the primary properties plus set [i]'s properties — provided all of set
    [i]'s properties are present. Results are tagged with the set index. *)
val n_split :
  prim:Term.t list -> secs:Term.t list list -> Triplegroup.t list ->
  (int * Triplegroup.t) list

(** An α condition (Def. 3.5, Table 2): a conjunction requiring some
    secondary properties to be present and others absent. *)
type alpha = { required : Term.t list; forbidden : Term.t list }

val alpha_true : alpha

val alpha_holds_tg : alpha -> Triplegroup.t -> bool
val alpha_holds : alpha -> Joined.t -> bool

(** How one side of a join extracts its key(s) from a joined triplegroup:
    the subject of the part at [star], the objects of [`ObjectOf p] there
    (multi-valued properties yield several keys), or every object value
    ([`AnyObject], the unbound-property case). *)
type join_key = {
  star : int;
  access : [ `Subject | `ObjectOf of Term.t | `AnyObject ];
}

val key_values : join_key -> Joined.t -> Term.t list

(** [alpha_join ~left ~right ~left_key ~right_key ~alphas] (Def. 3.5)
    joins two triplegroup classes on their key values, keeping only
    combinations that satisfy at least one α condition. *)
val alpha_join :
  left:Joined.t list -> right:Joined.t list -> left_key:join_key ->
  right_key:join_key -> alphas:alpha list -> Joined.t list

(** [agg_join ~base ~detail ~theta ~alpha ~inputs ~aggs] (Def. 3.6) is the
    triplegroup Agg-Join: for each base element, aggregate over the detail
    elements in its range RNG(base) = those satisfying [theta] and
    [alpha]. [inputs base detail] lists the rows of aggregate-argument
    values that [detail] contributes to [base]'s group (one row per
    unfolded binding; each row has one entry per aggregate in [aggs]).
    Bases with empty ranges keep default (empty-state) values, per the
    MD-join semantics. *)
val agg_join :
  base:'b list ->
  detail:'d list ->
  theta:('b -> 'd -> bool) ->
  alpha:('d -> bool) ->
  inputs:('b -> 'd -> Term.t option list list) ->
  aggs:(Ast.agg_func * bool) list ->
  ('b * Term.t option list) list
