(** Triplegroups: the unit of the Nested TripleGroup Algebra (NTGA).

    A subject triplegroup is the set of triples sharing a subject — the
    denormalized "star" representation that lets NTGA evaluate all star
    joins of a query concurrently and represent intermediate results
    compactly (one triplegroup stands for the cross product of its
    multi-valued properties). *)

open Rapida_rdf

type t = { subject : Term.t; triples : Triple.t list }

val make : Term.t -> Triple.t list -> t

(** [props tg] is the sorted set of distinct properties in [tg]. *)
val props : t -> Term.t list

(** [has_prop tg p] tests property membership. *)
val has_prop : t -> Term.t -> bool

(** [objects_of tg p] is the object values of property [p] in order. *)
val objects_of : t -> Term.t -> Term.t list

(** [project tg props] keeps only triples whose property is in [props]. *)
val project : t -> Term.t list -> t

(** [union a b] merges two triplegroups with the same subject, dropping
    duplicate triples.
    @raise Invalid_argument if the subjects differ. *)
val union : t -> t -> t

(** [of_graph g] is all subject triplegroups of a graph. *)
val of_graph : Graph.t -> t list

(** Serialized size estimate for MapReduce cost accounting. *)
val size_bytes : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
