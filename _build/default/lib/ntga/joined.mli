(** Joined (annotated) triplegroups: the result of joining triplegroups
    from different star equivalence classes. Each part is tagged with the
    star index it matched in the (composite) graph pattern. *)

open Rapida_rdf

type t = { parts : (int * Triplegroup.t) list }  (** sorted by star index *)

val of_tg : int -> Triplegroup.t -> t

(** [join a b] concatenates the parts of two joined triplegroups.
    @raise Invalid_argument if a star index occurs in both. *)
val join : t -> t -> t

(** [part t i] is the triplegroup matched at star [i], if present. *)
val part : t -> int -> Triplegroup.t option

(** [all_props t] is the union of properties across all parts, sorted. *)
val all_props : t -> Term.t list

(** [has_prop t p] tests whether any part contains property [p]. *)
val has_prop : t -> Term.t -> bool

val size_bytes : t -> int
val pp : t Fmt.t
