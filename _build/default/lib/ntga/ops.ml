open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Aggregate = Rapida_sparql.Aggregate

type prop_req = { prop : Term.t; obj : Term.t option }

let req ?obj prop = { prop; obj }

let satisfies_req (tg : Triplegroup.t) r =
  List.exists
    (fun (t : Triple.t) ->
      Term.equal t.p r.prop
      && match r.obj with None -> true | Some o -> Term.equal t.o o)
    tg.triples

(* Projection keeping triples relevant to the given requirements: a triple
   survives if some requirement mentions its property and, when that
   requirement constrains the object, the object matches. *)
let project_reqs (tg : Triplegroup.t) reqs =
  {
    tg with
    Triplegroup.triples =
      List.filter
        (fun (t : Triple.t) ->
          List.exists
            (fun r ->
              Term.equal t.p r.prop
              && match r.obj with None -> true | Some o -> Term.equal t.o o)
            reqs)
        tg.Triplegroup.triples;
  }

let group_filter ~required tgs =
  List.filter_map
    (fun tg ->
      if List.for_all (satisfies_req tg) required then
        Some (project_reqs tg required)
      else None)
    tgs

let opt_group_filter ~prim ~opt tgs =
  List.filter_map
    (fun tg ->
      if List.for_all (satisfies_req tg) prim then
        Some (project_reqs tg (prim @ opt))
      else None)
    tgs

let n_split ~prim ~secs tgs =
  List.concat_map
    (fun tg ->
      List.concat
        (List.mapi
           (fun i sec ->
             if List.for_all (Triplegroup.has_prop tg) sec then
               [ (i, Triplegroup.project tg (prim @ sec)) ]
             else [])
           secs))
    tgs

type alpha = { required : Term.t list; forbidden : Term.t list }

let alpha_true = { required = []; forbidden = [] }

let alpha_holds_tg a (tg : Triplegroup.t) =
  List.for_all (Triplegroup.has_prop tg) a.required
  && not (List.exists (Triplegroup.has_prop tg) a.forbidden)

let alpha_holds a (j : Joined.t) =
  List.for_all (Joined.has_prop j) a.required
  && not (List.exists (Joined.has_prop j) a.forbidden)

type join_key = {
  star : int;
  access : [ `Subject | `ObjectOf of Term.t | `AnyObject ];
}

let key_values k (j : Joined.t) =
  (* Distinct key values: the same object can occur under several
     properties; emitting it twice would duplicate join results. *)
  match Joined.part j k.star with
  | None -> []
  | Some tg -> (
    match k.access with
    | `Subject -> [ tg.Triplegroup.subject ]
    | `ObjectOf p -> List.sort_uniq Term.compare (Triplegroup.objects_of tg p)
    | `AnyObject ->
      List.map (fun (t : Rapida_rdf.Triple.t) -> t.o) tg.Triplegroup.triples
      |> List.sort_uniq Term.compare)

module Term_tbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

let alpha_join ~left ~right ~left_key ~right_key ~alphas =
  let index = Term_tbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun key ->
          let existing =
            Option.value ~default:[] (Term_tbl.find_opt index key)
          in
          Term_tbl.replace index key (r :: existing))
        (key_values right_key r))
    right;
  List.concat_map
    (fun l ->
      List.concat_map
        (fun key ->
          match Term_tbl.find_opt index key with
          | None -> []
          | Some rights ->
            List.filter_map
              (fun r ->
                let combined = Joined.join l r in
                if
                  alphas = []
                  || List.exists (fun a -> alpha_holds a combined) alphas
                then Some combined
                else None)
              (List.rev rights))
        (key_values left_key l))
    left

let agg_join ~base ~detail ~theta ~alpha ~inputs ~aggs =
  let eligible = List.filter alpha detail in
  List.map
    (fun b ->
      let states =
        List.map (fun (f, distinct) -> Aggregate.init f ~distinct) aggs
      in
      let states =
        List.fold_left
          (fun states d ->
            if theta b d then
              List.fold_left
                (fun states row ->
                  List.map2 (fun s v -> Aggregate.add s v) states row)
                states (inputs b d)
            else states)
          states eligible
      in
      (b, List.map Aggregate.finish states))
    base
