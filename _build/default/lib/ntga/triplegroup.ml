open Rapida_rdf

type t = { subject : Term.t; triples : Triple.t list }

let make subject triples = { subject; triples }

let props tg =
  List.map (fun (t : Triple.t) -> t.p) tg.triples
  |> List.sort_uniq Term.compare

let has_prop tg p =
  List.exists (fun (t : Triple.t) -> Term.equal t.p p) tg.triples

let objects_of tg p =
  List.filter_map
    (fun (t : Triple.t) -> if Term.equal t.p p then Some t.o else None)
    tg.triples

let project tg keep =
  {
    tg with
    triples =
      List.filter
        (fun (t : Triple.t) -> List.exists (Term.equal t.p) keep)
        tg.triples;
  }

let union a b =
  if not (Term.equal a.subject b.subject) then
    invalid_arg "Triplegroup.union: different subjects"
  else
    let extra =
      List.filter
        (fun t -> not (List.exists (Triple.equal t) a.triples))
        b.triples
    in
    { a with triples = a.triples @ extra }

let of_graph g =
  Graph.fold_subject_groups g (fun s triples acc -> make s triples :: acc) []

let size_bytes tg =
  List.fold_left (fun acc t -> acc + Triple.size_bytes t) 4 tg.triples

let compare a b =
  let c = Term.compare a.subject b.subject in
  if c <> 0 then c
  else
    List.compare Triple.compare
      (List.sort Triple.compare a.triples)
      (List.sort Triple.compare b.triples)

let equal a b = compare a b = 0

let pp ppf tg =
  Fmt.pf ppf "@[<v 2>tg(%a):@ %a@]" Term.pp tg.subject
    (Fmt.list ~sep:Fmt.cut Triple.pp)
    tg.triples
