open Rapida_rdf

type partition = {
  props : Term.t list;  (** sorted *)
  tgs : Triplegroup.t list;
  bytes : int;
}

type t = { partitions : partition list }

let of_graph g =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun tg ->
      let props = Triplegroup.props tg in
      let key = List.map Term.lexical props in
      match Hashtbl.find_opt tbl key with
      | Some cell -> cell := tg :: !cell
      | None ->
        Hashtbl.add tbl key (ref [ tg ]);
        order := (key, props) :: !order)
    (Triplegroup.of_graph g);
  let partitions =
    List.rev_map
      (fun (key, props) ->
        let tgs = List.rev !(Hashtbl.find tbl key) in
        let bytes =
          List.fold_left (fun acc tg -> acc + Triplegroup.size_bytes tg) 0 tgs
        in
        { props; tgs; bytes })
      !order
  in
  { partitions }

let all t = List.concat_map (fun p -> p.tgs) t.partitions

let covers partition required =
  List.for_all (fun r -> List.exists (Term.equal r) partition.props) required

let scan t ~required =
  List.concat_map
    (fun p -> if covers p required then p.tgs else [])
    t.partitions

let scan_bytes t ~required =
  List.fold_left
    (fun acc p -> if covers p required then acc + p.bytes else acc)
    0 t.partitions

let stats t =
  List.fold_left
    (fun (n, bytes) p -> (n + 1, bytes + p.bytes))
    (0, 0) t.partitions

let pp ppf t =
  let n, bytes = stats t in
  Fmt.pf ppf "tg-store: %d equivalence classes, %d bytes" n bytes
