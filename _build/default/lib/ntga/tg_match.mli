(** Matching star patterns against triplegroups: enumerate the variable
    bindings a triplegroup represents.

    NTGA keeps intermediate results denormalized — one triplegroup with a
    multi-valued property stands for several flat solution rows. These
    functions unfold that representation where flat semantics are needed
    (filters and aggregation). *)

open Rapida_sparql

(** [star_bindings star tg] enumerates all bindings of [star]'s triple
    patterns against the triples of [tg] (the cartesian product over
    multi-valued properties). Empty if any triple pattern has no match. *)
val star_bindings : Star.t -> Triplegroup.t -> Binding.t list

(** [matches_star star tg] holds when [star_bindings] is non-empty,
    without materializing the product. *)
val matches_star : Star.t -> Triplegroup.t -> bool

(** [joined_bindings stars joined] merges per-star bindings across the
    parts of a joined triplegroup; [stars] associates star indexes with
    the star patterns to match. Parts without a listed pattern are
    ignored. Incompatible merges (shared variables with different values)
    are dropped. *)
val joined_bindings : (int * Star.t) list -> Joined.t -> Binding.t list
