lib/ntga/joined.ml: Fmt Int List Rapida_rdf Term Triplegroup
