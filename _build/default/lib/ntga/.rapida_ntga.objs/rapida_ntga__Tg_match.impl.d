lib/ntga/tg_match.ml: Binding Joined List Option Rapida_sparql Star Triplegroup
