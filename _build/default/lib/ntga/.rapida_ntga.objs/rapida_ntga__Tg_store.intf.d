lib/ntga/tg_store.mli: Fmt Graph Rapida_rdf Term Triplegroup
