lib/ntga/joined.mli: Fmt Rapida_rdf Term Triplegroup
