lib/ntga/ops.mli: Joined Rapida_rdf Rapida_sparql Term Triplegroup
