lib/ntga/triplegroup.ml: Fmt Graph List Rapida_rdf Term Triple
