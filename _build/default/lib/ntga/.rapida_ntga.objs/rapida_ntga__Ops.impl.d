lib/ntga/ops.ml: Hashtbl Joined List Option Rapida_rdf Rapida_sparql Term Triple Triplegroup
