lib/ntga/tg_match.mli: Binding Joined Rapida_sparql Star Triplegroup
