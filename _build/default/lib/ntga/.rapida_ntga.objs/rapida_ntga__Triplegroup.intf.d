lib/ntga/triplegroup.mli: Fmt Graph Rapida_rdf Term Triple
