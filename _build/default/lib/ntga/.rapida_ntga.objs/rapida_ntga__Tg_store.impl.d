lib/ntga/tg_store.ml: Fmt Hashtbl List Rapida_rdf Term Triplegroup
