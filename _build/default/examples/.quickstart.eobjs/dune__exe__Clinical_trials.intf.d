examples/clinical_trials.mli:
