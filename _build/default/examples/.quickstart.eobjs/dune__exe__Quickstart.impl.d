examples/quickstart.ml: Fmt Rapida_core Rapida_mapred Rapida_rdf Rapida_relational Rapida_sparql
