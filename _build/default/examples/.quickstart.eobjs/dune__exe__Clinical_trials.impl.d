examples/clinical_trials.ml: Array Fmt List Printf Rapida_core Rapida_datagen Rapida_mapred Rapida_rdf Rapida_ref Rapida_relational Rapida_sparql
