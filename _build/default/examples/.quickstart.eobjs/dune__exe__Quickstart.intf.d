examples/quickstart.mli:
