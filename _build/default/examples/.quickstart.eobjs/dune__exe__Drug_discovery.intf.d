examples/drug_discovery.mli:
