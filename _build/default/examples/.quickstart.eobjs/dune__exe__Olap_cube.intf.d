examples/olap_cube.mli:
