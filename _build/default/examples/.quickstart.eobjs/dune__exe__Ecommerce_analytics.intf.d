examples/ecommerce_analytics.mli:
