(** Paper-style result tables over experiment runs. *)

module Engine = Rapida_core.Engine

(** [pp_comparison ~title ~engines runs] renders one table: a row per
    query, a column per engine showing simulated seconds (the paper's
    execution-time tables), plus MR-cycle counts and the speedup of the
    last engine over the first. A trailing [*] marks a result that failed
    verification against the reference evaluator. *)
val pp_comparison :
  title:string -> engines:Engine.kind list -> Experiment.run list Fmt.t

(** [pp_cycles ~title ~engines runs] renders the MR-cycle matrix. *)
val pp_cycles :
  title:string -> engines:Engine.kind list -> Experiment.run list Fmt.t

(** [pp_bytes ~title ~engines runs] renders shuffled bytes per engine —
    the I/O-saving view of the same experiments. *)
val pp_bytes :
  title:string -> engines:Engine.kind list -> Experiment.run list Fmt.t

(** [pp_phases ~title ~engines runs] renders the per-phase time
    breakdown — where each engine's simulated seconds go
    (startup / map / shuffle+sort / reduce), the attribution view the
    paper's cycle-count arguments rest on. *)
val pp_phases :
  title:string -> engines:Engine.kind list -> Experiment.run list Fmt.t

(** [pp_degradation ~engines deg] renders a fault-injection degradation
    sweep: a row per fault rate, a column per engine showing simulated
    seconds and the slowdown over that engine's fault-free run.
    [aborted] marks a workflow that ran out of retries; a trailing [*]
    marks a (would-be-transparency-violating) diverged result. *)
val pp_degradation :
  engines:Engine.kind list -> Experiment.degradation Fmt.t

(** [pp_verification runs] summarizes cross-engine agreement. *)
val pp_verification : Experiment.run list Fmt.t

(** [speedup run ~baseline ~target] is simulated-time ratio baseline /
    target, when both succeeded. *)
val speedup :
  Experiment.run -> baseline:Engine.kind -> target:Engine.kind ->
  float option

(** [pp_memory ~engines sweep] renders a memory-budget sweep: a row per
    heap budget, a column per engine showing simulated seconds and the
    slowdown over that engine's unbounded run, flagged with [s] when the
    engine spilled, [!o] when tasks were OOM-killed (and rerun with the
    combiner disabled), [+r] when a broadcast join fell back to a
    repartition join, and a trailing [*] on a
    (would-be-transparency-violating) diverged result. *)
val pp_memory :
  engines:Engine.kind list -> Experiment.memory_sweep Fmt.t

(** [pp_recovery ~engines sweep] renders a checkpoint-recovery sweep: a
    row per fault-rate/policy pair, a column per engine showing
    simulated seconds, [rN/Ms] when the workflow recovered N times by
    replaying M simulated seconds since the last checkpoint, and [cK]
    when K checkpoints were written. [aborted] marks a workflow that ran
    out of retries (reachable only under the [Never] policy); a trailing
    [*] marks a (would-be-transparency-violating) diverged result. *)
val pp_recovery :
  engines:Engine.kind list -> Experiment.recovery Fmt.t

(** [pp_throughput sweep] renders a query-server throughput sweep: a row
    per (admission window, scheduler policy, sharing) setting showing
    per-query latency percentiles, slot utilization, server-path job
    count, and the jobs/scan-bytes saved versus back-to-back execution.
    The [ok] column confirms every per-query result matched its solo
    run — the sharing-transparency invariant. *)
val pp_throughput : Experiment.throughput Fmt.t

(** [pp_estimation ~engines sweep] renders a static-estimation sweep: a
    row per query showing the analyzer's root cardinality interval, the
    point estimate, the measured cardinality and its q-error, the
    per-node interval-violation count (soundness demands 0), and one
    column per engine marking whether the engine's result cardinality
    fell inside the root interval ([okN] / [outN] / [error]). The footer
    reports the median, p95, and max root q-error, the worst per-node
    q-error, and the total violation count. *)
val pp_estimation :
  engines:Engine.kind list -> Experiment.estimation_sweep Fmt.t

(** [pp_optimize ~engines sweep] renders a cost-based planner sweep: a
    row per query showing cold planning time, the timed cache hit,
    enumerated units and verified hints, the summed upper-bound cost of
    the heuristic vs chosen orders with the saving percentage, and
    whether every engine's optimized result stayed byte-identical
    ([yes] / [NO], with [[REJECTED]] marking a [Plan_verify] fallback).
    The footer reports the repeated-traffic server run: groups planned,
    plan-cache counters with the hit rate, and the misestimate-defense
    state. *)
val pp_optimize :
  engines:Engine.kind list -> Experiment.optimize_sweep Fmt.t

(** [pp_overload sweep] renders an overload sweep: a row per (arrival
    gap, fault rate) grid point comparing the unprotected server's
    goodput/missed/failed counts against the protected server's
    goodput/shed/missed, with a verdict column naming whichever won on
    goodput. *)
val pp_overload : Experiment.overload Fmt.t
