module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Relops = Rapida_relational.Relops
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats
module Trace = Rapida_mapred.Trace
module Graph = Rapida_rdf.Graph

type engine_result = {
  engine : Engine.kind;
  cycles : int;
  map_only_cycles : int;
  input_bytes : int;
  shuffle_bytes : int;
  output_bytes : int;
  est_time_s : float;
  phases : Stats.breakdown;
  wall_s : float;
  result_rows : int;
  agreed : bool;
  error : string option;
  trace : Trace.t;
}

type run = {
  query : Catalog.entry;
  dataset_label : string;
  triples : int;
  results : engine_result list;
}

(* Session-API bridge for the sweeps below, which report errors as
   strings: one prepared session per engine kind and dataset. *)
let execute kind ctx input q =
  Result.map_error Engine.error_message
    (Engine.execute (Engine.prepare kind input) ctx q)

let failed_result engine trace msg =
  {
    engine;
    cycles = 0;
    map_only_cycles = 0;
    input_bytes = 0;
    shuffle_bytes = 0;
    output_bytes = 0;
    est_time_s = 0.0;
    phases = Stats.breakdown_zero;
    wall_s = 0.0;
    result_rows = 0;
    agreed = false;
    error = Some msg;
    trace;
  }

let run_query ?(engines = Engine.all_kinds) options ~label input entry =
  let q = Catalog.parse entry in
  let graph = Engine.graph_of_input input in
  let expected = Rapida_ref.Ref_engine.run graph q in
  let results =
    List.map
      (fun kind ->
        (* A fresh context per engine run: each result's trace and
           counters describe exactly one engine's workflow. *)
        let ctx = Plan_util.context options in
        let t0 = Unix.gettimeofday () in
        match execute kind ctx input q with
        | Error msg ->
          failed_result kind (Rapida_mapred.Exec_ctx.trace ctx) msg
        | Ok { table; stats; trace } ->
          let wall_s = Unix.gettimeofday () -. t0 in
          {
            engine = kind;
            cycles = Stats.cycles stats;
            map_only_cycles = Stats.map_only_cycles stats;
            input_bytes = Stats.total_input_bytes stats;
            shuffle_bytes = Stats.total_shuffle_bytes stats;
            output_bytes = Stats.total_output_bytes stats;
            est_time_s = Stats.est_time_s stats;
            phases = Stats.total_breakdown stats;
            wall_s;
            result_rows = Table.cardinality table;
            agreed = Relops.same_results expected table;
            error = None;
            trace;
          })
      engines
  in
  { query = entry; dataset_label = label; triples = Graph.size graph; results }

let run_queries ?engines options ~label input entries =
  List.map (run_query ?engines options ~label input) entries

let result_for run kind =
  List.find_opt (fun r -> r.engine = kind) run.results

type estimation_result = {
  e_engine : Engine.kind;
  e_rows : int;
  e_in_bounds : bool;
  e_error : string option;
}

type estimation = {
  e_query : Catalog.entry;
  e_nodes : int;
  e_root : Rapida_analysis.Interval.Card.t;
  e_estimate : float;
  e_actual : int;
  e_q_error : float;
  e_max_node_q_error : float;
  e_violations : int;
  e_analysis_s : float;
  e_results : estimation_result list;
}

type estimation_sweep = {
  e_label : string;
  e_triples : int;
  e_catalog_build_s : float;
  e_estimations : estimation list;
}

let estimation_sweep ?(engines = Engine.all_kinds) options ~label input
    entries =
  let module Card = Rapida_analysis.Interval.Card in
  let module Card_analysis = Rapida_analysis.Card_analysis in
  let graph = Engine.graph_of_input input in
  let t0 = Unix.gettimeofday () in
  let catalog = Rapida_analysis.Stats_catalog.build graph in
  let e_catalog_build_s = Unix.gettimeofday () -. t0 in
  let e_estimations =
    List.map
      (fun entry ->
        let q = Catalog.parse entry in
        let t0 = Unix.gettimeofday () in
        let analysis =
          Card_analysis.analyze
            ~map_join_threshold:options.Plan_util.map_join_threshold catalog q
        in
        let e_analysis_s = Unix.gettimeofday () -. t0 in
        let measured = Card_analysis.measure graph analysis in
        let per_node = Card_analysis.measured_list measured in
        let e_violations =
          List.length
            (List.filter
               (fun ((n : Card_analysis.node), actual) ->
                 not (Card.contains n.Card_analysis.card actual))
               per_node)
        in
        let e_max_node_q_error =
          List.fold_left
            (fun acc ((n : Card_analysis.node), actual) ->
              Float.max acc (Card.q_error n.Card_analysis.card ~actual))
            1.0 per_node
        in
        let root = analysis.Card_analysis.root in
        let e_actual =
          match per_node with (_, actual) :: _ -> actual | [] -> 0
        in
        let e_results =
          List.map
            (fun kind ->
              let ctx = Plan_util.context options in
              match execute kind ctx input q with
              | Error msg ->
                {
                  e_engine = kind;
                  e_rows = 0;
                  e_in_bounds = false;
                  e_error = Some msg;
                }
              | Ok { table; _ } ->
                let rows = Table.cardinality table in
                {
                  e_engine = kind;
                  e_rows = rows;
                  e_in_bounds = Card.contains root.Card_analysis.card rows;
                  e_error = None;
                })
            engines
        in
        {
          e_query = entry;
          e_nodes = List.length per_node;
          e_root = root.Card_analysis.card;
          e_estimate = Card.point_estimate root.Card_analysis.card;
          e_actual;
          e_q_error = Card_analysis.root_q_error measured;
          e_max_node_q_error;
          e_violations;
          e_analysis_s;
          e_results;
        })
      entries
  in
  { e_label = label; e_triples = Graph.size graph; e_catalog_build_s;
    e_estimations }

let median_q_error ests =
  match List.sort Float.compare (List.map (fun e -> e.e_q_error) ests) with
  | [] -> 0.0
  | qs ->
    let n = List.length qs in
    if n mod 2 = 1 then List.nth qs (n / 2)
    else (List.nth qs ((n / 2) - 1) +. List.nth qs (n / 2)) /. 2.0

(* Nearest-rank percentile: the tail view the misestimate defense's
   escape threshold is grounded in — a good median with a bad p95/max
   is exactly the regime where runtime defense matters. *)
let q_error_percentile p ests =
  match List.sort Float.compare (List.map (fun e -> e.e_q_error) ests) with
  | [] -> 0.0
  | qs ->
    let n = List.length qs in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    List.nth qs (max 0 (min (n - 1) (rank - 1)))

let max_q_error ests =
  List.fold_left (fun acc e -> Float.max acc e.e_q_error) 0.0 ests

let all_agreed run = List.for_all (fun r -> r.agreed) run.results

(* --- Fault-injection degradation sweep --------------------------------- *)

module Fault_injector = Rapida_mapred.Fault_injector

type degradation_point = {
  d_engine : Engine.kind;
  d_rate : float;
  d_time_s : float;
  d_slowdown : float;
  d_attempts_failed : int;
  d_speculative : int;
  d_transparent : bool;
  d_aborted : bool;
}

type degradation = {
  d_query : Catalog.entry;
  d_seed : int;
  d_rates : float list;
  d_baseline : (Engine.kind * float) list;
  d_points : degradation_point list;
}

let degradation ?(engines = Engine.all_kinds) ?(seed = 7)
    ?(rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ]) options input entry =
  let q = Catalog.parse entry in
  let run_one kind cfg =
    let ctx =
      Plan_util.context (Plan_util.make ~base:options ~faults:cfg ())
    in
    execute kind ctx input q
  in
  let baseline =
    List.map
      (fun kind ->
        match run_one kind Fault_injector.default with
        | Ok { table; stats; _ } -> (kind, table, Stats.est_time_s stats)
        | Error msg ->
          invalid_arg
            (Printf.sprintf "degradation: fault-free %s failed: %s"
               (Engine.kind_name kind) msg))
      engines
  in
  let points =
    List.concat_map
      (fun rate ->
        List.map
          (fun (kind, base_table, base_s) ->
            let cfg =
              {
                Fault_injector.default with
                Fault_injector.seed;
                task_fail_p = rate;
                straggler_p = rate;
                job_retries = 2;
              }
            in
            match run_one kind cfg with
            | Ok { table; stats; _ } ->
              let t = Stats.est_time_s stats in
              {
                d_engine = kind;
                d_rate = rate;
                d_time_s = t;
                d_slowdown = (if base_s > 0.0 then t /. base_s else 1.0);
                d_attempts_failed = Stats.total_attempts_failed stats;
                d_speculative = Stats.total_speculative_launched stats;
                d_transparent = Relops.same_results base_table table;
                d_aborted = false;
              }
            | Error _ ->
              {
                d_engine = kind;
                d_rate = rate;
                d_time_s = 0.0;
                d_slowdown = 0.0;
                d_attempts_failed = 0;
                d_speculative = 0;
                d_transparent = false;
                d_aborted = true;
              })
          baseline)
      rates
  in
  {
    d_query = entry;
    d_seed = seed;
    d_rates = rates;
    d_baseline = List.map (fun (k, _, s) -> (k, s)) baseline;
    d_points = points;
  }

let degradation_point deg kind rate =
  List.find_opt
    (fun p -> p.d_engine = kind && p.d_rate = rate)
    deg.d_points

(* --- Memory-budget sweep ------------------------------------------------ *)

module Cluster = Rapida_mapred.Cluster
module Memory = Rapida_mapred.Memory
module Metrics = Rapida_mapred.Metrics

type memory_point = {
  m_engine : Engine.kind;
  m_heap_bytes : int;
  m_time_s : float;
  m_slowdown : float;
  m_spilled_bytes : int;
  m_spill_passes : int;
  m_oom_kills : int;
  m_mapjoin_fallbacks : int;
  m_transparent : bool;
}

type memory_sweep = {
  m_query : Catalog.entry;
  m_heaps : int list;
  m_baseline : (Engine.kind * float) list;
  m_points : memory_point list;
}

(* Shrinking the heap also shrinks the sort buffer (a container's sort
   buffer is a fraction of its heap, as in Hadoop), so one knob drives
   both spill pricing and the OOM/fallback ladder. *)
let mem_of_heap heap_bytes =
  {
    Memory.default with
    Memory.task_heap_bytes = heap_bytes;
    sort_buffer_bytes =
      max 1 (min Memory.default.Memory.sort_buffer_bytes (heap_bytes / 4));
  }

let memory_sweep ?(engines = Engine.all_kinds)
    ?(heaps =
      [
        Memory.default.Memory.task_heap_bytes;
        256 * 1024;
        64 * 1024;
        16 * 1024;
        4 * 1024;
        1024;
      ]) options input entry =
  let q = Catalog.parse entry in
  let run_one kind heap =
    let cluster =
      Cluster.with_memory options.Plan_util.cluster (mem_of_heap heap)
    in
    let ctx = Plan_util.context (Plan_util.make ~base:options ~cluster ()) in
    (ctx, execute kind ctx input q)
  in
  let unbounded = Memory.default.Memory.task_heap_bytes in
  let baseline =
    List.map
      (fun kind ->
        match run_one kind unbounded with
        | _, Ok { table; stats; _ } -> (kind, table, Stats.est_time_s stats)
        | _, Error msg ->
          invalid_arg
            (Printf.sprintf "memory_sweep: unbounded %s failed: %s"
               (Engine.kind_name kind) msg))
      engines
  in
  let points =
    List.concat_map
      (fun heap ->
        List.map
          (fun (kind, base_table, base_s) ->
            match run_one kind heap with
            | ctx, Ok { table; stats; _ } ->
              let t = Stats.est_time_s stats in
              {
                m_engine = kind;
                m_heap_bytes = heap;
                m_time_s = t;
                m_slowdown = (if base_s > 0.0 then t /. base_s else 1.0);
                m_spilled_bytes = Stats.total_spilled_bytes stats;
                m_spill_passes = Stats.total_spill_passes stats;
                m_oom_kills = Stats.total_oom_kills stats;
                m_mapjoin_fallbacks =
                  Metrics.get
                    (Rapida_mapred.Exec_ctx.metrics ctx)
                    "mem.mapjoin_fallbacks";
                m_transparent = Relops.same_results base_table table;
              }
            | _, Error msg ->
              invalid_arg
                (Printf.sprintf "memory_sweep: %s at heap=%d failed: %s"
                   (Engine.kind_name kind) heap msg))
          baseline)
      heaps
  in
  {
    m_query = entry;
    m_heaps = heaps;
    m_baseline = List.map (fun (k, _, s) -> (k, s)) baseline;
    m_points = points;
  }

let memory_point sweep kind heap =
  List.find_opt
    (fun p -> p.m_engine = kind && p.m_heap_bytes = heap)
    sweep.m_points

(* --- Checkpoint-recovery sweep ------------------------------------------ *)

module Checkpoint = Rapida_mapred.Checkpoint

type recovery_point = {
  r_engine : Engine.kind;
  r_rate : float;
  r_policy : Checkpoint.policy;
  r_completed : bool;
  r_time_s : float;
  r_replayed_s : float;
  r_saved_s : float;
  r_recoveries : int;
  r_checkpoints : int;
  r_checkpoint_s : float;
  r_transparent : bool;
}

type recovery = {
  r_query : Catalog.entry;
  r_seed : int;
  r_rates : float list;
  r_policies : Checkpoint.policy list;
  r_baseline : (Engine.kind * float) list;
  r_points : recovery_point list;
}

let recovery_sweep ?(engines = Engine.all_kinds) ?(seed = 7)
    ?(rates = [ 0.0; 0.1; 0.3 ])
    ?(policies =
      [
        Checkpoint.Never;
        Checkpoint.Every_k 1;
        Checkpoint.Every_k 2;
        Checkpoint.Adaptive (16 * 1024);
      ]) options input entry =
  let q = Catalog.parse entry in
  (* Harsh retry settings on purpose: no whole-job resubmission budget
     and only two task attempts, so a [Never] workflow can actually
     abort and an active policy has recoveries to price. *)
  let cfg_of rate =
    {
      Fault_injector.default with
      Fault_injector.seed;
      task_fail_p = rate;
      max_attempts = 2;
      job_retries = 0;
    }
  in
  let run_one kind rate policy =
    let checkpoint = { Checkpoint.default with Checkpoint.policy } in
    let ctx =
      Plan_util.context
        (Plan_util.make ~base:options ~faults:(cfg_of rate) ~checkpoint ())
    in
    (ctx, execute kind ctx input q)
  in
  let baseline =
    List.map
      (fun kind ->
        match run_one kind 0.0 Checkpoint.Never with
        | _, Ok { table; stats; _ } -> (kind, table, Stats.est_time_s stats)
        | _, Error msg ->
          invalid_arg
            (Printf.sprintf "recovery_sweep: fault-free %s failed: %s"
               (Engine.kind_name kind) msg))
      engines
  in
  let points =
    List.concat_map
      (fun rate ->
        List.concat_map
          (fun (kind, base_table, _) ->
            (* Reference for savings: recovery active but checkpoints
               never due (unreachable adaptive budget), so every
               recovery replays the whole completed prefix — the cost of
               naive whole-plan resubmission. *)
            let whole_replayed =
              match run_one kind rate (Checkpoint.Adaptive max_int) with
              | _, Ok { stats; _ } -> Stats.replayed_s stats
              | _, Error _ -> 0.0
            in
            List.map
              (fun policy ->
                match run_one kind rate policy with
                | ctx, Ok { table; stats; _ } ->
                  {
                    r_engine = kind;
                    r_rate = rate;
                    r_policy = policy;
                    r_completed = true;
                    r_time_s = Stats.est_time_s stats;
                    r_replayed_s = Stats.replayed_s stats;
                    r_saved_s =
                      (if policy = Checkpoint.Never then 0.0
                       else whole_replayed -. Stats.replayed_s stats);
                    r_recoveries =
                      Metrics.get
                        (Rapida_mapred.Exec_ctx.metrics ctx)
                        "mr.recoveries";
                    r_checkpoints = Stats.checkpoints_written stats;
                    r_checkpoint_s = Stats.checkpoint_s stats;
                    r_transparent = Relops.same_results base_table table;
                  }
                | _, Error _ ->
                  {
                    r_engine = kind;
                    r_rate = rate;
                    r_policy = policy;
                    r_completed = false;
                    r_time_s = 0.0;
                    r_replayed_s = 0.0;
                    r_saved_s = 0.0;
                    r_recoveries = 0;
                    r_checkpoints = 0;
                    r_checkpoint_s = 0.0;
                    r_transparent = false;
                  })
              policies)
          baseline)
      rates
  in
  {
    r_query = entry;
    r_seed = seed;
    r_rates = rates;
    r_policies = policies;
    r_baseline = List.map (fun (k, _, s) -> (k, s)) baseline;
    r_points = points;
  }

let recovery_point sweep kind rate policy =
  List.find_opt
    (fun p -> p.r_engine = kind && p.r_rate = rate && p.r_policy = policy)
    sweep.r_points

(* --- Query-server throughput sweep -------------------------------------- *)

module Server = Rapida_server.Server
module Scheduler = Rapida_mapred.Scheduler
module Workload = Rapida_server.Workload

type throughput_point = {
  t_window_s : float;
  t_policy : Scheduler.policy;
  t_share : bool;
  t_report : Server.t;
}

type throughput = {
  t_kind : Engine.kind;
  t_queries : int;
  t_points : throughput_point list;
}

let throughput ?(windows = [ 0.0; 2.0; 8.0 ])
    ?(policies = [ Scheduler.Fifo; Scheduler.Fair ])
    ?(share = [ true; false ]) options kind input workload =
  let points =
    List.concat_map
      (fun window_s ->
        List.concat_map
          (fun policy ->
            List.map
              (fun sh ->
                let cfg =
                  Server.config ~window_s ~policy ~share:sh ~options kind
                in
                {
                  t_window_s = window_s;
                  t_policy = policy;
                  t_share = sh;
                  t_report = Server.run cfg input workload;
                })
              share)
          policies)
      windows
  in
  { t_kind = kind; t_queries = Workload.size workload; t_points = points }

let throughput_point sweep ~window_s ~policy ~share =
  List.find_opt
    (fun p ->
      p.t_window_s = window_s && p.t_policy = policy && p.t_share = share)
    sweep.t_points

(* --- Query-server overload sweep ----------------------------------------- *)

type overload_point = {
  o_mean_gap_s : float;
  o_fault_rate : float;
  o_protected : Server.t;
  o_unprotected : Server.t;
}

type overload = {
  o_kind : Engine.kind;
  o_n : int;
  o_deadline_s : float;
  o_points : overload_point list;
}

let overload_sweep ?(gaps = [ 400.0; 30.0 ]) ?(fault_rates = [ 0.0; 0.08 ])
    ?(n = 12) ?(seed = 11) ?(deadline_s = 900.0) ?(queue_cap = 4) options kind
    input =
  (* Both servers see the same arrival stream, deadlines, and fault
     seed; only the protection differs. The unprotected server admits
     everything (deadlines observed, never enforced); the protected one
     bounds its queue, refuses infeasible deadlines, breaks the circuit
     on consecutive failures, and degrades under pressure. *)
  let unprotected_ov = Server.overload ~deadline_s () in
  let protected_ov =
    Server.overload ~deadline_s ~queue_cap
      ~shed_policy:Server.Deadline_aware ~breaker_k:3 ~degrade:true
      ~degrade_depth:3 ~degrade_drain_s:(deadline_s /. 2.0) ()
  in
  let points =
    List.concat_map
      (fun mean_gap_s ->
        List.map
          (fun rate ->
            let workload =
              Workload.generate_exn ~seed ~n ~mean_gap_s ()
            in
            let faults =
              {
                Fault_injector.default with
                Fault_injector.seed = seed;
                task_fail_p = rate;
                max_attempts = 2;
              }
            in
            let options = Plan_util.make ~base:options ~faults () in
            let run ov =
              Server.run
                (Server.config ~overload:ov ~options kind)
                input workload
            in
            {
              o_mean_gap_s = mean_gap_s;
              o_fault_rate = rate;
              o_protected = run protected_ov;
              o_unprotected = run unprotected_ov;
            })
          fault_rates)
      gaps
  in
  { o_kind = kind; o_n = n; o_deadline_s = deadline_s; o_points = points }

let overload_point sweep ~mean_gap_s ~fault_rate =
  List.find_opt
    (fun p -> p.o_mean_gap_s = mean_gap_s && p.o_fault_rate = fault_rate)
    sweep.o_points

(* --- Fuzzing sweep ------------------------------------------------------- *)

module Fuzz = Rapida_fuzz.Fuzz

type fuzz_sweep = {
  f_clean : Fuzz.report;
  f_broken : Fuzz.report;
  f_caught : bool;
  f_elapsed_s : float;
}

let fuzz_sweep ?(budget = 200) ?(seed = 42) ?(products = 30) () =
  let start = Unix.gettimeofday () in
  let cfg = { Fuzz.default_config with seed; budget; products } in
  let clean = Fuzz.run cfg in
  (* The same budget against an engine that silently drops a result row:
     the differential oracle must catch it, proving the clean run's
     silence means something. *)
  let broken =
    Fuzz.run
      {
        cfg with
        budget = min budget 50;
        break_table = Some (Fuzz.break_drop_row Engine.Hive_mqo);
      }
  in
  {
    f_clean = clean;
    f_broken = broken;
    f_caught = Fuzz.violations broken > 0;
    f_elapsed_s = Unix.gettimeofday () -. start;
  }

(* --- Cost-based planner sweep -------------------------------------------- *)

module Planner = Rapida_planner.Planner
module Cost_model = Rapida_planner.Cost_model
module Join_enum = Rapida_planner.Join_enum

type optimize_entry = {
  p_query : Catalog.entry;
  p_planning_ms : float;
  p_replan_ms : float;
  p_units : int;
  p_hints : int;
  p_heuristic_hi : float;
  p_chosen_hi : float;
  p_all_verified : bool;
  p_identical : bool;
}

type optimize_sweep = {
  p_label : string;
  p_triples : int;
  p_policy : Cost_model.policy;
  p_catalog_build_s : float;
  p_entries : optimize_entry list;
  p_server : Server.t;
}

let optimize_sweep ?(engines = Engine.all_kinds)
    ?(policy = Cost_model.Worst_case) ?(seed = 11) ?(arrivals = 12) options
    ~label input entries =
  let graph = Engine.graph_of_input input in
  let t0 = Unix.gettimeofday () in
  let catalog = Rapida_analysis.Stats_catalog.build graph in
  let p_catalog_build_s = Unix.gettimeofday () -. t0 in
  let catalog_fp = Planner.catalog_fingerprint catalog in
  let cluster = options.Plan_util.cluster in
  let cache = Planner.create_cache ~capacity:64 in
  let p_entries =
    List.map
      (fun entry ->
        let q = Catalog.parse entry in
        let t0 = Unix.gettimeofday () in
        let d, _ =
          Planner.plan_cached ~cache ~catalog ~catalog_fp ~policy ~cluster q
        in
        let p_planning_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
        (* The same shape again: a guaranteed cache hit, timed to show
           hits skip enumeration entirely. *)
        let t1 = Unix.gettimeofday () in
        let _, hit =
          Planner.plan_cached ~cache ~catalog ~catalog_fp ~policy ~cluster q
        in
        assert (hit = `Hit);
        let p_replan_ms = 1000.0 *. (Unix.gettimeofday () -. t1) in
        let sum f =
          List.fold_left (fun acc u -> acc +. f u) 0.0 d.Planner.d_units
        in
        let p_chosen_hi =
          sum (fun (u : Planner.unit_decision) ->
              u.Planner.u_cost.Cost_model.s_hi)
        in
        let p_heuristic_hi =
          sum (fun (u : Planner.unit_decision) ->
              match u.Planner.u_heuristic with
              | Some h -> h.Join_enum.c_cost.Cost_model.s_hi
              | None -> u.Planner.u_cost.Cost_model.s_hi)
        in
        let optimized = Planner.apply d options in
        let p_identical =
          List.for_all
            (fun kind ->
              let run opts = execute kind (Plan_util.context opts) input q in
              match (run options, run optimized) with
              | Ok a, Ok b ->
                Relops.same_results a.Engine.table b.Engine.table
              | _ -> false)
            engines
        in
        {
          p_query = entry;
          p_planning_ms;
          p_replan_ms;
          p_units = List.length d.Planner.d_units;
          p_hints = List.length d.Planner.d_join_orders;
          p_heuristic_hi;
          p_chosen_hi;
          p_all_verified =
            List.for_all
              (fun (u : Planner.unit_decision) -> u.Planner.u_verified)
              d.Planner.d_units;
          p_identical;
        })
      entries
  in
  (* Repeated server traffic through the armed planner: the generated
     workload revisits catalog shapes, so the plan cache must show a
     nonzero hit rate while every answer still matches its solo run. *)
  let workload = Workload.generate_exn ~seed ~n:arrivals ~mean_gap_s:3.0 () in
  let p_server =
    Server.run
      (Server.config ~options
         ~optimize:(Server.optimize ~policy ())
         Engine.Rapid_analytics)
      input workload
  in
  {
    p_label = label;
    p_triples = Graph.size graph;
    p_policy = policy;
    p_catalog_build_s;
    p_entries;
    p_server;
  }
