(** Experiment runner: evaluate catalog queries on all engines over a
    prepared dataset, verify every engine against the reference
    evaluator, and collect simulator statistics plus measured wall-clock
    time.

    Each engine run gets a fresh execution context built from the given
    options, so the per-result trace and phase breakdown describe exactly
    one engine's workflow. *)

module Engine = Rapida_core.Engine
module Catalog = Rapida_queries.Catalog
module Stats = Rapida_mapred.Stats
module Trace = Rapida_mapred.Trace

type engine_result = {
  engine : Engine.kind;
  cycles : int;
  map_only_cycles : int;
  input_bytes : int;
  shuffle_bytes : int;
  output_bytes : int;
  est_time_s : float;  (** simulated cluster seconds from the cost model *)
  phases : Stats.breakdown;  (** per-phase totals across the workflow *)
  wall_s : float;  (** measured wall-clock of the in-memory execution *)
  result_rows : int;
  agreed : bool;  (** result identical to the reference evaluator *)
  error : string option;
  trace : Trace.t;  (** the run's span trace (Chrome trace-event export) *)
}

type run = {
  query : Catalog.entry;
  dataset_label : string;
  triples : int;
  results : engine_result list;
}

(** [run_query ?engines options ~label input entry] evaluates one catalog
    query. Defaults to all four engines. *)
val run_query :
  ?engines:Engine.kind list ->
  Rapida_core.Plan_util.options ->
  label:string -> Engine.input -> Catalog.entry -> run

(** [run_queries] maps {!run_query} over entries, reusing the input. *)
val run_queries :
  ?engines:Engine.kind list ->
  Rapida_core.Plan_util.options ->
  label:string -> Engine.input -> Catalog.entry list -> run list

(** [result_for run kind] finds an engine's result in a run. *)
val result_for : run -> Engine.kind -> engine_result option

(** [all_agreed run] holds when every engine matched the reference. *)
val all_agreed : run -> bool

(** One engine's result cardinality checked against the analyzer's root
    interval in an {!estimation_sweep}. *)
type estimation_result = {
  e_engine : Engine.kind;
  e_rows : int;  (** the engine's result cardinality *)
  e_in_bounds : bool;  (** [e_rows] inside the root interval *)
  e_error : string option;
}

(** One catalog query's static-estimation quality: the analyzer's root
    interval and point estimate against the measured cardinality, the
    per-node soundness count, and every engine's result checked against
    the root interval. *)
type estimation = {
  e_query : Catalog.entry;
  e_nodes : int;  (** plan nodes annotated *)
  e_root : Rapida_analysis.Interval.Card.t;  (** root interval *)
  e_estimate : float;  (** root point estimate *)
  e_actual : int;  (** measured root cardinality (reference semantics) *)
  e_q_error : float;  (** root q-error *)
  e_max_node_q_error : float;  (** worst per-node q-error *)
  e_violations : int;
      (** plan nodes whose interval misses the measured cardinality —
          soundness demands 0 *)
  e_analysis_s : float;  (** wall-clock of the static analysis alone *)
  e_results : estimation_result list;
}

type estimation_sweep = {
  e_label : string;
  e_triples : int;
  e_catalog_build_s : float;  (** wall-clock of the one-pass catalog build *)
  e_estimations : estimation list;
}

(** [estimation_sweep options ~label input entries] builds a
    {!Rapida_analysis.Stats_catalog} from the input's graph (timed),
    statically analyzes every entry, measures every plan node's true
    cardinality, and runs every engine to check its result cardinality
    against the root interval — the q-error/soundness view of the
    static analyzer across the catalog. *)
val estimation_sweep :
  ?engines:Engine.kind list ->
  Rapida_core.Plan_util.options ->
  label:string ->
  Engine.input ->
  Catalog.entry list ->
  estimation_sweep

(** [median_q_error ests] is the median root q-error (0 when empty). *)
val median_q_error : estimation list -> float

(** [q_error_percentile p ests] is the nearest-rank [p]-percentile
    ([0 < p <= 1]) of the root q-errors (0 when empty) — the tail view
    the misestimate defense's thresholds are grounded in. *)
val q_error_percentile : float -> estimation list -> float

(** [max_q_error ests] is the worst root q-error (0 when empty). *)
val max_q_error : estimation list -> float

(** One engine at one fault rate in a {!degradation} sweep. *)
type degradation_point = {
  d_engine : Engine.kind;
  d_rate : float;  (** per-attempt crash and straggler probability *)
  d_time_s : float;  (** simulated time under faults (0 when aborted) *)
  d_slowdown : float;  (** [d_time_s] over the engine's fault-free time *)
  d_attempts_failed : int;
  d_speculative : int;
  d_transparent : bool;
      (** result identical to the engine's fault-free result *)
  d_aborted : bool;  (** the workflow ran out of retries *)
}

type degradation = {
  d_query : Catalog.entry;
  d_seed : int;
  d_rates : float list;
  d_baseline : (Engine.kind * float) list;  (** fault-free times *)
  d_points : degradation_point list;  (** rate-major, engine order *)
}

(** [degradation ?engines ?seed ?rates options input entry] sweeps fault
    rates over one catalog query: for each rate, every engine runs with
    per-attempt crash and straggler probability set to the rate (two
    whole-job retries, seeded injection), and the point records the
    simulated-time degradation relative to that engine's fault-free run
    plus whether fault tolerance stayed transparent. Rates default to
    [0, 0.02, 0.05, 0.1, 0.2].

    @raise Invalid_argument when a fault-free run fails. *)
val degradation :
  ?engines:Engine.kind list ->
  ?seed:int ->
  ?rates:float list ->
  Rapida_core.Plan_util.options ->
  Engine.input ->
  Catalog.entry ->
  degradation

(** [degradation_point deg kind rate] finds one sweep point. *)
val degradation_point :
  degradation -> Engine.kind -> float -> degradation_point option

(** One engine at one heap budget in a {!memory_sweep}. *)
type memory_point = {
  m_engine : Engine.kind;
  m_heap_bytes : int;  (** per-task heap for this point *)
  m_time_s : float;  (** simulated time under the budget *)
  m_slowdown : float;  (** [m_time_s] over the engine's unbounded time *)
  m_spilled_bytes : int;  (** external-sort bytes moved through local disk *)
  m_spill_passes : int;
  m_oom_kills : int;  (** attempts killed over the hard heap limit *)
  m_mapjoin_fallbacks : int;
      (** broadcast joins degraded to repartition joins by the planner *)
  m_transparent : bool;
      (** result identical to the engine's unbounded result *)
}

type memory_sweep = {
  m_query : Catalog.entry;
  m_heaps : int list;  (** swept budgets, largest first *)
  m_baseline : (Engine.kind * float) list;  (** unbounded times *)
  m_points : memory_point list;  (** heap-major, engine order *)
}

(** [memory_sweep ?engines ?heaps options input entry] shrinks the
    per-task heap across [heaps] (the sort buffer follows at a quarter
    of the heap, capped at the default) over one catalog query: each
    point records the simulated-time degradation relative to that
    engine's unbounded run, the spill/OOM/fallback counters, and
    whether the results stayed byte-identical — the memory model's
    transparency invariant. Defaults sweep 1 GiB down to 1 KiB.

    @raise Invalid_argument when a run fails. *)
val memory_sweep :
  ?engines:Engine.kind list ->
  ?heaps:int list ->
  Rapida_core.Plan_util.options ->
  Engine.input ->
  Catalog.entry ->
  memory_sweep

(** [memory_point sweep kind heap] finds one sweep point. *)
val memory_point :
  memory_sweep -> Engine.kind -> int -> memory_point option

(** One engine at one fault rate under one checkpoint policy in a
    {!recovery_sweep}. *)
type recovery_point = {
  r_engine : Engine.kind;
  r_rate : float;  (** per-attempt crash probability *)
  r_policy : Rapida_mapred.Checkpoint.policy;
  r_completed : bool;  (** [false] iff the workflow aborted *)
  r_time_s : float;  (** simulated time, 0 when aborted *)
  r_replayed_s : float;  (** simulated time re-charged by recoveries *)
  r_saved_s : float;
      (** replay time avoided versus whole-plan resubmission (the
          recovery-active, never-due reference policy); 0 for [Never] *)
  r_recoveries : int;  (** checkpoint-restart events *)
  r_checkpoints : int;  (** checkpoints written *)
  r_checkpoint_s : float;  (** simulated time spent writing them *)
  r_transparent : bool;
      (** result identical to the engine's fault-free result *)
}

type recovery = {
  r_query : Catalog.entry;
  r_seed : int;
  r_rates : float list;
  r_policies : Rapida_mapred.Checkpoint.policy list;
  r_baseline : (Engine.kind * float) list;  (** fault-free times *)
  r_points : recovery_point list;  (** rate-major, engine, policy order *)
}

(** [recovery_sweep ?engines ?seed ?rates ?policies options input entry]
    crosses fault rates with checkpoint policies over one catalog query.
    Retries are deliberately harsh (two task attempts, no whole-job
    resubmissions) so that [Never] can abort while any active policy
    recovers; each point records completion, replay/checkpoint pricing,
    the time saved versus whole-plan resubmission, and whether the
    result stayed byte-identical to the fault-free run. Rates default to
    [0, 0.1, 0.3]; policies to [Never], [Every_k 1], [Every_k 2], and
    [Adaptive 16 KiB].

    @raise Invalid_argument when a fault-free run fails. *)
val recovery_sweep :
  ?engines:Engine.kind list ->
  ?seed:int ->
  ?rates:float list ->
  ?policies:Rapida_mapred.Checkpoint.policy list ->
  Rapida_core.Plan_util.options ->
  Engine.input ->
  Catalog.entry ->
  recovery

(** [recovery_point sweep kind rate policy] finds one sweep point. *)
val recovery_point :
  recovery -> Engine.kind -> float -> Rapida_mapred.Checkpoint.policy ->
  recovery_point option

(** One (admission window, scheduler policy, sharing) setting of a
    query-server {!throughput} sweep, carrying the server's full report
    for that setting. *)
type throughput_point = {
  t_window_s : float;
  t_policy : Rapida_mapred.Scheduler.policy;
  t_share : bool;
  t_report : Rapida_server.Server.t;
}

type throughput = {
  t_kind : Engine.kind;
  t_queries : int;
  t_points : throughput_point list;  (** window-major, policy, share order *)
}

(** [throughput ?windows ?policies ?share options kind input workload]
    drives one workload through the query server at every combination of
    admission window, scheduler policy, and sharing mode: per-query
    latency percentiles, slot utilization, and the jobs/scan-bytes saved
    against back-to-back execution, with every result checked against
    its solo run. Windows default to [0, 2, 8] seconds; policies to FIFO
    and fair-share; sharing to both on and off. *)
val throughput :
  ?windows:float list ->
  ?policies:Rapida_mapred.Scheduler.policy list ->
  ?share:bool list ->
  Rapida_core.Plan_util.options ->
  Engine.kind ->
  Engine.input ->
  Rapida_server.Workload.t ->
  throughput

(** [throughput_point sweep ~window_s ~policy ~share] finds one setting. *)
val throughput_point :
  throughput ->
  window_s:float ->
  policy:Rapida_mapred.Scheduler.policy ->
  share:bool ->
  throughput_point option

(** One (arrival rate, fault rate) grid point of an {!overload_sweep}:
    the same deadline-carrying workload through a protected server
    (bounded queue, deadline-aware shedding, circuit breaker,
    degradation ladder) and an unprotected one (deadlines observed but
    never enforced). *)
type overload_point = {
  o_mean_gap_s : float;
  o_fault_rate : float;
  o_protected : Rapida_server.Server.t;
  o_unprotected : Rapida_server.Server.t;
}

type overload = {
  o_kind : Engine.kind;
  o_n : int;  (** arrivals per point *)
  o_deadline_s : float;  (** per-query relative deadline *)
  o_points : overload_point list;  (** gap-major, fault-rate order *)
}

(** [overload_sweep options kind input] crosses arrival rate (mean
    inter-arrival gaps, default [8; 1] seconds) with per-attempt fault
    rate (default [0; 0.2]) and runs each point through both servers.
    The claim the sweep exists to demonstrate: under the heaviest
    arrival × fault load, shedding + degradation yields strictly more
    goodput (deadline-met fraction of all arrivals) than admitting
    everything, and every shed query carries a typed fate. *)
val overload_sweep :
  ?gaps:float list ->
  ?fault_rates:float list ->
  ?n:int ->
  ?seed:int ->
  ?deadline_s:float ->
  ?queue_cap:int ->
  Rapida_core.Plan_util.options ->
  Engine.kind ->
  Engine.input ->
  overload

(** [overload_point sweep ~mean_gap_s ~fault_rate] finds one grid
    point. *)
val overload_point :
  overload -> mean_gap_s:float -> fault_rate:float -> overload_point option

(** A fuzzing run pair for the benchmark harness: a clean run over the
    built-in dataset (expected to pass every oracle) and a short run
    against an intentionally-broken engine (expected to be caught by the
    differential oracle — the sweep's self-test that a clean report is
    meaningful). *)
type fuzz_sweep = {
  f_clean : Rapida_fuzz.Fuzz.report;
  f_broken : Rapida_fuzz.Fuzz.report;  (** run with a row-dropping engine *)
  f_caught : bool;  (** the broken engine produced at least one violation *)
  f_elapsed_s : float;
}

(** [fuzz_sweep ?budget ?seed ?products ()] runs the fuzzer with all four
    oracles over the built-in BSBM dataset, then re-runs a short budget
    with {!Rapida_fuzz.Fuzz.break_drop_row} applied to one engine.
    Budget defaults to 200 cases, seed to 42, products to 30. *)
val fuzz_sweep :
  ?budget:int -> ?seed:int -> ?products:int -> unit -> fuzz_sweep

(** One catalog query through the cost-based planner in an
    {!optimize_sweep}: planning time (cold, then a timed guaranteed
    cache hit), the enumerated units and verified hints, the summed
    upper-bound cost of the chosen orders against the heuristic orders
    (the costed-vs-heuristic delta), and whether every engine's
    optimized result stayed byte-identical to its heuristic run. *)
type optimize_entry = {
  p_query : Rapida_queries.Catalog.entry;
  p_planning_ms : float;  (** cold plan through an empty cache *)
  p_replan_ms : float;  (** the same shape again — a cache hit *)
  p_units : int;  (** multi-star units the enumerator handled *)
  p_hints : int;  (** verified join-order hints installed *)
  p_heuristic_hi : float;  (** summed upper-bound cost, heuristic orders *)
  p_chosen_hi : float;  (** summed upper-bound cost, chosen orders *)
  p_all_verified : bool;  (** no unit fell back over a [Plan_verify] reject *)
  p_identical : bool;
      (** every engine: optimized result = heuristic result *)
}

type optimize_sweep = {
  p_label : string;
  p_triples : int;
  p_policy : Rapida_planner.Cost_model.policy;
  p_catalog_build_s : float;
  p_entries : optimize_entry list;
  p_server : Rapida_server.Server.t;
      (** a repeated-traffic server run with the planner armed — its
          [r_optimize] report carries the plan-cache hit rate *)
}

(** [optimize_sweep options ~label input entries] builds a statistics
    catalog from the input's graph (timed), plans every entry cold and
    then again through the cache (hits must skip enumeration), prices
    the chosen orders against the heuristic orders at their upper
    bounds, checks per-engine byte-identity of optimized vs heuristic
    results, and finally drives a generated arrival stream through a
    planner-armed query server to measure the plan-cache hit rate under
    repeated traffic. Policy defaults to [Worst_case]; the server run
    to 12 arrivals at seed 11. *)
val optimize_sweep :
  ?engines:Engine.kind list ->
  ?policy:Rapida_planner.Cost_model.policy ->
  ?seed:int ->
  ?arrivals:int ->
  Rapida_core.Plan_util.options ->
  label:string ->
  Engine.input ->
  Catalog.entry list ->
  optimize_sweep
