module Engine = Rapida_core.Engine
module Catalog = Rapida_queries.Catalog

let engine_header kind =
  match kind with
  | Engine.Hive_naive -> "Hive(Naive)"
  | Engine.Hive_mqo -> "Hive(MQO)"
  | Engine.Rapid_plus -> "RAPID+"
  | Engine.Rapid_analytics -> "RAPIDAnalytics"

let cell_for run kind f missing =
  match Experiment.result_for run kind with
  | None -> missing
  | Some r -> (
    match r.Experiment.error with
    | Some _ -> "error"
    | None ->
      let text = f r in
      if r.Experiment.agreed then text else text ^ "*")

let header ~title ~engines ppf runs =
  (match runs with
  | run :: _ ->
    Fmt.pf ppf "@.== %s (%s, %d triples) ==@." title
      run.Experiment.dataset_label run.Experiment.triples
  | [] -> Fmt.pf ppf "@.== %s ==@." title);
  Fmt.pf ppf "%-6s" "Query";
  List.iter (fun k -> Fmt.pf ppf " %14s" (engine_header k)) engines

let speedup run ~baseline ~target =
  match Experiment.result_for run baseline, Experiment.result_for run target with
  | Some b, Some t
    when b.Experiment.error = None && t.Experiment.error = None
         && t.Experiment.est_time_s > 0.0 ->
    Some (b.Experiment.est_time_s /. t.Experiment.est_time_s)
  | _ -> None

let pp_comparison ~title ~engines ppf runs =
  header ~title ~engines ppf runs;
  (match engines with
  | _ :: _ :: _ -> Fmt.pf ppf " %9s" "speedup"
  | _ -> ());
  Fmt.pf ppf "@.";
  List.iter
    (fun run ->
      Fmt.pf ppf "%-6s" run.Experiment.query.Catalog.id;
      List.iter
        (fun k ->
          Fmt.pf ppf " %14s"
            (cell_for run k
               (fun r -> Printf.sprintf "%.1fs" r.Experiment.est_time_s)
               "-"))
        engines;
      (match engines with
      | first :: (_ :: _ as rest) -> (
        let last = List.nth rest (List.length rest - 1) in
        match speedup run ~baseline:first ~target:last with
        | Some s -> Fmt.pf ppf " %8.1fx" s
        | None -> Fmt.pf ppf " %9s" "-")
      | _ -> ());
      Fmt.pf ppf "@.")
    runs;
  Fmt.pf ppf "(simulated cluster seconds; * = failed verification)@."

let pp_cycles ~title ~engines ppf runs =
  header ~title ~engines ppf runs;
  Fmt.pf ppf "@.";
  List.iter
    (fun run ->
      Fmt.pf ppf "%-6s" run.Experiment.query.Catalog.id;
      List.iter
        (fun k ->
          Fmt.pf ppf " %14s"
            (cell_for run k
               (fun r ->
                 Printf.sprintf "%d (%d map-only)" r.Experiment.cycles
                   r.Experiment.map_only_cycles)
               "-"))
        engines;
      Fmt.pf ppf "@.")
    runs;
  Fmt.pf ppf "(MapReduce cycles per query)@."

let pp_bytes ~title ~engines ppf runs =
  header ~title ~engines ppf runs;
  Fmt.pf ppf "@.";
  List.iter
    (fun run ->
      Fmt.pf ppf "%-6s" run.Experiment.query.Catalog.id;
      List.iter
        (fun k ->
          Fmt.pf ppf " %14s"
            (cell_for run k
               (fun r ->
                 Printf.sprintf "%.1fKB"
                   (float_of_int r.Experiment.shuffle_bytes /. 1024.0))
               "-"))
        engines;
      Fmt.pf ppf "@.")
    runs;
  Fmt.pf ppf "(bytes shuffled between map and reduce phases)@."

let pp_phases ~title ~engines ppf runs =
  header ~title ~engines ppf runs;
  Fmt.pf ppf "@.";
  List.iter
    (fun run ->
      Fmt.pf ppf "%-6s" run.Experiment.query.Catalog.id;
      List.iter
        (fun k ->
          Fmt.pf ppf " %14s"
            (cell_for run k
               (fun r ->
                 let b = r.Experiment.phases in
                 let module Stats = Rapida_mapred.Stats in
                 let base =
                   Printf.sprintf "%.0f/%.0f/%.0f/%.0f"
                     b.Stats.startup_s b.Stats.map_s
                     (b.Stats.shuffle_s +. b.Stats.sort_s)
                     b.Stats.reduce_s
                 in
                 if b.Stats.spill_s > 0.0 then
                   Printf.sprintf "%s/%.0f" base b.Stats.spill_s
                 else base)
               "-"))
        engines;
      Fmt.pf ppf "@.")
    runs;
  Fmt.pf ppf
    "(simulated seconds per phase: startup/map/shuffle+sort/reduce\
     [/spill])@."

let pp_degradation ~engines ppf (deg : Experiment.degradation) =
  Fmt.pf ppf "@.== fault degradation: %s (seed %d) ==@."
    deg.Experiment.d_query.Catalog.id deg.Experiment.d_seed;
  Fmt.pf ppf "%-6s" "fault";
  List.iter (fun k -> Fmt.pf ppf " %18s" (engine_header k)) engines;
  Fmt.pf ppf "@.";
  List.iter
    (fun rate ->
      Fmt.pf ppf "%-6s" (Printf.sprintf "%g" rate);
      List.iter
        (fun k ->
          let cell =
            match Experiment.degradation_point deg k rate with
            | None -> "-"
            | Some p ->
              if p.Experiment.d_aborted then "aborted"
              else
                Printf.sprintf "%.1fs (%.2fx)%s" p.Experiment.d_time_s
                  p.Experiment.d_slowdown
                  (if p.Experiment.d_transparent then "" else "*")
          in
          Fmt.pf ppf " %18s" cell)
        engines;
      Fmt.pf ppf "@.")
    deg.Experiment.d_rates;
  Fmt.pf ppf
    "(simulated seconds and slowdown vs fault-free; * = result diverged)@."

let pp_memory ~engines ppf (sweep : Experiment.memory_sweep) =
  Fmt.pf ppf "@.== memory degradation: %s ==@."
    sweep.Experiment.m_query.Catalog.id;
  Fmt.pf ppf "%-8s" "heap";
  List.iter (fun k -> Fmt.pf ppf " %24s" (engine_header k)) engines;
  Fmt.pf ppf "@.";
  let pp_heap b =
    if b >= 1024 * 1024 * 1024 then
      Printf.sprintf "%dG" (b / (1024 * 1024 * 1024))
    else if b >= 1024 * 1024 then Printf.sprintf "%dM" (b / (1024 * 1024))
    else if b >= 1024 then Printf.sprintf "%dK" (b / 1024)
    else Printf.sprintf "%dB" b
  in
  List.iter
    (fun heap ->
      Fmt.pf ppf "%-8s" (pp_heap heap);
      List.iter
        (fun k ->
          let cell =
            match Experiment.memory_point sweep k heap with
            | None -> "-"
            | Some p ->
              let flags =
                String.concat ""
                  [
                    (if p.Experiment.m_spill_passes > 0 then " s" else "");
                    (if p.Experiment.m_oom_kills > 0 then "!o" else "");
                    (if p.Experiment.m_mapjoin_fallbacks > 0 then "+r"
                     else "");
                    (if p.Experiment.m_transparent then "" else "*");
                  ]
              in
              Printf.sprintf "%.1fs (%.2fx)%s" p.Experiment.m_time_s
                p.Experiment.m_slowdown flags
          in
          Fmt.pf ppf " %24s" cell)
        engines;
      Fmt.pf ppf "@.")
    sweep.Experiment.m_heaps;
  Fmt.pf ppf
    "(simulated seconds and slowdown vs the unbounded run; s = spilled, \
     !o = OOM retries, +r = map-join fell back to repartition, * = result \
     diverged)@."

let pp_recovery ~engines ppf (sweep : Experiment.recovery) =
  let module Checkpoint = Rapida_mapred.Checkpoint in
  Fmt.pf ppf "@.== checkpoint recovery: %s (seed %d) ==@."
    sweep.Experiment.r_query.Catalog.id sweep.Experiment.r_seed;
  Fmt.pf ppf "%-20s" "fault/policy";
  List.iter (fun k -> Fmt.pf ppf " %22s" (engine_header k)) engines;
  Fmt.pf ppf "@.";
  List.iter
    (fun rate ->
      List.iter
        (fun policy ->
          Fmt.pf ppf "%-20s"
            (Fmt.str "%g %a" rate Checkpoint.pp_policy policy);
          List.iter
            (fun k ->
              let cell =
                match Experiment.recovery_point sweep k rate policy with
                | None -> "-"
                | Some p ->
                  if not p.Experiment.r_completed then "aborted"
                  else
                    String.concat ""
                      [
                        Printf.sprintf "%.1fs" p.Experiment.r_time_s;
                        (if p.Experiment.r_recoveries > 0 then
                           Printf.sprintf " r%d/%.0fs"
                             p.Experiment.r_recoveries
                             p.Experiment.r_replayed_s
                         else "");
                        (if p.Experiment.r_checkpoints > 0 then
                           Printf.sprintf " c%d" p.Experiment.r_checkpoints
                         else "");
                        (if p.Experiment.r_transparent then "" else "*");
                      ]
              in
              Fmt.pf ppf " %22s" cell)
            engines;
          Fmt.pf ppf "@.")
        sweep.Experiment.r_policies)
    sweep.Experiment.r_rates;
  Fmt.pf ppf
    "(simulated seconds; rN/Ms = N recoveries replaying M s since the \
     last checkpoint, cK = K checkpoints written, aborted = ran out of \
     retries, * = result diverged)@."

let pp_verification ppf runs =
  let total = List.length runs in
  let ok = List.length (List.filter Experiment.all_agreed runs) in
  Fmt.pf ppf "verification: %d/%d queries agreed across all engines@." ok total;
  List.iter
    (fun run ->
      if not (Experiment.all_agreed run) then
        List.iter
          (fun (r : Experiment.engine_result) ->
            if not r.agreed then
              Fmt.pf ppf "  MISMATCH %s on %s%s@."
                (Engine.kind_name r.engine)
                run.Experiment.query.Catalog.id
                (match r.error with
                | Some e -> ": " ^ e
                | None -> ""))
          run.Experiment.results)
    runs

(* --- Query-server throughput sweep -------------------------------------- *)

module Scheduler = Rapida_mapred.Scheduler
module Server = Rapida_server.Server

let pp_throughput ppf (sweep : Experiment.throughput) =
  Fmt.pf ppf "@.== Throughput sweep: %s, %d queries ==@."
    (Engine.kind_name sweep.Experiment.t_kind)
    sweep.Experiment.t_queries;
  Fmt.pf ppf "%-7s %-6s %-5s %9s %9s %9s %6s %5s %6s %12s %s@." "window"
    "policy" "share" "p50" "p95" "p99" "util" "jobs" "saved" "bytes-saved"
    "ok";
  List.iter
    (fun (p : Experiment.throughput_point) ->
      let r = p.Experiment.t_report in
      Fmt.pf ppf "%6.1fs %-6s %-5s %8.1fs %8.1fs %8.1fs %5.1f%% %5d %6d %12d %s@."
        p.Experiment.t_window_s
        (Scheduler.policy_name p.Experiment.t_policy)
        (if p.Experiment.t_share then "on" else "off")
        r.Server.r_latency_p50_s r.Server.r_latency_p95_s
        r.Server.r_latency_p99_s
        (100.0 *. r.Server.r_utilization)
        r.Server.r_jobs r.Server.r_jobs_saved r.Server.r_bytes_saved
        (if r.Server.r_all_matched && r.Server.r_errors = 0 then "yes"
         else "NO");
      ())
    sweep.Experiment.t_points

(* --- Query-server overload sweep ----------------------------------------- *)

let pp_overload ppf (sweep : Experiment.overload) =
  Fmt.pf ppf
    "@.== Overload sweep: %s, %d arrivals, deadline %.0fs ==@."
    (Engine.kind_name sweep.Experiment.o_kind)
    sweep.Experiment.o_n sweep.Experiment.o_deadline_s;
  Fmt.pf ppf "%-8s %-6s | %-28s | %-28s | %s@." "gap" "faults"
    "unprotected (goodput miss fail)" "protected (goodput shed miss)" "win";
  List.iter
    (fun (p : Experiment.overload_point) ->
      let stats (r : Server.t) =
        match r.Server.r_overload with
        | Some o ->
          ( o.Server.o_goodput,
            o.Server.o_shed_queue + o.Server.o_shed_infeasible
            + o.Server.o_shed_breaker,
            o.Server.o_missed,
            o.Server.o_failed )
        | None -> (0.0, 0, 0, 0)
      in
      let ug, _, um, uf = stats p.Experiment.o_unprotected in
      let pg, ps, pm, _ = stats p.Experiment.o_protected in
      Fmt.pf ppf
        "%7.1fs %6.2f | goodput %5.1f%%  %2d miss %2d fail | goodput \
         %5.1f%%  %2d shed %2d miss | %s@."
        p.Experiment.o_mean_gap_s p.Experiment.o_fault_rate (100.0 *. ug) um
        uf (100.0 *. pg) ps pm
        (if pg > ug then "protected"
         else if pg < ug then "UNPROTECTED"
         else "tie"))
    sweep.Experiment.o_points

let pp_estimation ~engines ppf (sweep : Experiment.estimation_sweep) =
  let module Card = Rapida_analysis.Interval.Card in
  Fmt.pf ppf "@.== Static cardinality estimation (%s, %d triples) ==@."
    sweep.Experiment.e_label sweep.Experiment.e_triples;
  Fmt.pf ppf "catalog build: %.1f ms (one pass)@."
    (1000.0 *. sweep.Experiment.e_catalog_build_s);
  Fmt.pf ppf "%-6s %-18s %10s %8s %7s %5s" "Query" "interval" "estimate"
    "actual" "q-err" "viol";
  List.iter (fun k -> Fmt.pf ppf " %14s" (engine_header k)) engines;
  Fmt.pf ppf "@.";
  List.iter
    (fun (e : Experiment.estimation) ->
      Fmt.pf ppf "%-6s %-18s %10.1f %8d %7.2f %5d"
        e.Experiment.e_query.Catalog.id
        (Fmt.str "%a" Card.pp e.Experiment.e_root)
        e.Experiment.e_estimate e.Experiment.e_actual e.Experiment.e_q_error
        e.Experiment.e_violations;
      List.iter
        (fun k ->
          let cell =
            match
              List.find_opt
                (fun (r : Experiment.estimation_result) -> r.e_engine = k)
                e.Experiment.e_results
            with
            | None -> "-"
            | Some { e_error = Some _; _ } -> "error"
            | Some r ->
              Printf.sprintf "%s%d"
                (if r.Experiment.e_in_bounds then "ok" else "OUT")
                r.Experiment.e_rows
          in
          Fmt.pf ppf " %14s" cell)
        engines;
      Fmt.pf ppf "@.")
    sweep.Experiment.e_estimations;
  let worst =
    List.fold_left
      (fun acc (e : Experiment.estimation) ->
        Float.max acc e.Experiment.e_max_node_q_error)
      1.0 sweep.Experiment.e_estimations
  in
  let violations =
    List.fold_left
      (fun acc (e : Experiment.estimation) -> acc + e.Experiment.e_violations)
      0 sweep.Experiment.e_estimations
  in
  Fmt.pf ppf
    "root q-error median %.2f, p95 %.2f, max %.2f over %d queries; worst \
     per-node q-error %.2f; %d interval violation(s)@."
    (Experiment.median_q_error sweep.Experiment.e_estimations)
    (Experiment.q_error_percentile 0.95 sweep.Experiment.e_estimations)
    (Experiment.max_q_error sweep.Experiment.e_estimations)
    (List.length sweep.Experiment.e_estimations)
    worst violations

let pp_optimize ~engines ppf (sweep : Experiment.optimize_sweep) =
  let module Cost_model = Rapida_planner.Cost_model in
  let module Plan_cache = Rapida_planner.Plan_cache in
  Fmt.pf ppf "@.== Cost-based planner (%s, %d triples, policy %s) ==@."
    sweep.Experiment.p_label sweep.Experiment.p_triples
    (Cost_model.policy_name sweep.Experiment.p_policy);
  Fmt.pf ppf
    "catalog build: %.1f ms; identity checked across %d engine(s)@."
    (1000.0 *. sweep.Experiment.p_catalog_build_s)
    (List.length engines);
  Fmt.pf ppf "%-6s %8s %8s %5s %5s %12s %12s %7s %s@." "Query" "plan-ms"
    "hit-ms" "units" "hints" "heuristic-hi" "chosen-hi" "delta" "identical";
  List.iter
    (fun (e : Experiment.optimize_entry) ->
      let delta =
        if e.Experiment.p_heuristic_hi > 0.0 then
          100.0
          *. (e.Experiment.p_heuristic_hi -. e.Experiment.p_chosen_hi)
          /. e.Experiment.p_heuristic_hi
        else 0.0
      in
      Fmt.pf ppf "%-6s %8.2f %8.3f %5d %5d %12.1f %12.1f %6.1f%% %s%s@."
        e.Experiment.p_query.Catalog.id e.Experiment.p_planning_ms
        e.Experiment.p_replan_ms e.Experiment.p_units e.Experiment.p_hints
        e.Experiment.p_heuristic_hi e.Experiment.p_chosen_hi delta
        (if e.Experiment.p_identical then "yes" else "NO")
        (if e.Experiment.p_all_verified then "" else " [REJECTED]"))
    sweep.Experiment.p_entries;
  match sweep.Experiment.p_server.Server.r_optimize with
  | Some o ->
    let hits = o.Server.p_cache.Plan_cache.hits in
    let misses = o.Server.p_cache.Plan_cache.misses in
    let rate =
      if hits + misses > 0 then
        100.0 *. float_of_int hits /. float_of_int (hits + misses)
      else 0.0
    in
    Fmt.pf ppf
      "server repeated traffic: %d group(s) planned; cache: %a (%.0f%% hit \
       rate); defense: %d misestimate(s), %d fallback(s), breaker %s@."
      o.Server.p_planned Plan_cache.pp_stats o.Server.p_cache rate
      o.Server.p_misestimates o.Server.p_fallbacks o.Server.p_breaker
  | None -> ()
