(** Hand-written lexer for the SPARQL subset. *)

type token =
  | LBRACE | RBRACE | LPAREN | RPAREN
  | DOT | SEMI | COMMA
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | DCARET  (** the [^^] of typed literals *)
  | PLUS | MINUS | STAR | SLASH
  | VAR of string  (** without the leading [?] / [$] *)
  | IRIREF of string  (** contents of [<...>] *)
  | QNAME of string  (** prefixed or bare name, possibly containing [:] *)
  | STRING of string
  | INT of int
  | FLOAT of float
  | KEYWORD of string  (** upper-cased reserved word, e.g. ["SELECT"] *)
  | A  (** the [a] shorthand for rdf:type *)
  | EOF

type located = { tok : token; line : int; col : int }

(** A lexing failure, located at the offending character. *)
type error = { pos : Srcloc.pos; reason : string }

(** Prints ["line L, col C: reason"]. *)
val pp_error : error Fmt.t

(** [tokenize src] lexes the whole input. Comments start with [#]. *)
val tokenize : string -> (located list, error) result

val pp_token : token Fmt.t
