type pos = { line : int; col : int }

type span = { first : pos; last : pos }

let pos ~line ~col = { line; col }

let span_of_token p ~len =
  { first = p; last = { p with col = p.col + max 0 (len - 1) } }

let compare_pos a b =
  match Int.compare a.line b.line with
  | 0 -> Int.compare a.col b.col
  | c -> c

let pp_pos ppf p = Fmt.pf ppf "line %d, col %d" p.line p.col

let pp_span ppf s =
  if s.first.line = s.last.line && s.first.col = s.last.col then
    Fmt.pf ppf "%d:%d" s.first.line s.first.col
  else if s.first.line = s.last.line then
    Fmt.pf ppf "%d:%d-%d" s.first.line s.first.col s.last.col
  else
    Fmt.pf ppf "%d:%d-%d:%d" s.first.line s.first.col s.last.line s.last.col
