open Rapida_rdf

type error = { pos : Srcloc.pos option; reason : string }

let pp_error ppf (e : error) =
  match e.pos with
  | Some p -> Fmt.pf ppf "%a: %s" Srcloc.pp_pos p e.reason
  | None -> Fmt.string ppf e.reason

exception Parse_error of error

type state = {
  toks : Lexer.located array;
  mutable pos : int;
  mutable env : Namespace.env;
  mutable depth : int;
      (* combined nesting depth of parenthesized expressions, negations,
         and group patterns — bounded so pathological inputs (a megabyte
         of '(' or '{') fail with a located [Parse_error] instead of
         exhausting the OCaml stack *)
}

(* Deep enough for any real query; shallow enough that the recursive
   descent never gets close to the stack limit. *)
let max_depth = 200

let peek st = st.toks.(st.pos).tok
let peek_at st n =
  if st.pos + n < Array.length st.toks then st.toks.(st.pos + n).tok
  else Lexer.EOF

(* Position of the token the parser is looking at. *)
let cur_pos st =
  let { Lexer.line; col; _ } = st.toks.(st.pos) in
  Srcloc.pos ~line ~col

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg =
  let { Lexer.tok; _ } = st.toks.(st.pos) in
  raise
    (Parse_error
       {
         pos = Some (cur_pos st);
         reason = Fmt.str "%s (at %a)" msg Lexer.pp_token tok;
       })

let expect st tok msg =
  if peek st = tok then advance st else fail st msg

let expect_keyword st kw =
  match peek st with
  | Lexer.KEYWORD k when k = kw -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" kw)

let accept_keyword st kw =
  match peek st with
  | Lexer.KEYWORD k when k = kw ->
    advance st;
    true
  | _ -> false

(* [at] is the position of the QNAME token (captured before advancing). *)
let expand_qname st ~at qname =
  if String.contains qname ':' then
    match Namespace.expand st.env qname with
    | Some iri -> iri
    | None ->
      raise
        (Parse_error
           {
             pos = Some at;
             reason = Printf.sprintf "unknown prefix in %s" qname;
           })
  else Namespace.bench ^ qname

(* --- Expressions ------------------------------------------------------ *)

let agg_of_keyword = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let enter_nesting st =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then fail st "nesting too deep"

let leave_nesting st = st.depth <- st.depth - 1

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = Lexer.OROR then begin
    advance st;
    let right = parse_or st in
    Ast.Ebin (Ast.Or, left, right)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = Lexer.ANDAND then begin
    advance st;
    let right = parse_and st in
    Ast.Ebin (Ast.And, left, right)
  end
  else left

and parse_not st =
  if peek st = Lexer.BANG then begin
    advance st;
    enter_nesting st;
    let e = Ast.Enot (parse_not st) in
    leave_nesting st;
    e
  end
  else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Ast.Eq
    | Lexer.NE -> Some Ast.Ne
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    let right = parse_add st in
    Ast.Ebin (op, left, right)

and parse_add st =
  let rec go left =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      go (Ast.Ebin (Ast.Add, left, parse_mul st))
    | Lexer.MINUS ->
      advance st;
      go (Ast.Ebin (Ast.Sub, left, parse_mul st))
    | _ -> left
  in
  go (parse_mul st)

and parse_mul st =
  let rec go left =
    match peek st with
    | Lexer.STAR ->
      advance st;
      go (Ast.Ebin (Ast.Mul, left, parse_prim st))
    | Lexer.SLASH ->
      advance st;
      go (Ast.Ebin (Ast.Div, left, parse_prim st))
    | _ -> left
  in
  go (parse_prim st)

and parse_prim st =
  match peek st with
  | Lexer.VAR v ->
    advance st;
    Ast.Evar v
  | Lexer.INT n ->
    advance st;
    Ast.Eterm (Term.int n)
  | Lexer.FLOAT f ->
    advance st;
    Ast.Eterm (Term.decimal f)
  | Lexer.STRING s ->
    advance st;
    let t =
      if peek st = Lexer.DCARET then begin
        advance st;
        match peek st with
        | Lexer.IRIREF iri ->
          advance st;
          Term.typed s iri
        | Lexer.QNAME q ->
          let at = cur_pos st in
          advance st;
          Term.typed s (expand_qname st ~at q)
        | _ -> fail st "expected datatype IRI after ^^"
      end
      else Term.str s
    in
    Ast.Eterm t
  | Lexer.KEYWORD "TRUE" ->
    advance st;
    Ast.Eterm (Term.boolean true)
  | Lexer.KEYWORD "FALSE" ->
    advance st;
    Ast.Eterm (Term.boolean false)
  | Lexer.IRIREF iri ->
    advance st;
    Ast.Eterm (Term.iri iri)
  | Lexer.QNAME q ->
    let at = cur_pos st in
    advance st;
    Ast.Eterm (Term.iri (expand_qname st ~at q))
  | Lexer.LPAREN ->
    advance st;
    enter_nesting st;
    let e = parse_expr st in
    leave_nesting st;
    expect st Lexer.RPAREN "expected )";
    e
  | Lexer.KEYWORD "REGEX" -> parse_regex st
  | Lexer.KEYWORD kw when agg_of_keyword kw <> None -> parse_agg st kw
  | _ -> fail st "expected expression"

and parse_regex st =
  expect_keyword st "REGEX";
  expect st Lexer.LPAREN "expected ( after regex";
  let e = parse_expr st in
  expect st Lexer.COMMA "expected , in regex";
  let pat =
    match peek st with
    | Lexer.STRING s ->
      advance st;
      s
    | _ -> fail st "expected regex pattern string"
  in
  let flags =
    if peek st = Lexer.COMMA then begin
      advance st;
      match peek st with
      | Lexer.STRING s ->
        advance st;
        Some s
      | _ -> fail st "expected regex flags string"
    end
    else None
  in
  expect st Lexer.RPAREN "expected ) after regex";
  Ast.Eregex (e, pat, flags)

and parse_agg st kw =
  let func = Option.get (agg_of_keyword kw) in
  advance st;
  expect st Lexer.LPAREN "expected ( after aggregate";
  let distinct = accept_keyword st "DISTINCT" in
  let arg =
    if peek st = Lexer.STAR then begin
      advance st;
      None
    end
    else Some (parse_expr st)
  in
  expect st Lexer.RPAREN "expected ) after aggregate";
  Ast.Eagg (func, arg, distinct)

(* --- Graph patterns --------------------------------------------------- *)

(* A string literal optionally followed by ^^<datatype>. *)
let parse_typed_string st s =
  if peek st = Lexer.DCARET then begin
    advance st;
    match peek st with
    | Lexer.IRIREF iri ->
      advance st;
      Term.typed s iri
    | Lexer.QNAME q ->
      let at = cur_pos st in
      advance st;
      Term.typed s (expand_qname st ~at q)
    | _ -> fail st "expected datatype IRI after ^^"
  end
  else Term.str s

let parse_node st : Ast.node =
  match peek st with
  | Lexer.VAR v ->
    advance st;
    Ast.Nvar v
  | Lexer.IRIREF iri ->
    advance st;
    Ast.Nterm (Term.iri iri)
  | Lexer.QNAME q ->
    let at = cur_pos st in
    advance st;
    Ast.Nterm (Term.iri (expand_qname st ~at q))
  | Lexer.STRING s ->
    advance st;
    Ast.Nterm (parse_typed_string st s)
  | Lexer.INT n ->
    advance st;
    Ast.Nterm (Term.int n)
  | Lexer.FLOAT f ->
    advance st;
    Ast.Nterm (Term.decimal f)
  | Lexer.KEYWORD "TRUE" ->
    advance st;
    Ast.Nterm (Term.boolean true)
  | Lexer.KEYWORD "FALSE" ->
    advance st;
    Ast.Nterm (Term.boolean false)
  | _ -> fail st "expected RDF term or variable"

let parse_verb st : Ast.node =
  match peek st with
  | Lexer.A ->
    advance st;
    Ast.Nterm Namespace.rdf_type
  | _ -> parse_node st

(* One subject with its ';'/',' property list, producing triple patterns. *)
let parse_triples_block st =
  let subject = parse_node st in
  let triples = ref [] in
  let rec parse_property_list () =
    let verb = parse_verb st in
    let rec parse_object_list () =
      let obj = parse_node st in
      triples := { Ast.tp_s = subject; tp_p = verb; tp_o = obj } :: !triples;
      if peek st = Lexer.COMMA then begin
        advance st;
        parse_object_list ()
      end
    in
    parse_object_list ();
    if peek st = Lexer.SEMI then begin
      advance st;
      (* Tolerate a dangling ';' before '.' or '}'. *)
      match peek st with
      | Lexer.DOT | Lexer.RBRACE -> ()
      | _ -> parse_property_list ()
    end
  in
  parse_property_list ();
  if peek st = Lexer.DOT then advance st;
  List.rev_map (fun tp -> Ast.Ptriple tp) !triples |> List.rev

let rec parse_group_pattern st : Ast.pattern_elt list =
  expect st Lexer.LBRACE "expected {";
  enter_nesting st;
  let elems = ref [] in
  let rec go () =
    match peek st with
    | Lexer.RBRACE ->
      advance st
    | Lexer.EOF -> fail st "unexpected end of input in group pattern"
    | Lexer.DOT ->
      (* Separator between pattern elements (e.g. after a nested group). *)
      advance st;
      go ()
    | Lexer.KEYWORD "FILTER" ->
      advance st;
      let e =
        match peek st with
        | Lexer.KEYWORD "REGEX" -> parse_regex st
        | Lexer.LPAREN ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.RPAREN "expected ) after FILTER";
          e
        | _ -> parse_expr st
      in
      elems := Ast.Pfilter e :: !elems;
      go ()
    | Lexer.KEYWORD "OPTIONAL" ->
      advance st;
      let inner = parse_group_pattern st in
      elems := Ast.Poptional inner :: !elems;
      go ()
    | Lexer.LBRACE ->
      (* Either a sub-SELECT or a plain nested group. *)
      (match peek_at st 1 with
      | Lexer.KEYWORD "SELECT" ->
        advance st;
        let sub = parse_select st in
        expect st Lexer.RBRACE "expected } after subquery";
        elems := Ast.Psub sub :: !elems
      | _ ->
        let inner = parse_group_pattern st in
        elems := List.rev_append (List.rev inner) !elems);
      go ()
    | _ ->
      let triples = parse_triples_block st in
      elems := List.rev_append triples !elems;
      go ()
  in
  go ();
  leave_nesting st;
  List.rev !elems

(* --- SELECT ----------------------------------------------------------- *)

and parse_select st : Ast.select =
  expect_keyword st "SELECT";
  let distinct = accept_keyword st "DISTINCT" in
  let projection = ref [] in
  let star = ref false in
  let rec parse_projection () =
    match peek st with
    | Lexer.STAR ->
      advance st;
      star := true
    | Lexer.VAR v ->
      advance st;
      projection := Ast.Svar v :: !projection;
      parse_projection ()
    | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      let _ = accept_keyword st "AS" in
      let v =
        match peek st with
        | Lexer.VAR v ->
          advance st;
          v
        | _ -> fail st "expected ?var in (expr AS ?var)"
      in
      expect st Lexer.RPAREN "expected ) after (expr AS ?var)";
      projection := Ast.Sexpr (e, v) :: !projection;
      parse_projection ()
    | _ -> ()
  in
  parse_projection ();
  let _ = accept_keyword st "WHERE" in
  let where = parse_group_pattern st in
  let group_by =
    if accept_keyword st "GROUP" then begin
      expect_keyword st "BY";
      let vars = ref [] in
      let rec go () =
        match peek st with
        | Lexer.VAR v ->
          advance st;
          vars := v :: !vars;
          go ()
        | _ -> ()
      in
      go ();
      if !vars = [] then fail st "expected variables after GROUP BY";
      List.rev !vars
    end
    else []
  in
  let having =
    let clauses = ref [] in
    while accept_keyword st "HAVING" do
      let e =
        match peek st with
        | Lexer.LPAREN ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.RPAREN "expected ) after HAVING";
          e
        | _ -> parse_expr st
      in
      clauses := e :: !clauses
    done;
    List.rev !clauses
  in
  let order_by =
    if accept_keyword st "ORDER" then begin
      expect_keyword st "BY";
      let orders = ref [] in
      let rec go () =
        match peek st with
        | Lexer.VAR v ->
          advance st;
          orders := Ast.Asc v :: !orders;
          go ()
        | Lexer.KEYWORD ("ASC" | "DESC") ->
          let desc = peek st = Lexer.KEYWORD "DESC" in
          advance st;
          expect st Lexer.LPAREN "expected ( after ASC/DESC";
          (match peek st with
          | Lexer.VAR v ->
            advance st;
            orders := (if desc then Ast.Desc v else Ast.Asc v) :: !orders
          | _ -> fail st "expected ?var in ASC/DESC");
          expect st Lexer.RPAREN "expected ) after ASC/DESC";
          go ()
        | _ -> ()
      in
      go ();
      if !orders = [] then fail st "expected sort keys after ORDER BY";
      List.rev !orders
    end
    else []
  in
  let limit =
    if accept_keyword st "LIMIT" then begin
      match peek st with
      | Lexer.INT n when n >= 0 ->
        advance st;
        Some n
      | _ -> fail st "expected a non-negative integer after LIMIT"
    end
    else None
  in
  { Ast.distinct; projection = (if !star then [] else List.rev !projection);
    where; group_by; having; order_by; limit }

let parse_prologue st =
  while accept_keyword st "PREFIX" do
    let prefix =
      match peek st with
      | Lexer.QNAME q ->
        advance st;
        (* Strip the trailing ':' of the declared prefix. *)
        if String.length q > 0 && q.[String.length q - 1] = ':' then
          String.sub q 0 (String.length q - 1)
        else q
      | _ -> fail st "expected prefix name after PREFIX"
    in
    match peek st with
    | Lexer.IRIREF iri ->
      advance st;
      st.env <- Namespace.add st.env prefix iri
    | _ -> fail st "expected IRI after prefix name"
  done

let parse_located src =
  match Lexer.tokenize src with
  | Error { Lexer.pos; reason } -> Error { pos = Some pos; reason }
  | Ok toks -> (
    let st =
      { toks = Array.of_list toks; pos = 0; env = Namespace.default_env; depth = 0 }
    in
    try
      parse_prologue st;
      let select = parse_select st in
      (match peek st with
      | Lexer.EOF -> ()
      | _ -> fail st "trailing tokens after query");
      Ok { Ast.base_select = select }
    with Parse_error e -> Error e)

let parse src =
  Result.map_error (fun e -> Fmt.str "%a" pp_error e) (parse_located src)

let parse_exn src =
  match parse src with Ok q -> q | Error e -> failwith ("SPARQL parse: " ^ e)
