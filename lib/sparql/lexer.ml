type token =
  | LBRACE | RBRACE | LPAREN | RPAREN
  | DOT | SEMI | COMMA
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | DCARET
  | PLUS | MINUS | STAR | SLASH
  | VAR of string
  | IRIREF of string
  | QNAME of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | KEYWORD of string
  | A
  | EOF

type located = { tok : token; line : int; col : int }

let keywords =
  [
    "SELECT"; "WHERE"; "FILTER"; "OPTIONAL"; "GROUP"; "BY"; "AS"; "PREFIX";
    "DISTINCT"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "REGEX"; "ORDER"; "HAVING";
    "LIMIT"; "ASC"; "DESC"; "TRUE"; "FALSE"; "UNION"; "BASE";
  ]

type error = { pos : Srcloc.pos; reason : string }

let pp_error ppf e = Fmt.pf ppf "%a: %s" Srcloc.pp_pos e.pos e.reason

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c || c = '-'

(* QNames may embed ':' between prefix and local part; locals may contain
   digits and '-'. *)
let is_qname_char c = is_name_char c || c = ':' || c = '.'

let error st msg =
  Error { pos = Srcloc.pos ~line:st.line ~col:st.col; reason = msg }

let scan_while st pred =
  let start = st.pos in
  while (match peek st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Scan a numeric literal (digits and dots). A single trailing '.' is the
   triple terminator, not part of the number ([putback] tells the caller
   to emit a DOT). Conversions use the [_opt] variants so malformed or
   out-of-range spellings ("1..2", 25 nines) become located errors
   instead of uncaught [Failure]s. *)
let scan_number st ~negate =
  let text = scan_while st (fun c -> is_digit c || c = '.') in
  let text, putback =
    if String.length text > 0 && text.[String.length text - 1] = '.' then
      (String.sub text 0 (String.length text - 1), true)
    else (text, false)
  in
  let tok =
    if String.contains text '.' then
      match float_of_string_opt text with
      | Some f -> Some (FLOAT (if negate then -.f else f))
      | None -> None
    else
      match int_of_string_opt text with
      | Some n -> Some (INT (if negate then -n else n))
      | None -> None
  in
  match tok with
  | Some tok -> Ok (tok, putback)
  | None -> error st (Printf.sprintf "bad number %S" text)

let scan_string st =
  (* Opening quote consumed by caller? No: current char is '"'. *)
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
      advance st;
      Ok (Buffer.contents buf)
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
      | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
      | Some c -> Buffer.add_char buf c; advance st; go ()
      | None -> error st "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ()

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    match peek st with
    | None -> Ok (List.rev ({ tok = EOF; line = st.line; col = st.col } :: acc))
    | Some c when is_ws c ->
      advance st;
      go acc
    | Some '#' ->
      let _ = scan_while st (fun c -> c <> '\n') in
      go acc
    | Some c ->
      let line = st.line and col = st.col in
      let emit tok rest = go ({ tok; line; col } :: rest) in
      (match c with
      | '{' -> advance st; emit LBRACE acc
      | '}' -> advance st; emit RBRACE acc
      | '(' -> advance st; emit LPAREN acc
      | ')' -> advance st; emit RPAREN acc
      | ';' -> advance st; emit SEMI acc
      | ',' -> advance st; emit COMMA acc
      | '+' -> advance st; emit PLUS acc
      | '*' -> advance st; emit STAR acc
      | '/' -> advance st; emit SLASH acc
      | '=' -> advance st; emit EQ acc
      | '.' ->
        if (match peek2 st with Some d -> is_digit d | None -> false) then (
          let text = scan_while st (fun c -> is_digit c || c = '.') in
          match float_of_string_opt text with
          | Some f -> emit (FLOAT f) acc
          | None -> error st (Printf.sprintf "bad number %S" text))
        else (advance st; emit DOT acc)
      | '!' -> (
        advance st;
        match peek st with
        | Some '=' -> advance st; emit NE acc
        | _ -> emit BANG acc)
      | '<' -> (
        advance st;
        match peek st with
        | Some '=' -> advance st; emit LE acc
        | Some c2 when c2 = ' ' || c2 = '?' || is_digit c2 -> emit LT acc
        | _ ->
          (* IRI reference *)
          let iri = scan_while st (fun c -> c <> '>') in
          (match peek st with
          | Some '>' -> advance st; emit (IRIREF iri) acc
          | _ -> error st "unterminated IRI"))
      | '>' -> (
        advance st;
        match peek st with
        | Some '=' -> advance st; emit GE acc
        | _ -> emit GT acc)
      | '^' -> (
        advance st;
        match peek st with
        | Some '^' -> advance st; emit DCARET acc
        | _ -> error st "expected ^^")
      | '&' -> (
        advance st;
        match peek st with
        | Some '&' -> advance st; emit ANDAND acc
        | _ -> error st "expected &&")
      | '|' -> (
        advance st;
        match peek st with
        | Some '|' -> advance st; emit OROR acc
        | _ -> error st "expected ||")
      | '?' | '$' ->
        advance st;
        let name = scan_while st is_name_char in
        if name = "" then error st "empty variable name"
        else emit (VAR name) acc
      | '"' -> (
        match scan_string st with
        | Ok s -> emit (STRING s) acc
        | Error e -> Error e)
      | '-' -> (
        advance st;
        match peek st with
        | Some d when is_digit d -> (
          match scan_number st ~negate:true with
          | Error e -> Error e
          | Ok (tok, putback) ->
            let acc' = { tok; line; col } :: acc in
            if putback then go ({ tok = DOT; line; col } :: acc')
            else go acc')
        | _ -> emit MINUS acc)
      | c when is_digit c -> (
        match scan_number st ~negate:false with
        | Error e -> Error e
        | Ok (tok, putback) ->
          let acc' = { tok; line; col } :: acc in
          if putback then go ({ tok = DOT; line; col } :: acc') else go acc')
      | c when is_name_start c ->
        let text = scan_while st is_qname_char in
        (* A trailing '.' is the triple terminator. *)
        let text, putback =
          if String.length text > 0 && text.[String.length text - 1] = '.'
          then (String.sub text 0 (String.length text - 1), true)
          else (text, false)
        in
        let upper = String.uppercase_ascii text in
        let tok =
          if text = "a" then A
          else if List.mem upper keywords then KEYWORD upper
          else QNAME text
        in
        let acc' = { tok; line; col } :: acc in
        if putback then go ({ tok = DOT; line; col } :: acc') else go acc'
      | c -> error st (Printf.sprintf "unexpected character %C" c))
  in
  go []

let pp_token ppf = function
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | DOT -> Fmt.string ppf "."
  | SEMI -> Fmt.string ppf ";"
  | COMMA -> Fmt.string ppf ","
  | EQ -> Fmt.string ppf "="
  | NE -> Fmt.string ppf "!="
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | ANDAND -> Fmt.string ppf "&&"
  | DCARET -> Fmt.string ppf "^^"
  | OROR -> Fmt.string ppf "||"
  | BANG -> Fmt.string ppf "!"
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | VAR v -> Fmt.pf ppf "?%s" v
  | IRIREF s -> Fmt.pf ppf "<%s>" s
  | QNAME s -> Fmt.string ppf s
  | STRING s -> Fmt.pf ppf "%S" s
  | INT n -> Fmt.int ppf n
  | FLOAT f -> Fmt.float ppf f
  | KEYWORD k -> Fmt.string ppf k
  | A -> Fmt.string ppf "a"
  | EOF -> Fmt.string ppf "<eof>"
