(** Source locations in query text.

    The lexer stamps every token with a {!pos}; the parser and the
    static-analysis passes ({!Rapida_analysis.Diagnostic}) carry these
    positions so that an error in a 40-line analytical query points at
    the offending token instead of at "the query". Lines and columns are
    1-based, following the convention of every editor. *)

type pos = { line : int; col : int }

(** A contiguous source region, inclusive on both ends. Single-token
    spans have [first = last] or share the line with a wider column
    range. *)
type span = { first : pos; last : pos }

val pos : line:int -> col:int -> pos

(** [span_of_token p ~len] is the span of a token of [len] characters
    starting at [p] (never spanning lines). *)
val span_of_token : pos -> len:int -> span

val compare_pos : pos -> pos -> int

(** Prints ["line L, col C"] — the format the parser has always used in
    error messages. *)
val pp_pos : pos Fmt.t

(** Prints ["L:C"] or ["L:C-C'"], the compact form lint diagnostics
    use. *)
val pp_span : span Fmt.t
