(** Recursive-descent parser for the SPARQL subset.

    Prefixed names are expanded with the query's PREFIX declarations on top
    of {!Rapida_rdf.Namespace.default_env}; bare (unprefixed) names expand
    into the [bench:] namespace, matching the abbreviated property names
    used throughout the paper and this repo's synthetic datasets. *)

(** A parse failure. [pos] is the position of the offending token (or of
    the lexing error); it is [None] only for failures with no meaningful
    location. *)
type error = { pos : Srcloc.pos option; reason : string }

(** Prints ["line L, col C: reason"], or just the reason without a
    position. *)
val pp_error : error Fmt.t

(** [parse_located src] parses a complete SELECT query, reporting
    failures with source positions. *)
val parse_located : string -> (Ast.query, error) result

(** [parse src] is {!parse_located} with the error rendered by
    {!pp_error}. *)
val parse : string -> (Ast.query, string) result

(** [parse_exn src] is [parse], raising [Failure] on error. *)
val parse_exn : string -> Ast.query
