(** Greedy structural shrinking of failing queries.

    Given a query on which some oracle check fails, repeatedly try
    single-step simplifications — drop a subquery, a triple pattern, a
    filter, an aggregate, a grouping variable, a HAVING clause, the
    ORDER BY/LIMIT, or replace a compound filter by one operand — keeping
    any step on which the check still fails, until no step preserves the
    failure (or the step budget runs out). The result is a locally
    minimal reproducer. *)

module Ast = Rapida_sparql.Ast

(** [candidates q] is every query one simplification step away from
    [q]. *)
val candidates : Ast.query -> Ast.query list

(** [shrink ~still_fails ~max_steps q] greedily minimizes [q]; returns
    the reduced query and the number of accepted shrink steps. *)
val shrink :
  still_fails:(Ast.query -> bool) -> max_steps:int -> Ast.query ->
  Ast.query * int
