(* FNV-1a, 64-bit: a stable content hash (Hashtbl.hash is not guaranteed
   stable across OCaml versions, and file names must be). *)
let hash s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let mkdir_p dir =
  let rec go dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
      go (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end
  in
  go dir

let save ~dir ~shape ~repro text =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "%s-%s.rq" shape (hash text)) in
  let oc = open_out path in
  Printf.fprintf oc "# fuzz reproducer (shape: %s)\n# repro: %s\n%s%s" shape
    repro text
    (if String.length text > 0 && text.[String.length text - 1] = '\n' then ""
     else "\n");
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".rq")
    |> List.sort String.compare
    |> List.map (fun f -> (f, read_file (Filename.concat dir f)))
