open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Analytical = Rapida_sparql.Analytical
module To_sparql = Rapida_sparql.To_sparql
module Engine = Rapida_core.Engine
module Table = Rapida_relational.Table
module Json = Rapida_mapred.Json
module Bsbm = Rapida_datagen.Bsbm
module Prng = Rapida_datagen.Prng

type config = {
  seed : int;
  budget : int;
  time_budget_s : float option;
  oracles : Oracle.name list;
  corpus_dir : string option;
  products : int;
  adversarial : float;
  knob_count : int;
  max_shrink_steps : int;
  break_table : (Engine.kind * (Table.t -> Table.t)) option;
  graph : Graph.t option;
}

let default_config =
  {
    seed = 42;
    budget = 200;
    time_budget_s = None;
    oracles = Oracle.all;
    corpus_dir = None;
    products = 30;
    adversarial = 0.2;
    knob_count = 2;
    max_shrink_steps = 40;
    break_table = None;
    graph = None;
  }

let break_drop_row kind =
  ( kind,
    fun (t : Table.t) ->
      match t.rows with
      | [] -> t
      | rows -> { t with rows = List.filteri (fun i _ -> i < List.length rows - 1) rows }
  )

type failure = {
  f_case : int;
  f_source : string;
  f_oracle : Oracle.name;
  f_detail : string;
  f_query : string;
  f_shrunk : string;
  f_shrink_steps : int;
  f_saved : string option;
}

type oracle_stats = {
  o_name : Oracle.name;
  o_checked : int;
  o_skips : int;
  o_violations : int;
  o_time_s : float;
}

type report = {
  r_config : config;
  r_cases : int;
  r_replayed : int;
  r_accepted : int;
  r_rejected : int;
  r_shapes : (string * int) list;
  r_oracles : oracle_stats list;
  r_failures : failure list;
  r_elapsed_s : float;
}

(* Derive a per-case seed from the run seed: a splitmix64-style mix so
   neighbouring cases draw unrelated streams. *)
let mix seed i =
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let seed_of_name seed name = mix seed (0x10000 + (Hashtbl.hash name land 0xFFFF))

let run cfg =
  let start = Unix.gettimeofday () in
  let graph =
    match cfg.graph with
    | Some g -> g
    | None -> Bsbm.generate (Bsbm.config ~seed:42 ~products:cfg.products ())
  in
  let knobs = Knobs.generate (Prng.create ~seed:(mix cfg.seed 0)) ~n:cfg.knob_count in
  let env = Oracle.make_env ?break_table:cfg.break_table ~knobs graph in
  let qenv = Qgen.env_of_graph graph (Oracle.env_catalog env) in
  let stats =
    List.map (fun o -> (o, ref (0, 0, 0, 0.0))) cfg.oracles
    (* checked, skips, violations, time *)
  in
  let failures = ref [] in
  let shapes = Hashtbl.create 8 in
  let accepted = ref 0 and rejected = ref 0 in
  let bump_shape sh =
    Hashtbl.replace shapes sh (1 + Option.value ~default:0 (Hashtbl.find_opt shapes sh))
  in
  let repro_cmd () =
    Printf.sprintf "rapida fuzz --seed %d --budget %d%s" cfg.seed cfg.budget
      (match cfg.corpus_dir with
      | Some d -> " --corpus " ^ d
      | None -> "")
  in
  (* Run every requested oracle on one case; on a violation, shrink to a
     minimal reproducer (replaying the same per-case seed so the check
     is deterministic) and persist it. *)
  let check_case ~case_idx ~source ~case_seed (case : Oracle.case) =
    List.iter
      (fun (o, cell) ->
        let t0 = Unix.gettimeofday () in
        let verdict = Oracle.check env ~seed:case_seed o case in
        let dt = Unix.gettimeofday () -. t0 in
        let checked, skips, violations, time = !cell in
        (match verdict with
        | Oracle.Pass -> cell := (checked + 1, skips, violations, time +. dt)
        | Oracle.Skip _ -> cell := (checked, skips + 1, violations, time +. dt)
        | Oracle.Violation detail ->
          cell := (checked + 1, skips, violations + 1, time +. dt);
          let shrunk_text, steps =
            match case.Oracle.c_query with
            | None -> (case.c_text, 0)
            | Some q ->
              let still_fails q' =
                match Oracle.check env ~seed:case_seed o (Oracle.case_of_query q') with
                | Oracle.Violation _ -> true
                | _ -> false
              in
              let q', steps =
                Shrink.shrink ~still_fails ~max_steps:cfg.max_shrink_steps q
              in
              (To_sparql.query q', steps)
          in
          let saved =
            Option.map
              (fun dir ->
                Corpus.save ~dir
                  ~shape:
                    (match case.c_query with
                    | Some q -> Qgen.shape q
                    | None -> "raw")
                  ~repro:(repro_cmd ()) shrunk_text)
              cfg.corpus_dir
          in
          failures :=
            {
              f_case = case_idx;
              f_source = source;
              f_oracle = o;
              f_detail = detail;
              f_query = case.c_text;
              f_shrunk = shrunk_text;
              f_shrink_steps = steps;
              f_saved = saved;
            }
            :: !failures)
        )
      stats
  in
  (* corpus replay first: yesterday's reproducers are today's regression
     suite *)
  let replayed =
    match cfg.corpus_dir with
    | None -> 0
    | Some dir ->
      let entries = Corpus.load ~dir in
      List.iter
        (fun (fname, text) ->
          let case = Oracle.case_of_text text in
          check_case ~case_idx:(-1) ~source:fname
            ~case_seed:(seed_of_name cfg.seed fname) case)
        entries;
      List.length entries
  in
  (* generated cases *)
  let deadline = Option.map (fun t -> start +. t) cfg.time_budget_s in
  let cases = ref 0 in
  let within_budget () =
    !cases < cfg.budget
    && match deadline with None -> true | Some d -> Unix.gettimeofday () < d
  in
  while within_budget () do
    let i = !cases in
    let case_seed = mix cfg.seed (i + 1) in
    let rng = Prng.create ~seed:case_seed in
    let mode =
      if Prng.bool rng cfg.adversarial then Qgen.Adversarial else Qgen.Hitting
    in
    let q = Qgen.generate rng qenv ~mode in
    bump_shape (Qgen.shape q);
    (match Analytical.of_query q with
    | Ok _ -> incr accepted
    | Error _ -> incr rejected);
    check_case ~case_idx:i ~source:"generated" ~case_seed (Oracle.case_of_query q);
    incr cases
  done;
  {
    r_config = cfg;
    r_cases = !cases;
    r_replayed = replayed;
    r_accepted = !accepted;
    r_rejected = !rejected;
    r_shapes =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) shapes []);
    r_oracles =
      List.map
        (fun (o, cell) ->
          let checked, skips, violations, time = !cell in
          {
            o_name = o;
            o_checked = checked;
            o_skips = skips;
            o_violations = violations;
            o_time_s = time;
          })
        stats;
    r_failures = List.rev !failures;
    r_elapsed_s = Unix.gettimeofday () -. start;
  }

let violations r =
  List.fold_left (fun acc o -> acc + o.o_violations) 0 r.r_oracles

let pp ppf r =
  Fmt.pf ppf "fuzz: seed %d, %d cases (%d replayed), %d accepted, %d rejected@."
    r.r_config.seed r.r_cases r.r_replayed r.r_accepted r.r_rejected;
  Fmt.pf ppf "shapes:";
  List.iter (fun (sh, n) -> Fmt.pf ppf " %s=%d" sh n) r.r_shapes;
  Fmt.pf ppf "@.";
  List.iter
    (fun o ->
      Fmt.pf ppf "oracle %-12s checked %5d  skipped %4d  violations %d@."
        (Oracle.name_to_string o.o_name)
        o.o_checked o.o_skips o.o_violations)
    r.r_oracles;
  List.iter
    (fun f ->
      Fmt.pf ppf "@.VIOLATION [%s] case %s/%d: %s@."
        (Oracle.name_to_string f.f_oracle)
        f.f_source f.f_case f.f_detail;
      Fmt.pf ppf "  shrunk (%d steps)%s:@.%s@." f.f_shrink_steps
        (match f.f_saved with Some p -> " -> " ^ p | None -> "")
        f.f_shrunk)
    r.r_failures;
  Fmt.pf ppf "@.%s@."
    (if violations r = 0 then "all oracles clean"
     else Printf.sprintf "%d violation(s)" (violations r))

let to_json r =
  let total_checks =
    List.fold_left (fun acc o -> acc + o.o_checked + o.o_skips) 0 r.r_oracles
  in
  Json.Obj
    [
      ("bench", Json.String "fuzz");
      ("seed", Json.Int r.r_config.seed);
      ("budget", Json.Int r.r_config.budget);
      ("cases", Json.Int r.r_cases);
      ("replayed", Json.Int r.r_replayed);
      ("accepted", Json.Int r.r_accepted);
      ("rejected", Json.Int r.r_rejected);
      ("elapsed_s", Json.Float r.r_elapsed_s);
      ( "cases_per_s",
        Json.Float
          (if r.r_elapsed_s > 0.0 then float_of_int r.r_cases /. r.r_elapsed_s
           else 0.0) );
      ("checks", Json.Int total_checks);
      ( "shapes",
        Json.Obj (List.map (fun (sh, n) -> (sh, Json.Int n)) r.r_shapes) );
      ( "oracles",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("name", Json.String (Oracle.name_to_string o.o_name));
                   ("checked", Json.Int o.o_checked);
                   ("skipped", Json.Int o.o_skips);
                   ("violations", Json.Int o.o_violations);
                   ("time_s", Json.Float o.o_time_s);
                 ])
             r.r_oracles) );
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("oracle", Json.String (Oracle.name_to_string f.f_oracle));
                   ("case", Json.Int f.f_case);
                   ("source", Json.String f.f_source);
                   ("detail", Json.String f.f_detail);
                   ("shrink_steps", Json.Int f.f_shrink_steps);
                   ("shrunk", Json.String f.f_shrunk);
                 ])
             r.r_failures) );
    ]
