module Ast = Rapida_sparql.Ast
module Parser = Rapida_sparql.Parser
module To_sparql = Rapida_sparql.To_sparql
module Prng = Rapida_datagen.Prng

type t = Shuffle_patterns | Shuffle_filters | Roundtrip

let all = [ Shuffle_patterns; Shuffle_filters; Roundtrip ]

let name = function
  | Shuffle_patterns -> "shuffle-patterns"
  | Shuffle_filters -> "shuffle-filters"
  | Roundtrip -> "roundtrip"

let shuffle rng xs =
  let rec go xs acc =
    match xs with
    | [] -> List.rev acc
    | _ ->
      let i = Prng.int rng (List.length xs) in
      let x = List.nth xs i in
      go (List.filteri (fun j _ -> j <> i) xs) (x :: acc)
  in
  go xs []

(* Reassemble a pattern-element list with one element class permuted.
   Element order within a WHERE block is semantically irrelevant in the
   analytical fragment (patterns, filters, and subqueries are collected
   into sets), but it drives the star decomposition order and thus the
   engines' physical join order — exactly the sensitivity the
   metamorphic oracle wants to probe. *)
let rec shuffle_select rng ~which (s : Ast.select) =
  let triples =
    List.filter_map (function Ast.Ptriple tp -> Some tp | _ -> None) s.where
  in
  let filters =
    List.filter_map (function Ast.Pfilter f -> Some f | _ -> None) s.where
  in
  let subs =
    List.filter_map (function Ast.Psub sub -> Some sub | _ -> None) s.where
  in
  let optionals =
    List.filter_map (function Ast.Poptional o -> Some o | _ -> None) s.where
  in
  let triples, filters =
    match which with
    | `Patterns -> (shuffle rng triples, filters)
    | `Filters -> (triples, shuffle rng filters)
  in
  let subs = List.map (shuffle_select rng ~which) subs in
  {
    s with
    where =
      List.map (fun tp -> Ast.Ptriple tp) triples
      @ List.map (fun f -> Ast.Pfilter f) filters
      @ List.map (fun sub -> Ast.Psub sub) subs
      @ List.map (fun o -> Ast.Poptional o) optionals;
  }

let apply rng rw (q : Ast.query) =
  match rw with
  | Shuffle_patterns ->
    Ok { Ast.base_select = shuffle_select rng ~which:`Patterns q.base_select }
  | Shuffle_filters ->
    Ok { Ast.base_select = shuffle_select rng ~which:`Filters q.base_select }
  | Roundtrip -> (
    let text = To_sparql.query q in
    match Parser.parse text with
    | Ok q' -> Ok q'
    | Error msg -> Error (Printf.sprintf "round-trip re-parse failed: %s" msg))
