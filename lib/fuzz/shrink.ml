module Ast = Rapida_sparql.Ast

(* All lists obtained by deleting exactly one element. *)
let removals xs = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

(* Replace element [i] by each of [subst i x]'s results (possibly many). *)
let substitutions subst xs =
  List.concat
    (List.mapi
       (fun i x ->
         List.map
           (fun x' -> List.mapi (fun j y -> if j = i then x' else y) xs)
           (subst x))
       xs)

let expr_operands = function
  | Ast.Ebin ((Ast.And | Ast.Or), a, b) -> [ a; b ]
  | Ast.Enot e -> [ e ]
  | _ -> []

let count pred xs = List.length (List.filter pred xs)

let is_triple = function Ast.Ptriple _ -> true | _ -> false
let is_sub = function Ast.Psub _ -> true | _ -> false

let is_agg_item = function
  | Ast.Sexpr (Ast.Eagg _, _) -> true
  | _ -> false

(* Single-step simplifications of one select, not recursing into
   subqueries (the caller handles recursion). *)
let select_steps (s : Ast.select) : Ast.select list =
  let with_where w = { s with Ast.where = w } in
  let drop_subs =
    if count is_sub s.where >= 2 then
      List.filter_map
        (fun i ->
          match List.nth s.where i with
          | Ast.Psub _ ->
            Some (with_where (List.filteri (fun j _ -> j <> i) s.where))
          | _ -> None)
        (List.init (List.length s.where) Fun.id)
    else []
  in
  let drop_triples =
    if count is_triple s.where >= 2 then
      List.filter_map
        (fun i ->
          match List.nth s.where i with
          | Ast.Ptriple _ ->
            Some (with_where (List.filteri (fun j _ -> j <> i) s.where))
          | _ -> None)
        (List.init (List.length s.where) Fun.id)
    else []
  in
  let drop_filters =
    List.filter_map
      (fun i ->
        match List.nth s.where i with
        | Ast.Pfilter _ ->
          Some (with_where (List.filteri (fun j _ -> j <> i) s.where))
        | _ -> None)
      (List.init (List.length s.where) Fun.id)
  in
  let simplify_filters =
    List.map with_where
      (substitutions
         (function
           | Ast.Pfilter f ->
             List.map (fun e -> Ast.Pfilter e) (expr_operands f)
           | _ -> [])
         s.where)
  in
  let drop_having = List.map (fun h -> { s with Ast.having = h }) (removals s.having) in
  let simplify_having =
    List.map
      (fun h -> { s with Ast.having = h })
      (substitutions expr_operands s.having)
  in
  let drop_order =
    if s.order_by <> [] then [ { s with Ast.order_by = [] } ] else []
  in
  let drop_limit =
    match s.limit with Some _ -> [ { s with Ast.limit = None } ] | None -> []
  in
  let drop_aggs =
    if count is_agg_item s.projection >= 2 then
      List.filter_map
        (fun i ->
          match List.nth s.projection i with
          | Ast.Sexpr (Ast.Eagg _, _) ->
            Some
              { s with Ast.projection = List.filteri (fun j _ -> j <> i) s.projection }
          | _ -> None)
        (List.init (List.length s.projection) Fun.id)
    else []
  in
  let drop_group_vars =
    List.map
      (fun v ->
        {
          s with
          Ast.group_by = List.filter (fun v' -> v' <> v) s.group_by;
          projection = List.filter (fun it -> it <> Ast.Svar v) s.projection;
        })
      s.group_by
  in
  drop_subs @ drop_triples @ drop_filters @ simplify_filters @ drop_having
  @ simplify_having @ drop_order @ drop_limit @ drop_aggs @ drop_group_vars

(* Steps of [s] plus, recursively, steps of each nested subquery. *)
let rec all_steps (s : Ast.select) : Ast.select list =
  let nested =
    List.map
      (fun w -> { s with Ast.where = w })
      (substitutions
         (function
           | Ast.Psub sub -> List.map (fun sub' -> Ast.Psub sub') (all_steps sub)
           | _ -> [])
         s.where)
  in
  select_steps s @ nested

let candidates (q : Ast.query) =
  List.map (fun s -> { Ast.base_select = s }) (all_steps q.base_select)

let shrink ~still_fails ~max_steps q =
  let rec go q steps =
    if steps >= max_steps then (q, steps)
    else
      match List.find_opt still_fails (candidates q) with
      | Some q' -> go q' (steps + 1)
      | None -> (q, steps)
  in
  go q 0
