(** Seeded generator of random analytical queries.

    Queries are drawn from the analytical fragment the engines accept:
    star-shaped basic graph patterns (chained through link predicates so
    multi-star joins stay connected), numeric FILTERs, GROUP BY (including
    the empty GROUP BY ALL), COUNT/SUM/AVG/MIN/MAX aggregates, HAVING,
    grouping-sets-style multi-subquery queries, and outer ORDER BY/LIMIT.

    Generation is biased by a {!Rapida_analysis.Stats_catalog} built from
    the target graph: predicates, classes, and filter thresholds are drawn
    from what the data actually contains ({!Hitting}), so most queries
    return rows and the differential oracle compares non-trivial results.
    {!Adversarial} mode deliberately misses — unknown predicates and
    classes, thresholds outside every literal range — to exercise the
    empty-result and statically-empty paths. *)

open Rapida_rdf
module Ast = Rapida_sparql.Ast

type mode = Hitting | Adversarial

val mode_name : mode -> string

(** The generator's view of a dataset: predicate/class vocabulary with
    statistics, numeric ranges for threshold placement, and the
    predicate-to-predicate link map used to chain stars. *)
type env

val env_of_graph : Graph.t -> Rapida_analysis.Stats_catalog.t -> env

(** [generate rng env ~mode] draws one random analytical query. The
    result parses back through {!Rapida_sparql.To_sparql} and, except
    for a small adversarial tail, passes
    {!Rapida_sparql.Analytical.of_query}. *)
val generate : Rapida_datagen.Prng.t -> env -> mode:mode -> Ast.query

(** [shape q] is a coarse label of the query's dominant feature —
    ["gsets"], ["join"], ["having"], ["filter"], ["order"], or ["star"] —
    used to name corpus entries and bucket coverage counts. *)
val shape : Ast.query -> string

(** [random_bytes rng ~max_len] is an arbitrary byte string for the
    robustness oracle's parser fuzzing. *)
val random_bytes : Rapida_datagen.Prng.t -> max_len:int -> string

(** [mutate_text rng s] applies one random byte-level mutation (flip,
    insert, delete, truncate, duplicate) to [s]. *)
val mutate_text : Rapida_datagen.Prng.t -> string -> string
