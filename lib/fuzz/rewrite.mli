(** Semantics-preserving query rewrites for the metamorphic oracle.

    Each rewrite transforms a query into one that must evaluate to the
    same result multiset: reordering triple patterns (which permutes the
    star decomposition and hence the engines' join order), reordering
    filters, and the {!Rapida_sparql.To_sparql} round-trip (render to
    full-IRI text and re-parse — the prefix-elimination rewrite). A
    rewrite that fails to apply on a query it should accept is itself an
    oracle violation. *)

module Ast = Rapida_sparql.Ast

type t = Shuffle_patterns | Shuffle_filters | Roundtrip

val all : t list

val name : t -> string

(** [apply rng rw q] is the rewritten query, or [Error reason] when the
    rewrite broke (e.g. the round-trip failed to re-parse). Shuffles
    draw their permutation from [rng]. *)
val apply :
  Rapida_datagen.Prng.t -> t -> Ast.query -> (Ast.query, string) result
