open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Parser = Rapida_sparql.Parser
module Analytical = Rapida_sparql.Analytical
module To_sparql = Rapida_sparql.To_sparql
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Ref_engine = Rapida_ref.Ref_engine
module Stats_catalog = Rapida_analysis.Stats_catalog
module Card_analysis = Rapida_analysis.Card_analysis
module Interval = Rapida_analysis.Interval
module Plan_verify = Rapida_analysis.Plan_verify
module Diagnostic = Rapida_analysis.Diagnostic
module Prng = Rapida_datagen.Prng
module Planner = Rapida_planner.Planner
module Cost_model = Rapida_planner.Cost_model

type name = Differential | Metamorphic | Analyzer | Robustness

let all = [ Differential; Metamorphic; Analyzer; Robustness ]

let name_to_string = function
  | Differential -> "differential"
  | Metamorphic -> "metamorphic"
  | Analyzer -> "analyzer"
  | Robustness -> "robustness"

let name_of_string = function
  | "differential" -> Some Differential
  | "metamorphic" -> Some Metamorphic
  | "analyzer" -> Some Analyzer
  | "robustness" -> Some Robustness
  | _ -> None

type verdict = Pass | Skip of string | Violation of string

let pp_verdict ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Skip r -> Fmt.pf ppf "skip (%s)" r
  | Violation r -> Fmt.pf ppf "VIOLATION: %s" r

type env = {
  graph : Graph.t;
  catalog : Stats_catalog.t;
  input : Engine.input;
  sessions : (Engine.kind * Engine.session) list;
  base_options : Plan_util.options;
  knobs : Knobs.t list;
  break_table : (Engine.kind * (Table.t -> Table.t)) option;
}

let make_env ?break_table ?(knobs = []) graph =
  Plan_verify.install_engine_hook ();
  let input = Engine.input_of_graph graph in
  let sessions =
    List.map (fun kind -> (kind, Engine.prepare kind input)) Engine.all_kinds
  in
  {
    graph;
    catalog = Stats_catalog.build graph;
    input;
    sessions;
    base_options = Plan_util.make ~verify_plans:true ();
    knobs;
    break_table;
  }

let env_graph env = env.graph

let env_catalog env = env.catalog

type case = { c_text : string; c_query : Ast.query option }

let case_of_query q = { c_text = To_sparql.query q; c_query = Some q }

let case_of_text text =
  { c_text = text; c_query = Result.to_option (Parser.parse text) }

(* Run one engine on an analytical query; the break hook perturbs the
   matched kind's result table (test-only fault injection into the
   engine layer itself). [?optimize] arms the cost-based planner: the
   query is enumerated against the env's catalog under the policy and
   the verified join-order hints ride into the context. *)
let exec ?optimize env kind options aq =
  let options =
    match optimize with
    | None -> options
    | Some policy ->
      let d =
        Planner.plan ~policy ~cluster:options.Plan_util.cluster env.catalog aq
      in
      Planner.apply d options
  in
  let ctx = Plan_util.context options in
  match Engine.execute (List.assoc kind env.sessions) ctx aq with
  | Ok out -> (
    match env.break_table with
    | Some (k, f) when k = kind -> Ok (f out.Engine.table)
    | _ -> Ok out.Engine.table)
  | Error e -> Error e

let analytical_of_case case =
  match case.c_query with
  | None -> Error "query text does not parse"
  | Some q -> (
    match Analytical.of_query q with
    | Ok aq -> Ok aq
    | Error e -> Error ("not analytical: " ^ e))

let reference env aq =
  match Ref_engine.run env.graph aq with
  | table -> Ok table
  | exception exn ->
    Error (Printf.sprintf "reference evaluator raised %s" (Printexc.to_string exn))

(* --- differential ------------------------------------------------------- *)

let check_differential env case =
  match analytical_of_case case with
  | Error reason -> Skip reason
  | Ok aq -> (
    match reference env aq with
    | Error v -> Violation v
    | Ok expected -> (
      (* Every engine runs twice: heuristic plans, and with the
         cost-based join enumeration armed — both must agree with the
         reference row-for-row. *)
      let modes = [ (None, ""); (Some Cost_model.Worst_case, "+optimize") ] in
      let outcomes =
        List.concat_map
          (fun (optimize, tag) ->
            List.map
              (fun kind ->
                let name = Engine.kind_name kind ^ tag in
                match exec ?optimize env kind env.base_options aq with
                | Ok table -> (name, `Table table)
                | Error (Engine.Plan_rejected r) -> (name, `Rejected r)
                | Error e -> (name, `Failed (Engine.error_message e))
                | exception exn -> (name, `Failed (Printexc.to_string exn)))
              Engine.all_kinds)
          modes
      in
      let failed =
        List.filter_map
          (function k, `Failed m -> Some (k, m) | _ -> None)
          outcomes
      in
      let rejected =
        List.filter_map
          (function k, `Rejected r -> Some (k, r) | _ -> None)
          outcomes
      in
      let succeeded =
        List.filter_map
          (function k, `Table t -> Some (k, t) | _ -> None)
          outcomes
      in
      match (failed, rejected, succeeded) with
      | (k, m) :: _, _, _ -> Violation (Printf.sprintf "%s failed: %s" k m)
      | [], _ :: _, [] -> Skip "all engines rejected the plan"
      | [], (k, r) :: _, (k', _) :: _ ->
        Violation
          (Printf.sprintf "%s rejected (%s) but %s accepted" k r k')
      | [], [], succeeded -> (
        match
          List.find_opt
            (fun (_, table) -> not (Relops.same_results table expected))
            succeeded
        with
        | Some (k, table) ->
          Violation
            (Printf.sprintf "%s disagrees with reference (%d rows vs %d)" k
               (Table.cardinality table)
               (Table.cardinality expected))
        | None -> Pass)))

(* --- metamorphic -------------------------------------------------------- *)

let rotate_kind seed i =
  List.nth Engine.all_kinds ((abs (seed + i)) mod List.length Engine.all_kinds)

let check_metamorphic env ~seed rng case =
  match analytical_of_case case with
  | Error reason -> Skip reason
  | Ok aq -> (
    match reference env aq with
    | Error v -> Violation v
    | Ok expected ->
      let violation = ref None in
      let note v = if !violation = None then violation := Some v in
      (* optimizer invariance: every robustness policy must pick an
         answer-preserving join order (the optimizer-off baseline is the
         reference comparison itself) *)
      List.iteri
        (fun i policy ->
          if !violation = None then
            let kind = rotate_kind seed i in
            match exec ~optimize:policy env kind env.base_options aq with
            | Ok table ->
              if not (Relops.same_results table expected) then
                note
                  (Printf.sprintf "%s under --opt-policy %s changed the answer"
                     (Engine.kind_name kind)
                     (Cost_model.policy_name policy))
            | Error (Engine.Plan_rejected _) -> ()
            | Error e ->
              note
                (Printf.sprintf "%s under --opt-policy %s failed: %s"
                   (Engine.kind_name kind)
                   (Cost_model.policy_name policy)
                   (Engine.error_message e))
            | exception exn ->
              note
                (Printf.sprintf "%s under --opt-policy %s raised %s"
                   (Engine.kind_name kind)
                   (Cost_model.policy_name policy)
                   (Printexc.to_string exn)))
        Cost_model.all_policies;
      (* knob invariance: one (rotating) engine per configuration *)
      List.iteri
        (fun i (k : Knobs.t) ->
          if !violation = None then
            let kind = rotate_kind seed i in
            match exec ?optimize:k.Knobs.k_optimize env kind k.k_options aq with
            | Ok table ->
              if not (Relops.same_results table expected) then
                note
                  (Printf.sprintf "%s under %s changed the answer"
                     (Engine.kind_name kind) k.k_label)
            | Error (Engine.Job_failed _) -> ()  (* transient under faults *)
            | Error (Engine.Plan_rejected _) -> ()
            | Error e ->
              note
                (Printf.sprintf "%s under %s failed: %s" (Engine.kind_name kind)
                   k.k_label (Engine.error_message e))
            | exception exn ->
              note
                (Printf.sprintf "%s under %s raised %s" (Engine.kind_name kind)
                   k.k_label (Printexc.to_string exn)))
        env.knobs;
      (* rewrite invariance: reference + one engine on the rewritten query *)
      (match case.c_query with
      | None -> ()
      | Some q ->
        List.iteri
          (fun i rw ->
            if !violation = None then
              match Rewrite.apply rng rw q with
              | Error reason -> note (Rewrite.name rw ^ ": " ^ reason)
              | Ok q' -> (
                match Analytical.of_query q' with
                | Error e ->
                  note
                    (Printf.sprintf "%s: rewritten query left the fragment: %s"
                       (Rewrite.name rw) e)
                | Ok aq' -> (
                  (match reference env aq' with
                  | Error v -> note (Rewrite.name rw ^ ": " ^ v)
                  | Ok table ->
                    if not (Relops.same_results table expected) then
                      note
                        (Printf.sprintf "%s changed the reference answer"
                           (Rewrite.name rw)));
                  if !violation = None then
                    let kind = rotate_kind seed (i + 1) in
                    match exec env kind env.base_options aq' with
                    | Ok table ->
                      if not (Relops.same_results table expected) then
                        note
                          (Printf.sprintf "%s changed %s's answer"
                             (Rewrite.name rw) (Engine.kind_name kind))
                    | Error (Engine.Plan_rejected _) -> ()
                    | Error e ->
                      note
                        (Printf.sprintf "%s: %s failed: %s" (Rewrite.name rw)
                           (Engine.kind_name kind) (Engine.error_message e))
                    | exception exn ->
                      note
                        (Printf.sprintf "%s: %s raised %s" (Rewrite.name rw)
                           (Engine.kind_name kind) (Printexc.to_string exn)))))
          Rewrite.all);
      (match !violation with Some v -> Violation v | None -> Pass))

(* --- analyzer soundness ------------------------------------------------- *)

let check_analyzer env case =
  match analytical_of_case case with
  | Error reason -> Skip reason
  | Ok aq -> (
    match
      let t = Card_analysis.analyze env.catalog aq in
      let m = Card_analysis.measure env.graph t in
      Card_analysis.measured_list m
    with
    | exception exn ->
      Violation (Printf.sprintf "analyzer raised %s" (Printexc.to_string exn))
    | measured -> (
      match
        List.find_opt
          (fun ((node : Card_analysis.node), actual) ->
            not (Interval.Card.contains node.card actual))
          measured
      with
      | Some (node, actual) ->
        Violation
          (Fmt.str "node %d (%s): interval %a misses measured %d" node.id
             node.label Interval.Card.pp node.card actual)
      | None -> Pass))

(* --- total robustness --------------------------------------------------- *)

let preview s =
  let s = if String.length s > 60 then String.sub s 0 60 ^ "..." else s in
  String.escaped s

let parses_without_raising text =
  match Parser.parse text with
  | Ok q -> (
    match Analytical.of_query q with
    | Ok _ | Error _ -> Ok ()
    | exception exn -> Error ("normalizer raised " ^ Printexc.to_string exn))
  | Error _ -> Ok ()
  | exception exn -> Error ("parser raised " ^ Printexc.to_string exn)

let check_robustness rng case =
  let inputs =
    case.c_text
    :: List.init 4 (fun _ -> Qgen.mutate_text rng case.c_text)
    @ List.init 2 (fun _ -> Qgen.random_bytes rng ~max_len:64)
  in
  let violation =
    List.find_map
      (fun text ->
        match parses_without_raising text with
        | Ok () -> None
        | Error reason ->
          Some (Printf.sprintf "%s on input \"%s\"" reason (preview text)))
      inputs
  in
  match violation with
  | Some v -> Violation v
  | None -> (
    (* accepted plans must verify clean *)
    match analytical_of_case case with
    | Error _ -> Pass
    | Ok aq -> (
      match Plan_verify.verify_query aq with
      | exception exn ->
        Violation
          (Printf.sprintf "plan verifier raised %s" (Printexc.to_string exn))
      | diags ->
        if Diagnostic.has_errors diags then
          Violation
            (Fmt.str "plan verifier rejected an accepted query: %a"
               (Fmt.list ~sep:Fmt.comma Diagnostic.pp)
               (List.filter Diagnostic.is_error diags))
        else Pass))

let check env ~seed name case =
  let rng = Prng.create ~seed:(seed lxor (Hashtbl.hash (name_to_string name) lor 1)) in
  match name with
  | Differential -> check_differential env case
  | Metamorphic -> check_metamorphic env ~seed rng case
  | Analyzer -> check_analyzer env case
  | Robustness -> check_robustness rng case
