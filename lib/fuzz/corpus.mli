(** Persistent corpus of shrunk reproducers.

    Every oracle violation is written as a standalone [.rq] file —
    [#]-comment header carrying the repro command, then the shrunk query
    text — into the corpus directory. The next fuzz run replays every
    corpus entry through the oracle stack before generating new cases,
    so fixed bugs stay fixed. File names are content-addressed
    ([<shape>-<fnv64 hex>.rq]) with a deterministic hash, keeping saves
    idempotent and runs reproducible. *)

(** Deterministic FNV-1a 64-bit hash of a string, in hex. *)
val hash : string -> string

(** [save ~dir ~shape ~repro text] writes one corpus entry (creating
    [dir] if needed) and returns its path. *)
val save : dir:string -> shape:string -> repro:string -> string -> string

(** [load ~dir] is every [.rq] entry as [(filename, contents)], sorted
    by filename; the empty list when [dir] does not exist. The contents
    include the comment header — the SPARQL lexer skips [#] comments, so
    they parse as-is. *)
val load : dir:string -> (string * string) list
