(** Random execution-knob configurations for the metamorphic oracle.

    Every configuration produced here is answer-preserving by
    construction — faults are retried within their attempt budgets,
    memory pressure only prices spills and degraded reruns, checkpoints
    only shape recovery time, and the planner knobs
    (map-join threshold, combiner, filter pushdown, compression) pick
    between physically different but logically equivalent plans. The
    cost-based optimizer is one more such knob: any {!k_optimize}
    policy may pick different join orders but must preserve the answer.
    Running the same query under each configuration and demanding
    byte-identical answers therefore tests every robustness layer at
    once. *)

type t = {
  k_label : string;  (** compact human-readable description *)
  k_options : Rapida_core.Plan_util.options;
  k_optimize : Rapida_planner.Cost_model.policy option;
      (** run with the cost-based planner armed under this policy; the
          oracle plans per query and installs the verified join-order
          hints before execution *)
}

(** [generate rng ~n] draws [n] distinct-looking configurations. The
    fault settings keep generous retry budgets so that a (transient)
    [Job_failed] stays rare; the oracle skips those cases rather than
    flagging them. *)
val generate : Rapida_datagen.Prng.t -> n:int -> t list
