(** The fuzzing driver: corpus replay, case generation, the oracle
    stack, shrinking, and reporting.

    A run is fully determined by its configuration: the same seed and
    budget generate the same cases, check them with the same per-case
    seeds, and reach the same verdicts. Wall-clock timings are recorded
    for the benchmark artifact but never influence verdicts (the
    optional time budget only truncates how many cases run). *)

open Rapida_rdf
module Engine = Rapida_core.Engine
module Table = Rapida_relational.Table

type config = {
  seed : int;
  budget : int;  (** number of generated cases *)
  time_budget_s : float option;  (** stop generating after this long *)
  oracles : Oracle.name list;
  corpus_dir : string option;  (** replay before generating; save failures *)
  products : int;  (** scale of the built-in BSBM dataset *)
  adversarial : float;  (** fraction of cases drawn in adversarial mode *)
  knob_count : int;  (** knob configurations per metamorphic check *)
  max_shrink_steps : int;
  break_table : (Engine.kind * (Table.t -> Table.t)) option;
      (** test-only engine mutation; see {!break_drop_row} *)
  graph : Graph.t option;  (** override the built-in dataset *)
}

(** seed 42, budget 200, all oracles, 30 products, 20% adversarial,
    2 knob configurations, 40 shrink steps, no corpus, no breakage. *)
val default_config : config

(** [break_drop_row kind] makes [kind] drop the last row of every
    non-empty result — the intentionally-broken engine the acceptance
    test feeds through the fuzzer to prove violations are caught and
    shrunk. *)
val break_drop_row : Engine.kind -> Engine.kind * (Table.t -> Table.t)

type failure = {
  f_case : int;  (** generated case index; -1 for corpus replays *)
  f_source : string;  (** "generated" or the corpus file name *)
  f_oracle : Oracle.name;
  f_detail : string;
  f_query : string;  (** original rendered query *)
  f_shrunk : string;  (** minimal reproducer after shrinking *)
  f_shrink_steps : int;
  f_saved : string option;  (** corpus path the reproducer was written to *)
}

type oracle_stats = {
  o_name : Oracle.name;
  o_checked : int;  (** cases the oracle actually judged (non-skip) *)
  o_skips : int;
  o_violations : int;
  o_time_s : float;
}

type report = {
  r_config : config;
  r_cases : int;  (** generated cases *)
  r_replayed : int;  (** corpus entries replayed *)
  r_accepted : int;  (** cases inside the analytical fragment *)
  r_rejected : int;
  r_shapes : (string * int) list;  (** query-shape coverage, sorted *)
  r_oracles : oracle_stats list;
  r_failures : failure list;
  r_elapsed_s : float;
}

val run : config -> report

val violations : report -> int

(** Deterministic text report (no timings) — stable across machines for
    cram tests. *)
val pp : report Fmt.t

(** Machine-readable report including timings and cases/sec — the
    [BENCH_9.json] payload. *)
val to_json : report -> Rapida_mapred.Json.t
