(** The fuzzer's oracle stack.

    Four oracle families, each a predicate over a generated case:

    - {!Differential}: all four engines and the reference evaluator
      produce byte-identical result tables (up to canonical row/column
      order), and engines agree on plan rejection.
    - {!Metamorphic}: answers are invariant under every knob
      configuration (faults, memory, checkpoints, planner knobs) and
      under semantics-preserving rewrites ({!Rewrite}).
    - {!Analyzer}: every {!Rapida_analysis.Card_analysis} interval
      brackets the measured cardinality of its plan node.
    - {!Robustness}: the lexer/parser/normalizer never raise on the
      query text, on byte-level mutants of it, or on arbitrary byte
      strings; and {!Rapida_analysis.Plan_verify} reports no
      error-severity diagnostic on any accepted query.

    Checks are deterministic given the case [seed]: the same seed
    replays the same knob rotation, rewrite permutations, and byte
    mutations — which is what lets the shrinker re-run a failing check
    verbatim. *)

open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Engine = Rapida_core.Engine
module Table = Rapida_relational.Table

type name = Differential | Metamorphic | Analyzer | Robustness

val all : name list

val name_to_string : name -> string

val name_of_string : string -> name option

type verdict =
  | Pass
  | Skip of string  (** case out of the oracle's scope (e.g. not analytical) *)
  | Violation of string

val pp_verdict : verdict Fmt.t

(** Prepared oracle context: the dataset, its statistics catalog, one
    prepared session per engine kind, and the knob configurations the
    metamorphic oracle sweeps. [break_table] post-processes the named
    engine's result tables — the test-only mutation that proves a broken
    engine is caught and shrunk. *)
type env

val make_env :
  ?break_table:Engine.kind * (Table.t -> Table.t) ->
  ?knobs:Knobs.t list ->
  Graph.t ->
  env

val env_graph : env -> Graph.t

val env_catalog : env -> Rapida_analysis.Stats_catalog.t

(** One case under test: the rendered query text plus, when it parsed,
    the AST. *)
type case = { c_text : string; c_query : Ast.query option }

val case_of_query : Ast.query -> case

val case_of_text : string -> case

(** [check env ~seed name case] runs one oracle family on one case. *)
val check : env -> seed:int -> name -> case -> verdict
