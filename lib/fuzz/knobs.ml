module Plan_util = Rapida_core.Plan_util
module Fault_injector = Rapida_mapred.Fault_injector
module Memory = Rapida_mapred.Memory
module Checkpoint = Rapida_mapred.Checkpoint
module Cluster = Rapida_mapred.Cluster
module Prng = Rapida_datagen.Prng
module Cost_model = Rapida_planner.Cost_model

type t = {
  k_label : string;
  k_options : Plan_util.options;
  k_optimize : Cost_model.policy option;
}

let gen_faults rng =
  if Prng.bool rng 0.5 then (Fault_injector.default, "healthy")
  else
    let seed = Prng.int rng 1000 in
    let cfg =
      {
        Fault_injector.default with
        seed;
        task_fail_p = Prng.pick rng [ 0.01; 0.03; 0.05 ];
        straggler_p = Prng.pick rng [ 0.0; 0.05; 0.1 ];
        max_attempts = 4;
        speculation = Prng.bool rng 0.7;
        job_retries = 2;
      }
    in
    (cfg, Printf.sprintf "faults(%d,%.2f)" seed cfg.task_fail_p)

let gen_memory rng =
  match Prng.int rng 4 with
  | 0 -> (Memory.default, "mem-default")
  | 1 ->
    ( Memory.create
        { task_heap_bytes = 4 lsl 20; sort_buffer_bytes = 1 lsl 20; spill_threshold = 0.8 },
      "mem-4m" )
  | 2 ->
    ( Memory.create
        { task_heap_bytes = 64 lsl 10; sort_buffer_bytes = 16 lsl 10; spill_threshold = 0.8 },
      "mem-64k" )
  | _ ->
    ( Memory.create
        { task_heap_bytes = 8 lsl 10; sort_buffer_bytes = 2 lsl 10; spill_threshold = 0.5 },
      "mem-8k" )

(* The cost-based planner is itself a knob: with any policy the chosen
   join orders may differ but the answer must not. *)
let gen_optimize rng =
  match Prng.int rng 4 with
  | 0 -> (None, "")
  | 1 -> (Some Cost_model.Mid, "/opt=mid")
  | 2 -> (Some Cost_model.Worst_case, "/opt=worst-case")
  | _ -> (Some Cost_model.Minimax_regret, "/opt=minimax-regret")

let gen_checkpoint rng =
  match Prng.int rng 4 with
  | 0 -> (Checkpoint.default, "ck-never")
  | 1 -> ({ Checkpoint.policy = Every_k 1; replication = 3 }, "ck-every1")
  | 2 -> ({ Checkpoint.policy = Every_k 2; replication = 2 }, "ck-every2")
  | _ -> ({ Checkpoint.policy = Adaptive (1 lsl 20); replication = 3 }, "ck-adaptive")

let generate rng ~n =
  List.init n (fun _ ->
      let faults, flabel = gen_faults rng in
      let memory, mlabel = gen_memory rng in
      let checkpoint, clabel = gen_checkpoint rng in
      let optimize, olabel = gen_optimize rng in
      let map_join_threshold = Prng.pick rng [ 0; 24 lsl 10; max_int ] in
      let ntga_combiner = Prng.bool rng 0.7 in
      let ntga_filter_pushdown = Prng.bool rng 0.7 in
      let hive_compression = Prng.pick rng [ 1.0; 0.2 ] in
      let cluster =
        Cluster.with_memory Plan_util.default_options.Plan_util.cluster memory
      in
      let options =
        Plan_util.make ~cluster ~map_join_threshold ~hive_compression
          ~ntga_combiner ~ntga_filter_pushdown ~faults ~checkpoint
          ~verify_plans:true ()
      in
      let label =
        Printf.sprintf "%s/%s/%s/mjt=%s%s%s%s" flabel mlabel clabel
          (if map_join_threshold = max_int then "inf"
           else string_of_int map_join_threshold)
          (if ntga_combiner then "" else "/no-comb")
          (if ntga_filter_pushdown then "" else "/no-push")
          olabel
      in
      { k_label = label; k_options = options; k_optimize = optimize })
