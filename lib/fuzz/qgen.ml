open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Analytical = Rapida_sparql.Analytical
module Star = Rapida_sparql.Star
module Stats_catalog = Rapida_analysis.Stats_catalog
module Prng = Rapida_datagen.Prng

type mode = Hitting | Adversarial

let mode_name = function Hitting -> "hitting" | Adversarial -> "adversarial"

type env = {
  e_preds : (Term.t * Stats_catalog.pred_stats) list;
      (* non-rdf:type predicates with data behind them *)
  e_classes : Term.t list;
  e_links : (string * (Term.t * Stats_catalog.pred_stats) list) list;
      (* predicate IRI -> predicates its object values carry as subjects *)
}

let rdf_type_iri = Term.lexical Namespace.rdf_type

let env_of_graph g catalog =
  let preds =
    List.filter_map
      (fun (iri, st) ->
        if iri = rdf_type_iri then None else Some (Term.iri iri, st))
      catalog.Stats_catalog.preds
  in
  let classes = List.map (fun (iri, _) -> Term.iri iri) catalog.classes in
  (* Sample each predicate's objects: predicates whose objects are
     themselves subjects give the link edges that keep multi-star chains
     connected to real data. *)
  let link_of p =
    let triples = Graph.by_property g p in
    let seen = Hashtbl.create 8 in
    let rec sample n = function
      | [] -> ()
      | _ when n = 0 -> ()
      | tr :: rest ->
        let o = tr.Triple.o in
        (if Term.is_iri o then
           List.iter
             (fun tr' ->
               let key = Term.lexical tr'.Triple.p in
               if key <> rdf_type_iri && not (Hashtbl.mem seen key) then
                 Hashtbl.add seen key tr'.Triple.p)
             (Graph.by_subject g o));
        sample (n - 1) rest
    in
    sample 20 triples;
    Hashtbl.fold
      (fun _ term acc ->
        match Stats_catalog.pred catalog term with
        | Some st -> (term, st) :: acc
        | None -> acc)
      seen []
  in
  let links =
    List.filter_map
      (fun (p, _) ->
        match link_of p with
        | [] -> None
        | targets ->
          let targets =
            List.sort (fun (a, _) (b, _) -> Term.compare a b) targets
          in
          Some (Term.lexical p, targets))
      preds
  in
  { e_preds = preds; e_classes = classes; e_links = links }

(* --- sampling helpers -------------------------------------------------- *)

let take_random rng n xs =
  let rec go n xs acc =
    if n <= 0 || xs = [] then List.rev acc
    else
      let i = Prng.int rng (List.length xs) in
      let x = List.nth xs i in
      go (n - 1) (List.filteri (fun j _ -> j <> i) xs) (x :: acc)
  in
  go (min n (List.length xs)) xs []

let maybe rng p f = if Prng.bool rng p then f () else []

(* --- BGP skeleton ------------------------------------------------------ *)

(* One generated BGP: the triple patterns plus the variables available for
   grouping, and the numeric object variables (with their literal range)
   available for filters and SUM/AVG/MIN/MAX arguments. *)
type skeleton = {
  sk_patterns : Ast.triple_pattern list;
  sk_group_candidates : Ast.var list;
  sk_numeric : (Ast.var * Stats_catalog.num_range) list;
  sk_plain : Ast.var list;  (* non-numeric object variables *)
}

let invented_pred rng =
  Term.iri (Namespace.bench ^ "nothingUsesThisPredicate" ^ string_of_int (Prng.int rng 5))

let invented_class rng =
  Term.iri (Namespace.bench ^ "NoSuchClass" ^ string_of_int (Prng.int rng 3))

let gen_skeleton rng env ~mode =
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "%s%d" prefix !counter
  in
  let patterns = ref [] in
  let numeric = ref [] in
  let plain = ref [] in
  let subjects = ref [] in
  let add_pattern tp = patterns := tp :: !patterns in
  (* Build one star rooted at [subject], drawing properties from [preds];
     returns (object var, link targets) continuations for chaining. *)
  let build_star subject preds =
    subjects := subject :: !subjects;
    let n_props = 1 + Prng.int rng 3 in
    let chosen = take_random rng n_props preds in
    let chosen =
      if chosen = [] then
        (* empty predicate pool (adversarial corner): invent one *)
        [ (invented_pred rng, None) ]
      else List.map (fun (p, st) -> (p, Some st)) chosen
    in
    let chosen =
      (* adversarial mode swaps some predicates for ones the data lacks *)
      if mode = Adversarial then
        List.map
          (fun (p, st) ->
            if Prng.bool rng 0.3 then (invented_pred rng, None) else (p, st))
          chosen
      else chosen
    in
    let continuations =
      List.filter_map
        (fun (p, st) ->
          let o = fresh "o" in
          add_pattern
            { Ast.tp_s = Ast.Nvar subject; tp_p = Ast.Nterm p; tp_o = Ast.Nvar o };
          (match st with
          | Some st -> (
            match st.Stats_catalog.num_range with
            | Some nr -> numeric := (o, nr) :: !numeric
            | None -> plain := o :: !plain)
          | None -> plain := o :: !plain);
          match List.assoc_opt (Term.lexical p) env.e_links with
          | Some targets when targets <> [] -> Some (o, targets)
          | _ -> None)
        chosen
    in
    (if env.e_classes <> [] && Prng.bool rng 0.35 then
       let cls =
         if mode = Adversarial && Prng.bool rng 0.5 then invented_class rng
         else Prng.pick rng env.e_classes
       in
       add_pattern
         {
           Ast.tp_s = Ast.Nvar subject;
           tp_p = Ast.Nterm Namespace.rdf_type;
           tp_o = Ast.Nterm cls;
         });
    continuations
  in
  let n_stars = 1 + Prng.weighted rng [| 0.6; 0.3; 0.1 |] in
  let rec chain subject preds remaining =
    let conts = build_star subject preds in
    if remaining > 1 && conts <> [] then
      let link_var, targets = Prng.pick rng conts in
      chain link_var targets (remaining - 1)
  in
  chain (fresh "s") env.e_preds n_stars;
  let patterns = List.rev !patterns in
  let group_candidates = List.rev_append !subjects (List.rev !plain) in
  {
    sk_patterns = patterns;
    sk_group_candidates = group_candidates;
    sk_numeric = List.rev !numeric;
    sk_plain = List.rev !plain;
  }

(* --- filters, aggregates, having --------------------------------------- *)

let num_literal rng x =
  if Float.is_integer x && Float.abs x < 1e9 && Prng.bool rng 0.5 then
    Term.int (int_of_float x)
  else Term.decimal x

let comparison rng ~mode (v, (nr : Stats_catalog.num_range)) =
  let op = Prng.pick rng [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  let threshold =
    match mode with
    | Hitting ->
      let frac = Prng.float rng 1.0 in
      nr.nmin +. (frac *. (nr.nmax -. nr.nmin))
    | Adversarial ->
      if Prng.bool rng 0.5 then nr.nmax +. 1000.0 else nr.nmin -. 1000.0
  in
  let threshold = Float.round (threshold *. 100.0) /. 100.0 in
  Ast.Ebin (op, Ast.Evar v, Ast.Eterm (num_literal rng threshold))

let gen_filters rng ~mode sk =
  if sk.sk_numeric = [] then []
  else
    let n = Prng.weighted rng [| 0.45; 0.4; 0.15 |] in
    List.init n (fun _ ->
        let base = comparison rng ~mode (Prng.pick rng sk.sk_numeric) in
        if Prng.bool rng 0.2 then
          let other = comparison rng ~mode (Prng.pick rng sk.sk_numeric) in
          Ast.Ebin ((if Prng.bool rng 0.5 then Ast.And else Ast.Or), base, other)
        else if Prng.bool rng 0.1 then Ast.Enot base
        else base)

let gen_aggregates rng sk ~suffix =
  let n = 1 + Prng.weighted rng [| 0.6; 0.4 |] in
  List.init n (fun i ->
      let out = Printf.sprintf "agg%d%s" i suffix in
      let expr =
        if sk.sk_numeric = [] || Prng.bool rng 0.45 then
          if Prng.bool rng 0.3 && sk.sk_group_candidates <> [] then
            Ast.Eagg
              ( Ast.Count,
                Some (Ast.Evar (Prng.pick rng sk.sk_group_candidates)),
                Prng.bool rng 0.3 )
          else Ast.Eagg (Ast.Count, None, false)
        else
          let func = Prng.pick rng [ Ast.Sum; Ast.Avg; Ast.Min; Ast.Max ] in
          let v, _ = Prng.pick rng sk.sk_numeric in
          Ast.Eagg (func, Some (Ast.Evar v), false)
      in
      (expr, out))

let gen_having rng aggs =
  maybe rng 0.35 (fun () ->
      let _, out = Prng.pick rng aggs in
      let op = Prng.pick rng [ Ast.Gt; Ast.Ge; Ast.Lt ] in
      [ Ast.Ebin (op, Ast.Evar out, Ast.Eterm (Term.int (Prng.int rng 6))) ])

let gen_order_limit rng cols =
  let order_by =
    if cols = [] then []
    else
      maybe rng 0.4 (fun () ->
          List.map
            (fun v -> if Prng.bool rng 0.5 then Ast.Asc v else Ast.Desc v)
            (take_random rng (1 + Prng.int rng 2) cols))
  in
  (* LIMIT only under ORDER BY: the ordered path carries a full-row
     deterministic tiebreaker, so every engine keeps the same rows.
     An unordered LIMIT keeps whichever rows the physical plan produced
     first — legitimately different across engines. *)
  let limit =
    if order_by <> [] && Prng.bool rng 0.5 then Some (Prng.int rng 20) else None
  in
  (order_by, limit)

(* --- variable renaming (grouping-sets-style subquery copies) ------------ *)

let rename_var keep suffix v = if List.mem v keep then v else v ^ suffix

let rename_node keep suffix = function
  | Ast.Nvar v -> Ast.Nvar (rename_var keep suffix v)
  | n -> n

let rename_pattern keep suffix tp =
  {
    Ast.tp_s = rename_node keep suffix tp.Ast.tp_s;
    tp_p = rename_node keep suffix tp.Ast.tp_p;
    tp_o = rename_node keep suffix tp.Ast.tp_o;
  }

(* --- assembling selects ------------------------------------------------- *)

let subquery_select rng ~mode sk ~group_by ~suffix =
  let sk =
    if suffix = "" then sk
    else
      {
        sk_patterns = List.map (rename_pattern group_by suffix) sk.sk_patterns;
        sk_group_candidates =
          List.map (rename_var group_by suffix) sk.sk_group_candidates;
        sk_numeric =
          List.map (fun (v, nr) -> (rename_var group_by suffix v, nr)) sk.sk_numeric;
        sk_plain = List.map (rename_var group_by suffix) sk.sk_plain;
      }
  in
  let filters = gen_filters rng ~mode sk in
  let aggs = gen_aggregates rng sk ~suffix in
  let having = gen_having rng aggs in
  let projection =
    List.map (fun v -> Ast.Svar v) group_by
    @ List.map (fun (e, out) -> Ast.Sexpr (e, out)) aggs
  in
  let select =
    {
      Ast.distinct = false;
      projection;
      where =
        List.map (fun tp -> Ast.Ptriple tp) sk.sk_patterns
        @ List.map (fun f -> Ast.Pfilter f) filters;
      group_by;
      having;
      order_by = [];
      limit = None;
    }
  in
  let outputs = group_by @ List.map snd aggs in
  (select, outputs)

let pick_group_by rng sk =
  let n = Prng.weighted rng [| 0.2; 0.5; 0.3 |] in
  take_random rng n sk.sk_group_candidates

let generate rng env ~mode =
  let n_sub = 1 + Prng.weighted rng [| 0.7; 0.2; 0.1 |] in
  if n_sub = 1 then begin
    let sk = gen_skeleton rng env ~mode in
    let group_by = pick_group_by rng sk in
    let select, outputs = subquery_select rng ~mode sk ~group_by ~suffix:"" in
    let order_by, limit = gen_order_limit rng outputs in
    { Ast.base_select = { select with order_by; limit } }
  end
  else begin
    let sk = gen_skeleton rng env ~mode in
    (* Shared grouping variables join the subquery results; everything
       else is renamed apart per subquery, grouping-sets style. *)
    let shared =
      match pick_group_by rng sk with
      | [] -> take_random rng 1 sk.sk_group_candidates
      | g -> g
    in
    let subs =
      List.init n_sub (fun i ->
          let group_by =
            if Prng.bool rng 0.75 then shared
            else take_random rng (List.length shared) shared
          in
          let suffix = Printf.sprintf "_g%d" i in
          subquery_select rng ~mode sk ~group_by ~suffix)
    in
    let schema =
      List.fold_left
        (fun acc (_, outs) ->
          acc @ List.filter (fun v -> not (List.mem v acc)) outs)
        [] subs
    in
    let projection =
      if Prng.bool rng 0.7 || schema = [] then []
      else
        List.map
          (fun v -> Ast.Svar v)
          (take_random rng (1 + Prng.int rng (List.length schema)) schema)
    in
    let visible =
      match projection with
      | [] -> schema
      | items -> List.filter_map (function Ast.Svar v -> Some v | _ -> None) items
    in
    let order_by, limit = gen_order_limit rng visible in
    {
      Ast.base_select =
        {
          distinct = false;
          projection;
          where = List.map (fun (sel, _) -> Ast.Psub sel) subs;
          group_by = [];
          having = [];
          order_by;
          limit;
        };
    }
  end

(* --- shape classification ----------------------------------------------- *)

let shape q =
  match Analytical.of_query q with
  | Error _ -> "invalid"
  | Ok aq -> (
    if List.length aq.Analytical.subqueries > 1 then "gsets"
    else
      match aq.subqueries with
      | [] -> "invalid"
      | sq :: _ ->
        if List.length sq.stars > 1 then "join"
        else if sq.having <> [] then "having"
        else if sq.filters <> [] then "filter"
        else if aq.order_by <> [] || aq.limit <> None then "order"
        else "star")

(* --- byte-level inputs for the robustness oracle ------------------------ *)

let random_bytes rng ~max_len =
  let len = Prng.int rng (max 1 max_len) in
  String.init len (fun _ -> Char.chr (Prng.int rng 256))

let mutate_text rng s =
  let n = String.length s in
  if n = 0 then random_bytes rng ~max_len:8
  else
    match Prng.int rng 5 with
    | 0 ->
      (* flip one byte *)
      let i = Prng.int rng n in
      String.mapi (fun j c -> if j = i then Char.chr (Prng.int rng 256) else c) s
    | 1 ->
      (* insert a random byte *)
      let i = Prng.int rng (n + 1) in
      String.sub s 0 i
      ^ String.make 1 (Char.chr (Prng.int rng 256))
      ^ String.sub s i (n - i)
    | 2 ->
      (* delete one byte *)
      let i = Prng.int rng n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
    | 3 -> String.sub s 0 (Prng.int rng n)  (* truncate *)
    | _ ->
      (* duplicate a slice *)
      let i = Prng.int rng n in
      let len = Prng.int rng (n - i) in
      String.sub s 0 (i + len) ^ String.sub s i (n - i)
