module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Workflow = Rapida_mapred.Workflow
module Job = Rapida_mapred.Job
module Phys_ntga = Phys_ntga

type member = {
  m_index : int;
  m_query : Analytical.t;
  m_subqueries : Analytical.subquery list;
}

type group = {
  g_members : member list;
  g_composite : Composite.t option;
}

let shares = function
  | Engine.Hive_mqo | Engine.Rapid_analytics -> true
  | Engine.Hive_naive | Engine.Rapid_plus -> false

(* Pool a query's subqueries into a group's merged numbering: composite
   pattern ids are the subquery ids, so pooled ids must be contiguous
   and unique across members. Only [sq_id] changes — patterns, filters,
   grouping, and aggregates are untouched. *)
let renumber ~base sqs =
  List.mapi
    (fun i (sq : Analytical.subquery) ->
      { sq with Analytical.sq_id = base + i })
    sqs

let pooled_subqueries members =
  List.concat_map (fun m -> m.m_subqueries) members

let group_queries kind queries =
  let solo i q =
    let sqs = renumber ~base:0 q.Analytical.subqueries in
    {
      g_members = [ { m_index = i; m_query = q; m_subqueries = sqs } ];
      g_composite =
        (match Composite.build sqs with Ok c -> Some c | Error _ -> None);
    }
  in
  if not (shares kind) then List.mapi solo queries
  else
    let extend g i q =
      (* A group only grows while the pooled subqueries still form one
         composite pattern — Defs 3.1/3.2 checked across queries. *)
      match g.g_composite with
      | None -> None
      | Some _ ->
        let base = List.length (pooled_subqueries g.g_members) in
        let sqs = renumber ~base q.Analytical.subqueries in
        let pooled = pooled_subqueries g.g_members @ sqs in
        (match Composite.build pooled with
        | Error _ -> None
        | Ok composite ->
          Some
            {
              g_members =
                g.g_members
                @ [ { m_index = i; m_query = q; m_subqueries = sqs } ];
              g_composite = Some composite;
            })
    in
    let rec place groups i q =
      match groups with
      | [] -> [ solo i q ]
      | g :: rest -> (
        match extend g i q with
        | Some g' -> g' :: rest
        | None -> g :: place rest i q)
    in
    let groups, _ =
      List.fold_left
        (fun (groups, i) q -> (place groups i q, i + 1))
        ([], 0) queries
    in
    groups

type result = {
  outputs : (Table.t, Engine.error) Stdlib.result list;
  stats : Stats.t;
}

(* One map-only cycle routing the shared plan's per-query result rows to
   their N per-query output channels — the fan-out boundary between the
   shared composite workflow and the individual result consumers, priced
   like any other cycle. The routed rows are what the server returns, so
   the demux is real computation, not bookkeeping. *)
let demux wf members tables =
  let tagged =
    List.concat
      (List.map2
         (fun m (t : Table.t) ->
           List.map (fun row -> (m.m_index, row)) t.Table.rows)
         members tables)
  in
  let routed =
    Workflow.run_map_only wf
      {
        Job.mo_name = "server_demux";
        mo_map = (fun x -> [ x ]);
        (* the channel tag rides along with each routed row *)
        mo_input_size = (fun (_, row) -> 8 + Table.row_size_bytes row);
        mo_output_size = (fun (_, row) -> 8 + Table.row_size_bytes row);
      }
      tagged
  in
  List.map2
    (fun m (t : Table.t) ->
      let rows =
        List.filter_map
          (fun (i, row) -> if i = m.m_index then Some row else None)
          routed
      in
      { t with Table.rows })
    members tables

(* Shared Hive-MQO plan across the group: materialize the pooled
   composite once, then extract + aggregate per member subquery and
   final-join per member — the [27]-style rewriting applied between
   queries instead of between one query's subqueries. *)
let shared_hive ctx vp composite members =
  let wf = Workflow.create (Plan_util.hive_ctx ctx) in
  let q_opt = Hive_mqo.eval_composite wf vp composite in
  let tables =
    List.map
      (fun m ->
        let per_sq =
          List.map
            (fun (sq : Analytical.subquery) ->
              let info =
                List.find
                  (fun (p : Composite.pattern_info) ->
                    p.Composite.pat_id = sq.Analytical.sq_id)
                  composite.Composite.patterns
              in
              Hive_mqo.extract_and_aggregate wf composite q_opt sq info)
            m.m_subqueries
        in
        Plan_util.final_join wf m.m_query per_sq)
      members
  in
  (wf, demux wf members tables)

(* Shared RAPIDAnalytics plan: one NTGA composite evaluation (scan +
   group filter + α-joins) and ONE parallel Agg-Join cycle computing
   every member's every grouping, then per-member finish/final-join. *)
let shared_ra ctx store composite members =
  let wf = Workflow.create ctx in
  let planner = Exec_ctx.planner ctx in
  let merged =
    {
      Analytical.subqueries = pooled_subqueries members;
      outer_projection = [];
      order_by = [];
      limit = None;
    }
  in
  let joined = Rapid_analytics.eval_composite wf merged store composite in
  let all_tables =
    Phys_ntga.agg_cycle wf ~name:"parallel_aggjoin"
      ~combiner:planner.Exec_ctx.ntga_combiner ~input:joined
      (Rapid_analytics.agjs_of planner composite merged)
  in
  let tables, rest =
    List.fold_left
      (fun (acc, remaining) m ->
        let n = List.length m.m_subqueries in
        let mine = List.filteri (fun i _ -> i < n) remaining in
        let rest = List.filteri (fun i _ -> i >= n) remaining in
        let finished =
          List.map2 Plan_util.finish_subquery m.m_query.Analytical.subqueries
            mine
        in
        (acc @ [ Plan_util.final_join wf m.m_query finished ], rest))
      ([], all_tables) members
  in
  assert (rest = []);
  (wf, demux wf members tables)

let run_group session ctx group =
  let kind = Engine.session_kind session in
  let input = Engine.session_input session in
  let verifier = Engine.session_verifier session in
  let verify m table =
    if not (Exec_ctx.verify_plans ctx) then Ok table
    else
      match verifier kind m.m_query table with
      | [] -> Ok table
      | problems -> Error (Engine.Verify_failed { kind; problems })
  in
  match group with
  | { g_members = [ m ]; _ } ->
    (* Singleton groups take the exact solo path: byte-identical cost
       and answer to a stand-alone [Engine.execute]. *)
    (match Engine.execute session ctx m.m_query with
    | Ok out -> { outputs = [ Ok out.Engine.table ]; stats = out.Engine.stats }
    | Error e -> { outputs = [ Error e ]; stats = Stats.empty })
  | { g_members = members; g_composite = Some composite } -> (
    match
      match kind with
      | Engine.Hive_mqo ->
        shared_hive ctx (Engine.input_vp input) composite members
      | Engine.Rapid_analytics ->
        shared_ra ctx (Engine.input_tg_store input) composite members
      | Engine.Hive_naive | Engine.Rapid_plus ->
        invalid_arg "Batch_exec.run_group: kind does not share"
    with
    | wf, tables ->
      {
        outputs = List.map2 verify members tables;
        stats = Workflow.stats wf;
      }
    | exception Workflow.Aborted a ->
      {
        outputs = List.map (fun _ -> Error (Engine.Job_failed a)) members;
        stats = Stats.empty;
      }
    | exception Failure msg ->
      {
        outputs = List.map (fun _ -> Error (Engine.Plan_rejected msg)) members;
        stats = Stats.empty;
      }
    | exception Invalid_argument msg ->
      {
        outputs = List.map (fun _ -> Error (Engine.Plan_rejected msg)) members;
        stats = Stats.empty;
      })
  | { g_members = _ :: _ :: _; g_composite = None } ->
    invalid_arg "Batch_exec.run_group: multi-member group without composite"
  | { g_members = []; _ } ->
    { outputs = []; stats = Stats.empty }
