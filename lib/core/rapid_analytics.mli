(** RAPIDAnalytics: the paper's contribution. Overlapping graph patterns
    are rewritten into one composite graph pattern evaluated with shared
    scans and joins (optional group filter + α-join), and all independent
    grouping-aggregations are computed in a single parallel Agg-Join
    cycle, followed by a map-only join of the aggregated triplegroups.

    When the patterns do not overlap (Def. 3.2 fails), evaluation falls
    back to the RAPID+ plan — the paper restricts the optimization to
    overlapping patterns. *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Tg_store = Rapida_ntga.Tg_store
module Stats = Rapida_mapred.Stats

val run :
  Rapida_mapred.Exec_ctx.t -> Tg_store.t -> Analytical.t ->
  (Table.t * Stats.t, string) result

(** [plan_description q] renders the composite rewriting that [run] would
    use (or the overlap failure), for the CLI's explain command. *)
val plan_description : Analytical.t -> string
