(** RAPIDAnalytics: the paper's contribution. Overlapping graph patterns
    are rewritten into one composite graph pattern evaluated with shared
    scans and joins (optional group filter + α-join), and all independent
    grouping-aggregations are computed in a single parallel Agg-Join
    cycle, followed by a map-only join of the aggregated triplegroups.

    When the patterns do not overlap (Def. 3.2 fails), evaluation falls
    back to the RAPID+ plan — the paper restricts the optimization to
    overlapping patterns. *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Tg_store = Rapida_ntga.Tg_store
module Stats = Rapida_mapred.Stats

val run :
  Rapida_mapred.Exec_ctx.t -> Tg_store.t -> Analytical.t ->
  (Table.t * Stats.t, string) result

(** [plan_description q] renders the composite rewriting that [run] would
    use (or the overlap failure), for the CLI's explain command. *)
val plan_description : Analytical.t -> string

(** The pieces of the composite plan, exposed so the query server's
    cross-query MQO ({!Batch_exec}) can share one composite evaluation
    (scan + Agg-Join cycle) across several concurrent queries. *)

(** [eval_composite wf q store composite] evaluates the composite
    pattern with NTGA operators: one map-side scan + group filter per
    composite star and one join cycle per edge, recorded on [wf]. [q]
    supplies the planner's filter-pushdown decision (pushed only for
    single-subquery queries). *)
val eval_composite :
  Rapida_mapred.Workflow.t -> Analytical.t -> Tg_store.t -> Composite.t ->
  Rapida_ntga.Joined.t list

(** [agjs_of planner composite q] is one Agg-Join per subquery of [q],
    all evaluable in a single {!Phys_ntga.agg_cycle} over the composite
    matches. *)
val agjs_of :
  Rapida_mapred.Exec_ctx.planner -> Composite.t -> Analytical.t ->
  Phys_ntga.agj list
