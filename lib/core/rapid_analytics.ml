module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Ops = Rapida_ntga.Ops
module Joined = Rapida_ntga.Joined
module Tg_store = Rapida_ntga.Tg_store
module Workflow = Rapida_mapred.Workflow
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Table = Rapida_relational.Table

(* Star-local filters are pushed into the scan only for single-pattern
   queries; with several patterns the paper's scope assumes identical
   filters across patterns, and the catalog's multi-pattern queries carry
   none, so the general case keeps filters in the aggregation phase. *)
let star_filter_refine planner (q : Analytical.t) (star : Composite.star) =
  match q.subqueries with
  | _ when not planner.Exec_ctx.ntga_filter_pushdown -> Option.some
  | [ sq ] -> (
    match
      List.find_opt
        (fun (s : Rapida_sparql.Star.t) -> s.id = star.cs_id)
        sq.stars
    with
    | Some orig ->
      let refine, _, _ = Plan_util.push_star_filters orig sq.filters in
      refine
    | None -> Option.some)
  | _ -> Option.some

(* Map-side source of a composite star: scan the partitions covering the
   primary properties, push star-local filters, then apply the Optional
   Group Filter. *)
let star_source planner q composite store (star : Composite.star) =
  let prim = Composite.prim_reqs composite star in
  let sec = Composite.sec_reqs composite star in
  let props = List.map (fun (r : Ops.prop_req) -> r.prop) prim in
  let tgs = Tg_store.scan store ~required:props in
  let filter_refine = star_filter_refine planner q star in
  let refine tg =
    match filter_refine tg with
    | None -> None
    | Some tg -> (
      match Ops.opt_group_filter ~prim ~opt:sec [ tg ] with
      | [ tg' ] -> Some tg'
      | _ -> None)
  in
  Phys_ntga.Tgs { tgs; refine; star = star.cs_id }

(* α conditions restricted to already-joined stars: a partial join is kept
   when at least one pattern could still match it. *)
let partial_keep (composite : Composite.t) seen joined =
  List.exists
    (fun (p : Composite.pattern_info) ->
      let restricted =
        List.filter (fun (cs_id, _) -> Hashtbl.mem seen cs_id) p.alpha
      in
      Composite.alpha_holds restricted joined)
    composite.patterns

let eval_composite wf q store (composite : Composite.t) =
  let planner = Exec_ctx.planner (Workflow.ctx wf) in
  let star_of id =
    List.find (fun (s : Composite.star) -> s.cs_id = id) composite.stars
  in
  match composite.stars with
  | [ only ] ->
    let prim = Composite.prim_reqs composite only in
    let sec = Composite.sec_reqs composite only in
    let props = List.map (fun (r : Ops.prop_req) -> r.prop) prim in
    let filter_refine = star_filter_refine planner q only in
    Tg_store.scan store ~required:props
    |> List.concat_map (fun tg ->
           match filter_refine tg with
           | None -> []
           | Some tg -> (
             match Ops.opt_group_filter ~prim ~opt:sec [ tg ] with
             | [ tg' ] -> [ Joined.of_tg only.cs_id tg' ]
             | _ -> []))
  | _ -> (
    match
      Composite.join_plan
        ?star_order:(Exec_ctx.join_order (Workflow.ctx wf) (-1))
        composite
    with
    | Error msg -> failwith msg
    | Ok [] -> failwith "composite pattern without join edges"
    | Ok (first :: rest) ->
      let seen = Hashtbl.create 8 in
      Hashtbl.add seen first.Star.left.star ();
      Hashtbl.add seen first.Star.right.star ();
      let init =
        Phys_ntga.join_cycle wf ~name:"composite_join0"
          ~left:
            (star_source planner q composite store
               (star_of first.Star.left.star))
          ~right:
            (star_source planner q composite store
               (star_of first.Star.right.star))
          ~left_key:(Rapid_plus.key_of_endpoint first.Star.left)
          ~right_key:(Rapid_plus.key_of_endpoint first.Star.right)
          ~keep:(partial_keep composite seen)
      in
      let acc, _ =
        List.fold_left
          (fun (acc, i) (e : Star.edge) ->
            let new_endpoint, old_endpoint =
              if Hashtbl.mem seen e.Star.left.star then (e.right, e.left)
              else (e.left, e.right)
            in
            Hashtbl.replace seen new_endpoint.Star.star ();
            let joined =
              Phys_ntga.join_cycle wf
                ~name:(Printf.sprintf "composite_join%d" i)
                ~left:(Phys_ntga.Pre acc)
                ~right:
                  (star_source planner q composite store
                     (star_of new_endpoint.Star.star))
                ~left_key:(Rapid_plus.key_of_endpoint old_endpoint)
                ~right_key:(Rapid_plus.key_of_endpoint new_endpoint)
                ~keep:(partial_keep composite seen)
            in
            (joined, i + 1))
          (init, 1) rest
      in
      acc)

(* The parallel Agg-Join: one agj per subquery, all evaluated in a single
   MR cycle over the composite matches. Bindings are extracted with each
   subquery's original star patterns against the joined parts they map
   to (the implicit n-split). *)
let agjs_of planner composite (q : Analytical.t) =
  List.map
    (fun (sq : Analytical.subquery) ->
      let info =
        List.find
          (fun (p : Composite.pattern_info) -> p.pat_id = sq.sq_id)
          composite.Composite.patterns
      in
      let stars =
        List.map
          (fun (orig_id, cs_id) ->
            (cs_id, List.find (fun (s : Star.t) -> s.id = orig_id) sq.stars))
          info.star_of
      in
      let filters =
        match q.subqueries with
        | [ _ ] when planner.Exec_ctx.ntga_filter_pushdown ->
          List.filter
            (fun f ->
              not
                (List.exists
                   (fun star ->
                     let _, pushed, _ =
                       Plan_util.push_star_filters star [ f ]
                     in
                     pushed <> [])
                   sq.stars))
            sq.filters
        | _ -> sq.filters
      in
      {
        Phys_ntga.agj_id = sq.sq_id;
        stars;
        filters;
        group_by = sq.group_by;
        aggregates = sq.aggregates;
        alpha = Composite.alpha_holds info.alpha;
      })
    q.subqueries

let run_composite ctx store (q : Analytical.t) composite =
  let wf = Workflow.create ctx in
  let planner = Exec_ctx.planner ctx in
  match
    let joined = eval_composite wf q store composite in
    let tables =
      Phys_ntga.agg_cycle wf ~name:"parallel_aggjoin"
        ~combiner:planner.Exec_ctx.ntga_combiner ~input:joined
        (agjs_of planner composite q)
    in
    let tables =
      List.map2 Plan_util.finish_subquery q.subqueries tables
    in
    Plan_util.final_join wf q tables
  with
  | table -> Ok (table, Workflow.stats wf)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let run ctx store (q : Analytical.t) =
  match Composite.build q.subqueries with
  | Ok composite -> run_composite ctx store q composite
  | Error _ ->
    (* Non-overlapping patterns: the optimization does not apply; evaluate
       with the naive NTGA plan. *)
    Rapid_plus.run ctx store q

let plan_description (q : Analytical.t) =
  match Composite.build q.subqueries with
  | Ok composite ->
    Fmt.str
      "@[<v>composite rewriting applies:@ %a@ %d parallel Agg-Join(s) in \
       one MR cycle@]"
      Composite.pp composite
      (List.length q.subqueries)
  | Error msg -> Fmt.str "composite rewriting does not apply: %s" msg
