open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Binding = Rapida_sparql.Binding
module Aggregate = Rapida_sparql.Aggregate
module Analytical = Rapida_sparql.Analytical
module Triplegroup = Rapida_ntga.Triplegroup
module Joined = Rapida_ntga.Joined
module Ops = Rapida_ntga.Ops
module Tg_match = Rapida_ntga.Tg_match
module Workflow = Rapida_mapred.Workflow
module Job = Rapida_mapred.Job
module Table = Rapida_relational.Table

type source =
  | Tgs of {
      tgs : Triplegroup.t list;
      refine : Triplegroup.t -> Triplegroup.t option;
      star : int;
    }
  | Pre of Joined.t list

type side = L | R

type item =
  | Raw of side * Triplegroup.t
  | Joined_item of side * Joined.t

let item_size = function
  | Raw (_, tg) -> Triplegroup.size_bytes tg
  | Joined_item (_, j) -> Joined.size_bytes j

let source_items side = function
  | Tgs { tgs; _ } -> List.map (fun tg -> Raw (side, tg)) tgs
  | Pre js -> List.map (fun j -> Joined_item (side, j)) js

(* Refine (map-side group filter) and lift an item to a joined
   triplegroup. *)
let lift left right = function
  | Raw (side, tg) -> (
    let refine, star =
      match side, left, right with
      | L, Tgs { refine; star; _ }, _ -> (refine, star)
      | R, _, Tgs { refine; star; _ } -> (refine, star)
      | L, Pre _, _ | R, _, Pre _ -> assert false
    in
    match refine tg with
    | Some tg' -> Some (side, Joined.of_tg star tg')
    | None -> None)
  | Joined_item (side, j) -> Some (side, j)

let join_cycle wf ~name ~left ~right ~left_key ~right_key ~keep =
  let input = source_items L left @ source_items R right in
  let spec : (item, Term.t, (side * Joined.t), Joined.t) Job.spec =
    {
      name;
      map =
        (fun item ->
          match lift left right item with
          | None -> []
          | Some (side, j) ->
            let key = match side with L -> left_key | R -> right_key in
            List.map (fun k -> (k, (side, j))) (Ops.key_values key j));
      combine = None;
      reduce =
        (fun _key tagged ->
          let lefts =
            List.filter_map (function L, j -> Some j | R, _ -> None) tagged
          in
          let rights =
            List.filter_map (function R, j -> Some j | L, _ -> None) tagged
          in
          List.concat_map
            (fun l ->
              List.filter_map
                (fun r ->
                  let combined = Joined.join l r in
                  if keep combined then Some combined else None)
                rights)
            lefts);
      input_size = item_size;
      key_size = (fun k -> String.length (Term.lexical k) + 2);
      value_size = (fun (_, j) -> Joined.size_bytes j + 1);
      output_size = Joined.size_bytes;
    }
  in
  Workflow.run_job wf spec input

type agj = {
  agj_id : int;
  stars : (int * Star.t) list;
  filters : Ast.expr list;
  group_by : Ast.var list;
  aggregates : Analytical.aggregate list;
  alpha : Joined.t -> bool;
}

let init_states agj =
  List.map
    (fun (a : Analytical.aggregate) -> Aggregate.init a.func ~distinct:a.distinct)
    agj.aggregates

let merge_states = List.map2 Aggregate.merge

(* One detail joined triplegroup's contribution to one Agg-Join: the
   grouping keys it binds, each with a partially-aggregated state list —
   the implicit n-split plus per-mapper hash aggregation of Algorithm 3. *)
let contributions agj joined =
  if not (agj.alpha joined) then []
  else
    let bindings = Tg_match.joined_bindings agj.stars joined in
    let bindings =
      List.filter
        (fun b -> List.for_all (Binding.eval_filter b) agj.filters)
        bindings
    in
    List.map
      (fun b ->
        let key = List.map (fun v -> Binding.lookup b v) agj.group_by in
        let states =
          List.map2
            (fun state (a : Analytical.aggregate) ->
              let v =
                match a.arg with
                | None -> Some (Term.int 1)
                | Some var -> Binding.lookup b var
              in
              Aggregate.add state v)
            (init_states agj) agj.aggregates
        in
        ((agj.agj_id, key), states))
      bindings

let key_size (_, key) =
  List.fold_left
    (fun acc c ->
      acc + match c with Some t -> String.length (Term.lexical t) + 2 | None -> 1)
    8 key

let agg_cycle wf ~name ~combiner ~input agjs =
  let by_id = List.map (fun agj -> (agj.agj_id, agj)) agjs in
  let spec : (Joined.t, (int * Term.t option list),
              Aggregate.state list,
              (int * Table.row)) Job.spec =
    {
      name;
      map = (fun joined -> List.concat_map (fun agj -> contributions agj joined) agjs);
      combine =
        (if combiner then
           Some
             (fun _key states ->
               match states with
               | [] -> []
               | first :: rest -> [ List.fold_left merge_states first rest ])
         else None);
      reduce =
        (fun (id, key) states ->
          match states with
          | [] -> []
          | first :: rest ->
            let merged = List.fold_left merge_states first rest in
            [ (id, Array.of_list (key @ List.map Aggregate.finish merged)) ]);
      input_size = Joined.size_bytes;
      key_size;
      value_size =
        (fun states ->
          List.fold_left (fun acc s -> acc + Aggregate.size_bytes s) 0 states);
      output_size = (fun (_, row) -> Table.row_size_bytes row);
    }
  in
  (* Report the estimated per-task footprint of the Agg-Join's combiner
     hash table (one mapper's input share, the upper bound on live
     partial-aggregation state) so Plan_verify can warn on overcommit
     against the cluster's task heap. The metric keeps the maximum seen
     across cycles. *)
  (let ctx = Workflow.ctx wf in
   let cluster = Rapida_mapred.Exec_ctx.cluster ctx in
   let input_bytes =
     List.fold_left (fun acc j -> acc + Joined.size_bytes j) 0 input
   in
   let tasks = Job.estimate_map_tasks cluster ~input_bytes in
   let est = input_bytes / max 1 tasks in
   let m = Rapida_mapred.Exec_ctx.metrics ctx in
   let cur = Rapida_mapred.Metrics.get m "mem.agj_ht_bytes" in
   if est > cur then Rapida_mapred.Metrics.add m "mem.agj_ht_bytes" (est - cur));
  let tagged_rows = Workflow.run_job wf spec input in
  List.map
    (fun agj ->
      let rows =
        List.filter_map
          (fun (id, row) -> if id = agj.agj_id then Some row else None)
          tagged_rows
      in
      let schema =
        agj.group_by
        @ List.map (fun (a : Analytical.aggregate) -> a.out) agj.aggregates
      in
      Table.make ~name:(Printf.sprintf "agj%d" agj.agj_id) ~schema rows)
    (List.map snd by_id)
