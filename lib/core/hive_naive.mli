(** Hive (Naive) baseline: direct relational translation of the SPARQL
    analytical query over vertically partitioned tables, evaluating each
    graph pattern independently — the paper's first comparison point.

    Plan per subquery: one multiway same-key MR join per star (map-only
    when the VP tables are small), one MR join per join edge between
    stars, filters and projections pushed map-side, then one grouping
    cycle with map-side partial aggregation. Aggregated subquery results
    are finally joined with map-only cycles. *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Vp_store = Rapida_relational.Vp_store
module Stats = Rapida_mapred.Stats

val run :
  Rapida_mapred.Exec_ctx.t -> Vp_store.t -> Analytical.t ->
  (Table.t * Stats.t, string) result
