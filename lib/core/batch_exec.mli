(** Cross-query multi-query optimization: the batch executor behind the
    query server.

    Where the engines apply the paper's Defs 3.1/3.2 overlap machinery
    {e within} one analytical query (its subquery patterns), this module
    applies the same machinery {e across} concurrent queries: the
    subqueries of every query in an admission batch are pooled, greedily
    grouped by composite-pattern overlap ({!Composite.build} on the
    pooled subquery list), and each overlapping group is evaluated as
    {e one} shared composite plan — one scan plus one Agg-Join cycle (or,
    Hive-style, one materialized composite with per-pattern extraction)
    feeding every member query's result channel, closed by a map-only
    demux job priced in the MR cost model.

    Sharing applies to the MQO-capable engine kinds ([Hive_mqo] and
    [Rapid_analytics]); the naive baselines ([Hive_naive], [Rapid_plus])
    evaluate every query solo, exactly as they do intra-query — that
    contrast is the server's headline experiment. Either way, every
    member's result table is identical to its solo {!Engine.execute}
    run (the server test suite's 20-seed × 4-engine property). *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx

(** One query of a batch, carried through grouping. [m_subqueries] are
    the query's subqueries renumbered into the group's merged, pooled
    numbering (contiguous [sq_id]s). *)
type member = {
  m_index : int;  (** position in the batch, preserved through grouping *)
  m_query : Analytical.t;
  m_subqueries : Analytical.subquery list;
}

(** A set of batch members proved mutually overlapping. [g_composite]
    is the composite pattern over the pooled subqueries; [None] marks a
    singleton group whose own subqueries do not overlap (the member's
    engine falls back internally, as it does solo). Invariant: a group
    with two or more members always carries a composite. *)
type group = {
  g_members : member list;  (** in batch order *)
  g_composite : Composite.t option;
}

(** [shares kind] holds when the engine kind can evaluate a shared
    composite across queries. *)
val shares : Engine.kind -> bool

(** [group_queries kind queries] partitions a batch into overlap groups,
    greedily and first-fit: each query joins the first existing group
    whose pooled subqueries still build a composite with the query's
    subqueries added, else opens a new group. For non-sharing kinds
    every query is its own group. Order within groups and across first
    members follows batch order. *)
val group_queries : Engine.kind -> Analytical.t list -> group list

(** Result of one group execution: per-member outcomes in batch-member
    order, plus the statistics of every simulated job the group ran —
    one shared workflow for a shared group, the member's own workflow
    for a singleton. *)
type result = {
  outputs : (Table.t, Engine.error) Stdlib.result list;
  stats : Stats.t;
}

(** [run_group session ctx group] executes one group against the
    session's engine: singleton groups via plain {!Engine.execute},
    multi-member groups via the shared composite plan (shared scan and
    joins, per-member aggregation channels, one demux cycle). Honors
    {!Exec_ctx.verify_plans} by re-verifying every member query with the
    session's verifier, exactly as {!Engine.execute} does. *)
val run_group : Engine.session -> Exec_ctx.t -> group -> result
