(** Shared physical-plan building blocks for the engines.

    Scans translate triple patterns to variable-named columns so that all
    later joins are natural joins; the star-join helpers implement Hive's
    multiway same-key join (all triple patterns of a star join on the
    subject in one MR cycle, map-only when the broadcast tables fit the
    map-join threshold). *)

module Ast = Rapida_sparql.Ast
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Vp_store = Rapida_relational.Vp_store
module Workflow = Rapida_mapred.Workflow
module Exec_ctx = Rapida_mapred.Exec_ctx

type options = {
  cluster : Rapida_mapred.Cluster.t;
  map_join_threshold : int;
      (** a join input below this many bytes is broadcast (Hive map-join) *)
  hive_compression : float;
      (** on-disk size ratio of the Hive engines' ORC-format tables
          (paper §5.1: ~80-96% reduction); the NTGA engines read plain
          text triplegroups at ratio 1.0. Fewer stored bytes also means
          fewer map tasks — the reduced-parallelism effect the paper
          observes for ORC at scale. *)
  ntga_combiner : bool;
      (** ablation: hash-based per-mapper partial aggregation in the
          Agg-Join cycles (Algorithm 3's multiAggMap). Disable to measure
          its shuffle savings. *)
  ntga_filter_pushdown : bool;
      (** ablation: evaluate star-local FILTERs during the map-side group
          filter instead of at aggregation time. *)
  faults : Rapida_mapred.Fault_injector.config;
      (** fault-injection knobs (seed, crash/straggler probabilities,
          retry policy); the all-zero {!Rapida_mapred.Fault_injector.default}
          leaves the cost model untouched. *)
  checkpoint : Rapida_mapred.Checkpoint.config;
      (** workflow checkpoint/recovery policy; the default
          ({!Rapida_mapred.Checkpoint.default}, [Never]) leaves the cost
          model untouched and reserves {!Workflow.Aborted} behaviour. *)
  verify_plans : bool;
      (** debug mode: after every engine run, re-check the optimizer
          invariants and result schema with the registered static plan
          verifier (see {!Engine.set_default_verifier}). Pure and
          out-of-band — cost-model outputs are unchanged. *)
  analyze : bool;
      (** request the static cardinality analysis report alongside
          execution (the [query --analyze] hook; see
          {!Rapida_mapred.Exec_ctx.analyze}). Off by default; engines
          never read it, so outputs are byte-identical either way. *)
  optimize : bool;
      (** arm the cost-based planner ([Rapida_planner]): engines consult
          [join_orders] for enumerated star-join orders. Off by default;
          with it off (and [join_orders] empty) plans are byte-identical
          to the heuristic pre-optimizer behavior. *)
  join_orders : (int * int list) list;
      (** optimizer-chosen star-id join orders, keyed by subquery id
          (reserved key [-1]: the composite MQO plan's [cs_id] order).
          Produced by [Rapida_planner.plan]; see
          {!Rapida_mapred.Exec_ctx.join_order}. *)
}

val default_options : options

(** [make ()] is {!default_options}; each argument overrides one field.
    [?base] picks the record the unspecified fields come from, so option
    fields can be added later without breaking any caller — construct
    options with [make], never with a record literal. *)
val make :
  ?base:options ->
  ?cluster:Rapida_mapred.Cluster.t ->
  ?map_join_threshold:int ->
  ?hive_compression:float ->
  ?ntga_combiner:bool ->
  ?ntga_filter_pushdown:bool ->
  ?faults:Rapida_mapred.Fault_injector.config ->
  ?checkpoint:Rapida_mapred.Checkpoint.config ->
  ?verify_plans:bool ->
  ?analyze:bool ->
  ?optimize:bool ->
  ?join_orders:(int * int list) list ->
  unit -> options

(** [degrade_options base] is [base] with the map-join threshold raised
    to [max_int]: every star join broadcasts, so plans come out cheaper
    (fewer MR cycles) with lower latency variance, at the price of
    skipping the cost-based shuffle/broadcast decision. Answers are
    unchanged — this is the query server's cheap-heuristic-plan rung of
    the degradation ladder. Optimizer hints are dropped too
    ([optimize = false], [join_orders = []]): degraded execution is the
    misestimate-defense fallback and must use the heuristic order. *)
val degrade_options : options -> options

(** [context options] is a fresh execution context (empty trace and
    counters) configured with [options]. Create one per query run. *)
val context : options -> Exec_ctx.t

(** [hive_ctx ctx] prices jobs with the Hive engines' storage compression
    applied to the cluster, sharing [ctx]'s planner, trace, and
    counters. *)
val hive_ctx : Exec_ctx.t -> Exec_ctx.t

(** [tp_table vp tp] scans the VP partition of a triple pattern into a
    table whose columns are named by the pattern's variables. Constant
    objects are filtered out and dropped; rdf:type patterns read the
    per-class partition. @raise Invalid_argument on unbound properties. *)
val tp_table : Vp_store.t -> Ast.triple_pattern -> Table.t

(** [ctp_table vp ~subject_var ctp] scans a composite triple pattern,
    always keeping an object column (constant objects become a filtered
    witness column) — the form the MQO rewriting needs. *)
val ctp_table : Vp_store.t -> subject_var:Ast.var -> Composite.ctp -> Table.t

(** [star_join wf ~name ~required ~optional] joins tables sharing
    their subject column in one MR cycle (Hive merges same-key joins):
    inner on [required], left-outer on [optional]. Becomes a map-only
    cycle when every table but the largest required one fits the map-join
    threshold of the workflow's context {e and} the combined build side
    fits the cluster's per-task heap — otherwise it degrades to the
    reduce-side form (counted in the [mem.mapjoin_fallbacks] metric). A
    single required table with no optionals is returned as-is (a scan is
    not a join). *)
val star_join :
  Workflow.t -> name:string -> required:Table.t list ->
  optional:Table.t list -> Table.t

(** [pair_join wf ~name a b] is a natural join as one MR cycle,
    map-only when one side fits both the threshold and the per-task
    heap; a side that fits the threshold but not the heap falls back to
    a repartition join (counted in [mem.mapjoin_fallbacks]). *)
val pair_join : Workflow.t -> name:string -> Table.t -> Table.t -> Table.t

(** [apply_ready_filters table filters] applies (map-side, no cycle) every
    filter whose variables are all present as columns; returns the
    filtered table and the filters still pending. *)
val apply_ready_filters :
  Table.t -> Ast.expr list -> Table.t * Ast.expr list

(** [project_needed table keep] projects to the columns of [keep] that
    exist in [table], preserving [table]'s column order. *)
val project_needed : Table.t -> Ast.var list -> Table.t

(** [agg_specs sq] translates a subquery's aggregates for the relational
    group-by. *)
val agg_specs : Analytical.subquery -> Rapida_relational.Relops.agg_spec list

(** [ensure_total_row sq table] adds the default all-empty-aggregates row
    for a GROUP BY ALL subquery whose input was empty. *)
val ensure_total_row : Analytical.subquery -> Table.t -> Table.t

(** [apply_having sq table] filters the aggregated groups with the
    subquery's HAVING clauses (map-side, no extra cycle). *)
val apply_having : Analytical.subquery -> Table.t -> Table.t

(** [finish_subquery sq table] is {!ensure_total_row} then
    {!apply_having} — the post-aggregation finish every engine applies. *)
val finish_subquery : Analytical.subquery -> Table.t -> Table.t

(** [final_join wf q tables] joins the per-subquery result tables
    (map-only cycles, as the aggregated results are small — unless one
    overflows the per-task heap, which degrades that step to a
    repartition cycle) and applies the outer projection. Single-table
    queries skip the join. *)
val final_join : Workflow.t -> Analytical.t -> Table.t list -> Table.t

(** [push_star_filters star filters] splits [filters] into those
    evaluable during the map-side group filter of [star] —
    single-variable filters over the star's subject or an object
    variable — and the rest. Returns a triple-level refinement (drop
    failing object triples, or the whole triplegroup when the subject
    fails), the pushed filters, and the pending ones. *)
val push_star_filters :
  Rapida_sparql.Star.t -> Ast.expr list ->
  (Rapida_ntga.Triplegroup.t -> Rapida_ntga.Triplegroup.t option)
  * Ast.expr list * Ast.expr list
