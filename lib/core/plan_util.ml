open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Binding = Rapida_sparql.Binding
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Mr_relops = Rapida_relational.Mr_relops
module Vp_store = Rapida_relational.Vp_store
module Workflow = Rapida_mapred.Workflow
module Job = Rapida_mapred.Job
module Exec_ctx = Rapida_mapred.Exec_ctx

type options = {
  cluster : Rapida_mapred.Cluster.t;
  map_join_threshold : int;
  hive_compression : float;
  ntga_combiner : bool;
  ntga_filter_pushdown : bool;
  faults : Rapida_mapred.Fault_injector.config;
  checkpoint : Rapida_mapred.Checkpoint.config;
  verify_plans : bool;
  analyze : bool;
  optimize : bool;
  join_orders : (int * int list) list;
}

let default_options =
  {
    cluster = Rapida_mapred.Cluster.default;
    map_join_threshold = 64 * 1024;
    hive_compression = 0.06;
    ntga_combiner = true;
    ntga_filter_pushdown = true;
    faults = Rapida_mapred.Fault_injector.default;
    checkpoint = Rapida_mapred.Checkpoint.default;
    verify_plans = false;
    analyze = false;
    optimize = false;
    join_orders = [];
  }

let make ?(base = default_options) ?cluster ?map_join_threshold
    ?hive_compression ?ntga_combiner ?ntga_filter_pushdown ?faults
    ?checkpoint ?verify_plans ?analyze ?optimize ?join_orders () =
  {
    cluster = Option.value ~default:base.cluster cluster;
    map_join_threshold =
      Option.value ~default:base.map_join_threshold map_join_threshold;
    hive_compression =
      Option.value ~default:base.hive_compression hive_compression;
    ntga_combiner = Option.value ~default:base.ntga_combiner ntga_combiner;
    ntga_filter_pushdown =
      Option.value ~default:base.ntga_filter_pushdown ntga_filter_pushdown;
    faults = Option.value ~default:base.faults faults;
    checkpoint = Option.value ~default:base.checkpoint checkpoint;
    verify_plans = Option.value ~default:base.verify_plans verify_plans;
    analyze = Option.value ~default:base.analyze analyze;
    optimize = Option.value ~default:base.optimize optimize;
    join_orders = Option.value ~default:base.join_orders join_orders;
  }

(* Broadcast-everything heuristic: with the map-join threshold at
   max_int every star join is planned map-only, skipping planning-time
   cost comparisons and shuffle cycles. Answers are unchanged (the
   ablation identity properties cover the threshold), only cheaper and
   lower-variance — the overloaded server's last ladder rung. *)
let degrade_options base =
  (* Degraded plans also drop any optimizer hints: the heuristic
     (pre-optimizer) order is the misestimate-defense fallback, so
     degradation must land exactly there. *)
  { base with map_join_threshold = max_int; optimize = false; join_orders = [] }

let context options =
  Exec_ctx.create ~cluster:options.cluster
    ~planner:
      {
        Exec_ctx.map_join_threshold = options.map_join_threshold;
        hive_compression = options.hive_compression;
        ntga_combiner = options.ntga_combiner;
        ntga_filter_pushdown = options.ntga_filter_pushdown;
      }
    ~faults:(Rapida_mapred.Fault_injector.create options.faults)
    ~checkpoint:options.checkpoint ~verify_plans:options.verify_plans
    ~analyze:options.analyze ~optimize:options.optimize
    ~join_orders:options.join_orders ()

let hive_ctx ctx =
  Exec_ctx.with_cluster ctx
    {
      (Exec_ctx.cluster ctx) with
      Rapida_mapred.Cluster.compression_ratio =
        (Exec_ctx.planner ctx).Exec_ctx.hive_compression;
    }

(* The planner options a workflow's jobs were configured with. *)
let planner_of wf = Exec_ctx.planner (Workflow.ctx wf)

(* --- Memory-aware broadcast decisions ----------------------------------- *)

(* A build side broadcasts only when it also fits the per-task container
   heap: a map-join whose hash table overflows the heap would OOM every
   mapper, so the planner degrades to a repartition join instead — an
   extra full MR cycle, priced honestly (Hive's
   hive.mapjoin.localtask.max.memory safety fallback). *)
let task_heap_bytes wf =
  (Exec_ctx.cluster (Workflow.ctx wf)).Rapida_mapred.Cluster.task_heap_bytes

let note_mapjoin_fallback wf =
  Rapida_mapred.Metrics.add
    (Exec_ctx.metrics (Workflow.ctx wf))
    "mem.mapjoin_fallbacks" 1

let var_name = function
  | Ast.Nvar v -> v
  | Ast.Nterm t ->
    invalid_arg (Fmt.str "expected variable, got %a" Term.pp t)

(* An unbound-property pattern scans the union of every partition as a
   three-column (s, p, o) relation, then applies the pattern's constant
   constraints. *)
let unbound_tp_table vp (tp : Ast.triple_pattern) =
  let rows =
    List.concat_map
      (fun (term, t) ->
        let is_type_partition =
          String.length t.Table.name >= 5 && String.sub t.Table.name 0 5 = "type_"
        in
        if is_type_partition then
          List.map
            (fun row -> [| row.(0); Some Namespace.rdf_type; Some term |])
            t.Table.rows
        else
          List.map (fun row -> [| row.(0); Some term; row.(1) |]) t.Table.rows)
      (Vp_store.partitions vp)
  in
  let t = Table.make ~name:"vp_all" ~schema:[ "!s"; "!p"; "!o" ] rows in
  (* Constrain and name each position. *)
  let constraints, renames, keep =
    List.fold_left
      (fun (cs, rs, keep) (col, node) ->
        match node with
        | Ast.Nvar v -> (cs, (col, v) :: rs, col :: keep)
        | Ast.Nterm c -> ((col, c) :: cs, rs, keep))
      ([], [], [])
      [ ("!o", tp.tp_o); ("!p", tp.tp_p); ("!s", tp.tp_s) ]
  in
  let t =
    Relops.filter
      (fun tbl row ->
        List.for_all
          (fun (col, c) ->
            match row.(Table.col_index tbl col) with
            | Some v -> Term.equal v c
            | None -> false)
          constraints)
      t
  in
  Relops.rename_cols (Relops.project t keep) renames

let tp_table vp (tp : Ast.triple_pattern) =
  match tp.tp_p with
  | Ast.Nvar _ -> unbound_tp_table vp tp
  | Ast.Nterm prop ->
  if Term.equal prop Namespace.rdf_type then
    match tp.tp_o with
    | Ast.Nterm cls ->
      let t = Vp_store.type_table vp cls in
      Relops.rename_cols t [ ("s", var_name tp.tp_s) ]
    | Ast.Nvar v ->
      (* rdf:type with a variable object: union the per-class partitions. *)
      let rows =
        List.concat_map
          (fun (cls, t) ->
            if String.length t.Table.name >= 5
               && String.sub t.Table.name 0 5 = "type_"
            then
              List.map
                (fun row -> [| row.(0); Some cls |])
                t.Table.rows
            else [])
          (Vp_store.partitions vp)
      in
      Table.make ~name:"vp_type" ~schema:[ var_name tp.tp_s; v ] rows
  else
    let t = Vp_store.property_table vp prop in
    match tp.tp_o with
    | Ast.Nvar v ->
      Relops.rename_cols t [ ("s", var_name tp.tp_s); ("o", v) ]
    | Ast.Nterm c ->
      let filtered =
        Relops.filter
          (fun tbl row ->
            match row.(Table.col_index tbl "o") with
            | Some o -> Term.equal o c
            | None -> false)
          t
      in
      Relops.project
        (Relops.rename_cols filtered [ ("s", var_name tp.tp_s) ])
        [ var_name tp.tp_s ]

let ctp_table vp ~subject_var (ctp : Composite.ctp) =
  if Term.equal ctp.prop Namespace.rdf_type then
    match ctp.obj_const with
    | Some cls ->
      let t = Vp_store.type_table vp cls in
      let rows = List.map (fun row -> [| row.(0); Some cls |]) t.Table.rows in
      Table.make ~name:t.Table.name ~schema:[ subject_var; ctp.obj_var ] rows
    | None ->
      let rows =
        List.concat_map
          (fun (cls, t) ->
            if String.length t.Table.name >= 5
               && String.sub t.Table.name 0 5 = "type_"
            then List.map (fun row -> [| row.(0); Some cls |]) t.Table.rows
            else [])
          (Vp_store.partitions vp)
      in
      Table.make ~name:"vp_type" ~schema:[ subject_var; ctp.obj_var ] rows
  else
    let t = Vp_store.property_table vp ctp.prop in
    let t =
      match ctp.obj_const with
      | None -> t
      | Some c ->
        Relops.filter
          (fun tbl row ->
            match row.(Table.col_index tbl "o") with
            | Some o -> Term.equal o c
            | None -> false)
          t
    in
    Relops.rename_cols t [ ("s", subject_var); ("o", ctp.obj_var) ]

(* --- Multiway same-key star join --------------------------------------- *)

(* All tables share exactly one column: the star's subject variable. *)
let star_subject_col required =
  match required with
  | t :: _ -> List.hd t.Table.schema
  | [] -> invalid_arg "star_join: no required tables"

let star_schema subject required optional =
  let non_subject t =
    List.filter (fun c -> not (String.equal c subject)) t.Table.schema
  in
  subject :: List.concat_map non_subject (required @ optional)

(* Merge one row per table (optional tables may miss) into the star
   schema. *)
let merge_star_row subject required optional per_table =
  let cells = ref [] in
  List.iteri
    (fun i t ->
      let row = List.nth per_table i in
      List.iteri
        (fun ci col ->
          if not (String.equal col subject) then
            cells :=
              (match row with
              | Some r -> r.(ci)
              | None -> None)
              :: !cells)
        t.Table.schema)
    (required @ optional);
  !cells

let star_join_rows subject required optional key groups =
  (* [groups.(i)] = rows of table i for this subject key. *)
  let n_req = List.length required in
  let req_groups = Array.sub groups 0 n_req in
  if Array.exists (fun g -> g = []) req_groups then []
  else
    (* Cartesian product across tables; optional tables with no rows
       contribute a single NULL row. *)
    let slots =
      Array.to_list
        (Array.mapi
           (fun i g ->
             if i < n_req then List.map (fun r -> Some r) g
             else if g = [] then [ None ]
             else List.map (fun r -> Some r) g)
           groups)
    in
    let combos =
      List.fold_left
        (fun acc slot ->
          List.concat_map (fun prefix -> List.map (fun r -> prefix @ [ r ]) slot) acc)
        [ [] ] slots
    in
    List.map
      (fun per_table ->
        let tail = merge_star_row subject required optional per_table in
        Array.of_list (Some key :: List.rev tail))
      combos

let star_join_mr wf ~name ~required ~optional =
  let subject = star_subject_col required in
  let all = required @ optional in
  let tagged =
    List.concat
      (List.mapi
         (fun i t -> List.map (fun row -> (i, t, row)) t.Table.rows)
         all)
  in
  let n = List.length all in
  let spec : ((int * Table.t * Table.row), Term.t, (int * Table.row),
              Table.row) Job.spec =
    {
      name;
      map =
        (fun (i, t, row) ->
          match row.(Table.col_index t subject) with
          | Some key -> [ (key, (i, row)) ]
          | None -> []);
      combine = None;
      reduce =
        (fun key tagged ->
          let groups = Array.make n [] in
          List.iter (fun (i, row) -> groups.(i) <- row :: groups.(i)) tagged;
          Array.iteri (fun i g -> groups.(i) <- List.rev g) groups;
          star_join_rows subject required optional key groups);
      input_size = (fun (_, _, row) -> Table.row_size_bytes row);
      key_size = (fun key -> String.length (Term.lexical key) + 2);
      value_size = (fun (_, row) -> Table.row_size_bytes row + 1);
      output_size = Table.row_size_bytes;
    }
  in
  let rows = Workflow.run_job wf spec tagged in
  Table.make ~name ~schema:(star_schema subject required optional) rows

let star_join_map_only wf ~name ~required ~optional ~stream_index =
  let subject = star_subject_col required in
  let all = required @ optional in
  let n = List.length all in
  let stream = List.nth all stream_index in
  (* Hash every non-streamed table by subject. *)
  let indexes =
    List.mapi
      (fun i t ->
        if i = stream_index then None
        else begin
          let tbl = Hashtbl.create (max 16 (Table.cardinality t)) in
          List.iter
            (fun row ->
              match row.(Table.col_index t subject) with
              | Some key ->
                let existing =
                  Option.value ~default:[] (Hashtbl.find_opt tbl key)
                in
                Hashtbl.replace tbl key (row :: existing)
              | None -> ())
            t.Table.rows;
          Some tbl
        end)
      all
  in
  let spec : (Table.row, Table.row) Job.map_only_spec =
    {
      mo_name = name;
      mo_map =
        (fun row ->
          match row.(Table.col_index stream subject) with
          | None -> []
          | Some key ->
            let groups = Array.make n [] in
            List.iteri
              (fun i idx ->
                groups.(i) <-
                  (match idx with
                  | None -> [ row ]
                  | Some tbl ->
                    Option.value ~default:[] (Hashtbl.find_opt tbl key)
                    |> List.rev))
              indexes;
            star_join_rows subject required optional key groups);
      mo_input_size = Table.row_size_bytes;
      mo_output_size = Table.row_size_bytes;
    }
  in
  let rows = Workflow.run_map_only wf spec stream.Table.rows in
  Table.make ~name ~schema:(star_schema subject required optional) rows

let star_join wf ~name ~required ~optional =
  match required, optional with
  | [ only ], [] -> only
  | _ ->
    let all = required @ optional in
    let sizes = List.map Table.size_bytes all in
    let max_size = List.fold_left max 0 sizes in
    let small_enough =
      List.length
        (List.filter
           (fun s -> s < (planner_of wf).Exec_ctx.map_join_threshold)
           sizes)
      >= List.length all - 1
    in
    (* The streamed table must be required (outer-joining a streamed
       optional table cannot preserve required semantics map-side). *)
    let stream_index =
      let rec find i = function
        | [] -> None
        | s :: rest -> if s = max_size then Some i else find (i + 1) rest
      in
      find 0 sizes
    in
    (match stream_index with
    | Some i when small_enough && i < List.length required ->
      (* The map-only form hashes every non-streamed table; that build
         side must also fit the task heap or each mapper would OOM. *)
      let build_bytes = List.fold_left ( + ) 0 sizes - max_size in
      if build_bytes < task_heap_bytes wf then
        star_join_map_only wf ~name ~required ~optional ~stream_index:i
      else begin
        note_mapjoin_fallback wf;
        star_join_mr wf ~name ~required ~optional
      end
    | _ -> star_join_mr wf ~name ~required ~optional)

let pair_join wf ~name a b =
  let threshold = (planner_of wf).Exec_ctx.map_join_threshold in
  let heap = task_heap_bytes wf in
  let sa = Table.size_bytes a and sb = Table.size_bytes b in
  let broadcastable s = s < threshold && s < heap in
  if broadcastable sb then Mr_relops.map_join wf ~name ~big:a ~small:b ()
  else if broadcastable sa then Mr_relops.map_join wf ~name ~big:b ~small:a ()
  else begin
    if min sa sb < threshold then note_mapjoin_fallback wf;
    Mr_relops.repartition_join wf ~name a b
  end

(* --- Filters and projections ------------------------------------------- *)

let row_binding t row =
  List.fold_left
    (fun (b, i) col ->
      let b =
        match row.(i) with Some v -> Binding.bind b col v | None -> b
      in
      (b, i + 1))
    (Binding.empty, 0) t.Table.schema
  |> fst

let apply_ready_filters table filters =
  let ready, pending =
    List.partition
      (fun e ->
        List.for_all (fun v -> Table.mem_col table v) (Ast.expr_vars e))
      filters
  in
  match ready with
  | [] -> (table, pending)
  | _ ->
    let table =
      Relops.filter
        (fun t row ->
          let b = row_binding t row in
          List.for_all (Binding.eval_filter b) ready)
        table
    in
    (table, pending)

let project_needed table keep =
  let cols =
    List.filter (fun c -> List.mem c keep) table.Table.schema
  in
  if List.length cols = List.length table.Table.schema then table
  else Relops.project table cols

let agg_specs (sq : Analytical.subquery) =
  List.map
    (fun (a : Analytical.aggregate) ->
      { Relops.func = a.func; distinct = a.distinct; col = a.arg; out = a.out })
    sq.aggregates

let ensure_total_row (sq : Analytical.subquery) table =
  if sq.group_by = [] && table.Table.rows = [] then
    let row =
      Array.of_list
        (List.map
           (fun (a : Analytical.aggregate) ->
             Rapida_sparql.Aggregate.(finish (init a.func ~distinct:a.distinct)))
           sq.aggregates)
    in
    { table with Table.rows = [ row ] }
  else table

(* HAVING: filter the aggregated groups (map-side, no extra cycle). *)
let apply_having (sq : Analytical.subquery) table =
  match sq.Analytical.having with
  | [] -> table
  | having ->
    Relops.filter
      (fun t row ->
        let b = row_binding t row in
        List.for_all (Binding.eval_filter b) having)
      table

(* The post-aggregation finish of one subquery: default grand-total row,
   then HAVING. *)
let finish_subquery sq table =
  apply_having sq (ensure_total_row sq table)

let final_join wf (q : Analytical.t) tables =
  let finish t =
    Relops.project_exprs ~name:"result" q.outer_projection t
    |> Relops.order_limit ~order_by:q.Analytical.order_by
         ~limit:q.Analytical.limit
  in
  match tables with
  | [] -> invalid_arg "final_join: no subquery results"
  | [ only ] -> finish only
  | first :: rest ->
    let heap = task_heap_bytes wf in
    let joined =
      List.fold_left
        (fun acc t ->
          (* Aggregated results are normally tiny, but the heap guard
             still applies: an over-budget build side degrades to a
             repartition cycle rather than OOM-ing the mappers. *)
          if Table.size_bytes t < heap then
            Mr_relops.map_join wf ~name:"join_aggregates" ~big:acc ~small:t ()
          else begin
            note_mapjoin_fallback wf;
            Mr_relops.repartition_join wf ~name:"join_aggregates" acc t
          end)
        first rest
    in
    finish joined

(* --- NTGA star-local filter pushdown ----------------------------------- *)

(* A filter over exactly one variable, bound as the object of a star's
   triple pattern, can be evaluated triple-by-triple during the map-side
   group filter: triples whose object fails the predicate are dropped
   before the join (the paper pushes identical filters into the scan
   phase). Filters over the star's subject drop the whole triplegroup. *)
let push_star_filters (star : Rapida_sparql.Star.t) filters =
  let subject_var =
    match star.Rapida_sparql.Star.subject with
    | Ast.Nvar v -> Some v
    | Ast.Nterm _ -> None
  in
  let object_props v =
    List.filter_map
      (fun (tp : Ast.triple_pattern) ->
        match tp.tp_p, tp.tp_o with
        | Ast.Nterm p, Ast.Nvar v' when String.equal v v' -> Some p
        | _ -> None)
      star.Rapida_sparql.Star.patterns
  in
  let pushed, pending =
    List.partition
      (fun e ->
        match Ast.expr_vars e with
        | [ v ] -> subject_var = Some v || object_props v <> []
        | _ -> false)
      filters
  in
  let refine (tg : Rapida_ntga.Triplegroup.t) =
    List.fold_left
      (fun tg_opt e ->
        match tg_opt with
        | None -> None
        | Some (tg : Rapida_ntga.Triplegroup.t) -> (
          match Ast.expr_vars e with
          | [ v ] when subject_var = Some v ->
            let b =
              Rapida_sparql.Binding.bind Rapida_sparql.Binding.empty v
                tg.Rapida_ntga.Triplegroup.subject
            in
            if Rapida_sparql.Binding.eval_filter b e then Some tg else None
          | [ v ] ->
            let props = object_props v in
            let triples =
              List.filter
                (fun (t : Rapida_rdf.Triple.t) ->
                  if List.exists (Term.equal t.p) props then
                    let b =
                      Rapida_sparql.Binding.bind Rapida_sparql.Binding.empty v
                        t.o
                    in
                    Rapida_sparql.Binding.eval_filter b e
                  else true)
                tg.Rapida_ntga.Triplegroup.triples
            in
            Some { tg with Rapida_ntga.Triplegroup.triples }
          | _ -> Some tg))
      (Some tg) pushed
  in
  (refine, pushed, pending)
