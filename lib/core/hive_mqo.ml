module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Mr_relops = Rapida_relational.Mr_relops
module Vp_store = Rapida_relational.Vp_store
module Workflow = Rapida_mapred.Workflow
module Stats = Rapida_mapred.Stats

let all_ids (composite : Composite.t) =
  List.map (fun (p : Composite.pattern_info) -> p.pat_id) composite.patterns

let is_prim composite (c : Composite.ctp) =
  List.for_all (fun id -> List.mem id c.owners) (all_ids composite)

(* One composite star, assembled in one multiway MR cycle: inner joins on
   the shared triples, left outer joins on the pattern-specific ones. *)
let star_table wf vp composite (star : Composite.star) =
  let required, optional =
    List.partition (is_prim composite) star.ctps
  in
  let scan = Plan_util.ctp_table vp ~subject_var:star.subject_var in
  Plan_util.star_join wf
    ~name:(Printf.sprintf "mqo_star%d" star.cs_id)
    ~required:(List.map scan required)
    ~optional:(List.map scan optional)

let eval_composite wf vp (composite : Composite.t) =
  let star_of id =
    List.find (fun (s : Composite.star) -> s.cs_id = id) composite.stars
  in
  match composite.stars with
  | [ only ] -> star_table wf vp composite only
  | _ -> (
    match
      Composite.join_plan
        ?star_order:
          (Rapida_mapred.Exec_ctx.join_order (Workflow.ctx wf) (-1))
        composite
    with
    | Error msg -> failwith msg
    | Ok [] -> failwith "composite pattern without join edges"
    | Ok (first :: rest) ->
      let seen = Hashtbl.create 8 in
      Hashtbl.add seen first.Star.left.star ();
      Hashtbl.add seen first.Star.right.star ();
      let init =
        Plan_util.pair_join wf ~name:"mqo_join0"
          (star_table wf vp composite (star_of first.Star.left.star))
          (star_table wf vp composite (star_of first.Star.right.star))
      in
      let acc, _ =
        List.fold_left
          (fun (acc, i) (e : Star.edge) ->
            let new_star =
              if Hashtbl.mem seen e.Star.left.star then e.right.star
              else e.left.star
            in
            Hashtbl.replace seen new_star ();
            let joined =
              Plan_util.pair_join wf
                ~name:(Printf.sprintf "mqo_join%d" i)
                acc
                (star_table wf vp composite (star_of new_star))
            in
            (joined, i + 1))
          (init, 1) rest
      in
      acc)

(* Columns whose non-NULL value witnesses that a pattern's own secondary
   triples matched. *)
let witness_cols composite (info : Composite.pattern_info) =
  List.concat_map
    (fun (star : Composite.star) ->
      List.filter_map
        (fun (c : Composite.ctp) ->
          if List.mem info.pat_id c.owners && not (is_prim composite c) then
            Some c.obj_var
          else None)
        star.ctps)
    composite.Composite.stars

let extract_and_aggregate wf composite q_opt (sq : Analytical.subquery)
    (info : Composite.pattern_info) =
  (* Map-side: keep rows where the pattern's secondary witnesses bound. *)
  let witnesses = witness_cols composite info in
  let filtered =
    Relops.filter
      (fun t row ->
        List.for_all
          (fun col -> row.(Table.col_index t col) <> None)
          witnesses)
      q_opt
  in
  (* One MR cycle: distinct bindings of the original pattern (the left
     outer joins duplicated them across other patterns' optional
     expansions). *)
  let distinct =
    Mr_relops.distinct_project wf
      ~name:(Printf.sprintf "mqo_extract%d" info.pat_id)
      ~cols:(Composite.pattern_columns composite info)
      filtered
  in
  (* Back to the pattern's own variable names, then filters (map-side) and
     one aggregation cycle. *)
  let renames =
    List.map (fun (v, cv) -> (cv, v)) info.var_map
  in
  let renamed = Relops.rename_cols distinct renames in
  let renamed, pending = Plan_util.apply_ready_filters renamed sq.filters in
  if pending <> [] then
    failwith "filter variables not bound by the graph pattern";
  Mr_relops.group_aggregate wf
    ~name:(Printf.sprintf "mqo_groupby%d" info.pat_id)
    ~keys:sq.group_by ~aggs:(Plan_util.agg_specs sq) renamed
  |> Plan_util.finish_subquery sq

let run_composite ctx vp (q : Analytical.t) composite =
  let wf = Workflow.create (Plan_util.hive_ctx ctx) in
  match
    let q_opt = eval_composite wf vp composite in
    let tables =
      List.map
        (fun (sq : Analytical.subquery) ->
          let info =
            List.find
              (fun (p : Composite.pattern_info) -> p.pat_id = sq.sq_id)
              composite.Composite.patterns
          in
          extract_and_aggregate wf composite q_opt sq info)
        q.subqueries
    in
    Plan_util.final_join wf q tables
  with
  | table -> Ok (table, Workflow.stats wf)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let run ctx vp (q : Analytical.t) =
  match Composite.build q.subqueries with
  | Ok composite -> run_composite ctx vp q composite
  | Error _ -> Hive_naive.run ctx vp q
