open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Ops = Rapida_ntga.Ops
module Joined = Rapida_ntga.Joined
module Triplegroup = Rapida_ntga.Triplegroup

type ctp = {
  prop : Term.t;
  obj_var : Ast.var;
  obj_const : Term.t option;
  owners : int list;
}

type star = {
  cs_id : int;
  subject_var : Ast.var;
  ctps : ctp list;
}

type alpha = (int * Ops.prop_req) list

type pattern_info = {
  pat_id : int;
  star_of : (int * int) list;
  alpha : alpha;
  var_map : (Ast.var * Ast.var) list;
}

type t = {
  stars : star list;
  edges : Star.edge list;
  patterns : pattern_info list;
}

let req_of ctp = { Ops.prop = ctp.prop; obj = ctp.obj_const }

(* --- Construction ------------------------------------------------------ *)

type builder_ctp = {
  mutable b_owners : int list;
  b_prop : Term.t;
  b_obj_var : Ast.var;
  b_obj_const : Term.t option;
}

type builder_star = {
  b_id : int;
  b_subject : Ast.var;
  mutable b_ctps : builder_ctp list;
}

exception Build_error of string

let subject_var_of (s : Star.t) =
  match s.subject with
  | Ast.Nvar v -> v
  | Ast.Nterm t ->
    raise (Build_error (Fmt.str "star rooted at constant %a" Term.pp t))

let bound_prop (tp : Ast.triple_pattern) =
  match tp.tp_p with
  | Ast.Nterm p -> p
  | Ast.Nvar v -> raise (Build_error (Printf.sprintf "unbound property ?%s" v))

(* Fresh-variable supply avoiding every name already used by any pattern
   or by the composite so far. *)
let make_fresh used =
  let counter = ref 0 in
  fun base ->
    let rec go candidate =
      if Hashtbl.mem used candidate then begin
        incr counter;
        go (Printf.sprintf "%s_c%d" base !counter)
      end
      else begin
        Hashtbl.add used candidate ();
        candidate
      end
    in
    go base

let init_star fresh pat_id (s : Star.t) =
  let b_ctps =
    List.map
      (fun (tp : Ast.triple_pattern) ->
        let prop = bound_prop tp in
        match tp.tp_o with
        | Ast.Nvar v ->
          { b_owners = [ pat_id ]; b_prop = prop; b_obj_var = v;
            b_obj_const = None }
        | Ast.Nterm c ->
          { b_owners = [ pat_id ]; b_prop = prop;
            b_obj_var = fresh ("w_" ^ string_of_int s.id);
            b_obj_const = Some c })
      s.patterns
  in
  { b_id = s.id; b_subject = subject_var_of s; b_ctps = b_ctps }

(* Fold one star of a later pattern into its matched composite star:
   claim compatible composite triples (same property, same object
   constraint shape) positionally, adding new secondary triples for the
   rest. Returns the variable mapping contributed. *)
let fold_star fresh pat_id (bstar : builder_star) (s : Star.t) =
  let claimed = Hashtbl.create 8 in
  let var_map = ref [ (subject_var_of s, bstar.b_subject) ] in
  List.iter
    (fun (tp : Ast.triple_pattern) ->
      let prop = bound_prop tp in
      let compatible c =
        Term.equal c.b_prop prop
        &&
        match tp.tp_o, c.b_obj_const with
        | Ast.Nterm o, Some k -> Term.equal o k
        | Ast.Nvar _, None -> true
        | Ast.Nterm _, None | Ast.Nvar _, Some _ -> false
      in
      let available =
        List.find_opt
          (fun c -> (not (Hashtbl.mem claimed c.b_obj_var)) && compatible c)
          bstar.b_ctps
      in
      match available with
      | Some c ->
        Hashtbl.add claimed c.b_obj_var ();
        c.b_owners <- pat_id :: c.b_owners;
        (match tp.tp_o with
        | Ast.Nvar v -> var_map := (v, c.b_obj_var) :: !var_map
        | Ast.Nterm _ -> ())
      | None ->
        let ctp =
          match tp.tp_o with
          | Ast.Nvar v ->
            let name = fresh v in
            var_map := (v, name) :: !var_map;
            { b_owners = [ pat_id ]; b_prop = prop; b_obj_var = name;
              b_obj_const = None }
          | Ast.Nterm o ->
            { b_owners = [ pat_id ]; b_prop = prop;
              b_obj_var = fresh ("w_" ^ string_of_int bstar.b_id);
              b_obj_const = Some o }
        in
        Hashtbl.add claimed ctp.b_obj_var ();
        bstar.b_ctps <- bstar.b_ctps @ [ ctp ])
    s.patterns;
  List.rev !var_map

let all_pattern_ids subqueries =
  List.map (fun (sq : Analytical.subquery) -> sq.sq_id) subqueries

let build subqueries =
  match subqueries with
  | [] -> Error "no subqueries"
  | (base : Analytical.subquery) :: rest -> (
    (* Every later pattern must overlap the first. *)
    let bad =
      List.filter_map
        (fun sq ->
          let report = Overlap.check base sq in
          if Overlap.overlaps report then None else Some (sq, report))
        rest
    in
    match bad with
    | (sq, report) :: _ ->
      Error
        (Fmt.str "patterns %d and %d do not overlap: %a" base.sq_id
           sq.Analytical.sq_id Overlap.pp_report report)
    | [] -> (
      try
        let used = Hashtbl.create 64 in
        List.iter
          (fun (sq : Analytical.subquery) ->
            List.iter
              (fun tp ->
                List.iter
                  (fun v -> Hashtbl.replace used v ())
                  (Ast.pattern_vars tp))
              sq.bgp)
          subqueries;
        let fresh = make_fresh used in
        let bstars = List.map (init_star fresh base.sq_id) base.stars in
        let base_info =
          {
            pat_id = base.sq_id;
            star_of = List.map (fun (s : Star.t) -> (s.id, s.id)) base.stars;
            alpha = [];
            var_map = [];
          }
        in
        let infos =
          List.map
            (fun (sq : Analytical.subquery) ->
              let report = Overlap.check base sq in
              let star_of =
                List.map (fun (b, o) -> (o, b)) report.Overlap.pairs
              in
              let var_map =
                List.concat_map
                  (fun (orig_id, cs_id) ->
                    let bstar = List.nth bstars cs_id in
                    let orig_star =
                      List.find
                        (fun (s : Star.t) -> s.id = orig_id)
                        sq.stars
                    in
                    fold_star fresh sq.sq_id bstar orig_star)
                  star_of
              in
              (sq.sq_id, star_of, var_map))
            rest
        in
        let all_ids = all_pattern_ids subqueries in
        let stars =
          List.map
            (fun b ->
              {
                cs_id = b.b_id;
                subject_var = b.b_subject;
                ctps =
                  List.map
                    (fun c ->
                      {
                        prop = c.b_prop;
                        obj_var = c.b_obj_var;
                        obj_const = c.b_obj_const;
                        owners = List.sort_uniq Int.compare c.b_owners;
                      })
                    b.b_ctps;
              })
            bstars
        in
        let alpha_of pat_id =
          List.concat_map
            (fun star ->
              List.filter_map
                (fun c ->
                  let prim =
                    List.for_all (fun id -> List.mem id c.owners) all_ids
                  in
                  if List.mem pat_id c.owners && not prim then
                    Some (star.cs_id, req_of c)
                  else None)
                star.ctps)
            stars
        in
        let patterns =
          { base_info with alpha = alpha_of base.sq_id }
          :: List.map
               (fun (pat_id, star_of, var_map) ->
                 { pat_id; star_of; alpha = alpha_of pat_id; var_map })
               infos
        in
        Ok { stars; edges = base.edges; patterns }
      with Build_error msg -> Error msg))

(* --- Accessors --------------------------------------------------------- *)

let all_pattern_ids_of t = List.map (fun p -> p.pat_id) t.patterns

let prim_reqs t star =
  let ids = all_pattern_ids_of t in
  List.filter_map
    (fun c ->
      if List.for_all (fun id -> List.mem id c.owners) ids then
        Some (req_of c)
      else None)
    star.ctps

let sec_reqs t star =
  let ids = all_pattern_ids_of t in
  List.filter_map
    (fun c ->
      if List.for_all (fun id -> List.mem id c.owners) ids then None
      else Some (req_of c))
    star.ctps

let req_present (tg : Triplegroup.t) (r : Ops.prop_req) =
  List.exists
    (fun (tr : Triple.t) ->
      Term.equal tr.p r.prop
      && match r.obj with None -> true | Some o -> Term.equal tr.o o)
    tg.triples

let alpha_holds alpha (joined : Joined.t) =
  List.for_all
    (fun (cs_id, r) ->
      match Joined.part joined cs_id with
      | Some tg -> req_present tg r
      | None -> false)
    alpha

let map_var info v =
  match List.assoc_opt v info.var_map with Some v' -> v' | None -> v

let rec map_expr info (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Evar v -> Ast.Evar (map_var info v)
  | Ast.Eterm _ -> e
  | Ast.Ebin (op, a, b) -> Ast.Ebin (op, map_expr info a, map_expr info b)
  | Ast.Enot a -> Ast.Enot (map_expr info a)
  | Ast.Eagg (f, arg, d) -> Ast.Eagg (f, Option.map (map_expr info) arg, d)
  | Ast.Eregex (a, p, fl) -> Ast.Eregex (map_expr info a, p, fl)

let pattern_columns t info =
  let cols = ref [] in
  let add v = if not (List.mem v !cols) then cols := v :: !cols in
  List.iter
    (fun star ->
      if List.exists (fun (_, cs) -> cs = star.cs_id) info.star_of then begin
        add star.subject_var;
        List.iter
          (fun c -> if List.mem info.pat_id c.owners then add c.obj_var)
          star.ctps
      end)
    t.stars;
  List.rev !cols

let heuristic_order_edges ~star_ids ~edges =
  match edges with
  | [] ->
    if List.length star_ids <= 1 then Ok []
    else Error "disconnected graph pattern (no join edges)"
  | first :: _ ->
    let joined = Hashtbl.create 8 in
    Hashtbl.add joined first.Star.left.star ();
    let remaining = ref edges in
    let plan = ref [] in
    let progress = ref true in
    while !remaining <> [] && !progress do
      progress := false;
      let next, rest =
        List.partition
          (fun (e : Star.edge) ->
            Hashtbl.mem joined e.left.star || Hashtbl.mem joined e.right.star)
          !remaining
      in
      match next with
      | [] -> ()
      | e :: others ->
        Hashtbl.replace joined e.Star.left.star ();
        Hashtbl.replace joined e.Star.right.star ();
        plan := e :: !plan;
        remaining := others @ rest;
        progress := true
    done;
    if !remaining <> [] then Error "disconnected graph pattern"
    else if Hashtbl.length joined <> List.length star_ids then
      Error "some stars participate in no join"
    else Ok (List.rev !plan)

(* Realize an explicit star visiting order as an edge plan: each next
   star must connect to the joined prefix through some edge. Any
   mismatch (not a permutation, unrealizable order, leftover edges)
   yields [None] so the caller falls back to the heuristic — a bad hint
   can never abort a query. *)
let guided_order_edges ~star_ids ~edges ~order =
  if List.sort compare order <> List.sort compare star_ids then None
  else
    match order with
    | [] | [ _ ] -> if edges = [] then Some [] else None
    | first :: rest ->
      let joined = Hashtbl.create 8 in
      Hashtbl.add joined first ();
      let remaining = ref edges in
      let plan = ref [] in
      let ok = ref true in
      List.iter
        (fun s ->
          if !ok then begin
            let rec pick acc = function
              | [] -> None
              | (e : Star.edge) :: tl ->
                if
                  (e.left.star = s && Hashtbl.mem joined e.right.star)
                  || (e.right.star = s && Hashtbl.mem joined e.left.star)
                then Some (e, List.rev_append acc tl)
                else pick (e :: acc) tl
            in
            match pick [] !remaining with
            | None -> ok := false
            | Some (e, rest') ->
              Hashtbl.replace joined s ();
              plan := e :: !plan;
              (* Edges now internal to the joined prefix ride along
                 immediately, mirroring the heuristic's behavior of
                 consuming every touching edge before growing further. *)
              let inner, outer =
                List.partition
                  (fun (e : Star.edge) ->
                    Hashtbl.mem joined e.left.star
                    && Hashtbl.mem joined e.right.star)
                  rest'
              in
              plan := List.rev_append inner !plan;
              remaining := outer
          end)
        rest;
      if !ok && !remaining = [] then Some (List.rev !plan) else None

let order_edges ~star_order ~star_ids ~edges =
  match star_order with
  | None -> heuristic_order_edges ~star_ids ~edges
  | Some order -> (
    match guided_order_edges ~star_ids ~edges ~order with
    | Some plan -> Ok plan
    | None -> heuristic_order_edges ~star_ids ~edges)

let join_plan ?star_order t =
  order_edges ~star_order
    ~star_ids:(List.map (fun s -> s.cs_id) t.stars)
    ~edges:t.edges

let pp_ctp ids ppf c =
  let secondary = not (List.for_all (fun id -> List.mem id c.owners) ids) in
  Fmt.pf ppf "%a%s%a%s" Term.pp c.prop
    (if secondary then "?" else "")
    (Fmt.option (fun ppf o -> Fmt.pf ppf "=%a" Term.pp o))
    c.obj_const
    (if secondary then
       Printf.sprintf "[%s]"
         (String.concat "," (List.map string_of_int c.owners))
     else "")

let pp ppf t =
  let ids = all_pattern_ids_of t in
  Fmt.pf ppf "@[<v>%a@ edges: %a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf s ->
         Fmt.pf ppf "Stp'%d(?%s): {%a}" s.cs_id s.subject_var
           (Fmt.list ~sep:Fmt.sp (pp_ctp ids))
           s.ctps))
    t.stars
    (Fmt.list ~sep:Fmt.semi Star.pp_edge)
    t.edges
