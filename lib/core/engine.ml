open Rapida_rdf
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Vp_store = Rapida_relational.Vp_store
module Tg_store = Rapida_ntga.Tg_store
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Trace = Rapida_mapred.Trace
module Workflow = Rapida_mapred.Workflow

type kind = Hive_naive | Hive_mqo | Rapid_plus | Rapid_analytics

let all_kinds = [ Hive_naive; Hive_mqo; Rapid_plus; Rapid_analytics ]

let kind_name = function
  | Hive_naive -> "hive-naive"
  | Hive_mqo -> "hive-mqo"
  | Rapid_plus -> "rapid-plus"
  | Rapid_analytics -> "rapid-analytics"

let kind_of_string = function
  | "hive-naive" | "hive" -> Some Hive_naive
  | "hive-mqo" | "mqo" -> Some Hive_mqo
  | "rapid-plus" | "rapid+" -> Some Rapid_plus
  | "rapid-analytics" | "ra" -> Some Rapid_analytics
  | _ -> None

type input = {
  graph : Graph.t;
  tg_store : Tg_store.t Lazy.t;
  vp : Vp_store.t Lazy.t;
}

let input_of_graph graph =
  {
    graph;
    tg_store = lazy (Tg_store.of_graph graph);
    vp = lazy (Vp_store.of_graph graph);
  }

let graph_of_input input = input.graph

type output = { table : Table.t; stats : Stats.t; trace : Trace.t }

(* Static plan verification is provided by the analysis library, which
   depends on this one; the registry indirection breaks the cycle. The
   default verifier accepts everything, so nothing changes until
   [Rapida_analysis.Plan_verify.install_engine_hook] runs. *)
let plan_verifier : (kind -> Analytical.t -> Table.t -> string list) ref =
  ref (fun _ _ _ -> [])

let set_plan_verifier f = plan_verifier := f

let run kind ctx input query =
  let result =
    (* A workflow that exhausts its whole-job retries surfaces as a
       structured error, never an escaping exception. *)
    try
      match kind with
      | Hive_naive -> Hive_naive.run ctx (Lazy.force input.vp) query
      | Hive_mqo -> Hive_mqo.run ctx (Lazy.force input.vp) query
      | Rapid_plus -> Rapid_plus.run ctx (Lazy.force input.tg_store) query
      | Rapid_analytics ->
        Rapid_analytics.run ctx (Lazy.force input.tg_store) query
    with Workflow.Aborted a -> Error (Fmt.str "%a" Workflow.pp_abort a)
  in
  Result.bind result (fun (table, stats) ->
      let output = { table; stats; trace = Exec_ctx.trace ctx } in
      if not (Exec_ctx.verify_plans ctx) then Ok output
      else
        (* Verification is pure and runs no simulated jobs, so the trace
           and counters — the cost-model outputs — are untouched. *)
        match !plan_verifier kind query table with
        | [] -> Ok output
        | problems ->
          Error
            (Fmt.str "plan verification failed (%s): %s" (kind_name kind)
               (String.concat "; " problems)))

let run_sparql kind ctx input src =
  Result.bind (Analytical.parse src) (run kind ctx input)

let run_with_options kind options input query =
  run kind (Plan_util.context options) input query

let run_sparql_with_options kind options input src =
  run_sparql kind (Plan_util.context options) input src
