open Rapida_rdf
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Vp_store = Rapida_relational.Vp_store
module Tg_store = Rapida_ntga.Tg_store
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Trace = Rapida_mapred.Trace
module Workflow = Rapida_mapred.Workflow

type kind = Hive_naive | Hive_mqo | Rapid_plus | Rapid_analytics

let all_kinds = [ Hive_naive; Hive_mqo; Rapid_plus; Rapid_analytics ]

let kind_name = function
  | Hive_naive -> "hive-naive"
  | Hive_mqo -> "hive-mqo"
  | Rapid_plus -> "rapid-plus"
  | Rapid_analytics -> "rapid-analytics"

let kind_of_string = function
  | "hive-naive" | "hive" -> Some Hive_naive
  | "hive-mqo" | "mqo" -> Some Hive_mqo
  | "rapid-plus" | "rapid+" -> Some Rapid_plus
  | "rapid-analytics" | "ra" -> Some Rapid_analytics
  | _ -> None

type input = {
  graph : Graph.t;
  tg_store : Tg_store.t Lazy.t;
  vp : Vp_store.t Lazy.t;
}

let input_of_graph graph =
  {
    graph;
    tg_store = lazy (Tg_store.of_graph graph);
    vp = lazy (Vp_store.of_graph graph);
  }

let graph_of_input input = input.graph
let input_vp input = Lazy.force input.vp
let input_tg_store input = Lazy.force input.tg_store

type output = { table : Table.t; stats : Stats.t; trace : Trace.t }

type error =
  | Parse_error of string
  | Plan_rejected of string
  | Job_failed of Workflow.abort
  | Verify_failed of { kind : kind; problems : string list }

let error_message = function
  | Parse_error msg -> msg
  | Plan_rejected msg -> msg
  | Job_failed abort -> Fmt.str "%a" Workflow.pp_abort abort
  | Verify_failed { kind; problems } ->
    Fmt.str "plan verification failed (%s): %s" (kind_name kind)
      (String.concat "; " problems)

let pp_error ppf e = Fmt.string ppf (error_message e)

(* Parse errors are what the user typed — a usage error (exit 2, like an
   unreadable file); everything after a successful parse is a runtime
   failure (exit 1). *)
let error_exit_code = function Parse_error _ -> 2 | _ -> 1
let error_transient = function Job_failed _ -> true | _ -> false

type verifier = kind -> Analytical.t -> Table.t -> string list

(* Static plan verification is provided by the analysis library, which
   depends on this one; the registry indirection breaks the cycle. The
   default verifier accepts everything, so nothing changes until
   [Rapida_analysis.Plan_verify.install_engine_hook] runs. Sessions
   capture the registered default at [prepare] time — executions never
   read this cell, so re-registration cannot race a running query. *)
let default_verifier : verifier ref = ref (fun _ _ _ -> [])

let set_default_verifier f = default_verifier := f
let set_plan_verifier = set_default_verifier

type session = { s_kind : kind; s_input : input; s_verifier : verifier }

let prepare ?verifier kind input =
  (* Force the storage layout this engine kind scans, so every later
     [execute] starts from prepared storage. *)
  (match kind with
  | Hive_naive | Hive_mqo -> ignore (Lazy.force input.vp)
  | Rapid_plus | Rapid_analytics -> ignore (Lazy.force input.tg_store));
  {
    s_kind = kind;
    s_input = input;
    s_verifier =
      (match verifier with Some f -> f | None -> !default_verifier);
  }

let session_kind s = s.s_kind
let session_input s = s.s_input
let session_verifier s = s.s_verifier

let execute session ctx query =
  let { s_kind = kind; s_input = input; s_verifier } = session in
  let result =
    (* A workflow that exhausts its whole-job retries surfaces as a
       structured error, never an escaping exception. *)
    try
      Result.map_error
        (fun msg -> `Msg msg)
        (match kind with
        | Hive_naive -> Hive_naive.run ctx (Lazy.force input.vp) query
        | Hive_mqo -> Hive_mqo.run ctx (Lazy.force input.vp) query
        | Rapid_plus -> Rapid_plus.run ctx (Lazy.force input.tg_store) query
        | Rapid_analytics ->
          Rapid_analytics.run ctx (Lazy.force input.tg_store) query)
    with Workflow.Aborted a -> Error (`Aborted a)
  in
  match result with
  | Error (`Aborted a) -> Error (Job_failed a)
  | Error (`Msg msg) -> Error (Plan_rejected msg)
  | Ok (table, stats) -> (
    let output = { table; stats; trace = Exec_ctx.trace ctx } in
    if not (Exec_ctx.verify_plans ctx) then Ok output
    else
      (* Verification is pure and runs no simulated jobs, so the trace
         and counters — the cost-model outputs — are untouched. *)
      match s_verifier kind query table with
      | [] -> Ok output
      | problems -> Error (Verify_failed { kind; problems }))

let execute_sparql session ctx src =
  match Analytical.parse src with
  | Error msg -> Error (Parse_error msg)
  | Ok query -> execute session ctx query

(* --- deprecated shims ---------------------------------------------------- *)

let run kind ctx input query =
  Result.map_error error_message
    (execute (prepare kind input) ctx query)

let run_sparql kind ctx input src =
  Result.map_error error_message
    (execute_sparql (prepare kind input) ctx src)

let run_with_options kind options input query =
  run kind (Plan_util.context options) input query

let run_sparql_with_options kind options input src =
  run_sparql kind (Plan_util.context options) input src
