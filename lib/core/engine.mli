(** Engine dispatch: the four evaluation strategies the paper compares,
    behind one prepared-session interface.

    The entry point is prepare-once / execute-many: {!prepare} binds an
    engine kind to a dataset (forcing the storage layout that engine
    reads — vertically partitioned tables for the Hive kinds, the
    triplegroup store for the NTGA kinds — exactly once), and {!execute}
    evaluates any number of queries against the prepared session. This is
    the shape a query server needs: storage preparation is paid per
    dataset, not per query, and every per-query knob travels in the
    {!Rapida_mapred.Exec_ctx} passed to each execution.

    Every execution goes through an execution context
    ({!Rapida_mapred.Exec_ctx}): the context picks the cluster model and
    planner options, and collects the per-phase trace and counters as the
    simulated jobs execute. Create a fresh context per query run (e.g.
    with {!Plan_util.context}) so the telemetry attributes to a single
    execution. *)

open Rapida_rdf
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Trace = Rapida_mapred.Trace
module Workflow = Rapida_mapred.Workflow

type kind = Hive_naive | Hive_mqo | Rapid_plus | Rapid_analytics

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_string : string -> kind option

(** Prepared inputs: both storage layouts are built lazily from the graph
    so a benchmark can prepare once and run many queries. *)
type input

val input_of_graph : Graph.t -> input
val graph_of_input : input -> Graph.t

(** The prepared storage layouts, forcing them on first use: the
    vertically partitioned tables the Hive engines scan, and the
    triplegroup store the NTGA engines scan. Exposed for {!Batch_exec},
    which drives the engines' composite primitives directly. *)
val input_vp : input -> Rapida_relational.Vp_store.t

val input_tg_store : input -> Rapida_ntga.Tg_store.t

type output = {
  table : Table.t;
  stats : Stats.t;
  trace : Trace.t;  (** the context's trace, one span per simulated phase *)
}

(** Why an execution failed. The payloads carry everything the old
    stringly errors flattened away:

    - [Parse_error]: the query text is outside the grammar or the
      analytical fragment ({!execute_sparql} only). A usage error — the
      CLI maps it to exit code 2.
    - [Plan_rejected]: the engine produced no plan for this (parsed)
      query — an unbound property, a filter over variables the pattern
      never binds, a disconnected join graph. Deterministic: retrying
      the same query cannot succeed.
    - [Job_failed]: a simulated workflow ran out of whole-job
      resubmissions and aborted (the {!Workflow.Aborted} payload).
    - [Verify_failed]: the session's static plan verifier rejected the
      run ({!Exec_ctx.verify_plans} was set and the verifier returned
      problems). *)
type error =
  | Parse_error of string
  | Plan_rejected of string
  | Job_failed of Workflow.abort
  | Verify_failed of { kind : kind; problems : string list }

val pp_error : error Fmt.t

(** [error_message e] is the one-line rendering of [e] — identical to the
    strings the deprecated [(output, string) result] entry points
    returned, so shimmed callers observe unchanged messages. *)
val error_message : error -> string

(** [error_exit_code e] maps an error onto the CLI's exit-code
    convention, in one place: 2 (usage) for {!Parse_error}, 1 (runtime
    failure) for everything else. *)
val error_exit_code : error -> int

(** [error_transient e] is true when retrying the same query later could
    plausibly succeed — only {!Job_failed}, whose fault fates are drawn
    per attempt. [Parse_error], [Plan_rejected], and [Verify_failed] are
    deterministic properties of the query and plan; a circuit breaker
    must not trip on them. *)
val error_transient : error -> bool

(** A verifier re-checks a finished run: [f kind query table] returns
    human-readable problems; a non-empty list fails the execution with
    {!Verify_failed}. Consulted only when the execution's context has
    {!Exec_ctx.verify_plans} set. *)
type verifier = kind -> Analytical.t -> Table.t -> string list

(** An engine kind bound to a prepared dataset. Sessions are immutable
    and cheap to copy around; the expensive part — forcing the storage
    layout the kind scans — happens once in {!prepare}. Each session
    carries its own plan-verifier hook, so concurrent sessions (a query
    server running many queries with different [verify_plans] settings)
    can never race on, or cross-contaminate through, process-global
    state. *)
type session

(** [prepare ?verifier kind input] builds the session: forces the
    storage layout [kind] scans and captures the verifier — [?verifier]
    when given, otherwise the process default registered by
    {!set_default_verifier} (the accept-everything verifier until
    [Rapida_analysis.Plan_verify.install_engine_hook] runs). *)
val prepare : ?verifier:verifier -> kind -> input -> session

val session_kind : session -> kind
val session_input : session -> input

(** The verifier this session captured at {!prepare} time. Exposed so
    {!Batch_exec} can verify shared-plan members exactly as {!execute}
    verifies solo runs. *)
val session_verifier : session -> verifier

(** [execute session ctx query] evaluates an analytical query with the
    session's engine, recording telemetry into [ctx]. When the context
    has [verify_plans] set, the session's verifier re-checks the
    optimizer invariants and result schema after the run — out of band,
    so cost-model outputs are unchanged. *)
val execute :
  session -> Exec_ctx.t -> Analytical.t -> (output, error) result

(** [execute_sparql session ctx src] parses and executes. *)
val execute_sparql :
  session -> Exec_ctx.t -> string -> (output, error) result

(** [set_default_verifier f] registers the verifier that {!prepare}
    captures when none is passed explicitly. Registered by
    [Rapida_analysis.Plan_verify.install_engine_hook] — a registry,
    rather than a direct call, because the analysis library depends on
    this one. Affects only sessions prepared {e after} the call;
    existing sessions keep the verifier they captured. *)
val set_default_verifier : verifier -> unit

val set_plan_verifier : verifier -> unit
[@@ocaml.deprecated
  "Use set_default_verifier (and per-session ?verifier on prepare); this \
   alias will be removed next release."]

val run :
  kind -> Exec_ctx.t -> input -> Analytical.t -> (output, string) result
[@@ocaml.deprecated
  "Use execute (prepare kind input) ctx query; this shim will be removed \
   next release."]

val run_sparql :
  kind -> Exec_ctx.t -> input -> string -> (output, string) result
[@@ocaml.deprecated
  "Use execute_sparql (prepare kind input) ctx src; this shim will be \
   removed next release."]

val run_with_options :
  kind -> Plan_util.options -> input -> Analytical.t ->
  (output, string) result
[@@ocaml.deprecated
  "Use execute (prepare kind input) (Plan_util.context options) query; \
   this shim will be removed next release."]

val run_sparql_with_options :
  kind -> Plan_util.options -> input -> string -> (output, string) result
[@@ocaml.deprecated
  "Use execute_sparql (prepare kind input) (Plan_util.context options) \
   src; this shim will be removed next release."]
