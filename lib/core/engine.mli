(** Engine dispatch: the four evaluation strategies the paper compares,
    behind one interface.

    Every run goes through an execution context
    ({!Rapida_mapred.Exec_ctx}): the context picks the cluster model and
    planner options, and collects the per-phase trace and counters as the
    simulated jobs execute. Create a fresh context per query run (e.g.
    with {!Plan_util.context}) so the telemetry attributes to a single
    execution. *)

open Rapida_rdf
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Trace = Rapida_mapred.Trace

type kind = Hive_naive | Hive_mqo | Rapid_plus | Rapid_analytics

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_string : string -> kind option

(** Prepared inputs: both storage layouts are built lazily from the graph
    so a benchmark can prepare once and run many queries. *)
type input

val input_of_graph : Graph.t -> input
val graph_of_input : input -> Graph.t

type output = {
  table : Table.t;
  stats : Stats.t;
  trace : Trace.t;  (** the context's trace, one span per simulated phase *)
}

(** [set_plan_verifier f] registers the static plan verifier consulted
    by {!run} whenever the context has {!Exec_ctx.verify_plans} set: [f
    kind query table] returns human-readable problems, and a non-empty
    list fails the run. Registered by
    [Rapida_analysis.Plan_verify.install_engine_hook] — a registry,
    rather than a direct call, because the analysis library depends on
    this one. The default verifier accepts everything. *)
val set_plan_verifier : (kind -> Analytical.t -> Table.t -> string list) -> unit

(** [run kind ctx input query] evaluates an analytical query with the
    chosen engine, recording telemetry into [ctx]. When the context has
    [verify_plans] set and a verifier is installed, the optimizer
    invariants and result schema are re-checked after the run — out of
    band, so cost-model outputs are unchanged. *)
val run :
  kind -> Exec_ctx.t -> input -> Analytical.t -> (output, string) result

(** [run_sparql kind ctx input src] parses and runs. *)
val run_sparql :
  kind -> Exec_ctx.t -> input -> string -> (output, string) result

val run_with_options :
  kind -> Plan_util.options -> input -> Analytical.t ->
  (output, string) result
[@@ocaml.deprecated
  "Use run with an Exec_ctx (e.g. Plan_util.context options); this shim \
   will be removed next release."]

val run_sparql_with_options :
  kind -> Plan_util.options -> input -> string -> (output, string) result
[@@ocaml.deprecated
  "Use run_sparql with an Exec_ctx (e.g. Plan_util.context options); this \
   shim will be removed next release."]
