(** RAPID+ (naive NTGA) baseline: each graph pattern is evaluated
    separately with NTGA operators — star patterns are matched by
    map-side triplegroup filtering and joined in reduce phases — followed
    by one grouping-aggregation cycle per subquery and a map-only join of
    the aggregated results. Shared execution across patterns is {e not}
    exploited; that is RAPIDAnalytics' contribution. *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Tg_store = Rapida_ntga.Tg_store
module Stats = Rapida_mapred.Stats

val run :
  Rapida_mapred.Exec_ctx.t -> Tg_store.t -> Analytical.t ->
  (Table.t * Stats.t, string) result

(** [star_reqs star] is the property requirements of a star pattern
    (bound properties, plus object constraints for constant objects).
    Exposed for reuse by {!Rapid_analytics} and tests. *)
val star_reqs : Rapida_sparql.Star.t -> Rapida_ntga.Ops.prop_req list

(** [key_of_endpoint e] translates a join-edge endpoint into a triplegroup
    join-key accessor. @raise Failure on property-role endpoints. *)
val key_of_endpoint : Rapida_sparql.Star.endpoint -> Rapida_ntga.Ops.join_key
