module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Ops = Rapida_ntga.Ops
module Joined = Rapida_ntga.Joined
module Tg_store = Rapida_ntga.Tg_store
module Workflow = Rapida_mapred.Workflow
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Table = Rapida_relational.Table

(* Property requirements of a star's bound-property triple patterns;
   unbound-property patterns impose no property requirement (any triple
   can match them) and are checked during binding enumeration. *)
let star_reqs (star : Star.t) =
  List.filter_map
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p with
      | Ast.Nvar _ -> None
      | Ast.Nterm prop -> (
        match tp.tp_o with
        | Ast.Nterm o -> Some (Ops.req ~obj:o prop)
        | Ast.Nvar _ -> Some (Ops.req prop)))
    star.patterns

let has_unbound_property (star : Star.t) =
  List.exists
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p with Ast.Nvar _ -> true | Ast.Nterm _ -> false)
    star.patterns

let key_of_endpoint (e : Star.endpoint) : Ops.join_key =
  match e.role with
  | Star.Subject -> { star = e.star; access = `Subject }
  | Star.Object -> (
    match e.prop with
    | Some p -> { star = e.star; access = `ObjectOf p }
    | None ->
      (* Join through an unbound-property triple pattern: any object of
         the triplegroup can carry the join (validated at binding time). *)
      { star = e.star; access = `AnyObject })
  | Star.Property -> failwith "joins on property position are unsupported"

(* Map-side star source: scan only the equivalence-class partitions that
   cover the star's properties, push star-local filters into the scan,
   then group-filter each triplegroup. *)
let star_source planner store filters (star : Star.t) =
  let reqs = star_reqs star in
  let props = List.map (fun (r : Ops.prop_req) -> r.prop) reqs in
  let tgs = Tg_store.scan store ~required:props in
  let filter_refine, _, _ =
    if planner.Exec_ctx.ntga_filter_pushdown then
      Plan_util.push_star_filters star filters
    else (Option.some, [], filters)
  in
  let unbound = has_unbound_property star in
  let refine tg =
    match filter_refine tg with
    | None -> None
    | Some tg ->
      if unbound then
        (* Unbound-property patterns can match any triple: check the
           bound requirements but keep the whole triplegroup. *)
        if
          List.for_all
            (fun (r : Ops.prop_req) ->
              Ops.group_filter ~required:[ r ] [ tg ] <> [])
            reqs
        then Some tg
        else None
      else (
        match Ops.group_filter ~required:reqs [ tg ] with
        | [ tg' ] -> Some tg'
        | _ -> None)
  in
  Phys_ntga.Tgs { tgs; refine; star = star.id }

(* Filters no star can consume map-side; these run during aggregation. *)
let pending_filters planner stars filters =
  if not planner.Exec_ctx.ntga_filter_pushdown then filters
  else
    List.filter
      (fun f ->
        not
          (List.exists
             (fun star ->
               let _, pushed, _ = Plan_util.push_star_filters star [ f ] in
               pushed <> [])
             stars))
      filters

let eval_pattern wf store (sq : Analytical.subquery) =
  let planner = Exec_ctx.planner (Workflow.ctx wf) in
  let star_of id = List.find (fun (s : Star.t) -> s.id = id) sq.stars in
  match sq.stars with
  | [ only ] ->
    (* A single-star pattern needs no join cycle: the grouping job's map
       phase applies the group filter directly. *)
    let reqs = star_reqs only in
    let props = List.map (fun (r : Ops.prop_req) -> r.prop) reqs in
    let filter_refine, _, _ =
      if planner.Exec_ctx.ntga_filter_pushdown then
        Plan_util.push_star_filters only sq.filters
      else (Option.some, [], sq.filters)
    in
    let unbound = has_unbound_property only in
    Tg_store.scan store ~required:props
    |> List.concat_map (fun tg ->
           match filter_refine tg with
           | None -> []
           | Some tg ->
             if unbound then
               if
                 List.for_all
                   (fun (r : Ops.prop_req) ->
                     Ops.group_filter ~required:[ r ] [ tg ] <> [])
                   reqs
               then [ Joined.of_tg only.id tg ]
               else []
             else (
               match Ops.group_filter ~required:reqs [ tg ] with
               | [ tg' ] -> [ Joined.of_tg only.id tg' ]
               | _ -> []))
  | _ -> (
    match
      Composite.order_edges
        ~star_order:(Exec_ctx.join_order (Workflow.ctx wf) sq.sq_id)
        ~star_ids:(List.map (fun (s : Star.t) -> s.id) sq.stars)
        ~edges:sq.edges
    with
    | Error msg -> failwith msg
    | Ok [] -> failwith "multi-star pattern without join edges"
    | Ok (first :: rest) ->
      let seen = Hashtbl.create 8 in
      Hashtbl.add seen first.Star.left.star ();
      Hashtbl.add seen first.Star.right.star ();
      let init =
        Phys_ntga.join_cycle wf
          ~name:(Printf.sprintf "sq%d_tgjoin0" sq.sq_id)
          ~left:
            (star_source planner store sq.filters
               (star_of first.Star.left.star))
          ~right:
            (star_source planner store sq.filters
               (star_of first.Star.right.star))
          ~left_key:(key_of_endpoint first.Star.left)
          ~right_key:(key_of_endpoint first.Star.right)
          ~keep:(fun _ -> true)
      in
      let acc, _ =
        List.fold_left
          (fun (acc, i) (e : Star.edge) ->
            let new_endpoint, old_endpoint =
              if Hashtbl.mem seen e.Star.left.star then (e.right, e.left)
              else (e.left, e.right)
            in
            Hashtbl.replace seen new_endpoint.Star.star ();
            let joined =
              Phys_ntga.join_cycle wf
                ~name:(Printf.sprintf "sq%d_tgjoin%d" sq.sq_id i)
                ~left:(Phys_ntga.Pre acc)
                ~right:
                  (star_source planner store sq.filters
                     (star_of new_endpoint.Star.star))
                ~left_key:(key_of_endpoint old_endpoint)
                ~right_key:(key_of_endpoint new_endpoint)
                ~keep:(fun _ -> true)
            in
            (joined, i + 1))
          (init, 1) rest
      in
      acc)

let eval_subquery wf store (sq : Analytical.subquery) =
  let planner = Exec_ctx.planner (Workflow.ctx wf) in
  let joined = eval_pattern wf store sq in
  let agj : Phys_ntga.agj =
    {
      agj_id = sq.sq_id;
      stars = List.map (fun (s : Star.t) -> (s.id, s)) sq.stars;
      filters = pending_filters planner sq.stars sq.filters;
      group_by = sq.group_by;
      aggregates = sq.aggregates;
      alpha = (fun _ -> true);
    }
  in
  match
    Phys_ntga.agg_cycle wf
      ~name:(Printf.sprintf "sq%d_aggjoin" sq.sq_id)
      ~combiner:planner.Exec_ctx.ntga_combiner ~input:joined [ agj ]
  with
  | [ table ] -> Plan_util.finish_subquery sq table
  | _ -> assert false

let run ctx store (q : Analytical.t) =
  let wf = Workflow.create ctx in
  match
    let tables = List.map (eval_subquery wf store) q.subqueries in
    Plan_util.final_join wf q tables
  with
  | table -> Ok (table, Workflow.stats wf)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
