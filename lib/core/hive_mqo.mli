(** Hive (MQO) baseline: the multi-query-optimization rewriting of Le et
    al. applied to the analytical query's graph patterns, executed
    Hive-style. The overlapping patterns are rewritten into one composite
    query whose pattern-specific triples become OPTIONAL (left outer
    joins); the composite result is materialized, then each original
    pattern's distinct bindings are extracted (one MR cycle per pattern)
    and aggregated (another cycle per pattern).

    As the paper observes, the materialization boundary prevents early
    projection and partial aggregation across the two HiveQL queries —
    the extraction re-reads the full composite result once per pattern.
    Falls back to {!Hive_naive} when the patterns do not overlap. *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Vp_store = Rapida_relational.Vp_store
module Stats = Rapida_mapred.Stats

val run :
  Rapida_mapred.Exec_ctx.t -> Vp_store.t -> Analytical.t ->
  (Table.t * Stats.t, string) result

(** The pieces of the composite plan, exposed so the query server's
    cross-query MQO ({!Batch_exec}) can share one composite evaluation
    across several concurrent queries. *)

(** [eval_composite wf vp composite] materializes the composite pattern:
    one multiway star join per composite star plus one pair join per
    join edge, all recorded on [wf]. *)
val eval_composite :
  Rapida_mapred.Workflow.t -> Vp_store.t -> Composite.t -> Table.t

(** [extract_and_aggregate wf composite q_opt sq info] extracts pattern
    [info]'s distinct bindings from the materialized composite result
    [q_opt] and aggregates them per [sq] (whose [sq_id] must equal
    [info.pat_id]) — one distinct-projection cycle plus one aggregation
    cycle. *)
val extract_and_aggregate :
  Rapida_mapred.Workflow.t -> Composite.t -> Table.t ->
  Analytical.subquery -> Composite.pattern_info -> Table.t
