module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Mr_relops = Rapida_relational.Mr_relops
module Vp_store = Rapida_relational.Vp_store
module Workflow = Rapida_mapred.Workflow
module Stats = Rapida_mapred.Stats

(* Variables a subquery's later stages need: grouping keys, aggregate
   arguments, and filter variables. *)
let needed_vars (sq : Analytical.subquery) =
  sq.group_by
  @ List.filter_map (fun (a : Analytical.aggregate) -> a.arg) sq.aggregates
  @ List.concat_map Ast.expr_vars sq.filters
  |> List.sort_uniq String.compare

let edge_vars (sq : Analytical.subquery) =
  List.map (fun (e : Star.edge) -> e.var) sq.edges |> List.sort_uniq String.compare

let eval_subquery wf vp (sq : Analytical.subquery) =
  let keep = needed_vars sq @ edge_vars sq in
  let star_table (star : Star.t) =
    let tables = List.map (Plan_util.tp_table vp) star.patterns in
    let t =
      Plan_util.star_join wf
        ~name:(Printf.sprintf "sq%d_star%d" sq.sq_id star.id)
        ~required:tables ~optional:[]
    in
    let t, _pending = Plan_util.apply_ready_filters t sq.filters in
    Plan_util.project_needed t keep
  in
  let star_of id = List.find (fun (s : Star.t) -> s.id = id) sq.stars in
  let joined =
    match sq.stars with
    | [ only ] -> star_table only
    | _ -> (
      match
        Composite.order_edges
          ~star_order:
            (Rapida_mapred.Exec_ctx.join_order (Workflow.ctx wf) sq.sq_id)
          ~star_ids:(List.map (fun (s : Star.t) -> s.id) sq.stars)
          ~edges:sq.edges
      with
      | Error msg -> failwith msg
      | Ok [] -> failwith "multi-star pattern without join edges"
      | Ok (first :: rest) ->
        let seen = Hashtbl.create 8 in
        Hashtbl.add seen first.Star.left.star ();
        Hashtbl.add seen first.Star.right.star ();
        let init =
          Plan_util.pair_join wf
            ~name:(Printf.sprintf "sq%d_join0" sq.sq_id)
            (star_table (star_of first.Star.left.star))
            (star_table (star_of first.Star.right.star))
        in
        let acc, _ =
          List.fold_left
            (fun (acc, i) (e : Star.edge) ->
              let new_star =
                if Hashtbl.mem seen e.left.star then e.right.star
                else e.left.star
              in
              Hashtbl.replace seen new_star ();
              let joined =
                Plan_util.pair_join wf
                  ~name:(Printf.sprintf "sq%d_join%d" sq.sq_id i)
                  acc
                  (star_table (star_of new_star))
              in
              let joined, _ = Plan_util.apply_ready_filters joined sq.filters in
              (Plan_util.project_needed joined keep, i + 1))
            (Plan_util.project_needed init keep, 1)
            rest
        in
        acc)
  in
  let joined, pending = Plan_util.apply_ready_filters joined sq.filters in
  if pending <> [] then
    failwith "filter variables not bound by the graph pattern";
  Mr_relops.group_aggregate wf
    ~name:(Printf.sprintf "sq%d_groupby" sq.sq_id)
    ~keys:sq.group_by ~aggs:(Plan_util.agg_specs sq) joined
  |> Plan_util.finish_subquery sq

let run ctx vp (q : Analytical.t) =
  let wf = Workflow.create (Plan_util.hive_ctx ctx) in
  match
    let tables = List.map (eval_subquery wf vp) q.subqueries in
    Plan_util.final_join wf q tables
  with
  | table -> Ok (table, Workflow.stats wf)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg
