(** Composite graph patterns (paper §3).

    Overlapping graph patterns GP1, GP2, … are rewritten into a single
    composite pattern GP' whose stars carry {e primary} requirements
    (shared by every pattern) and {e secondary} requirements (owned by a
    strict subset of the patterns). Evaluating GP' once replaces
    evaluating every GPi; per-pattern α conditions then select, from each
    match of GP', the patterns it satisfies.

    Note on α conditions: the paper's Table 2 lists mutually exclusive
    conditions that also {e forbid} other patterns' secondary properties
    (e.g. α1 = c≠∅ ∧ f=∅). Under SPARQL semantics a subject carrying an
    extra optional property still matches a pattern that does not mention
    it, so exclusive conditions under-count; we therefore derive
    requirement-only conditions (α_i = pattern i's own secondary
    requirements are present), which the reference-engine oracle in the
    test suite validates. The exclusive form remains available in
    {!Rapida_ntga.Ops.alpha} and is exercised by the operator tests. *)

open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Ops = Rapida_ntga.Ops
module Joined = Rapida_ntga.Joined

(** One composite triple pattern: always a variable object column, with an
    optional constant-object constraint, owned by the patterns that
    require it. *)
type ctp = {
  prop : Term.t;
  obj_var : Ast.var;
  obj_const : Term.t option;
  owners : int list;  (** pattern ids (sq_id) requiring this triple *)
}

type star = {
  cs_id : int;
  subject_var : Ast.var;
  ctps : ctp list;
}

(** Requirement-only α condition: (composite star, requirement) pairs that
    must be present for the pattern to match. *)
type alpha = (int * Ops.prop_req) list

type pattern_info = {
  pat_id : int;
  star_of : (int * int) list;  (** original star id -> composite star id *)
  alpha : alpha;
  var_map : (Ast.var * Ast.var) list;  (** pattern var -> composite var *)
}

type t = {
  stars : star list;
  edges : Star.edge list;  (** join edges over composite star ids *)
  patterns : pattern_info list;
}

(** [build subqueries] checks pairwise overlap of every subquery against
    the first and constructs the composite pattern. [Error] carries the
    overlap report rendering when patterns do not overlap. *)
val build : Analytical.subquery list -> (t, string) result

(** [req_of ctp] is the NTGA property requirement of a composite triple. *)
val req_of : ctp -> Ops.prop_req

(** [prim_reqs star] / [sec_reqs star] split a composite star's
    requirements into primary (owned by all patterns) and secondary. *)
val prim_reqs : t -> star -> Ops.prop_req list

val sec_reqs : t -> star -> Ops.prop_req list

(** [alpha_holds alpha joined] tests a requirement-only α condition
    against a joined triplegroup. *)
val alpha_holds : alpha -> Joined.t -> bool

(** [map_var info v] is the composite variable for pattern variable [v]
    (identity when unmapped — pattern 0 uses composite names). *)
val map_var : pattern_info -> Ast.var -> Ast.var

(** [map_expr info e] rewrites a filter expression into composite
    variables. *)
val map_expr : pattern_info -> Ast.expr -> Ast.expr

(** [pattern_columns t info] is the composite variables carrying pattern
    [info]'s bindings: mapped subject and object variables of the
    pattern's triples, distinct, in order. *)
val pattern_columns : t -> pattern_info -> Ast.var list

(** [order_edges ~star_order ~star_ids ~edges] orders join edges so each
    successive edge connects one new star to the already-joined prefix
    (the generic form used for both composite and original patterns).

    With [star_order = None] the heuristic greedy order is used — the
    exact pre-optimizer behavior. With [Some order] (an optimizer-chosen
    star visiting order, typically from [Rapida_planner]), the edge plan
    realizes that order: the first listed star seeds the prefix and each
    subsequent star joins through a connecting edge. An [order] that is
    not a permutation of [star_ids] or cannot be realized as a connected
    left-deep plan silently falls back to the heuristic — a stale or
    invalid hint degrades to the baseline plan, never to an error the
    heuristic would not also produce. *)
val order_edges :
  star_order:int list option ->
  star_ids:int list ->
  edges:Star.edge list ->
  (Star.edge list, string) result

(** [join_plan ?star_order t] orders the edges so that each successive
    edge joins one new star to the already-joined prefix; the first
    edge's left star seeds the prefix (or [star_order]'s head when
    given, with the same fallback semantics as {!order_edges}). Errors
    when the pattern is disconnected. *)
val join_plan : ?star_order:int list -> t -> (Star.edge list, string) result

val pp : t Fmt.t
