open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Composite = Rapida_core.Composite
module Overlap = Rapida_core.Overlap
module Engine = Rapida_core.Engine

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let join_cols acc cols =
  acc @ List.filter (fun c -> not (List.mem c acc)) cols

let expected_schema (q : Analytical.t) =
  let base =
    List.fold_left
      (fun acc sq -> join_cols acc (Analytical.output_columns sq))
      [] q.Analytical.subqueries
  in
  match q.Analytical.outer_projection with
  | [] -> base
  | items ->
    List.map (function Ast.Svar v -> v | Ast.Sexpr (_, v) -> v) items

let errorf ~rule fmt = Diagnostic.errorf ~rule fmt

(* --- per-subquery grouping/aggregation consistency (Def. 3.6) --------- *)

let verify_subquery (sq : Analytical.subquery) acc =
  let bound = dedup (List.concat_map Ast.pattern_vars sq.Analytical.bgp) in
  let acc =
    List.fold_left
      (fun acc g ->
        if List.mem g bound then acc
        else
          errorf ~rule:"aggjoin-keys"
            "subquery %d groups by ?%s, which its pattern never binds"
            sq.Analytical.sq_id g
          :: acc)
      acc sq.Analytical.group_by
  in
  let acc =
    List.fold_left
      (fun acc (a : Analytical.aggregate) ->
        match a.Analytical.arg with
        | Some v when not (List.mem v bound) ->
          errorf ~rule:"aggjoin-keys"
            "subquery %d aggregates over ?%s, which its pattern never binds"
            sq.Analytical.sq_id v
          :: acc
        | _ -> acc)
      acc sq.Analytical.aggregates
  in
  let outs = List.map (fun (a : Analytical.aggregate) -> a.Analytical.out)
      sq.Analytical.aggregates
  in
  let acc =
    if List.length outs <> List.length (dedup outs) then
      errorf ~rule:"aggjoin-keys"
        "subquery %d has duplicate aggregate output names" sq.Analytical.sq_id
      :: acc
    else acc
  in
  let acc =
    List.fold_left
      (fun acc o ->
        if List.mem o sq.Analytical.group_by then
          errorf ~rule:"aggjoin-keys"
            "subquery %d: aggregate output ?%s collides with a grouping key"
            sq.Analytical.sq_id o
          :: acc
        else acc)
      acc outs
  in
  let available = Analytical.output_columns sq in
  List.fold_left
    (fun acc h ->
      List.fold_left
        (fun acc v ->
          if List.mem v available then acc
          else
            errorf ~rule:"aggjoin-keys"
              "subquery %d: HAVING references ?%s, which is neither a \
               grouping key nor an aggregate output"
              sq.Analytical.sq_id v
          :: acc)
        acc
        (dedup (Ast.expr_vars h)))
    acc sq.Analytical.having

(* --- join-order replay: every shuffle key bound upstream -------------- *)

let star_vars_tbl stars =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (st : Star.t) ->
      Hashtbl.replace tbl st.Star.id
        (dedup (List.concat_map Ast.pattern_vars st.Star.patterns)))
    stars;
  tbl

let replay_join_order ~what ~star_vars ordered acc =
  match ordered with
  | [] -> acc
  | (e0 : Star.edge) :: _ ->
    let joined = ref [ e0.Star.left.Star.star ] in
    List.fold_left
      (fun acc (e : Star.edge) ->
        let l = e.Star.left.Star.star and r = e.Star.right.Star.star in
        let var_ok side =
          match Hashtbl.find_opt star_vars side with
          | Some vs -> List.mem e.Star.var vs
          | None -> false
        in
        let acc =
          if var_ok l && var_ok r then acc
          else
            errorf ~rule:"workflow-dag"
              "%s: join variable ?%s is not bound by both endpoint stars \
               (%d, %d)"
              what e.Star.var l r
            :: acc
        in
        let acc =
          if List.mem l !joined || List.mem r !joined then acc
          else
            errorf ~rule:"workflow-dag"
              "%s: the join on ?%s shuffles stars %d and %d before either \
               is bound upstream"
              what e.Star.var l r
            :: acc
        in
        joined := dedup (l :: r :: !joined);
        acc)
      acc ordered

let verify_join_orders (sq : Analytical.subquery) acc =
  if List.length sq.Analytical.stars <= 1 then acc
  else
    let star_ids = List.map (fun (s : Star.t) -> s.Star.id) sq.Analytical.stars in
    match
      Composite.order_edges ~star_order:None ~star_ids
        ~edges:sq.Analytical.edges
    with
    | Error msg ->
      errorf ~rule:"workflow-dag" "subquery %d: %s" sq.Analytical.sq_id msg
      :: acc
    | Ok ordered ->
      replay_join_order
        ~what:(Fmt.str "subquery %d" sq.Analytical.sq_id)
        ~star_vars:(star_vars_tbl sq.Analytical.stars)
        ordered acc

(* --- optimizer-enumerated join orders --------------------------------- *)

let verify_join_order ~star_ids ~edges ~order =
  let acc = [] in
  let acc =
    if List.sort compare order <> List.sort compare star_ids then
      [
        errorf ~rule:"opt-join-order"
          "enumerated order [%s] is not a permutation of the pattern's star \
           ids [%s]"
          (String.concat ";" (List.map string_of_int order))
          (String.concat ";" (List.map string_of_int star_ids));
      ]
    else acc
  in
  if acc <> [] then acc
  else
    match order with
    | [] | [ _ ] -> acc
    | first :: rest ->
      let joined = ref [ first ] in
      let connects s =
        List.exists
          (fun (e : Star.edge) ->
            (e.Star.left.Star.star = s && List.mem e.Star.right.Star.star !joined)
            || (e.Star.right.Star.star = s
               && List.mem e.Star.left.Star.star !joined))
          edges
      in
      List.fold_left
        (fun acc s ->
          let acc =
            if connects s then acc
            else
              errorf ~rule:"opt-join-order"
                "enumerated order joins star %d before any edge connects it \
                 to the prefix [%s]"
                s
                (String.concat ";" (List.map string_of_int !joined))
              :: acc
          in
          joined := s :: !joined;
          acc)
        acc rest

(* --- composite-pattern invariants (Defs. 3.1, 3.2, 3.4, 3.5) --------- *)

let composite_star comp cs_id =
  List.find_opt (fun (s : Composite.star) -> s.Composite.cs_id = cs_id)
    comp.Composite.stars

let composite_vars comp =
  dedup
    (List.concat_map
       (fun (s : Composite.star) ->
         s.Composite.subject_var
         :: List.map (fun (c : Composite.ctp) -> c.Composite.obj_var)
              s.Composite.ctps)
       comp.Composite.stars)

let verify_composite (q : Analytical.t) acc =
  match q.Analytical.subqueries with
  | [] | [ _ ] -> acc
  | first :: rest ->
    let sq_ids =
      List.map (fun sq -> sq.Analytical.sq_id) q.Analytical.subqueries
    in
    (* Def. 3.2: role-equivalence evidence, via the overlap report. *)
    let acc =
      List.fold_left
        (fun acc sq ->
          let report = Overlap.check first sq in
          if Overlap.overlaps report then acc
          else
            List.fold_left
              (fun acc f ->
                errorf ~rule:"composite-role"
                  "subqueries %d and %d do not overlap: %a"
                  first.Analytical.sq_id sq.Analytical.sq_id Overlap.pp_failure
                  f
                :: acc)
              acc report.Overlap.failures)
        acc rest
    in
    (match Composite.build q.Analytical.subqueries with
    | Error msg -> errorf ~rule:"composite-cover" "%s" msg :: acc
    | Ok comp ->
      let n = List.length q.Analytical.subqueries in
      (* Def. 3.1: ownership and the primary/secondary partition. *)
      let acc =
        List.fold_left
          (fun acc (cs : Composite.star) ->
            let acc =
              List.fold_left
                (fun acc (c : Composite.ctp) ->
                  if c.Composite.owners = [] then
                    errorf ~rule:"composite-cover"
                      "composite star %d: property %a has no owning pattern"
                      cs.Composite.cs_id Term.pp c.Composite.prop
                    :: acc
                  else if
                    List.exists
                      (fun o -> not (List.mem o sq_ids))
                      c.Composite.owners
                  then
                    errorf ~rule:"composite-cover"
                      "composite star %d: property %a is owned by an unknown \
                       pattern"
                      cs.Composite.cs_id Term.pp c.Composite.prop
                    :: acc
                  else acc)
                acc cs.Composite.ctps
            in
            let prim = Composite.prim_reqs comp cs
            and sec = Composite.sec_reqs comp cs in
            if
              List.length prim + List.length sec
              <> List.length cs.Composite.ctps
            then
              errorf ~rule:"composite-cover"
                "composite star %d: primary + secondary requirements do not \
                 partition its %d properties (Def. 3.1)"
                cs.Composite.cs_id
                (List.length cs.Composite.ctps)
              :: acc
            else acc)
          acc comp.Composite.stars
      in
      (* Every original property must be covered by the mapped composite
         star, with the originating pattern among its owners. *)
      let acc =
        List.fold_left
          (fun acc (info : Composite.pattern_info) ->
            match
              List.find_opt
                (fun sq -> sq.Analytical.sq_id = info.Composite.pat_id)
                q.Analytical.subqueries
            with
            | None ->
              errorf ~rule:"nsplit-arity"
                "split pattern %d does not correspond to any subquery"
                info.Composite.pat_id
              :: acc
            | Some sq ->
              List.fold_left
                (fun acc (st : Star.t) ->
                  match List.assoc_opt st.Star.id info.Composite.star_of with
                  | None ->
                    errorf ~rule:"composite-cover"
                      "pattern %d star %d is not mapped to a composite star"
                      info.Composite.pat_id st.Star.id
                    :: acc
                  | Some cs_id -> (
                    match composite_star comp cs_id with
                    | None ->
                      errorf ~rule:"composite-cover"
                        "pattern %d star %d maps to unknown composite star %d"
                        info.Composite.pat_id st.Star.id cs_id
                      :: acc
                    | Some cs ->
                      List.fold_left
                        (fun acc p ->
                          if
                            List.exists
                              (fun (c : Composite.ctp) ->
                                Term.equal c.Composite.prop p
                                && List.mem info.Composite.pat_id
                                     c.Composite.owners)
                              cs.Composite.ctps
                          then acc
                          else
                            errorf ~rule:"composite-cover"
                              "property %a of pattern %d is not covered by \
                               composite star %d with ownership (Def. 3.1)"
                              Term.pp p info.Composite.pat_id cs_id
                            :: acc)
                        acc (Star.props st)))
                acc sq.Analytical.stars)
          acc comp.Composite.patterns
      in
      (* Defs. 3.4–3.5: the n-split produces one pattern per subquery and
         α conditions / variable maps stay inside the composite pattern. *)
      let acc =
        if List.length comp.Composite.patterns <> n then
          errorf ~rule:"nsplit-arity"
            "n-split arity %d differs from the %d input patterns (Def. 3.4)"
            (List.length comp.Composite.patterns)
            n
          :: acc
        else acc
      in
      let cvars = composite_vars comp in
      let acc =
        List.fold_left
          (fun acc (info : Composite.pattern_info) ->
            let acc =
              List.fold_left
                (fun acc (cs_id, req) ->
                  match composite_star comp cs_id with
                  | None ->
                    errorf ~rule:"nsplit-arity"
                      "pattern %d: α condition refers to unknown composite \
                       star %d"
                      info.Composite.pat_id cs_id
                    :: acc
                  | Some cs ->
                    if List.mem req (Composite.sec_reqs comp cs) then acc
                    else
                      errorf ~rule:"nsplit-arity"
                        "pattern %d: α condition on composite star %d is not \
                         one of its secondary requirements (Def. 3.5)"
                        info.Composite.pat_id cs_id
                      :: acc)
                acc info.Composite.alpha
            in
            List.fold_left
              (fun acc (v, cv) ->
                if List.mem cv cvars then acc
                else
                  errorf ~rule:"nsplit-arity"
                    "pattern %d maps ?%s to ?%s, which the composite pattern \
                     never binds"
                    info.Composite.pat_id v cv
                  :: acc)
              acc info.Composite.var_map)
          acc comp.Composite.patterns
      in
      (* Def. 3.6: grouping keys and aggregate arguments must survive the
         split — their composite names must be among the pattern's
         columns. *)
      let acc =
        List.fold_left
          (fun acc (info : Composite.pattern_info) ->
            match
              List.find_opt
                (fun sq -> sq.Analytical.sq_id = info.Composite.pat_id)
                q.Analytical.subqueries
            with
            | None -> acc (* already reported as nsplit-arity *)
            | Some sq ->
              let cols = Composite.pattern_columns comp info in
              let need ~what acc v =
                let cv = Composite.map_var info v in
                if List.mem cv cols then acc
                else
                  errorf ~rule:"aggjoin-keys"
                    "pattern %d: %s ?%s (composite ?%s) is not among the \
                     split pattern's bindings (Def. 3.6)"
                    info.Composite.pat_id what v cv
                  :: acc
              in
              let acc =
                List.fold_left (need ~what:"grouping key") acc
                  sq.Analytical.group_by
              in
              List.fold_left
                (fun acc (a : Analytical.aggregate) ->
                  match a.Analytical.arg with
                  | Some v -> need ~what:"aggregate argument" acc v
                  | None -> acc)
                acc sq.Analytical.aggregates)
          acc comp.Composite.patterns
      in
      (* The composite join order is itself a valid workflow. *)
      (match Composite.join_plan comp with
      | Error msg -> errorf ~rule:"workflow-dag" "composite pattern: %s" msg :: acc
      | Ok ordered ->
        let star_vars = Hashtbl.create 8 in
        List.iter
          (fun (cs : Composite.star) ->
            Hashtbl.replace star_vars cs.Composite.cs_id
              (cs.Composite.subject_var
              :: List.map (fun (c : Composite.ctp) -> c.Composite.obj_var)
                   cs.Composite.ctps))
          comp.Composite.stars;
        replay_join_order ~what:"composite pattern" ~star_vars ordered acc))

let verify_query (q : Analytical.t) =
  let acc = List.fold_left (fun acc sq -> verify_subquery sq acc) [] q.Analytical.subqueries in
  let acc =
    List.fold_left (fun acc sq -> verify_join_orders sq acc) acc
      q.Analytical.subqueries
  in
  let acc = verify_composite q acc in
  Diagnostic.sort acc

let pp_schema = Fmt.(list ~sep:(any ", ") string)

let verify_result ~engine (q : Analytical.t) (table : Table.t) =
  let expected = expected_schema q in
  if table.Table.schema = expected then []
  else
    [
      errorf ~rule:"schema-mismatch"
        "%s produced schema [%a] but the query implies [%a]" engine pp_schema
        table.Table.schema pp_schema expected;
    ]

let verify_cross_engine (q : Analytical.t) results =
  let per_engine =
    List.concat_map
      (fun (engine, table) -> verify_result ~engine q table)
      results
  in
  match results with
  | [] | [ _ ] -> per_engine
  | (e0, t0) :: rest ->
    List.fold_left
      (fun acc (e, t) ->
        if t.Table.schema = t0.Table.schema then acc
        else
          errorf ~rule:"schema-mismatch"
            "engines %s and %s disagree on the result schema: [%a] vs [%a]"
            e0 e pp_schema t0.Table.schema pp_schema t.Table.schema
          :: acc)
      per_engine rest

let install_engine_hook () =
  Engine.set_default_verifier (fun kind q table ->
      let ds =
        verify_query q
        @ verify_result ~engine:(Engine.kind_name kind) q table
      in
      List.filter_map
        (fun d ->
          if Diagnostic.is_error d then Some (Fmt.str "%a" Diagnostic.pp d)
          else None)
        ds)

(* --- memory overcommit (warning) -------------------------------------- *)

let verify_memory ~heap_bytes ~agj_ht_bytes =
  if agj_ht_bytes > heap_bytes then
    [
      Diagnostic.warningf ~rule:"mem-overcommit"
        "Agg-Join estimates a per-task hash table of %d bytes against a \
         %d-byte task heap; expect OOM retries and a combiner-disabled \
         (degraded) rerun"
        agj_ht_bytes heap_bytes;
    ]
  else []
