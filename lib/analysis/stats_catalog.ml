open Rapida_rdf
module Json = Rapida_mapred.Json

type num_range = { nmin : float; nmax : float; ncount : int }

type pred_stats = {
  count : int;
  subjects : int;
  objects : int;
  max_subj_fanout : int;
  max_obj_fanout : int;
  max_pair_fanout : int;
  fanout_hist : int array;
  num_range : num_range option;
}

type t = {
  total_triples : int;
  total_subjects : int;
  min_term_bytes : int;
  max_term_bytes : int;
  preds : (string * pred_stats) list;
  classes : (string * int) list;
}

(* Fanout histogram buckets: floor (log2 f) for f >= 1 caps at 62 on
   64-bit ints, so 63 buckets cover every possible fanout. *)
let hist_buckets = 63

let log2_bucket f =
  let rec go f i = if f <= 1 then i else go (f lsr 1) (i + 1) in
  go (max 1 f) 0

module Term_tbl = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

(* Per-predicate accumulator for the single collection pass. *)
type pred_acc = {
  mutable a_count : int;
  mutable a_subjects : int;
  mutable a_max_subj_fanout : int;
  mutable a_max_obj_fanout : int;
  mutable a_max_pair_fanout : int;
  a_hist : int array;
  a_objs : int Term_tbl.t;  (* object -> occurrence count *)
  mutable a_num : num_range option;
}

let build g =
  let preds : pred_acc Term_tbl.t = Term_tbl.create 64 in
  let classes : int Term_tbl.t = Term_tbl.create 16 in
  let min_bytes = ref max_int and max_bytes = ref 0 in
  let see_term t =
    let b = String.length (Term.lexical t) in
    if b < !min_bytes then min_bytes := b;
    if b > !max_bytes then max_bytes := b
  in
  let acc_for p =
    match Term_tbl.find_opt preds p with
    | Some a -> a
    | None ->
      let a =
        {
          a_count = 0;
          a_subjects = 0;
          a_max_subj_fanout = 0;
          a_max_obj_fanout = 0;
          a_max_pair_fanout = 0;
          a_hist = Array.make hist_buckets 0;
          a_objs = Term_tbl.create 64;
          a_num = None;
        }
      in
      Term_tbl.add preds p a;
      a
  in
  let total_subjects =
    Graph.fold_subject_groups g
      (fun _s triples nsubj ->
        (* Per-subject fanout and (predicate, object) multiplicity are
           local to the group, so both are counted here without a
           second pass. *)
        let local : (Term.t * Term.t, int) Hashtbl.t = Hashtbl.create 8 in
        let fanouts : int Term_tbl.t = Term_tbl.create 8 in
        List.iter
          (fun (tr : Triple.t) ->
            see_term tr.s;
            see_term tr.p;
            see_term tr.o;
            let a = acc_for tr.p in
            a.a_count <- a.a_count + 1;
            Term_tbl.replace a.a_objs tr.o
              (1 + Option.value ~default:0 (Term_tbl.find_opt a.a_objs tr.o));
            (match Term.as_number tr.o with
            | None -> ()
            | Some x ->
              a.a_num <-
                Some
                  (match a.a_num with
                  | None -> { nmin = x; nmax = x; ncount = 1 }
                  | Some r ->
                    {
                      nmin = Float.min r.nmin x;
                      nmax = Float.max r.nmax x;
                      ncount = r.ncount + 1;
                    }));
            if Term.equal tr.p Namespace.rdf_type then
              Term_tbl.replace classes tr.o
                (1 + Option.value ~default:0 (Term_tbl.find_opt classes tr.o));
            Hashtbl.replace local (tr.p, tr.o)
              (1 + Option.value ~default:0 (Hashtbl.find_opt local (tr.p, tr.o)));
            Term_tbl.replace fanouts tr.p
              (1 + Option.value ~default:0 (Term_tbl.find_opt fanouts tr.p)))
          triples;
        Hashtbl.iter
          (fun (p, _o) m ->
            let a = acc_for p in
            if m > a.a_max_pair_fanout then a.a_max_pair_fanout <- m)
          local;
        Term_tbl.iter
          (fun p f ->
            let a = acc_for p in
            a.a_subjects <- a.a_subjects + 1;
            if f > a.a_max_subj_fanout then a.a_max_subj_fanout <- f;
            let b = log2_bucket f in
            a.a_hist.(b) <- a.a_hist.(b) + 1)
          fanouts;
        nsubj + 1)
      0
  in
  let finish (a : pred_acc) =
    let objects = Term_tbl.length a.a_objs in
    let max_obj_fanout = Term_tbl.fold (fun _ m acc -> max m acc) a.a_objs 0 in
    {
      count = a.a_count;
      subjects = a.a_subjects;
      objects;
      max_subj_fanout = a.a_max_subj_fanout;
      max_obj_fanout;
      max_pair_fanout = a.a_max_pair_fanout;
      fanout_hist = a.a_hist;
      num_range = a.a_num;
    }
  in
  let preds =
    Term_tbl.fold (fun p a acc -> (Term.lexical p, finish a) :: acc) preds []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let classes =
    Term_tbl.fold (fun c n acc -> (Term.lexical c, n) :: acc) classes []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    total_triples = Graph.size g;
    total_subjects;
    min_term_bytes = (if !min_bytes = max_int then 0 else !min_bytes);
    max_term_bytes = !max_bytes;
    preds;
    classes;
  }

let pred t p = List.assoc_opt (Term.lexical p) t.preds
let class_count t c = Option.value ~default:0 (List.assoc_opt (Term.lexical c) t.classes)

let avg_subj_fanout ps =
  if ps.subjects = 0 then 1
  else max 1 ((ps.count + ps.subjects - 1) / ps.subjects)

(* ---------------------------------------------------------------- *)
(* JSON round trip *)

let version = 1

let hist_to_json h =
  (* Trim trailing zero buckets for compactness. *)
  let last = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then last := i) h;
  Json.List (List.init (!last + 1) (fun i -> Json.Int h.(i)))

let num_range_to_json = function
  | None -> Json.Null
  | Some r ->
    Json.Obj
      [
        ("min", Json.Float r.nmin);
        ("max", Json.Float r.nmax);
        ("count", Json.Int r.ncount);
      ]

let pred_to_json (iri, ps) =
  Json.Obj
    [
      ("iri", Json.String iri);
      ("count", Json.Int ps.count);
      ("subjects", Json.Int ps.subjects);
      ("objects", Json.Int ps.objects);
      ("max_subj_fanout", Json.Int ps.max_subj_fanout);
      ("max_obj_fanout", Json.Int ps.max_obj_fanout);
      ("max_pair_fanout", Json.Int ps.max_pair_fanout);
      ("fanout_hist", hist_to_json ps.fanout_hist);
      ("num_range", num_range_to_json ps.num_range);
    ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("total_triples", Json.Int t.total_triples);
      ("total_subjects", Json.Int t.total_subjects);
      ("min_term_bytes", Json.Int t.min_term_bytes);
      ("max_term_bytes", Json.Int t.max_term_bytes);
      ("predicates", Json.List (List.map pred_to_json t.preds));
      ( "classes",
        Json.List
          (List.map
             (fun (iri, n) ->
               Json.Obj [ ("iri", Json.String iri); ("count", Json.Int n) ])
             t.classes) );
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let get_int what j =
  match Json.member what j with
  | Some (Json.Int n) -> Ok n
  | _ -> Error (Printf.sprintf "stats catalog: missing integer %S" what)

let get_string what j =
  match Json.member what j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "stats catalog: missing string %S" what)

let get_list what j =
  match Json.member what j with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "stats catalog: missing array %S" what)

let number = function
  | Json.Int n -> Ok (float_of_int n)
  | Json.Float f -> Ok f
  | _ -> Error "stats catalog: expected a number"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let hist_of_json = function
  | Json.List items ->
    let h = Array.make hist_buckets 0 in
    let* () =
      if List.length items > hist_buckets then
        Error "stats catalog: fanout histogram too long"
      else Ok ()
    in
    let* () =
      List.fold_left
        (fun acc item ->
          let* i = acc in
          match item with
          | Json.Int n ->
            h.(i) <- n;
            Ok (i + 1)
          | _ -> Error "stats catalog: non-integer histogram bucket")
        (Ok 0) items
      |> Result.map (fun (_ : int) -> ())
    in
    Ok h
  | _ -> Error "stats catalog: fanout histogram must be an array"

let num_range_of_json = function
  | Json.Null -> Ok None
  | Json.Obj _ as j ->
    let* nmin =
      match Json.member "min" j with
      | Some v -> number v
      | None -> Error "stats catalog: num_range missing \"min\""
    in
    let* nmax =
      match Json.member "max" j with
      | Some v -> number v
      | None -> Error "stats catalog: num_range missing \"max\""
    in
    let* ncount = get_int "count" j in
    Ok (Some { nmin; nmax; ncount })
  | _ -> Error "stats catalog: num_range must be an object or null"

let pred_of_json j =
  let* iri = get_string "iri" j in
  let* count = get_int "count" j in
  let* subjects = get_int "subjects" j in
  let* objects = get_int "objects" j in
  let* max_subj_fanout = get_int "max_subj_fanout" j in
  let* max_obj_fanout = get_int "max_obj_fanout" j in
  let* max_pair_fanout = get_int "max_pair_fanout" j in
  let* fanout_hist =
    match Json.member "fanout_hist" j with
    | Some v -> hist_of_json v
    | None -> Error "stats catalog: missing \"fanout_hist\""
  in
  let* num_range =
    match Json.member "num_range" j with
    | Some v -> num_range_of_json v
    | None -> Error "stats catalog: missing \"num_range\""
  in
  Ok
    ( iri,
      {
        count;
        subjects;
        objects;
        max_subj_fanout;
        max_obj_fanout;
        max_pair_fanout;
        fanout_hist;
        num_range;
      } )

let class_of_json j =
  let* iri = get_string "iri" j in
  let* count = get_int "count" j in
  Ok (iri, count)

let of_json j =
  let* v = get_int "version" j in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "stats catalog: unsupported version %d" v)
  in
  let* total_triples = get_int "total_triples" j in
  let* total_subjects = get_int "total_subjects" j in
  let* min_term_bytes = get_int "min_term_bytes" j in
  let* max_term_bytes = get_int "max_term_bytes" j in
  let* pred_items = get_list "predicates" j in
  let* preds = map_result pred_of_json pred_items in
  let* class_items = get_list "classes" j in
  let* classes = map_result class_of_json class_items in
  Ok
    {
      total_triples;
      total_subjects;
      min_term_bytes;
      max_term_bytes;
      preds;
      classes;
    }

let pp ppf t =
  Fmt.pf ppf "@[<v>catalog: %d triples, %d subjects, term bytes [%d, %d]"
    t.total_triples t.total_subjects t.min_term_bytes t.max_term_bytes;
  List.iter
    (fun (iri, ps) ->
      Fmt.pf ppf "@,  %-28s %7d triples  %6d subj  %6d obj  fanout<=%d%s" iri
        ps.count ps.subjects ps.objects ps.max_subj_fanout
        (match ps.num_range with
        | None -> ""
        | Some r -> Fmt.str "  num [%g, %g]" r.nmin r.nmax))
    t.preds;
  if t.classes <> [] then begin
    Fmt.pf ppf "@,  classes:";
    List.iter (fun (iri, n) -> Fmt.pf ppf "@,    %-26s %7d" iri n) t.classes
  end;
  Fmt.pf ppf "@]"
