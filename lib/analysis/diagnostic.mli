(** Structured, source-located diagnostics.

    Every finding of the static-analysis layers — the AST lint
    ({!Ast_lint}) and the optimizer-invariant verifier ({!Plan_verify}) —
    is a value of {!t}: a severity, a stable rule identifier suitable for
    suppression and testing, a human-readable message, and an optional
    source span. Rendering follows the conventional
    [FILE:LINE:COL: severity[rule] message] shape so editors and CI can
    parse it; [to_json] emits the machine-readable form used by
    [rapida lint --json]. *)

module Srcloc = Rapida_sparql.Srcloc
module Json = Rapida_mapred.Json

type severity = Error | Warning | Info

val severity_name : severity -> string

(** Severity ordering: [Error] ranks above [Warning] above [Info]. *)
val compare_severity : severity -> severity -> int

type t = {
  severity : severity;
  rule : string;  (** stable rule identifier, e.g. ["unbound-var"] *)
  message : string;
  span : Srcloc.span option;  (** [None] for plan-level findings *)
}

val make : ?span:Srcloc.span -> severity -> rule:string -> string -> t

(** [errorf ~rule fmt ...] (and [warningf], [infof]) build a diagnostic
    with a formatted message. *)
val errorf :
  ?span:Srcloc.span -> rule:string -> ('a, Format.formatter, unit, t) format4
  -> 'a

val warningf :
  ?span:Srcloc.span -> rule:string -> ('a, Format.formatter, unit, t) format4
  -> 'a

val infof :
  ?span:Srcloc.span -> rule:string -> ('a, Format.formatter, unit, t) format4
  -> 'a

val is_error : t -> bool

(** [has_errors ds] holds when any diagnostic is [Error]-severity — the
    condition under which [rapida lint] exits 1. *)
val has_errors : t list -> bool

(** [sort ds] orders by source position (unlocated findings last), then
    severity, then rule id — the stable presentation order. *)
val sort : t list -> t list

(** Prints ["LINE:COL: severity[rule] message"] (span elided when
    absent). *)
val pp : t Fmt.t

(** [pp_located ~file] prefixes every line with the originating file (or
    catalog id), giving the conventional grep-able shape. *)
val pp_located : file:string -> t Fmt.t

val to_json : t -> Json.t

(** [report_json ~file ds] is the [--json] document for one input:
    [{"file": ..., "errors": n, "warnings": n, "infos": n,
    "diagnostics": [...]}]. *)
val report_json : file:string -> t list -> Json.t
