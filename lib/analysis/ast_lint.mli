(** Layer 1 of the static analyzer: semantic lint of the SPARQL AST.

    The lint walks every SELECT (outer and nested) and reports structured
    {!Diagnostic.t} findings. Rules and their ids:

    - [parse-error] (error): the source failed to lex or parse; the
      diagnostic carries the failure position.
    - [unbound-var] (error): a variable used in the projection, FILTER,
      GROUP BY, HAVING, ORDER BY, or an aggregate argument is never bound
      by a triple pattern (or a subquery's output) in scope.
    - [ungrouped-projection] (error): a grouped or aggregated SELECT
      projects a plain variable that is not a grouping key — the classic
      SQL/SPARQL aggregation scope error.
    - [filter-unsatisfiable] (warning): a FILTER can never hold — it
      constant-folds to false, or its conjunction implies an empty
      interval for some variable (e.g. [?x > 10 && ?x < 5]).
    - [filter-constant] (warning): a FILTER folds to a constant (true or
      non-boolean) and can be removed.
    - [cartesian-product] (warning): the star-join graph of a SELECT's
      basic graph pattern is disconnected, so evaluation forms a cross
      product.
    - [duplicate-pattern] (warning): the same triple pattern appears
      twice in one basic graph pattern.
    - [duplicate-prefix] (warning): a PREFIX is declared more than once.
    - [unused-prefix] (warning): a declared PREFIX is never used.
    - [unused-var] (info): a variable is bound by a triple pattern but
      referenced nowhere else in its SELECT. Info, not warning: in the
      benchmark workloads such existence-only variables are deliberate —
      the triple constrains matches to subjects carrying the property
      (see DESIGN.md).
    - [analytical-form] (error): the query parses but falls outside the
      analytical normal form the engines evaluate
      ({!Rapida_sparql.Analytical.of_query} rejects it). *)

module Ast = Rapida_sparql.Ast
module Lexer = Rapida_sparql.Lexer
module Srcloc = Rapida_sparql.Srcloc

(** Source index: token-derived spans for variables and PREFIX
    declarations, used to attach locations to AST-level findings (the AST
    itself carries no positions). *)
type index

val empty_index : index
val index_of_tokens : Lexer.located list -> index

(** [var_span index v] is the span of the first occurrence of [?v]. *)
val var_span : index -> Ast.var -> Srcloc.span option

(** [conj_constraints e] is the per-variable numeric constraint set of
    [e]'s top-level conjunction: for each variable compared against
    numeric constants, its {!Interval.Num} bound interval plus the
    equality and disequality constants. This is the single interval
    analysis shared with {!Card_analysis}, which meets these intervals
    against the statistics catalog's literal-range sketches. *)
val conj_constraints :
  Ast.expr -> (Ast.var * Interval.Num.t * float list * float list) list

(** [filter_always_false e] holds when [e] constant-folds to false —
    the trivially-unsatisfiable case, with no variable reasoning. *)
val filter_always_false : Ast.expr -> bool

(** [unsat_conjunction e] is [Some v] when the numeric constraints [e]
    places on variable [v] are contradictory on their own (empty
    interval, conflicting equalities) — the witness behind the
    [filter-unsatisfiable] rule. *)
val unsat_conjunction : Ast.expr -> Ast.var option

(** [lint_query ?index q] runs every AST rule. Without an [index] the
    diagnostics carry no spans. *)
val lint_query : ?index:index -> Ast.query -> Diagnostic.t list

(** [lint_source src] lexes, parses, and lints: parse failures become
    [parse-error] diagnostics, PREFIX hygiene is checked from the token
    stream, and queries outside the analytical fragment get
    [analytical-form]. The result is sorted with {!Diagnostic.sort}. *)
val lint_source : string -> Diagnostic.t list
