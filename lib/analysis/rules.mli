(** Registry of every static-analysis rule.

    One table collects the stable rule identifiers of all three
    analysis layers — the AST lint ({!Ast_lint}), the
    optimizer-invariant verifier ({!Plan_verify}), and the statistics-
    driven cardinality analysis ({!Card_analysis}) — with their default
    severities and one-line documentation. [rapida lint --rules] and
    [rapida analyze --rules] dump it so CI configurations and the README
    rule table never drift from the implementation; the test suite
    checks that every diagnostic the analyzers emit uses a registered
    id with the registered severity. *)

type layer = Ast_lint | Plan_verify | Card_analysis

val layer_name : layer -> string

type rule = {
  id : string;  (** stable identifier, e.g. ["unbound-var"] *)
  layer : layer;
  severity : Diagnostic.severity;
  doc : string;  (** one-line description *)
}

(** Every rule, ordered by layer then id. *)
val all : rule list

val find : string -> rule option

(** Aligned text table: [id  severity  layer  doc]. *)
val pp : rule list Fmt.t

(** JSON array of [{"id", "severity", "layer", "doc"}] objects. *)
val to_json : rule list -> Rapida_mapred.Json.t
