(** Graph statistics catalog for static cardinality analysis.

    One pass over a loaded {!Rapida_rdf.Graph} produces per-predicate
    counts, fanout maxima, a log2 subject-fanout histogram, and a
    numeric range sketch of literal objects — everything
    {!Card_analysis} needs to bound the cardinality of scans, star
    joins, filters, and aggregations without touching the data again.

    All statistics are {e exact} for the graph they were built from
    (the graph is in memory, so a full pass is cheap); "sketch" refers
    to what is kept, not to approximation. Soundness of the analyzer's
    intervals therefore reduces to the propagation rules, not to
    estimation error in the catalog.

    The catalog serializes to a stable JSON document ([version] 1) and
    loads back with {!of_json}, so [rapida analyze] can run against a
    saved catalog without the dataset. *)

open Rapida_rdf

(** Range of the numeric-valued objects of a predicate: min, max, and
    the number of triple occurrences whose object parses as a number
    ({!Rapida_rdf.Term.as_number}). *)
type num_range = { nmin : float; nmax : float; ncount : int }

type pred_stats = {
  count : int;  (** triples with this predicate (duplicates included) *)
  subjects : int;  (** distinct subjects *)
  objects : int;  (** distinct objects *)
  max_subj_fanout : int;  (** max triples sharing one subject *)
  max_obj_fanout : int;  (** max triples sharing one object *)
  max_pair_fanout : int;
      (** max multiplicity of one (subject, object) pair — 1 unless the
          graph holds duplicate triples, which {!Rapida_rdf.Graph} does
          not forbid *)
  fanout_hist : int array;
      (** [fanout_hist.(i)] is the number of subjects whose fanout [f]
          has [floor (log2 f) = i], i.e. [f] in [2^i, 2^(i+1)) *)
  num_range : num_range option;  (** [None] when no object is numeric *)
}

type t = {
  total_triples : int;
  total_subjects : int;
  min_term_bytes : int;
      (** smallest {!Rapida_rdf.Term.lexical} byte length in the graph;
          0 for an empty graph *)
  max_term_bytes : int;
  preds : (string * pred_stats) list;  (** by predicate IRI, sorted *)
  classes : (string * int) list;
      (** object IRI of an [rdf:type] triple → triple count, sorted *)
}

(** [build g] collects the catalog in a single pass over [g]'s subject
    groups. *)
val build : Graph.t -> t

(** [pred t p] is the statistics of predicate [p], [None] when the
    graph has no triple with that predicate (so any scan of [p] is
    exactly empty). *)
val pred : t -> Term.t -> pred_stats option

(** [class_count t c] is the exact number of [(_, rdf:type, c)]
    triples — 0 when the class never occurs. *)
val class_count : t -> Term.t -> int

(** [avg_subj_fanout ps] is [count / subjects] rounded up, at least 1;
    the skew diagnostic compares {!pred_stats.max_subj_fanout} to it. *)
val avg_subj_fanout : pred_stats -> int

val to_json : t -> Rapida_mapred.Json.t

(** [of_json j] rejects unknown versions and malformed documents with a
    descriptive message. Round-trips {!to_json} exactly. *)
val of_json : Rapida_mapred.Json.t -> (t, string) result

(** Human-readable summary table (one line per predicate). *)
val pp : t Fmt.t
