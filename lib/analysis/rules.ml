module Json = Rapida_mapred.Json

type layer = Ast_lint | Plan_verify | Card_analysis

let layer_name = function
  | Ast_lint -> "ast-lint"
  | Plan_verify -> "plan-verify"
  | Card_analysis -> "card-analysis"

type rule = {
  id : string;
  layer : layer;
  severity : Diagnostic.severity;
  doc : string;
}

let rule layer severity id doc = { id; layer; severity; doc }

let all =
  [
    (* Layer 1: AST lint. *)
    rule Ast_lint Error "parse-error" "the source failed to lex or parse";
    rule Ast_lint Error "unbound-var"
      "a projected, filtered, grouped, or ordered variable is never bound";
    rule Ast_lint Error "ungrouped-projection"
      "an aggregated SELECT projects a variable that is not a grouping key";
    rule Ast_lint Error "analytical-form"
      "the query falls outside the analytical normal form the engines run";
    rule Ast_lint Warning "filter-unsatisfiable"
      "a FILTER can never hold (folds to false or implies an empty interval)";
    rule Ast_lint Warning "filter-constant"
      "a FILTER folds to a constant and can be removed";
    rule Ast_lint Warning "cartesian-product"
      "the star-join graph is disconnected, forcing a cross product";
    rule Ast_lint Warning "duplicate-pattern"
      "the same triple pattern appears twice in one basic graph pattern";
    rule Ast_lint Warning "duplicate-prefix"
      "a PREFIX is declared more than once";
    rule Ast_lint Warning "unused-prefix" "a declared PREFIX is never used";
    rule Ast_lint Info "unused-var"
      "a variable is bound by a pattern but referenced nowhere else";
    (* Layer 2: optimizer-invariant verification. *)
    rule Plan_verify Error "composite-cover"
      "the composite pattern does not cover the original stars (Def. 3.1)";
    rule Plan_verify Error "composite-role"
      "merged join variables are not role-equivalent (Def. 3.2)";
    rule Plan_verify Error "nsplit-arity"
      "the n-split does not yield one well-formed pattern per subquery";
    rule Plan_verify Error "aggjoin-keys"
      "grouping keys or aggregate arguments missing from split bindings";
    rule Plan_verify Error "workflow-dag"
      "the workflow's join order is not a connected left-deep sequence";
    rule Plan_verify Error "opt-join-order"
      "an optimizer-enumerated star order is not a realizable permutation";
    rule Plan_verify Error "schema-mismatch"
      "an engine's result schema differs from the static expectation";
    rule Plan_verify Warning "mem-overcommit"
      "estimated Agg-Join hash-table footprint exceeds the task heap";
    (* Layer 3: statistics-driven cardinality analysis. *)
    rule Card_analysis Warning "statically-empty-join"
      "a star or inter-star join has upper bound 0 and returns nothing";
    rule Card_analysis Warning "filter-selectivity-zero"
      "a FILTER's constraints are disjoint from the catalog's value ranges";
    rule Card_analysis Warning "mapjoin-overcommit-predicted"
      "the planned map-join's build side exceeds the heap at the lower bound";
    rule Card_analysis Info "skewed-star"
      "a star predicate's maximum subject fanout far exceeds its average";
    rule Card_analysis Info "broadcast-feasible"
      "every build side fits under the map-join threshold at the upper bound";
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let pp ppf rules =
  let width f = List.fold_left (fun w r -> max w (String.length (f r))) 0 rules in
  let idw = width (fun r -> r.id)
  and sevw = width (fun r -> Diagnostic.severity_name r.severity)
  and layw = width (fun r -> layer_name r.layer) in
  List.iter
    (fun r ->
      Fmt.pf ppf "%-*s  %-*s  %-*s  %s@." idw r.id sevw
        (Diagnostic.severity_name r.severity)
        layw (layer_name r.layer) r.doc)
    rules

let to_json rules =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("id", Json.String r.id);
             ("severity", Json.String (Diagnostic.severity_name r.severity));
             ("layer", Json.String (layer_name r.layer));
             ("doc", Json.String r.doc);
           ])
       rules)
