module Srcloc = Rapida_sparql.Srcloc
module Json = Rapida_mapred.Json

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2
let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

type t = {
  severity : severity;
  rule : string;
  message : string;
  span : Srcloc.span option;
}

let make ?span severity ~rule message = { severity; rule; message; span }

let kfmt ?span severity ~rule fmt =
  Fmt.kstr (fun message -> make ?span severity ~rule message) fmt

let errorf ?span ~rule fmt = kfmt ?span Error ~rule fmt
let warningf ?span ~rule fmt = kfmt ?span Warning ~rule fmt
let infof ?span ~rule fmt = kfmt ?span Info ~rule fmt
let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

let compare a b =
  let by_span =
    match (a.span, b.span) with
    | Some sa, Some sb -> Srcloc.compare_pos sa.Srcloc.first sb.Srcloc.first
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  if by_span <> 0 then by_span
  else
    let by_sev = compare_severity a.severity b.severity in
    if by_sev <> 0 then by_sev else String.compare a.rule b.rule

let sort ds = List.stable_sort compare ds

let pp ppf d =
  (match d.span with
  | Some s -> Fmt.pf ppf "%a: " Srcloc.pp_span s
  | None -> ());
  Fmt.pf ppf "%s[%s] %s" (severity_name d.severity) d.rule d.message

let pp_located ~file ppf d = Fmt.pf ppf "%s:%a" file pp d

let to_json d =
  let span_fields =
    match d.span with
    | None -> []
    | Some s ->
      [
        ("line", Json.Int s.Srcloc.first.Srcloc.line);
        ("col", Json.Int s.Srcloc.first.Srcloc.col);
        ("end_line", Json.Int s.Srcloc.last.Srcloc.line);
        ("end_col", Json.Int s.Srcloc.last.Srcloc.col);
      ]
  in
  Json.Obj
    ([
       ("severity", Json.String (severity_name d.severity));
       ("rule", Json.String d.rule);
       ("message", Json.String d.message);
     ]
    @ span_fields)

let report_json ~file ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Json.Obj
    [
      ("file", Json.String file);
      ("errors", Json.Int (count Error));
      ("warnings", Json.Int (count Warning));
      ("infos", Json.Int (count Info));
      ("diagnostics", Json.List (List.map to_json (sort ds)));
    ]
