(** Static cardinality and cost analysis of analytical query plans.

    An abstract interpretation of the analytical normal form over the
    interval domain {!Interval.Card}: every operator of an
    engine-independent logical plan — scans, star joins, inter-star
    joins, filters, aggregation, and the outer join of subquery
    results — is annotated with a {e sound} cardinality interval
    [[lo, hi]] derived from a {!Stats_catalog}, plus a byte interval
    sized like {!Rapida_relational.Table.row_size_bytes}.

    Soundness is the contract: for every node, the true cardinality of
    the corresponding intermediate result (as computed by {!measure},
    whose semantics mirror the reference engine) lies inside the node's
    interval whenever the catalog was built from the same graph. The
    test suite enforces this across the whole query catalog, seeds, and
    engines. Estimates ({!Interval.Card.point_estimate}, q-error) are
    derived from the intervals and carry no such guarantee.

    On top of the intervals the analysis derives stats-aware
    diagnostics (all on the {!Diagnostic} machinery):

    - [statically-empty-join] (warning): a star join or inter-star join
      has upper bound 0 — e.g. a predicate absent from the catalog —
      so the subquery provably returns nothing.
    - [filter-selectivity-zero] (warning): a FILTER's numeric
      constraints are disjoint from the catalog's literal-range sketch
      of every predicate that can bind the variable, so the filter can
      never hold.
    - [skewed-star] (info): a star pattern's predicate has a maximum
      subject fanout far above its average — the reduce-side skew
      signature for that star's join key.
    - [broadcast-feasible] (info): every build-side table of a star
      join is below the map-join threshold and the combined build side
      fits the task heap {e at the upper bound} — the star join is
      guaranteed to run map-only.
    - [mapjoin-overcommit-predicted] (warning): the planner will pick
      the map-join (upper bounds below the threshold) but the build
      side exceeds the task heap already {e at the lower bound} — the
      map-only attempt is guaranteed to fall back (or OOM under
      degraded settings). *)

open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical

type op =
  | Scan of Ast.triple_pattern
  | Star_join of Star.t  (** children: the star's scans *)
  | Filter of Ast.expr list
      (** star-local (pushed) or subquery-pending filters *)
  | Join of Ast.var list
      (** inter-star natural join on the shared variables;
          children: accumulated plan, next star subtree *)
  | Cross  (** disconnected star components: cartesian product *)
  | Agg of Analytical.subquery
      (** grouping + HAVING + the GROUP-BY-ALL total row *)
  | Final_join  (** outer natural join of the subquery results *)
  | Result  (** outer projection, ORDER BY, LIMIT *)

type node = {
  id : int;  (** preorder index, root = 0 *)
  op : op;
  label : string;  (** one-line rendering for plan output *)
  ncols : int;  (** columns (bound variables) of the node's output *)
  card : Interval.Card.t;  (** sound bound on output rows *)
  bytes : Interval.Card.t;  (** derived bound on output bytes *)
  children : node list;
}

type t = {
  query : Analytical.t;
  root : node;
  diagnostics : Diagnostic.t list;  (** sorted with {!Diagnostic.sort} *)
}

(** [analyze catalog q] annotates [q]'s logical plan. The byte-level
    diagnostics compare against [map_join_threshold] (default
    {!Rapida_core.Plan_util.default_options}) and [memory]'s task heap
    (default {!Rapida_mapred.Memory.default}). *)
val analyze :
  ?map_join_threshold:int ->
  ?memory:Rapida_mapred.Memory.config ->
  Stats_catalog.t ->
  Analytical.t ->
  t

(** Preorder list of the plan's nodes (root first). *)
val nodes : t -> node list

(** A plan node paired with the {e exact} cardinality of its
    intermediate result on a concrete graph. *)
type measured = { m_node : node; actual : int; m_children : measured list }

(** [measure g t] evaluates every plan node against [g] with reference
    semantics (identical to {!Rapida_refengine.Ref_engine} at the
    root). The soundness property under test:
    [Interval.Card.contains m_node.card actual] for every node when
    [t]'s catalog was built from [g]. *)
val measure : Graph.t -> t -> measured

(** Preorder list of (node, actual) pairs. *)
val measured_list : measured -> (node * int) list

(** [root_q_error m] is the q-error of the root estimate vs the actual
    result cardinality. *)
val root_q_error : measured -> float

val pp_plan : t Fmt.t

(** Plan tree with estimated intervals and actual cardinalities side by
    side — the [query --analyze] report. *)
val pp_measured : measured Fmt.t

(** Machine-readable plan: nested nodes with intervals, plus the
    diagnostics array. *)
val to_json : t -> Rapida_mapred.Json.t

(** {1 Planner-facing primitives}

    The interval machinery the plan annotation is built from, exposed
    for [Rapida_planner]'s join enumeration. All bounds share the
    soundness contract of {!analyze}. *)

(** [scan_interval cat tp] is the sound cardinality interval of a single
    triple-pattern scan. *)
val scan_interval : Stats_catalog.t -> Ast.triple_pattern -> Interval.Card.t

(** [star_interval cat star] is the sound cardinality interval of the
    star join of [star]'s patterns (the Star_join node bound). *)
val star_interval : Stats_catalog.t -> Star.t -> Interval.Card.t

(** [join_match_bound cat star endpoint] is the most rows of [star] that
    can join one fixed value arriving through [endpoint] — the
    per-match fanout the inter-star join rule multiplies by. *)
val join_match_bound : Stats_catalog.t -> Star.t -> Star.endpoint -> int

(** [bytes_interval cat ~ncols card] sizes [card] rows of [ncols]
    columns like {!Rapida_relational.Table.row_size_bytes} against the
    catalog's term-length range. *)
val bytes_interval :
  Stats_catalog.t -> ncols:int -> Interval.Card.t -> Interval.Card.t
