open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Binding = Rapida_sparql.Binding
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Plan_util = Rapida_core.Plan_util
module Memory = Rapida_mapred.Memory
module Json = Rapida_mapred.Json
module Card = Interval.Card

type op =
  | Scan of Ast.triple_pattern
  | Star_join of Star.t
  | Filter of Ast.expr list
  | Join of Ast.var list
  | Cross
  | Agg of Analytical.subquery
  | Final_join
  | Result

type node = {
  id : int;
  op : op;
  label : string;
  ncols : int;
  card : Card.t;
  bytes : Card.t;
  children : node list;
}

type t = {
  query : Analytical.t;
  root : node;
  diagnostics : Diagnostic.t list;
}

(* Local saturating arithmetic on raw int bounds ([max_int] =
   unbounded), shared with {!Interval.Card}'s semantics. *)
let sat_add a b = if a > max_int - b then max_int else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

let dedup vars =
  List.rev
    (List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) [] vars)

(* ---------------------------------------------------------------- *)
(* Per-pattern catalog bounds *)

(* A numeric constant object can only match a predicate whose numeric
   object range covers it: term equality preserves the parsed value. *)
let const_obj_possible (ps : Stats_catalog.pred_stats) (o : Term.t) =
  match Term.as_number o with
  | None -> true
  | Some x -> (
    match ps.num_range with
    | None -> false
    | Some r -> x >= r.nmin && x <= r.nmax)

let scan_card cat (tp : Ast.triple_pattern) =
  match tp.tp_p with
  | Ast.Nvar pv -> (
    match (tp.tp_s, tp.tp_o) with
    | Ast.Nvar sv, Ast.Nvar ov when sv <> ov && sv <> pv && ov <> pv ->
      Card.exact cat.Stats_catalog.total_triples
    | _ -> Card.make 0 cat.Stats_catalog.total_triples)
  | Ast.Nterm p -> (
    match Stats_catalog.pred cat p with
    | None -> Card.zero
    | Some ps -> (
      let is_type = Term.equal p Namespace.rdf_type in
      match (tp.tp_s, tp.tp_o) with
      | Ast.Nvar sv, Ast.Nvar ov when sv <> ov -> Card.exact ps.count
      | Ast.Nvar _, Ast.Nvar _ -> Card.make 0 ps.count
      | Ast.Nvar _, Ast.Nterm o ->
        if is_type then Card.exact (Stats_catalog.class_count cat o)
        else if not (const_obj_possible ps o) then Card.zero
        else Card.make 0 (min ps.count ps.max_obj_fanout)
      | Ast.Nterm _, Ast.Nvar _ -> Card.make 0 ps.max_subj_fanout
      | Ast.Nterm _, Ast.Nterm o ->
        if (not is_type) && not (const_obj_possible ps o) then Card.zero
        else Card.make 0 ps.max_pair_fanout))

(* Most rows one fixed subject can contribute through one pattern. *)
let per_subj_max cat (tp : Ast.triple_pattern) =
  match tp.tp_p with
  | Ast.Nvar _ -> max_int
  | Ast.Nterm p -> (
    match Stats_catalog.pred cat p with
    | None -> 0
    | Some ps -> (
      match tp.tp_o with
      | Ast.Nvar _ -> ps.max_subj_fanout
      | Ast.Nterm o ->
        if const_obj_possible ps o then ps.max_pair_fanout else 0))

(* Upper bound on the distinct subjects a pattern admits. *)
let subj_hi cat (tp : Ast.triple_pattern) =
  match tp.tp_p with
  | Ast.Nvar _ -> cat.Stats_catalog.total_subjects
  | Ast.Nterm p -> (
    match Stats_catalog.pred cat p with
    | None -> 0
    | Some ps -> (
      match tp.tp_o with
      | Ast.Nvar _ -> ps.subjects
      | Ast.Nterm o ->
        if Term.equal p Namespace.rdf_type then Stats_catalog.class_count cat o
        else if const_obj_possible ps o then min ps.subjects ps.max_obj_fanout
        else 0))

(* Lower bound on the distinct subjects a pattern admits; only the
   shapes with exact subject accounting contribute, the rest return 0
   (weakening the Bonferroni sum, never breaking it). *)
let subj_lo cat (tp : Ast.triple_pattern) =
  match tp.tp_p with
  | Ast.Nvar _ -> 0
  | Ast.Nterm p -> (
    match Stats_catalog.pred cat p with
    | None -> 0
    | Some ps -> (
      match tp.tp_o with
      | Ast.Nvar _ -> ps.subjects
      | Ast.Nterm o ->
        if Term.equal p Namespace.rdf_type then
          (* class_count counts triples; duplicate triples inflate it
             by at most the pair fanout. *)
          let c = Stats_catalog.class_count cat o in
          let dup = max 1 ps.max_pair_fanout in
          (c + dup - 1) / dup
        else 0))

(* The Bonferroni lower bound is only valid when every pattern binds
   the same subject variable and no other variable is shared — then a
   subject matching all patterns yields at least one combined row. *)
let star_lo_applicable (star : Star.t) =
  match star.subject with
  | Ast.Nterm _ -> false
  | Ast.Nvar sv ->
    let nonsubj = ref [] in
    let clean = ref true in
    List.iter
      (fun (tp : Ast.triple_pattern) ->
        (match tp.tp_p with
        | Ast.Nvar v ->
          if v = sv || List.mem v !nonsubj then clean := false
          else nonsubj := v :: !nonsubj
        | Ast.Nterm _ -> ());
        match tp.tp_o with
        | Ast.Nvar v ->
          if v = sv || List.mem v !nonsubj then clean := false
          else nonsubj := v :: !nonsubj
        | Ast.Nterm _ -> ())
      star.patterns;
    !clean

let star_card cat (star : Star.t) scan_cards =
  let product_hi =
    List.fold_left (fun acc (c : Card.t) -> sat_mul acc c.hi) 1 scan_cards
  in
  let per_subj =
    List.fold_left (fun acc tp -> sat_mul acc (per_subj_max cat tp)) 1
      star.patterns
  in
  let subj_bound =
    List.fold_left (fun acc tp -> min acc (subj_hi cat tp)) max_int star.patterns
  in
  let hi =
    match star.subject with
    | Ast.Nterm _ -> min product_hi per_subj
    | Ast.Nvar _ -> min product_hi (sat_mul subj_bound per_subj)
  in
  let lo =
    if hi = 0 || not (star_lo_applicable star) then 0
    else
      let k = List.length star.patterns in
      let sum = List.fold_left (fun acc tp -> sat_add acc (subj_lo cat tp)) 0 star.patterns in
      max 0 (sum - ((k - 1) * cat.Stats_catalog.total_subjects))
  in
  Card.make lo hi

(* Most rows of [star] that can join one fixed value arriving through
   [endpoint] (the right side of a join edge). *)
let per_match_bound cat (star : Star.t) (endpoint : Star.endpoint) =
  match endpoint.role with
  | Star.Subject ->
    List.fold_left (fun acc tp -> sat_mul acc (per_subj_max cat tp)) 1
      star.patterns
  | Star.Property -> max_int
  | Star.Object -> (
    match endpoint.prop with
    | None -> max_int
    | Some p -> (
      match Stats_catalog.pred cat p with
      | None -> 0
      | Some ps ->
        (* Triples carrying the fixed object under [p] bound the
           matching (subject, multiplicity) mass; the star's other
           patterns then fan out per subject. *)
        let skipped = ref false in
        let others =
          List.fold_left
            (fun acc (tp : Ast.triple_pattern) ->
              match tp.tp_p with
              | Ast.Nterm p' when (not !skipped) && Term.equal p' p ->
                skipped := true;
                acc
              | _ -> sat_mul acc (per_subj_max cat tp))
            1 star.patterns
        in
        sat_mul ps.max_obj_fanout others))

(* ---------------------------------------------------------------- *)
(* Filter analysis against the catalog's literal ranges *)

(* Variables bound only as the object of constant-predicate patterns,
   with those predicates. *)
let object_only_preds (bgp : Ast.triple_pattern list) v =
  let impure = ref false in
  let preds = ref [] in
  List.iter
    (fun (tp : Ast.triple_pattern) ->
      (match tp.tp_s with Ast.Nvar s when s = v -> impure := true | _ -> ());
      (match tp.tp_p with Ast.Nvar p when p = v -> impure := true | _ -> ());
      match (tp.tp_o, tp.tp_p) with
      | Ast.Nvar o, Ast.Nterm p when o = v -> preds := p :: !preds
      | Ast.Nvar o, Ast.Nvar _ when o = v -> impure := true
      | _ -> ())
    bgp;
  if !impure || !preds = [] then None else Some !preds

(* [Some pred_iri] when the numeric constraints of [f] on some variable
   are incompatible with the catalog range of every value that variable
   can take — the filter can never hold. Only predicates whose objects
   are all numeric support the conclusion (mixed-type objects can
   satisfy comparisons lexically). *)
let filter_zero_witness cat (bgp : Ast.triple_pattern list) f =
  List.fold_left
    (fun acc (v, iv, eqs, _nes) ->
      match acc with
      | Some _ -> acc
      | None -> (
        let constrained =
          eqs <> [] || iv.Interval.Num.lo <> None || iv.Interval.Num.hi <> None
        in
        if not constrained then None
        else
          match object_only_preds bgp v with
          | None -> None
          | Some preds ->
            List.fold_left
              (fun acc p ->
                match acc with
                | Some _ -> acc
                | None -> (
                  match Stats_catalog.pred cat p with
                  | None -> None (* the scan bound already reports 0 *)
                  | Some ps -> (
                    match ps.num_range with
                    | Some r when r.ncount = ps.count ->
                      let range = Interval.Num.closed r.nmin r.nmax in
                      let meet = Interval.Num.inter iv range in
                      if
                        Interval.Num.is_empty meet
                        || List.exists
                             (fun x -> not (Interval.Num.mem x range))
                             eqs
                      then Some (v, Term.lexical p, r)
                      else None
                    | _ -> None)))
              None preds))
    None
    (Ast_lint.conj_constraints f)

(* ---------------------------------------------------------------- *)
(* Byte bounds and labels *)

(* Mirrors {!Rapida_relational.Table.row_size_bytes}: 4 + per-cell
   lexical length + 2. *)
let bytes_of cat ncols (card : Card.t) =
  let row_lo = 4 + (ncols * (cat.Stats_catalog.min_term_bytes + 2)) in
  let row_hi = 4 + (ncols * (cat.Stats_catalog.max_term_bytes + 2)) in
  Card.make (sat_mul card.lo row_lo) (sat_mul card.hi row_hi)

let pattern_vars_dedup tps = dedup (List.concat_map Ast.pattern_vars tps)

let subject_label = function
  | Ast.Nvar v -> "?" ^ v
  | Ast.Nterm t -> Term.to_string t

let mk cat op label ncols card children =
  { id = -1; op; label; ncols; card; bytes = bytes_of cat ncols card; children }

(* ---------------------------------------------------------------- *)
(* Diagnostics *)

let skew_ratio = 8
let skew_min_fanout = 16

let star_diagnostics cat ~map_join_threshold ~heap ~sq_id (star : Star.t)
    (scans : node list) (star_card : Card.t) add =
  let where = Fmt.str "subquery %d, star %s" sq_id (subject_label star.subject) in
  if star_card.Card.hi = 0 then begin
    let empty_preds =
      List.filter_map
        (fun (tp : Ast.triple_pattern) ->
          match tp.tp_p with
          | Ast.Nterm p when Stats_catalog.pred cat p = None ->
            Some (Term.lexical p)
          | _ -> None)
        star.patterns
    in
    add
      (Diagnostic.warningf ~rule:"statically-empty-join"
         "%s is statically empty%s: the catalog bounds it to 0 rows" where
         (match empty_preds with
         | [] -> ""
         | ps -> Fmt.str " (no triples for %s)" (String.concat ", " ps)))
  end;
  List.iter
    (fun (tp : Ast.triple_pattern) ->
      match tp.tp_p with
      | Ast.Nterm p -> (
        match Stats_catalog.pred cat p with
        | Some ps
          when ps.max_subj_fanout >= skew_min_fanout
               && ps.max_subj_fanout
                  >= skew_ratio * Stats_catalog.avg_subj_fanout ps ->
          add
            (Diagnostic.infof ~rule:"skewed-star"
               "%s: predicate %s is skewed (max %d triples per subject, \
                average %d) — its star join key will hotspot one reducer"
               where (Term.lexical p) ps.max_subj_fanout
               (Stats_catalog.avg_subj_fanout ps))
        | _ -> ())
      | Ast.Nvar _ -> ())
    star.patterns;
  (* Broadcast feasibility mirrors Plan_util.star_join: every table but
     the largest must fit the map-join threshold, and their combined
     size the task heap. *)
  if List.length scans >= 2 && star_card.Card.hi > 0 then begin
    let sizes = List.map (fun n -> n.bytes) scans in
    let max_hi = List.fold_left (fun acc (b : Card.t) -> max acc b.hi) 0 sizes in
    let build_his, build_los =
      (* Drop one table attaining the maximal upper bound: the streamed
         side. *)
      let dropped = ref false in
      List.fold_left
        (fun (his, los) (b : Card.t) ->
          if (not !dropped) && b.hi = max_hi then begin
            dropped := true;
            (his, los)
          end
          else (b.hi :: his, b.lo :: los))
        ([], []) sizes
    in
    let all_small = List.for_all (fun h -> h < map_join_threshold) build_his in
    let sum_hi = List.fold_left sat_add 0 build_his in
    let sum_lo = List.fold_left sat_add 0 build_los in
    if all_small && sum_hi < heap then
      add
        (Diagnostic.infof ~rule:"broadcast-feasible"
           "%s: build side is at most %d bytes (< %d-byte map-join threshold, \
            < %d-byte task heap) — the star join is guaranteed map-only"
           where sum_hi map_join_threshold heap)
    else if all_small && sum_lo >= heap then
      add
        (Diagnostic.warningf ~rule:"mapjoin-overcommit-predicted"
           "%s: the planner will broadcast this star join (every build table \
            under the %d-byte threshold) but the build side is at least %d \
            bytes, over the %d-byte task heap — the map-join is guaranteed \
            to fall back"
           where map_join_threshold sum_lo heap)
  end

(* ---------------------------------------------------------------- *)
(* Plan construction *)

let filter_node cat ~sq_id bgp filters child add =
  let zero =
    List.exists
      (fun f ->
        Ast_lint.filter_always_false f
        || Ast_lint.unsat_conjunction f <> None)
      filters
    ||
    List.exists
      (fun f ->
        match filter_zero_witness cat bgp f with
        | None -> false
        | Some (v, pred, r) ->
          add
            (Diagnostic.warningf ~rule:"filter-selectivity-zero"
               "subquery %d: FILTER %a can never hold — ?%s only takes %s \
                values in [%g, %g]"
               sq_id Ast.pp_expr f v pred r.Stats_catalog.nmin
               r.Stats_catalog.nmax);
          true)
      filters
  in
  let card = if zero then Card.zero else Card.drop_lo child.card in
  mk cat (Filter filters)
    (Fmt.str "filter (%d predicate%s)" (List.length filters)
       (if List.length filters = 1 then "" else "s"))
    child.ncols card [ child ]

let star_subtree cat ~map_join_threshold ~heap ~sq_id bgp star local_filters add
    =
  let scans =
    List.map
      (fun tp ->
        let card = scan_card cat tp in
        mk cat (Scan tp)
          (Fmt.str "scan %a" Ast.pp_triple_pattern tp)
          (List.length (dedup (Ast.pattern_vars tp)))
          card [])
      star.Star.patterns
  in
  let base =
    match scans with
    | [ only ] ->
      if Card.is_empty only.card then
        add
          (Diagnostic.warningf ~rule:"statically-empty-join"
             "subquery %d, star %s is statically empty: the catalog bounds \
              its only scan to 0 rows"
             sq_id
             (subject_label star.Star.subject));
      only
    | _ ->
      let card = star_card cat star (List.map (fun n -> n.card) scans) in
      star_diagnostics cat ~map_join_threshold ~heap ~sq_id star scans card add;
      mk cat (Star_join star)
        (Fmt.str "star-join %s (%d patterns)"
           (subject_label star.Star.subject)
           (List.length scans))
        (List.length (pattern_vars_dedup star.Star.patterns))
        card scans
  in
  match local_filters with
  | [] -> base
  | fs -> filter_node cat ~sq_id bgp fs base add

let group_var_bound cat (sq : Analytical.subquery) v =
  List.fold_left
    (fun acc (star : Star.t) ->
      let is_subject =
        match star.subject with Ast.Nvar sv -> sv = v | Ast.Nterm _ -> false
      in
      if is_subject then
        List.fold_left (fun acc tp -> min acc (subj_hi cat tp)) acc star.patterns
      else
        List.fold_left
          (fun acc (tp : Ast.triple_pattern) ->
            match (tp.tp_o, tp.tp_p) with
            | Ast.Nvar ov, Ast.Nterm p when ov = v -> (
              match Stats_catalog.pred cat p with
              | None -> 0
              | Some ps -> min acc ps.objects)
            | _ -> acc)
          acc star.patterns)
    max_int sq.stars

let subquery_plan cat ~map_join_threshold ~heap (sq : Analytical.subquery) add =
  (* Attach each filter to the first star covering its variables. *)
  let assignments =
    List.map
      (fun f ->
        let fv = Ast.expr_vars f in
        let star =
          List.find_opt
            (fun (star : Star.t) ->
              let sv = pattern_vars_dedup star.Star.patterns in
              List.for_all (fun v -> List.mem v sv) fv)
            sq.stars
        in
        (f, Option.map (fun (s : Star.t) -> s.Star.id) star))
      sq.filters
  in
  let local_for (star : Star.t) =
    List.filter_map
      (fun (f, s) -> if s = Some star.Star.id then Some f else None)
      assignments
  in
  let pending = List.filter_map (fun (f, s) -> if s = None then Some f else None) assignments in
  let subtrees =
    List.map
      (fun star ->
        ( star,
          star_subtree cat ~map_join_threshold ~heap ~sq_id:sq.sq_id sq.bgp star
            (local_for star) add ))
      sq.stars
  in
  let joined =
    match subtrees with
    | [] -> invalid_arg "Card_analysis: subquery with no stars"
    | (_, first) :: rest ->
      List.fold_left
        (fun (acc : node) ((star : Star.t), subtree) ->
          let connecting =
            List.filter
              (fun (e : Star.edge) -> e.right.Star.star = star.Star.id)
              sq.edges
          in
          let ncols = acc.ncols + subtree.ncols
                      - List.length
                          (List.filter
                             (fun v ->
                               List.mem v (pattern_vars_dedup star.Star.patterns))
                             (dedup
                                (List.concat_map
                                   (fun (e : Star.edge) -> [ e.Star.var ])
                                   connecting)))
          in
          match connecting with
          | [] ->
            let card = Card.mul acc.card subtree.card in
            mk cat Cross "cross-join (disconnected stars)" ncols card
              [ acc; subtree ]
          | edges ->
            let vars = dedup (List.map (fun (e : Star.edge) -> e.Star.var) edges) in
            let hi =
              List.fold_left
                (fun hi (e : Star.edge) ->
                  min hi
                    (sat_mul acc.card.Card.hi
                       (per_match_bound cat star e.Star.right)))
                (sat_mul acc.card.Card.hi subtree.card.Card.hi)
                edges
            in
            let card = Card.make 0 hi in
            if Card.is_empty card && acc.card.Card.hi > 0
               && subtree.card.Card.hi > 0
            then
              add
                (Diagnostic.warningf ~rule:"statically-empty-join"
                   "subquery %d: the join on %s is statically empty" sq.sq_id
                   (String.concat ", " (List.map (fun v -> "?" ^ v) vars)));
            mk cat (Join vars)
              (Fmt.str "join on %s"
                 (String.concat ", " (List.map (fun v -> "?" ^ v) vars)))
              ncols card [ acc; subtree ])
        first rest
  in
  let filtered =
    match pending with
    | [] -> joined
    | fs -> filter_node cat ~sq_id:sq.sq_id sq.bgp fs joined add
  in
  let agg_card =
    if sq.group_by = [] then Card.exact 1
    else begin
      let groups_hi =
        List.fold_left
          (fun acc v -> sat_mul acc (group_var_bound cat sq v))
          1 sq.group_by
      in
      Card.make
        (min filtered.card.Card.lo 1)
        (min filtered.card.Card.hi groups_hi)
    end
  in
  let agg_card = if sq.having = [] then agg_card else Card.drop_lo agg_card in
  mk cat (Agg sq)
    (Fmt.str "agg sq%d%s%s" sq.sq_id
       (match sq.group_by with
       | [] -> " (group by ALL)"
       | vs ->
         Fmt.str " (group by %s)" (String.concat ", " (List.map (fun v -> "?" ^ v) vs)))
       (if sq.having = [] then "" else ", having"))
    (List.length (Analytical.output_columns sq))
    agg_card [ filtered ]

let renumber root =
  let c = ref (-1) in
  let rec go n =
    incr c;
    let id = !c in
    { n with id; children = List.map go n.children }
  in
  go root

let analyze ?map_join_threshold ?(memory = Memory.default) cat
    (q : Analytical.t) =
  let map_join_threshold =
    match map_join_threshold with
    | Some t -> t
    | None -> Plan_util.default_options.Plan_util.map_join_threshold
  in
  let heap = memory.Memory.task_heap_bytes in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let sub_plans =
    List.map
      (fun sq -> subquery_plan cat ~map_join_threshold ~heap sq add)
      q.subqueries
  in
  let joined =
    match sub_plans with
    | [] -> invalid_arg "Card_analysis.analyze: no subqueries"
    | [ only ] -> only
    | first :: _ ->
      (* Pairwise natural-join bounds over the subquery outputs: group
         keys are distinct per table, so a join on the full key set of
         one side cannot exceed the other side's cardinality. *)
      let card, ncols =
        List.fold_left
          (fun ((acc : Card.t), cols) (sq, (n : node)) ->
            let hi = sat_mul acc.Card.hi n.card.Card.hi in
            let jv =
              List.concat_map
                (fun sq' -> Analytical.join_vars sq' sq)
                (List.filter
                   (fun (sq' : Analytical.subquery) ->
                     sq'.sq_id < sq.Analytical.sq_id)
                   q.subqueries)
              |> dedup
            in
            let full_key (s : Analytical.subquery) =
              s.group_by <> [] && List.for_all (fun v -> List.mem v jv) s.group_by
            in
            let hi = if full_key sq then min hi acc.Card.hi else hi in
            let lo = if jv = [] then sat_mul acc.Card.lo n.card.Card.lo else 0 in
            let shared = List.length (List.filter (fun v -> List.mem v jv) (Analytical.output_columns sq)) in
            (Card.make lo hi, cols + n.ncols - shared))
          (first.card, first.ncols)
          (List.tl (List.combine q.subqueries sub_plans))
      in
      mk cat Final_join
        (Fmt.str "final-join (%d subqueries)" (List.length sub_plans))
        ncols card sub_plans
  in
  let result_card =
    match q.limit with None -> joined.card | Some l -> Card.cap joined.card l
  in
  let result_ncols =
    match q.outer_projection with [] -> joined.ncols | items -> List.length items
  in
  let root =
    mk cat Result
      (Fmt.str "result%s%s"
         (if q.order_by = [] then "" else " (ordered)")
         (match q.limit with None -> "" | Some l -> Fmt.str " (limit %d)" l))
      result_ncols result_card [ joined ]
  in
  { query = q; root = renumber root; diagnostics = Diagnostic.sort !diags }

let nodes t =
  let rec go n acc = List.fold_left (fun acc c -> go c acc) (n :: acc) n.children in
  List.rev (go t.root [])

(* ---------------------------------------------------------------- *)
(* Exact measurement with reference semantics *)

type measured = { m_node : node; actual : int; m_children : measured list }

type payload = Bindings of Binding.t list | Rel of Table.t

let scan_bindings g (tp : Ast.triple_pattern) =
  let candidates =
    match tp.tp_s with
    | Ast.Nterm s -> Graph.by_subject g s
    | Ast.Nvar _ -> (
      match tp.tp_p with
      | Ast.Nterm p -> Graph.by_property g p
      | Ast.Nvar _ -> Graph.triples g)
  in
  List.filter_map
    (fun triple -> Binding.match_triple tp triple Binding.empty)
    candidates

let eval_bgp g bgp =
  let candidates (tp : Ast.triple_pattern) binding =
    let subject =
      match tp.tp_s with
      | Ast.Nterm t -> Some t
      | Ast.Nvar v -> Binding.lookup binding v
    in
    match subject with
    | Some s -> Graph.by_subject g s
    | None -> (
      match tp.tp_p with
      | Ast.Nterm p -> Graph.by_property g p
      | Ast.Nvar _ -> Graph.triples g)
  in
  List.fold_left
    (fun bindings tp ->
      List.concat_map
        (fun b ->
          List.filter_map
            (fun triple -> Binding.match_triple tp triple b)
            (candidates tp b))
        bindings)
    [ Binding.empty ] bgp

(* Hash join of two binding sets on their shared variables. *)
let join_bindings left right =
  match (left, right) with
  | [], _ | _, [] -> []
  | l0 :: _, r0 :: _ ->
    let shared =
      List.filter_map
        (fun (v, _) -> if List.mem_assoc v r0 then Some v else None)
        l0
    in
    let key b = List.map (fun v -> Binding.lookup b v) shared in
    let index = Hashtbl.create (List.length right) in
    List.iter
      (fun r ->
        let k = key r in
        Hashtbl.replace index k (r :: Option.value ~default:[] (Hashtbl.find_opt index k)))
      right;
    List.concat_map
      (fun l ->
        match Hashtbl.find_opt index (key l) with
        | None -> []
        | Some rs -> List.rev_map (fun r -> Binding.merge l r) rs)
      left

let aggregate_table (sq : Analytical.subquery) bindings =
  let vars = pattern_vars_dedup sq.bgp in
  let rows =
    List.map
      (fun b -> Array.of_list (List.map (fun v -> Binding.lookup b v) vars))
      bindings
  in
  let table =
    Table.make ~name:(Fmt.str "sq%d_input" sq.sq_id) ~schema:vars rows
  in
  Relops.group_by
    ~name:(Fmt.str "sq%d" sq.sq_id)
    ~keys:sq.group_by ~aggs:(Plan_util.agg_specs sq) table
  |> Plan_util.finish_subquery sq

let measure g t =
  let rec go (n : node) : measured * payload =
    match n.op with
    | Scan tp ->
      let bs = scan_bindings g tp in
      ({ m_node = n; actual = List.length bs; m_children = [] }, Bindings bs)
    | Star_join star ->
      let children = List.map (fun c -> fst (go c)) n.children in
      let bs = eval_bgp g star.Star.patterns in
      ({ m_node = n; actual = List.length bs; m_children = children }, Bindings bs)
    | Filter fs -> (
      match n.children with
      | [ child ] -> (
        let mc, payload = go child in
        match payload with
        | Bindings bs ->
          let bs =
            List.filter (fun b -> List.for_all (Binding.eval_filter b) fs) bs
          in
          ( { m_node = n; actual = List.length bs; m_children = [ mc ] },
            Bindings bs )
        | Rel _ -> invalid_arg "Card_analysis.measure: filter over a relation")
      | _ -> invalid_arg "Card_analysis.measure: malformed filter node")
    | Join _ | Cross -> (
      match n.children with
      | [ l; r ] ->
        let ml, pl = go l and mr, pr = go r in
        let bs =
          match (pl, pr) with
          | Bindings a, Bindings b -> join_bindings a b
          | _ -> invalid_arg "Card_analysis.measure: join over relations"
        in
        ({ m_node = n; actual = List.length bs; m_children = [ ml; mr ] }, Bindings bs)
      | _ -> invalid_arg "Card_analysis.measure: malformed join node")
    | Agg sq -> (
      match n.children with
      | [ child ] -> (
        let mc, payload = go child in
        match payload with
        | Bindings bs ->
          let table = aggregate_table sq bs in
          ( { m_node = n; actual = Table.cardinality table; m_children = [ mc ] },
            Rel table )
        | Rel _ -> invalid_arg "Card_analysis.measure: aggregate over a relation")
      | _ -> invalid_arg "Card_analysis.measure: malformed agg node")
    | Final_join ->
      let results = List.map go n.children in
      let tables =
        List.map
          (function
            | _, Rel t -> t
            | _, Bindings _ ->
              invalid_arg "Card_analysis.measure: final join over bindings")
          results
      in
      let joined =
        match tables with
        | [] -> invalid_arg "Card_analysis.measure: empty final join"
        | first :: rest ->
          List.fold_left
            (fun acc tbl -> Relops.hash_join ~name:"joined" acc tbl)
            first rest
      in
      ( { m_node = n;
          actual = Table.cardinality joined;
          m_children = List.map fst results
        },
        Rel joined )
    | Result -> (
      match n.children with
      | [ child ] -> (
        let mc, payload = go child in
        match payload with
        | Rel table ->
          let result =
            Relops.project_exprs ~name:"result" t.query.outer_projection table
            |> Relops.order_limit ~order_by:t.query.Analytical.order_by
                 ~limit:t.query.Analytical.limit
          in
          ( { m_node = n; actual = Table.cardinality result; m_children = [ mc ] },
            Rel result )
        | Bindings _ ->
          invalid_arg "Card_analysis.measure: result over bindings")
      | _ -> invalid_arg "Card_analysis.measure: malformed result node")
  in
  fst (go t.root)

let measured_list m =
  let rec go m acc =
    List.fold_left (fun acc c -> go c acc) ((m.m_node, m.actual) :: acc) m.m_children
  in
  List.rev (go m [])

let root_q_error m = Card.q_error m.m_node.card ~actual:m.actual

(* ---------------------------------------------------------------- *)
(* Rendering *)

let label_width = 52

let pp_line ppf ~depth label pp_tail =
  let indent = String.make (2 * depth) ' ' in
  let text = indent ^ label in
  let text =
    if String.length text > label_width then
      String.sub text 0 (label_width - 1) ^ "…"
    else text
  in
  Fmt.pf ppf "%-*s %t" label_width text pp_tail

let pp_plan ppf t =
  let rec go depth first n =
    if not first then Fmt.cut ppf ();
    pp_line ppf ~depth n.label (fun ppf ->
        Fmt.pf ppf "card %a  ~%.0f rows" Card.pp n.card
          (Card.point_estimate n.card));
    List.iter (go (depth + 1) false) n.children
  in
  Fmt.pf ppf "@[<v>";
  go 0 true t.root;
  Fmt.pf ppf "@]"

let pp_measured ppf m =
  let rec go depth first m =
    if not first then Fmt.cut ppf ();
    let n = m.m_node in
    pp_line ppf ~depth n.label (fun ppf ->
        Fmt.pf ppf "card %a  actual %d%s" Card.pp n.card m.actual
          (if Card.contains n.card m.actual then "" else "  OUT OF BOUNDS"));
    List.iter (go (depth + 1) false) m.m_children
  in
  Fmt.pf ppf "@[<v>";
  go 0 true m;
  Fmt.pf ppf "@]"

let op_name = function
  | Scan _ -> "scan"
  | Star_join _ -> "star-join"
  | Filter _ -> "filter"
  | Join _ -> "join"
  | Cross -> "cross"
  | Agg _ -> "agg"
  | Final_join -> "final-join"
  | Result -> "result"

let rec node_to_json n =
  Json.Obj
    [
      ("id", Json.Int n.id);
      ("op", Json.String (op_name n.op));
      ("label", Json.String n.label);
      ("ncols", Json.Int n.ncols);
      ("card", Card.to_json n.card);
      ("bytes", Card.to_json n.bytes);
      ("children", Json.List (List.map node_to_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ("plan", node_to_json t.root);
      ("diagnostics", Json.List (List.map Diagnostic.to_json t.diagnostics));
    ]

(* ---------------------------------------------------------------- *)
(* Planner-facing primitives: the same interval machinery the plan
   annotation uses, exposed so [Rapida_planner]'s join enumeration can
   cost candidate orders without re-deriving the bounds. *)

let scan_interval = scan_card

let star_interval cat (star : Star.t) =
  star_card cat star (List.map (scan_card cat) star.Star.patterns)

let join_match_bound = per_match_bound
let bytes_interval cat ~ncols card = bytes_of cat ncols card
