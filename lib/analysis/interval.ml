module Json = Rapida_mapred.Json

module Num = struct
  type bound = float * bool

  type t = { lo : bound option; hi : bound option }

  let full = { lo = None; hi = None }

  let point x = { lo = Some (x, false); hi = Some (x, false) }

  let closed lo hi = { lo = Some (lo, false); hi = Some (hi, false) }

  (* A lower bound (x, sx) is tighter than (y, sy) when it excludes
     more: larger value, or same value but strict. *)
  let lo_tighter (x, sx) (y, sy) = x > y || (x = y && sx && not sy)

  let hi_tighter (x, sx) (y, sy) = x < y || (x = y && sx && not sy)

  let tighten_lo t x strict =
    match t.lo with
    | Some b when not (lo_tighter (x, strict) b) -> t
    | _ -> { t with lo = Some (x, strict) }

  let tighten_hi t x strict =
    match t.hi with
    | Some b when not (hi_tighter (x, strict) b) -> t
    | _ -> { t with hi = Some (x, strict) }

  let is_empty t =
    match (t.lo, t.hi) with
    | Some (l, ls), Some (h, hs) -> l > h || (l = h && (ls || hs))
    | _ -> false

  let mem x t =
    (match t.lo with
    | Some (l, strict) -> if strict then x > l else x >= l
    | None -> true)
    && (match t.hi with
       | Some (h, strict) -> if strict then x < h else x <= h
       | None -> true)

  let inter a b =
    let t =
      match b.lo with
      | Some (x, s) -> tighten_lo a x s
      | None -> a
    in
    match b.hi with Some (x, s) -> tighten_hi t x s | None -> t

  let disjoint a b =
    (not (is_empty a)) && (not (is_empty b)) && is_empty (inter a b)

  let pp_bound ppf = function
    | None -> Fmt.string ppf "unbounded"
    | Some (x, strict) -> Fmt.pf ppf "%g%s" x (if strict then " (strict)" else "")

  let pp ppf t =
    let open_lo = match t.lo with Some (_, true) -> "(" | _ -> "[" in
    let close_hi = match t.hi with Some (_, true) -> ")" | _ -> "]" in
    let side ppf = function
      | None -> Fmt.string ppf "-"
      | Some (x, _) -> Fmt.pf ppf "%g" x
    in
    ignore pp_bound;
    Fmt.pf ppf "%s%a, %a%s" open_lo side t.lo side t.hi close_hi
end

module Card = struct
  type t = { lo : int; hi : int }

  let make lo hi =
    let lo = max 0 lo and hi = max 0 hi in
    if lo <= hi then { lo; hi } else { lo = hi; hi = lo }

  let exact n = make n n

  let zero = { lo = 0; hi = 0 }

  let unknown = { lo = 0; hi = max_int }

  let is_empty t = t.hi = 0

  let contains t n = t.lo <= n && n <= t.hi

  let sat_add a b = if a > max_int - b then max_int else a + b

  let sat_mul a b =
    if a = 0 || b = 0 then 0
    else if a > max_int / b then max_int
    else a * b

  let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }

  let mul a b = { lo = sat_mul a.lo b.lo; hi = sat_mul a.hi b.hi }

  let scale t k =
    let k = max 0 k in
    { lo = sat_mul t.lo k; hi = sat_mul t.hi k }

  let cap t n = { lo = min t.lo n; hi = min t.hi n }

  let cap_hi t n = if n >= t.hi then t else { lo = min t.lo n; hi = n }

  let drop_lo t = { t with lo = 0 }

  let union a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

  let point_estimate t =
    if t.hi = 0 then 0.0
    else if t.hi = max_int then float_of_int (max 1 t.lo)
    else sqrt (float_of_int (max 1 t.lo) *. float_of_int (max 1 t.hi))

  let q_error t ~actual =
    let est = max 1.0 (point_estimate t) in
    let act = float_of_int (max 1 actual) in
    Float.max (est /. act) (act /. est)

  let pp ppf t =
    if t.hi = max_int then Fmt.pf ppf "[%d, inf]" t.lo
    else Fmt.pf ppf "[%d, %d]" t.lo t.hi

  let to_json t =
    Json.Obj
      [
        ("lo", Json.Int t.lo);
        ("hi", (if t.hi = max_int then Json.Null else Json.Int t.hi));
      ]

  let of_json = function
    | Json.Obj fields -> (
      match (List.assoc_opt "lo" fields, List.assoc_opt "hi" fields) with
      | Some (Json.Int lo), Some (Json.Int hi) -> Ok (make lo hi)
      | Some (Json.Int lo), Some Json.Null -> Ok { lo = max 0 lo; hi = max_int }
      | _ -> Error "interval: expected integer lo and integer-or-null hi")
    | _ -> Error "interval: expected an object"
end
