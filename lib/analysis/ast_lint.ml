open Rapida_rdf
module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Lexer = Rapida_sparql.Lexer
module Parser = Rapida_sparql.Parser
module Srcloc = Rapida_sparql.Srcloc
module Analytical = Rapida_sparql.Analytical

(* ------------------------------------------------------------------ *)
(* Source index: spans recovered from the token stream.                *)

type index = {
  var_spans : (string * Srcloc.span) list;  (* first occurrence *)
  prefix_decls : (string * Srcloc.span) list;  (* declaration order, dups kept *)
  prefix_uses : string list;  (* distinct prefixes of body qnames *)
}

let empty_index = { var_spans = []; prefix_decls = []; prefix_uses = [] }

let token_span ~line ~col ~len =
  Srcloc.span_of_token (Srcloc.pos ~line ~col) ~len

let index_of_tokens toks =
  let var_spans = ref [] and decls = ref [] and uses = ref [] in
  let rec go = function
    | [] -> ()
    | { Lexer.tok = Lexer.KEYWORD "PREFIX"; _ }
      :: { Lexer.tok = Lexer.QNAME q; line; col }
      :: rest ->
      let name =
        match String.index_opt q ':' with
        | Some i -> String.sub q 0 i
        | None -> q
      in
      decls := (name, token_span ~line ~col ~len:(String.length q)) :: !decls;
      go
        (match rest with
        | { Lexer.tok = Lexer.IRIREF _; _ } :: r -> r
        | r -> r)
    | { Lexer.tok = Lexer.VAR v; line; col } :: rest ->
      if not (List.mem_assoc v !var_spans) then
        var_spans :=
          (v, token_span ~line ~col ~len:(String.length v + 1)) :: !var_spans;
      go rest
    | { Lexer.tok = Lexer.QNAME q; _ } :: rest ->
      (match String.index_opt q ':' with
      | Some i when i > 0 ->
        let p = String.sub q 0 i in
        if not (List.mem p !uses) then uses := p :: !uses
      | _ -> ());
      go rest
    | _ :: rest -> go rest
  in
  go toks;
  {
    var_spans = List.rev !var_spans;
    prefix_decls = List.rev !decls;
    prefix_uses = List.rev !uses;
  }

let var_span index v = List.assoc_opt v index.var_spans

(* ------------------------------------------------------------------ *)
(* AST helpers.                                                        *)

let rec triples_of elts =
  List.concat_map
    (function
      | Ast.Ptriple tp -> [ tp ]
      | Ast.Poptional inner -> triples_of inner
      | Ast.Pfilter _ | Ast.Psub _ -> [])
    elts

let subselects elts =
  List.filter_map (function Ast.Psub s -> Some s | _ -> None) elts

let filters_of elts =
  List.filter_map (function Ast.Pfilter e -> Some e | _ -> None) elts

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* Free variables outside aggregate calls — the ones aggregation scope
   rules apply to. *)
let rec nonagg_vars = function
  | Ast.Evar v -> [ v ]
  | Ast.Eterm _ -> []
  | Ast.Ebin (_, a, b) -> nonagg_vars a @ nonagg_vars b
  | Ast.Enot e -> nonagg_vars e
  | Ast.Eagg _ -> []
  | Ast.Eregex (e, _, _) -> nonagg_vars e

let rec expr_has_agg = function
  | Ast.Eagg _ -> true
  | Ast.Ebin (_, a, b) -> expr_has_agg a || expr_has_agg b
  | Ast.Enot e | Ast.Eregex (e, _, _) -> expr_has_agg e
  | Ast.Evar _ | Ast.Eterm _ -> false

let projection_names projection =
  List.map (function Ast.Svar v -> v | Ast.Sexpr (_, v) -> v) projection

let rec output_vars (s : Ast.select) =
  if s.projection = [] then bound_vars s else projection_names s.projection

and bound_vars (s : Ast.select) =
  let tv = List.concat_map Ast.pattern_vars (triples_of s.where) in
  let sv = List.concat_map output_vars (subselects s.where) in
  dedup (tv @ sv)

(* ------------------------------------------------------------------ *)
(* Constant folding of filter expressions.                             *)

type const = Cnum of float | Cstr of string | Cbool of bool

let const_of_term (t : Term.t) =
  match t with
  | Term.Literal { lex; datatype = Term.Dboolean } -> Some (Cbool (lex = "true"))
  | _ -> (
    match Term.as_number t with
    | Some f -> Some (Cnum f)
    | None -> Some (Cstr (Term.lexical t)))

let fold_cmp op (a : const) (b : const) =
  let decide c =
    Some
      (Cbool
         (match op with
         | Ast.Eq -> c = 0
         | Ast.Ne -> c <> 0
         | Ast.Lt -> c < 0
         | Ast.Le -> c <= 0
         | Ast.Gt -> c > 0
         | Ast.Ge -> c >= 0
         | _ -> assert false))
  in
  match (a, b) with
  | Cnum x, Cnum y -> decide (Float.compare x y)
  | Cstr x, Cstr y -> decide (String.compare x y)
  | Cbool x, Cbool y -> (
    match op with
    | Ast.Eq -> Some (Cbool (x = y))
    | Ast.Ne -> Some (Cbool (x <> y))
    | _ -> None)
  | _ -> None

let rec fold_expr (e : Ast.expr) : const option =
  match e with
  | Ast.Eterm t -> const_of_term t
  | Ast.Evar _ | Ast.Eagg _ -> None
  | Ast.Eregex _ -> None
  | Ast.Enot e -> (
    match fold_expr e with Some (Cbool b) -> Some (Cbool (not b)) | _ -> None)
  | Ast.Ebin (op, a, b) -> (
    let fa = fold_expr a and fb = fold_expr b in
    match op with
    | Ast.And -> (
      match (fa, fb) with
      | Some (Cbool false), _ | _, Some (Cbool false) -> Some (Cbool false)
      | Some (Cbool true), Some (Cbool true) -> Some (Cbool true)
      | _ -> None)
    | Ast.Or -> (
      match (fa, fb) with
      | Some (Cbool true), _ | _, Some (Cbool true) -> Some (Cbool true)
      | Some (Cbool false), Some (Cbool false) -> Some (Cbool false)
      | _ -> None)
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      match (fa, fb) with Some ca, Some cb -> fold_cmp op ca cb | _ -> None)
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
      match (fa, fb) with
      | Some (Cnum x), Some (Cnum y) ->
        Some
          (Cnum
             (match op with
             | Ast.Add -> x +. y
             | Ast.Sub -> x -. y
             | Ast.Mul -> x *. y
             | _ -> x /. y))
      | _ -> None))

(* Interval analysis of a single FILTER's conjunction: collect numeric
   bounds per variable into the shared {!Interval.Num} domain and detect
   empty constraint sets. *)

type bounds = {
  mutable iv : Interval.Num.t;
  mutable eqs : float list;
  mutable nes : float list;
}

let rec conj_atoms = function
  | Ast.Ebin (Ast.And, a, b) -> conj_atoms a @ conj_atoms b
  | e -> [ e ]

(* The per-variable numeric constraints of a conjunction, as (variable,
   interval, equalities, disequalities). Exposed to the cost analyzer so
   FILTER selectivity can meet these intervals against the catalog's
   literal-range sketches. *)
let conj_constraints e =
  let tbl : (string, bounds) Hashtbl.t = Hashtbl.create 4 in
  let bounds_for v =
    match Hashtbl.find_opt tbl v with
    | Some b -> b
    | None ->
      let b = { iv = Interval.Num.full; eqs = []; nes = [] } in
      Hashtbl.add tbl v b;
      b
  in
  let record v op x =
    let b = bounds_for v in
    match op with
    | Ast.Eq -> b.eqs <- x :: b.eqs
    | Ast.Ne -> b.nes <- x :: b.nes
    | Ast.Lt -> b.iv <- Interval.Num.tighten_hi b.iv x true
    | Ast.Le -> b.iv <- Interval.Num.tighten_hi b.iv x false
    | Ast.Gt -> b.iv <- Interval.Num.tighten_lo b.iv x true
    | Ast.Ge -> b.iv <- Interval.Num.tighten_lo b.iv x false
    | _ -> ()
  in
  let flip = function
    | Ast.Lt -> Ast.Gt
    | Ast.Le -> Ast.Ge
    | Ast.Gt -> Ast.Lt
    | Ast.Ge -> Ast.Le
    | op -> op
  in
  List.iter
    (fun atom ->
      match atom with
      | Ast.Ebin (op, Ast.Evar v, Ast.Eterm t) -> (
        match Term.as_number t with Some x -> record v op x | None -> ())
      | Ast.Ebin (op, Ast.Eterm t, Ast.Evar v) -> (
        match Term.as_number t with Some x -> record v (flip op) x | None -> ())
      | _ -> ())
    (conj_atoms e);
  Hashtbl.fold (fun v b acc -> (v, b.iv, b.eqs, b.nes) :: acc) tbl []

let filter_always_false e =
  match fold_expr e with
  | Some (Cbool false) -> true
  | _ -> false

let unsat_conjunction e =
  List.fold_left
    (fun acc (v, iv, eqs, nes) ->
      match acc with
      | Some _ -> acc
      | None ->
        let eq_conflict =
          (match eqs with
          | x :: rest -> List.exists (fun y -> y <> x) rest
          | [] -> false)
          || List.exists (fun x -> not (Interval.Num.mem x iv)) eqs
          || List.exists (fun x -> List.mem x nes) eqs
        in
        if Interval.Num.is_empty iv || eq_conflict then Some v else None)
    None (conj_constraints e)

(* ------------------------------------------------------------------ *)
(* The rules.                                                          *)

let span_for index vars =
  match vars with
  | v :: _ -> var_span index v
  | [] -> None

let lint_filter index acc f =
  match fold_expr f with
  | Some (Cbool false) ->
    Diagnostic.warningf
      ?span:(span_for index (nonagg_vars f))
      ~rule:"filter-unsatisfiable"
      "FILTER %a is always false: no solution can satisfy it" Ast.pp_expr f
    :: acc
  | Some (Cbool true) ->
    Diagnostic.warningf
      ?span:(span_for index (nonagg_vars f))
      ~rule:"filter-constant" "FILTER %a is always true and can be removed"
      Ast.pp_expr f
    :: acc
  | Some _ ->
    Diagnostic.warningf
      ?span:(span_for index (nonagg_vars f))
      ~rule:"filter-constant"
      "FILTER %a evaluates to a non-boolean constant" Ast.pp_expr f
    :: acc
  | None -> (
    match unsat_conjunction f with
    | Some v ->
      Diagnostic.warningf ?span:(var_span index v) ~rule:"filter-unsatisfiable"
        "FILTER %a is unsatisfiable: the bounds on ?%s describe an empty \
         interval"
        Ast.pp_expr f v
      :: acc
    | None -> acc)

let rec lint_select index (s : Ast.select) acc =
  let bound = bound_vars s in
  let outputs = output_vars s in
  let filters = filters_of s.where in
  let triples = triples_of s.where in
  let acc =
    List.fold_left (fun acc sub -> lint_select index sub acc) acc
      (subselects s.where)
  in
  let unbound ~where acc v =
    if List.mem v bound then acc
    else
      Diagnostic.errorf ?span:(var_span index v) ~rule:"unbound-var"
        "variable ?%s is used in %s but never bound by the pattern" v where
      :: acc
  in
  let unbound_or_output ~where acc v =
    if List.mem v outputs then acc else unbound ~where acc v
  in
  (* unbound-var *)
  let acc =
    List.fold_left
      (fun acc item ->
        match item with
        | Ast.Svar v -> unbound ~where:"the projection" acc v
        | Ast.Sexpr (e, _) ->
          let acc =
            List.fold_left (unbound ~where:"the projection") acc
              (dedup (nonagg_vars e))
          in
          List.fold_left
            (unbound ~where:"an aggregate argument")
            acc
            (dedup (List.filter (fun v -> not (List.mem v (nonagg_vars e)))
                      (Ast.expr_vars e))))
      acc s.projection
  in
  let acc =
    List.fold_left
      (fun acc f ->
        List.fold_left (unbound ~where:"a FILTER") acc (dedup (Ast.expr_vars f)))
      acc filters
  in
  let acc = List.fold_left (unbound ~where:"GROUP BY") acc (dedup s.group_by) in
  let acc =
    List.fold_left
      (fun acc h ->
        List.fold_left (unbound_or_output ~where:"HAVING") acc
          (dedup (Ast.expr_vars h)))
      acc s.having
  in
  let acc =
    List.fold_left
      (fun acc o ->
        let v = match o with Ast.Asc v | Ast.Desc v -> v in
        unbound_or_output ~where:"ORDER BY" acc v)
      acc s.order_by
  in
  (* ungrouped-projection *)
  let aggregated =
    s.group_by <> []
    || List.exists
         (function Ast.Sexpr (e, _) -> expr_has_agg e | Ast.Svar _ -> false)
         s.projection
  in
  let acc =
    if not aggregated then acc
    else
      List.fold_left
        (fun acc item ->
          let offenders =
            match item with
            | Ast.Svar v -> if List.mem v s.group_by then [] else [ v ]
            | Ast.Sexpr (e, _) ->
              List.filter (fun v -> not (List.mem v s.group_by))
                (dedup (nonagg_vars e))
          in
          List.fold_left
            (fun acc v ->
              Diagnostic.errorf ?span:(var_span index v)
                ~rule:"ungrouped-projection"
                "?%s is projected from an aggregated SELECT but is not a \
                 GROUP BY key"
                v
              :: acc)
            acc offenders)
        acc s.projection
  in
  (* filter-unsatisfiable / filter-constant *)
  let acc = List.fold_left (lint_filter index) acc filters in
  (* cartesian-product *)
  let acc =
    let stars = Star.decompose triples in
    if List.length stars >= 2 && not (Star.connected stars (Star.edges stars))
    then
      Diagnostic.warningf
        ?span:(span_for index (List.concat_map Ast.pattern_vars triples))
        ~rule:"cartesian-product"
        "the star-join graph is disconnected (%d stars): evaluation forms a \
         cartesian product"
        (List.length stars)
      :: acc
    else acc
  in
  (* duplicate-pattern *)
  let acc =
    let rec dups seen acc = function
      | [] -> acc
      | tp :: rest ->
        let acc =
          if List.mem tp seen then
            Diagnostic.warningf
              ?span:(span_for index (Ast.pattern_vars tp))
              ~rule:"duplicate-pattern"
              "triple pattern %a appears more than once" Ast.pp_triple_pattern
              tp
            :: acc
          else acc
        in
        dups (tp :: seen) acc rest
    in
    dups [] acc triples
  in
  (* unused-var *)
  let occurrences v =
    let in_triples =
      List.length
        (List.filter (fun x -> x = v) (List.concat_map Ast.pattern_vars triples))
    in
    let in_exprs =
      List.length
        (List.filter (fun x -> x = v)
           (List.concat_map Ast.expr_vars (filters @ s.having)
           @ List.concat_map
               (function Ast.Svar x -> [ x ] | Ast.Sexpr (e, _) -> Ast.expr_vars e)
               s.projection
           @ s.group_by
           @ List.map (function Ast.Asc x | Ast.Desc x -> x) s.order_by))
    in
    in_triples + in_exprs
  in
  let triple_bound = dedup (List.concat_map Ast.pattern_vars triples) in
  List.fold_left
    (fun acc v ->
      if occurrences v = 1 then
        Diagnostic.infof ?span:(var_span index v) ~rule:"unused-var"
          "?%s is bound but never used: the triple only asserts the \
           property's existence"
          v
        :: acc
      else acc)
    acc triple_bound

let lint_prefixes index =
  let rec dup_decls seen acc = function
    | [] -> acc
    | (name, span) :: rest ->
      let acc =
        if List.mem name seen then
          Diagnostic.warningf ~span ~rule:"duplicate-prefix"
            "PREFIX %s: is declared more than once" name
          :: acc
        else acc
      in
      dup_decls (name :: seen) acc rest
  in
  let acc = dup_decls [] [] index.prefix_decls in
  List.fold_left
    (fun acc (name, span) ->
      if List.mem name index.prefix_uses then acc
      else
        Diagnostic.warningf ~span ~rule:"unused-prefix"
          "PREFIX %s: is declared but never used" name
        :: acc)
    acc
    (dedup index.prefix_decls)

let lint_query ?(index = empty_index) (q : Ast.query) =
  Diagnostic.sort (lint_select index q.base_select [])

let lint_source src =
  match Lexer.tokenize src with
  | Error e ->
    [
      Diagnostic.errorf
        ~span:(Srcloc.span_of_token e.Lexer.pos ~len:1)
        ~rule:"parse-error" "%s" e.Lexer.reason;
    ]
  | Ok toks -> (
    let index = index_of_tokens toks in
    let prefix_ds = lint_prefixes index in
    match Parser.parse_located src with
    | Error e ->
      Diagnostic.sort
        (Diagnostic.errorf
           ?span:(Option.map (fun p -> Srcloc.span_of_token p ~len:1) e.Parser.pos)
           ~rule:"parse-error" "%s" e.Parser.reason
        :: prefix_ds)
    | Ok q ->
      let form =
        match Analytical.of_query q with
        | Ok _ -> []
        | Error msg ->
          [
            Diagnostic.errorf ~rule:"analytical-form"
              "query is outside the analytical fragment: %s" msg;
          ]
      in
      Diagnostic.sort (lint_select index q.base_select [] @ prefix_ds @ form))
