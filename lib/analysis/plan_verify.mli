(** Layer 2 of the static analyzer: optimizer-invariant verification.

    While {!Ast_lint} checks what the user wrote, this module re-checks
    what the optimizer {e derived}: the composite-pattern rewriting of
    paper §3 and the schemas the engines produce. Rules and their ids:

    - [composite-cover] (error): the composite pattern's stars do not
      exactly cover the original patterns' properties as primary
      (owned by all) plus secondary (owned by a strict subset)
      requirements, or a property lost its ownership (Def. 3.1).
    - [composite-role] (error): merged join variables of corresponding
      star pairs are not role-equivalent (Def. 3.2); carries the
      {!Rapida_core.Overlap} evidence.
    - [nsplit-arity] (error): the n-split of the composite pattern does
      not produce exactly one pattern per input subquery, or a pattern's
      α condition / variable mapping refers outside the composite
      pattern (Defs. 3.4–3.5).
    - [aggjoin-keys] (error): a subquery's grouping keys or aggregate
      arguments are not available in the bindings its split pattern
      carries, or aggregate output names collide (Def. 3.6).
    - [workflow-dag] (error): the join-order a workflow would execute is
      not a connected left-deep sequence — some join's shuffle key is
      not bound by an upstream star.
    - [opt-join-order] (error): a cost-based-planner-enumerated star
      order is not a permutation of the pattern's stars or joins a star
      before any edge connects it to the joined prefix (see
      {!verify_join_order}).
    - [schema-mismatch] (error): an engine's result schema differs from
      the statically expected schema, or the four engines disagree.
    - [mem-overcommit] (warning): the Agg-Join's estimated per-task
      hash-table footprint exceeds the cluster's per-task heap; the run
      degrades (OOM retries, combiner disabled) instead of failing
      (see {!verify_memory}). *)

module Analytical = Rapida_sparql.Analytical
module Table = Rapida_relational.Table
module Engine = Rapida_core.Engine

(** [expected_schema q] is the result schema every engine must produce:
    the subquery output columns folded left-to-right with natural-join
    semantics (shared columns kept once), then the outer projection
    (identity when empty). *)
val expected_schema : Analytical.t -> string list

(** [verify_query q] checks every static invariant — per-subquery
    grouping/aggregation consistency and join-order connectivity, plus
    the composite-pattern invariants when the query has at least two
    subqueries (the MQO case). An empty result means the optimizer's
    derivations are sound for [q]. *)
val verify_query : Analytical.t -> Diagnostic.t list

(** [verify_join_order ~star_ids ~edges ~order] checks an
    optimizer-enumerated star visiting order before execution: [order]
    must be a permutation of [star_ids] and every star after the first
    must connect to the already-joined prefix through some edge
    ([opt-join-order]). The planner runs this on every plan it emits; a
    rejected order is replaced by the verified heuristic fallback rather
    than executed. *)
val verify_join_order :
  star_ids:int list ->
  edges:Rapida_sparql.Star.edge list ->
  order:int list ->
  Diagnostic.t list

(** [verify_result ~engine q table] checks an actual result table
    against {!expected_schema} ([schema-mismatch]). *)
val verify_result : engine:string -> Analytical.t -> Table.t -> Diagnostic.t list

(** [verify_cross_engine q results] checks that every engine produced
    the same schema ([schema-mismatch] names the disagreeing pair). *)
val verify_cross_engine :
  Analytical.t -> (string * Table.t) list -> Diagnostic.t list

(** [install_engine_hook ()] registers {!verify_query} + {!verify_result}
    as the {!Rapida_core.Engine.set_default_verifier} callback, so engines
    re-verify after every run when the execution context has
    [verify_plans] set. The registry indirection exists because core
    cannot depend on this library. Idempotent. *)
val install_engine_hook : unit -> unit

(** [verify_memory ~heap_bytes ~agj_ht_bytes] checks the Agg-Join's
    estimated per-task hash-table footprint (the [mem.agj_ht_bytes]
    metric recorded by the NTGA engines) against the cluster's per-task
    heap, and emits a [mem-overcommit] {e warning} when the estimate
    exceeds the budget: the run still completes — the simulator retries
    the OOM-killed attempts and reruns the task with its combiner
    disabled — but pays for the kills and the bigger shuffle. Warnings
    never affect exit codes. *)
val verify_memory : heap_bytes:int -> agj_ht_bytes:int -> Diagnostic.t list
