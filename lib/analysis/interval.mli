(** The one interval domain shared by both static analyses.

    {!Num} is the numeric-constraint domain the AST lint's
    filter-unsatisfiability check solves in ({!Ast_lint}): real intervals
    with possibly-open endpoints, built by tightening comparison bounds.
    {!Card} is the cardinality domain the cost analyzer propagates
    through plans ({!Card_analysis}): integer row-count intervals
    [[lo, hi]] with saturating arithmetic, where [hi = max_int] means
    unbounded. Keeping both here — rather than a private copy per
    analysis — is what lets the analyzer feed the lint's filter
    reasoning with real literal ranges from the statistics catalog. *)

module Num : sig
  (** A bound is a value plus a strictness flag: [(x, true)] excludes
      [x] itself ([< x] / [> x]); [(x, false)] includes it. *)
  type bound = float * bool

  (** A possibly-unbounded real interval. [None] means unbounded on
      that side. The representation does not normalize: emptiness is a
      query ({!is_empty}), not an invariant. *)
  type t = { lo : bound option; hi : bound option }

  val full : t

  (** [point x] is the degenerate interval [[x, x]]. *)
  val point : float -> t

  (** [closed lo hi] is [[lo, hi]], both endpoints included. *)
  val closed : float -> float -> t

  (** [tighten_lo t x strict] raises the lower bound to [(x, strict)]
      when that is tighter than the current one (a strict bound at the
      same value is tighter than an inclusive one). [tighten_hi]
      symmetrically lowers the upper bound. *)
  val tighten_lo : t -> float -> bool -> t

  val tighten_hi : t -> float -> bool -> t

  (** [is_empty t] holds when no real satisfies both bounds: crossed
      bounds, or equal bounds with either side strict. *)
  val is_empty : t -> bool

  (** [mem x t] holds when [x] satisfies both bounds. *)
  val mem : float -> t -> bool

  (** [inter a b] is the meet: both constraint sets combined. *)
  val inter : t -> t -> t

  (** [disjoint a b] holds when the meet is empty while neither input
      is — two genuinely incompatible constraint sets. *)
  val disjoint : t -> t -> bool

  val pp : t Fmt.t
end

module Card : sig
  (** An integer cardinality interval [[lo, hi]] with
      [0 <= lo <= hi]; [hi = max_int] renders and serializes as
      unbounded. *)
  type t = { lo : int; hi : int }

  (** [make lo hi] clamps negatives to 0 and swaps crossed bounds. *)
  val make : int -> int -> t

  (** [exact n] is [[n, n]]. *)
  val exact : int -> t

  val zero : t

  (** [[0, max_int]] — no information. *)
  val unknown : t

  (** [is_empty t] holds when [hi = 0]: the operator provably emits
      nothing. *)
  val is_empty : t -> bool

  val contains : t -> int -> bool

  (** Pointwise sum, saturating at [max_int]. *)
  val add : t -> t -> t

  (** Pointwise product, saturating at [max_int]. *)
  val mul : t -> t -> t

  (** [scale t k] multiplies both bounds by [k >= 0], saturating. *)
  val scale : t -> int -> t

  (** [cap t n] caps both bounds at [n] — the effect of [LIMIT n]. *)
  val cap : t -> int -> t

  (** [cap_hi t n] caps only the upper bound (an upper-bound refinement
      that cannot raise the lower). *)
  val cap_hi : t -> int -> t

  (** [drop_lo t] forgets the lower bound — the effect of any operator
      that may discard rows (a filter, a HAVING). *)
  val drop_lo : t -> t

  (** Interval union (convex hull). *)
  val union : t -> t -> t

  (** [point_estimate t] is the geometric mean of the bounds (clamped
      to at least 1 row, and to [hi] when [hi = 0]) — the scalar the
      q-error metric compares against measured cardinality. For an
      unbounded interval it falls back to the lower bound. *)
  val point_estimate : t -> float

  (** [q_error t ~actual] is the standard estimation-quality factor
      [max (est / actual) (actual / est)], both sides floored at one
      row so empty results compare as 1 against empty estimates. *)
  val q_error : t -> actual:int -> float

  (** Prints ["[lo, hi]"], with [inf] for an unbounded upper bound. *)
  val pp : t Fmt.t

  val to_json : t -> Rapida_mapred.Json.t
  val of_json : Rapida_mapred.Json.t -> (t, string) result
end
