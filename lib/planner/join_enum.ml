module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Card = Rapida_analysis.Interval.Card
module Card_analysis = Rapida_analysis.Card_analysis
module Stats_catalog = Rapida_analysis.Stats_catalog
module Cluster = Rapida_mapred.Cluster

let max_stars = 12

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b

type input = {
  catalog : Stats_catalog.t;
  cluster : Cluster.t;
  stars : Star.t list;  (** sorted by id *)
  edges : Star.edge list;
  star_card : (int * Card.t) list;  (** per-star join interval, by id *)
}

let make ~catalog ~cluster ~stars ~edges =
  let stars =
    List.sort (fun (a : Star.t) (b : Star.t) -> compare a.Star.id b.Star.id) stars
  in
  {
    catalog;
    cluster;
    stars;
    edges;
    star_card =
      List.map
        (fun (s : Star.t) ->
          (s.Star.id, Card_analysis.star_interval catalog s))
        stars;
  }

let star_by_id input id =
  List.find (fun (s : Star.t) -> s.Star.id = id) input.stars

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let ncols_of input ids =
  List.concat_map
    (fun id -> List.concat_map Ast.pattern_vars (star_by_id input id).Star.patterns)
    ids
  |> dedup |> List.length

(* Edges connecting star [s] to the id set [set], with the endpoint on
   [s]'s side. *)
let connecting input set s =
  List.filter_map
    (fun (e : Star.edge) ->
      let l = e.Star.left.Star.star and r = e.Star.right.Star.star in
      if l = s && List.mem r set then Some e.Star.left
      else if r = s && List.mem l set then Some e.Star.right
      else None)
    input.edges

(* Canonical cardinality interval of joining an id {e set}: fold the
   stars in ascending-id order under the same inter-star join rule
   [Card_analysis.analyze] uses (upper bound: the smaller of the
   product bound and the best per-match fanout bound; lower bound 0).
   Folding the {e sorted} set — not the visit order — makes the
   interval a function of the set alone, so step costs are
   set-additive and subset DP is exact. *)
let set_interval input ids =
  match List.sort compare ids with
  | [] -> Card.exact 0
  | first :: rest ->
    let acc = List.assoc first input.star_card in
    let _, card =
      List.fold_left
        (fun (set, (acc : Card.t)) s ->
          let sub = List.assoc s input.star_card in
          let conn = connecting input set s in
          let card =
            if conn = [] then Card.mul acc sub
            else
              let hi0 = sat_mul acc.Card.hi sub.Card.hi in
              let hi =
                List.fold_left
                  (fun h (ep : Star.endpoint) ->
                    min h
                      (sat_mul acc.Card.hi
                         (Card_analysis.join_match_bound input.catalog
                            (star_by_id input s) ep)))
                  hi0 conn
              in
              Card.make 0 hi
          in
          (s :: set, card))
        ([ first ], acc) rest
    in
    card

let set_bytes input ids =
  Card_analysis.bytes_interval input.catalog ~ncols:(ncols_of input ids)
    (set_interval input ids)

(* Cost of extending the joined prefix [set] with star [s]: one
   repartition-join cycle reading the prefix plus the new star's
   materialized result, writing the grown prefix. *)
let step_cost input set s =
  let star_bytes =
    Card_analysis.bytes_interval input.catalog ~ncols:(ncols_of input [ s ])
      (List.assoc s input.star_card)
  in
  let in_bytes = Card.add (set_bytes input set) star_bytes in
  let out_bytes = set_bytes input (s :: set) in
  Cost_model.join_step input.cluster ~in_bytes ~out_bytes

type candidate = { c_order : int list; c_cost : Cost_model.scenario }

(* Cost of a full visit order, left-fold over its steps. [None] when a
   star joins the prefix without a connecting edge (a cross join the
   heuristic would never produce). *)
let cost_of_order input order =
  match order with
  | [] | [ _ ] -> Some Cost_model.zero
  | first :: rest ->
    let rec go set cost = function
      | [] -> Some cost
      | s :: tl ->
        if connecting input set s = [] then None
        else go (s :: set) (Cost_model.add cost (step_cost input set s)) tl
    in
    go [ first ] Cost_model.zero rest

(* --- subset DP --------------------------------------------------------- *)

(* Lexicographic comparison of visit orders, the deterministic
   tie-break: among equal-cost plans the smallest order wins, in both
   the DP and the exhaustive path. *)
let lex_less a b = compare (a : int list) b < 0

let dp_order ~objective input =
  let ids = List.map (fun (s : Star.t) -> s.Star.id) input.stars in
  let n = List.length ids in
  if n < 2 || n > max_stars then None
  else
    let idx = Array.of_list ids in
    let full = (1 lsl n) - 1 in
    (* best.(mask) = Some (scalar, order list reversed, scenario) *)
    let best = Array.make (full + 1) None in
    for i = 0 to n - 1 do
      best.(1 lsl i) <- Some (0., [ idx.(i) ], Cost_model.zero)
    done;
    let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
    let masks = Array.init (full + 1) (fun m -> m) in
    Array.sort (fun a b -> compare (popcount a, a) (popcount b, b)) masks;
    Array.iter
      (fun mask ->
        match best.(mask) with
        | None -> ()
        | Some (scalar, rev_order, scen) ->
          let set = List.rev rev_order in
          for j = 0 to n - 1 do
            if mask land (1 lsl j) = 0 then begin
              let s = idx.(j) in
              if connecting input set s <> [] then begin
                let step = step_cost input set s in
                let scalar' = scalar +. objective step in
                let scen' = Cost_model.add scen step in
                let order' = s :: rev_order in
                let mask' = mask lor (1 lsl j) in
                let better =
                  match best.(mask') with
                  | None -> true
                  | Some (sc, ord, _) ->
                    scalar' < sc
                    || (scalar' = sc && lex_less (List.rev order') (List.rev ord))
                in
                if better then best.(mask') <- Some (scalar', order', scen')
              end
            end
          done)
      masks;
    match best.(full) with
    | None -> None
    | Some (_, rev_order, scen) ->
      Some { c_order = List.rev rev_order; c_cost = scen }

(* --- exhaustive enumeration (test oracle and explain detail) ----------- *)

(* Every connected visit order, by backtracking. Only safe for small
   star counts; [all_orders] is the ≤4-star test oracle. *)
let all_orders input =
  let ids = List.map (fun (s : Star.t) -> s.Star.id) input.stars in
  let rec extend set remaining =
    if remaining = [] then [ [] ]
    else
      List.concat_map
        (fun s ->
          if set <> [] && connecting input set s = [] then []
          else
            extend (s :: set) (List.filter (fun x -> x <> s) remaining)
            |> List.map (fun tl -> s :: tl))
        remaining
  in
  extend [] ids

let exhaustive_order ~objective input =
  let scored =
    List.filter_map
      (fun order ->
        match cost_of_order input order with
        | None -> None
        | Some scen ->
          (* Fold the scalar in step order, exactly like the DP path,
             so float summation order matches and DP = exhaustive is
             an equality, not an approximation. *)
          let scalar =
            match order with
            | [] | [ _ ] -> 0.
            | first :: rest ->
              let _, sc =
                List.fold_left
                  (fun (set, sc) s ->
                    (s :: set, sc +. objective (step_cost input set s)))
                  ([ first ], 0.) rest
              in
              sc
          in
          Some (scalar, { c_order = order; c_cost = scen }))
      (all_orders input)
  in
  List.fold_left
    (fun best (scalar, c) ->
      match best with
      | None -> Some (scalar, c)
      | Some (bs, bc) ->
        if scalar < bs || (scalar = bs && lex_less c.c_order bc.c_order) then
          Some (scalar, c)
        else best)
    None scored
  |> Option.map snd

(* --- policy selection -------------------------------------------------- *)

type t = {
  best : candidate;
  heuristic : candidate option;  (** the pre-optimizer order, costed *)
  candidates : candidate list;
      (** distinct orders that competed for selection (explain detail) *)
  exhaustive : bool;  (** small enough that every order was enumerated *)
}

let scenario_component i (s : Cost_model.scenario) =
  match i with
  | 0 -> s.Cost_model.s_lo
  | 1 -> s.Cost_model.s_mid
  | _ -> s.Cost_model.s_hi

let enumerate ~policy ~catalog ~cluster ~stars ~edges ~heuristic =
  let input = make ~catalog ~cluster ~stars ~edges in
  let n = List.length stars in
  if n < 2 || n > max_stars then None
  else
    let heuristic_candidate =
      match cost_of_order input heuristic with
      | Some scen when heuristic <> [] ->
        Some { c_order = heuristic; c_cost = scen }
      | _ -> None
    in
    let exhaustive = n <= 4 in
    let select objective =
      if exhaustive then exhaustive_order ~objective input
      else dp_order ~objective input
    in
    let result =
      match policy with
      | Cost_model.Mid | Cost_model.Worst_case -> (
        match select (Cost_model.objective policy) with
        | None -> None
        | Some best ->
          let candidates =
            List.filter
              (fun c ->
                Option.fold ~none:true
                  ~some:(fun (h : candidate) -> h.c_order <> c.c_order)
                  heuristic_candidate)
              [ best ]
            @ Option.to_list heuristic_candidate
          in
          Some { best; heuristic = heuristic_candidate; candidates; exhaustive })
      | Cost_model.Minimax_regret -> (
        (* Candidate set: the winner of each scenario plus the heuristic
           order; pick the candidate whose worst excess over the
           per-scenario best is smallest. *)
        let winners =
          List.filter_map
            (fun i -> select (scenario_component i))
            [ 0; 1; 2 ]
        in
        let candidates =
          List.fold_left
            (fun acc (c : candidate) ->
              if List.exists (fun (x : candidate) -> x.c_order = c.c_order) acc
              then acc
              else acc @ [ c ])
            []
            (winners @ Option.to_list heuristic_candidate)
        in
        match candidates with
        | [] -> None
        | _ ->
          let best_at i =
            List.fold_left
              (fun m (c : candidate) ->
                Float.min m (scenario_component i c.c_cost))
              infinity candidates
          in
          let bests = List.map best_at [ 0; 1; 2 ] in
          let regret (c : candidate) =
            List.fold_left2
              (fun r i b ->
                Float.max r (scenario_component i c.c_cost -. b))
              0. [ 0; 1; 2 ] bests
          in
          let best =
            List.fold_left
              (fun acc c ->
                match acc with
                | None -> Some (regret c, c)
                | Some (br, bc) ->
                  let r = regret c in
                  if r < br || (r = br && lex_less c.c_order bc.c_order) then
                    Some (r, c)
                  else acc)
              None candidates
            |> Option.get |> snd
          in
          Some { best; heuristic = heuristic_candidate; candidates; exhaustive })
    in
    result
