(** DP join enumeration over star patterns and inter-star joins.

    Candidate plans are left-deep star visit orders. The cost of a plan
    is the sum of its inter-star repartition-join steps
    ({!Cost_model.join_step}); star materialization is order-invariant
    and therefore not costed. The cardinality interval of a joined
    prefix is computed canonically from the {e set} of joined stars
    (folding in ascending-id order under [Card_analysis]'s inter-star
    join rule), which makes step costs set-additive and the subset DP
    exact — the DP result equals exhaustive enumeration, a property the
    test suite checks for ≤4-star queries. *)

module Star = Rapida_sparql.Star
module Card = Rapida_analysis.Interval.Card
module Stats_catalog = Rapida_analysis.Stats_catalog
module Cluster = Rapida_mapred.Cluster

(** Patterns beyond this many stars skip enumeration (the DP is
    [O(2^n · n²)]); the heuristic order is used unhinted. *)
val max_stars : int

type input

(** [make ~catalog ~cluster ~stars ~edges] prepares an enumeration
    problem: per-star intervals are derived once from the catalog. *)
val make :
  catalog:Stats_catalog.t ->
  cluster:Cluster.t ->
  stars:Star.t list ->
  edges:Star.edge list ->
  input

(** Canonical interval of joining an id set (order-independent). *)
val set_interval : input -> int list -> Card.t

type candidate = { c_order : int list; c_cost : Cost_model.scenario }

(** [cost_of_order input order] costs a full visit order; [None] when
    some star joins the prefix without a connecting edge. *)
val cost_of_order : input -> int list -> Cost_model.scenario option

(** [dp_order ~objective input] is the connected visit order minimizing
    the summed per-step [objective], by subset DP with a deterministic
    lexicographic tie-break. [None] when the pattern has fewer than 2 or
    more than {!max_stars} stars, or is disconnected. *)
val dp_order :
  objective:(Cost_model.scenario -> float) -> input -> candidate option

(** Every connected visit order (the ≤4-star test oracle). *)
val all_orders : input -> int list list

(** [exhaustive_order ~objective input] scores every order of
    {!all_orders} with the same left-fold scalar accumulation as the DP,
    so equality with {!dp_order} is exact. *)
val exhaustive_order :
  objective:(Cost_model.scenario -> float) -> input -> candidate option

type t = {
  best : candidate;
  heuristic : candidate option;  (** the pre-optimizer order, costed *)
  candidates : candidate list;
      (** distinct orders that competed for selection (explain detail) *)
  exhaustive : bool;  (** small enough that every order was enumerated *)
}

(** [enumerate ~policy ~catalog ~cluster ~stars ~edges ~heuristic] picks
    the best order under [policy]. [heuristic] is the pre-optimizer
    greedy visit order (costed for the explain/bench deltas and part of
    the minimax-regret candidate set). [None] when the shape is
    unsupported (<2 or >{!max_stars} stars, disconnected). *)
val enumerate :
  policy:Cost_model.policy ->
  catalog:Stats_catalog.t ->
  cluster:Cluster.t ->
  stars:Star.t list ->
  edges:Star.edge list ->
  heuristic:int list ->
  t option
