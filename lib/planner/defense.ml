type state = Armed | Cooling | Off

type t = {
  k : int;
  mutable st : state;
  mutable consecutive : int;
  mutable escapes : int;
  mutable fallbacks : int;
}

let create ~k =
  if k < 1 then invalid_arg "Defense.create: k must be >= 1";
  { k; st = Armed; consecutive = 0; escapes = 0; fallbacks = 0 }

let state t = t.st
let escapes t = t.escapes
let fallbacks t = t.fallbacks
let tripped t = t.st = Off

let arm_for_next t =
  match t.st with
  | Armed -> true
  | Off -> false
  | Cooling ->
    (* One heuristic query pays the fallback, then the optimizer
       re-arms: a single misestimate costs one query, only a streak
       trips the breaker. *)
    t.fallbacks <- t.fallbacks + 1;
    t.st <- Armed;
    false

let observe t ~escaped =
  match t.st with
  | Off | Cooling -> ()
  | Armed ->
    if escaped then begin
      t.escapes <- t.escapes + 1;
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.k then t.st <- Off else t.st <- Cooling
    end
    else t.consecutive <- 0

let state_name = function
  | Armed -> "armed"
  | Cooling -> "cooling"
  | Off -> "off"
