module Ast = Rapida_sparql.Ast
module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module To_sparql = Rapida_sparql.To_sparql
module Card = Rapida_analysis.Interval.Card
module Card_analysis = Rapida_analysis.Card_analysis
module Stats_catalog = Rapida_analysis.Stats_catalog
module Plan_verify = Rapida_analysis.Plan_verify
module Composite = Rapida_core.Composite
module Plan_util = Rapida_core.Plan_util
module Cluster = Rapida_mapred.Cluster
module Json = Rapida_mapred.Json

(* --- fingerprints ------------------------------------------------------ *)

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let shape_fingerprint policy q =
  fnv1a64 (Cost_model.policy_name policy ^ "\n" ^ To_sparql.analytical q)

let catalog_fingerprint cat = fnv1a64 (Json.to_string (Stats_catalog.to_json cat))
let fingerprint_hex = Printf.sprintf "%016Lx"

(* --- heuristic order extraction ---------------------------------------- *)

(* The star visit order the engines' fold over an (unhinted) edge plan
   produces: the first edge contributes both endpoints, every later
   edge its not-yet-seen endpoint. *)
let visit_order_of_plan (plan : Star.edge list) =
  match plan with
  | [] -> []
  | first :: rest ->
    let order = ref [ first.Star.right.Star.star; first.Star.left.Star.star ] in
    List.iter
      (fun (e : Star.edge) ->
        let l = e.Star.left.Star.star and r = e.Star.right.Star.star in
        if not (List.mem l !order) then order := l :: !order;
        if not (List.mem r !order) then order := r :: !order)
      rest;
    List.rev !order

let heuristic_order ~star_ids ~edges =
  match Composite.order_edges ~star_order:None ~star_ids ~edges with
  | Error _ -> []
  | Ok plan -> visit_order_of_plan plan

(* --- composite stars as synthetic star patterns ------------------------ *)

(* A composite star enumerates like an ordinary star pattern: subject
   variable root, one triple pattern per composite triple (constant
   object when constrained). Its id lives in cs_id space — the engines
   look the resulting hint up under the reserved key [-1]. *)
let star_of_composite (cs : Composite.star) : Star.t =
  {
    Star.id = cs.Composite.cs_id;
    subject = Ast.Nvar cs.Composite.subject_var;
    patterns =
      List.map
        (fun (c : Composite.ctp) ->
          {
            Ast.tp_s = Ast.Nvar cs.Composite.subject_var;
            tp_p = Ast.Nterm c.Composite.prop;
            tp_o =
              (match c.Composite.obj_const with
              | Some o -> Ast.Nterm o
              | None -> Ast.Nvar c.Composite.obj_var);
          })
        cs.Composite.ctps;
  }

(* --- decisions --------------------------------------------------------- *)

type unit_decision = {
  u_key : int;
  u_label : string;
  u_order : int list;
  u_cost : Cost_model.scenario;
  u_heuristic : Join_enum.candidate option;
  u_candidates : Join_enum.candidate list;
  u_exhaustive : bool;
  u_verified : bool;
}

type decision = {
  d_policy : Cost_model.policy;
  d_units : unit_decision list;
  d_join_orders : (int * int list) list;
  d_root : Card.t;
}

let join_orders d = d.d_join_orders

let plan_unit ~policy ~catalog ~cluster ~key ~label ~stars ~edges =
  if List.length stars < 2 then None
  else
    let star_ids = List.map (fun (s : Star.t) -> s.Star.id) stars in
    let heuristic = heuristic_order ~star_ids ~edges in
    match
      Join_enum.enumerate ~policy ~catalog ~cluster ~stars ~edges ~heuristic
    with
    | None -> None
    | Some enum ->
      let best = enum.Join_enum.best in
      let rejected =
        Plan_verify.verify_join_order ~star_ids ~edges
          ~order:best.Join_enum.c_order
        <> []
      in
      let order, cost =
        if rejected then
          (* Verified fallback: execute the heuristic plan (no hint is
             emitted for this unit), never abort. *)
          match enum.Join_enum.heuristic with
          | Some h -> (h.Join_enum.c_order, h.Join_enum.c_cost)
          | None -> (heuristic, Cost_model.zero)
        else (best.Join_enum.c_order, best.Join_enum.c_cost)
      in
      Some
        {
          u_key = key;
          u_label = label;
          u_order = order;
          u_cost = cost;
          u_heuristic = enum.Join_enum.heuristic;
          u_candidates = enum.Join_enum.candidates;
          u_exhaustive = enum.Join_enum.exhaustive;
          u_verified = not rejected;
        }

let plan ?(policy = Cost_model.Worst_case) ?(cluster = Cluster.default) catalog
    (q : Analytical.t) =
  let subquery_units =
    List.filter_map
      (fun (sq : Analytical.subquery) ->
        plan_unit ~policy ~catalog ~cluster ~key:sq.Analytical.sq_id
          ~label:(Printf.sprintf "subquery %d" sq.Analytical.sq_id)
          ~stars:sq.Analytical.stars ~edges:sq.Analytical.edges)
      q.Analytical.subqueries
  in
  let composite_units =
    match q.Analytical.subqueries with
    | [] | [ _ ] -> []
    | _ -> (
      match Composite.build q.Analytical.subqueries with
      | Error _ -> []
      | Ok comp ->
        plan_unit ~policy ~catalog ~cluster ~key:(-1) ~label:"composite"
          ~stars:(List.map star_of_composite comp.Composite.stars)
          ~edges:comp.Composite.edges
        |> Option.to_list)
  in
  let d_units = subquery_units @ composite_units in
  let analysis = Card_analysis.analyze catalog q in
  {
    d_policy = policy;
    d_units;
    d_join_orders =
      List.filter_map
        (fun u -> if u.u_verified then Some (u.u_key, u.u_order) else None)
        d_units;
    d_root = analysis.Card_analysis.root.Card_analysis.card;
  }

let apply d options =
  Plan_util.make ~base:options ~optimize:true ~join_orders:d.d_join_orders ()

(* --- cached planning --------------------------------------------------- *)

type cache = decision Plan_cache.t

let create_cache ~capacity : cache = Plan_cache.create ~capacity

let plan_cached ~cache ~catalog ~catalog_fp ?(policy = Cost_model.Worst_case)
    ?(cluster = Cluster.default) q =
  let shape = shape_fingerprint policy q in
  match Plan_cache.find cache ~shape ~catalog:catalog_fp with
  | Some d -> (d, `Hit)
  | None ->
    let d = plan ~policy ~cluster catalog q in
    Plan_cache.add cache ~shape ~catalog:catalog_fp d;
    (d, `Miss)

(* --- rendering --------------------------------------------------------- *)

let pp_order ppf order =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " -> ") int) order

let pp_unit ppf u =
  Fmt.pf ppf "@[<v2>%s: order %a (cost %a)%s%s@," u.u_label pp_order u.u_order
    Cost_model.pp_scenario u.u_cost
    (if u.u_exhaustive then ", exhaustive" else ", DP")
    (if u.u_verified then ", verified" else ", REJECTED -> heuristic");
  (match u.u_heuristic with
  | Some h ->
    Fmt.pf ppf "heuristic: order %a (cost %a)@," pp_order h.Join_enum.c_order
      Cost_model.pp_scenario h.Join_enum.c_cost
  | None -> ());
  Fmt.pf ppf "candidates:";
  List.iter
    (fun (c : Join_enum.candidate) ->
      Fmt.pf ppf "@,  %a (cost %a)" pp_order c.Join_enum.c_order
        Cost_model.pp_scenario c.Join_enum.c_cost)
    u.u_candidates;
  Fmt.pf ppf "@]"

let pp_decision ppf d =
  Fmt.pf ppf "@[<v>policy: %s@,root interval: %a@,"
    (Cost_model.policy_name d.d_policy)
    Card.pp d.d_root;
  (match d.d_units with
  | [] -> Fmt.pf ppf "no multi-star unit to enumerate (heuristic plans)@,"
  | units -> List.iter (fun u -> Fmt.pf ppf "%a@," pp_unit u) units);
  Fmt.pf ppf "@]"

let unit_to_json u =
  Json.Obj
    [
      ("key", Json.Int u.u_key);
      ("label", Json.String u.u_label);
      ("order", Json.List (List.map (fun i -> Json.Int i) u.u_order));
      ("cost", Cost_model.scenario_to_json u.u_cost);
      ( "heuristic",
        match u.u_heuristic with
        | None -> Json.Null
        | Some h ->
          Json.Obj
            [
              ( "order",
                Json.List
                  (List.map (fun i -> Json.Int i) h.Join_enum.c_order) );
              ("cost", Cost_model.scenario_to_json h.Join_enum.c_cost);
            ] );
      ( "candidates",
        Json.List
          (List.map
             (fun (c : Join_enum.candidate) ->
               Json.Obj
                 [
                   ( "order",
                     Json.List
                       (List.map (fun i -> Json.Int i) c.Join_enum.c_order) );
                   ("cost", Cost_model.scenario_to_json c.Join_enum.c_cost);
                 ])
             u.u_candidates) );
      ("exhaustive", Json.Bool u.u_exhaustive);
      ("verified", Json.Bool u.u_verified);
    ]

let decision_to_json d =
  Json.Obj
    [
      ("policy", Json.String (Cost_model.policy_name d.d_policy));
      ("units", Json.List (List.map unit_to_json d.d_units));
      ("root_interval", Card.to_json d.d_root);
    ]
