module Card = Rapida_analysis.Interval.Card
module Cluster = Rapida_mapred.Cluster

type policy = Mid | Worst_case | Minimax_regret

let policy_name = function
  | Mid -> "mid"
  | Worst_case -> "worst-case"
  | Minimax_regret -> "minimax-regret"

let policy_of_string = function
  | "mid" -> Some Mid
  | "worst-case" -> Some Worst_case
  | "minimax-regret" -> Some Minimax_regret
  | _ -> None

let all_policies = [ Mid; Worst_case; Minimax_regret ]

type scenario = { s_lo : float; s_mid : float; s_hi : float }

let zero = { s_lo = 0.; s_mid = 0.; s_hi = 0. }

let add a b =
  {
    s_lo = a.s_lo +. b.s_lo;
    s_mid = a.s_mid +. b.s_mid;
    s_hi = a.s_hi +. b.s_hi;
  }

(* Bytes under one scenario. [max_int] (unbounded) saturates to a huge
   but finite float so worst-case costs stay comparable. *)
let flo (c : Card.t) = float_of_int c.Card.lo
let fhi (c : Card.t) = if c.Card.hi = max_int then 1e18 else float_of_int c.Card.hi

let fmid (c : Card.t) =
  let est = Card.point_estimate c in
  if c.Card.hi = max_int then est else Float.min est (fhi c)

(* One repartition-join MR cycle priced like the simulator's cost shape:
   fixed startup, read both inputs, shuffle + sort them, write the
   output. The absolute seconds matter less than the ordering being
   consistent with the simulator's dominant terms. *)
let join_step (cl : Cluster.t) ~in_bytes ~out_bytes =
  let per scenario_bytes_in scenario_bytes_out =
    let mb x = x /. 1.0e6 in
    cl.Cluster.job_startup_s
    +. (mb scenario_bytes_in /. cl.Cluster.disk_mb_per_s)
    +. (mb scenario_bytes_in /. cl.Cluster.network_mb_per_s)
    +. (mb scenario_bytes_in /. cl.Cluster.sort_mb_per_s)
    +. (mb scenario_bytes_out /. cl.Cluster.disk_mb_per_s)
  in
  {
    s_lo = per (flo in_bytes) (flo out_bytes);
    s_mid = per (fmid in_bytes) (fmid out_bytes);
    s_hi = per (fhi in_bytes) (fhi out_bytes);
  }

(* The scalar a policy minimizes. Additive over {!add} component-wise,
   which is what makes subset DP exact: the objective of a plan is the
   sum of its steps' objectives. [Minimax_regret] has no per-plan
   scalar — the enumerator handles it over a candidate set — so it
   conservatively orders by the upper bound here. *)
let objective policy s =
  match policy with
  | Mid -> s.s_mid
  | Worst_case -> s.s_hi
  | Minimax_regret -> s.s_hi

let scenario_to_json s =
  Rapida_mapred.Json.Obj
    [
      ("lo_s", Rapida_mapred.Json.Float s.s_lo);
      ("mid_s", Rapida_mapred.Json.Float s.s_mid);
      ("hi_s", Rapida_mapred.Json.Float (Float.min s.s_hi 1e18));
    ]

let pp_scenario ppf s =
  Fmt.pf ppf "[%.3f, %.3f, %.3f]s" s.s_lo s.s_mid (Float.min s.s_hi 1e18)
