(** Bounded LRU plan cache with catalog-fingerprint self-invalidation.

    Entries are keyed by the normalized query-shape fingerprint and
    guarded by the catalog fingerprint the plan was derived from: a
    lookup that finds the shape under a {e different} catalog
    fingerprint drops the stale entry (counted as an invalidation) and
    reports a miss, so plans can never outlive the statistics they were
    costed with. A hit returns the cached decision without any
    enumeration work — the whole point for repeated server traffic. *)

type 'a t

(** [create ~capacity] is an empty cache holding at most [capacity]
    entries (least recently used evicted first).
    @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> 'a t

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** stale-catalog drops (each also a miss) *)
  evictions : int;
  size : int;
  capacity : int;
}

val stats : 'a t -> stats

(** [find t ~shape ~catalog] looks up [shape]; a hit refreshes its
    recency. A shape cached under a different catalog fingerprint is
    invalidated and reported as a miss. *)
val find : 'a t -> shape:int64 -> catalog:int64 -> 'a option

(** [add t ~shape ~catalog v] inserts (replacing any entry for [shape])
    and evicts the least recently used entry past capacity. *)
val add : 'a t -> shape:int64 -> catalog:int64 -> 'a -> unit

val stats_to_json : stats -> Rapida_mapred.Json.t
val pp_stats : stats Fmt.t
