(** Robust cost-based planner: interval-aware join enumeration, a
    self-invalidating plan cache, and the decision record front ends
    render.

    [plan] enumerates star-join orders for every multi-star unit of an
    analytical query — each subquery, plus the composite (MQO) pattern
    when it applies — costed by {!Cost_model} over [Card_analysis]
    intervals and selected under a robustness {!Cost_model.policy}.
    Every enumerated order is checked with
    [Plan_verify.verify_join_order] before it can execute; a rejected
    order falls back to the verified heuristic plan, never an abort.
    The resulting hints travel to the engines as
    [Plan_util.options.join_orders] (see {!apply}); with the [optimize]
    bit off the engines never consult them and execution is
    byte-identical to the heuristic planner. *)

module Star = Rapida_sparql.Star
module Analytical = Rapida_sparql.Analytical
module Card = Rapida_analysis.Interval.Card
module Stats_catalog = Rapida_analysis.Stats_catalog
module Cluster = Rapida_mapred.Cluster

(** {1 Fingerprints} *)

(** FNV-1a 64-bit hash (exposed for tests). *)
val fnv1a64 : string -> int64

(** [shape_fingerprint policy q] hashes the canonical [To_sparql]
    rendering of [q] together with the policy name — queries that
    re-render identically share a cache entry per policy. *)
val shape_fingerprint : Cost_model.policy -> Analytical.t -> int64

(** [catalog_fingerprint cat] hashes the catalog's canonical JSON: any
    statistics change yields a new fingerprint and invalidates every
    cached plan derived from the old one. *)
val catalog_fingerprint : Stats_catalog.t -> int64

val fingerprint_hex : int64 -> string

(** {1 Heuristic order} *)

(** [heuristic_order ~star_ids ~edges] is the star visit order the
    pre-optimizer greedy edge ordering produces ([[]] when the pattern
    is disconnected) — the baseline plans are compared against and the
    misestimate-defense fallback. *)
val heuristic_order : star_ids:int list -> edges:Star.edge list -> int list

(** {1 Decisions} *)

type unit_decision = {
  u_key : int;  (** subquery id, or [-1] for the composite pattern *)
  u_label : string;
  u_order : int list;  (** the order that will execute *)
  u_cost : Cost_model.scenario;
  u_heuristic : Join_enum.candidate option;
  u_candidates : Join_enum.candidate list;
  u_exhaustive : bool;
  u_verified : bool;
      (** the enumerated order passed [Plan_verify]; when [false],
          [u_order] is the heuristic fallback and no hint is emitted *)
}

type decision = {
  d_policy : Cost_model.policy;
  d_units : unit_decision list;
  d_join_orders : (int * int list) list;  (** verified hints only *)
  d_root : Card.t;
      (** the analyzer's sound root interval — what the runtime
          misestimate defense compares measured cardinality against *)
}

val join_orders : decision -> (int * int list) list

(** [plan ?policy ?cluster catalog q] enumerates and selects join
    orders for [q]. Defaults: [Worst_case] policy (minimize the
    upper-bound cost), {!Cluster.default}. Units the enumerator cannot
    handle (single star, disconnected, >{!Join_enum.max_stars} stars)
    are simply absent — their plans stay heuristic. *)
val plan :
  ?policy:Cost_model.policy ->
  ?cluster:Cluster.t ->
  Stats_catalog.t ->
  Analytical.t ->
  decision

(** [apply d options] arms [options] with the decision: sets [optimize]
    and installs [d]'s verified join-order hints. *)
val apply :
  decision -> Rapida_core.Plan_util.options -> Rapida_core.Plan_util.options

(** {1 Cached planning} *)

type cache = decision Plan_cache.t

val create_cache : capacity:int -> cache

(** [plan_cached ~cache ~catalog ~catalog_fp ?policy ?cluster q] returns
    the cached decision for [q]'s shape fingerprint when it was derived
    under [catalog_fp] — a [`Hit] runs no enumeration at all — and
    plans + caches otherwise. [catalog_fp] must be
    [catalog_fingerprint catalog] (passed in so servers hash the
    catalog once, not per query). *)
val plan_cached :
  cache:cache ->
  catalog:Stats_catalog.t ->
  catalog_fp:int64 ->
  ?policy:Cost_model.policy ->
  ?cluster:Cluster.t ->
  Analytical.t ->
  decision * [ `Hit | `Miss ]

(** {1 Rendering} *)

val pp_decision : decision Fmt.t
val decision_to_json : decision -> Rapida_mapred.Json.t
