(** Interval-aware cost model for join enumeration.

    A candidate join order is priced as a {!scenario}: the same MR-cycle
    cost shape the simulator's dominant terms follow (fixed startup,
    read, shuffle, sort, write), evaluated at the lower bound, the
    geometric-mean point estimate, and the upper bound of the
    [Card_analysis] byte intervals. Robustness policies then reduce a
    scenario to the scalar the enumerator minimizes. *)

module Card = Rapida_analysis.Interval.Card
module Cluster = Rapida_mapred.Cluster

(** How a plan is selected across the interval of possible costs:
    - [Mid]: minimize the point-estimate cost (the classical optimizer).
    - [Worst_case]: minimize the upper-bound cost — the default; one bad
      estimate can never pick a catastrophic order.
    - [Minimax_regret]: among the per-scenario winners (and the
      heuristic order), pick the order whose maximum cost excess over
      the per-scenario best is smallest. *)
type policy = Mid | Worst_case | Minimax_regret

val policy_name : policy -> string
val policy_of_string : string -> policy option
val all_policies : policy list

(** Cost in simulated seconds under the three scenarios: every input at
    its lower bound / point estimate / upper bound. *)
type scenario = { s_lo : float; s_mid : float; s_hi : float }

val zero : scenario

(** Component-wise sum — plan cost is the sum of its step costs. *)
val add : scenario -> scenario -> scenario

(** [join_step cluster ~in_bytes ~out_bytes] prices one inter-star
    repartition-join MR cycle whose total input is [in_bytes] and whose
    output is [out_bytes] (both sound byte intervals). *)
val join_step : Cluster.t -> in_bytes:Card.t -> out_bytes:Card.t -> scenario

(** [objective policy s] is the scalar [policy] minimizes — additive
    over {!add}, which makes subset DP exact. [Minimax_regret] is
    resolved over a candidate set by the enumerator and falls back to
    the upper bound here. *)
val objective : policy -> scenario -> float

val scenario_to_json : scenario -> Rapida_mapred.Json.t
val pp_scenario : scenario Fmt.t
