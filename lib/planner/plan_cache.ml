type 'a entry = { e_shape : int64; e_catalog : int64; e_value : 'a }

type 'a t = {
  capacity : int;
  mutable entries : 'a entry list;  (** most recently used first *)
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  { capacity; entries = []; hits = 0; misses = 0; invalidations = 0; evictions = 0 }

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats (t : 'a t) =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    evictions = t.evictions;
    size = List.length t.entries;
    capacity = t.capacity;
  }

let remove t shape =
  t.entries <- List.filter (fun e -> e.e_shape <> shape) t.entries

let find t ~shape ~catalog =
  match List.find_opt (fun e -> e.e_shape = shape) t.entries with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e when e.e_catalog <> catalog ->
    (* The statistics changed under the cached plan: the entry is
       stale, drop it and replan. *)
    remove t shape;
    t.invalidations <- t.invalidations + 1;
    t.misses <- t.misses + 1;
    None
  | Some e ->
    t.hits <- t.hits + 1;
    remove t shape;
    t.entries <- e :: t.entries;
    Some e.e_value

let add t ~shape ~catalog value =
  remove t shape;
  t.entries <- { e_shape = shape; e_catalog = catalog; e_value = value } :: t.entries;
  let n = List.length t.entries in
  if n > t.capacity then begin
    t.entries <- List.filteri (fun i _ -> i < t.capacity) t.entries;
    t.evictions <- t.evictions + (n - t.capacity)
  end

let stats_to_json (s : stats) =
  Rapida_mapred.Json.Obj
    [
      ("hits", Rapida_mapred.Json.Int s.hits);
      ("misses", Rapida_mapred.Json.Int s.misses);
      ("invalidations", Rapida_mapred.Json.Int s.invalidations);
      ("evictions", Rapida_mapred.Json.Int s.evictions);
      ("size", Rapida_mapred.Json.Int s.size);
      ("capacity", Rapida_mapred.Json.Int s.capacity);
    ]

let pp_stats ppf (s : stats) =
  Fmt.pf ppf "%d hit(s), %d miss(es), %d invalidation(s), %d eviction(s), %d/%d entries"
    s.hits s.misses s.invalidations s.evictions s.size s.capacity
