(** Runtime misestimate defense: per-session optimizer circuit breaker.

    The caller compares each optimized run's measured cardinality
    against the predicted interval and reports the outcome with
    {!observe}. An escape puts the breaker in [Cooling]: the next query
    runs on the heuristic (pre-optimizer) plan via the degradation
    machinery, then the optimizer re-arms. [k] {e consecutive} escapes
    trip the breaker to [Off] permanently for the session — a broken
    catalog can never make answers slower than the heuristic baseline
    indefinitely. Clean optimized runs reset the consecutive count. *)

type state = Armed | Cooling | Off

type t

(** [create ~k] starts [Armed]; [k] consecutive misestimates trip it.
    @raise Invalid_argument when [k < 1]. *)
val create : k:int -> t

val state : t -> state

(** Total misestimate escapes observed. *)
val escapes : t -> int

(** Heuristic fallback queries actually taken (each [Cooling] →
    [Armed] transition). *)
val fallbacks : t -> int

(** The breaker is [Off]: optimizer disabled for the session. *)
val tripped : t -> bool

(** [arm_for_next t] decides the next query's planning mode: [true] —
    plan with the optimizer; [false] — use the heuristic plan. Consuming
    a [Cooling] state counts a fallback and re-arms. *)
val arm_for_next : t -> bool

(** [observe t ~escaped] reports the outcome of an {e optimized} run
    (callers must not report heuristic runs). An escape increments the
    counters and cools (or trips) the breaker; a clean run resets the
    consecutive streak. *)
val observe : t -> escaped:bool -> unit

val state_name : state -> string
